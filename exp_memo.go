package hpn

import (
	"fmt"
	"time"

	"hpn/internal/memo"
)

func init() {
	register("memo", "Iteration memoization: long-horizon training fast-forward", runMemo)
}

// memoRun summarizes one long-horizon training run.
type memoRun struct {
	wallSec     float64
	flows       int64
	flowsPerSec float64
	samplesSec  float64
	simSeconds  float64
	stats       memo.Stats
}

// runMemoTraining drives iters steady-state iterations on a single-segment
// HPN pod (the fig13-style dual-ToR fabric), with or without the iteration
// memoization recorder, and measures simulated-flow throughput of the host
// process.
func runMemoTraining(iters int, enable bool) (*memoRun, error) {
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		return nil, err
	}
	hosts, err := c.PlaceJob(8)
	if err != nil {
		return nil, err
	}
	if enable {
		memo.Attach(c.Net)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		return nil, err
	}
	if err := tr.Start(iters); err != nil {
		return nil, err
	}
	// Wall-clock is the measured artifact here: the experiment's claim is
	// host-process speedup at identical simulated results.
	start := time.Now() //hpnlint:allow wallclock -- measured speedup is the experiment's subject
	c.Eng.Run()
	wall := time.Since(start) //hpnlint:allow wallclock -- measured speedup is the experiment's subject
	if tr.Iterations != iters {
		return nil, fmt.Errorf("hpn: memo training stalled at %d/%d", tr.Iterations, iters)
	}
	run := &memoRun{
		wallSec:    wall.Seconds(),
		flows:      c.Net.CompletedFlows,
		samplesSec: tr.MeanSamplesPerSecond(),
		simSeconds: c.Eng.Now().Seconds(),
	}
	if rec := memo.RecorderOf(c.Net); rec != nil {
		run.stats = rec.Stats()
	}
	if run.wallSec > 0 {
		run.flowsPerSec = float64(run.flows) / run.wallSec
	}
	return run, nil
}

func runMemo(s Scale) (*Report, error) {
	r := &Report{ID: "memo", Title: "Iteration memoization: long-horizon steady-state training"}
	iters := 300
	if s == ScaleFull {
		iters = 1000
	}
	off, err := runMemoTraining(iters, false)
	if err != nil {
		return nil, err
	}
	on, err := runMemoTraining(iters, true)
	if err != nil {
		return nil, err
	}
	speedup := 0.0
	if on.wallSec > 0 {
		speedup = off.wallSec / on.wallSec
	}
	r.AddTable(Table{
		Title:  fmt.Sprintf("LLaMa-13B, 64 GPUs, %d iterations", iters),
		Header: []string{"metric", "memo off", "memo on"},
		Rows: [][]string{
			{"wall time (s)", fmtF(off.wallSec), fmtF(on.wallSec)},
			{"simulated flows", fmtF(float64(off.flows)), fmtF(float64(on.flows))},
			{"simulated flows/sec (host)", fmtF(off.flowsPerSec), fmtF(on.flowsPerSec)},
			{"samples/s (simulated)", fmtF(off.samplesSec), fmtF(on.samplesSec)},
			{"iterations replayed", "0", fmtF(float64(on.stats.Replayed))},
		},
	})
	r.AddClaim("steady state fast-forwards from the cache", fmt.Sprintf("%d+ replayed", iters-10),
		fmt.Sprintf("%d/%d", on.stats.Replayed, iters), on.stats.Replayed >= int64(iters-10))
	r.AddClaim("host-process speedup", ">=10x flows/sec", fmt.Sprintf("%.1fx", speedup), speedup >= 10)
	// Replay must be bit-exact, so the simulated outcomes are compared
	// exactly, not within a tolerance.
	r.AddClaim("identical simulated results", "bit-equal samples/s and flow count",
		fmt.Sprintf("%.6g vs %.6g samples/s, %d vs %d flows", off.samplesSec, on.samplesSec, off.flows, on.flows),
		off.samplesSec == on.samplesSec && off.flows == on.flows && off.simSeconds == on.simSeconds) //hpnlint:allow floateq -- replay must be bit-exact
	if on.stats.Replayed == 0 && on.stats.Blocked > 0 {
		r.AddNote("memoization was blocked %d times — a periodic sampler or daemon keeps landing inside every "+
			"candidate window (run without -trace/-inband/-health, which enable the 10ms sampler)", on.stats.Blocked)
	}
	return r, nil
}

package hpn

import (
	"fmt"
	"math"

	"hpn/internal/collective"
	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/sim"
)

func init() {
	register("fig13", "Traffic on ToR ports towards the same NIC (Clos vs dual-plane)", runFig13)
	register("fig14", "Queue length at ToR downstream ports (Clos vs dual-plane)", runFig14)
	register("sec61a", "Dual-plane queue-length reduction", runSec61a)
	register("fig19", "AllReduce performance of dual-plane (Appendix A)", runFig19)
}

// tier2Measurement is what one cross-segment training run yields: per-NIC
// port utilizations and queue pressures at the destination dual-ToR set.
type tier2Measurement struct {
	// utilization (bps) per probed NIC per port.
	portUtil [][2]float64
	// mean queue proxy (bytes) per probed NIC per port.
	portQueue [][2]float64
}

// meanImbalance returns the average max/min port ratio per NIC, scored by
// hashing.RatioImbalance (a fully-starved port reports as the cap).
func (m *tier2Measurement) meanImbalance(cap float64) float64 {
	if len(m.portUtil) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range m.portUtil {
		sum += hashing.RatioImbalance(u[:], cap)
	}
	return sum / float64(len(m.portUtil))
}

// meanQueue averages the queue proxy over all probed ports.
func (m *tier2Measurement) meanQueue() float64 {
	if len(m.portQueue) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, q := range m.portQueue {
		sum += q[0] + q[1]
		n += 2
	}
	return sum / float64(n)
}

// runTier2Workload builds a 2-segment cluster of the given variant, runs a
// continuous cross-segment AllReduce, and measures the two access ports of
// every NIC on the ring's segment-boundary hosts.
func runTier2Workload(dualPlane bool, s Scale) (*tier2Measurement, error) {
	hostsPerSeg, aggs, iters, size := 8, 8, 12, float64(64<<20)
	if s == ScaleFull {
		hostsPerSeg, aggs, iters, size = 16, 60, 20, 256<<20
	}
	cfg := SmallHPN(2, hostsPerSeg, aggs)
	if !dualPlane {
		cfg.DualPlane = false
		cfg.SharedHashSeed = true // the legacy tier2 deployment
	}
	c, err := NewHPN(cfg)
	if err != nil {
		return nil, err
	}
	hosts, err := c.PlaceJob(2 * hostsPerSeg)
	if err != nil {
		return nil, err
	}
	ccfg := c.CollectiveConfig()
	if !dualPlane {
		ccfg.Policy = collective.PolicyBlind
	}
	g, err := collective.NewGroup(c.Net, ccfg, hosts, 8)
	if err != nil {
		return nil, err
	}

	// Probe both access ports of every NIC on the two boundary hosts
	// (ring positions 0 and hostsPerSeg receive cross-segment traffic).
	type probePair struct{ p0, p1 *netsim.LinkProbe }
	var probes []probePair
	for _, h := range []int{hosts[0], hosts[hostsPerSeg]} {
		for nic := 0; nic < 8; nic++ {
			d0 := c.Topo.Link(c.Topo.AccessLink(h, nic, 0)).Reverse
			d1 := c.Topo.Link(c.Topo.AccessLink(h, nic, 1)).Reverse
			probes = append(probes, probePair{
				p0: c.Net.TrackLink(d0, fmt.Sprintf("h%d-nic%d-p0", h, nic)),
				p1: c.Net.TrackLink(d1, fmt.Sprintf("h%d-nic%d-p1", h, nic)),
			})
		}
	}

	done := 0
	var loop func(sim.Time, collective.Result)
	loop = func(_ sim.Time, _ collective.Result) {
		done++
		if done >= iters {
			return
		}
		if _, err := g.StartAllReduce(size, loop); err != nil {
			done = iters
		}
	}
	if _, err := g.StartAllReduce(size, loop); err != nil {
		return nil, err
	}
	c.Eng.Run()
	if done < iters {
		return nil, fmt.Errorf("hpn: tier2 workload stalled after %d iterations", done)
	}

	m := &tier2Measurement{}
	for _, pp := range probes {
		// Use bytes actually moved (mean util); skip the warm-up
		// iteration.
		warm := pp.p0.Util.Points[0].T
		m.portUtil = append(m.portUtil, [2]float64{
			pp.p0.Util.MeanAfter(warm), pp.p1.Util.MeanAfter(warm),
		})
		m.portQueue = append(m.portQueue, [2]float64{
			pp.p0.Queue.MeanAfter(warm), pp.p1.Queue.MeanAfter(warm),
		})
	}
	return m, nil
}

const imbalanceCap = 10 // report a starved port as 10x rather than infinity

func runFig13(s Scale) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Traffic on ToR ports towards the same NIC"}
	clos, err := runTier2Workload(false, s)
	if err != nil {
		return nil, err
	}
	dual, err := runTier2Workload(true, s)
	if err != nil {
		return nil, err
	}
	ci, di := clos.meanImbalance(imbalanceCap), dual.meanImbalance(imbalanceCap)
	r.AddTable(Table{
		Title:  "per-NIC port load ratio (max/min across the dual-ToR set)",
		Header: []string{"tier2 design", "mean ratio", "NICs probed"},
		Rows: [][]string{
			{"typical Clos", fmtF(ci), fmtF(float64(len(clos.portUtil)))},
			{"dual-plane", fmtF(di), fmtF(float64(len(dual.portUtil)))},
		},
	})
	r.AddClaim("Clos shows heavy port imbalance", "~3x between ports", fmt.Sprintf("%.1fx", ci), ci >= 2)
	r.AddClaim("dual-plane evens the ports", "~1x", fmt.Sprintf("%.2fx", di), di < 1.1)
	return r, nil
}

func runFig14(s Scale) (*Report, error) {
	r := &Report{ID: "fig14", Title: "Queue length at ToR downstream ports"}
	clos, err := runTier2Workload(false, s)
	if err != nil {
		return nil, err
	}
	dual, err := runTier2Workload(true, s)
	if err != nil {
		return nil, err
	}
	cq, dq := clos.meanQueue(), dual.meanQueue()
	r.AddTable(Table{
		Title:  "mean queue pressure at dual-ToR downstream ports",
		Header: []string{"tier2 design", "mean queue (KB)"},
		Rows: [][]string{
			{"typical Clos", fmtF(cq / 1024)},
			{"dual-plane", fmtF(dq / 1024)},
		},
	})
	reduction := 1.0
	if cq > 0 {
		reduction = 1 - dq/cq
	}
	r.AddClaim("Clos builds standing queues", "hundreds of KB vs ~KB", fmt.Sprintf("%.0fKB", cq/1024), cq > 10*1024)
	r.AddClaim("dual-plane queue reduction", "91.8%", pct(reduction), reduction > 0.8)
	return r, nil
}

func runSec61a(s Scale) (*Report, error) {
	r, err := runFig14(s)
	if err != nil {
		return nil, err
	}
	r.ID, r.Title = "sec61a", "Dual-plane queue-length reduction (ablation)"
	return r, nil
}

func runFig19(s Scale) (*Report, error) {
	r := &Report{ID: "fig19", Title: "AllReduce busbw, single-plane vs dual-plane (cross-segment)"}
	sizes := []int{4, 8, 16} // hosts per run (n = 32..128 GPUs)
	size := float64(512 << 20)
	if s == ScaleFull {
		sizes = []int{4, 8, 16, 32}
		size = 4 << 30
	}
	rows := [][]string{}
	minGain := math.Inf(1)
	for _, h := range sizes {
		run := func(dualPlane bool) (float64, error) {
			cfg := SmallHPN(2, h/2, 8)
			if s == ScaleFull {
				cfg.AggsPerPlane = 60
			}
			if !dualPlane {
				cfg.DualPlane = false
				cfg.SharedHashSeed = true
			}
			c, err := NewHPN(cfg)
			if err != nil {
				return 0, err
			}
			hosts, err := c.PlaceJob(h)
			if err != nil {
				return 0, err
			}
			// Appendix A compares the planes under the stock NCCL stack:
			// blind multi-path on both sides.
			ccfg := c.CollectiveConfig()
			ccfg.Policy = collective.PolicyBlind
			g, err := collective.NewGroup(c.Net, ccfg, hosts, 8)
			if err != nil {
				return 0, err
			}
			res, err := g.AllReduce(size)
			if err != nil {
				return 0, err
			}
			return res.BusBW, nil
		}
		single, err := run(false)
		if err != nil {
			return nil, err
		}
		dual, err := run(true)
		if err != nil {
			return nil, err
		}
		gain := dual/single - 1
		minGain = math.Min(minGain, gain)
		rows = append(rows, []string{fmtF(float64(h * 8)), fmtF(single / 1e9), fmtF(dual / 1e9), pct(gain)})
	}
	r.AddTable(Table{
		Title:  "AllReduce busbw (GB/s), GPUs split across two segments",
		Header: []string{"n GPUs", "single-plane", "dual-plane", "gain"},
		Rows:   rows,
	})
	r.AddClaim("dual-plane AllReduce gain", "+50.1%..+63.7%", fmt.Sprintf(">= %s at every scale", pct(minGain)),
		minGain > 0.25)
	return r, nil
}

// Pathselection: demonstrate Appendix B — establishing RDMA connections on
// RePaC-predicted disjoint paths (Algorithm 1) and dispatching messages on
// the least-loaded connection (Algorithm 2), including how the WQE counter
// routes around a congested path.
//
//	go run ./examples/pathselection
package main

import (
	"fmt"
	"log"
	"os"

	"hpn"
	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/rdma"
	"hpn/internal/route"
	"hpn/internal/sim"
)

func main() {
	// Record everything: the flow log below lands in the telemetry registry
	// as the "flowlog.tsv" artifact.
	hub := hpn.EnableDefaultTelemetry(hpn.DefaultTelemetryOptions())
	cluster, err := hpn.NewHPN(hpn.SmallHPN(2, 8, 8))
	if err != nil {
		log.Fatal(err)
	}
	cluster.Net.EnableFlowLog(0)
	src := route.Endpoint{Host: 0, NIC: 0}
	dst := route.Endpoint{Host: 8, NIC: 0} // other segment, same rail

	// Algorithm 1: sweep source ports until 4 pairwise-disjoint fabric
	// paths are found (2 per plane under dual-plane).
	cs, err := rdma.EstablishConns(cluster.Net, src, dst, rdma.DefaultEstablishOpts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("established %d connections after probing %d candidate paths (disjoint=%v)\n",
		len(cs.Conns), cs.Probes, cs.Disjoint())
	for i, c := range cs.Conns {
		fmt.Printf("  conn %d: plane %d, sport %d, fabric path %v\n", i, c.Plane, c.Sport, c.FabricPath)
	}

	// Congest the first connection's ToR->Agg hop with background flows.
	victim := cs.Conns[0]
	hogLink := victim.FabricPath[1]
	placedHogs := 0
	for h := 1; h < 8 && placedHogs < 5; h++ {
		hogSrc := route.Endpoint{Host: h, NIC: 0}
		hogDst := route.Endpoint{Host: 8 + h, NIC: 0}
		for sport := uint16(30000); sport < 31000; sport++ {
			tuple := tupleOf(hogSrc, hogDst, sport)
			p, _, err := cluster.Net.R.Path(hogSrc, hogDst, victim.Plane, tuple, 0)
			if err != nil || p[1] != hogLink {
				continue
			}
			if _, err := cluster.Net.StartFlow(hogSrc, hogDst, 8<<30, netsim.FlowOpts{
				SrcPort: victim.Plane, Sport: sport,
			}); err == nil {
				placedHogs++
			}
			break
		}
	}
	fmt.Printf("\ncongested conn 0's path with %d background elephant flows\n", placedHogs)

	// Algorithm 2: stream messages in a closed loop (each completion posts
	// the next); the congested connection drains its work queue slower, so
	// the dispatcher starves it automatically.
	const messages = 64
	posted := 0
	var pump func(sim.Time)
	pump = func(sim.Time) {
		if posted >= messages {
			return
		}
		posted++
		if _, err := cs.Send(8<<20, pump); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // keep a window of 4 messages in flight
		pump(0)
	}
	cluster.Eng.Run()

	fmt.Println("\nbytes dispatched per connection (least-WQE balancing):")
	for i, c := range cs.Conns {
		marker := ""
		if i == 0 {
			marker = "   <- congested"
		}
		fmt.Printf("  conn %d: %6.1f MiB%s\n", i, c.SentBytes/(1<<20), marker)
	}

	// Dump the completed-flow log through the registry's exporter surface.
	out, err := os.Create("pathselection_flows.tsv")
	if err != nil {
		log.Fatal(err)
	}
	if err := hub.Registry.Export("flowlog.tsv", out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote pathselection_flows.tsv (%d flows)\n", len(cluster.Net.FlowLog()))
}

func tupleOf(src, dst route.Endpoint, sport uint16) hashing.FiveTuple {
	return hashing.FiveTuple{
		SrcAddr: src.Addr(), DstAddr: dst.Addr(),
		SrcPort: sport, DstPort: 4791, Proto: 17,
	}
}

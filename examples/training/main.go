// Training: run the same LLaMa-13B job on HPN and on the DCN+ baseline and
// compare end-to-end iteration throughput — a miniature of the paper's
// Figure 16 evaluation.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"hpn"
)

const hosts = 24 // 192 GPUs

func run(arch string) (samplesPerSec float64, segments int) {
	var (
		cluster *hpn.Cluster
		err     error
	)
	if arch == "hpn" {
		// One HPN segment holds the whole job: pure tier1 networking.
		cluster, err = hpn.NewHPN(hpn.SmallHPN(1, hosts, 8))
	} else {
		// DCN+ segments hold 16 hosts: the same job spans two of them.
		cluster, err = hpn.NewDCN(hpn.SmallDCN(1))
	}
	if err != nil {
		log.Fatal(err)
	}
	placed, err := cluster.PlaceJob(hosts)
	if err != nil {
		log.Fatal(err)
	}
	job, err := hpn.NewJob(hpn.LLaMa13B, hpn.Parallelism{TP: 8, PP: 1, DP: hosts}, placed)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := hpn.NewTrainer(cluster, job)
	if err != nil {
		log.Fatal(err)
	}
	if err := trainer.Start(5); err != nil {
		log.Fatal(err)
	}
	cluster.Eng.Run()
	return trainer.MeanSamplesPerSecond(), cluster.SegmentsSpanned(placed)
}

func main() {
	fmt.Printf("LLaMa-13B, %d GPUs, TP=8 DP=%d, 5 iterations\n\n", hosts*8, hosts)
	dcn, dcnSegs := run("dcn")
	hpnPerf, hpnSegs := run("hpn")
	fmt.Printf("%-6s  %-10s  %-10s\n", "arch", "segments", "samples/s")
	fmt.Printf("%-6s  %-10d  %-10.1f\n", "DCN+", dcnSegs, dcn)
	fmt.Printf("%-6s  %-10d  %-10.1f\n", "HPN", hpnSegs, hpnPerf)
	fmt.Printf("\nHPN end-to-end gain: %+.1f%% (paper reports +14.4%% for LLaMa-13B)\n",
		(hpnPerf/dcn-1)*100)
}

// Inbandforensics: produce an in-band telemetry artifact dense enough for
// hash forensics, then let cmd/hpnview pass judgment on it.
//
// Ring collectives establish each connection once and reuse its 5-tuple for
// every send, so a training run — however long — contributes only a handful
// of distinct hash inputs per ECMP stage pair; the polarization detector
// correctly answers "too few samples" rather than guessing. This example
// drives what the detector actually needs: a cross-segment sweep of many
// flows with distinct source ports (the traffic shape of a multi-job
// production fabric), under a chosen tier-2 design and hash seeding.
//
//	go run ./examples/inbandforensics -mode polarized -out /tmp/fx
//	go run ./cmd/hpnview -in /tmp/fx/inband.tsv        # exits 3: POLARIZED
//
//	go run ./examples/inbandforensics -mode seeded -out /tmp/fx2
//	go run ./cmd/hpnview -in /tmp/fx2/inband.tsv       # exits 0: ok
//
// Modes: polarized (legacy Clos, one shared hash seed everywhere — §2.2),
// seeded (same Clos topology, per-switch seeds), dualplane (HPN's design).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hpn"
	"hpn/internal/netsim"
	"hpn/internal/route"
)

func main() {
	var (
		mode = flag.String("mode", "polarized", "polarized | seeded | dualplane")
		out  = flag.String("out", "forensics-run", "directory for the inband.tsv artifact")
	)
	flag.Parse()

	cfg := hpn.SmallHPN(2, 8, 8)
	switch *mode {
	case "polarized":
		cfg.DualPlane = false
		cfg.SharedHashSeed = true
	case "seeded":
		cfg.DualPlane = false
	case "dualplane":
		// the default config
	default:
		fmt.Fprintf(os.Stderr, "inbandforensics: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cluster, err := hpn.NewHPN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	col := cluster.Net.EnableInband(0)

	// Every segment-0 host sends to its segment-1 peer on two rails, 32
	// distinct source ports each: 512 flows, every one a fresh hash input,
	// all crossing the ToR->Agg->ToR ECMP cascade.
	flows, sport := 0, uint16(20000)
	for h := 0; h < 8; h++ {
		for nic := 0; nic < 2; nic++ {
			for k := 0; k < 32; k++ {
				sport++
				src := route.Endpoint{Host: h, NIC: nic}
				dst := route.Endpoint{Host: h + 8, NIC: nic}
				if _, err := cluster.Net.StartFlow(src, dst, 256<<10, netsim.FlowOpts{SrcPort: -1, Sport: sport}); err != nil {
					log.Fatal(err)
				}
				flows++
			}
		}
	}
	cluster.Eng.Run()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*out, "inband.tsv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.WriteTSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode=%s: %d flows swept, %d per-hop records -> %s\n", *mode, flows, len(col.Records()), path)
	fmt.Printf("analyze with: go run ./cmd/hpnview -in %s\n", path)
}

// MoE: demonstrate why HPN kept an any-to-any tier2 instead of the 8x
// larger rail-only design (§10, Table 4): Mixture-of-Experts training
// needs cross-rail all-to-all, which a rail-only fabric simply cannot
// carry.
//
//	go run ./examples/moe
package main

import (
	"fmt"
	"log"

	"hpn"
	"hpn/internal/collective"
)

func run(railOnly bool) {
	label := "any-to-any tier2"
	cfg := hpn.SmallHPN(2, 4, 2)
	if railOnly {
		cfg.RailOnlyTier2 = true
		label = "rail-only tier2"
	}
	cluster, err := hpn.NewHPN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hosts, err := cluster.PlaceJob(8)
	if err != nil {
		log.Fatal(err)
	}
	group, err := collective.NewGroup(cluster.Net, cluster.CollectiveConfig(), hosts, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Dense-model gradient sync: rail-aligned, works everywhere.
	ar, err := group.AllReduce(256 << 20)
	if err != nil {
		log.Fatal(err)
	}

	// MoE expert dispatch: all-to-all across arbitrary (host, rail) pairs.
	a2a, err := group.AllToAll(256 << 20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s planes=%-3d AllReduce busbw %6.1f GB/s   all-to-all: %d delivered, %d unreachable\n",
		label, cluster.Topo.Planes, ar.BusBW/1e9, a2a.FlowsSent, a2a.FlowsUnreachable)
}

func main() {
	fmt.Println("64 GPUs split across two segments; dense AllReduce vs MoE all-to-all")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println("\nTable 4's trade-off in action: rail-only scales a pod 8x but strands")
	fmt.Println("every cross-rail shard, so HPN keeps the any-to-any tier2 and uses the")
	fmt.Println("Core tier (15:1, PP traffic only) for scale beyond 15K GPUs.")
}

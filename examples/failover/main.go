// Failover: train a model while a NIC-ToR link fails, comparing the paper's
// non-stacked dual-ToR access against the traditional single-ToR design —
// a miniature of Figure 18a.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"hpn"
	"hpn/internal/failure"
	"hpn/internal/sim"
)

func run(dualToR bool) {
	cfg := hpn.SmallHPN(2, 4, 4)
	label := "dual-ToR"
	if !dualToR {
		cfg.DualToR = false
		cfg.DualPlane = false
		label = "single-ToR"
	}
	cluster, err := hpn.NewHPN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hosts, err := cluster.PlaceJob(8)
	if err != nil {
		log.Fatal(err)
	}
	job, err := hpn.NewJob(hpn.LLaMa7B, hpn.Parallelism{TP: 1, PP: 1, DP: 64}, hosts)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := hpn.NewTrainer(cluster, job)
	if err != nil {
		log.Fatal(err)
	}

	// Fail one NIC-ToR link at t=10s; repair at t=30s.
	inj := failure.Injector{Net: cluster.Net}
	link := cluster.Topo.AccessLink(hosts[0], 0, 0)
	inj.FailLinkAt(10*sim.Second, link)
	inj.RecoverLinkAt(30*sim.Second, link)

	if err := trainer.Start(100000); err != nil {
		log.Fatal(err)
	}
	cluster.Eng.RunUntil(45 * sim.Second)

	fmt.Printf("\n%s: %d iterations in 45s\n", label, trainer.Iterations)
	fmt.Println("  t(s)   samples/s")
	last := -5.0
	for _, p := range trainer.Perf.Points {
		if p.T-last < 2.0 { // thin the timeline for readability
			continue
		}
		last = p.T
		fmt.Printf("  %5.1f  %8.1f\n", p.T, p.V)
	}
}

func main() {
	fmt.Println("LLaMa-7B on 64 GPUs; NIC-ToR link fails at t=10s, repaired at t=30s")
	run(true)
	run(false)
	fmt.Println("\nDual-ToR degrades ~6% and recovers instantly; single-ToR halts outright.")
}

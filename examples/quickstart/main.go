// Quickstart: build a small HPN pod, verify its structural invariants, run
// one AllReduce across two segments, and print the achieved bus bandwidth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hpn"
)

func main() {
	// A reduced HPN keeping the full structure: 2 segments x 16 hosts
	// (256 GPUs), dual-ToR access, dual-plane tier2, 8 Aggs per plane.
	cluster, err := hpn.NewHPN(hpn.SmallHPN(2, 16, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d GPUs across %d nodes, %d links\n",
		cluster.Arch, cluster.Topo.TotalGPUs(true), len(cluster.Topo.Nodes), len(cluster.Topo.Links))

	// The dual-plane invariant of §6.1: traffic entering on NIC port p is
	// delivered on port p of the destination, never crossing planes.
	if err := cluster.VerifyPlaneIsolation(500, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dual-plane isolation: verified on 500 sampled flows")

	// Place a 24-host job: the scheduler fills segments first, so most of
	// the ring stays inside tier1.
	hosts, err := cluster.PlaceJob(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed 24 hosts across %d segment(s)\n", cluster.SegmentsSpanned(hosts))

	// Establish disjoint-path RDMA rings (Algorithm 1) and run a 1 GiB
	// AllReduce with least-WQE dispatch (Algorithm 2).
	group, err := hpn.NewCollectiveGroup(cluster, cluster.CollectiveConfig(), hosts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := group.AllReduce(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AllReduce(1GiB) over %d GPUs: %.1f ms, busbw %.1f GB/s\n",
		group.GPUs(), res.Elapsed.Seconds()*1e3, res.BusBW/1e9)
}

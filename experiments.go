package hpn

import (
	"fmt"
	"sort"
)

// Scale selects experiment fidelity.
type Scale int

// Experiment scales.
const (
	// ScaleQuick shrinks host counts so every experiment runs in seconds
	// (CI, unit tests, examples). Structure and claims are unchanged.
	ScaleQuick Scale = iota
	// ScaleFull uses the paper's sizes where the fluid simulator can carry
	// them (e.g. 2300+-GPU jobs, 448-GPU sweeps).
	ScaleFull
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

var registry = map[string]Experiment{}
var order []string

func register(id, title string, run func(Scale) (*Report, error)) {
	if _, dup := registry[id]; dup {
		panic("hpn: duplicate experiment " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
	order = append(order, id)
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// ExperimentIDs returns the sorted experiment identifiers.
func ExperimentIDs() []string {
	ids := append([]string(nil), order...)
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, s Scale) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("hpn: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return e.Run(s)
}

package hpn

import (
	"hpn/internal/collective"
	"hpn/internal/core"
	"hpn/internal/health"
	"hpn/internal/memo"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
	"hpn/internal/workload"
)

// Re-exported architecture surface: these aliases are the supported public
// entry points; the internal packages behind them are implementation
// detail.

// Cluster is a built fabric (topology + simulator); see core.Cluster.
type Cluster = core.Cluster

// Arch identifies an architecture variant.
type Arch = core.Arch

// The architecture variants.
const (
	ArchHPN            = core.ArchHPN
	ArchHPNSinglePlane = core.ArchHPNSinglePlane
	ArchHPNSingleToR   = core.ArchHPNSingleToR
	ArchDCN            = core.ArchDCN
)

// HPNConfig parameterizes an HPN build; DefaultHPN gives production values.
type HPNConfig = topo.HPNConfig

// DCNConfig parameterizes the DCN+ baseline.
type DCNConfig = topo.DCNConfig

// DefaultHPN returns the production HPN configuration (15K GPUs per pod).
func DefaultHPN() HPNConfig { return topo.DefaultHPN() }

// SmallHPN returns a reduced HPN keeping the full structure.
func SmallHPN(segments, hostsPerSegment, aggsPerPlane int) HPNConfig {
	return topo.SmallHPN(segments, hostsPerSegment, aggsPerPlane)
}

// DefaultDCN returns the production DCN+ configuration (16K GPUs).
func DefaultDCN() DCNConfig { return topo.DefaultDCN() }

// SmallDCN returns a reduced DCN+ with the given pod count.
func SmallDCN(pods int) DCNConfig { return topo.SmallDCN(pods) }

// NewHPN builds an HPN (or ablation) cluster.
func NewHPN(cfg HPNConfig) (*Cluster, error) { return core.NewHPN(cfg) }

// NewDCN builds a DCN+ baseline cluster.
func NewDCN(cfg DCNConfig) (*Cluster, error) { return core.NewDCN(cfg) }

// Collective-library surface.

// CollectiveConfig tunes the communication library.
type CollectiveConfig = collective.Config

// CollectiveGroup performs collectives among a host set.
type CollectiveGroup = collective.Group

// CollectiveResult reports one operation's timing and bandwidths.
type CollectiveResult = collective.Result

// NewCollectiveGroup establishes ring connections among hosts (all rails).
func NewCollectiveGroup(c *Cluster, cfg CollectiveConfig, hosts []int) (*CollectiveGroup, error) {
	return collective.NewGroup(c.Net, cfg, hosts, 8)
}

// Workload surface.

// ModelSpec describes an LLM; LLaMa7B, LLaMa13B and GPT175B are provided.
type ModelSpec = workload.ModelSpec

// The paper's representative models.
var (
	LLaMa7B  = workload.LLaMa7B
	LLaMa13B = workload.LLaMa13B
	GPT175B  = workload.GPT175B
)

// Parallelism is a TP/PP/DP decomposition.
type Parallelism = workload.Parallelism

// Job is a placed training job.
type Job = workload.Job

// Trainer simulates training iterations over the fabric.
type Trainer = workload.Trainer

// NewJob validates and returns a training job.
func NewJob(m ModelSpec, p Parallelism, hosts []int) (*Job, error) {
	return workload.NewJob(m, p, hosts)
}

// NewTrainer builds a trainer for the job on the cluster, using the
// cluster's native collective configuration. If the cluster carries the
// online health monitor (TelemetryOptions.Health), the trainer is watched
// for per-iteration incident attribution automatically.
func NewTrainer(c *Cluster, job *Job) (*Trainer, error) {
	tr, err := workload.NewTrainer(c.Net, job, c.CollectiveConfig())
	if err != nil {
		return nil, err
	}
	if m := health.MonitorOf(c.Net); m != nil {
		m.WatchTrainer(tr)
	}
	return tr, nil
}

// Health-monitoring surface.

// HealthMonitor is the online fabric health monitor attached under
// TelemetryOptions.Health: streaming flap/stall/polarization/throughput
// detectors plus per-iteration root-cause attribution.
type HealthMonitor = health.Monitor

// HealthSummary aggregates a monitor's timeline into the hpndoctor verdict.
type HealthSummary = health.Summary

// HealthMonitorOf returns the cluster's attached health monitor, or nil.
func HealthMonitorOf(c *Cluster) *HealthMonitor { return health.MonitorOf(c.Net) }

// Iteration-memoization surface.

// MemoRecorder is the iteration-memoization recorder attached under
// TelemetryOptions.Memo: steady-state training iterations are fingerprinted
// and fast-forwarded from a recorded window instead of re-simulated.
type MemoRecorder = memo.Recorder

// MemoStats is a recorder's hit/miss/invalidation counter snapshot.
type MemoStats = memo.Stats

// MemoRecorderOf returns the cluster's attached memo recorder, or nil.
func MemoRecorderOf(c *Cluster) *MemoRecorder { return memo.RecorderOf(c.Net) }

// Telemetry surface.

// TelemetryHub bundles one run's observability: a Chrome-trace Tracer, a
// counter/gauge Registry with Prometheus/JSON exporters, and per-cluster
// samplers.
type TelemetryHub = telemetry.Hub

// TelemetryOptions configures a TelemetryHub.
type TelemetryOptions = telemetry.Options

// DefaultTelemetryOptions enables tracing and a 10ms virtual-time sampler.
func DefaultTelemetryOptions() TelemetryOptions { return telemetry.DefaultOptions() }

// NewTelemetryHub builds a hub; attach clusters with Cluster.EnableTelemetry.
func NewTelemetryHub(opt TelemetryOptions) *TelemetryHub { return telemetry.NewHub(opt) }

// EnableDefaultTelemetry installs a hub that every cluster built afterwards
// attaches to automatically, and returns it. Runners call this once from
// their flag handling; pass the result's Tracer/Registry to write out
// artifacts at exit.
func EnableDefaultTelemetry(opt TelemetryOptions) *TelemetryHub {
	h := telemetry.NewHub(opt)
	core.SetDefaultTelemetry(h)
	return h
}

package hpn

import (
	"os"
	"strings"
	"testing"
)

// Every registered experiment must run at quick scale with every
// paper-vs-measured claim holding. This is the repository's headline
// regression test: if a model change breaks a reproduced result, it fails
// here with the full report attached.
func TestAllExperimentsHoldAtQuickScale(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r, err := e.Run(ScaleQuick)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if r.ID != e.ID {
				t.Errorf("report ID %q != experiment ID %q", r.ID, e.ID)
			}
			if len(r.Claims) == 0 {
				t.Errorf("%s reports no paper-vs-measured claims", e.ID)
			}
			for _, c := range r.Claims {
				if !c.Holds {
					t.Errorf("claim %q: paper %q, measured %q — does not hold\n%s",
						c.Metric, c.Paper, c.Measured, r.String())
				}
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig9",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"tab1", "tab2", "tab3", "tab4",
		"sec7", "sec8", "sec42", "sec61a", "sec61b", "appd",
		"memo", "multipod",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(have), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", ScaleQuick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo"}
	r.AddTable(Table{Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}})
	r.AddClaim("m", "p", "v", true)
	r.AddNote("hello %d", 7)
	out := r.String()
	for _, want := range []string{"== x: demo ==", "-- t --", "HOLDS", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	if !r.Holds() {
		t.Error("Holds() false with all claims holding")
	}
	r.AddClaim("bad", "p", "v", false)
	if r.Holds() {
		t.Error("Holds() true with a failing claim")
	}
}

func TestFacadeClusterConstruction(t *testing.T) {
	c, err := NewHPN(SmallHPN(1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Arch != ArchHPN {
		t.Fatalf("arch = %v", c.Arch)
	}
	hosts, err := c.PlaceJob(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewCollectiveGroup(c, c.CollectiveConfig(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllReduce(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.BusBW <= 0 {
		t.Fatal("no busbw")
	}
	d, err := NewDCN(SmallDCN(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Arch != ArchDCN {
		t.Fatalf("arch = %v", d.Arch)
	}
}

func TestFacadeTraining(t *testing.T) {
	c, err := NewHPN(SmallHPN(1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := c.PlaceJob(4)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 4}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != 2 {
		t.Fatalf("iterations = %d", tr.Iterations)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	r, err := Run("fig5", ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := r.WriteSeriesCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("fig5 has a series; none written")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "t,value" || len(lines) != 13 {
		t.Fatalf("csv malformed: %d lines, header %q", len(lines), lines[0])
	}
	// A report without series writes nothing.
	r2, err := Run("tab3", ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	files2, err := r2.WriteSeriesCSV(dir)
	if err != nil || files2 != nil {
		t.Fatalf("tab3 wrote %v, %v", files2, err)
	}
}

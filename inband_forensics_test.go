package hpn

import (
	"testing"

	"hpn/internal/inband"
	"hpn/internal/netsim"
	"hpn/internal/route"
)

// collectInband drives a dense cross-segment flow sweep — many distinct
// 5-tuples, the statistics hash forensics needs — through a 2-segment
// cluster of the requested variant with in-band path telemetry on, and
// returns the collected per-hop records.
func collectInband(t *testing.T, dualPlane, sharedSeed bool) []inband.Record {
	t.Helper()
	cfg := SmallHPN(2, 8, 8)
	cfg.DualPlane = dualPlane
	cfg.SharedHashSeed = sharedSeed
	c, err := NewHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := c.Net.EnableInband(0)

	// Every host in segment 0 sends to its peer in segment 1 on two rails,
	// 32 connections each: 512 flows with distinct tuples, all crossing the
	// ToR->Agg->ToR cascade.
	sport := uint16(20000)
	for h := 0; h < 8; h++ {
		for nic := 0; nic < 2; nic++ {
			for k := 0; k < 32; k++ {
				sport++
				src := route.Endpoint{Host: h, NIC: nic}
				dst := route.Endpoint{Host: h + 8, NIC: nic}
				if _, err := c.Net.StartFlow(src, dst, 256<<10, netsim.FlowOpts{SrcPort: -1, Sport: sport}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	c.Eng.Run()
	if n := c.Net.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after drain", n)
	}

	recs := col.Records()
	if len(recs) == 0 {
		t.Fatal("in-band collector recorded nothing")
	}
	hashed := 0
	for i := range recs {
		if recs[i].Hashed {
			hashed++
		}
	}
	if hashed == 0 {
		t.Fatal("cross-segment sweep traversed no ECMP stage")
	}
	return recs
}

// TestPolarizationDetectorEndToEnd is the forensic acceptance check: run
// the same cross-segment sweep over both tier-2 designs and both seeding
// modes, feed the observed paths to the detector, and require that it fires
// exactly on the legacy shared-seed Clos deployment (§2.2) while staying
// quiet when switches hash independently — on the same Clos topology with
// per-switch seeds and on the dual-plane design.
func TestPolarizationDetectorEndToEnd(t *testing.T) {
	cases := []struct {
		name                  string
		dualPlane, sharedSeed bool
		wantPolarized         bool
	}{
		{"clos_shared_seed", false, true, true},
		{"clos_per_switch_seeds", false, false, false},
		{"dual_plane", true, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := collectInband(t, tc.dualPlane, tc.sharedSeed)
			pairs := inband.DetectPolarization(recs)
			got := inband.AnyPolarized(pairs)
			if got != tc.wantPolarized {
				for _, p := range pairs {
					t.Logf("  %s(%d) -> %s(%d): n=%d score=%.2f polarized=%v",
						p.NodeA, p.GroupA, p.NodeB, p.GroupB, p.Conditioned, p.Score, p.Polarized())
				}
				t.Fatalf("polarized=%v, want %v (%d stage pairs)", got, tc.wantPolarized, len(pairs))
			}
			if tc.sharedSeed {
				// The fingerprint the verdict traces back to: every hashed
				// hop reports the same switch seed.
				var seed uint64
				for i := range recs {
					if !recs[i].Hashed {
						continue
					}
					if seed == 0 {
						seed = recs[i].Seed
					}
					if recs[i].Seed != seed {
						t.Fatalf("shared-seed run reports distinct seeds %d and %d", seed, recs[i].Seed)
					}
				}
			}
		})
	}
}

// TestInbandObservedImbalance sanity-checks the observed-path ECMP
// imbalance analysis over real traffic: histograms must be well formed and
// the ToR uplink stage must actually have been measured.
func TestInbandObservedImbalance(t *testing.T) {
	groups := inband.ECMPImbalance(collectInband(t, false, false))
	if len(groups) == 0 {
		t.Fatal("no ECMP groups observed")
	}
	upSeen := false
	for _, g := range groups {
		sum := 0
		for _, c := range g.Counts {
			sum += c
		}
		if sum != g.Total || len(g.Counts) != g.Group {
			t.Fatalf("malformed histogram: %+v", g)
		}
		if g.Ratio < 1 {
			t.Fatalf("imbalance below 1: %+v", g)
		}
		if !g.Down {
			upSeen = true
		}
	}
	if !upSeen {
		t.Fatal("no uplink (ToR->Agg) group observed")
	}
}

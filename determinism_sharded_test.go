package hpn

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"hpn/internal/sim"
)

// shardedGoldenNames lists the per-domain artifacts the sharded determinism
// contract covers. Every domain (global + each pod) contributes its own
// flow log, trace, in-band telemetry, incidents and flight ring under a
// "g/" or "podN/" key.
func shardedGoldenNames(pods int, withFlight bool) []string {
	base := []string{"flowlog.tsv", "trace.json", "inband.tsv", "inband.json", "incidents.tsv", "incidents.json"}
	if withFlight {
		base = append(base, "flight.tsv")
	}
	var names []string
	for _, n := range base {
		names = append(names, "g/"+n)
	}
	for p := 0; p < pods; p++ {
		for _, n := range base {
			names = append(names, fmt.Sprintf("pod%d/%s", p, n))
		}
	}
	names = append(names, "metrics.json")
	return names
}

// shardedArtifacts runs one fully instrumented sharded training simulation —
// a 2-pod HPN fabric, per-pod engines under the windowed coordinator, full
// telemetry (flow logs, traces, in-band, health, profiler) on every domain,
// a cable failure injected into pod 0 — and returns every domain's artifact
// bytes. The memo-replay and failure paths are exercised on purpose; the
// worker count is the variable under test.
func shardedArtifacts(t *testing.T, workers, iters int, memoOn, flap bool) (map[string][]byte, MemoStats) {
	t.Helper()
	opt := DefaultTelemetryOptions()
	opt.Inband = true
	opt.Health = true
	opt.Prof = true
	// No periodic sampler: its 10ms tick is a daemon, which never fires on
	// a quiesced shard (documented sharded semantics) and blocks memoization.
	opt.SampleInterval = 0
	opt.Memo = memoOn
	hub := NewTelemetryHub(opt)
	sc, err := NewShardedHPN(MultiPodHPN(2, 1, 4, 2), hub)
	if err != nil {
		t.Fatal(err)
	}
	sc.SetWorkers(workers)
	sc.Global.Net.EnableFlowLog(0)
	for _, pc := range sc.Pods {
		pc.Net.EnableFlowLog(0)
	}
	st, err := NewShardedTrainer(sc, LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if flap {
		// The failed cable lives in pod 0, so the injection runs on pod 0's
		// engine — the owning domain — and the recovery follows mid-run.
		lk := sc.Topo.AccessLink(0, 0, 0)
		dom := sc.DomainFor(lk)
		dom.Eng.ScheduleAt(50*sim.Millisecond, func() { dom.Net.FailCable(lk) })
		dom.Eng.ScheduleAt(120*sim.Millisecond, func() { dom.Net.RecoverCable(lk) })
	}
	if err := st.Start(iters); err != nil {
		t.Fatal(err)
	}
	sc.Run()
	if got := st.Iterations(); got != iters {
		t.Fatalf("completed %d iterations, want %d", got, iters)
	}
	if st.Rounds != iters {
		t.Fatalf("completed %d cross-pod sync rounds, want %d", st.Rounds, iters)
	}
	if st.FirstErr != nil {
		t.Fatalf("cross-pod sync error: %v", st.FirstErr)
	}
	for pod, tr := range st.Trainers {
		if tr.FirstErr != nil {
			t.Fatalf("pod %d sync error: %v", pod, tr.FirstErr)
		}
	}

	var stats MemoStats
	if memoOn {
		for _, pc := range sc.Pods {
			rec := MemoRecorderOf(pc)
			if rec == nil {
				t.Fatal("memo recorder not attached to pod despite Options.Memo")
			}
			s := rec.Stats()
			stats.Hits += s.Hits
			stats.Misses += s.Misses
			stats.Replayed += s.Replayed
			stats.Blocked += s.Blocked
			stats.Invalidations += s.Invalidations
		}
	}

	out := map[string][]byte{}
	capture := func(name string, write func(w io.Writer) error) {
		var b bytes.Buffer
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		out[name] = b.Bytes()
	}
	captureDomain := func(key string, c *Cluster, h *TelemetryHub) {
		capture(key+"/flowlog.tsv", c.Net.WriteFlowLog)
		capture(key+"/trace.json", func(w io.Writer) error { _, err := h.Tracer.WriteTo(w); return err })
		capture(key+"/inband.tsv", c.Net.Inband().WriteTSV)
		capture(key+"/inband.json", c.Net.Inband().WriteJSON)
		m := HealthMonitorOf(c)
		if m == nil {
			t.Fatalf("health monitor not attached on %s", key)
		}
		capture(key+"/incidents.tsv", m.WriteTSV)
		capture(key+"/incidents.json", m.WriteJSON)
		capture(key+"/flight.tsv", h.Flight.WriteTSV)
	}
	captureDomain("g", sc.Global, hub)
	for p, pc := range sc.Pods {
		captureDomain(fmt.Sprintf("pod%d", p), pc, sc.PodHubs()[p])
	}
	// The folded registry: per-shard counters absorbed into the base in pod
	// order, so the ensemble totals must be worker-independent too. The
	// profiler's prof_* gauges are host wall/alloc measurements — published
	// as gauges precisely because they are not deterministic — so they are
	// stripped before comparison.
	capture("metrics.json", hub.Registry.WriteJSON)
	out["metrics.json"] = stripProfGauges(out["metrics.json"])
	return out, stats
}

// stripProfGauges drops the profiler's wall/alloc gauge lines from a
// metrics JSON dump, keeping every deterministic counter and count gauge.
func stripProfGauges(b []byte) []byte {
	var keep [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		if bytes.Contains(line, []byte(`"prof_`)) {
			continue
		}
		keep = append(keep, line)
	}
	return bytes.Join(keep, []byte("\n"))
}

// TestGoldenDeterminismSharded is the sharded determinism gate: the same
// instrumented multi-pod run executed serially (workers=1) and with the
// shard windows fanned out over several goroutines must produce
// byte-identical artifacts on every domain — flow logs, traces, in-band
// telemetry, incidents, flight rings and the folded metrics registry. A
// cable flap in pod 0 keeps failure handling inside the compared bytes.
func TestGoldenDeterminismSharded(t *testing.T) {
	const iters = 4
	serial, _ := shardedArtifacts(t, 1, iters, false, true)
	par, _ := shardedArtifacts(t, runtime.NumCPU(), iters, false, true)

	for _, key := range []string{"g/flowlog.tsv", "pod0/flowlog.tsv", "pod1/flowlog.tsv"} {
		if flow := serial[key]; len(flow) == 0 || bytes.Count(flow, []byte("\n")) < 2 {
			t.Fatalf("%s is empty; the domain recorded no flows", key)
		}
	}
	if bytes.Count(serial["pod0/incidents.tsv"], []byte("\n")) < 2 {
		t.Fatal("pod0 incidents TSV has no rows; the injected flap was not detected")
	}

	for _, name := range shardedGoldenNames(2, true) {
		if line, a, b := firstDivergence(serial[name], par[name]); line != 0 {
			t.Errorf("%s diverges between workers=1 and workers=%d at line %d:\n  serial:   %s\n  parallel: %s",
				name, runtime.NumCPU(), line, a, b)
		}
	}
}

// TestGoldenDeterminismShardedMemo crosses the sharded gate with iteration
// memoization: pod-local windows recorded and replayed under the gate-mode
// edge (IterGate) must leave every artifact byte-identical between worker
// counts, and the memo-on run must match the memo-off run on the artifact
// set replay covers (flight stays out: replay re-feeds observers, not the
// netsim emission sites that note into the flight ring).
func TestGoldenDeterminismShardedMemo(t *testing.T) {
	const iters = 8
	off, _ := shardedArtifacts(t, 1, iters, false, false)
	on1, stats1 := shardedArtifacts(t, 1, iters, true, false)
	onN, statsN := shardedArtifacts(t, runtime.NumCPU(), iters, true, false)

	if stats1.Replayed < 2 {
		t.Errorf("replayed %d pod iterations, want >= 2 (hits=%d misses=%d blocked=%d)",
			stats1.Replayed, stats1.Hits, stats1.Misses, stats1.Blocked)
	}
	if statsN.Replayed != stats1.Replayed {
		t.Errorf("replay count depends on workers: %d at workers=1, %d at workers=N",
			stats1.Replayed, statsN.Replayed)
	}
	for _, name := range shardedGoldenNames(2, true) {
		if line, a, b := firstDivergence(on1[name], onN[name]); line != 0 {
			t.Errorf("%s diverges between memo-on workers=1 and workers=N at line %d:\n  w1: %s\n  wN: %s",
				name, line, a, b)
		}
	}
	for _, name := range shardedGoldenNames(2, false) {
		if name == "metrics.json" {
			// The memo-on registry adds memo_* counters the off run never
			// registers; the byte comparison only holds between same-config
			// runs (covered by the workers loop above).
			continue
		}
		if line, a, b := firstDivergence(off[name], on1[name]); line != 0 {
			t.Errorf("%s diverges between memo-off and memo-on at line %d:\n  off: %s\n  on:  %s",
				name, line, a, b)
		}
	}
}

// TestShardedSchedulingPermutations is the scheduling property test: under
// every GOMAXPROCS in {1, 2, 8} and worker count in {1, 2, 8}, the sharded
// run's artifacts must equal the serial reference byte for byte. Run with
// -race in CI (make test-parallel), this also proves the windows share no
// unsynchronized state.
func TestShardedSchedulingPermutations(t *testing.T) {
	const iters = 3
	ref, _ := shardedArtifacts(t, 1, iters, false, false)
	names := shardedGoldenNames(2, true)
	for _, procs := range []int{1, 2, 8} {
		for _, workers := range []int{2, 8} {
			t.Run(fmt.Sprintf("procs=%d/workers=%d", procs, workers), func(t *testing.T) {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				got, _ := shardedArtifacts(t, workers, iters, false, false)
				for _, name := range names {
					if line, a, b := firstDivergence(ref[name], got[name]); line != 0 {
						t.Errorf("%s diverges from the serial reference at line %d:\n  ref: %s\n  got: %s",
							name, line, a, b)
					}
				}
			})
		}
	}
}

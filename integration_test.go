package hpn

import (
	"testing"

	"hpn/internal/collective"
	"hpn/internal/topo"
)

// The §3 headline: on the production pod, a job within a segment's 1K GPUs
// gets pure tier1 networking — every same-rail flow is a single ToR hop,
// and the AllReduce achieves the uncontended analytic rate.
func TestProductionPodSegmentLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("15K-GPU build")
	}
	c, err := NewHPN(DefaultHPN())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Topo.TotalGPUs(true); got != 15360 {
		t.Fatalf("pod = %d active GPUs", got)
	}
	if err := c.VerifyPlaneIsolation(300, 9); err != nil {
		t.Fatal(err)
	}

	// A 96.3%-percentile job: 1024 GPUs = 128 hosts = exactly one segment.
	hosts, err := c.PlaceJob(128)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SegmentsSpanned(hosts); got != 1 {
		t.Fatalf("1K-GPU job spans %d segments, want 1", got)
	}
	g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), hosts, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllReduce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// Everything is ToR-local: no Aggregation crossing at all.
	if c.Net.AggBits != 0 {
		t.Fatalf("segment-local job pushed %v bits through Aggs", c.Net.AggBits)
	}
	if res.BusBW < 150e9 {
		t.Fatalf("uncontended segment AllReduce busbw = %v, want >150GB/s", res.BusBW)
	}

	// The whole-pod claim: a 15K-GPU allocation exists and spans all 15
	// segments.
	all, err := c.PlaceJob(1920)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SegmentsSpanned(all); got != 15 {
		t.Fatalf("full-pod job spans %d segments", got)
	}
}

// The 100K-GPU additional capacity goal (G1): seven pods behind the Core
// tier clear 100K GPUs, and cross-pod paths exist.
func TestHundredKGoal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pod build")
	}
	cfg := DefaultHPN()
	cfg.Pods = 7
	cfg.SegmentsPerPod = 2 // build a slice of each pod; scale is computed, wiring is checked
	c, err := NewHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if errs := c.Topo.Validate(); len(errs) > 0 {
		t.Fatalf("wiring: %v", errs[0])
	}
	// Scale math: 7 pods x 15 segments x 1024 GPUs > 100K.
	full := topo.Table2()
	perPod := full[len(full)-1].Tier2GPUs
	if perPod*7 < 100000 {
		t.Fatalf("7 pods = %d GPUs, want >100K", perPod*7)
	}
	// A flow between pods transits the Core tier.
	hosts := c.Topo.Hosts
	var podA, podB int = -1, -1
	for i, h := range hosts {
		if h.Pod == 0 && podA < 0 {
			podA = i
		}
		if h.Pod == 1 && podB < 0 {
			podB = i
		}
	}
	g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), []int{podA, podB}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllReduce(64 << 20); err != nil {
		t.Fatal(err)
	}
	if c.Net.CoreBits == 0 {
		t.Fatal("cross-pod collective never crossed the Core tier")
	}
}

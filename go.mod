module hpn

go 1.22

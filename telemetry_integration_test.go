package hpn

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// telemetryRun builds a small HPN cluster with telemetry attached, trains a
// couple of iterations through a mid-run cable failure, and returns the
// serialized trace and Prometheus artifacts.
func telemetryRun(t *testing.T) (trace, prom []byte) {
	t.Helper()
	hub := NewTelemetryHub(DefaultTelemetryOptions())
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTelemetry(hub)

	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != 2 {
		t.Fatalf("completed %d iterations, want 2", tr.Iterations)
	}

	var tb, pb bytes.Buffer
	if _, err := hub.Tracer.WriteTo(&tb); err != nil {
		t.Fatal(err)
	}
	if err := hub.Registry.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), pb.Bytes()
}

func TestTelemetryEndToEnd(t *testing.T) {
	trace, prom := telemetryRun(t)

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	cats := map[string]bool{}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if c, ok := e["cat"].(string); ok {
			cats[c] = true
		}
		if ph, ok := e["ph"].(string); ok {
			phases[ph] = true
		}
	}
	// The acceptance bar: spans from at least netsim, collective, and
	// workload, plus the engine's own dispatch track and counter samples.
	for _, want := range []string{"netsim", "collective", "workload", "sim"} {
		if !cats[want] {
			t.Errorf("trace has no %q events (cats: %v)", want, cats)
		}
	}
	for _, want := range []string{"X", "C", "M"} {
		if !phases[want] {
			t.Errorf("trace has no %q phase records", want)
		}
	}

	for _, want := range []string{
		"workload_iterations_total 2",
		"collective_ops_total",
		"collective_rounds_total",
		"netsim_flows_completed_total",
		"netsim_recomputes_total",
		"# TYPE netsim_active_flows gauge",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics output missing %q:\n%s", want, prom)
		}
	}
}

func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	trace1, prom1 := telemetryRun(t)
	trace2, prom2 := telemetryRun(t)
	if !bytes.Equal(trace1, trace2) {
		t.Error("same-seed runs produced different traces")
	}
	if !bytes.Equal(prom1, prom2) {
		t.Error("same-seed runs produced different metrics")
	}
}

// TestTelemetrySamplerSeries checks the engine-driven sampler actually
// collected bounded per-port and fabric-gauge series during the run.
func TestTelemetrySamplerSeries(t *testing.T) {
	opt := DefaultTelemetryOptions()
	// A single uncontended AllReduce completes in a few virtual
	// milliseconds; sample at 0.1ms so the run spans many ticks.
	opt.SampleInterval = 100_000
	hub := NewTelemetryHub(opt)
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTelemetry(hub)
	hosts, _ := c.PlaceJob(8)
	g, err := NewCollectiveGroup(c, c.CollectiveConfig(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllReduce(256 << 20); err != nil {
		t.Fatal(err)
	}

	samplers := hub.Samplers()
	if len(samplers) != 1 {
		t.Fatalf("hub has %d samplers, want 1", len(samplers))
	}
	probes := samplers[0].Probes()
	if len(probes) == 0 {
		t.Fatal("sampler registered no probes")
	}
	var portSeries, samples int
	for _, p := range probes {
		samples += p.Ring.Len()
		if strings.Contains(p.Name, "/up") {
			portSeries++
		}
		if cap := hub.Opt.RingCap; cap > 0 && p.Ring.Len() > cap {
			t.Errorf("probe %s holds %d > ring cap %d", p.Name, p.Ring.Len(), cap)
		}
	}
	if portSeries == 0 {
		t.Error("no per-port ToR uplink series tracked")
	}
	if samples == 0 {
		t.Error("sampler never fired during the run")
	}

	// The sampler dump is registered as a run artifact.
	found := false
	for _, name := range hub.Registry.ExporterNames() {
		if name == "samples.csv" {
			found = true
		}
	}
	if !found {
		t.Errorf("samples.csv exporter not registered (have %v)", hub.Registry.ExporterNames())
	}
}

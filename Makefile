GO ?= go

.PHONY: ci fmt vet lint build test bench

# Full gate: formatting, go vet, build, hpnlint determinism/invariant rules,
# tests under the race detector.
ci: fmt vet build lint test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# hpnlint: the repo's own static-analysis suite (cmd/hpnlint) enforcing
# simulator determinism invariants — see the lint-rules table in README.md.
lint:
	$(GO) run ./cmd/hpnlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=^$$ -bench=Telemetry -benchmem .

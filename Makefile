GO ?= go

.PHONY: ci fmt vet build test bench

# Full gate: formatting, static checks, build, tests under the race detector.
ci: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=^$$ -bench=Telemetry -benchmem .

GO ?= go

.PHONY: ci fmt vet lint build test test-parallel bench bench-smoke

# Full gate: formatting, go vet, build, hpnlint determinism/invariant rules,
# tests under the race detector (serial and parallel-allocator passes), and
# the bench/forensics smoke run.
ci: fmt vet build lint test test-parallel bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# hpnlint: the repo's own static-analysis suite (cmd/hpnlint) enforcing
# simulator determinism invariants — see the lint-rules table in README.md.
lint:
	$(GO) run ./cmd/hpnlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Parallel-allocator gate: the netsim suite (differential + property tests)
# under the race detector with real parallelism available, plus the golden
# determinism tests — which include the serial-vs-parallel-fill byte
# comparison — so a scheduling-dependent allocation can never land green.
test-parallel:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/netsim/...
	GOMAXPROCS=4 $(GO) test -race -count=1 -run TestGoldenDeterminism .

bench:
	$(GO) test -run=^$$ -bench=Telemetry -benchmem .

# Smoke the perf-snapshot and in-band forensics pipeline end to end: one
# quick experiment with in-band telemetry on, a BENCH_<stamp>.json snapshot,
# then hpnview over the exported per-hop stream. Everything lands in a
# throwaway directory; the run fails if any stage errors. hpnview exits 3
# on a polarization verdict — a legitimate analysis outcome, not a failure,
# so that exit is folded to success.
bench-smoke:
	@tmp=$$(mktemp -d); \
	set -e; \
	$(GO) run ./cmd/hpnbench -exp fig13 -scale quick -inband $$tmp/artifacts -benchout $$tmp >/dev/null; \
	ls $$tmp/BENCH_*.json >/dev/null; \
	$(GO) run ./cmd/hpnview -in $$tmp/artifacts/inband.tsv -out $$tmp/forensics >/dev/null || [ $$? -eq 3 ]; \
	ls $$tmp/forensics/heatmap.csv $$tmp/forensics/contended.tsv \
	   $$tmp/forensics/imbalance.tsv $$tmp/forensics/polarization.tsv >/dev/null; \
	rm -rf $$tmp; \
	echo "bench-smoke: OK"

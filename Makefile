GO ?= go

# bench-compare regression budget: flows/sec on this machine may fall this
# fraction below the committed snapshot before the target fails. Generous by
# default because committed baselines come from other hardware; tighten via
# `make bench-compare BENCH_COMPARE_TOLERANCE=0.1` when comparing like for
# like.
BENCH_COMPARE_TOLERANCE ?= 0.5

.PHONY: ci fmt vet lint lint-fix build test test-parallel bench bench-smoke bench-shards bench-compare prof-smoke

# lint runtime budget: the interprocedural analysis (module load, summary
# fixpoint, rules) must finish inside this wall-clock bound or the target
# fails with exit 3 — a creeping-cost tripwire, not a perf benchmark.
LINT_BUDGET ?= 10s

# Full gate: formatting, go vet, build, hpnlint determinism/invariant rules,
# tests under the race detector (serial and parallel-allocator passes), the
# bench/forensics smoke run, the self-profiler smoke run, and the perf
# comparison against the last committed snapshot.
ci: fmt vet build lint test test-parallel bench-smoke prof-smoke bench-shards bench-compare

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# hpnlint: the repo's own static-analysis suite (cmd/hpnlint) enforcing
# simulator determinism invariants — see the lint-rules table in README.md.
# CI runs it in -json mode so a failure carries the machine-readable
# finding with its full interprocedural taint chain, not just the sink
# line. ./... from the module root covers every package including cmd/
# and examples/ (the loader walks the whole module); the examples tree is
# named explicitly so the gate survives a future loader that prunes it.
# For human-readable chains run `go run ./cmd/hpnlint ./...` directly.
lint:
	$(GO) run ./cmd/hpnlint -json -budget $(LINT_BUDGET) ./... ./examples/...

# Remove //hpnlint:allow directives that no longer suppress any finding
# (the allowstale rule reports them; this rewrites the files in place).
lint-fix:
	$(GO) run ./cmd/hpnlint -fix-allows ./... ./examples/...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Parallel-allocator gate: the netsim suite (differential + property tests)
# under the race detector with real parallelism available, plus the golden
# determinism tests — which include the serial-vs-parallel-fill byte
# comparison — so a scheduling-dependent allocation can never land green.
test-parallel:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/netsim/...
	GOMAXPROCS=4 $(GO) test -race -count=1 -run TestGoldenDeterminism .

bench:
	$(GO) test -run=^$$ -bench=Telemetry -benchmem .

# Smoke the perf-snapshot and in-band forensics pipeline end to end: one
# quick experiment with in-band telemetry on, a BENCH_<stamp>.json snapshot,
# then hpnview over the exported per-hop stream. Everything lands in a
# throwaway directory; the run fails if any stage errors. hpnview exits 3
# on a polarization verdict — a legitimate analysis outcome, not a failure,
# so that exit is folded to success.
bench-smoke:
	@tmp=$$(mktemp -d); \
	set -e; \
	$(GO) run ./cmd/hpnbench -exp fig13 -scale quick -inband $$tmp/artifacts -benchout $$tmp >/dev/null; \
	ls $$tmp/BENCH_*.json >/dev/null; \
	$(GO) run ./cmd/hpnview -in $$tmp/artifacts/inband.tsv -out $$tmp/forensics >/dev/null || [ $$? -eq 3 ]; \
	ls $$tmp/forensics/heatmap.csv $$tmp/forensics/contended.tsv \
	   $$tmp/forensics/imbalance.tsv $$tmp/forensics/polarization.tsv >/dev/null; \
	rm -rf $$tmp; \
	echo "bench-smoke: OK"

# Self-profiler smoke: one quick experiment with -prof on, then assert the
# profiler artifacts landed, the core engine phases actually accumulated
# (every emitted prof.tsv row must carry a nonzero count — zero-count
# phases are omitted by contract, so a zero here means the export path
# broke), and the hpnprof report/compare pipeline round-trips: a profile
# compared against itself must exit 0.
prof-smoke:
	@tmp=$$(mktemp -d); \
	set -e; \
	$(GO) run ./cmd/hpnbench -exp fig13 -scale quick -prof $$tmp/artifacts >/dev/null; \
	ls $$tmp/artifacts/prof.tsv $$tmp/artifacts/prof.json $$tmp/artifacts/flight.tsv >/dev/null; \
	awk -F'\t' 'NR>1 { seen[$$1]=1; if ($$2+0 <= 0) { print "prof-smoke: zero-count phase " $$1; bad=1 } } \
		END { n=split("sim/run sim/dispatch netsim/recompute netsim/decompose netsim/fill netsim/heap_ops", req, " "); \
		for (i=1; i<=n; i++) if (!seen[req[i]]) { print "prof-smoke: phase " req[i] " missing from prof.tsv"; bad=1 } exit bad }' \
		$$tmp/artifacts/prof.tsv; \
	$(GO) run ./cmd/hpnprof $$tmp/artifacts/prof.json >/dev/null; \
	$(GO) run ./cmd/hpnprof -compare $$tmp/artifacts/prof.json $$tmp/artifacts/prof.json >/dev/null; \
	rm -rf $$tmp; \
	echo "prof-smoke: OK"

# Sharded-engine perf gate: fig13 (single-pod — the sharded machinery must
# cost it nothing) and multipod (the sharded scenario itself), each run
# serially (-shards 1) and with parallel shard windows (-shards 0 =
# NumCPU), the pairs compared with hpnbench's own comparator (flags
# precede the positional snapshot paths). The multipod experiment
# hard-gates bit-identical simulated results internally; this target
# gates that fanning windows out never costs flows/sec. Speedup is a
# host property (needs >= 4 cores) and is claimed by the experiment, not
# asserted here.
bench-shards:
	@set -e; \
	tmp=$$(mktemp -d); \
	for exp in fig13 multipod; do \
		$(GO) run ./cmd/hpnbench -exp $$exp -scale quick -shards 1 -benchout $$tmp/$$exp-serial >/dev/null; \
		$(GO) run ./cmd/hpnbench -exp $$exp -scale quick -shards 0 -benchout $$tmp/$$exp-par >/dev/null; \
		echo "bench-shards: $$exp serial vs parallel"; \
		$(GO) run ./cmd/hpnbench -compare -tolerance $(BENCH_COMPARE_TOLERANCE) \
			$$tmp/$$exp-serial/BENCH_*.json $$tmp/$$exp-par/BENCH_*.json; \
	done; \
	rm -rf $$tmp; \
	echo "bench-shards: OK"

# Perf regression gate: take a fresh quick fig13 snapshot and compare it
# against the newest committed bench/BENCH_*.json with hpnbench's own
# comparator (flags must precede the positional snapshot paths). Exits
# nonzero when flows/sec drops by more than BENCH_COMPARE_TOLERANCE.
bench-compare:
	@tmp=$$(mktemp -d); \
	set -e; \
	base=$$(ls bench/BENCH_*.json | sort | tail -1); \
	echo "bench-compare: baseline $$base"; \
	$(GO) run ./cmd/hpnbench -exp fig13 -scale quick -benchout $$tmp >/dev/null; \
	fresh=$$(ls $$tmp/BENCH_*.json); \
	$(GO) run ./cmd/hpnbench -compare -tolerance $(BENCH_COMPARE_TOLERANCE) $$base $$fresh; \
	rm -rf $$tmp; \
	echo "bench-compare: OK"

// Command hpntopo builds a fabric, prints its inventory and oversubscription
// figures, and validates the wiring against the blueprint — the software
// equivalent of the INT-probe checks the paper uses to eradicate wiring
// mistakes before end-to-end testing (§10).
//
// Usage:
//
//	hpntopo -arch hpn                 # the production 15K-GPU pod
//	hpntopo -arch hpn -pods 2         # multi-pod with tier3 Core layer
//	hpntopo -arch hpn -single-plane   # the Figure 12a Clos ablation
//	hpntopo -arch dcn                 # the Appendix C baseline
//	hpntopo -arch frontend            # the §8 frontend network
package main

import (
	"flag"
	"fmt"
	"os"

	"hpn/internal/hashing"
	"hpn/internal/route"
	"hpn/internal/topo"
)

func main() {
	var (
		arch        = flag.String("arch", "hpn", "hpn | dcn | frontend")
		pods        = flag.Int("pods", 1, "number of pods")
		segments    = flag.Int("segments", 0, "segments per pod (0 = architecture default)")
		singleToR   = flag.Bool("single-tor", false, "HPN: single-ToR access (reliability baseline)")
		singlePlane = flag.Bool("single-plane", false, "HPN: typical-Clos tier2 (Figure 12a)")
		trace       = flag.String("trace", "", "INT-style path trace: 'srcHost:nic:port->dstHost:nic' (e.g. 0:0:1->200:0)")
	)
	flag.Parse()

	var (
		t   *topo.Topology
		err error
	)
	switch *arch {
	case "hpn":
		cfg := topo.DefaultHPN()
		cfg.Pods = *pods
		if *segments > 0 {
			cfg.SegmentsPerPod = *segments
		}
		if *singleToR {
			cfg.DualToR = false
			cfg.DualPlane = false
		}
		if *singlePlane {
			cfg.DualPlane = false
		}
		t, err = topo.BuildHPN(cfg)
		if err == nil {
			fmt.Printf("ToR oversubscription:      %.3f:1\n", topo.OversubscriptionToR(cfg))
			fmt.Printf("Agg-Core oversubscription: %.0f:1\n", topo.OversubscriptionAggCore(cfg))
		}
	case "dcn":
		cfg := topo.DefaultDCN()
		if *pods > 0 {
			cfg.Pods = *pods
		}
		t, err = topo.BuildDCN(cfg)
	case "frontend":
		t, err = topo.BuildFrontend(topo.DefaultFrontend())
	default:
		fmt.Fprintf(os.Stderr, "hpntopo: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpntopo: %v\n", err)
		os.Exit(1)
	}

	c := t.Count()
	fmt.Printf("architecture: %s (%d plane(s), %d pod(s))\n", t.Arch, t.Planes, t.Pods)
	fmt.Printf("hosts: %d   GPUs: %d (%d active)\n", c.Hosts, c.GPUs, t.TotalGPUs(true))
	fmt.Printf("ToRs: %d   Aggs: %d   Cores: %d\n", c.ToRs, c.Aggs, c.Cores)
	fmt.Printf("cables: %d\n", c.Cables)

	if *trace != "" {
		var sh, sn, sp, dh, dn int
		if _, err := fmt.Sscanf(*trace, "%d:%d:%d->%d:%d", &sh, &sn, &sp, &dh, &dn); err != nil {
			fmt.Fprintf(os.Stderr, "hpntopo: bad -trace %q: %v\n", *trace, err)
			os.Exit(2)
		}
		src := route.Endpoint{Host: sh, NIC: sn}
		dst := route.Endpoint{Host: dh, NIC: dn}
		tuple := hashing.FiveTuple{SrcAddr: src.Addr(), DstAddr: dst.Addr(),
			SrcPort: 54321, DstPort: 4791, Proto: 17}
		hops, err := route.New(t).Trace(src, dst, sp, tuple, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpntopo: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(route.FormatTrace(hops))
	}

	if errs := t.Validate(); len(errs) > 0 {
		fmt.Printf("wiring validation: %d VIOLATIONS\n", len(errs))
		for i, e := range errs {
			if i == 10 {
				fmt.Println("  ... (truncated)")
				break
			}
			fmt.Printf("  %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("wiring validation: OK (all links match the blueprint)")
}

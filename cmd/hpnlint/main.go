// Command hpnlint is the repo's determinism and invariant linter: a
// stdlib-only static-analysis suite (go/parser + go/types) enforcing the
// simulator's reproducibility contract — no wall-clock reads, no global
// math/rand, no map-order leaks into ordered output, no exact float
// equality, and nil-guarded telemetry emission.
//
// Usage:
//
//	hpnlint ./...            # lint every package in the module
//	hpnlint ./internal/...   # lint a subtree
//	hpnlint -rules           # list rules and what they catch
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Intentional
// exceptions are annotated in source:
//
//	//hpnlint:allow <rule>[,<rule>] -- <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hpn/internal/lint"
)

func main() {
	var (
		listRules = flag.Bool("rules", false, "list rules and exit")
		strict    = flag.Bool("strict", false, "treat type-check warnings as failures")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpnlint [-rules] [-strict] ./... | dir ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-10s %s\n", r.Name(), r.Doc())
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, module)

	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, arg := range flag.Args() {
		loaded, err := loadArg(loader, root, arg)
		if err != nil {
			fatal(err)
		}
		for _, pkg := range loaded {
			if !seen[pkg.ImportPath] {
				seen[pkg.ImportPath] = true
				pkgs = append(pkgs, pkg)
			}
		}
	}

	warned := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "hpnlint: typecheck %s: %v\n", pkg.ImportPath, terr)
			warned = true
		}
	}
	if warned && *strict {
		os.Exit(2)
	}

	diags := lint.Run(loader.Fset, loader.Info, pkgs, lint.AllRules())
	for _, d := range diags {
		// Positions relative to the module root keep output stable across
		// checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hpnlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// loadArg resolves one command-line argument: "./..."-style patterns load
// the whole subtree, plain paths load a single package directory.
func loadArg(loader *lint.Loader, root, arg string) ([]*lint.Package, error) {
	if arg == "all" || arg == "./..." || arg == "..." {
		return loader.LoadAll()
	}
	if rest, ok := strings.CutSuffix(arg, "/..."); ok {
		all, err := loader.LoadAll()
		if err != nil {
			return nil, err
		}
		prefix, err := filepath.Abs(rest)
		if err != nil {
			return nil, err
		}
		var out []*lint.Package
		for _, pkg := range all {
			if pkg.Dir == prefix || strings.HasPrefix(pkg.Dir, prefix+string(filepath.Separator)) {
				out = append(out, pkg)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("hpnlint: no packages under %s", arg)
		}
		return out, nil
	}
	dir, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("hpnlint: %s is outside module root %s", arg, root)
	}
	importPath := module(loader, rel)
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

func module(loader *lint.Loader, rel string) string {
	if rel == "." {
		return loader.Module
	}
	return loader.Module + "/" + filepath.ToSlash(rel)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpnlint:", err)
	os.Exit(2)
}

// Command hpnlint is the repo's determinism and invariant linter: a
// stdlib-only static-analysis suite (go/parser + go/types) that builds a
// module-wide call graph, computes per-function dataflow summaries to a
// fixpoint, and enforces the simulator's reproducibility contract — no
// wall-clock reads, no global math/rand, no map-order leaks into ordered
// output (directly or through any call chain), no exact float equality,
// nil-guarded telemetry/observer emission, order-stable goroutine merges,
// order-stable float reduction, engine-cursor record stamping, and no
// stale allow directives.
//
// Usage:
//
//	hpnlint ./...               # lint every package in the module
//	hpnlint ./internal/...      # lint a subtree (summaries still span imports)
//	hpnlint -json ./...         # machine-readable findings with taint chains
//	hpnlint -fix-allows ./...   # delete stale //hpnlint:allow directives
//	hpnlint -budget 10s ./...   # fail if the analysis exceeds the budget
//	hpnlint -rules              # list rules and what they catch
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure, 3 budget
// exceeded. Intentional exceptions are annotated in source:
//
//	//hpnlint:allow <rule>[,<rule>] -- <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hpn/internal/lint"
)

func main() {
	var (
		listRules = flag.Bool("rules", false, "list rules and exit")
		strict    = flag.Bool("strict", false, "treat type-check warnings as failures")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array with taint chains")
		fixAllows = flag.Bool("fix-allows", false, "delete stale //hpnlint:allow directives in place")
		budget    = flag.Duration("budget", 0, "fail (exit 3) if load+analysis exceeds this duration")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpnlint [-rules] [-strict] [-json] [-fix-allows] [-budget 10s] ./... | dir ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-10s %s\n", r.Name(), r.Doc())
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// The budget clock measures the linter itself, so it legitimately reads
	// the wall clock — the thing it forbids in simulator code.
	start := time.Now() //hpnlint:allow wallclock -- lint runtime budget, not sim state

	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, module)

	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, arg := range flag.Args() {
		loaded, err := loadArg(loader, root, arg)
		if err != nil {
			fatal(err)
		}
		for _, pkg := range loaded {
			if !seen[pkg.ImportPath] {
				seen[pkg.ImportPath] = true
				pkgs = append(pkgs, pkg)
			}
		}
	}

	warned := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "hpnlint: typecheck %s: %v\n", pkg.ImportPath, terr)
			warned = true
		}
	}
	if warned && *strict {
		os.Exit(2)
	}

	// Summaries are computed over everything the loader pulled in (the
	// requested packages plus their module-internal imports), so linting a
	// subtree still sees through calls into the rest of the module.
	analysis := lint.Analyze(loader.Fset, loader.Info, pkgs, loader.Loaded(), lint.AllRules())
	diags := analysis.Diags

	if *fixAllows {
		stale := analysis.Prog.StaleAllows()
		fixed, err := lint.FixAllows(stale)
		for _, f := range fixed {
			if rel, rerr := filepath.Rel(root, f); rerr == nil {
				f = rel
			}
			fmt.Printf("hpnlint: fixed %s\n", f)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hpnlint: removed %d stale allow directive(s) in %d file(s)\n", len(stale), len(fixed))
		return
	}

	// Positions relative to the module root keep output stable across
	// checkouts.
	for i := range diags {
		diags[i].Pos.Filename = relTo(root, diags[i].Pos.Filename)
		for j := range diags[i].Chain {
			diags[i].Chain[j].Pos.Filename = relTo(root, diags[i].Chain[j].Pos.Filename)
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.Render())
		}
	}

	elapsed := time.Since(start) //hpnlint:allow wallclock -- lint runtime budget, not sim state
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "hpnlint: analysis took %v, over the %v budget\n", elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hpnlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relTo maps an absolute path under root to its root-relative form,
// leaving anything else untouched.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// loadArg resolves one command-line argument: "./..."-style patterns load
// the whole subtree, plain paths load a single package directory.
func loadArg(loader *lint.Loader, root, arg string) ([]*lint.Package, error) {
	if arg == "all" || arg == "./..." || arg == "..." {
		return loader.LoadAll()
	}
	if rest, ok := strings.CutSuffix(arg, "/..."); ok {
		all, err := loader.LoadAll()
		if err != nil {
			return nil, err
		}
		prefix, err := filepath.Abs(rest)
		if err != nil {
			return nil, err
		}
		var out []*lint.Package
		for _, pkg := range all {
			if pkg.Dir == prefix || strings.HasPrefix(pkg.Dir, prefix+string(filepath.Separator)) {
				out = append(out, pkg)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("hpnlint: no packages under %s", arg)
		}
		return out, nil
	}
	dir, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("hpnlint: %s is outside module root %s", arg, root)
	}
	importPath := module(loader, rel)
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

func module(loader *lint.Loader, rel string) string {
	if rel == "." {
		return loader.Module
	}
	return loader.Module + "/" + filepath.ToSlash(rel)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpnlint:", err)
	os.Exit(2)
}

// Command hpndoctor renders the online health monitor's causal timeline:
// the incidents.tsv artifact a run exported (under hpnsim/hpnbench
// -health) becomes a chronological incident listing, a per-iteration
// attribution timeline ("iteration 47: +31% comm time <- flap-storm on
// tor3<->agg2"), and a one-line verdict.
//
// Usage:
//
//	hpndoctor -in artifacts/incidents.tsv
//
// Exit codes follow the hpnview convention: 0 healthy, 1 I/O failure,
// 2 usage, 3 fabric incidents detected, 4 iterations regressed with no
// fabric incident to blame.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpn/internal/health"
	"hpn/internal/sim"
)

func main() {
	var (
		in  = flag.String("in", "incidents.tsv", "health timeline TSV artifact to render")
		all = flag.Bool("all", false, "list every iteration, not just regressed ones")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	incs, iters, err := health.ParseTSV(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if len(incs) == 0 && len(iters) == 0 {
		fail(fmt.Errorf("%s holds no timeline rows; was the run driven with -health?", *in))
	}

	s := health.Summarize(incs, iters)
	fmt.Printf("%s: %d incidents (%d open), %d iterations (%d regressed, %d attributed)\n",
		*in, s.Incidents, s.Open, s.Iterations, s.Regressed, s.Attributed)

	if len(incs) > 0 {
		fmt.Println("\nincidents:")
		for i := range incs {
			inc := &incs[i]
			state := fmt.Sprintf("%v .. %v", inc.Start, inc.End)
			if inc.Open {
				state = fmt.Sprintf("%v .. (still open)", inc.Start)
			}
			fmt.Printf("  #%-3d %-20s %-28s %-30s events=%-5d peak=%-8.3g %s\n",
				inc.ID, inc.Kind, inc.Subject, state, inc.Events, inc.Peak, inc.Detail)
		}
	}

	shown := 0
	for i := range iters {
		it := &iters[i]
		if !*all && !it.Regressed {
			continue
		}
		if shown == 0 {
			if *all {
				fmt.Println("\niteration timeline:")
			} else {
				fmt.Println("\nregressed iterations:")
			}
		}
		shown++
		fmt.Printf("  [%v] %s\n", sim.Time(it.End), it.Verdict(incs))
	}

	fmt.Printf("\nverdict: %s\n", s.Verdict())
	os.Exit(s.ExitCode())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpndoctor:", err)
	os.Exit(1)
}

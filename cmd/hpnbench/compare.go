package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runCompare diffs two BENCH_<stamp>.json snapshots (see benchSnapshot) and
// writes a per-scenario delta table: wall time, heap allocations and
// simulated-flow throughput. It returns the number of regressions — a
// scenario whose flows/sec dropped by more than the tolerance relative to
// the old snapshot. Scenarios are compared in old-snapshot order, then any
// new-only scenarios are listed; scenarios present only on one side never
// count as regressions (the run sets differ, not the code).
func runCompare(oldPath, newPath string, tolerance float64, w io.Writer) (int, error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return 0, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return 0, err
	}

	newByName := map[string]benchEntry{}
	for _, e := range newSnap.Entries {
		newByName[e.Scenario] = e
	}
	oldNames := map[string]bool{}

	fmt.Fprintf(w, "bench compare: %s (gomaxprocs %d) -> %s (gomaxprocs %d), tolerance %.0f%%\n",
		oldSnap.Stamp, oldSnap.GoMaxProcs, newSnap.Stamp, newSnap.GoMaxProcs, tolerance*100)
	fmt.Fprintf(w, "%-10s %12s %12s %8s %12s %12s %8s %14s %14s %8s\n",
		"scenario", "wall_old", "wall_new", "d_wall",
		"allocs_old", "allocs_new", "d_alloc",
		"fps_old", "fps_new", "d_fps")

	regressions := 0
	for _, o := range oldSnap.Entries {
		oldNames[o.Scenario] = true
		n, ok := newByName[o.Scenario]
		if !ok {
			fmt.Fprintf(w, "%-10s %12s %12s   (scenario missing from new snapshot)\n",
				o.Scenario, fmtMS(o.WallNS), "-")
			continue
		}
		status := ""
		if o.FlowsPerSec > 0 && n.FlowsPerSec < o.FlowsPerSec/(1+tolerance) {
			status = "  REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-10s %12s %12s %7.1f%% %12d %12d %7.1f%% %14.0f %14.0f %7.1f%%%s\n",
			o.Scenario,
			fmtMS(o.WallNS), fmtMS(n.WallNS), pctDelta(float64(o.WallNS), float64(n.WallNS)),
			o.Allocs, n.Allocs, pctDelta(float64(o.Allocs), float64(n.Allocs)),
			o.FlowsPerSec, n.FlowsPerSec, pctDelta(o.FlowsPerSec, n.FlowsPerSec),
			status)
	}
	for _, n := range newSnap.Entries {
		if oldNames[n.Scenario] {
			continue
		}
		fmt.Fprintf(w, "%-10s %12s %12s   (scenario new in this snapshot)\n",
			n.Scenario, "-", fmtMS(n.WallNS))
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d scenario(s) regressed beyond %.0f%% flows/sec tolerance\n",
			regressions, tolerance*100)
	}
	return regressions, nil
}

func loadSnapshot(path string) (*benchSnapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s benchSnapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no entries", path)
	}
	return &s, nil
}

// pctDelta returns the signed percent change from old to cur (0 when old
// is not positive: snapshot fields are non-negative counters, and an empty
// baseline has no meaningful ratio).
func pctDelta(old, cur float64) float64 {
	if old <= 0 {
		return 0
	}
	return (cur - old) / old * 100
}

// fmtMS renders nanoseconds as milliseconds with a unit.
func fmtMS(ns int64) string {
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}

// Command hpnbench regenerates the tables and figures of "Alibaba HPN: A
// Data Center Network for Large Language Model Training" (SIGCOMM 2024)
// from the hpnsim reproduction.
//
// Usage:
//
//	hpnbench -list                 # enumerate experiments
//	hpnbench -exp fig15            # run one experiment (quick scale)
//	hpnbench -exp all -scale full  # run everything at paper scale
//
// Each experiment prints the rows/series the paper reports plus a
// paper-vs-measured claim table; the exit status is non-zero if any claim
// fails to hold.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hpn"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale    = flag.String("scale", "quick", "quick | full")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also dump recorded time series as CSV into this directory")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON covering every cluster built (one trace process each)")
		promOut  = flag.String("metrics", "", "write Prometheus-text metrics to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range hpn.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var hub *hpn.TelemetryHub
	if *traceOut != "" || *promOut != "" {
		opt := hpn.DefaultTelemetryOptions()
		opt.Trace = *traceOut != ""
		// Experiments build many clusters; bound the trace so a full sweep
		// cannot exhaust memory.
		opt.MaxTraceEvents = 2_000_000
		hub = hpn.EnableDefaultTelemetry(opt)
	}

	var s hpn.Scale
	switch *scale {
	case "quick":
		s = hpn.ScaleQuick
	case "full":
		s = hpn.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "hpnbench: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	var ids []string
	if *exp == "all" {
		for _, e := range hpn.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*exp}
	}

	failed := 0
	for _, id := range ids {
		// Wall-clock timing of the whole experiment run for the operator's
		// benefit; it never feeds simulator state or run artifacts.
		start := time.Now() //hpnlint:allow wallclock -- CLI run timing, printed only
		r, err := hpn.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(r.String())
		fmt.Printf("(%s scale, %.2fs)\n\n", *scale, time.Since(start).Seconds()) //hpnlint:allow wallclock -- CLI run timing, printed only
		if *csvDir != "" {
			files, err := r.WriteSeriesCSV(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: csv: %v\n", err)
				failed++
			}
			for _, f := range files {
				fmt.Printf("wrote %s\n", f)
			}
		}
		if !r.Holds() {
			failed++
		}
	}
	if hub != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(f *os.File) error {
				_, err := hub.Tracer.WriteTo(f)
				return err
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: trace: %v\n", err)
				failed++
			} else {
				fmt.Printf("wrote %s (%d events, %d dropped)\n",
					*traceOut, hub.Tracer.Events(), hub.Tracer.Dropped())
			}
		}
		if *promOut != "" {
			if err := writeFile(*promOut, func(f *os.File) error {
				return hub.Registry.WritePrometheus(f)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: metrics: %v\n", err)
				failed++
			} else {
				fmt.Printf("wrote %s\n", *promOut)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpnbench: %d experiment(s) with failing claims\n", failed)
		os.Exit(1)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command hpnbench regenerates the tables and figures of "Alibaba HPN: A
// Data Center Network for Large Language Model Training" (SIGCOMM 2024)
// from the hpnsim reproduction.
//
// Usage:
//
//	hpnbench -list                 # enumerate experiments
//	hpnbench -exp fig15            # run one experiment (quick scale)
//	hpnbench -exp all -scale full  # run everything at paper scale
//
// Each experiment prints the rows/series the paper reports plus a
// paper-vs-measured claim table; the exit status is non-zero if any claim
// fails to hold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"hpn"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale    = flag.String("scale", "quick", "quick | full")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also dump recorded time series as CSV into this directory")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON covering every cluster built (one trace process each)")
		promOut  = flag.String("metrics", "", "write Prometheus-text metrics to this file")
		inbandTo = flag.String("inband", "", "enable in-band path telemetry on every cluster; write the per-hop inband.tsv/json (and other registry artifacts) into this directory after the sweep")
		healthTo = flag.String("health", "", "enable online fabric health monitoring on every cluster; write the incidents.tsv/json causal timelines (render with hpndoctor) into this directory after the sweep")
		benchOut = flag.String("benchout", "", "write a BENCH_<stamp>.json perf snapshot (scenario, ns/op, allocs, flows/sec) into this directory")
		compare  = flag.Bool("compare", false, "compare two BENCH snapshots: hpnbench -compare old.json new.json")
		tol      = flag.Float64("tolerance", 0.10, "with -compare: flows/sec may drop by this fraction before a scenario counts as regressed")
		useMemo  = flag.String("memo", "off", "iteration memoization on every cluster: on | off (fast-forward repeated steady-state iterations; disables periodic sampling; composes with -shards)")
		shards   = flag.Int("shards", 1, "worker goroutines for sharded experiments' parallel windows (0 = NumCPU); results are identical for every value, only wall-clock changes")
		profTo   = flag.String("prof", "", "enable engine self-profiling on every cluster; write prof.tsv/json (render with hpnprof) and flight.tsv into this directory after the sweep")
		cpuOut   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole sweep to this file")
		memOut   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	memoOn := false
	switch *useMemo {
	case "on":
		memoOn = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "hpnbench: -memo must be on or off, got %q\n", *useMemo)
		os.Exit(2)
	}

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "hpnbench: -shards must be >= 0, got %d\n", *shards)
		os.Exit(2)
	}
	// -memo and -shards compose: sharded trainers close memoization windows
	// at the cross-pod gate (pod-local record/replay), so both can be on at
	// once — the sharded determinism gates cover exactly this combination.
	hpn.SetShardWorkers(*shards)

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "hpnbench: -compare needs exactly two snapshot paths: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *tol, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: compare: %v\n", err)
			os.Exit(2)
		}
		if regressed > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range hpn.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var hub *hpn.TelemetryHub
	if *traceOut != "" || *promOut != "" || *inbandTo != "" || *healthTo != "" || *benchOut != "" || *profTo != "" || memoOn {
		opt := hpn.DefaultTelemetryOptions()
		opt.Trace = *traceOut != ""
		opt.Inband = *inbandTo != ""
		opt.Health = *healthTo != ""
		opt.Memo = memoOn
		opt.Prof = *profTo != ""
		// Experiments build many clusters; bound the trace and the in-band
		// stream so a full sweep cannot exhaust memory.
		opt.MaxTraceEvents = 2_000_000
		opt.InbandMax = 2_000_000
		if *traceOut == "" && *promOut == "" && *inbandTo == "" && *healthTo == "" {
			// -benchout and/or -prof alone: counters only, no sampler
			// daemons perturbing the measured runs — the self-profiler
			// accumulates at instrumentation points and needs no periodic
			// ticks, and a perf measurement should not pay for sampling
			// nobody asked for.
			opt.SampleInterval = 0
		}
		if memoOn && opt.SampleInterval != 0 {
			// The sampler's periodic daemon tick would land inside every
			// candidate window and block memoization entirely.
			opt.SampleInterval = 0
			fmt.Println("memo: periodic sampling disabled (incompatible with fast-forward)")
		}
		hub = hpn.EnableDefaultTelemetry(opt)
	}

	var s hpn.Scale
	switch *scale {
	case "quick":
		s = hpn.ScaleQuick
	case "full":
		s = hpn.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "hpnbench: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	var ids []string
	if *exp == "all" {
		for _, e := range hpn.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*exp}
	}

	failed := 0
	var bench []benchEntry
	for _, id := range ids {
		flows0 := flowsCompleted(hub)
		allocs0 := mallocs()
		// Wall-clock timing of the whole experiment run for the operator's
		// benefit; it never feeds simulator state or run artifacts.
		start := time.Now() //hpnlint:allow wallclock -- CLI run timing, printed only
		r, err := hpn.Run(id, s)
		wall := time.Since(start) //hpnlint:allow wallclock -- CLI run timing, printed only
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(r.String())
		fmt.Printf("(%s scale, %.2fs)\n\n", *scale, wall.Seconds())
		if *benchOut != "" {
			flows := flowsCompleted(hub) - flows0
			e := benchEntry{
				Scenario: id,
				Scale:    *scale,
				WallNS:   wall.Nanoseconds(),
				Allocs:   mallocs() - allocs0,
				Flows:    int64(flows),
				Holds:    r.Holds(),
			}
			if wall > 0 {
				e.FlowsPerSec = flows / wall.Seconds()
			}
			bench = append(bench, e)
		}
		if *csvDir != "" {
			files, err := r.WriteSeriesCSV(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: csv: %v\n", err)
				failed++
			}
			for _, f := range files {
				fmt.Printf("wrote %s\n", f)
			}
		}
		if !r.Holds() {
			failed++
		}
	}
	if *benchOut != "" {
		path, err := writeBenchSnapshot(*benchOut, *scale, bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: benchout: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote %s\n", path)
		}
	}
	if hub != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(f *os.File) error {
				_, err := hub.Tracer.WriteTo(f)
				return err
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: trace: %v\n", err)
				failed++
			} else {
				// Drops surface through the shared OverflowWarnings pass
				// below, same as hpnsim.
				fmt.Printf("wrote %s (%d events)\n", *traceOut, hub.Tracer.Events())
			}
		}
		if *promOut != "" {
			if err := writeFile(*promOut, func(f *os.File) error {
				return hub.Registry.WritePrometheus(f)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: metrics: %v\n", err)
				failed++
			} else {
				fmt.Printf("wrote %s\n", *promOut)
			}
		}
		for _, dir := range artifactDirs(*inbandTo, *healthTo, *profTo) {
			paths, err := hub.WriteArtifacts(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpnbench: artifacts: %v\n", err)
				failed++
			}
			for _, p := range paths {
				fmt.Printf("wrote %s\n", p)
			}
		}
		for _, w := range hpn.OverflowWarnings(hub) {
			fmt.Fprintln(os.Stderr, "hpnbench:", w)
		}
	}
	if *memOut != "" {
		if err := writeFile(*memOut, func(f *os.File) error {
			return pprof.Lookup("allocs").WriteTo(f, 0)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hpnbench: memprofile: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote %s\n", *memOut)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpnbench: %d experiment(s) with failing claims\n", failed)
		os.Exit(1)
	}
}

// benchEntry is one experiment's row in the BENCH_<stamp>.json snapshot:
// wall-clock ns/op (op = one experiment run at the chosen scale), heap
// allocations, and simulated-flow throughput of the host process.
type benchEntry struct {
	Scenario    string  `json:"scenario"`
	Scale       string  `json:"scale"`
	WallNS      int64   `json:"wall_ns"`
	Allocs      uint64  `json:"allocs"`
	Flows       int64   `json:"flows"`
	FlowsPerSec float64 `json:"flows_per_sec"`
	Holds       bool    `json:"holds"`
}

// benchSnapshot is the top-level BENCH_<stamp>.json document.
type benchSnapshot struct {
	Stamp      string       `json:"stamp"`
	Scale      string       `json:"scale"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Entries    []benchEntry `json:"entries"`
}

// flowsCompleted sums every *netsim_flows_completed_total counter in the
// hub registry (one per attached cluster, prefixed c2_, c3_, ... past the
// first). Returns 0 without a hub.
func flowsCompleted(hub *hpn.TelemetryHub) float64 {
	return hpn.MetricSum(hub, "netsim_flows_completed_total")
}

// artifactDirs deduplicates the artifact output directories (both -inband
// and -health dump the full registry artifact set).
func artifactDirs(dirs ...string) []string {
	var out []string
	for _, d := range dirs {
		if d == "" {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// mallocs reads the process-lifetime heap allocation count.
func mallocs() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// writeBenchSnapshot writes dir/BENCH_<stamp>.json and returns its path.
func writeBenchSnapshot(dir, scale string, entries []benchEntry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	// The stamp names the artifact after the real-world run instant; it is
	// operator metadata, never simulator input.
	stamp := time.Now().UTC().Format("20060102T150405Z") //hpnlint:allow wallclock -- artifact filename stamp
	snap := benchSnapshot{
		Stamp:      stamp,
		Scale:      scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Entries:    entries,
	}
	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+stamp+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name string, s benchSnapshot) string {
	t.Helper()
	buf, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", benchSnapshot{
		Stamp: "20260101T000000Z", Scale: "quick", GoMaxProcs: 1,
		Entries: []benchEntry{
			{Scenario: "fig13", WallNS: 100e6, Allocs: 1000, Flows: 1000, FlowsPerSec: 10000},
			{Scenario: "fig15", WallNS: 50e6, Allocs: 500, Flows: 500, FlowsPerSec: 10000},
		},
	})
	newPath := writeSnap(t, dir, "new.json", benchSnapshot{
		Stamp: "20260102T000000Z", Scale: "quick", GoMaxProcs: 1,
		Entries: []benchEntry{
			{Scenario: "fig13", WallNS: 200e6, Allocs: 1000, Flows: 1000, FlowsPerSec: 5000},
			{Scenario: "fig15", WallNS: 48e6, Allocs: 480, Flows: 500, FlowsPerSec: 10400},
		},
	})

	var b strings.Builder
	regressed, err := runCompare(oldPath, newPath, 0.10, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (fig13 halved its throughput)\n%s", regressed, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "fig13") {
		t.Fatalf("output does not flag fig13:\n%s", out)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", benchSnapshot{
		Stamp: "a", Entries: []benchEntry{
			{Scenario: "fig13", WallNS: 100e6, FlowsPerSec: 10000},
		},
	})
	newPath := writeSnap(t, dir, "new.json", benchSnapshot{
		Stamp: "b", Entries: []benchEntry{
			{Scenario: "fig13", WallNS: 105e6, FlowsPerSec: 9500},
		},
	})
	var b strings.Builder
	regressed, err := runCompare(oldPath, newPath, 0.10, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (5%% drop is inside 10%% tolerance)\n%s", regressed, b.String())
	}
}

func TestCompareDisjointScenarios(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", benchSnapshot{
		Stamp: "a", Entries: []benchEntry{
			{Scenario: "gone", WallNS: 10e6, FlowsPerSec: 100},
			{Scenario: "both", WallNS: 10e6, FlowsPerSec: 100},
		},
	})
	newPath := writeSnap(t, dir, "new.json", benchSnapshot{
		Stamp: "b", Entries: []benchEntry{
			{Scenario: "both", WallNS: 10e6, FlowsPerSec: 100},
			{Scenario: "added", WallNS: 10e6, FlowsPerSec: 100},
		},
	})
	var b strings.Builder
	regressed, err := runCompare(oldPath, newPath, 0.10, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (one-sided scenarios are not regressions)\n%s", regressed, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "missing from new") || !strings.Contains(out, "new in this") {
		t.Fatalf("one-sided scenarios not reported:\n%s", out)
	}
}

func TestCompareBadInput(t *testing.T) {
	dir := t.TempDir()
	empty := writeSnap(t, dir, "empty.json", benchSnapshot{Stamp: "x"})
	ok := writeSnap(t, dir, "ok.json", benchSnapshot{
		Stamp: "y", Entries: []benchEntry{{Scenario: "fig13", FlowsPerSec: 1}},
	})
	var b strings.Builder
	if _, err := runCompare(empty, ok, 0.10, &b); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := runCompare(filepath.Join(dir, "missing.json"), ok, 0.10, &b); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Command hpnprof renders and compares engine self-profiles (the
// prof.json artifact written under hpnsim/hpnbench -prof).
//
// Usage:
//
//	hpnprof run/prof.json                    # phase-breakdown report
//	hpnprof -compare old.json new.json       # diff two runs
//
// -compare mirrors hpnbench -compare: exit status 1 when any phase's
// ns-per-occurrence regressed beyond the tolerance, 2 on usage or I/O
// errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpn/internal/prof"
)

func main() {
	var (
		compare = flag.Bool("compare", false, "compare two profiles: hpnprof -compare old.json new.json")
		tol     = flag.Float64("tolerance", prof.DefaultCompareTolerance, "with -compare: a phase's ns/op may grow by this fraction before it counts as regressed")
		minWall = flag.Float64("minwall", float64(prof.DefaultCompareMinWallNS)/1e6, "with -compare: phases under this many milliseconds of old wall time never count as regressed (timer noise)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "hpnprof: -compare needs exactly two profile paths: old.json new.json")
			os.Exit(2)
		}
		oldP, err := loadProfile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnprof: %v\n", err)
			os.Exit(2)
		}
		newP, err := loadProfile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpnprof: %v\n", err)
			os.Exit(2)
		}
		if regressed := prof.Compare(oldP, newP, *tol, int64(*minWall*1e6), os.Stdout); regressed > 0 {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "hpnprof: need one profile path (or -compare old.json new.json)")
		os.Exit(2)
	}
	p, err := loadProfile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpnprof: %v\n", err)
		os.Exit(2)
	}
	prof.Report(p, os.Stdout)
}

func loadProfile(path string) (*prof.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := prof.ParseProfile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

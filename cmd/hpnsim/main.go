// Command hpnsim runs a training job on a simulated fabric and prints the
// per-iteration timeline: the general driver behind the paper's Figure 15
// and 16 style end-to-end comparisons.
//
// Usage:
//
//	hpnsim -arch hpn  -model llama-13b -hosts 16 -iters 5
//	hpnsim -arch dcn  -model gpt-175b  -hosts 72 -tp 8 -pp 8 -iters 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"hpn"
)

func main() {
	var (
		arch     = flag.String("arch", "hpn", "hpn | dcn")
		model    = flag.String("model", "llama-13b", "llama-7b | llama-13b | gpt-175b")
		hosts    = flag.Int("hosts", 16, "hosts (8 GPUs each)")
		tp       = flag.Int("tp", 8, "tensor parallelism")
		pp       = flag.Int("pp", 1, "pipeline parallelism")
		iters    = flag.Int("iters", 5, "iterations to simulate")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		promOut  = flag.String("metrics", "", "write Prometheus-text metrics to this file")
		inbandTo = flag.String("inband", "", "enable in-band path telemetry and write run artifacts (per-hop inband.tsv/json, flow log, samples) into this directory")
		healthTo = flag.String("health", "", "enable online fabric health monitoring and write run artifacts (incidents.tsv/json causal timeline; render with hpndoctor) into this directory")
		useMemo  = flag.String("memo", "off", "iteration memoization: on | off (fast-forward repeated steady-state iterations; disables periodic sampling; composes with -pods/-shards)")
		pods     = flag.Int("pods", 1, "pods: >1 simulates each pod on its own engine shard under the conservative-window coordinator (-arch hpn only); every pod runs its own -hosts job plus a cross-pod gradient exchange")
		shards   = flag.Int("shards", 1, "worker goroutines executing parallel shard windows (0 = NumCPU); needs -pods > 1; results are identical for every value")
		profTo   = flag.String("prof", "", "enable engine self-profiling and write run artifacts (prof.tsv/json phase breakdown — render with hpnprof — and the flight.tsv incident event ring) into this directory")
		cpuOut   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memOut   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	memoOn := false
	switch *useMemo {
	case "on":
		memoOn = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "hpnsim: -memo must be on or off, got %q\n", *useMemo)
		os.Exit(2)
	}

	var hub *hpn.TelemetryHub
	if *traceOut != "" || *promOut != "" || *inbandTo != "" || *healthTo != "" || *profTo != "" || memoOn {
		opt := hpn.DefaultTelemetryOptions()
		opt.Trace = *traceOut != ""
		opt.Inband = *inbandTo != ""
		opt.Health = *healthTo != ""
		opt.Memo = memoOn
		opt.Prof = *profTo != ""
		if memoOn && opt.SampleInterval != 0 {
			// The sampler's periodic daemon tick would land inside every
			// candidate window and block memoization entirely.
			opt.SampleInterval = 0
			fmt.Println("memo: periodic sampling disabled (incompatible with fast-forward)")
		}
		hub = hpn.EnableDefaultTelemetry(opt)
	}

	var m hpn.ModelSpec
	switch strings.ToLower(*model) {
	case "llama-7b":
		m = hpn.LLaMa7B
	case "llama-13b":
		m = hpn.LLaMa13B
	case "gpt-175b":
		m = hpn.GPT175B
	default:
		fmt.Fprintf(os.Stderr, "hpnsim: unknown model %q\n", *model)
		os.Exit(2)
	}

	gpus := *hosts * 8
	if gpus%(*tp**pp) != 0 {
		fmt.Fprintf(os.Stderr, "hpnsim: %d GPUs not divisible by tp*pp=%d\n", gpus, *tp**pp)
		os.Exit(2)
	}
	par := hpn.Parallelism{TP: *tp, PP: *pp, DP: gpus / (*tp * *pp)}

	if *shards != 1 && *pods <= 1 {
		fmt.Fprintln(os.Stderr, "hpnsim: -shards needs -pods > 1 (a single-pod fabric has nothing to shard)")
		os.Exit(2)
	}
	if *pods > 1 {
		if *arch != "hpn" {
			fmt.Fprintf(os.Stderr, "hpnsim: sharded multi-pod runs support -arch hpn only, got %q\n", *arch)
			os.Exit(2)
		}
		runSharded(hub, m, par, *pods, *shards, *hosts, *iters,
			artifactDirs(*inbandTo, *healthTo, *profTo), *traceOut, *promOut, *memOut, *inbandTo != "")
		return
	}

	var (
		c   *hpn.Cluster
		err error
	)
	switch *arch {
	case "hpn":
		segHosts := *hosts
		if segHosts > 128 {
			segHosts = 128
		}
		segments := (*hosts + segHosts - 1) / segHosts
		c, err = hpn.NewHPN(hpn.SmallHPN(segments, segHosts, 16))
	case "dcn":
		c, err = hpn.NewDCN(hpn.SmallDCN((*hosts + 63) / 64))
	default:
		fmt.Fprintf(os.Stderr, "hpnsim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	if *inbandTo != "" {
		// The per-hop stream is exported alongside the completed-flow log.
		c.Net.EnableFlowLog(0)
	}

	placed, err := c.PlaceJob(*hosts)
	if err != nil {
		fail(err)
	}
	job, err := hpn.NewJob(m, par, placed)
	if err != nil {
		fail(err)
	}
	tr, err := hpn.NewTrainer(c, job)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s on %s: %d GPUs (TP=%d PP=%d DP=%d), %d segments\n",
		m.Name, c.Arch, par.GPUs(), par.TP, par.PP, par.DP, c.SegmentsSpanned(placed))
	if err := tr.Start(*iters); err != nil {
		fail(err)
	}
	c.Eng.Run()

	fmt.Printf("%-5s  %-12s  %-12s\n", "iter", "samples/s", "sync (s)")
	for i, p := range tr.Perf.Points {
		fmt.Printf("%-5d  %-12.1f  %-12.4f\n", i+1, p.V, tr.CommSeconds.Points[i].V)
	}
	fmt.Printf("mean samples/s: %.1f\n", tr.MeanSamplesPerSecond())

	if m := hpn.HealthMonitorOf(c); m != nil {
		fmt.Printf("health: %s\n", m.Summary().Verdict())
	}
	if r := hpn.MemoRecorderOf(c); r != nil {
		s := r.Stats()
		fmt.Printf("memo: %d hits, %d misses, %d blocked, %d invalidations, %d/%d iterations replayed\n",
			s.Hits, s.Misses, s.Blocked, s.Invalidations, s.Replayed, tr.Iterations)
	}
	if tr.FirstErr != nil {
		fmt.Fprintf(os.Stderr, "hpnsim: warning: sync-phase launch error (first recorded; count in workload_sync_errors_total): %v\n", tr.FirstErr)
	}
	for _, w := range hpn.OverflowWarnings(hub) {
		fmt.Fprintln(os.Stderr, "hpnsim:", w)
	}

	if hub != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(f *os.File) error {
				_, err := hub.Tracer.WriteTo(f)
				return err
			}); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s (%d events)\n", *traceOut, hub.Tracer.Events())
		}
		if *promOut != "" {
			if err := writeFile(*promOut, func(f *os.File) error {
				return hub.Registry.WritePrometheus(f)
			}); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *promOut)
		}
		for _, dir := range artifactDirs(*inbandTo, *healthTo, *profTo) {
			paths, err := hub.WriteArtifacts(dir)
			if err != nil {
				fail(err)
			}
			for _, p := range paths {
				fmt.Printf("wrote %s\n", p)
			}
		}
	}
	if *memOut != "" {
		if err := writeFile(*memOut, func(f *os.File) error {
			return pprof.Lookup("allocs").WriteTo(f, 0)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *memOut)
	}
}

// runSharded is the -pods > 1 path: one engine shard per pod under the
// conservative-window coordinator, one training job per pod, and the
// cross-pod gradient exchange on the global domain.
func runSharded(hub *hpn.TelemetryHub, m hpn.ModelSpec, par hpn.Parallelism,
	pods, workers, hosts, iters int, dirs []string, traceOut, promOut, memOut string, flowLog bool) {
	segHosts := hosts
	if segHosts > 128 {
		segHosts = 128
	}
	segments := (hosts + segHosts - 1) / segHosts
	sc, err := hpn.NewShardedHPN(hpn.MultiPodHPN(pods, segments, segHosts, 16), hub)
	if err != nil {
		fail(err)
	}
	sc.SetWorkers(workers)
	if flowLog {
		sc.Global.Net.EnableFlowLog(0)
		for _, pc := range sc.Pods {
			pc.Net.EnableFlowLog(0)
		}
	}
	st, err := hpn.NewShardedTrainer(sc, m, par)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s on %s: %d pods x %d GPUs (TP=%d PP=%d DP=%d), %d shard workers\n",
		m.Name, sc.Arch, pods, par.GPUs(), par.TP, par.PP, par.DP, sc.Coord.Workers())
	if err := st.Start(iters); err != nil {
		fail(err)
	}
	sc.Run()

	fmt.Printf("%-5s  %-12s  %-12s\n", "pod", "samples/s", "iterations")
	for p, tr := range st.Trainers {
		fmt.Printf("%-5d  %-12.1f  %-12d\n", p, tr.MeanSamplesPerSecond(), tr.Iterations)
	}
	fmt.Printf("cross-pod rounds: %d (%.4fs total), windows: %d, cross-domain posts: %d\n",
		st.Rounds, st.CrossSeconds, sc.Coord.Windows, sc.Coord.Exchanged)
	for p, pc := range sc.Pods {
		if hm := hpn.HealthMonitorOf(pc); hm != nil {
			fmt.Printf("pod %d health: %s\n", p, hm.Summary().Verdict())
		}
		if r := hpn.MemoRecorderOf(pc); r != nil {
			s := r.Stats()
			fmt.Printf("pod %d memo: %d hits, %d misses, %d blocked, %d invalidations, %d/%d iterations replayed\n",
				p, s.Hits, s.Misses, s.Blocked, s.Invalidations, s.Replayed, st.Trainers[p].Iterations)
		}
		if st.Trainers[p].FirstErr != nil {
			fmt.Fprintf(os.Stderr, "hpnsim: warning: pod %d sync-phase launch error: %v\n", p, st.Trainers[p].FirstErr)
		}
	}
	if st.FirstErr != nil {
		fmt.Fprintf(os.Stderr, "hpnsim: warning: cross-pod sync launch error: %v\n", st.FirstErr)
	}
	for _, w := range hpn.OverflowWarnings(hub) {
		fmt.Fprintln(os.Stderr, "hpnsim:", w)
	}

	if hub != nil {
		if traceOut != "" {
			// The flat trace file carries the global domain's process; the
			// per-pod traces land as c2_trace.json, ... in the artifact dirs.
			if err := writeFile(traceOut, func(f *os.File) error {
				_, err := hub.Tracer.WriteTo(f)
				return err
			}); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s (%d events)\n", traceOut, hub.Tracer.Events())
		}
		if promOut != "" {
			if err := writeFile(promOut, func(f *os.File) error {
				return hub.Registry.WritePrometheus(f)
			}); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", promOut)
		}
		for _, dir := range dirs {
			paths, err := sc.WriteArtifacts(dir)
			if err != nil {
				fail(err)
			}
			for _, p := range paths {
				fmt.Printf("wrote %s\n", p)
			}
		}
	}
	if memOut != "" {
		if err := writeFile(memOut, func(f *os.File) error {
			return pprof.Lookup("allocs").WriteTo(f, 0)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", memOut)
	}
}

// artifactDirs deduplicates the artifact output directories (both -inband
// and -health dump the full registry artifact set).
func artifactDirs(dirs ...string) []string {
	var out []string
	for _, d := range dirs {
		if d == "" {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpnsim:", err)
	os.Exit(1)
}

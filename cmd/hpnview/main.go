// Command hpnview is the offline fabric-forensics analyzer: it ingests the
// in-band path telemetry a run exported (the inband.tsv artifact produced
// under hpnsim/hpnbench -inband) and answers the paper's per-link
// questions after the fact:
//
//   - heatmap.csv: per-link utilization matrix, tier × link (gigabits);
//   - contended.tsv: the top-k contended links with the flow sets that
//     collided there (queue residency, attributed bits, flow IDs);
//   - imbalance.tsv: observed-path ECMP imbalance per (switch, group),
//     scored with the max/mean metric of Figure 13;
//   - polarization.tsv + stdout verdict: whether downstream bucket choices
//     are degenerate conditioned on upstream choices — the §2.2 hash
//     polarization fingerprint.
//
// Usage:
//
//	hpnview -in artifacts/inband.tsv -out forensics -topk 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hpn/internal/inband"
)

func main() {
	var (
		in   = flag.String("in", "inband.tsv", "in-band per-hop TSV artifact to analyze")
		out  = flag.String("out", "", "directory for analysis outputs (empty: stdout summary only)")
		topk = flag.Int("topk", 10, "how many contended links to report")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	recs, err := inband.ParseTSV(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if len(recs) == 0 {
		fail(fmt.Errorf("%s holds no records; was the run driven with -inband?", *in))
	}

	usage := inband.LinkUsageTable(recs)
	contended := inband.TopContended(usage, *topk)
	imbalance := inband.ECMPImbalance(recs)
	pairs := inband.DetectPolarization(recs)

	fmt.Printf("%s: %d records, %d flows, %d links, %d ECMP groups, %d cascaded stage pairs\n",
		*in, len(recs), countFlows(recs), len(usage), len(imbalance), len(pairs))

	fmt.Printf("\ntop %d contended links (queue byte-seconds, Gbit, flows):\n", len(contended))
	for _, u := range contended {
		fmt.Printf("  %-28s %-10s q=%-12s %8.3f Gbit  %d flows %s\n",
			u.Name, u.Tier, fmtG(u.Queue), u.Bits/1e9, len(u.Flows), flowSet(u.Flows, 8))
	}

	fmt.Println("\nobserved-path ECMP imbalance (max/mean; 1.0 = even):")
	for _, g := range imbalance {
		mode := "5-tuple"
		if g.PerPort {
			mode = "per-port"
		}
		dir := "up"
		if g.Down {
			dir = "down"
		}
		fmt.Printf("  %-12s group=%-3d %-4s n=%-5d %-8s imbalance=%.2f\n",
			g.Node, g.Group, dir, g.Total, mode, g.Ratio)
	}

	fmt.Println("\npolarization detector (conditional bucket coverage; <0.6 = degenerate):")
	anyPolarized := false
	for i := range pairs {
		p := &pairs[i]
		verdict := "ok"
		if p.Polarized() {
			verdict = "POLARIZED"
			anyPolarized = true
		} else if p.Conditioned < 8 {
			verdict = "(too few samples)"
		}
		fmt.Printf("  %s(%d) -> %s(%d): n=%-5d score=%.2f %s\n",
			p.NodeA, p.GroupA, p.NodeB, p.GroupB, p.Conditioned, p.Score, verdict)
	}
	if anyPolarized {
		fmt.Println("\nverdict: HASH POLARIZATION DETECTED — upstream and downstream stages share hash outcomes (§2.2)")
	} else {
		fmt.Println("\nverdict: no polarization — downstream choices look independent of upstream buckets")
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		write(filepath.Join(*out, "heatmap.csv"), func(f *os.File) error {
			return inband.WriteHeatmapCSV(f, usage)
		})
		write(filepath.Join(*out, "contended.tsv"), func(f *os.File) error {
			return writeContended(f, contended)
		})
		write(filepath.Join(*out, "imbalance.tsv"), func(f *os.File) error {
			return writeImbalance(f, imbalance)
		})
		write(filepath.Join(*out, "polarization.tsv"), func(f *os.File) error {
			return writePolarization(f, pairs)
		})
	}
	if anyPolarized {
		os.Exit(3) // distinguishable from usage (2) and I/O (1) failures
	}
}

func countFlows(recs []inband.Record) int {
	seen := map[int64]bool{}
	for i := range recs {
		seen[recs[i].Flow] = true
	}
	return len(seen)
}

// flowSet renders up to max flow IDs, eliding the rest.
func flowSet(flows []int64, max int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, f := range flows {
		if i >= max {
			fmt.Fprintf(&b, " +%d more", len(flows)-max)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatInt(f, 10))
	}
	b.WriteByte(']')
	return b.String()
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func writeContended(f *os.File, links []inband.LinkUsage) error {
	if _, err := fmt.Fprintf(f, "link\tname\ttier\tqueue_bytesec\tgbit\tflows\tflow_ids\n"); err != nil {
		return err
	}
	for _, u := range links {
		if _, err := fmt.Fprintf(f, "%d\t%s\t%s\t%s\t%s\t%d\t%s\n",
			u.Link, u.Name, u.Tier,
			strconv.FormatFloat(u.Queue, 'g', -1, 64),
			strconv.FormatFloat(u.Bits/1e9, 'g', -1, 64),
			len(u.Flows), flowSet(u.Flows, 64)); err != nil {
			return err
		}
	}
	return nil
}

func writeImbalance(f *os.File, groups []inband.GroupImbalance) error {
	if _, err := fmt.Fprintf(f, "node\tgroup\tdir\tmode\tn\timbalance\tcounts\n"); err != nil {
		return err
	}
	for _, g := range groups {
		mode := "5tuple"
		if g.PerPort {
			mode = "perport"
		}
		dir := "up"
		if g.Down {
			dir = "down"
		}
		if _, err := fmt.Fprintf(f, "%s\t%d\t%s\t%s\t%d\t%s\t%v\n",
			g.Node, g.Group, dir, mode, g.Total,
			strconv.FormatFloat(g.Ratio, 'g', -1, 64), g.Counts); err != nil {
			return err
		}
	}
	return nil
}

func writePolarization(f *os.File, pairs []inband.StagePair) error {
	if _, err := fmt.Fprintf(f, "node_a\tgroup_a\tnode_b\tgroup_b\tn\tscore\tpolarized\n"); err != nil {
		return err
	}
	for i := range pairs {
		p := &pairs[i]
		if _, err := fmt.Fprintf(f, "%s\t%d\t%s\t%d\t%d\t%s\t%v\n",
			p.NodeA, p.GroupA, p.NodeB, p.GroupB, p.Conditioned,
			strconv.FormatFloat(p.Score, 'g', -1, 64), p.Polarized()); err != nil {
			return err
		}
	}
	return nil
}

func write(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpnview:", err)
	os.Exit(1)
}

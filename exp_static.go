package hpn

import (
	"fmt"
	"math"

	"hpn/internal/collective"
	"hpn/internal/dualtor"
	"hpn/internal/failure"
	"hpn/internal/metrics"
	"hpn/internal/thermal"
	"hpn/internal/topo"
	"hpn/internal/workload"
)

func init() {
	register("fig1", "Traditional cloud computing traffic pattern", runFig1)
	register("fig3", "Number of connections per host (CDF)", runFig3)
	register("fig4", "Checkpoint intervals of representative LLM jobs", runFig4)
	register("fig5", "Monthly link failure ratio", runFig5)
	register("fig6", "GPUs used by production training jobs (CDF)", runFig6)
	register("fig9", "51.2T single-chip power and cooling", runFig9)
	register("tab1", "Complexity of path selection", runTab1)
	register("tab2", "Key mechanisms affecting maximal scale", runTab2)
	register("tab3", "Traffic patterns of different parallelisms", runTab3)
	register("tab4", "Any-to-any tier2 vs rail-only tier2", runTab4)
	register("fig20", "DCN+ topology inventory (Appendix C)", runFig20)
	register("sec42", "Stacked vs non-stacked dual-ToR reliability", runSec42)
}

func runFig1(Scale) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Traditional cloud computing traffic pattern"}
	pts := workload.CloudTraffic(1)
	in := &metrics.Series{Name: "traffic-in-gbps"}
	conns := &metrics.Series{Name: "connections"}
	maxIn, maxConn := 0.0, 0.0
	for _, p := range pts {
		in.Add(p.Hour, p.InGbps)
		conns.Add(p.Hour, p.Connections)
		maxIn = math.Max(maxIn, p.InGbps)
		maxConn = math.Max(maxConn, p.Connections)
	}
	r.Series = append(r.Series, in, conns)
	r.AddTable(Table{
		Title:  "24h summary (5-min samples)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"mean traffic-in (Gbps)", fmtF(in.Mean())},
			{"peak traffic-in (Gbps)", fmtF(maxIn)},
			{"peak connections", fmtF(maxConn)},
			{"NIC utilization at peak", pct(maxIn / 25)},
		},
	})
	r.AddClaim("utilization stays below 20% of NIC", "<20%", pct(maxIn/25), maxIn/25 < 0.2)
	r.AddClaim("connections are O(100K)", "~100-200K", fmtF(maxConn), maxConn > 1e5 && maxConn < 3e5)
	hourly := in.Downsample(1.0)
	swing := (hourly.Max() - hourly.Min()) / hourly.Max()
	r.AddClaim("traffic changes slowly (hourly swing, not bursts)", "smooth diurnal", pct(swing), swing < 0.8)
	return r, nil
}

func runFig3(Scale) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Connections per host (LLM training)"}
	d := workload.ConnectionsPerHost(5000, 2)
	rows := [][]string{}
	for _, p := range []float64{1, 25, 50, 75, 99} {
		rows = append(rows, []string{fmt.Sprintf("P%.0f", p), fmtF(d.Percentile(p))})
	}
	r.AddTable(Table{Title: "connections per host", Header: []string{"percentile", "connections"}, Rows: rows})
	lo, hi := d.Percentile(1), d.Percentile(99)
	r.AddClaim("a few dozen to hundreds of connections", "10^1..10^3", fmt.Sprintf("%.0f..%.0f", lo, hi),
		lo >= 10 && hi <= 1000)
	return r, nil
}

func runFig4(Scale) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Checkpoint intervals of representative LLM jobs"}
	hours := workload.Figure4Intervals()
	rows := [][]string{}
	ok := true
	for i, h := range hours {
		rows = append(rows, []string{fmt.Sprintf("LLM%d", i+1), fmtF(h)})
		if h < 2 || h > 4.2 {
			ok = false
		}
	}
	r.AddTable(Table{Title: "checkpoint interval (hours)", Header: []string{"job", "hours"}, Rows: rows})
	r.AddClaim("intervals range 2-4 hours", "2-4h", fmt.Sprintf("%.1f-%.1fh", hours[0], hours[len(hours)-1]), ok)
	cm := workload.DefaultCheckpointModel()
	overhead := cm.SaveSeconds / cm.IntervalSeconds()
	r.AddClaim("checkpoint overhead ~5%", "~5%", pct(overhead), overhead > 0.03 && overhead < 0.07)
	cost := workload.RollbackCostDollars(3, 20000)
	r.AddClaim("crash cost for a 3K-GPU job", "~$30K", fmt.Sprintf("$%.0f", cost), cost > 20000 && cost < 40000)
	return r, nil
}

func runFig5(Scale) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Monthly link failure ratio"}
	s := failure.MonthlyLinkFailureRatios(12, 5)
	rows := [][]string{}
	for _, p := range s.Points {
		rows = append(rows, []string{fmt.Sprintf("month %02.0f", p.T+1), pct(p.V)})
	}
	r.AddTable(Table{Title: "link failure ratio by month", Header: []string{"month", "ratio"}, Rows: rows})
	r.Series = append(r.Series, s)
	mean := s.Mean()
	r.AddClaim("mean monthly link failure ratio", "~0.057%", pct(mean), mean > 0.0003 && mean < 0.0009)
	crashes := failure.CrashesPerMonth(384, failure.ProductionRates())
	r.AddClaim("fabric-fault interruptions for a 3K-GPU job", "1-2 per month", fmtF(crashes),
		crashes >= 1 && crashes <= 3)
	return r, nil
}

func runFig6(Scale) (*Report, error) {
	r := &Report{ID: "fig6", Title: "GPUs used in production training jobs"}
	d := workload.JobSizeDist(20000, 11)
	rows := [][]string{}
	for _, x := range []float64{64, 256, 1024, 2048, 3000} {
		rows = append(rows, []string{fmtF(x), pct(d.CDFAt(x))})
	}
	r.AddTable(Table{Title: "job-size CDF", Header: []string{"#GPUs", "CDF"}, Rows: rows})
	at1k := d.CDFAt(1024)
	r.AddClaim("jobs within one 1K-GPU segment", "96.3%", pct(at1k), at1k > 0.94 && at1k < 0.99)
	r.AddClaim("largest job below 3K GPUs", "<3K", fmtF(d.Percentile(100)), d.Percentile(100) < 3000)
	r.AddClaim("a 15K pod covers all jobs", "100%", pct(d.CDFAt(15360)), d.CDFAt(15360) >= 1)
	return r, nil
}

func runFig9(Scale) (*Report, error) {
	r := &Report{ID: "fig9", Title: "51.2T single-chip power and cooling"}
	rows := [][]string{}
	for _, c := range []float64{3.2, 6.4, 12.8, 25.6, 51.2} {
		rows = append(rows, []string{fmt.Sprintf("%.1fT", c), fmtF(thermal.ChipPowerWatts(c))})
	}
	r.AddTable(Table{Title: "Fig 9a: power by chip capacity", Header: []string{"capacity", "watts"}, Rows: rows})

	var rows9b [][]string
	var optOK, othersFail = false, true
	for _, row := range thermal.Figure9b() {
		rows9b = append(rows9b, []string{
			row.Solution, fmtF(row.AllowedPowerW), fmtF(row.ChipPowerW), fmt.Sprintf("%v", row.Sustains),
		})
		if row.Solution == "Optimized VC" {
			optOK = row.Sustains
		} else if row.Sustains {
			othersFail = false
		}
	}
	r.AddTable(Table{Title: "Fig 9b: cooling solutions vs 51.2T power",
		Header: []string{"solution", "allowed W", "chip W", "sustains"}, Rows: rows9b})
	step := thermal.ChipPowerWatts(51.2)/thermal.ChipPowerWatts(25.6) - 1
	r.AddClaim("power step 25.6T -> 51.2T", "+45%", pct(step), math.Abs(step-0.45) < 0.01)
	r.AddClaim("only the optimized VC sustains full power", "optimized VC only", fmt.Sprintf("%v", optOK && othersFail), optOK && othersFail)
	sols := thermal.Solutions()
	gain := sols[1].ThetaJA/sols[2].ThetaJA - 1
	r.AddClaim("optimized VC cooling-efficiency gain", "+15%", pct(gain), math.Abs(gain-0.15) < 0.01)
	return r, nil
}

func runTab1(Scale) (*Report, error) {
	r := &Report{ID: "tab1", Title: "Complexity of path selection"}
	rows := [][]string{}
	var hpnSpace int
	minRatio := math.Inf(1)
	for _, row := range topo.Table1() {
		rows = append(rows, []string{row.Arch, fmtF(float64(row.GPUs)), fmtF(float64(row.Tiers)),
			row.Participating, fmt.Sprintf("O(%d)", row.SearchSpace)})
		if row.Arch == "Pod in HPN" {
			hpnSpace = row.SearchSpace
		} else if hpnSpace > 0 {
			minRatio = math.Min(minRatio, float64(row.SearchSpace)/float64(hpnSpace))
		}
	}
	r.AddTable(Table{Title: "Table 1", Header: []string{"arch", "#GPUs", "tiers", "LB switches", "search space"}, Rows: rows})
	r.AddClaim("HPN search space", "O(60)", fmt.Sprintf("O(%d)", hpnSpace), hpnSpace == 60)
	r.AddClaim("reduction vs 3-tier fabrics", "1-2 orders of magnitude",
		fmt.Sprintf("%.0fx-...", minRatio), minRatio >= 10)

	// Measured counterpart on built fabrics.
	hpnC, err := NewHPN(func() HPNConfig { c := DefaultHPN(); c.SegmentsPerPod = 2; return c }())
	if err != nil {
		return nil, err
	}
	dcnC, err := NewDCN(SmallDCN(1))
	if err != nil {
		return nil, err
	}
	mh, md := hpnC.PathSearchSpace(0, 0), dcnC.PathSearchSpace(0, 0)
	r.AddTable(Table{Title: "measured on built fabrics", Header: []string{"arch", "search space"},
		Rows: [][]string{{"HPN", fmtF(float64(mh))}, {"DCN+", fmtF(float64(md))}}})
	r.AddClaim("measured HPN search space matches design", "60", fmtF(float64(mh)), mh == 60)
	return r, nil
}

func runTab2(Scale) (*Report, error) {
	r := &Report{ID: "tab2", Title: "Key mechanisms affecting maximal scale"}
	rows := [][]string{}
	var last topo.ScaleRow
	for _, row := range topo.Table2() {
		rows = append(rows, []string{row.Mechanism, fmtF(float64(row.Tier1GPUs)), fmtF(float64(row.Tier2GPUs))})
		last = row
	}
	r.AddTable(Table{Title: "Table 2 (cumulative)", Header: []string{"mechanism", "tier1 scale", "tier2 scale"}, Rows: rows})
	r.AddClaim("tier1 reaches 1K GPUs per segment", "1K", fmtF(float64(last.Tier1GPUs)), last.Tier1GPUs == 1024)
	r.AddClaim("tier2 reaches 15K GPUs per pod", "15K", fmtF(float64(last.Tier2GPUs)), last.Tier2GPUs == 15360)
	cfg := DefaultHPN()
	r.AddClaim("ToR oversubscription", "1.067:1", fmt.Sprintf("%.3f:1", topo.OversubscriptionToR(cfg)),
		math.Abs(topo.OversubscriptionToR(cfg)-1.067) < 0.01)
	r.AddClaim("Agg-Core oversubscription", "15:1", fmt.Sprintf("%.0f:1", topo.OversubscriptionAggCore(cfg)),
		math.Abs(topo.OversubscriptionAggCore(cfg)-15) < 1e-9)

	// Cross-check against an actually-built pod.
	built, err := NewHPN(cfg)
	if err != nil {
		return nil, err
	}
	got := built.Topo.TotalGPUs(true)
	r.AddClaim("built pod active GPUs", "15360", fmtF(float64(got)), got == 15360)
	return r, nil
}

func runTab3(Scale) (*Report, error) {
	r := &Report{ID: "tab3", Title: "Traffic patterns of different parallelisms (GPT-3 175B, TP=8 PP=8 DP=512)"}
	rows := [][]string{}
	vols := map[string]float64{}
	for _, row := range workload.Table3() {
		rows = append(rows, []string{row.Strategy, metrics.HumanBytes(row.Bytes), row.Operation})
		vols[row.Strategy] = row.Bytes
	}
	r.AddTable(Table{Title: "Table 3", Header: []string{"strategy", "volume", "operations"}, Rows: rows})
	r.AddClaim("DP volume", "5.5GB", metrics.HumanBytes(vols["DP"]), math.Abs(vols["DP"]-5.5e9)/5.5e9 < 0.02)
	r.AddClaim("PP volume", "6MB", metrics.HumanBytes(vols["PP"]), math.Abs(vols["PP"]-6e6)/6e6 < 0.1)
	r.AddClaim("TP volume", "560MB", metrics.HumanBytes(vols["TP"]), math.Abs(vols["TP"]-560e6)/560e6 < 0.02)
	r.AddClaim("PP is the lightest (safe to cross pods, §7)", "PP << TP << DP",
		fmt.Sprintf("%v < %v < %v", metrics.HumanBytes(vols["PP"]), metrics.HumanBytes(vols["TP"]), metrics.HumanBytes(vols["DP"])),
		vols["PP"] < vols["TP"] && vols["TP"] < vols["DP"])
	return r, nil
}

func runTab4(Scale) (*Report, error) {
	r := &Report{ID: "tab4", Title: "Any-to-any tier2 vs rail-only tier2"}
	rows := [][]string{}
	designs := topo.Table4()
	for _, d := range designs {
		rows = append(rows, []string{d.Name, fmtF(float64(d.Tier2Planes)), fmtF(float64(d.GPUsPerPod)), d.CommLimits})
	}
	r.AddTable(Table{Title: "Table 4", Header: []string{"design", "tier2 planes", "GPUs per pod", "comm limits"}, Rows: rows})
	r.AddClaim("any-to-any pod scale", "15360", fmtF(float64(designs[0].GPUsPerPod)), designs[0].GPUsPerPod == 15360)
	r.AddClaim("rail-only pod scale", "122880", fmtF(float64(designs[1].GPUsPerPod)), designs[1].GPUsPerPod == 122880)
	r.AddClaim("rail-only plane count", "16", fmtF(float64(designs[1].Tier2Planes)), designs[1].Tier2Planes == 16)

	// Demonstrate the communication limitation on built fabrics: an
	// MoE-style all-to-all (cross-rail by nature) completes on the
	// any-to-any tier2 but has unreachable shards on the rail-only tier2,
	// while rail-aligned AllReduce works on both (§10, "the evolution of
	// new models would break this assumption").
	runA2A := func(railOnly bool) (unreachable, sent int, allReduceOK bool, err error) {
		cfg := topo.SmallHPN(2, 4, 2)
		cfg.RailOnlyTier2 = railOnly
		c, err := NewHPN(cfg)
		if err != nil {
			return 0, 0, false, err
		}
		hosts, err := c.PlaceJob(8)
		if err != nil {
			return 0, 0, false, err
		}
		g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), hosts, 8)
		if err != nil {
			return 0, 0, false, err
		}
		ar, err := g.AllReduce(16 << 20)
		if err != nil {
			return 0, 0, false, err
		}
		res, err := g.AllToAll(16 << 20)
		if err != nil {
			return 0, 0, false, err
		}
		return res.FlowsUnreachable, res.FlowsSent, ar.BusBW > 0, nil
	}
	a2aUn, a2aSent, a2aAR, err := runA2A(false)
	if err != nil {
		return nil, err
	}
	roUn, roSent, roAR, err := runA2A(true)
	if err != nil {
		return nil, err
	}
	r.AddTable(Table{
		Title:  "MoE all-to-all on built fabrics (64 GPUs)",
		Header: []string{"tier2 design", "shards delivered", "shards unreachable", "rail-aligned AllReduce"},
		Rows: [][]string{
			{"any-to-any", fmtF(float64(a2aSent)), fmtF(float64(a2aUn)), okStr(a2aAR)},
			{"rail-only", fmtF(float64(roSent)), fmtF(float64(roUn)), okStr(roAR)},
		},
	})
	r.AddClaim("any-to-any carries all-to-all", "none unreachable", fmtF(float64(a2aUn)), a2aUn == 0)
	r.AddClaim("rail-only breaks cross-rail traffic", "rail-only limitation",
		fmt.Sprintf("%d/%d shards unreachable", roUn, roUn+roSent), roUn > 0)
	r.AddClaim("rail-only still serves rail-aligned collectives", "works", okStr(roAR), roAR)
	return r, nil
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "broken"
}

func runFig20(Scale) (*Report, error) {
	r := &Report{ID: "fig20", Title: "DCN+ topology (Appendix C)"}
	t, err := topo.BuildDCN(DefaultDCN())
	if err != nil {
		return nil, err
	}
	if errs := t.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("DCN+ wiring invalid: %v", errs[0])
	}
	c := t.Count()
	r.AddTable(Table{Title: "inventory", Header: []string{"item", "count"}, Rows: [][]string{
		{"pods", fmtF(float64(t.Pods))},
		{"hosts", fmtF(float64(c.Hosts))},
		{"GPUs", fmtF(float64(c.GPUs))},
		{"ToRs", fmtF(float64(c.ToRs))},
		{"Aggs", fmtF(float64(c.Aggs))},
		{"Cores", fmtF(float64(c.Cores))},
	}})
	r.AddClaim("segment = 128 GPUs", "128", fmtF(float64(c.GPUs/(t.Pods*4))), c.GPUs/(t.Pods*4) == 128)
	r.AddClaim("pod = 512 GPUs (4 segments)", "512", fmtF(float64(c.GPUs/t.Pods)), c.GPUs/t.Pods == 512)
	r.AddClaim("cluster max", "16384 GPUs", fmtF(float64(c.GPUs)), c.GPUs == 16384)
	return r, nil
}

func runSec42(Scale) (*Report, error) {
	r := &Report{ID: "sec42", Title: "Stacked vs non-stacked dual-ToR reliability (Monte Carlo)"}
	p := dualtor.DefaultReliabilityParams()
	rows := [][]string{}
	var stacked, nonstacked, single dualtor.ReliabilityReport
	for _, d := range []dualtor.Design{dualtor.SingleToR, dualtor.StackedDualToR, dualtor.NonStackedDualToR} {
		rep := dualtor.SimulateReliability(d, p)
		rows = append(rows, []string{d.String(), fmtF(float64(rep.Outages)), fmtF(float64(rep.Degraded)),
			fmt.Sprintf("%.3f", rep.OutagesPerKRackMon)})
		switch d {
		case dualtor.SingleToR:
			single = rep
		case dualtor.StackedDualToR:
			stacked = rep
		case dualtor.NonStackedDualToR:
			nonstacked = rep
		}
	}
	r.AddTable(Table{
		Title:  fmt.Sprintf("%d racks x %d months", p.Racks, p.Months),
		Header: []string{"design", "rack outages", "degraded events", "outages/1K rack-months"},
		Rows:   rows,
	})
	r.AddClaim("stack issues dominate stacked critical failures", ">40%",
		pct(stacked.StackShareOfCrit), stacked.StackShareOfCrit > 0.40)
	r.AddClaim("non-stacked eliminates rack outages", "0 observed (8 months)",
		fmtF(float64(nonstacked.Outages)), nonstacked.Outages == 0)
	r.AddClaim("single-ToR suffers outages both designs avoid", ">0",
		fmtF(float64(single.Outages)), single.Outages > 0)

	// The LACP disguise (§4.2) itself.
	bond, err := dualtor.NegotiateNonStacked(dualtor.NonStackedConfigs(), 42)
	if err != nil {
		return nil, err
	}
	r.AddClaim("non-stacked LACP negotiates one virtual device",
		"reserved MAC 00:00:5e:00:01:01, distinct portIDs",
		fmt.Sprintf("%v members %v", bond.SysID, bond.Members),
		bond.SysID == dualtor.ReservedSysMAC && len(bond.Members) == 2)
	return r, nil
}

package hpn

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hpn/internal/metrics"
)

// WriteSeriesCSV writes one CSV per recorded time series of the report
// into dir, named <experiment>-<series>.csv with (t, value) rows — the raw
// material for re-plotting the paper's figures.
func (r *Report) WriteSeriesCSV(dir string) ([]string, error) {
	if len(r.Series) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	for i, s := range r.Series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series%d", i)
		}
		path := filepath.Join(dir, sanitize(r.ID+"-"+name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		if err := writePoints(f, s.Points); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

// writePoints emits the CSV body.
func writePoints(w io.Writer, pts []metrics.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "value"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

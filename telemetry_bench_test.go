package hpn

import (
	"testing"
)

// benchTraining drives b.N training iterations of a netsim-heavy job (768
// inter-host flows per gradient sync) with or without telemetry attached.
// Comparing BenchmarkTelemetryOff against BenchmarkTelemetryOn bounds the
// observability overhead; Off must stay within noise of the pre-telemetry
// engine since disabled emission points cost one nil check each.
func benchTraining(b *testing.B, hub *TelemetryHub) {
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		b.Fatal(err)
	}
	if hub != nil {
		c.EnableTelemetry(hub)
	}
	hosts, err := c.PlaceJob(8)
	if err != nil {
		b.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := tr.Start(b.N); err != nil {
		b.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != b.N {
		b.Fatalf("completed %d iterations, want %d", tr.Iterations, b.N)
	}
}

func BenchmarkTelemetryOff(b *testing.B) { benchTraining(b, nil) }

func BenchmarkTelemetryOn(b *testing.B) {
	opt := DefaultTelemetryOptions()
	// Bound the buffer: b.N can reach thousands of iterations and the
	// benchmark measures emission cost, not unbounded accumulation.
	opt.MaxTraceEvents = 2_000_000
	benchTraining(b, NewTelemetryHub(opt))
}

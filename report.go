// Package hpn is the public API of hpnsim, a reproduction of "Alibaba HPN:
// A Data Center Network for Large Language Model Training" (SIGCOMM 2024).
//
// It exposes:
//
//   - cluster construction for HPN, its ablations, and the DCN+ baseline
//     (NewHPN / NewDCN, re-exported from the core architecture package);
//   - job placement, collectives and training simulation helpers;
//   - the experiment registry: one runnable experiment per table and figure
//     of the paper (Experiments, Run), each returning a Report with the
//     same rows/series the paper presents plus paper-vs-measured claims.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for results.
package hpn

import (
	"fmt"
	"strings"

	"hpn/internal/metrics"
)

// Table is one printable table of an experiment report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Claim is one paper-vs-measured comparison line.
type Claim struct {
	Metric   string
	Paper    string
	Measured string
	Holds    bool
}

// Report is an experiment's full output.
type Report struct {
	ID     string
	Title  string
	Tables []Table
	Series []*metrics.Series
	Claims []Claim
	Notes  []string
}

// AddTable appends a table.
func (r *Report) AddTable(t Table) { r.Tables = append(r.Tables, t) }

// AddClaim appends a paper-vs-measured claim.
func (r *Report) AddClaim(metric, paper, measured string, holds bool) {
	r.Claims = append(r.Claims, Claim{Metric: metric, Paper: paper, Measured: measured, Holds: holds})
}

// AddNote appends a free-form note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Holds reports whether every claim held.
func (r *Report) Holds() bool {
	for _, c := range r.Claims {
		if !c.Holds {
			return false
		}
	}
	return true
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString("\n")
		if t.Title != "" {
			fmt.Fprintf(&b, "-- %s --\n", t.Title)
		}
		writeAligned(&b, t.Header, t.Rows)
	}
	if len(r.Claims) > 0 {
		b.WriteString("\npaper vs measured:\n")
		rows := make([][]string, 0, len(r.Claims))
		for _, c := range r.Claims {
			ok := "HOLDS"
			if !c.Holds {
				ok = "MISS"
			}
			rows = append(rows, []string{c.Metric, c.Paper, c.Measured, ok})
		}
		writeAligned(&b, []string{"metric", "paper", "measured", "verdict"}, rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func writeAligned(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string {
	switch {
	case v == 0: //hpnlint:allow floateq -- formatting choice: exact zero renders as "0"
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// pct renders a ratio as a percentage string.
func pct(ratio float64) string { return fmt.Sprintf("%.1f%%", ratio*100) }

package hpn_test

import (
	"fmt"

	"hpn"
)

// Building a cluster, placing a job segment-first and running one
// collective is the three-call core of the API.
func Example() {
	cluster, err := hpn.NewHPN(hpn.SmallHPN(1, 8, 8))
	if err != nil {
		panic(err)
	}
	hosts, _ := cluster.PlaceJob(8)
	group, _ := hpn.NewCollectiveGroup(cluster, cluster.CollectiveConfig(), hosts)
	res, _ := group.AllReduce(64 << 20)
	fmt.Printf("%s over %d GPUs in %d segment(s)\n",
		res.Op, group.GPUs(), cluster.SegmentsSpanned(hosts))
	// Output:
	// allreduce over 64 GPUs in 1 segment(s)
}

// Every table and figure of the paper is a named experiment.
func ExampleRun() {
	report, err := hpn.Run("tab3", hpn.ScaleQuick)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Title, "-", len(report.Claims), "claims, holds:", report.Holds())
	// Output:
	// Traffic patterns of different parallelisms (GPT-3 175B, TP=8 PP=8 DP=512) - 4 claims, holds: true
}

// Training jobs decompose into TP/PP/DP and run as simulated iterations.
func ExampleNewTrainer() {
	cluster, _ := hpn.NewHPN(hpn.SmallHPN(1, 8, 8))
	hosts, _ := cluster.PlaceJob(8)
	job, _ := hpn.NewJob(hpn.LLaMa13B, hpn.Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	trainer, _ := hpn.NewTrainer(cluster, job)
	_ = trainer.Start(2)
	cluster.Eng.Run()
	fmt.Println("iterations:", trainer.Iterations)
	// Output:
	// iterations: 2
}

package hpn

import (
	"fmt"
	"math"

	"hpn/internal/collective"
	"hpn/internal/metrics"
	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/workload"
)

func init() {
	register("fig2", "NIC egress traffic pattern during training", runFig2)
	register("fig15", "End-to-end training on 2300+ GPUs (DCN+ vs HPN)", runFig15)
	register("fig16", "Representative LLM training performance", runFig16)
	register("fig17", "Collective communication performance", runFig17)
	register("sec61b", "Optimized path selection on concurrent AllReduces", runSec61b)
}

// trainingRun drives a job on a cluster and returns its summary.
type trainingRun struct {
	samplesPerSec float64
	commSeconds   float64
	aggBits       float64
	maxAggQueue   float64
	segments      int
	perf          *metrics.Series
}

func runTraining(c *Cluster, m ModelSpec, par Parallelism, hosts []int, iters int, probeAggs bool) (*trainingRun, error) {
	job, err := NewJob(m, par, hosts)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		return nil, err
	}
	var aggProbes []*netsim.LinkProbe
	if probeAggs {
		// Sample the ToR-facing downlinks of a handful of Aggs.
		n := 0
		for _, nd := range c.Topo.Nodes {
			if nd.Kind != 2 /* KindAgg */ {
				continue
			}
			for _, dl := range nd.Downlinks[:minInt(4, len(nd.Downlinks))] {
				aggProbes = append(aggProbes, c.Net.TrackLink(dl, nd.Name))
			}
			n++
			if n >= 8 {
				break
			}
		}
	}
	if err := tr.Start(iters); err != nil {
		return nil, err
	}
	c.Eng.Run()
	if tr.Iterations != iters {
		return nil, fmt.Errorf("hpn: training stalled at iteration %d/%d", tr.Iterations, iters)
	}
	run := &trainingRun{
		samplesPerSec: tr.MeanSamplesPerSecond(),
		commSeconds:   tr.CommSeconds.MeanAfter(tr.CommSeconds.Points[0].T + 1e-12),
		aggBits:       c.Net.AggBits,
		segments:      c.SegmentsSpanned(hosts),
		perf:          &tr.Perf,
	}
	if run.commSeconds <= 0 {
		run.commSeconds = tr.CommSeconds.Mean()
	}
	for _, p := range aggProbes {
		run.maxAggQueue = math.Max(run.maxAggQueue, p.Queue.Max())
	}
	return run, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fig15Cluster builds the HPN and DCN+ clusters plus placements for the
// production-scale job.
func fig15Setup(s Scale) (hpnC, dcnC *Cluster, hpnHosts, dcnHosts []int, par Parallelism, err error) {
	hosts := 72
	par = Parallelism{TP: 8, PP: 8, DP: 9}
	hpnCfg := SmallHPN(3, 32, 16)
	dcnCfg := SmallDCN(2)
	if s == ScaleFull {
		hosts = 288 // 2304 GPUs, the paper's "2300+"
		par = Parallelism{TP: 8, PP: 8, DP: 36}
		hpnCfg = DefaultHPN()
		hpnCfg.SegmentsPerPod = 3
		hpnCfg.BackupHostsPerSegment = 0
		dcnCfg = SmallDCN(5)
	}
	hpnC, err = NewHPN(hpnCfg)
	if err != nil {
		return
	}
	dcnC, err = NewDCN(dcnCfg)
	if err != nil {
		return
	}
	hpnHosts, err = hpnC.PlaceJob(hosts)
	if err != nil {
		return
	}
	dcnHosts, err = dcnC.PlaceJob(hosts)
	return
}

func runFig15(s Scale) (*Report, error) {
	r := &Report{ID: "fig15", Title: "End-to-end training performance at production scale"}
	hpnC, dcnC, hpnHosts, dcnHosts, par, err := fig15Setup(s)
	if err != nil {
		return nil, err
	}
	iters := 3
	m := GPT175B
	dcnRun, err := runTraining(dcnC, m, par, dcnHosts, iters, true)
	if err != nil {
		return nil, err
	}
	hpnRun, err := runTraining(hpnC, m, par, hpnHosts, iters, true)
	if err != nil {
		return nil, err
	}
	gain := hpnRun.samplesPerSec/dcnRun.samplesPerSec - 1
	aggRed := 0.0
	if dcnRun.aggBits > 0 {
		aggRed = 1 - hpnRun.aggBits/dcnRun.aggBits
	}
	r.AddTable(Table{
		Title:  fmt.Sprintf("GPT-175B-variant, %d GPUs, %d iterations", par.GPUs(), iters),
		Header: []string{"metric", "DCN+", "HPN"},
		Rows: [][]string{
			{"segments spanned", fmtF(float64(dcnRun.segments)), fmtF(float64(hpnRun.segments))},
			{"samples/s", fmtF(dcnRun.samplesPerSec), fmtF(hpnRun.samplesPerSec)},
			{"gradient sync (s/iter)", fmtF(dcnRun.commSeconds), fmtF(hpnRun.commSeconds)},
			{"Agg-crossing traffic (GB/iter)", fmtF(dcnRun.aggBits / 8e9 / float64(iters)), fmtF(hpnRun.aggBits / 8e9 / float64(iters))},
			{"max Agg queue pressure (KB)", fmtF(dcnRun.maxAggQueue / 1024), fmtF(hpnRun.maxAggQueue / 1024)},
		},
	})
	r.Series = append(r.Series, dcnRun.perf, hpnRun.perf)
	r.AddClaim("fig15a: end-to-end gain", "+14.9%", pct(gain), gain > 0.05 && gain < 0.60)
	r.AddClaim("fig15a: HPN fits the job in far fewer segments", "3 vs 19",
		fmt.Sprintf("%d vs %d", hpnRun.segments, dcnRun.segments), hpnRun.segments < dcnRun.segments)
	r.AddClaim("fig15b: cross-segment traffic reduced", "-37%", pct(aggRed), aggRed > 0.15)
	r.AddClaim("fig15c: Agg queues build only in DCN+", "DCN+ >> HPN",
		fmt.Sprintf("%.0fKB vs %.0fKB", dcnRun.maxAggQueue/1024, hpnRun.maxAggQueue/1024),
		dcnRun.maxAggQueue > 4*hpnRun.maxAggQueue)
	return r, nil
}

// fig16Case describes one bar pair of Figure 16.
type fig16Case struct {
	model ModelSpec
	par   Parallelism
	paper string
}

func runFig16(s Scale) (*Report, error) {
	r := &Report{ID: "fig16", Title: "Training representative LLMs (448 GPUs)"}
	hosts := 24
	cases := []fig16Case{
		{LLaMa7B, Parallelism{TP: 1, PP: 1, DP: 192}, "+7.9%"},
		{LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 24}, "+14.4%"},
		{GPT175B, Parallelism{TP: 8, PP: 8, DP: 3}, "+6.3%"},
	}
	if s == ScaleFull {
		hosts = 56
		cases = []fig16Case{
			{LLaMa7B, Parallelism{TP: 1, PP: 1, DP: 448}, "+7.9%"},
			{LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 56}, "+14.4%"},
			{GPT175B, Parallelism{TP: 8, PP: 8, DP: 7}, "+6.3%"},
		}
	}
	rows := [][]string{}
	for _, cse := range cases {
		// Fresh clusters per model so runs are independent.
		hpnC, err := NewHPN(SmallHPN(1, hosts, bigAggs(s)))
		if err != nil {
			return nil, err
		}
		dcnC, err := NewDCN(SmallDCN(dcnPodsFor(hosts)))
		if err != nil {
			return nil, err
		}
		hpnHosts, err := hpnC.PlaceJob(hosts)
		if err != nil {
			return nil, err
		}
		dcnHosts, err := dcnC.PlaceJob(hosts)
		if err != nil {
			return nil, err
		}
		dcnRun, err := runTraining(dcnC, cse.model, cse.par, dcnHosts, 3, false)
		if err != nil {
			return nil, err
		}
		hpnRun, err := runTraining(hpnC, cse.model, cse.par, hpnHosts, 3, false)
		if err != nil {
			return nil, err
		}
		gain := hpnRun.samplesPerSec/dcnRun.samplesPerSec - 1
		rows = append(rows, []string{cse.model.Name,
			fmtF(dcnRun.samplesPerSec), fmtF(hpnRun.samplesPerSec), pct(gain), cse.paper})
		r.AddClaim(cse.model.Name+" HPN gain", cse.paper, pct(gain), gain > 0.02 && gain < 0.45)
	}
	r.AddTable(Table{
		Title:  fmt.Sprintf("samples/s on %d GPUs", hosts*8),
		Header: []string{"model", "DCN+", "HPN", "gain", "paper"},
		Rows:   rows,
	})
	return r, nil
}

func bigAggs(s Scale) int {
	if s == ScaleFull {
		return 60
	}
	return 8
}

func dcnPodsFor(hosts int) int {
	pods := (hosts + 63) / 64
	if pods < 1 {
		pods = 1
	}
	return pods
}

func runFig17(s Scale) (*Report, error) {
	r := &Report{ID: "fig17", Title: "Collective communication performance (448 GPUs)"}
	hosts := 24
	sizes := []float64{16 << 20, 256 << 20, 1 << 30}
	if s == ScaleFull {
		hosts = 56
		sizes = []float64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30, 4 << 30}
	}
	type opSpec struct {
		name  string
		run   func(*collective.Group, float64) (collective.Result, error)
		paper string
	}
	ops := []opSpec{
		{"AllReduce", (*collective.Group).AllReduce, "up to +59.3%"},
		{"AllGather", (*collective.Group).AllGather, "similar (NVSwitch-bound)"},
		{"Multi-AllReduce", (*collective.Group).MultiAllReduce, "up to +158.2%"},
	}
	gains := map[string]float64{}
	for _, op := range ops {
		rows := [][]string{}
		best := 0.0
		for _, size := range sizes {
			bus := map[string]float64{}
			for _, arch := range []string{"dcn+", "hpn"} {
				var (
					c   *Cluster
					err error
				)
				if arch == "hpn" {
					c, err = NewHPN(SmallHPN(1, hosts, bigAggs(s)))
				} else {
					c, err = NewDCN(SmallDCN(dcnPodsFor(hosts)))
				}
				if err != nil {
					return nil, err
				}
				placed, err := c.PlaceJob(hosts)
				if err != nil {
					return nil, err
				}
				g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), placed, 8)
				if err != nil {
					return nil, err
				}
				res, err := op.run(g, size)
				if err != nil {
					return nil, err
				}
				bus[arch] = res.BusBW
			}
			gain := bus["hpn"]/bus["dcn+"] - 1
			best = math.Max(best, gain)
			rows = append(rows, []string{metrics.HumanBytes(size),
				fmtF(bus["dcn+"] / 1e9), fmtF(bus["hpn"] / 1e9), pct(gain)})
		}
		gains[op.name] = best
		r.AddTable(Table{
			Title:  op.name + " busbw (GB/s)",
			Header: []string{"size", "DCN+", "HPN", "gain"},
			Rows:   rows,
		})
	}
	r.AddClaim("AllReduce: HPN wins at scale", "up to +59.3%", pct(gains["AllReduce"]),
		gains["AllReduce"] > 0.20)
	r.AddClaim("AllGather: fabric-insensitive", "similar", pct(gains["AllGather"]),
		math.Abs(gains["AllGather"]) < 0.15)
	r.AddClaim("Multi-AllReduce: biggest HPN win", "up to +158.2%", pct(gains["Multi-AllReduce"]),
		gains["Multi-AllReduce"] > 0.50 && gains["Multi-AllReduce"] > gains["AllReduce"])
	return r, nil
}

func runSec61b(s Scale) (*Report, error) {
	r := &Report{ID: "sec61b", Title: "Optimized path selection, 4 concurrent AllReduces (512 GPUs)"}
	hostsPerSeg, aggs, size := 16, 4, float64(256<<20)
	if s == ScaleFull {
		hostsPerSeg, aggs, size = 32, 16, 1<<30
	}
	run := func(policy collective.PathPolicy, sportBase uint16) (float64, error) {
		c, err := NewHPN(SmallHPN(2, hostsPerSeg, aggs))
		if err != nil {
			return 0, err
		}
		all, err := c.PlaceJob(2 * hostsPerSeg)
		if err != nil {
			return 0, err
		}
		cfg := c.CollectiveConfig()
		cfg.Policy = policy
		cfg.ConnsPerPair = 4
		cfg.ChunksPerMessage = 4
		cfg.SportBase = sportBase
		// Four groups, each with ring neighbours alternating between the
		// two segments so every ring edge crosses the Aggregation layer.
		var groups []*collective.Group
		for t := 0; t < 4; t++ {
			var hosts []int
			half := len(all) / 2
			for i := t; i < half; i += 4 {
				hosts = append(hosts, all[i], all[half+i])
			}
			g, err := collective.NewGroup(c.Net, cfg, hosts, 8)
			if err != nil {
				return 0, err
			}
			groups = append(groups, g)
		}
		pending := len(groups)
		var finish sim.Time
		for _, g := range groups {
			if _, err := g.StartAllReduce(size, func(now sim.Time, _ collective.Result) {
				pending--
				if now > finish {
					finish = now
				}
			}); err != nil {
				return 0, err
			}
		}
		c.Eng.Run()
		if pending != 0 {
			return 0, fmt.Errorf("hpn: concurrent allreduce stalled")
		}
		return finish.Seconds(), nil
	}
	// ECMP placements are seed-sensitive with this few elephant flows, so
	// run several trials (re-rolling every sweep) and report the spread;
	// the paper's "+34.7%" is likewise an "up to" figure.
	rows := [][]string{}
	best, sum := math.Inf(-1), 0.0
	const trials = 4
	for t := 0; t < trials; t++ {
		base := uint16(20000 + 4096*t)
		blind, err := run(collective.PolicyBlind, base)
		if err != nil {
			return nil, err
		}
		optimized, err := run(collective.PolicyDisjoint, base)
		if err != nil {
			return nil, err
		}
		gain := blind/optimized - 1
		best = math.Max(best, gain)
		sum += gain
		rows = append(rows, []string{fmt.Sprintf("trial %d", t+1), fmtF(blind), fmtF(optimized), pct(gain)})
	}
	r.AddTable(Table{
		Title:  "completion time of 4 concurrent AllReduce tasks (seconds)",
		Header: []string{"trial", "blind multi-path", "disjoint + least-WQE", "speedup"},
		Rows:   rows,
	})
	r.AddClaim("optimized path selection speedup (best trial)", "up to +34.7%", pct(best), best > 0.05)
	r.AddNote("mean speedup across %d trials: %s (the gain appears when link loads are heterogeneous; "+
		"under uniformly saturated fabrics max-min fairness equalizes the schemes)", trials, pct(sum/trials))
	return r, nil
}

func runFig2(s Scale) (*Report, error) {
	r := &Report{ID: "fig2", Title: "NIC egress traffic during training"}
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		return nil, err
	}
	hosts, err := c.PlaceJob(8)
	if err != nil {
		return nil, err
	}
	var probes []*netsim.LinkProbe
	for nic := 0; nic < 8; nic++ {
		for p := 0; p < 2; p++ {
			probes = append(probes, c.Net.TrackLink(c.Topo.AccessLink(hosts[0], nic, p),
				fmt.Sprintf("nic%d-port%d", nic, p)))
		}
	}
	par := Parallelism{TP: 8, PP: 1, DP: 8}
	if _, err := runTrainingOn(c, LLaMa13B, par, hosts, 4); err != nil {
		return nil, err
	}
	// Peak per-NIC throughput: both ports of a NIC peak together during
	// the sync burst.
	peakNIC := 0.0
	idleFraction := 0.0
	for _, p := range probes {
		peakNIC = math.Max(peakNIC, p.Util.Max())
		idle, total := 0, p.Util.Len()
		for _, pt := range p.Util.Points {
			if pt.V < 1e9 {
				idle++
			}
		}
		if total > 0 {
			idleFraction += float64(idle) / float64(total) / float64(len(probes))
		}
	}
	peakNICGbps := peakNIC * 2 / 1e9 // two ports per NIC
	r.AddTable(Table{
		Title:  "NIC egress during 4 iterations (host 0)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"peak per-NIC egress (Gbps)", fmtF(peakNICGbps)},
			{"idle fraction of samples", pct(idleFraction)},
		},
	})
	r.AddClaim("bursts reach NIC capacity", "~400Gbps", fmt.Sprintf("%.0fGbps", peakNICGbps), peakNICGbps > 350)
	r.AddClaim("traffic is periodic bursts, not continuous", "burst/idle alternation",
		pct(idleFraction)+" idle", idleFraction > 0.05)
	return r, nil
}

// runTrainingOn is runTraining without the agg probes and summary.
func runTrainingOn(c *Cluster, m ModelSpec, par Parallelism, hosts []int, iters int) (*workload.Trainer, error) {
	job, err := NewJob(m, par, hosts)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		return nil, err
	}
	if err := tr.Start(iters); err != nil {
		return nil, err
	}
	c.Eng.Run()
	if tr.Iterations != iters {
		return nil, fmt.Errorf("hpn: training stalled at %d/%d", tr.Iterations, iters)
	}
	return tr, nil
}

package hpn

import (
	"bytes"
	"reflect"
	"testing"

	"hpn/internal/failure"
	"hpn/internal/health"
	"hpn/internal/sim"
)

// healthTrainingRun builds a cluster with the online health monitor
// attached, trains `iters` iterations of LLaMa13B over 8 hosts, and lets
// the caller inject faults once the healthy baseline exists (afterIter2
// fires from the iteration-2 callback). Returns the monitor for verdicts.
func healthTrainingRun(t *testing.T, cfg HPNConfig, iters int, afterIter2 func(c *Cluster, now sim.Time)) (*Cluster, *HealthMonitor) {
	t.Helper()
	opt := DefaultTelemetryOptions()
	opt.Trace = false
	opt.SampleInterval = 0
	opt.Health = true
	hub := NewTelemetryHub(opt)
	c, err := NewHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTelemetry(hub)

	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	// NewTrainer installed the monitor's attribution hook; chain after it.
	if afterIter2 != nil {
		prev := tr.OnIteration
		tr.OnIteration = func(iter int, now sim.Time) {
			if prev != nil {
				prev(iter, now)
			}
			if iter == 2 {
				afterIter2(c, now)
			}
		}
	}
	if err := tr.Start(iters); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != iters {
		t.Fatalf("completed %d iterations, want %d", tr.Iterations, iters)
	}
	m := HealthMonitorOf(c)
	if m == nil {
		t.Fatal("health monitor not attached despite Options.Health")
	}
	return c, m
}

// A Fig. 18 flap storm on a single-ToR access cable mid-training: the
// monitor must open a flap-storm incident, attribute the comm-time
// regression of the overlapping iterations to it, and map the timeline to
// hpndoctor's incident exit code. The artifact must survive a TSV
// round-trip bit-exactly — that is the hpndoctor input path.
func TestHealthE2EFlapStorm(t *testing.T) {
	cfg := SmallHPN(1, 8, 8)
	cfg.DualToR = false
	cfg.DualPlane = false
	_, m := healthTrainingRun(t, cfg, 6, func(c *Cluster, now sim.Time) {
		in := &failure.Injector{Net: c.Net}
		// 3 down/up cycles = 6 transitions inside the 10s flap window;
		// each ~600ms outage (400ms down + 200ms recovery reroute) stalls
		// the rail and inflates the iteration's gradient-sync time.
		in.FlapLinkAt(now+10*sim.Millisecond, c.Topo.AccessLink(0, 0, 0),
			400*sim.Millisecond, 200*sim.Millisecond, 3)
	})

	s := m.Summary()
	if s.Flap == 0 {
		t.Fatalf("flap storm produced no flap-storm incident; summary %+v, incidents %+v",
			s, m.Incidents())
	}
	if s.ExitCode() != health.ExitIncidents {
		t.Fatalf("exit code %d, want %d (incidents); verdict %q",
			s.ExitCode(), health.ExitIncidents, s.Verdict())
	}
	if s.Regressed == 0 {
		t.Fatalf("no iteration marked regressed despite the storm; iterations %+v", m.Iterations())
	}
	if s.Attributed == 0 {
		t.Fatalf("regressed iterations have no incident attributed; iterations %+v, incidents %+v",
			m.Iterations(), m.Incidents())
	}

	// The TSV artifact is hpndoctor's input: parsing what the monitor wrote
	// must reconstruct the exact incident and iteration lists.
	var buf bytes.Buffer
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	incs, iters, err := health.ParseTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incs, m.Incidents()) {
		t.Fatalf("incidents did not survive the TSV round-trip:\nwrote:  %+v\nparsed: %+v",
			m.Incidents(), incs)
	}
	if !reflect.DeepEqual(iters, m.Iterations()) {
		t.Fatalf("iterations did not survive the TSV round-trip:\nwrote:  %+v\nparsed: %+v",
			m.Iterations(), iters)
	}
	if got := health.Summarize(incs, iters); got != s {
		t.Fatalf("summary from parsed timeline %+v != live summary %+v", got, s)
	}
}

// A quiet dual-ToR dual-plane run must stay verdict-clean: no incident,
// no regressed iteration, exit code 0. This pins the detectors' false
// positive rate at zero on the healthy path — the contract that makes a
// nonzero hpndoctor exit in CI meaningful.
func TestHealthE2EQuietRun(t *testing.T) {
	_, m := healthTrainingRun(t, SmallHPN(1, 8, 8), 4, nil)
	s := m.Summary()
	if s.Incidents != 0 {
		t.Fatalf("quiet run produced %d incidents: %+v", s.Incidents, m.Incidents())
	}
	if s.Regressed != 0 {
		t.Fatalf("quiet run marked %d iterations regressed: %+v", s.Regressed, m.Iterations())
	}
	if s.ExitCode() != health.ExitHealthy {
		t.Fatalf("exit code %d, want 0; verdict %q", s.ExitCode(), s.Verdict())
	}
	if s.Iterations != 4 {
		t.Fatalf("attribution saw %d iterations, want 4", s.Iterations)
	}
}

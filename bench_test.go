package hpn

// One benchmark per paper artifact: running `go test -bench=. -benchmem`
// regenerates every table and figure at quick scale and reports the
// headline measured quantity of each as a custom metric. Set -tags or run
// `cmd/hpnbench -scale full` for paper-scale numbers.

import (
	"strconv"
	"testing"

	"hpn/internal/collective"
	"hpn/internal/topo"
)

// benchExperiment runs one registered experiment per iteration and asserts
// its claims hold.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var last *Report
	for i := 0; i < b.N; i++ {
		r, err := Run(id, ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds() {
			b.Fatalf("%s claims do not hold:\n%s", id, r.String())
		}
		last = r
	}
	b.ReportMetric(float64(len(last.Claims)), "claims")
}

func BenchmarkFig1CloudTraffic(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2NICBursts(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3ConnectionsCDF(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4CheckpointIntervals(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5LinkFailureRatio(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6JobSizeCDF(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig9PowerCooling(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkTab1PathComplexity(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkTab2ScaleMechanisms(b *testing.B)     { benchExperiment(b, "tab2") }
func BenchmarkTab3ParallelismTraffic(b *testing.B)  { benchExperiment(b, "tab3") }
func BenchmarkTab4RailOnlyTier2(b *testing.B)       { benchExperiment(b, "tab4") }
func BenchmarkFig13PortImbalance(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14ToRQueues(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15ProductionTraining(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16RepresentativeLLMs(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Collectives(b *testing.B)        { benchExperiment(b, "fig17") }
func BenchmarkFig18LinkMalfunctions(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19DualPlaneAllReduce(b *testing.B) { benchExperiment(b, "fig19") }
func BenchmarkFig20DCNTopology(b *testing.B)        { benchExperiment(b, "fig20") }
func BenchmarkSec7CrossPodPP(b *testing.B)          { benchExperiment(b, "sec7") }
func BenchmarkSec8FrontendStorage(b *testing.B)     { benchExperiment(b, "sec8") }
func BenchmarkSec42DualToRReliability(b *testing.B) { benchExperiment(b, "sec42") }
func BenchmarkSec61aQueueReduction(b *testing.B)    { benchExperiment(b, "sec61a") }
func BenchmarkSec61bPathSelection(b *testing.B)     { benchExperiment(b, "sec61b") }
func BenchmarkAppDLayout(b *testing.B)              { benchExperiment(b, "appd") }

// Microbenchmarks of the substrate hot paths.

func BenchmarkBuildHPNPod(b *testing.B) {
	cfg := DefaultHPN()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := topo.BuildHPN(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if t.TotalGPUs(true) != 15360 {
			b.Fatal("wrong pod size")
		}
	}
}

func BenchmarkAllReduceBySize(b *testing.B) {
	for _, mb := range []int{16, 256, 1024} {
		mb := mb
		b.Run(strconv.Itoa(mb)+"MB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := NewHPN(SmallHPN(1, 16, 8))
				if err != nil {
					b.Fatal(err)
				}
				hosts, err := c.PlaceJob(16)
				if err != nil {
					b.Fatal(err)
				}
				g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), hosts, 8)
				if err != nil {
					b.Fatal(err)
				}
				res, err := g.AllReduce(float64(mb << 20))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BusBW/1e9, "busbw-GB/s")
			}
		})
	}
}

func BenchmarkMaxMinAllocation(b *testing.B) {
	c, err := NewHPN(SmallHPN(2, 16, 8))
	if err != nil {
		b.Fatal(err)
	}
	hosts, err := c.PlaceJob(32)
	if err != nil {
		b.Fatal(err)
	}
	g, err := collective.NewGroup(c.Net, c.CollectiveConfig(), hosts, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.AllReduce(8 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

package hpn

import (
	"fmt"
	"sort"

	"hpn/internal/core"
	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
	"hpn/internal/workload"
)

func init() {
	register("sec7", "Cross-pod PP over the 15:1 Core tier + per-port hashing", runSec7)
	register("sec8", "Frontend/backend decoupling and the storage-cluster location", runSec8)
}

// runSec7 exercises the tier3 design of §7: a job spanning two pods with
// only pipeline-parallel traffic crossing the Core layer, and the
// per-(ingress-port, dst-pod) Core hash that removes tier3 polarization.
func runSec7(s Scale) (*Report, error) {
	r := &Report{ID: "sec7", Title: "Supporting larger scale: PP across pods (§7)"}
	hostsPerPod := 8
	if s == ScaleFull {
		hostsPerPod = 16
	}

	// Cross-pod placement: PP stage 0 in pod 0, stage 1 in pod 1 (the
	// worker scheduler's job); DP rings never leave their pod.
	crossCfg := SmallHPN(1, hostsPerPod, 8)
	crossCfg.Pods = 2
	crossCfg.AggCoreUplinks = 2
	cross, err := NewHPN(crossCfg)
	if err != nil {
		return nil, err
	}
	all, err := cross.PlaceJob(2 * hostsPerPod)
	if err != nil {
		return nil, err
	}
	ordered := make([]int, 0, len(all))
	for i := 0; i < hostsPerPod; i++ {
		ordered = append(ordered, all[i], all[hostsPerPod+i]) // stage0(pod0), stage1(pod1)
	}
	par := Parallelism{TP: 8, PP: 2, DP: hostsPerPod}
	crossRun, err := runTraining(cross, GPT175B, par, ordered, 3, false)
	if err != nil {
		return nil, err
	}
	coreGB := cross.Net.CoreBits / 8e9
	totalGB := cross.Net.CompletedBits / 8e9

	// Single-pod reference: the same job shape entirely inside one pod.
	refCfg := SmallHPN(2, hostsPerPod, 8)
	ref, err := NewHPN(refCfg)
	if err != nil {
		return nil, err
	}
	refHosts, err := ref.PlaceJob(2 * hostsPerPod)
	if err != nil {
		return nil, err
	}
	refOrdered := make([]int, 0, len(refHosts))
	for i := 0; i < hostsPerPod; i++ {
		refOrdered = append(refOrdered, refHosts[i], refHosts[hostsPerPod+i])
	}
	refRun, err := runTraining(ref, GPT175B, par, refOrdered, 3, false)
	if err != nil {
		return nil, err
	}

	slowdown := 1 - crossRun.samplesPerSec/refRun.samplesPerSec
	r.AddTable(Table{
		Title:  fmt.Sprintf("GPT-175B-variant, TP=8 PP=2 DP=%d (%d GPUs)", hostsPerPod, par.GPUs()),
		Header: []string{"placement", "samples/s", "Core-crossing traffic (GB)"},
		Rows: [][]string{
			{"PP across 2 pods (15:1 core)", fmtF(crossRun.samplesPerSec), fmtF(coreGB)},
			{"single pod", fmtF(refRun.samplesPerSec), "0"},
		},
	})
	r.AddClaim("only PP traffic crosses the Core tier", "PP only (DP/TP stay in-pod)",
		pct(coreGB/totalGB)+" of all bytes", coreGB > 0 && coreGB/totalGB < 0.05)
	r.AddClaim("cross-pod PP minimally impacts end-to-end training", "minimal",
		pct(slowdown)+" slowdown", slowdown < 0.03 && slowdown > -0.03)

	// Per-port hashing ablation: walk many cross-pod flows through a
	// legacy-hashed (shared-seed) fabric. A polarized 5-tuple hash at the
	// Core can pile several ingress links' load onto one egress link
	// (amplifying upstream imbalance); the engineered per-port rotation is
	// injective per pod and can never amplify. We therefore compare the
	// egress-vs-ingress imbalance amplification of both schemes.
	amp := func(perPort bool) (inImb, outImb float64) {
		cfg := crossCfg
		cfg.SharedHashSeed = true
		c, err2 := NewHPN(cfg)
		if err2 != nil {
			return -1, -1
		}
		if !perPort {
			for _, n := range c.Topo.Nodes {
				n.PerPortHash = false
			}
		}
		ingress := map[topo.LinkID]int{}
		egress := map[topo.LinkID]int{}
		for i := 0; i < 400; i++ {
			src := route.Endpoint{Host: i % hostsPerPod, NIC: i % 8}
			dst := route.Endpoint{Host: hostsPerPod + (i+3)%hostsPerPod, NIC: i % 8}
			tuple := hashing.FiveTuple{SrcAddr: src.Addr(), DstAddr: dst.Addr(),
				SrcPort: uint16(20000 + i), DstPort: 4791, Proto: 17}
			p, bh, err3 := c.Net.R.Path(src, dst, i%2, tuple, 0)
			if err3 != nil || bh {
				continue
			}
			// Cross-pod path: ... agg -(p[2])-> core -(p[3])-> agg ...
			ingress[p[2]]++
			egress[p[3]]++
		}
		toImb := func(m map[topo.LinkID]int) float64 {
			var vals []int
			for _, v := range m {
				vals = append(vals, v)
			}
			sort.Ints(vals)
			return hashing.Imbalance(vals)
		}
		return toImb(ingress), toImb(egress)
	}
	ppIn, ppOut := amp(true)
	ftIn, ftOut := amp(false)
	r.AddTable(Table{
		Title:  "Core-tier imbalance under a legacy shared-seed fabric (max/mean flows per link)",
		Header: []string{"core hashing", "ingress imbalance", "egress imbalance", "amplification"},
		Rows: [][]string{
			{"per-(ingress-port, dst-pod) (§7)", fmtF(ppIn), fmtF(ppOut), fmtF(ppOut / ppIn)},
			{"5-tuple (cascaded, polarized)", fmtF(ftIn), fmtF(ftOut), fmtF(ftOut / ftIn)},
		},
	})
	r.AddClaim("per-port hash never amplifies upstream imbalance", "amplification ~1.0",
		fmt.Sprintf("%.2fx", ppOut/ppIn), ppOut/ppIn < 1.05)
	r.AddClaim("cascaded 5-tuple hashing amplifies (polarization)", ">1x",
		fmt.Sprintf("%.2fx", ftOut/ftIn), ftOut/ftIn > ppOut/ppIn)
	return r, nil
}

// runSec8 reproduces the frontend-network arguments of §8 and §10: the
// storage cluster lives in the 1:1 frontend so checkpoint bursts never
// perturb training; putting the same traffic in the backend does.
func runSec8(s Scale) (*Report, error) {
	r := &Report{ID: "sec8", Title: "Independent frontend network and storage placement"}
	trainHosts := 8
	ckptGBPerHost := 60.0
	if s == ScaleFull {
		trainHosts = 16
		ckptGBPerHost = 240 // the paper's 30GB per GPU
	}

	// Baseline: training alone on the backend.
	base, err := trainWithStorage(trainHosts, 0, false)
	if err != nil {
		return nil, err
	}
	// Storage in the backend: checkpoint flows share the training fabric.
	shared, err := trainWithStorage(trainHosts, ckptGBPerHost, false)
	if err != nil {
		return nil, err
	}
	// Storage in the frontend: checkpoint flows ride the separate 1:1
	// frontend network.
	isolated, err := trainWithStorage(trainHosts, ckptGBPerHost, true)
	if err != nil {
		return nil, err
	}

	degShared := 1 - shared.samples/base.samples
	degIsolated := 1 - isolated.samples/base.samples
	r.AddTable(Table{
		Title:  fmt.Sprintf("LLaMa-13B on %d GPUs while saving %vGB/host checkpoints", trainHosts*8, ckptGBPerHost),
		Header: []string{"storage cluster location", "samples/s", "training degradation", "checkpoint time (s)"},
		Rows: [][]string{
			{"(no checkpoint)", fmtF(base.samples), "-", "-"},
			{"backend network", fmtF(shared.samples), pct(degShared), fmtF(shared.ckptSeconds)},
			{"frontend network (§8)", fmtF(isolated.samples), pct(degIsolated), fmtF(isolated.ckptSeconds)},
		},
	})
	r.AddClaim("storage traffic in the backend perturbs training",
		"fluctuations in training performance", pct(degShared), degShared > 0.02)
	r.AddClaim("frontend placement fully isolates training",
		"no impact", pct(degIsolated), degIsolated < 0.005 && degIsolated > -0.005)
	// Ideal: one 200G frontend port per host moves ckptGB in ckptGB*8/200
	// seconds; allow a small factor for ECMP collisions at full fan-in.
	idealCkpt := ckptGBPerHost * 8 / 200
	r.AddClaim("the 1:1 frontend absorbs the checkpoint burst",
		"completes within a small factor of line rate", fmtF(isolated.ckptSeconds)+"s",
		isolated.ckptSeconds > 0 && isolated.ckptSeconds < 2.5*idealCkpt)

	// §8's mixed deployment: inference request/response traffic shares the
	// frontend with checkpoint bursts and still sees low latencies.
	feCfg := topo.DefaultFrontend()
	feCfg.Segments = 2
	feCfg.HostsPerSegment = trainHosts
	feCfg.StorageHosts = trainHosts
	fe, err := core.NewFrontend(feCfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < trainHosts; i++ {
		if _, err := fe.Net.StartFlow(
			route.Endpoint{Host: i, NIC: 0},
			route.Endpoint{Host: feCfg.StorageHostStart() + i, NIC: 0},
			ckptGBPerHost*1e9, netsim.FlowOpts{SrcPort: -1}); err != nil {
			return nil, err
		}
	}
	var clients, servers []int
	for i := 0; i < trainHosts; i++ {
		clients = append(clients, i)
		servers = append(servers, trainHosts+i)
	}
	inf, err := workload.NewInferenceLoad(fe.Net, workload.DefaultInference(), clients, servers, 5)
	if err != nil {
		return nil, err
	}
	inf.Run(2 * sim.Second)
	fe.Eng.Run()
	p99 := inf.Latency.Percentile(99)
	r.AddTable(Table{
		Title:  "inference co-running with checkpoint bursts on the frontend",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"exchanges completed", fmtF(float64(inf.Completed))},
			{"P99 request+response latency (ms)", fmtF(p99 * 1e3)},
		},
	})
	r.AddClaim("frontend supports mixed training/inference deployment",
		"good performance for inference", fmt.Sprintf("P99 %.2fms", p99*1e3),
		inf.Completed > 0 && p99 < 0.05)
	return r, nil
}

type storageRun struct {
	samples     float64
	ckptSeconds float64
}

// trainWithStorage trains on a 2-segment backend; checkpoint flows go to
// "storage hosts" either in the backend's second segment or across a
// dedicated frontend build.
func trainWithStorage(trainHosts int, ckptGBPerHost float64, frontend bool) (*storageRun, error) {
	c, err := NewHPN(SmallHPN(2, trainHosts, 8))
	if err != nil {
		return nil, err
	}
	placed, err := c.PlaceJob(2 * trainHosts)
	if err != nil {
		return nil, err
	}
	training := placed[:trainHosts]
	storage := placed[trainHosts:]
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: trainHosts}, training)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		return nil, err
	}

	out := &storageRun{}
	ckptBytes := ckptGBPerHost * 1e9
	if ckptGBPerHost > 0 && frontend {
		// A separate frontend fabric carries the same checkpoint volume:
		// one 2x200G frontend NIC per host toward the storage segment.
		feCfg := topo.DefaultFrontend()
		feCfg.Segments = 2
		feCfg.HostsPerSegment = trainHosts
		feCfg.StorageHosts = trainHosts
		feCluster, err := core.NewFrontend(feCfg)
		if err != nil {
			return nil, err
		}
		pendingCkpt := 0
		start := feCluster.Eng.Now()
		for i := 0; i < trainHosts; i++ {
			pendingCkpt++
			_, err := feCluster.Net.StartFlow(
				route.Endpoint{Host: i, NIC: 0},
				route.Endpoint{Host: feCfg.StorageHostStart() + i%trainHosts, NIC: 0},
				ckptBytes,
				netsim.FlowOpts{SrcPort: -1, OnComplete: func(now sim.Time, _ *netsim.Flow) {
					pendingCkpt--
					if pendingCkpt == 0 {
						out.ckptSeconds = (now - start).Seconds()
					}
				}},
			)
			if err != nil {
				return nil, err
			}
		}
		feCluster.Eng.Run()
	}
	if ckptGBPerHost > 0 && !frontend {
		pendingCkpt := 0
		start := c.Eng.Now()
		for i, h := range training {
			pendingCkpt++
			_, err := c.Net.StartFlow(
				route.Endpoint{Host: h, NIC: i % 8},
				route.Endpoint{Host: storage[i%len(storage)], NIC: i % 8},
				ckptBytes,
				netsim.FlowOpts{SrcPort: -1, OnComplete: func(now sim.Time, _ *netsim.Flow) {
					pendingCkpt--
					if pendingCkpt == 0 {
						out.ckptSeconds = (now - start).Seconds()
					}
				}},
			)
			if err != nil {
				return nil, err
			}
		}
	}

	if err := tr.Start(4); err != nil {
		return nil, err
	}
	c.Eng.Run()
	if tr.Iterations != 4 {
		return nil, fmt.Errorf("hpn: training stalled")
	}
	out.samples = tr.MeanSamplesPerSecond()
	return out, nil
}

package hpn

import (
	"fmt"
	"runtime"
	"time"
)

func init() {
	register("multipod", "Sharded event loop: multi-pod training on parallel per-pod engines", runMultiPod)
}

// shardWorkers is the worker count sharded experiments fan windows out
// over; runners set it from their -shards flag. 1 (the default) runs shard
// windows serially — the determinism baseline.
var shardWorkers = 1

// SetShardWorkers sets how many goroutines sharded experiments use for
// parallel shard windows; n <= 0 selects NumCPU. Artifacts and results are
// identical for every value — only host wall-clock changes.
func SetShardWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	shardWorkers = n
}

// ShardWorkers returns the configured sharded-experiment worker count.
func ShardWorkers() int { return shardWorkers }

// multiPodRun summarizes one sharded multi-pod training run.
type multiPodRun struct {
	wallSec     float64
	flows       int64
	flowsPerSec float64
	samplesSec  float64
	simSeconds  float64
	iterations  int
	rounds      int
	windows     int
	exchanged   int
}

// runMultiPodTraining drives a `pods`-pod HPN fabric — one training job per
// pod plus the cross-pod gradient exchange on the global domain — through
// the windowed coordinator with the given worker count, and measures
// simulated-flow throughput of the host process.
func runMultiPodTraining(pods, hostsPerPod, iters, workers int) (*multiPodRun, error) {
	sc, err := NewShardedHPN(MultiPodHPN(pods, 1, hostsPerPod, 4), nil)
	if err != nil {
		return nil, err
	}
	sc.SetWorkers(workers)
	st, err := NewShardedTrainer(sc, LLaMa13B, Parallelism{TP: 8, PP: 1, DP: hostsPerPod})
	if err != nil {
		return nil, err
	}
	if err := st.Start(iters); err != nil {
		return nil, err
	}
	// Wall-clock is the measured artifact: the claim is host-process
	// speedup at identical simulated results.
	start := time.Now() //hpnlint:allow wallclock -- measured speedup is the experiment's subject
	sc.Run()
	wall := time.Since(start) //hpnlint:allow wallclock -- measured speedup is the experiment's subject
	if st.Iterations() != iters {
		return nil, fmt.Errorf("hpn: multipod training stalled at %d/%d", st.Iterations(), iters)
	}
	if st.FirstErr != nil {
		return nil, st.FirstErr
	}
	run := &multiPodRun{
		wallSec:    wall.Seconds(),
		samplesSec: st.Trainers[0].MeanSamplesPerSecond(),
		simSeconds: sc.Global.Eng.Now().Seconds(),
		iterations: st.Iterations(),
		rounds:     st.Rounds,
		windows:    sc.Coord.Windows,
		exchanged:  sc.Coord.Exchanged,
	}
	run.flows = sc.Global.Net.CompletedFlows
	for _, pc := range sc.Pods {
		run.flows += pc.Net.CompletedFlows
	}
	if run.wallSec > 0 {
		run.flowsPerSec = float64(run.flows) / run.wallSec
	}
	return run, nil
}

func runMultiPod(s Scale) (*Report, error) {
	r := &Report{ID: "multipod", Title: "Sharded event loop: conservative-window parallel multi-pod simulation"}
	pods, hostsPerPod, iters := 4, 8, 12
	if s == ScaleFull {
		pods, hostsPerPod, iters = 8, 16, 40
	}
	workers := shardWorkers
	if workers <= 1 {
		workers = runtime.NumCPU()
	}
	serial, err := runMultiPodTraining(pods, hostsPerPod, iters, 1)
	if err != nil {
		return nil, err
	}
	par, err := runMultiPodTraining(pods, hostsPerPod, iters, workers)
	if err != nil {
		return nil, err
	}
	speedup := 0.0
	if par.wallSec > 0 {
		speedup = serial.wallSec / par.wallSec
	}
	r.AddTable(Table{
		Title:  fmt.Sprintf("LLaMa-13B, %d pods x %d hosts, %d iterations, %d workers", pods, hostsPerPod, iters, workers),
		Header: []string{"metric", "workers=1", fmt.Sprintf("workers=%d", workers)},
		Rows: [][]string{
			{"wall time (s)", fmtF(serial.wallSec), fmtF(par.wallSec)},
			{"simulated flows", fmtF(float64(serial.flows)), fmtF(float64(par.flows))},
			{"simulated flows/sec (host)", fmtF(serial.flowsPerSec), fmtF(par.flowsPerSec)},
			{"samples/s (simulated)", fmtF(serial.samplesSec), fmtF(par.samplesSec)},
			{"conservative windows", fmtF(float64(serial.windows)), fmtF(float64(par.windows))},
			{"cross-domain posts", fmtF(float64(serial.exchanged)), fmtF(float64(par.exchanged))},
		},
	})
	r.AddClaim("identical simulated results", "bit-equal flows, clocks and window structure",
		fmt.Sprintf("%d vs %d flows, %.6g vs %.6g sim-s, %d vs %d windows",
			serial.flows, par.flows, serial.simSeconds, par.simSeconds, serial.windows, par.windows),
		serial.flows == par.flows && serial.simSeconds == par.simSeconds && //hpnlint:allow floateq -- parallel windows must be bit-exact
			serial.windows == par.windows && serial.exchanged == par.exchanged &&
			serial.samplesSec == par.samplesSec) //hpnlint:allow floateq -- parallel windows must be bit-exact
	r.AddClaim("every iteration crossed the global barrier",
		fmt.Sprintf("%d cross-pod rounds", iters), fmt.Sprintf("%d", par.rounds), par.rounds == iters)
	if runtime.NumCPU() >= 4 && workers >= 4 {
		r.AddClaim("parallel shard windows speed up the host process", ">=1.5x wall",
			fmt.Sprintf("%.2fx (%d-core host)", speedup, runtime.NumCPU()), speedup >= 1.5)
	} else {
		r.AddNote("speedup claim skipped: %d workers on a %d-core host (need >=4 of each); measured %.2fx",
			workers, runtime.NumCPU(), speedup)
	}
	return r, nil
}

package hpn

import (
	"fmt"
	"math"

	"hpn/internal/failure"
	"hpn/internal/metrics"
	"hpn/internal/sim"
)

func init() {
	register("fig18", "Performance under NIC-ToR link malfunctions", runFig18)
}

// fig18Run trains LLaMa-7B on the given access design while injecting the
// requested malfunction, and summarizes the throughput timeline.
type fig18Run struct {
	preMean    float64 // samples/s before the fault
	faultMean  float64 // samples/s while the fault is active
	postMean   float64 // samples/s after repair
	maxGap     float64 // longest inter-iteration gap (seconds)
	iterations int
	crashed    bool
	crashedAt  sim.Time
}

type fig18Fault struct {
	failAt   sim.Time
	repairAt sim.Time // 0 = never repaired
	flap     bool
}

func runFig18Case(dualToR bool, hosts int, f fig18Fault, horizon sim.Time) (*fig18Run, error) {
	cfg := SmallHPN(2, hosts/2, 8)
	if !dualToR {
		cfg.DualToR = false
		cfg.DualPlane = false
	}
	c, err := NewHPN(cfg)
	if err != nil {
		return nil, err
	}
	placed, err := c.PlaceJob(hosts)
	if err != nil {
		return nil, err
	}
	job, err := NewJob(LLaMa7B, Parallelism{TP: 1, PP: 1, DP: hosts * 8}, placed)
	if err != nil {
		return nil, err
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		return nil, err
	}

	in := &failure.Injector{Net: c.Net}
	target := c.Topo.AccessLink(placed[0], 0, 0)
	if f.flap {
		in.FlapLinkAt(f.failAt, target, 1500*sim.Millisecond, 500*sim.Millisecond, 6)
	} else {
		in.FailLinkAt(f.failAt, target)
		if f.repairAt > 0 {
			in.RecoverLinkAt(f.repairAt, target)
		}
	}
	w := failure.NewWatchdog(c.Net)
	w.Watch(horizon)

	if err := tr.Start(100000); err != nil {
		return nil, err
	}
	c.Eng.RunUntil(horizon)

	run := &fig18Run{iterations: tr.Iterations}
	run.crashed, run.crashedAt = w.Crashed()
	repair := f.repairAt
	if f.flap {
		repair = f.failAt + 12*sim.Second
	}
	var prev float64
	for i, p := range tr.Perf.Points {
		if i > 0 {
			run.maxGap = math.Max(run.maxGap, p.T-prev)
		}
		prev = p.T
	}
	pre := tr.Perf.Window(0, f.failAt.Seconds())
	run.preMean = meanV(pre)
	if repair > 0 {
		run.faultMean = meanV(tr.Perf.Window(f.failAt.Seconds()+2, repair.Seconds()))
		run.postMean = meanV(tr.Perf.Window(repair.Seconds()+5, horizon.Seconds()))
	} else {
		run.faultMean = meanV(tr.Perf.Window(f.failAt.Seconds()+2, horizon.Seconds()))
	}
	return run, nil
}

func meanV(pts []metrics.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.V
	}
	return s / float64(len(pts))
}

func runFig18(s Scale) (*Report, error) {
	r := &Report{ID: "fig18", Title: "Training under NIC-ToR link failure and flapping"}
	hosts := 8
	if s == ScaleFull {
		hosts = 32 // the paper's 256 GPUs
	}
	horizon := 70 * sim.Second
	fault := fig18Fault{failAt: 10 * sim.Second, repairAt: 40 * sim.Second}

	dual, err := runFig18Case(true, hosts, fault, horizon)
	if err != nil {
		return nil, err
	}
	single, err := runFig18Case(false, hosts, fault, horizon)
	if err != nil {
		return nil, err
	}
	// Single-ToR with a repair beyond the collective timeout: crash.
	late, err := runFig18Case(false, hosts, fig18Fault{failAt: 10 * sim.Second, repairAt: 190 * sim.Second}, 200*sim.Second)
	if err != nil {
		return nil, err
	}

	r.AddTable(Table{
		Title:  fmt.Sprintf("case 1: link failure at 10s, repaired at 40s (%d GPUs, LLaMa-7B)", hosts*8),
		Header: []string{"design", "samples/s before", "during fault", "after repair", "max stall (s)"},
		Rows: [][]string{
			{"dual-ToR", fmtF(dual.preMean), fmtF(dual.faultMean), fmtF(dual.postMean), fmtF(dual.maxGap)},
			{"single-ToR", fmtF(single.preMean), fmtF(single.faultMean), fmtF(single.postMean), fmtF(single.maxGap)},
		},
	})
	degradation := 1 - dual.faultMean/dual.preMean
	r.AddClaim("dual-ToR: only mild degradation during failure", "~6.25%",
		pct(degradation), degradation > 0 && degradation < 0.20)
	r.AddClaim("dual-ToR: instant recovery after repair", "throughput returns to normal",
		pct(dual.postMean/dual.preMean), dual.postMean > dual.preMean*0.95)
	r.AddClaim("single-ToR: training halts during failure", "halts immediately",
		fmtF(single.faultMean)+" samples/s", single.faultMean < 1e-9)
	r.AddClaim("single-ToR: recovers when repaired within ~1 minute", "recovers",
		pct(single.postMean/single.preMean), !single.crashed && single.postMean > single.preMean*0.9)
	r.AddClaim("single-ToR: crashes when repair takes >2 minutes", "cannot recover",
		fmt.Sprintf("crashed=%v at %v", late.crashed, late.crashedAt), late.crashed)

	// Case 2: link flapping.
	flap := fig18Fault{failAt: 10 * sim.Second, flap: true}
	dualFlap, err := runFig18Case(true, hosts, flap, 45*sim.Second)
	if err != nil {
		return nil, err
	}
	singleFlap, err := runFig18Case(false, hosts, flap, 45*sim.Second)
	if err != nil {
		return nil, err
	}
	r.AddTable(Table{
		Title:  "case 2: link flapping (6 cycles of 1.5s down / 0.5s up)",
		Header: []string{"design", "max stall (s)", "iterations in 45s"},
		Rows: [][]string{
			{"dual-ToR", fmtF(dualFlap.maxGap), fmtF(float64(dualFlap.iterations))},
			{"single-ToR", fmtF(singleFlap.maxGap), fmtF(float64(singleFlap.iterations))},
		},
	})
	r.AddClaim("flapping halts single-ToR for many seconds", ">9s",
		fmt.Sprintf("%.1fs stall", singleFlap.maxGap), singleFlap.maxGap > 3)
	r.AddClaim("flapping is negligible under dual-ToR", "negligible",
		fmt.Sprintf("%.1fs vs %.1fs stall", dualFlap.maxGap, singleFlap.maxGap),
		dualFlap.maxGap < singleFlap.maxGap/2)

	return r, nil
}

package hpn

import (
	"testing"

	"hpn/internal/failure"
	"hpn/internal/sim"
)

// A compressed soak run: train for two virtual hours while NIC-ToR links
// fail at (accelerated) production-like rates with slow repairs. The §2.3
// arithmetic says a single-point-of-failure fabric turns every such fault
// into a crash-and-rollback; HPN's dual-ToR turns them all into transient
// degradation. This test drives both through the same fault schedule.
func TestSoakFailuresUnderProductionRates(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	const (
		hosts     = 8
		horizon   = 2 * sim.Hour
		faults    = 3
		interFail = 35 * sim.Minute
		repair    = 4 * sim.Minute // beyond the collective timeout
	)

	run := func(dualToR bool) (iterations int, crashed bool) {
		cfg := SmallHPN(2, hosts/2, 4)
		if !dualToR {
			cfg.DualToR = false
			cfg.DualPlane = false
		}
		c, err := NewHPN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		placed, err := c.PlaceJob(hosts)
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob(LLaMa7B, Parallelism{TP: 1, PP: 1, DP: hosts * 8}, placed)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(c, job)
		if err != nil {
			t.Fatal(err)
		}
		inj := failure.Injector{Net: c.Net}
		rng := sim.NewRNG(1234)
		at := 10 * sim.Minute
		for i := 0; i < faults; i++ {
			host := placed[rng.Intn(len(placed))]
			link := c.Topo.AccessLink(host, rng.Intn(8), 0)
			inj.FailLinkAt(at, link)
			inj.RecoverLinkAt(at+repair, link)
			at += interFail
		}
		w := failure.NewWatchdog(c.Net)
		w.Watch(horizon)
		if err := tr.Start(1 << 30); err != nil {
			t.Fatal(err)
		}
		c.Eng.RunUntil(horizon)
		crashed, _ = w.Crashed()
		return tr.Iterations, crashed
	}

	dualIters, dualCrashed := run(true)
	singleIters, singleCrashed := run(false)

	if dualCrashed {
		t.Error("dual-ToR job crashed during the soak; §9.3 reports none in 8 months")
	}
	if !singleCrashed {
		t.Error("single-ToR job survived multi-minute repairs; it must crash")
	}
	// Dual-ToR should complete nearly the fault-free iteration budget.
	wantIters := int(horizon.Seconds() / 0.65) // ~0.57s/iter plus slack
	if dualIters < wantIters*9/10 {
		t.Errorf("dual-ToR completed %d iterations, want >= %d", dualIters, wantIters*9/10)
	}
	if singleIters >= dualIters {
		t.Errorf("single-ToR (%d iters incl. post-crash stall) should trail dual-ToR (%d)",
			singleIters, dualIters)
	}
}

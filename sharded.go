package hpn

import (
	"fmt"

	"hpn/internal/collective"
	"hpn/internal/core"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// Sharded-simulation surface: one multi-pod fabric simulated by an ensemble
// of per-pod engines advancing in conservative time windows (see
// internal/sim.Sharded and DESIGN.md "Sharded multi-plane event loop").

// ShardedCluster is a multi-pod fabric with one engine per pod plus a
// global domain for cores and cross-pod flows.
type ShardedCluster = core.ShardedCluster

// ShardedEngine is the windowed coordinator driving a ShardedCluster.
type ShardedEngine = sim.Sharded

// MultiPodHPN returns an HPN configuration with the given pod count (the
// tier3 Core layer is added automatically for Pods > 1).
func MultiPodHPN(pods, segments, hostsPerSegment, aggsPerPlane int) HPNConfig {
	c := topo.SmallHPN(segments, hostsPerSegment, aggsPerPlane)
	c.Pods = pods
	return c
}

// NewShardedHPN builds an HPN fabric and its per-pod engine ensemble. The
// hub may be nil (the process-default hub is used, which may itself be nil).
func NewShardedHPN(cfg HPNConfig, h *TelemetryHub) (*ShardedCluster, error) {
	return core.NewShardedHPN(cfg, h)
}

// ShardedTrainer trains one independent data-parallel job per pod and
// synchronizes the pods through a cross-pod gradient AllReduce between
// iterations — the §7 pattern of pod-local traffic dominating with a thin
// inter-pod exchange riding the 15:1-oversubscribed Core layer.
//
// Each pod's trainer runs entirely on its shard engine; when an iteration
// completes, the trainer's IterGate posts "done" into the global domain and
// the pod quiesces. Once every pod has arrived, the cross-pod AllReduce
// (one leader host per pod) runs on the global engine — the shards are
// paused, so it owns the fabric — and resume events are posted back. The
// gate doubles as the conservative window barrier and, under -memo, the
// memoization window edge.
type ShardedTrainer struct {
	SC *ShardedCluster
	// Trainers holds one per-pod trainer, in pod order.
	Trainers []*Trainer
	// CrossGroup is the leader-host collective group on the global domain.
	CrossGroup *CollectiveGroup
	// CrossBytes is the per-round inter-pod gradient volume.
	CrossBytes float64
	// Rounds counts completed cross-pod synchronization rounds;
	// CrossSeconds accumulates their simulated duration.
	Rounds       int
	CrossSeconds float64
	// FirstErr records the first cross-pod launch error (pod-local errors
	// stay on the pod trainers' FirstErr).
	FirstErr error

	resumes []func()
	arrived int
}

// NewShardedTrainer places one `par`-shaped job in every pod and wires the
// cross-pod coordinator. Every pod runs the same model and parallelism, so
// the ensemble stays symmetric — the common production shape.
func NewShardedTrainer(sc *ShardedCluster, m ModelSpec, par Parallelism) (*ShardedTrainer, error) {
	st := &ShardedTrainer{SC: sc, resumes: make([]func(), len(sc.Pods))}
	var leaders []int
	for pod, pc := range sc.Pods {
		hosts, err := pc.PlaceJob(par.GPUs() / 8)
		if err != nil {
			return nil, fmt.Errorf("hpn: pod %d: %w", pod, err)
		}
		job, err := NewJob(m, par, hosts)
		if err != nil {
			return nil, err
		}
		tr, err := NewTrainer(pc, job)
		if err != nil {
			return nil, err
		}
		p := pod
		tr.IterGate = func(_ int, resume func()) {
			sc.Coord.Post(p+1, 0, sim.GlobalDomain, func() { st.podArrived(p, resume) })
		}
		st.Trainers = append(st.Trainers, tr)
		leaders = append(leaders, hosts[0])
		if pod == 0 {
			st.CrossBytes = job.GradientSyncBytes()
		}
	}
	g, err := collective.NewGroup(sc.Global.Net, sc.Global.CollectiveConfig(), leaders, 8)
	if err != nil {
		return nil, fmt.Errorf("hpn: cross-pod group: %w", err)
	}
	st.CrossGroup = g
	return st, nil
}

// Start schedules `iterations` training iterations on every pod. Drive the
// ensemble with sc.Run() (never the individual engines).
func (st *ShardedTrainer) Start(iterations int) error {
	for pod, tr := range st.Trainers {
		if err := tr.Start(iterations); err != nil {
			return fmt.Errorf("hpn: pod %d: %w", pod, err)
		}
	}
	return nil
}

// podArrived runs on the global engine (the global domain executes
// exclusively, so no locking): it parks the pod's resume and, once every
// pod has arrived, launches the cross-pod gradient exchange.
func (st *ShardedTrainer) podArrived(pod int, resume func()) {
	st.resumes[pod] = resume
	st.arrived++
	if st.arrived < len(st.Trainers) {
		return
	}
	st.arrived = 0
	start := st.SC.Global.Eng.Now()
	_, err := st.CrossGroup.StartAllReduce(st.CrossBytes, func(now sim.Time, _ collective.Result) {
		st.Rounds++
		st.CrossSeconds += (now - start).Seconds()
		st.resumeAll()
	})
	if err != nil {
		if st.FirstErr == nil {
			st.FirstErr = err
		}
		st.resumeAll()
	}
}

// resumeAll posts every parked resume back to its pod. The completion
// instant is >= every pod's local clock (the pods were quiescent since
// their gate posts), so deliveries land unclamped at the AllReduce's end.
func (st *ShardedTrainer) resumeAll() {
	for pod, r := range st.resumes {
		if r == nil {
			continue
		}
		st.resumes[pod] = nil
		st.SC.Coord.Post(sim.GlobalDomain, 0, pod+1, r)
	}
}

// Iterations returns the minimum completed-iteration count across pods.
func (st *ShardedTrainer) Iterations() int {
	if len(st.Trainers) == 0 {
		return 0
	}
	min := st.Trainers[0].Iterations
	for _, tr := range st.Trainers[1:] {
		if tr.Iterations < min {
			min = tr.Iterations
		}
	}
	return min
}

package hpn

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"hpn/internal/sim"
)

// goldenArtifactNames lists the artifacts the determinism contract covers,
// in comparison order.
var goldenArtifactNames = []string{
	"flowlog.tsv", "trace.json", "inband.tsv", "inband.json",
	"incidents.tsv", "incidents.json",
}

// goldenWithFlight adds the flight recorder dump for the same-config gates.
// The memo differential gates keep the base set: replay re-feeds observers,
// not the netsim emission sites that note into the flight ring, so memo-on
// vs memo-off flight contents legitimately differ.
var goldenWithFlight = append(append([]string{}, goldenArtifactNames...), "flight.tsv")

// goldenArtifacts runs one fully instrumented training simulation — small
// HPN cluster, telemetry hub attached, flow log, in-band path telemetry
// and the online health monitor on, a cable failure injected mid-run — and
// returns the serialized artifacts whose bytes the determinism contract
// covers: the flow-log TSV, the Chrome trace JSON, the in-band per-hop
// TSV/JSON, and the health monitor's incidents TSV/JSON. Everything that
// could perturb the output (placement, collective schedules, retransmits
// after the failure, telemetry emission order, path-epoch flushes on
// reroute, detector sweeps) is exercised on purpose.
func goldenArtifacts(t *testing.T, tune ...func(c *Cluster)) map[string][]byte {
	t.Helper()
	opt := DefaultTelemetryOptions()
	opt.Inband = true
	opt.Health = true
	// Profiling on, deliberately: the golden gate proves the profiler and
	// flight recorder never perturb the byte streams, and flight.tsv itself
	// joins the compared set (wall-carrying prof.tsv/json stay out).
	opt.Prof = true
	hub := NewTelemetryHub(opt)
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range tune {
		fn(c)
	}
	c.EnableTelemetry(hub)
	c.Net.EnableFlowLog(0)

	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	// Take one access cable down mid-run so failure handling and the
	// resulting reroutes are part of the replayed byte stream too.
	c.Eng.ScheduleAt(50*sim.Millisecond, func() {
		c.Net.FailCable(c.Topo.AccessLink(0, 0, 0))
	})
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != 2 {
		t.Fatalf("completed %d iterations, want 2", tr.Iterations)
	}

	m := HealthMonitorOf(c)
	if m == nil {
		t.Fatal("health monitor not attached despite Options.Health")
	}

	out := map[string][]byte{}
	capture := func(name string, write func(w io.Writer) error) {
		var b bytes.Buffer
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		out[name] = b.Bytes()
	}
	capture("flowlog.tsv", c.Net.WriteFlowLog)
	capture("trace.json", func(w io.Writer) error { _, err := hub.Tracer.WriteTo(w); return err })
	capture("inband.tsv", c.Net.Inband().WriteTSV)
	capture("inband.json", c.Net.Inband().WriteJSON)
	capture("incidents.tsv", m.WriteTSV)
	capture("incidents.json", m.WriteJSON)
	capture("flight.tsv", hub.Flight.WriteTSV)
	return out
}

// firstDivergence returns the first line number (1-based) where a and b
// differ, with the two offending lines, or 0 if the byte streams match.
func firstDivergence(a, b []byte) (line int, la, lb string) {
	if bytes.Equal(a, b) {
		return 0, "", ""
	}
	as := strings.Split(string(a), "\n")
	bs := strings.Split(string(b), "\n")
	n := len(as)
	if len(bs) > n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		var x, y string
		if i < len(as) {
			x = as[i]
		}
		if i < len(bs) {
			y = bs[i]
		}
		if x != y {
			return i + 1, x, y
		}
	}
	// Byte difference without a line difference (e.g. trailing newline).
	return n, "", ""
}

// TestGoldenDeterminism is the repo's determinism gate: two runs with the
// same seed and full telemetry must produce byte-identical flow-log TSV,
// trace JSON, in-band per-hop TSV/JSON, and health incidents TSV/JSON. A
// failure prints the first divergent line of the offending artifact, which
// almost always fingerprints the culprit (a map iteration, a wall-clock
// read, a global RNG draw) directly.
func TestGoldenDeterminism(t *testing.T) {
	run1 := goldenArtifacts(t)
	run2 := goldenArtifacts(t)

	if flow := run1["flowlog.tsv"]; len(flow) == 0 || bytes.Count(flow, []byte("\n")) < 2 {
		t.Fatal("flow log is empty; the run recorded no flows")
	}
	if len(run1["trace.json"]) == 0 {
		t.Fatal("trace is empty; the run emitted no events")
	}
	if bytes.Count(run1["inband.tsv"], []byte("\n")) < 2 {
		t.Fatal("in-band TSV is empty; the run recorded no per-hop telemetry")
	}
	if bytes.Count(run1["incidents.tsv"], []byte("\n")) < 2 {
		t.Fatal("incidents TSV has no rows; the health monitor recorded nothing")
	}
	if bytes.Count(run1["flight.tsv"], []byte("\n")) < 2 {
		t.Fatal("flight TSV has no rows; the recorder captured no events around the incident")
	}

	for _, name := range goldenWithFlight {
		if line, a, b := firstDivergence(run1[name], run2[name]); line != 0 {
			t.Errorf("%s diverges between identical runs at line %d:\n  run1: %s\n  run2: %s",
				name, line, a, b)
		}
	}
}

// TestGoldenDeterminismParallelFill extends the gate across the allocator's
// parallel mode: the same instrumented run with component filling forced
// onto multiple goroutines (threshold dropped so even tiny recomputes
// parallelize) must produce the same bytes as the serial run. Component
// fills are schedule-independent by construction (alloc.go); this pins it.
func TestGoldenDeterminismParallelFill(t *testing.T) {
	serial := goldenArtifacts(t)
	par := goldenArtifacts(t, func(c *Cluster) {
		c.Net.ParallelFill = 4
		c.Net.ParallelFillMinFlows = 1
	})

	for _, name := range goldenWithFlight {
		if line, a, b := firstDivergence(serial[name], par[name]); line != 0 {
			t.Errorf("%s diverges between serial and parallel fill at line %d:\n  serial:   %s\n  parallel: %s",
				name, line, a, b)
		}
	}
}

// memoArtifacts runs a steady-state training simulation with full
// instrumentation (flow log, trace, in-band, health) and iteration
// memoization on or off, returning the golden artifact set plus the memo
// recorder's stats. Periodic sampling is disabled on BOTH sides: the
// sampler's 10ms daemon tick would land inside every candidate window and
// block memoization, and the off side must run the identical configuration
// for the byte comparison to mean anything.
func memoArtifacts(t *testing.T, memoOn bool, iters int, tune ...func(c *Cluster)) (map[string][]byte, MemoStats) {
	t.Helper()
	opt := DefaultTelemetryOptions()
	opt.Inband = true
	opt.Health = true
	opt.SampleInterval = 0
	opt.Memo = memoOn
	// Profiling stays on through the memo gates too: phase timing must not
	// perturb recorded windows or replay. flight.tsv is NOT captured here —
	// replay does not re-run the netsim emission sites, so its contents
	// differ between memo-on and memo-off by design.
	opt.Prof = true
	hub := NewTelemetryHub(opt)
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTelemetry(hub)
	c.Net.EnableFlowLog(0)
	for _, fn := range tune {
		fn(c)
	}

	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(iters); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != iters {
		t.Fatalf("completed %d iterations, want %d", tr.Iterations, iters)
	}

	m := HealthMonitorOf(c)
	if m == nil {
		t.Fatal("health monitor not attached despite Options.Health")
	}
	var stats MemoStats
	if rec := MemoRecorderOf(c); rec != nil {
		stats = rec.Stats()
	} else if memoOn {
		t.Fatal("memo recorder not attached despite Options.Memo")
	}

	out := map[string][]byte{}
	capture := func(name string, write func(w io.Writer) error) {
		var b bytes.Buffer
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		out[name] = b.Bytes()
	}
	capture("flowlog.tsv", c.Net.WriteFlowLog)
	capture("trace.json", func(w io.Writer) error { _, err := hub.Tracer.WriteTo(w); return err })
	capture("inband.tsv", c.Net.Inband().WriteTSV)
	capture("inband.json", c.Net.Inband().WriteJSON)
	capture("incidents.tsv", m.WriteTSV)
	capture("incidents.json", m.WriteJSON)
	return out, stats
}

// TestGoldenDeterminismMemo is the memoization differential gate: a run
// that fast-forwards most of its iterations from the recorded window must
// produce artifacts byte-identical to the run that simulates every one.
func TestGoldenDeterminismMemo(t *testing.T) {
	const iters = 8
	off, _ := memoArtifacts(t, false, iters)
	on, stats := memoArtifacts(t, true, iters)

	if stats.Replayed < iters-3 {
		t.Errorf("replayed %d of %d iterations, want at least %d (hits=%d misses=%d blocked=%d)",
			stats.Replayed, iters, iters-3, stats.Hits, stats.Misses, stats.Blocked)
	}
	if flow := off["flowlog.tsv"]; len(flow) == 0 || bytes.Count(flow, []byte("\n")) < 2 {
		t.Fatal("flow log is empty; the run recorded no flows")
	}
	for _, name := range goldenArtifactNames {
		if line, a, b := firstDivergence(off[name], on[name]); line != 0 {
			t.Errorf("%s diverges between memo-off and memo-on at line %d:\n  off: %s\n  on:  %s",
				name, line, a, b)
		}
	}
}

// TestGoldenDeterminismMemoParallelFill crosses the memo gate with the
// allocator's parallel mode: replayed windows recorded under parallel
// component filling must still match the serial memo-off bytes.
func TestGoldenDeterminismMemoParallelFill(t *testing.T) {
	const iters = 8
	parallel := func(c *Cluster) {
		c.Net.ParallelFill = 4
		c.Net.ParallelFillMinFlows = 1
	}
	off, _ := memoArtifacts(t, false, iters)
	on, stats := memoArtifacts(t, true, iters, parallel)

	if stats.Replayed < iters-3 {
		t.Errorf("replayed %d of %d iterations under parallel fill, want at least %d",
			stats.Replayed, iters, iters-3)
	}
	for _, name := range goldenArtifactNames {
		if line, a, b := firstDivergence(off[name], on[name]); line != 0 {
			t.Errorf("%s diverges between serial memo-off and parallel memo-on at line %d:\n  off: %s\n  on:  %s",
				name, line, a, b)
		}
	}
}

// TestGoldenDeterminismMemoInvalidation injects a mid-run link flap into a
// memoized run: the failure must drop the cache (invalidation), the flap
// handling must re-simulate, memoization must re-warm afterwards, and the
// artifacts must still match the memo-off run with the identical flap.
// Iterations run ~1s of virtual time each and the flap detector keeps its
// 10s window armed after the transition, so the run is long enough for the
// detectors to go quiet and memoization to resume.
func TestGoldenDeterminismMemoInvalidation(t *testing.T) {
	const iters = 24
	flap := func(c *Cluster) {
		lk := c.Topo.AccessLink(0, 0, 0)
		c.Eng.ScheduleAt(50*sim.Millisecond, func() { c.Net.FailCable(lk) })
		c.Eng.ScheduleAt(120*sim.Millisecond, func() { c.Net.RecoverCable(lk) })
	}
	off, _ := memoArtifacts(t, false, iters, flap)
	on, stats := memoArtifacts(t, true, iters, flap)

	if stats.Invalidations == 0 {
		t.Error("link flap caused no memo invalidation; the cache survived a fabric transition")
	}
	if stats.Replayed < 2 {
		t.Errorf("replayed only %d iterations around the flap, want memoization to re-warm (hits=%d misses=%d blocked=%d invalidations=%d)",
			stats.Replayed, stats.Hits, stats.Misses, stats.Blocked, stats.Invalidations)
	}
	if bytes.Count(on["incidents.tsv"], []byte("\n")) < 2 {
		t.Fatal("incidents TSV has no rows; the flap was not detected")
	}
	for _, name := range goldenArtifactNames {
		if line, a, b := firstDivergence(off[name], on[name]); line != 0 {
			t.Errorf("%s diverges between memo-off and memo-on under a link flap at line %d:\n  off: %s\n  on:  %s",
				name, line, a, b)
		}
	}
}

// TestGoldenDeterminismDistinctFailures makes sure the gate is not
// trivially green: changing the injected fault must change the artifacts,
// proving the byte comparison actually covers failure handling.
func TestGoldenDeterminismDistinctFailures(t *testing.T) {
	run := func(port int) []byte {
		hub := NewTelemetryHub(DefaultTelemetryOptions())
		c, err := NewHPN(SmallHPN(1, 8, 8))
		if err != nil {
			t.Fatal(err)
		}
		c.EnableTelemetry(hub)
		c.Net.EnableFlowLog(0)
		hosts, err := c.PlaceJob(8)
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(c, job)
		if err != nil {
			t.Fatal(err)
		}
		fail := c.Topo.AccessLink(0, 0, port)
		c.Eng.ScheduleAt(50*sim.Millisecond, func() { c.Net.FailCable(fail) })
		if err := tr.Start(2); err != nil {
			t.Fatal(err)
		}
		c.Eng.Run()
		var b bytes.Buffer
		if _, err := hub.Tracer.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a := run(0)
	b := run(1)
	if bytes.Equal(a, b) {
		t.Fatal("traces identical across different injected failures; the comparison is vacuous")
	}
}

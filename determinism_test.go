package hpn

import (
	"bytes"
	"strings"
	"testing"

	"hpn/internal/sim"
)

// goldenArtifacts runs one fully instrumented training simulation — small
// HPN cluster, telemetry hub attached, flow log and in-band path telemetry
// on, a cable failure injected mid-run — and returns the serialized
// artifacts whose bytes the determinism contract covers: the flow-log TSV,
// the Chrome trace JSON, and the in-band per-hop TSV and JSON. Everything
// that could perturb the output (placement, collective schedules,
// retransmits after the failure, telemetry emission order, path-epoch
// flushes on reroute) is exercised on purpose.
func goldenArtifacts(t *testing.T, tune ...func(c *Cluster)) (flowlog, trace, ibTSV, ibJSON []byte) {
	t.Helper()
	opt := DefaultTelemetryOptions()
	opt.Inband = true
	hub := NewTelemetryHub(opt)
	c, err := NewHPN(SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range tune {
		fn(c)
	}
	c.EnableTelemetry(hub)
	c.Net.EnableFlowLog(0)

	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(c, job)
	if err != nil {
		t.Fatal(err)
	}
	// Take one access cable down mid-run so failure handling and the
	// resulting reroutes are part of the replayed byte stream too.
	c.Eng.ScheduleAt(50*sim.Millisecond, func() {
		c.Net.FailCable(c.Topo.AccessLink(0, 0, 0))
	})
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if tr.Iterations != 2 {
		t.Fatalf("completed %d iterations, want 2", tr.Iterations)
	}

	var fb, tb, ib, ij bytes.Buffer
	if err := c.Net.WriteFlowLog(&fb); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Tracer.WriteTo(&tb); err != nil {
		t.Fatal(err)
	}
	if err := c.Net.Inband().WriteTSV(&ib); err != nil {
		t.Fatal(err)
	}
	if err := c.Net.Inband().WriteJSON(&ij); err != nil {
		t.Fatal(err)
	}
	return fb.Bytes(), tb.Bytes(), ib.Bytes(), ij.Bytes()
}

// firstDivergence returns the first line number (1-based) where a and b
// differ, with the two offending lines, or 0 if the byte streams match.
func firstDivergence(a, b []byte) (line int, la, lb string) {
	if bytes.Equal(a, b) {
		return 0, "", ""
	}
	as := strings.Split(string(a), "\n")
	bs := strings.Split(string(b), "\n")
	n := len(as)
	if len(bs) > n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		var x, y string
		if i < len(as) {
			x = as[i]
		}
		if i < len(bs) {
			y = bs[i]
		}
		if x != y {
			return i + 1, x, y
		}
	}
	// Byte difference without a line difference (e.g. trailing newline).
	return n, "", ""
}

// TestGoldenDeterminism is the repo's determinism gate: two runs with the
// same seed and full telemetry must produce byte-identical flow-log TSV,
// trace JSON, and in-band per-hop TSV/JSON. A failure prints the first
// divergent line of the offending artifact, which almost always
// fingerprints the culprit (a map iteration, a wall-clock read, a global
// RNG draw) directly.
func TestGoldenDeterminism(t *testing.T) {
	flow1, trace1, ib1, ij1 := goldenArtifacts(t)
	flow2, trace2, ib2, ij2 := goldenArtifacts(t)

	if len(flow1) == 0 || bytes.Count(flow1, []byte("\n")) < 2 {
		t.Fatal("flow log is empty; the run recorded no flows")
	}
	if len(trace1) == 0 {
		t.Fatal("trace is empty; the run emitted no events")
	}
	if bytes.Count(ib1, []byte("\n")) < 2 {
		t.Fatal("in-band TSV is empty; the run recorded no per-hop telemetry")
	}

	if line, a, b := firstDivergence(flow1, flow2); line != 0 {
		t.Errorf("flow-log TSV diverges between identical runs at line %d:\n  run1: %s\n  run2: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(trace1, trace2); line != 0 {
		t.Errorf("trace JSON diverges between identical runs at line %d:\n  run1: %s\n  run2: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(ib1, ib2); line != 0 {
		t.Errorf("in-band TSV diverges between identical runs at line %d:\n  run1: %s\n  run2: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(ij1, ij2); line != 0 {
		t.Errorf("in-band JSON diverges between identical runs at line %d:\n  run1: %s\n  run2: %s",
			line, a, b)
	}
}

// TestGoldenDeterminismParallelFill extends the gate across the allocator's
// parallel mode: the same instrumented run with component filling forced
// onto multiple goroutines (threshold dropped so even tiny recomputes
// parallelize) must produce the same bytes as the serial run. Component
// fills are schedule-independent by construction (alloc.go); this pins it.
func TestGoldenDeterminismParallelFill(t *testing.T) {
	flow1, trace1, ib1, ij1 := goldenArtifacts(t)
	flow2, trace2, ib2, ij2 := goldenArtifacts(t, func(c *Cluster) {
		c.Net.ParallelFill = 4
		c.Net.ParallelFillMinFlows = 1
	})

	if line, a, b := firstDivergence(flow1, flow2); line != 0 {
		t.Errorf("flow-log TSV diverges between serial and parallel fill at line %d:\n  serial:   %s\n  parallel: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(trace1, trace2); line != 0 {
		t.Errorf("trace JSON diverges between serial and parallel fill at line %d:\n  serial:   %s\n  parallel: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(ib1, ib2); line != 0 {
		t.Errorf("in-band TSV diverges between serial and parallel fill at line %d:\n  serial:   %s\n  parallel: %s",
			line, a, b)
	}
	if line, a, b := firstDivergence(ij1, ij2); line != 0 {
		t.Errorf("in-band JSON diverges between serial and parallel fill at line %d:\n  serial:   %s\n  parallel: %s",
			line, a, b)
	}
}

// TestGoldenDeterminismDistinctFailures makes sure the gate is not
// trivially green: changing the injected fault must change the artifacts,
// proving the byte comparison actually covers failure handling.
func TestGoldenDeterminismDistinctFailures(t *testing.T) {
	run := func(port int) []byte {
		hub := NewTelemetryHub(DefaultTelemetryOptions())
		c, err := NewHPN(SmallHPN(1, 8, 8))
		if err != nil {
			t.Fatal(err)
		}
		c.EnableTelemetry(hub)
		c.Net.EnableFlowLog(0)
		hosts, err := c.PlaceJob(8)
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(c, job)
		if err != nil {
			t.Fatal(err)
		}
		fail := c.Topo.AccessLink(0, 0, port)
		c.Eng.ScheduleAt(50*sim.Millisecond, func() { c.Net.FailCable(fail) })
		if err := tr.Start(2); err != nil {
			t.Fatal(err)
		}
		c.Eng.Run()
		var b bytes.Buffer
		if _, err := hub.Tracer.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a := run(0)
	b := run(1)
	if bytes.Equal(a, b) {
		t.Fatal("traces identical across different injected failures; the comparison is vacuous")
	}
}

package hpn

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// MetricSum sums every registry metric whose name ends in suffix across
// all clusters attached to the hub (cluster prefixes are c2_, c3_, ...
// past the first). Returns 0 without a hub. Summation runs in sorted name
// order: float addition is not associative, so a map-order reduction would
// drift bitwise between same-seed runs.
func MetricSum(hub *TelemetryHub, suffix string) float64 {
	if hub == nil {
		return 0
	}
	var b strings.Builder
	if err := hub.Registry.WriteJSON(&b); err != nil {
		return 0
	}
	var metrics map[string]float64
	if err := json.Unmarshal([]byte(b.String()), &metrics); err != nil {
		return 0
	}
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		if strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var total float64
	for _, name := range names {
		total += metrics[name]
	}
	return total
}

// OverflowWarnings reports every bounded collector on the hub that hit its
// cap and silently dropped data: the trace-event ring (MaxTraceEvents) and
// the in-band per-hop collectors (InbandMax). One message per overflowing
// collector, ready to print to stderr; empty means every artifact is
// complete. Runners (hpnsim, hpnbench) share this so the two CLIs can
// never drift on which overflows they surface.
func OverflowWarnings(hub *TelemetryHub) []string {
	if hub == nil {
		return nil
	}
	var out []string
	if hub.Tracer != nil {
		if d := hub.Tracer.Dropped(); d > 0 {
			out = append(out, fmt.Sprintf(
				"warning: trace buffer dropped %d events (cap reached); the trace under-reports — raise MaxTraceEvents", d))
		}
	}
	if d := MetricSum(hub, "netsim_inband_dropped_records"); d > 0 {
		out = append(out, fmt.Sprintf(
			"warning: in-band collectors dropped %.0f per-hop records (cap reached); inband.tsv under-reports — raise InbandMax", d))
	}
	return out
}

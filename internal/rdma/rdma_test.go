package rdma

import (
	"testing"

	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func newNet(t *testing.T, segments, hosts, aggs int) (*sim.Engine, *netsim.Sim) {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(segments, hosts, aggs))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	return eng, netsim.New(eng, top)
}

func TestEstablishConnsDisjoint(t *testing.T) {
	_, net := newNet(t, 2, 4, 8)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	cs, err := EstablishConns(net, src, dst, DefaultEstablishOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Conns) != 4 {
		t.Fatalf("conns = %d, want 4", len(cs.Conns))
	}
	if !cs.Disjoint() {
		t.Fatal("Algorithm 1 postcondition violated: paths overlap")
	}
	// Two per plane under dual-plane.
	perPlane := map[int]int{}
	for _, c := range cs.Conns {
		perPlane[c.Plane]++
	}
	if perPlane[0] != 2 || perPlane[1] != 2 {
		t.Fatalf("plane spread = %v, want 2+2", perPlane)
	}
	if cs.Probes == 0 {
		t.Fatal("no probes recorded")
	}
}

// With only one agg per plane there is exactly one fabric path per plane:
// the sweep must cap at one connection per plane rather than fabricate
// overlapping "disjoint" paths.
func TestEstablishConnsLimitedDiversity(t *testing.T) {
	_, net := newNet(t, 2, 4, 1)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	cs, err := EstablishConns(net, src, dst, DefaultEstablishOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Conns) != 2 {
		t.Fatalf("conns = %d, want 2 (one per plane)", len(cs.Conns))
	}
	if !cs.Disjoint() {
		t.Fatal("paths overlap")
	}
}

func TestLeastWQESelection(t *testing.T) {
	eng, net := newNet(t, 2, 4, 8)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	cs, err := EstablishConns(net, src, dst, DefaultEstablishOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch 8 equal messages without letting any complete: Algorithm 2
	// must rotate across all 4 connections (the least-loaded is always a
	// fresh one).
	for i := 0; i < 8; i++ {
		if _, err := cs.Send(1<<20, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cs.Conns {
		if c.SentBytes != 2<<20 {
			t.Fatalf("conn sent %v, want even 2MiB spread", c.SentBytes)
		}
	}
	if cs.Outstanding() != 8<<20 {
		t.Fatalf("outstanding = %v, want 8MiB", cs.Outstanding())
	}
	eng.Run()
	if cs.Outstanding() != 0 {
		t.Fatalf("WQE counter leak: %v outstanding after drain", cs.Outstanding())
	}
}

// The WQE counter is a congestion signal: when one connection's path is
// congested by background traffic, Algorithm 2 shifts load away from it.
func TestWQECongestionAvoidance(t *testing.T) {
	eng, net := newNet(t, 2, 8, 2)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 8, NIC: 0}
	cs, err := EstablishConns(net, src, dst, EstablishOpts{Conns: 4, MaxSweep: 256, SportBase: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Conns) < 3 {
		t.Fatalf("conns = %d, want >=3", len(cs.Conns))
	}
	// Congest conn 0's ToR->Agg hop with enough foreign 200G senders that
	// the 400G fabric link's fair share drops below the victim's access
	// share.
	victim := cs.Conns[0]
	aggLink := victim.FabricPath[1]
	hogs := 0
	for h := 1; h < 8 && hogs < 5; h++ {
		hog := route.Endpoint{Host: h, NIC: 0}
		hogDst := route.Endpoint{Host: 8 + h, NIC: 0}
		for sport := uint16(30000); sport < 31000; sport++ {
			tu := tupleHelper(hog, hogDst, sport)
			p, _, err := net.R.Path(hog, hogDst, victim.Plane, tu, 0)
			if err != nil {
				continue
			}
			if p[1] == aggLink {
				if _, err := net.StartFlow(hog, hogDst, 64<<30, netsim.FlowOpts{SrcPort: victim.Plane, Sport: sport}); err != nil {
					t.Fatal(err)
				}
				hogs++
				break
			}
		}
	}
	if hogs < 4 {
		t.Fatalf("placed only %d hog flows on the victim link", hogs)
	}
	// Stream messages; completions gate new sends (closed loop).
	sent := map[*Conn]float64{}
	var pump func(now sim.Time)
	total := 0
	pump = func(now sim.Time) {
		if total >= 64 {
			return
		}
		total++
		c := cs.pick()
		sent[c] += 1
		if _, err := cs.Send(8<<20, pump); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		pump(0)
	}
	eng.Run()
	if sent[victim] >= float64(total)/float64(len(cs.Conns)) {
		t.Fatalf("congested conn got %v of %d messages; Algorithm 2 should starve it", sent[victim], total)
	}
}

func tupleHelper(src, dst route.Endpoint, sport uint16) hashing.FiveTuple {
	return hashing.FiveTuple{
		SrcAddr: src.Addr(), DstAddr: dst.Addr(),
		SrcPort: sport, DstPort: 4791, Proto: 17,
	}
}

func TestSendOnPinsConnection(t *testing.T) {
	eng, net := newNet(t, 2, 4, 4)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	cs, err := EstablishConns(net, src, dst, DefaultEstablishOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cs.SendOn(1, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Conns[1].SentBytes != 6<<20 {
		t.Fatalf("pinned conn sent %v", cs.Conns[1].SentBytes)
	}
	eng.Run()
}

func TestEstablishConnsErrors(t *testing.T) {
	_, net := newNet(t, 1, 2, 2)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}
	if _, err := EstablishConns(net, src, dst, EstablishOpts{Conns: 0}); err == nil {
		t.Fatal("zero conns accepted")
	}
	// Kill every access port of dst: establishment must fail.
	for p := 0; p < 2; p++ {
		net.FailCable(net.Top.AccessLink(dst.Host, dst.NIC, p))
	}
	// Let convergence pass so paths are truly gone.
	net.Eng.RunUntil(5 * sim.Second)
	if _, err := EstablishConns(net, src, dst, DefaultEstablishOpts()); err == nil {
		t.Fatal("established conns to unreachable peer")
	}
}

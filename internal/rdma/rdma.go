// Package rdma models the host networking stack HPN's path selection lives
// in: RDMA connections (queue pairs) with fixed 5-tuples, Work Queue Element
// (WQE) byte counters, and the two algorithms of Appendix B:
//
//   - EstablishConns (Algorithm 1): for a new peer, sweep transport source
//     ports — whose ECMP outcome the host can predict exactly thanks to
//     RePaC-style hash visibility — and keep those that yield pairwise
//     disjoint fabric paths.
//   - PathSelection (Algorithm 2): dispatch each message on the connection
//     with the fewest outstanding WQE bytes; a congested connection drains
//     its queue slower, so the counter doubles as a congestion signal.
//
// Because the transport is hardware-offloaded (commodity RoCE), nothing here
// touches the transport layer itself: both algorithms operate strictly above
// it, exactly as the paper requires for deployability.
package rdma

import (
	"fmt"

	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// Conn is one RDMA connection: a queue pair bound to a 5-tuple. The two
// physical NIC ports share QP context, so a bond failover moves the
// connection between planes without breaking it (§4: "transparent to
// upper-layer applications").
type Conn struct {
	Src, Dst route.Endpoint
	// Sport is the transport source port chosen by EstablishConns to pin
	// the ECMP path.
	Sport uint16
	// Plane is the NIC port the connection was established on.
	Plane int
	// FabricPath is the predicted path at establishment time (for
	// disjointness accounting; failures may move the live path).
	FabricPath []topo.LinkID

	// wqeBytes counts the bytes of active (posted, incomplete) WQEs.
	wqeBytes float64
	// SentBytes is the lifetime total dispatched on this connection.
	SentBytes float64

	// doneFn is the connection's persistent flow-completion handler (WQE
	// retirement), bound lazily on first Send so posting a message costs no
	// closure allocation; the caller's callback rides in Flow.After.
	doneFn func(now sim.Time, f *netsim.Flow)
}

// flowDone retires a completed flow's WQE bytes.
func (c *Conn) flowDone(_ sim.Time, f *netsim.Flow) {
	c.wqeBytes -= f.Bits / 8
	if c.wqeBytes < 0 {
		c.wqeBytes = 0
	}
}

// Outstanding returns the connection's current WQE byte count.
func (c *Conn) Outstanding() float64 { return c.wqeBytes }

// ConnSet is the group of disjoint-path connections to one peer.
type ConnSet struct {
	Net   *netsim.Sim
	Conns []*Conn
	// Probes is the number of candidate paths examined while establishing
	// the set — the realized "path selection complexity" of Table 1.
	Probes int
}

// EstablishOpts tunes Algorithm 1.
type EstablishOpts struct {
	// Conns is the number of connections wanted (spread across planes).
	Conns int
	// MaxSweep bounds the source-port sweep per connection.
	MaxSweep int
	// SportBase is the first source port probed.
	SportBase uint16
}

// DefaultEstablishOpts asks for 4 connections (2 per plane under
// dual-plane).
func DefaultEstablishOpts() EstablishOpts {
	return EstablishOpts{Conns: 4, MaxSweep: 256, SportBase: 49152}
}

// EstablishConns is Algorithm 1: findPaths + Connect for each disjoint
// path. Paths are "disjoint" when they share no fabric link; the two access
// links per plane are shared by construction and excluded from the check.
func EstablishConns(net *netsim.Sim, src, dst route.Endpoint, opt EstablishOpts) (*ConnSet, error) {
	if opt.Conns <= 0 {
		return nil, fmt.Errorf("rdma: need at least one connection")
	}
	if opt.MaxSweep <= 0 {
		opt.MaxSweep = 256
	}
	if opt.SportBase == 0 {
		opt.SportBase = 49152
	}
	planes := len(net.Top.Hosts[src.Host].NICs[src.NIC].Ports)
	cs := &ConnSet{Net: net}
	now := net.Eng.Now()

	sport := opt.SportBase
	for plane := 0; plane < planes; plane++ {
		want := opt.Conns / planes
		if plane < opt.Conns%planes {
			want++
		}
		used := map[topo.LinkID]bool{}
		got := 0
		for sweep := 0; sweep < opt.MaxSweep && got < want; sweep++ {
			sport++
			tuple := hashing.FiveTuple{
				SrcAddr: src.Addr(), DstAddr: dst.Addr(),
				SrcPort: sport, DstPort: 4791, Proto: 17,
			}
			path, blackholed, err := net.R.Path(src, dst, plane, tuple, now)
			cs.Probes++
			if err != nil || blackholed {
				continue
			}
			if overlaps(fabricOf(path), used) {
				continue
			}
			for _, lk := range fabricOf(path) {
				used[lk] = true
			}
			cs.Conns = append(cs.Conns, &Conn{
				Src: src, Dst: dst, Sport: sport, Plane: plane, FabricPath: path,
			})
			got++
		}
	}
	if len(cs.Conns) == 0 {
		return nil, fmt.Errorf("rdma: no usable path from %v to %v", src, dst)
	}
	return cs, nil
}

// fabricOf strips the access hops (first and last link), which every
// same-plane connection necessarily shares.
func fabricOf(path []topo.LinkID) []topo.LinkID {
	if len(path) <= 2 {
		return nil
	}
	return path[1 : len(path)-1]
}

func overlaps(links []topo.LinkID, used map[topo.LinkID]bool) bool {
	for _, lk := range links {
		if used[lk] {
			return true
		}
	}
	return false
}

// Disjoint reports whether the set's fabric paths are pairwise disjoint
// within each plane (the Algorithm 1 postcondition).
func (cs *ConnSet) Disjoint() bool {
	perPlane := map[int]map[topo.LinkID]bool{}
	for _, c := range cs.Conns {
		m := perPlane[c.Plane]
		if m == nil {
			m = map[topo.LinkID]bool{}
			perPlane[c.Plane] = m
		}
		for _, lk := range fabricOf(c.FabricPath) {
			if m[lk] {
				return false
			}
			m[lk] = true
		}
	}
	return true
}

// pick is Algorithm 2 (PathSelection): the connection with the minimal
// outstanding WQE bytes.
func (cs *ConnSet) pick() *Conn {
	best := cs.Conns[0]
	for _, c := range cs.Conns[1:] {
		if c.wqeBytes < best.wqeBytes {
			best = c
		}
	}
	return best
}

// Send posts a message: Algorithm 2 picks the least-loaded connection, the
// WQE counter grows, and the flow is injected with the connection's pinned
// sport and plane. The counter shrinks when the CQE (flow completion)
// returns.
func (cs *ConnSet) Send(bytes float64, onComplete func(now sim.Time)) (*netsim.Flow, error) {
	c := cs.pick()
	return cs.post(c, bytes, onComplete)
}

// post dispatches one message on a specific connection.
func (cs *ConnSet) post(c *Conn, bytes float64, onComplete func(now sim.Time)) (*netsim.Flow, error) {
	c.wqeBytes += bytes
	c.SentBytes += bytes
	if c.doneFn == nil {
		c.doneFn = c.flowDone
	}
	return cs.Net.StartFlow(c.Src, c.Dst, bytes, netsim.FlowOpts{
		SrcPort:    c.Plane,
		Sport:      c.Sport,
		OnComplete: c.doneFn,
		After:      onComplete,
	})
}

// SendOn bypasses Algorithm 2 and posts on a specific connection — the
// baseline ("blind") dispatch used by the sec61b ablation.
func (cs *ConnSet) SendOn(i int, bytes float64, onComplete func(now sim.Time)) (*netsim.Flow, error) {
	c := cs.Conns[i%len(cs.Conns)]
	return cs.post(c, bytes, onComplete)
}

// Outstanding sums WQE bytes across the set.
func (cs *ConnSet) Outstanding() float64 {
	sum := 0.0
	for _, c := range cs.Conns {
		sum += c.wqeBytes
	}
	return sum
}

package netsim

import (
	"math"
	"math/rand"
	"testing"

	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// checkMaxMinCertificate verifies that rates (parallel to flows, -1 =
// ignored) form a valid max-min fair point on top: no link over capacity,
// and every allocated flow is bottlenecked — some link on its path is
// saturated and the flow holds a maximal rate there. A zero-rate flow is
// certified by a zero-capacity (or fully failed) link the same way.
func checkMaxMinCertificate(t *testing.T, top *topo.Topology, flows []*Flow, rates []float64, tag string) {
	t.Helper()
	used := map[topo.LinkID]float64{}
	maxOn := map[topo.LinkID]float64{}
	for i, f := range flows {
		if rates[i] < 0 {
			continue
		}
		for _, lk := range f.Path {
			used[lk] += rates[i]
			if rates[i] > maxOn[lk] {
				maxOn[lk] = rates[i]
			}
		}
	}
	linkCap := func(lk topo.LinkID) float64 {
		if !top.LinkUsable(lk) {
			return 0
		}
		return top.Link(lk).CapBps
	}
	for lk, u := range used {
		if c := linkCap(lk); u > c*(1+1e-6)+1e-6 {
			t.Fatalf("%s: link %d carries %.3f over capacity %.3f", tag, lk, u, c)
		}
	}
	for i, f := range flows {
		if rates[i] < 0 {
			continue
		}
		bottlenecked := false
		for _, lk := range f.Path {
			c := linkCap(lk)
			if used[lk] >= c*(1-1e-6) && rates[i] >= maxOn[lk]*(1-1e-6) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("%s: flow %d at rate %.3f has no saturated bottleneck link", tag, f.ID, rates[i])
		}
	}
}

// TestAllocDifferential pins the link-centric allocator in alloc.go against
// the original flows-x-hops implementation (alloc_reference.go) on seeded
// randomized topologies and flow sets, with failed links and forced
// parallel filling mixed in. Every live rate must match the reference
// within 1e-6 relative, and both rate vectors must carry a max-min
// certificate.
func TestAllocDifferential(t *testing.T) {
	shapes := []struct {
		segments, hosts, aggs int
	}{
		{1, 4, 2},
		{2, 8, 4},
		{2, 6, 8},
	}
	rng := rand.New(rand.NewSource(0x4a11c))
	for trial := 0; trial < 30; trial++ {
		shape := shapes[trial%len(shapes)]
		top, err := topo.BuildHPN(topo.SmallHPN(shape.segments, shape.hosts, shape.aggs))
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		s := New(eng, top)
		if trial%2 == 1 {
			// Exercise the parallel fill path on half the trials; the rates
			// must not depend on it.
			s.ParallelFill = 4
			s.ParallelFillMinFlows = 1
		}
		nHosts := shape.segments * shape.hosts
		nFlows := 1 + rng.Intn(80)
		s.Batch(func() {
			for i := 0; i < nFlows; i++ {
				src := rng.Intn(nHosts)
				dst := rng.Intn(nHosts)
				if src == dst {
					dst = (dst + 1) % nHosts
				}
				nic := rng.Intn(8)
				size := float64(1+rng.Intn(64)) * (1 << 20)
				if _, err := s.StartFlow(
					route.Endpoint{Host: src, NIC: nic},
					route.Endpoint{Host: dst, NIC: nic},
					size, FlowOpts{SrcPort: -1}); err != nil {
					t.Fatal(err)
				}
			}
		})
		if trial%3 == 2 {
			// Fail a random access cable: dead links must allocate zero
			// in both implementations.
			s.FailCable(top.AccessLink(rng.Intn(nHosts), rng.Intn(8), 0))
		}

		ref := referenceMaxMin(top, s.active)
		live := make([]float64, len(s.active))
		for i, f := range s.active {
			live[i] = f.Rate
			if f.Stalled || len(f.Path) == 0 {
				live[i] = -1
			}
		}
		for i := range s.active {
			if (ref[i] < 0) != (live[i] < 0) {
				t.Fatalf("trial %d flow %d: eligibility differs (ref %.3f, live %.3f)",
					trial, i, ref[i], live[i])
			}
			if ref[i] < 0 {
				continue
			}
			diff := math.Abs(ref[i] - live[i])
			if diff > 1e-6*math.Max(1, math.Abs(ref[i])) {
				t.Fatalf("trial %d flow %d: rate %.9g differs from reference %.9g",
					trial, i, live[i], ref[i])
			}
		}
		checkMaxMinCertificate(t, top, s.active, live, "live")
		checkMaxMinCertificate(t, top, s.active, ref, "reference")
	}
}

// TestAllocZeroCapacityLink is the regression test for the defensive
// no-progress branch: a zero-capacity link on a flow's path historically
// risked freezing flows without retiring their shares (corrupting capRem /
// nShare for everything sharing the path). The allocation must terminate,
// give the blocked flow rate zero with coherent accounting, and leave
// co-located traffic unharmed.
func TestAllocZeroCapacityLink(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	dead := top.AccessLink(0, 0, 0)
	top.Link(dead).CapBps = 0
	top.Link(top.Link(dead).Reverse).CapBps = 0

	eng := sim.New()
	s := New(eng, top)
	blocked, err := s.StartFlow(
		route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0},
		1<<20, FlowOpts{SrcPort: 0})
	if err != nil {
		t.Fatal(err)
	}
	moving, err := s.StartFlow(
		route.Endpoint{Host: 2, NIC: 1}, route.Endpoint{Host: 3, NIC: 1},
		1<<20, FlowOpts{SrcPort: -1})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Rate != 0 {
		t.Fatalf("flow through zero-capacity link got rate %v, want 0", blocked.Rate)
	}
	if moving.Rate <= 0 {
		t.Fatalf("unrelated flow got rate %v, want > 0", moving.Rate)
	}
	ref := referenceMaxMin(top, s.active)
	for i, f := range s.active {
		want := ref[i]
		if want < 0 {
			want = 0
		}
		if math.Abs(f.Rate-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("flow %d rate %v differs from reference %v", f.ID, f.Rate, want)
		}
	}
	// The moving flow must still drain; the engine must not spin on the
	// zero-rate one.
	eng.Run()
	if s.CompletedFlows != 1 || moving.index >= 0 {
		t.Fatalf("completed %d flows, want exactly the unblocked one", s.CompletedFlows)
	}
	if blocked.index < 0 || blocked.Rate != 0 {
		t.Fatal("blocked flow should remain active at rate 0")
	}
}

// TestFillComponentDefensiveSweep drives the unreachable-by-construction
// defensive sweep in fillComponent directly: a component whose link list
// omits a flow's links (so the heap never freezes it) must park the flow at
// rate zero AND retire its path shares, keeping capRem/nShare coherent for
// any later accounting.
func TestFillComponentDefensiveSweep(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	s := New(eng, top)
	lk := top.AccessLink(0, 0, 0)

	f := &Flow{ID: 1, Remaining: 1 << 20, Rate: 123, Path: []topo.LinkID{lk}}
	s.curEpoch++
	s.touch(lk)
	s.nShare[lk] = 1
	s.inc[lk] = append(s.inc[lk], 0)
	s.unfrozen = []*Flow{f}
	s.frozen = []bool{false}

	c := allocComp{flows: []int32{0}, links: nil} // link list deliberately broken
	s.ensureHeaps(1)
	minT := s.fillComponent(&c, &s.heaps[0], 0)

	if f.Rate != 0 {
		t.Fatalf("swept flow kept stale rate %v, want 0", f.Rate)
	}
	if minT != -1 {
		t.Fatalf("swept component projected completion %v, want -1", minT)
	}
	if got := s.nShare[lk]; got != 0 {
		t.Fatalf("share count not retired: nShare=%d, want 0", got)
	}
	if !s.frozen[0] {
		t.Fatal("swept flow not marked frozen")
	}
}

// TestReferenceNoProgressAccounting checks the fixed defensive branch in
// referenceMaxMin by construction: since the branch is unreachable through
// the public surface, assert the accounting identity it must preserve —
// after a full allocation the per-link rate sums never exceed capacity even
// when a zero-capacity link forces the min share to 0 from the first round.
func TestReferenceNoProgressAccounting(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	dead := top.AccessLink(1, 0, 0)
	top.Link(dead).CapBps = 0

	eng := sim.New()
	s := New(eng, top)
	for i := 0; i < 8; i++ {
		src, dst := i%4, (i+1)%4
		if _, err := s.StartFlow(
			route.Endpoint{Host: src, NIC: 0}, route.Endpoint{Host: dst, NIC: 0},
			1<<20, FlowOpts{SrcPort: 0}); err != nil {
			t.Fatal(err)
		}
	}
	rates := referenceMaxMin(top, s.active)
	checkMaxMinCertificate(t, top, s.active, rates, "reference-zero-cap")
	for i, f := range s.active {
		onDead := false
		for _, l := range f.Path {
			if l == dead {
				onDead = true
			}
		}
		if onDead && rates[i] != 0 {
			t.Fatalf("flow %d crosses the zero-capacity link but got rate %v", f.ID, rates[i])
		}
	}
}

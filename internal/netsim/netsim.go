// Package netsim is a fluid (flow-level) discrete-event network simulator.
//
// Flows are modeled as fluid streams over fixed paths; link bandwidth is
// shared max-min fairly (progressive filling), the standard abstraction for
// fabric-scale studies. The simulator recomputes rates whenever the flow set
// or the topology changes and schedules the next flow completion as a
// discrete event. Near-simultaneous completions are batched within a small
// window to keep event counts proportional to communication rounds rather
// than to individual flows.
//
// Congestion is additionally summarized per link as a queue-pressure proxy:
// the integral of (offered demand - capacity)+ clamped to a per-port buffer,
// where a flow's offered demand is its fair share at its access link. RoCE
// PFC dynamics are not packet-simulated; the proxy preserves the relative
// queue buildups the paper's Figures 14 and 15c compare (see DESIGN.md).
package netsim

import (
	"fmt"

	"hpn/internal/hashing"
	"hpn/internal/inband"
	"hpn/internal/prof"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Flow is one fluid stream between two NIC endpoints.
type Flow struct {
	ID    int64
	Src   route.Endpoint
	Dst   route.Endpoint
	Tuple hashing.FiveTuple

	// Bits is the total flow size; Remaining counts down to completion.
	Bits      float64
	Remaining float64

	// Rate is the current max-min allocation in bits/second (0 if stalled).
	Rate float64

	// Path is the current forwarding path (directed links).
	Path []topo.LinkID
	// Port is the source NIC port in use (the plane, under dual-plane).
	Port int

	// PinnedPort >= 0 requests a specific source port (RDMA connections
	// with pre-established disjoint paths pin their plane); -1 lets the
	// bond choose.
	PinnedPort int

	// Stalled marks a flow blackholed by a failure, awaiting reconvergence.
	Stalled bool

	// OnComplete, if set, runs when the flow finishes. It may start new
	// flows.
	OnComplete func(now sim.Time, f *Flow)
	// After, if set, runs after OnComplete. The second slot lets a wrapper
	// layer (rdma connections doing WQE accounting) install one persistent
	// OnComplete per connection and pass the caller's per-send callback
	// through unwrapped, instead of allocating a fresh closure per flow.
	After func(now sim.Time)

	StartedAt sim.Time
	DoneAt    sim.Time

	index int // position in Sim.active; -1 once finished

	// ib holds the in-band telemetry state, allocated only under
	// Sim.EnableInband so the disabled case costs Flow a single nil
	// pointer.
	ib *flowInband
}

// flowInband is one flow's in-band path-telemetry state: the hash
// decisions behind the current path, per-hop bandwidth and queue-residency
// accumulators parallel to Path, and the generation bookkeeping (epoch
// counts reroutes, since stamps the generation's start).
type flowInband struct {
	hops    []route.HopDecision
	hopBits []float64
	hopQBS  []float64
	since   sim.Time
	epoch   int
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.index < 0 && !f.Stalled }

// Sim couples an engine, a topology and a router into a running network.
type Sim struct {
	Eng *sim.Engine
	Top *topo.Topology
	R   *route.Router

	// BatchWindow merges completions that fall within this span of the
	// earliest one; it trades a bounded (sub-window) error in individual
	// flow completion times for far fewer rate recomputations.
	BatchWindow sim.Time

	// PortBufferBytes caps the per-port queue proxy (switch buffer share).
	PortBufferBytes float64

	active []*Flow
	nextID int64
	sport  uint16

	// sharding/shard, when set (RestrictShard), scope this simulator to one
	// pod shard of a partitioned fabric: admission, state fingerprints and
	// therefore allocator components never leave the shard's link set.
	sharding *topo.Sharding
	shard    int

	lastAdvance  sim.Time
	completionEv *sim.Event
	mutating     int

	// probeByLink indexes probes by link for hot-path lookup (nil = not
	// probed); probeList holds the same probes in registration order. All
	// iteration goes through probeList so probe series and artifacts never
	// depend on Go map iteration order (hpnlint:maporder).
	probeByLink []*LinkProbe
	probeList   []*LinkProbe

	// ParallelFill caps the goroutines used to fill independent contention
	// components during a rate recomputation: 0 (the default) defers to
	// GOMAXPROCS, 1 forces serial filling. Component fills are
	// schedule-independent, so the allocation — and every derived artifact
	// — is byte-identical at any setting; see alloc.go.
	ParallelFill int
	// ParallelFillMinFlows is the runnable-flow count below which filling
	// stays serial regardless of ParallelFill (0 = a built-in default).
	ParallelFillMinFlows int

	// scratch arrays for the allocator, epoch-stamped to avoid O(links)
	// clearing on every recompute; see alloc.go for the roles of the
	// per-link incidence, union-find and component scratch.
	capRem   []float64
	nShare   []int32
	demand   []float64
	epoch    []uint32
	curEpoch uint32
	touched  []topo.LinkID
	inc      [][]int32
	ufParent []int32
	compOf   []int32
	unfrozen []*Flow
	frozen   []bool
	comps    []allocComp
	heaps    []linkHeap
	done     []*Flow // completionEvent harvest scratch

	rerouteScheduled bool

	// obs receives streaming fabric events (nil = disabled; see
	// observer.go). obsHops is routing scratch for FlowRouted when in-band
	// telemetry is off.
	obs     Observer
	obsHops []route.HopDecision

	flowLog    []FlowRecord
	flowLogCap int

	// In-band path telemetry (nil = disabled; see EnableInband). The ib*
	// arrays mirror the allocator scratch: per-link offered demand,
	// capacity, queue proxy, per-step queue integral, and the live-link
	// worklist with its membership mask.
	inband    *inband.Collector
	ibDemand  []float64
	ibCap     []float64
	ibQueue   []float64
	ibQStep   []float64
	ibLive    []topo.LinkID
	ibLiveSet []bool

	// Telemetry surfaces; nil (the default) disables each with one nil
	// check on the hot paths. See AttachTelemetry.
	Trace         *telemetry.Tracer
	Reg           *telemetry.Registry
	MetricsPrefix string
	ctrFlows      *telemetry.Counter
	ctrRecomputes *telemetry.Counter
	ctrReroutes   *telemetry.Counter
	ctrLinkEvents *telemetry.Counter
	histFCT       *telemetry.Histogram

	// Engine self-observability (nil = disabled; see AttachProfiler). Prof
	// and Flight are exported so memo and health reach the shared instances
	// through the Sim they already hold. Flight.Note sites follow the
	// tracenil/obsnil guard discipline: arguments are built at the call
	// site, so the site sits behind `if s.Flight != nil`.
	Prof        *prof.Profiler
	Flight      *prof.Flight
	phRecompute *prof.Phase
	phDecompose *prof.Phase
	phFill      *prof.Phase
	phMergeWait *prof.Phase
	phHeapOps   *prof.Phase

	// Stats
	CompletedFlows int64
	CompletedBits  float64
	// AggBits / CoreBits count completed-flow bits whose path transited an
	// Aggregation / Core switch — the cross-segment and cross-pod traffic
	// the paper measures on Aggregation switches (Figure 15b).
	AggBits  float64
	CoreBits float64
}

// New returns a simulator over the given topology. The router is created
// internally with default convergence delay; adjust via s.R.
func New(eng *sim.Engine, top *topo.Topology) *Sim {
	s := &Sim{
		Eng:             eng,
		Top:             top,
		R:               route.New(top),
		BatchWindow:     10 * sim.Microsecond,
		PortBufferBytes: 8 << 20,
		sport:           49152,
		probeByLink:     make([]*LinkProbe, len(top.Links)),
		capRem:          make([]float64, len(top.Links)),
		nShare:          make([]int32, len(top.Links)),
		demand:          make([]float64, len(top.Links)),
		epoch:           make([]uint32, len(top.Links)),
		inc:             make([][]int32, len(top.Links)),
		ufParent:        make([]int32, len(top.Links)),
		compOf:          make([]int32, len(top.Links)),
	}
	return s
}

// RestrictShard scopes the simulator to one shard of a partitioned fabric:
// only flows between hosts of that shard are admitted, and the memo state
// fingerprint covers only the shard's own links — so another shard's link
// transitions neither invalidate this shard's cached windows nor race with
// its fingerprint reads while windows execute in parallel. Contention is
// then structurally shard-local: every allocator component this Sim can
// form lives entirely inside the shard's link set, which is exactly the
// "recompute scoped to non-spanning components" guarantee; anything that
// would span shards must instead be escalated to an unrestricted Sim on
// the global domain, whose recompute covers all links. Must be called
// before any flow starts.
func (s *Sim) RestrictShard(sh *topo.Sharding, shard int) {
	if shard < 1 || shard > sh.N {
		panic(fmt.Sprintf("netsim: shard %d outside 1..%d", shard, sh.N))
	}
	if len(s.active) > 0 || s.CompletedFlows > 0 {
		panic("netsim: RestrictShard after flows started")
	}
	s.sharding = sh
	s.shard = shard
}

// SetFlowIDBase offsets the flow-ID counter so each shard's simulator
// mints IDs from a disjoint range (shard-scoped artifacts stay globally
// unambiguous). Must be called before any flow starts.
func (s *Sim) SetFlowIDBase(base int64) {
	if s.nextID != 0 {
		panic("netsim: SetFlowIDBase after flows started")
	}
	s.nextID = base
}

// FlowOpts customizes StartFlow.
type FlowOpts struct {
	// SrcPort pins the source NIC port (plane); -1 lets the bond hash pick.
	SrcPort int
	// Sport sets the transport source port of the 5-tuple; 0 auto-assigns.
	// Path selection (Appendix B) sweeps this to steer ECMP.
	Sport uint16
	// OnComplete runs when the flow finishes.
	OnComplete func(now sim.Time, f *Flow)
	// After runs after OnComplete; see Flow.After.
	After func(now sim.Time)
}

// StartFlow injects a new flow of the given size (bytes) and returns it.
// The flow may start stalled if the fabric currently blackholes it.
func (s *Sim) StartFlow(src, dst route.Endpoint, bytes float64, opt FlowOpts) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("netsim: non-positive flow size %v", bytes)
	}
	if s.sharding != nil {
		// Shard-scoped admission: a flow with an endpoint outside the shard
		// would route over links another shard (or the global domain) owns.
		// Valley-free routing never exits the pod for intra-pod pairs, so
		// checking endpoints is exact.
		if got := s.sharding.ShardOfHost(s.Top, src.Host); got != s.shard {
			return nil, fmt.Errorf("netsim: src host %d is in shard %d, not this simulator's shard %d; cross-shard flows must run on the global domain", src.Host, got, s.shard)
		}
		if got := s.sharding.ShardOfHost(s.Top, dst.Host); got != s.shard {
			return nil, fmt.Errorf("netsim: dst host %d is in shard %d, not this simulator's shard %d; cross-shard flows must run on the global domain", dst.Host, got, s.shard)
		}
	}
	s.beginMutate()
	defer s.endMutate()

	sport := opt.Sport
	if sport == 0 {
		s.sport++
		if s.sport < 49152 {
			s.sport = 49152
		}
		sport = s.sport
	}
	tuple := hashing.FiveTuple{
		SrcAddr: src.Addr(), DstAddr: dst.Addr(),
		SrcPort: sport, DstPort: 4791, Proto: 17,
	}
	f := &Flow{
		ID: s.nextID, Src: src, Dst: dst, Tuple: tuple,
		Bits: bytes * 8, Remaining: bytes * 8,
		PinnedPort: -1, OnComplete: opt.OnComplete, After: opt.After,
		StartedAt: s.Eng.Now(), index: -1,
	}
	s.nextID++
	if opt.SrcPort >= 0 {
		f.PinnedPort = opt.SrcPort
	}
	if err := s.routeFlow(f); err != nil {
		return nil, err
	}
	if s.sharding != nil {
		// Invariant, not admission (that was the endpoint check above): an
		// in-scope pair routed over an out-of-scope link means the routing
		// layer violated the pod boundary — escalate loudly.
		for _, l := range f.Path {
			if s.sharding.ShardOfLink(l) != s.shard {
				panic(fmt.Sprintf("netsim: shard %d flow %d routed over link %d owned by domain %d",
					s.shard, f.ID, l, s.sharding.ShardOfLink(l)))
			}
		}
	}
	f.index = len(s.active)
	s.active = append(s.active, f)
	if s.Trace != nil {
		// Guarded here, not just inside instant: building the Arg list
		// boxes three values per started flow, a measurable cost on the
		// tracing-off hot path.
		s.instant("flow_start",
			telemetry.Arg{K: "id", V: f.ID},
			telemetry.Arg{K: "bytes", V: bytes},
			telemetry.Arg{K: "stalled", V: f.Stalled})
	}
	if f.Stalled {
		s.scheduleReroute(s.R.ConvergenceDelay)
	}
	return f, nil
}

// routeFlow (re)computes a flow's port and path from current fabric state.
// On blackhole or no-port it marks the flow stalled with the best-known
// path (possibly nil). Under in-band telemetry the previous path
// generation is flushed first and the new walk records its hash decisions.
func (s *Sim) routeFlow(f *Flow) error {
	now := s.Eng.Now()
	s.inbandFlush(f)
	tryPort := func(port int) bool {
		var path []topo.LinkID
		var blackholed bool
		var err error
		switch {
		case s.inband != nil:
			ib := f.inbandState()
			ib.hops = ib.hops[:0]
			path, blackholed, err = s.R.PathObserved(f.Src, f.Dst, port, f.Tuple, now,
				func(d route.HopDecision) { ib.hops = append(ib.hops, d) })
		case s.obs != nil:
			// No in-band state to piggyback on: collect the hash decisions
			// into Sim scratch for the FlowRouted emission alone.
			s.obsHops = s.obsHops[:0]
			path, blackholed, err = s.R.PathObserved(f.Src, f.Dst, port, f.Tuple, now,
				func(d route.HopDecision) { s.obsHops = append(s.obsHops, d) })
		default:
			path, blackholed, err = s.R.Path(f.Src, f.Dst, port, f.Tuple, now)
		}
		f.Port = port
		f.Path = path
		f.Stalled = blackholed || err != nil
		if f.Stalled {
			f.Rate = 0
		}
		return !f.Stalled
	}
	// A pinned port is honored while it works end-to-end; failover falls
	// back to the bond choice (the ports share QP context, so this is
	// transparent to the application, §4).
	if p := f.PinnedPort; p >= 0 &&
		s.Top.LinkUsable(s.Top.AccessLink(f.Src.Host, f.Src.NIC, p)) && tryPort(p) {
		s.inbandOpen(f)
		s.observeRouted(f)
		return nil
	}
	p, err := s.R.PickAccessPort(f.Src, f.Dst, f.Tuple, now)
	if err != nil {
		f.Stalled = true
		f.Path = nil
		f.Rate = 0
		if f.ib != nil {
			f.ib.hops = f.ib.hops[:0]
		}
		s.obsHops = s.obsHops[:0]
		s.inbandOpen(f)
		s.observeRouted(f)
		return nil // flow exists but cannot move; not a caller error
	}
	tryPort(p)
	s.inbandOpen(f)
	s.observeRouted(f)
	return nil
}

// Batch runs fn as a single mutation: every StartFlow/AbortFlow (and any
// nested mutation) inside shares one rate recomputation when fn returns,
// instead of recomputing per call. Since all the calls land at the same
// virtual instant, the resulting allocation — and every completion that
// follows — is identical to the unbatched sequence; only the O(flows x
// hops) recomputation work per call is saved. Collective rounds, which
// start hundreds of flows at one instant, are the intended callers. Flows
// started inside a batch carry Rate 0 until the batch ends.
func (s *Sim) Batch(fn func()) {
	s.beginMutate()
	defer s.endMutate()
	fn()
}

// beginMutate/endMutate bracket state changes: time is advanced first so
// in-flight transfers are accounted at old rates; rates are recomputed once
// after the outermost mutation completes.
func (s *Sim) beginMutate() {
	if s.mutating == 0 {
		s.advance()
	}
	s.mutating++
}

func (s *Sim) endMutate() {
	s.mutating--
	if s.mutating == 0 {
		s.recompute()
	}
}

// advance integrates flow progress and probe accumulators up to now.
func (s *Sim) advance() {
	now := s.Eng.Now()
	dt := (now - s.lastAdvance).Seconds()
	if dt > 0 {
		for _, f := range s.active {
			if f.Rate > 0 {
				f.Remaining -= f.Rate * dt
				if f.Remaining < 0 {
					f.Remaining = 0
				}
			}
		}
		for _, p := range s.probeList {
			p.integrate(s.lastAdvance.Seconds(), dt, s.PortBufferBytes)
		}
		if s.inband != nil {
			s.inbandIntegrate(dt)
		}
	}
	s.lastAdvance = now
}

// completionEvent fires at the earliest projected completion; it harvests
// every flow within BatchWindow of completion.
func (s *Sim) completionEvent() {
	s.beginMutate()
	now := s.Eng.Now()
	window := s.BatchWindow.Seconds()
	// The harvest list is Sim scratch, reused across events: completion
	// batches fire on every communication round, and the per-event
	// allocation showed up in the bench snapshots.
	done := s.done[:0]
	for i := 0; i < len(s.active); {
		f := s.active[i]
		if f.Rate > 0 && (f.Remaining <= 0 || f.Remaining/f.Rate <= window) {
			f.Remaining = 0
			f.DoneAt = now
			s.removeActive(f)
			done = append(done, f)
			continue // removeActive swapped a new flow into i
		}
		i++
	}
	var slowest sim.Time
	for _, f := range done {
		s.CompletedFlows++
		s.CompletedBits += f.Bits
		s.countTiers(f)
		s.logFlow(f)
		s.inbandFlush(f)
		s.ctrFlows.Inc()
		s.histFCT.Observe((f.DoneAt - f.StartedAt).Seconds())
		if s.Trace != nil {
			s.Trace.Complete(int64(f.StartedAt), int64(f.DoneAt-f.StartedAt),
				"netsim", "flow", telemetry.TidNetsim,
				telemetry.Arg{K: "id", V: f.ID},
				telemetry.Arg{K: "src", V: fmt.Sprintf("%d:%d", f.Src.Host, f.Src.NIC)},
				telemetry.Arg{K: "dst", V: fmt.Sprintf("%d:%d", f.Dst.Host, f.Dst.NIC)},
				telemetry.Arg{K: "bytes", V: f.Bits / 8},
				telemetry.Arg{K: "port", V: f.Port},
				telemetry.Arg{K: "hops", V: len(f.Path)})
		}
		if s.obs != nil {
			s.obs.FlowDone(now, f)
		}
		if s.Flight != nil {
			if d := f.DoneAt - f.StartedAt; d > slowest {
				slowest = d
			}
		}
		if f.OnComplete != nil {
			f.OnComplete(now, f)
		}
		if f.After != nil {
			f.After(now)
		}
	}
	if s.Flight != nil && len(done) > 0 {
		// One note per harvest batch, not per flow: completions arrive at
		// millions per second, so a per-flow note would both tax the hot
		// path (~7% wall on fig13 quick, measured) and scroll the bounded
		// ring so fast that a marked window held sub-millisecond context.
		// Batch size and the slowest completion are the incident-relevant
		// signals; per-flow truth lives in the flow log.
		s.Flight.Note(int64(now), "flows_done", "", int64(len(done)), int64(slowest))
	}
	// Drop the harvested references before the next event so completed
	// flows do not outlive their callbacks through the scratch slice.
	for i := range done {
		done[i] = nil
	}
	s.done = done[:0]
	s.endMutate()
}

func (s *Sim) removeActive(f *Flow) {
	i := f.index
	last := len(s.active) - 1
	s.active[i] = s.active[last]
	s.active[i].index = i
	s.active = s.active[:last]
	f.index = -1
}

// AbortFlow removes an in-flight flow without completing it (no callback
// fires). Aborting a finished flow is a no-op.
func (s *Sim) AbortFlow(f *Flow) {
	if f == nil || f.index < 0 {
		return
	}
	s.beginMutate()
	defer s.endMutate()
	s.removeActive(f)
	s.inbandFlush(f)
	f.Stalled = false
	f.Rate = 0
}

// countTiers attributes a completed flow's bits to the highest tier its
// path visited.
func (s *Sim) countTiers(f *Flow) {
	agg, core := false, false
	for _, lk := range f.Path {
		switch s.Top.Node(s.Top.Link(lk).To).Kind {
		case topo.KindAgg:
			agg = true
		case topo.KindCore:
			core = true
		}
	}
	if agg {
		s.AggBits += f.Bits
	}
	if core {
		s.CoreBits += f.Bits
	}
}

// ActiveFlows returns the number of in-flight flows (including stalled).
func (s *Sim) ActiveFlows() int { return len(s.active) }

// StalledFlows returns the number of currently blackholed flows.
func (s *Sim) StalledFlows() int {
	n := 0
	for _, f := range s.active {
		if f.Stalled {
			n++
		}
	}
	return n
}

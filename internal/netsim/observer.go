package netsim

import (
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// Observer receives fabric events synchronously as the simulation runs.
// It is the streaming counterpart of the dumped artifacts (flow log,
// in-band records): an online consumer (the health monitor) sees every
// topology transition, reroute pass, routing decision and flow completion
// the instant it happens, without any post-run parsing.
//
// All callbacks run inside the simulator's event dispatch: they must not
// mutate the simulator and must be deterministic (no wall clock, no global
// randomness), or same-seed runs lose byte-identical artifacts. With no
// observer attached every emission point costs one nil check (the same
// contract as the Trace/Reg telemetry surfaces; enforced by the obsnil
// hpnlint rule).
type Observer interface {
	// LinkEvent fires on a cable transition (up=false on FailCable,
	// up=true on RecoverCable).
	LinkEvent(now sim.Time, l topo.LinkID, up bool)
	// NodeEvent fires on a switch transition (FailNode / RecoverNode).
	NodeEvent(now sim.Time, n topo.NodeID, up bool)
	// RerouteDone fires after each reroute pass with the number of flows
	// re-pathed and the number left stalled.
	RerouteDone(now sim.Time, repathed, stillStalled int)
	// FlowRouted fires after a flow is (re)routed. hops holds the hash
	// decisions behind the new path when available (always under in-band
	// telemetry; otherwise collected on demand for the observer); it is
	// only valid for the duration of the call — observers must not retain
	// the slice.
	FlowRouted(now sim.Time, f *Flow, hops []route.HopDecision)
	// FlowDone fires when a flow completes (not on abort).
	FlowDone(now sim.Time, f *Flow)
}

// SetObserver attaches (or, with nil, detaches) the fabric-event observer.
// At most one observer is supported; layering belongs in the observer.
func (s *Sim) SetObserver(o Observer) { s.obs = o }

// Observer returns the attached observer, or nil.
func (s *Sim) Observer() Observer { return s.obs }

// observeRouted emits FlowRouted after routeFlow settles a flow's path.
// Under in-band telemetry the flow's own hop state is authoritative;
// otherwise the Sim-level obsHops scratch (filled by routeFlow's
// PathObserved callback) carries the decisions.
func (s *Sim) observeRouted(f *Flow) {
	if s.obs == nil {
		return
	}
	hops := s.obsHops
	if s.inband != nil {
		hops = nil
		if f.ib != nil {
			hops = f.ib.hops
		}
	}
	s.obs.FlowRouted(s.Eng.Now(), f, hops)
}

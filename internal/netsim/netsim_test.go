package netsim

import (
	"math"
	"strings"
	"testing"

	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func newSim(t *testing.T, segments, hosts, aggs int) (*sim.Engine, *topo.Topology, *Sim) {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(segments, hosts, aggs))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	return eng, top, New(eng, top)
}

func TestSingleFlowFCT(t *testing.T) {
	eng, _, s := newSim(t, 2, 4, 4)
	var doneAt sim.Time
	_, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}, 1<<30, FlowOpts{
		SrcPort:    -1,
		OnComplete: func(now sim.Time, f *Flow) { doneAt = now },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 1 GiB over a 200Gbps access bottleneck: 8*2^30/200e9 s = ~42.9 ms.
	want := float64(8*(1<<30)) / 200e9
	if math.Abs(doneAt.Seconds()-want)/want > 0.001 {
		t.Fatalf("FCT = %v s, want %v s", doneAt.Seconds(), want)
	}
	if s.CompletedFlows != 1 {
		t.Fatalf("CompletedFlows = %d", s.CompletedFlows)
	}
}

func TestFairShareOnSharedAccess(t *testing.T) {
	eng, _, s := newSim(t, 2, 4, 4)
	src := route.Endpoint{Host: 0, NIC: 0}
	var f1, f2 *Flow
	f1, _ = s.StartFlow(src, route.Endpoint{Host: 4, NIC: 0}, 1<<30, FlowOpts{SrcPort: 0})
	f2, _ = s.StartFlow(src, route.Endpoint{Host: 5, NIC: 0}, 1<<30, FlowOpts{SrcPort: 0})
	// Both flows leave the same 200G NIC port: each must get 100G.
	if math.Abs(f1.Rate-100e9) > 1e6 || math.Abs(f2.Rate-100e9) > 1e6 {
		t.Fatalf("rates = %v, %v; want 100G each", f1.Rate, f2.Rate)
	}
	eng.Run()
}

func TestWorkConservationAndBottleneck(t *testing.T) {
	eng, top, s := newSim(t, 2, 8, 4)
	// Start a batch of random-ish flows, then verify the max-min
	// certificate: no link over capacity; every flow is bottlenecked (some
	// saturated link on its path where it has a maximal rate).
	for i := 0; i < 40; i++ {
		src := route.Endpoint{Host: i % 8, NIC: i % 8}
		dst := route.Endpoint{Host: 8 + (i+3)%8, NIC: i % 8}
		if _, err := s.StartFlow(src, dst, 1<<32, FlowOpts{SrcPort: -1}); err != nil {
			t.Fatal(err)
		}
	}
	used := map[topo.LinkID]float64{}
	maxOn := map[topo.LinkID]float64{}
	for _, f := range s.active {
		if f.Stalled {
			t.Fatal("unexpected stall on a healthy fabric")
		}
		if f.Rate <= 0 {
			t.Fatal("zero rate on a healthy fabric")
		}
		for _, lk := range f.Path {
			used[lk] += f.Rate
			if f.Rate > maxOn[lk] {
				maxOn[lk] = f.Rate
			}
		}
	}
	for lk, u := range used {
		cap := top.Link(lk).CapBps
		if u > cap*(1+1e-6) {
			t.Fatalf("link %d oversubscribed: %v > %v", lk, u, cap)
		}
	}
	for _, f := range s.active {
		bottlenecked := false
		for _, lk := range f.Path {
			cap := top.Link(lk).CapBps
			if used[lk] >= cap*(1-1e-6) && f.Rate >= maxOn[lk]*(1-1e-6) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d (rate %v) has no bottleneck: not max-min", f.ID, f.Rate)
		}
	}
	eng.Run()
	if s.ActiveFlows() != 0 {
		t.Fatalf("flows left active: %d", s.ActiveFlows())
	}
}

func TestCompletionChaining(t *testing.T) {
	eng, _, s := newSim(t, 1, 4, 4)
	rounds := 0
	var start func()
	start = func() {
		rounds++
		if rounds > 5 {
			return
		}
		_, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}, 1<<20, FlowOpts{
			SrcPort:    -1,
			OnComplete: func(now sim.Time, f *Flow) { start() },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	start()
	eng.Run()
	if rounds != 6 {
		t.Fatalf("rounds = %d, want 6", rounds)
	}
}

func TestAccessFailureFailover(t *testing.T) {
	eng, top, s := newSim(t, 2, 4, 4)
	src := route.Endpoint{Host: 0, NIC: 0}
	dst := route.Endpoint{Host: 4, NIC: 0}
	var done bool
	f, err := s.StartFlow(src, dst, 4<<30, FlowOpts{SrcPort: 0, OnComplete: func(now sim.Time, _ *Flow) { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the flow's first link shortly after start.
	eng.Schedule(10*sim.Millisecond, func() {
		s.FailCable(f.Path[0])
	})
	eng.Run()
	if !done {
		t.Fatal("flow never completed after failover")
	}
	if f.Port != 1 {
		t.Fatalf("flow still on port %d, want failover to 1", f.Port)
	}
	// It must have taken at least the convergence delay longer than the
	// unobstructed FCT (4GiB at 200G = ~172ms).
	base := float64(8*uint64(4<<30)) / 200e9
	if f.DoneAt.Seconds() < base {
		t.Fatalf("completed impossibly fast: %v", f.DoneAt)
	}
	_ = top
}

func TestSingleToRFailureHaltsUntilRepair(t *testing.T) {
	cfg := topo.SmallHPN(2, 4, 4)
	cfg.DualToR = false
	cfg.DualPlane = false
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	s := New(eng, top)
	src := route.Endpoint{Host: 0, NIC: 0}
	dst := route.Endpoint{Host: 4, NIC: 0}
	var doneAt sim.Time
	f, err := s.StartFlow(src, dst, 1<<30, FlowOpts{SrcPort: -1, OnComplete: func(now sim.Time, _ *Flow) { doneAt = now }})
	if err != nil {
		t.Fatal(err)
	}
	access := f.Path[0]
	eng.Schedule(5*sim.Millisecond, func() { s.FailCable(access) })
	// Without repair the flow must still be stalled after 10 virtual
	// seconds.
	eng.RunUntil(10 * sim.Second)
	if doneAt != 0 {
		t.Fatal("single-ToR flow completed with its only access link dead")
	}
	if s.StalledFlows() != 1 {
		t.Fatalf("stalled = %d, want 1", s.StalledFlows())
	}
	// Repair at t=10s: the flow finishes.
	s.RecoverCable(access)
	eng.Run()
	if doneAt == 0 {
		t.Fatal("flow did not resume after repair")
	}
	if doneAt < 10*sim.Second {
		t.Fatalf("doneAt = %v, expected after repair", doneAt)
	}
}

func TestToRCrashFailover(t *testing.T) {
	eng, top, s := newSim(t, 2, 4, 4)
	src := route.Endpoint{Host: 0, NIC: 3}
	dst := route.Endpoint{Host: 4, NIC: 3}
	done := false
	_, err := s.StartFlow(src, dst, 1<<30, FlowOpts{SrcPort: 0, OnComplete: func(sim.Time, *Flow) { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	tor := top.ToR(0, 0, 3, 0)
	eng.Schedule(sim.Millisecond, func() { s.FailNode(tor) })
	eng.Run()
	if !done {
		t.Fatal("flow stuck after ToR crash despite dual-ToR")
	}
}

func TestQueueProxyImbalance(t *testing.T) {
	eng, top, s := newSim(t, 2, 4, 4)
	// Two senders in segment 1 both target host0/NIC0 port0 in segment 0:
	// 400G of offered load into a single 200G ToR downlink.
	dst := route.Endpoint{Host: 0, NIC: 0}
	down := top.Link(top.AccessLink(0, 0, 0)).Reverse
	probe := s.TrackLink(down, "hot-port")
	for i := 0; i < 2; i++ {
		src := route.Endpoint{Host: 4 + i, NIC: 0}
		if _, err := s.StartFlow(src, dst, 8<<30, FlowOpts{SrcPort: 0}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if probe.Queue.Max() <= 0 {
		t.Fatal("overloaded port accumulated no queue pressure")
	}
	// A balanced single flow must not accumulate queue.
	eng2 := sim.New()
	s2 := New(eng2, top)
	probe2 := s2.TrackLink(down, "cool-port")
	if _, err := s2.StartFlow(route.Endpoint{Host: 4, NIC: 0}, dst, 8<<30, FlowOpts{SrcPort: 0}); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if probe2.Queue.Max() > 1 {
		t.Fatalf("balanced port shows queue %v", probe2.Queue.Max())
	}
}

func TestProbeUtilSeries(t *testing.T) {
	eng, top, s := newSim(t, 1, 2, 2)
	up := top.AccessLink(0, 0, 0)
	probe := s.TrackLink(up, "nic0")
	if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}, 1<<30, FlowOpts{SrcPort: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if probe.Util.Max() < 199e9 {
		t.Fatalf("probe util max = %v, want ~200G", probe.Util.Max())
	}
}

func TestStartFlowRejectsBadSize(t *testing.T) {
	_, _, s := newSim(t, 1, 2, 2)
	if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}, 0, FlowOpts{SrcPort: -1}); err == nil {
		t.Fatal("zero-size flow accepted")
	}
}

func TestManyFlowsDrainCompletely(t *testing.T) {
	eng, _, s := newSim(t, 2, 8, 8)
	n := 0
	for i := 0; i < 128; i++ {
		src := route.Endpoint{Host: i % 16, NIC: (i / 2) % 8}
		dst := route.Endpoint{Host: (i + 7) % 16, NIC: (i / 2) % 8}
		if src.Host == dst.Host {
			continue
		}
		n++
		if _, err := s.StartFlow(src, dst, float64(1+i%7)*(1<<24), FlowOpts{SrcPort: -1}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if int(s.CompletedFlows) != n {
		t.Fatalf("completed %d of %d flows", s.CompletedFlows, n)
	}
	if s.ActiveFlows() != 0 {
		t.Fatal("active flows remain after Run")
	}
}

func TestAbortFlow(t *testing.T) {
	eng, _, s := newSim(t, 1, 2, 2)
	called := false
	f, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}, 1<<30, FlowOpts{
		SrcPort:    -1,
		OnComplete: func(sim.Time, *Flow) { called = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AbortFlow(f)
	if s.ActiveFlows() != 0 {
		t.Fatal("aborted flow still active")
	}
	eng.Run()
	if called {
		t.Fatal("aborted flow fired its completion callback")
	}
	// Double-abort and nil-abort are no-ops.
	s.AbortFlow(f)
	s.AbortFlow(nil)
}

func TestTierBitsAccounting(t *testing.T) {
	eng, _, s := newSim(t, 2, 4, 4)
	// Same-rail, same-segment: ToR-local, no agg crossing.
	if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0}, 1<<20, FlowOpts{SrcPort: -1}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if s.AggBits != 0 {
		t.Fatalf("ToR-local flow counted %v agg bits", s.AggBits)
	}
	// Cross-segment: must cross an agg.
	if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}, 1<<20, FlowOpts{SrcPort: -1}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if s.AggBits != 8<<20 {
		t.Fatalf("agg bits = %v, want %v", s.AggBits, 8<<20)
	}
	if s.CoreBits != 0 {
		t.Fatal("single-pod flow counted core bits")
	}
}

func TestFlowLog(t *testing.T) {
	eng, _, s := newSim(t, 2, 4, 4)
	s.EnableFlowLog(0)
	for i := 0; i < 4; i++ {
		if _, err := s.StartFlow(route.Endpoint{Host: i, NIC: 0}, route.Endpoint{Host: 4 + i, NIC: 0}, 1<<20, FlowOpts{SrcPort: -1}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	log := s.FlowLog()
	if len(log) != 4 {
		t.Fatalf("records = %d, want 4", len(log))
	}
	for _, r := range log {
		if !r.CrossedAgg {
			t.Fatal("cross-segment flow not marked agg-crossing")
		}
		if r.Gbps() <= 0 || r.Duration() <= 0 {
			t.Fatalf("bad record %+v", r)
		}
	}
	var buf strings.Builder
	if err := s.WriteFlowLog(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("tsv lines = %d, want header+4", lines)
	}
}

func TestFlowLogCap(t *testing.T) {
	eng, _, s := newSim(t, 1, 4, 4)
	s.EnableFlowLog(2)
	for i := 0; i < 3; i++ {
		if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: i}, route.Endpoint{Host: 1, NIC: i}, 1<<20, FlowOpts{SrcPort: -1}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(s.FlowLog()) != 2 {
		t.Fatalf("cap not enforced: %d records", len(s.FlowLog()))
	}
}

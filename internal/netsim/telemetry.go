package netsim

import (
	"hpn/internal/prof"
	"hpn/internal/telemetry"
)

// AttachTelemetry wires the simulator into a tracer and metrics registry.
// The tracer receives flow spans, topology-transition instants and an
// active-flow counter track; the registry gains netsim counters, gauges
// over live simulator state, and a "flowlog.tsv" artifact exporter (when
// flow logging is enabled). prefix namespaces metric names so several
// clusters can share one registry. All arguments are optional: a nil
// tracer or registry disables that half.
func (s *Sim) AttachTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry, prefix string) {
	s.Trace = tr
	s.Reg = reg
	s.MetricsPrefix = prefix
	s.ctrFlows = reg.Counter(prefix+"netsim_flows_completed_total", "completed fluid flows")
	s.ctrRecomputes = reg.Counter(prefix+"netsim_recomputes_total", "max-min rate recomputations (allocation rounds)")
	s.ctrReroutes = reg.Counter(prefix+"netsim_reroute_passes_total", "post-convergence reroute passes")
	s.ctrLinkEvents = reg.Counter(prefix+"netsim_topology_events_total", "link/node up+down transitions")
	// 10us .. 1000s in decades: collective shards sit near the bottom,
	// stall-delayed elephants near the top.
	s.histFCT = reg.Histogram(prefix+"netsim_fct_seconds", "flow completion time distribution (s)",
		telemetry.LogBuckets(1e-5, 10, 8))
	reg.Gauge(prefix+"netsim_active_flows", "in-flight flows (including stalled)",
		func() float64 { return float64(s.ActiveFlows()) })
	reg.Gauge(prefix+"netsim_stalled_flows", "currently blackholed flows",
		func() float64 { return float64(s.StalledFlows()) })
	reg.Gauge(prefix+"netsim_completed_bits", "bits delivered by completed flows",
		func() float64 { return s.CompletedBits })
	reg.Gauge(prefix+"netsim_agg_bits", "completed-flow bits that transited an Aggregation switch",
		func() float64 { return s.AggBits })
	reg.Gauge(prefix+"netsim_core_bits", "completed-flow bits that transited a Core switch",
		func() float64 { return s.CoreBits })
	if s.flowLog != nil {
		s.registerFlowLogExporter()
	}
	if s.inband != nil {
		s.inband.AttachTracer(tr)
		s.registerInbandExporters()
	}
}

// AttachProfiler wires the allocator's phases into the engine profiler and
// installs the flight recorder fed by the fabric-event emission sites.
// Phase names are cluster-independent on purpose: several clusters
// attached to one hub accumulate into the same phases, giving the process
// view hpnprof reports (per-cluster attribution would need per-cluster
// profiles, which nothing yet consumes). Pass nils to disable either half.
func (s *Sim) AttachProfiler(p *prof.Profiler, fl *prof.Flight) {
	s.Prof = p
	s.Flight = fl
	s.phRecompute = p.Phase("netsim/recompute", "max-min allocation rounds, end to end")
	s.phDecompose = p.Phase("netsim/decompose", "union-find component decomposition within recompute")
	s.phFill = p.Phase("netsim/fill", "progressive-filling section (serial or parallel)")
	s.phMergeWait = p.Phase("netsim/merge_wait", "parallel fill: time the coordinator spent joining workers")
	s.phHeapOps = p.Phase("netsim/heap_ops", "link-heap pops and stale re-keys during fills (count-only)")
}

// registerFlowLogExporter exposes the completed-flow TSV as a named
// telemetry artifact, so runners dump it alongside traces and metrics.
func (s *Sim) registerFlowLogExporter() {
	if s.Reg == nil || s.flowLog == nil {
		return
	}
	s.Reg.RegisterExporter(s.MetricsPrefix+"flowlog.tsv", s.WriteFlowLog)
}

// SyncTime integrates in-flight transfers and probe accumulators up to the
// engine's current instant without changing rates. Samplers call it before
// reading utilization/queue gauges so values are current as of the tick.
// It is a no-op while a mutation is already in progress.
func (s *Sim) SyncTime() {
	if s.mutating > 0 {
		return
	}
	s.advance()
}

// UtilBps returns the probe's currently allocated throughput (bits/second).
func (p *LinkProbe) UtilBps() float64 { return p.util }

// instant emits a topology-transition instant event, if tracing is on.
func (s *Sim) instant(name string, args ...telemetry.Arg) {
	if s.Trace == nil {
		return
	}
	s.Trace.Instant(int64(s.Eng.Now()), "netsim", name, telemetry.TidNetsim, args...)
}

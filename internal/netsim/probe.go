package netsim

import (
	"hpn/internal/metrics"
	"hpn/internal/topo"
)

// LinkProbe records a link's utilization and queue-pressure time series.
// Samples are appended per allocation interval (piecewise-constant rates),
// so the series is exact under the fluid model.
type LinkProbe struct {
	Link topo.LinkID
	Name string

	// Util is the allocated throughput (bits/second) over time.
	Util metrics.Series
	// Queue is the queue-pressure proxy (bytes) over time.
	Queue metrics.Series

	// Accumulators refreshed on each rate recomputation.
	util   float64 // allocated bps
	demand float64 // offered bps
	cap    float64

	queueBytes float64
}

// integrate advances the probe across an interval of constant allocation.
// The queue proxy grows while offered demand exceeds capacity and drains at
// the spare capacity otherwise, clamped to [0, buffer].
func (p *LinkProbe) integrate(t0, dt float64, buffer float64) {
	excess := p.demand - p.cap
	p.queueBytes += excess / 8 * dt
	if p.queueBytes < 0 {
		p.queueBytes = 0
	}
	if p.queueBytes > buffer {
		p.queueBytes = buffer
	}
	p.Util.Add(t0+dt/2, p.util)
	p.Queue.Add(t0+dt, p.queueBytes)
}

// QueueBytes returns the current queue-pressure value.
func (p *LinkProbe) QueueBytes() float64 { return p.queueBytes }

// TrackLink attaches (or returns the existing) probe for a link.
func (s *Sim) TrackLink(l topo.LinkID, name string) *LinkProbe {
	if p := s.probeByLink[l]; p != nil {
		return p
	}
	p := &LinkProbe{Link: l, Name: name}
	p.Util.Name = name + "/util"
	p.Queue.Name = name + "/queue"
	s.probeByLink[l] = p
	s.probeList = append(s.probeList, p)
	return p
}

// Probes returns all registered probes in registration order.
func (s *Sim) Probes() []*LinkProbe {
	return append([]*LinkProbe(nil), s.probeList...)
}

package netsim

import (
	"math"

	"hpn/internal/sim"
	"hpn/internal/topo"
)

// This file is netsim's side of iteration memoization (internal/memo): the
// state fingerprint a recorder keys cached windows on, and the mutators it
// uses to apply a recorded window's effects without re-simulating it. The
// recorder shifts flow IDs and timestamps itself; everything here either
// exposes private state read-only or appends/overwrites it with the same
// cap discipline as the live paths.

// StateHash64 folds the simulator state that must match for a recorded
// window to replay correctly into an FNV-1a style 64-bit hash: per-link
// usability, the transport-sport cursor, the active-flow multiset (in
// deterministic insertion order), the in-band residual queue state, and
// the gap back to the last fluid integration. Anything that drifts run to
// run (flow IDs, completed counts) is deliberately excluded — drift there
// is reproduced by the replay shift, not matched by the fingerprint.
func (s *Sim) StateHash64() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	if s.sharding != nil {
		// Shard-scoped fingerprint: only this shard's links. Reading other
		// shards' usability here would both race with their concurrent
		// windows and invalidate this shard's cached windows on transitions
		// that cannot affect its flows.
		for _, l := range s.sharding.ShardLinks[s.shard-1] {
			b := uint64(0)
			if s.Top.LinkUsable(l) {
				b = 1
			}
			mix(uint64(l)<<1 | b)
		}
	} else {
		for i := range s.Top.Links {
			b := uint64(0)
			if s.Top.LinkUsable(topo.LinkID(i)) {
				b = 1
			}
			mix(uint64(i)<<1 | b)
		}
	}
	mix(uint64(s.sport))
	mix(uint64(s.Eng.Now() - s.lastAdvance))
	mix(uint64(len(s.active)))
	for _, f := range s.active {
		mix(f.Tuple.Word())
		mix(math.Float64bits(f.Bits))
		mix(math.Float64bits(f.Remaining))
		b := uint64(0)
		if f.Stalled {
			b = 1
		}
		mix(uint64(f.Port)<<1 | b)
	}
	if s.inband != nil {
		mix(uint64(len(s.ibLive)))
		for _, lk := range s.ibLive {
			mix(uint64(lk))
			mix(math.Float64bits(s.ibQueue[lk]))
			mix(math.Float64bits(s.ibDemand[lk]))
			mix(math.Float64bits(s.ibCap[lk]))
		}
	}
	return h
}

// NextFlowID returns the ID the next started flow would get.
func (s *Sim) NextFlowID() int64 { return s.nextID }

// AdvanceFlowIDs skips n flow IDs, as if n flows had been started. The
// memo replay path calls this after appending shifted flow records so live
// flows started after a replayed window get the same IDs a re-simulated
// run would assign.
func (s *Sim) AdvanceFlowIDs(n int64) { s.nextID += n }

// SportCursor returns the auto-assign transport source-port cursor. A
// recorded window is only replayable if the cursor did not move while it
// was recorded (auto-assigned sports are not periodic).
func (s *Sim) SportCursor() uint16 { return s.sport }

// LastAdvance returns the virtual time of the last fluid integration.
func (s *Sim) LastAdvance() sim.Time { return s.lastAdvance }

// RestoreLastAdvance rewinds the integration cursor to t (<= now). Only
// the memo replay path calls this, to re-create the partial-interval state
// a re-simulated window would have left behind.
func (s *Sim) RestoreLastAdvance(t sim.Time) { s.lastAdvance = t }

// FlowLogSize returns the number of retained flow-log records.
func (s *Sim) FlowLogSize() int { return len(s.flowLog) }

// FlowLogRange copies the retained records in [from, to).
func (s *Sim) FlowLogRange(from, to int) []FlowRecord {
	return append([]FlowRecord(nil), s.flowLog[from:to]...)
}

// AppendReplayedFlows appends pre-shifted completion records, honoring the
// same cap as live logging. No-op while flow logging is off.
func (s *Sim) AppendReplayedFlows(recs []FlowRecord) {
	if s.flowLog == nil {
		return
	}
	for _, r := range recs {
		if s.flowLogCap > 0 && len(s.flowLog) >= s.flowLogCap {
			return
		}
		s.flowLog = append(s.flowLog, r)
	}
}

// AddReplayedStats credits a recorded window's completed-flow tallies.
func (s *Sim) AddReplayedStats(flows int64, bits, aggBits, coreBits float64) {
	s.CompletedFlows += flows
	s.CompletedBits += bits
	s.AggBits += aggBits
	s.CoreBits += coreBits
}

// InbandResidual is the drain state of the in-band queue model at a window
// boundary: the live-link worklist and its per-link queue, demand and
// capacity snapshots. Links is sorted by worklist order (deterministic).
type InbandResidual struct {
	Links  []topo.LinkID
	Queue  []float64
	QStep  []float64
	Demand []float64
	Cap    []float64
}

// CaptureInbandResidual snapshots the current in-band drain state (nil
// while in-band telemetry is off).
func (s *Sim) CaptureInbandResidual() *InbandResidual {
	if s.inband == nil {
		return nil
	}
	r := &InbandResidual{
		Links:  append([]topo.LinkID(nil), s.ibLive...),
		Queue:  make([]float64, len(s.ibLive)),
		QStep:  make([]float64, len(s.ibLive)),
		Demand: make([]float64, len(s.ibLive)),
		Cap:    make([]float64, len(s.ibLive)),
	}
	for i, lk := range s.ibLive {
		r.Queue[i] = s.ibQueue[lk]
		r.QStep[i] = s.ibQStep[lk]
		r.Demand[i] = s.ibDemand[lk]
		r.Cap[i] = s.ibCap[lk]
	}
	return r
}

// RestoreInbandResidual overwrites the in-band drain state with a captured
// snapshot: the replay path installs the recorded window's exit state so
// the next live integration starts exactly where a re-simulated run would.
func (s *Sim) RestoreInbandResidual(r *InbandResidual) {
	if s.inband == nil {
		return
	}
	for _, lk := range s.ibLive {
		s.ibLiveSet[lk] = false
		s.ibQueue[lk] = 0
		s.ibQStep[lk] = 0
		s.ibDemand[lk] = 0
		s.ibCap[lk] = 0
	}
	s.ibLive = s.ibLive[:0]
	if r == nil {
		return
	}
	for i, lk := range r.Links {
		s.ibLive = append(s.ibLive, lk)
		s.ibLiveSet[lk] = true
		s.ibQueue[lk] = r.Queue[i]
		s.ibQStep[lk] = r.QStep[i]
		s.ibDemand[lk] = r.Demand[i]
		s.ibCap[lk] = r.Cap[i]
	}
}

package netsim

import (
	"hpn/internal/inband"
	"hpn/internal/topo"
)

// EnableInband starts in-band path telemetry: every flow's path is walked
// with hash-decision observation, per-hop bandwidth and queue-residency
// accumulators are integrated alongside the fluid model, and each path
// generation (initial route, then one per reroute) is flushed into the
// returned collector on reroute, completion or abort. max bounds the
// retained record count (0 = unbounded). Call before injecting traffic;
// flows routed earlier carry no hop state and are not recorded. If
// telemetry is attached the collector is also exposed as the "inband.tsv"
// and "inband.json" artifact exporters. Idempotent: repeated calls return
// the same collector.
func (s *Sim) EnableInband(max int) *inband.Collector {
	if s.inband != nil {
		return s.inband
	}
	s.inband = inband.NewCollector(s.Top, max)
	s.inband.AttachTracer(s.Trace)
	s.ibDemand = make([]float64, len(s.Top.Links))
	s.ibCap = make([]float64, len(s.Top.Links))
	s.ibQueue = make([]float64, len(s.Top.Links))
	s.ibQStep = make([]float64, len(s.Top.Links))
	s.ibLiveSet = make([]bool, len(s.Top.Links))
	s.registerInbandExporters()
	return s.inband
}

// Inband returns the collector, or nil while in-band telemetry is off.
func (s *Sim) Inband() *inband.Collector { return s.inband }

// registerInbandExporters exposes the per-hop artifacts through the
// telemetry registry, next to the flow log.
func (s *Sim) registerInbandExporters() {
	if s.Reg == nil || s.inband == nil {
		return
	}
	s.Reg.RegisterExporter(s.MetricsPrefix+"inband.tsv", s.inband.WriteTSV)
	s.Reg.RegisterExporter(s.MetricsPrefix+"inband.json", s.inband.WriteJSON)
	// Surface collector truncation: a capped collector silently under-reports
	// otherwise, and hpnview reads the dump as complete coverage.
	s.Reg.Gauge(s.MetricsPrefix+"netsim_inband_dropped_records",
		"in-band per-hop records discarded past the collector cap",
		func() float64 { return float64(s.inband.Dropped()) })
}

// inbandState returns the flow's lazily-allocated in-band state. Only
// called on paths already gated on s.inband != nil.
func (f *Flow) inbandState() *flowInband {
	if f.ib == nil {
		f.ib = &flowInband{}
	}
	return f.ib
}

// inbandFlush closes the flow's current path generation: accumulated
// per-hop attribution is emitted as records and the generation counter
// advances. No-op when in-band telemetry is off or the flow has no hops
// (e.g. it never obtained a path).
func (s *Sim) inbandFlush(f *Flow) {
	if s.inband == nil || f.ib == nil || len(f.ib.hops) == 0 {
		return
	}
	ib := f.ib
	s.inband.FlushFlow(f.ID, ib.epoch, f.Tuple.Word(), int64(ib.since), int64(s.Eng.Now()),
		ib.hops, ib.hopBits, ib.hopQBS)
	ib.epoch++
	ib.hops = ib.hops[:0]
	ib.hopBits = ib.hopBits[:0]
	ib.hopQBS = ib.hopQBS[:0]
}

// inbandOpen starts a new path generation for a freshly (re)routed flow:
// hop accumulators are sized to the new path and zeroed. ib.hops was
// filled by the PathObserved callback during routing.
func (s *Sim) inbandOpen(f *Flow) {
	if s.inband == nil {
		return
	}
	ib := f.inbandState()
	ib.since = s.Eng.Now()
	ib.hopBits = append(ib.hopBits[:0], make([]float64, len(f.Path))...)
	ib.hopQBS = append(ib.hopQBS[:0], make([]float64, len(f.Path))...)
}

// inbandRefresh snapshots the allocator's per-link offered demand and
// capacity for queue integration, and maintains the live-link worklist
// (links carrying active flows, plus links still draining queue). Called
// from recompute after the allocation settles.
func (s *Sim) inbandRefresh() {
	for _, lk := range s.touched {
		if !s.ibLiveSet[lk] {
			s.ibLiveSet[lk] = true
			s.ibLive = append(s.ibLive, lk)
		}
	}
	kept := s.ibLive[:0]
	for _, lk := range s.ibLive {
		if s.epoch[lk] == s.curEpoch {
			s.ibDemand[lk] = s.demand[lk]
			s.ibCap[lk] = s.Top.Link(lk).CapBps
			if !s.Top.LinkUsable(lk) {
				s.ibCap[lk] = 0
			}
		} else {
			// No active flow touches the link anymore: it only drains.
			s.ibDemand[lk] = 0
			s.ibCap[lk] = s.Top.Link(lk).CapBps
			if s.ibQueue[lk] <= 0 {
				s.ibLiveSet[lk] = false
				s.ibQStep[lk] = 0
				continue
			}
		}
		kept = append(kept, lk)
	}
	s.ibLive = kept
}

// inbandIntegrate advances the per-link queue proxies and per-flow hop
// accumulators across an interval of constant allocation. The queue model
// matches LinkProbe.integrate (grow at excess offered demand, drain at
// spare capacity, clamp to the port buffer); the per-hop residency uses
// the trapezoid of the queue over the step.
func (s *Sim) inbandIntegrate(dt float64) {
	for _, lk := range s.ibLive {
		q0 := s.ibQueue[lk]
		q1 := q0 + (s.ibDemand[lk]-s.ibCap[lk])/8*dt
		if q1 < 0 {
			q1 = 0
		}
		if q1 > s.PortBufferBytes {
			q1 = s.PortBufferBytes
		}
		s.ibQueue[lk] = q1
		s.ibQStep[lk] = (q0 + q1) / 2 * dt
	}
	for _, f := range s.active {
		if f.Rate <= 0 || f.ib == nil || len(f.ib.hopBits) != len(f.Path) {
			continue
		}
		ib := f.ib
		for i, lk := range f.Path {
			ib.hopBits[i] += f.Rate * dt
			if s.ibLiveSet[lk] {
				ib.hopQBS[i] += s.ibQStep[lk]
			}
		}
	}
}

// InbandQueueBytes exposes the in-band queue proxy of one link (0 when
// in-band telemetry is off) — test and analysis hook.
func (s *Sim) InbandQueueBytes(l topo.LinkID) float64 {
	if s.inband == nil {
		return 0
	}
	return s.ibQueue[l]
}

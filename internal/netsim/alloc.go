package netsim

import (
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// recompute performs the max-min fair (progressive filling) bandwidth
// allocation over all running flows, refreshes probe accumulators, and
// schedules the next completion event.
//
// Progressive filling: repeatedly find the most constrained link (smallest
// headroom per unfrozen flow), freeze its flows at that fair share, subtract
// their rates everywhere, and continue until every flow is frozen. All links
// tied at the bottleneck share are frozen together, which collapses the
// iteration count on symmetric fabrics.
func (s *Sim) recompute() {
	s.curEpoch++
	s.touched = s.touched[:0]
	s.ctrRecomputes.Inc()
	if s.Trace != nil {
		// One counter sample per allocation round: the active-flow track
		// lines up recomputation churn against spans in the trace viewer.
		s.Trace.Counter(int64(s.Eng.Now()), "active_flows", float64(len(s.active)))
	}

	// Gather running flows and initialize link accounting.
	unfrozen := make([]*Flow, 0, len(s.active))
	for _, f := range s.active {
		if f.Stalled {
			f.Rate = 0
			continue
		}
		unfrozen = append(unfrozen, f)
		for _, lk := range f.Path {
			s.touch(lk)
			s.nShare[lk]++
		}
	}

	// Offered-demand model for the queue proxy: a flow wishes for its fair
	// share at its first (access) link.
	for _, f := range unfrozen {
		first := f.Path[0]
		wish := s.capRem[first] / float64(s.nShare[first])
		for _, lk := range f.Path {
			s.demand[lk] += wish
		}
	}

	const eps = 1e-9
	for len(unfrozen) > 0 {
		// Find the bottleneck share.
		min := -1.0
		for _, f := range unfrozen {
			for _, lk := range f.Path {
				if s.nShare[lk] == 0 {
					continue
				}
				share := s.capRem[lk] / float64(s.nShare[lk])
				if min < 0 || share < min {
					min = share
				}
			}
		}
		if min < 0 {
			break
		}
		// Freeze every flow crossing a link at (or below) the bottleneck
		// share.
		kept := unfrozen[:0]
		for _, f := range unfrozen {
			freeze := false
			for _, lk := range f.Path {
				if s.nShare[lk] == 0 {
					continue
				}
				share := s.capRem[lk] / float64(s.nShare[lk])
				if share <= min*(1+1e-9)+eps {
					freeze = true
					break
				}
			}
			if freeze {
				f.Rate = min
				for _, lk := range f.Path {
					s.capRem[lk] -= min
					if s.capRem[lk] < 0 {
						s.capRem[lk] = 0
					}
					s.nShare[lk]--
				}
			} else {
				kept = append(kept, f)
			}
		}
		if len(kept) == len(unfrozen) {
			// Defensive: should be impossible, but never spin.
			for _, f := range kept {
				f.Rate = min
			}
			kept = kept[:0]
		}
		unfrozen = kept
	}

	// Refresh probe accumulators from the new allocation. Iteration goes
	// through the registration-ordered probeList, never the lookup map, so
	// accumulator refresh order (and anything it may ever feed) stays
	// deterministic.
	for _, p := range s.probeList {
		p.util, p.demand = 0, 0
	}
	if len(s.probeList) > 0 {
		for _, f := range s.active {
			if f.Stalled {
				continue
			}
			for _, lk := range f.Path {
				if p, ok := s.probes[lk]; ok {
					p.util += f.Rate
				}
			}
		}
		for _, p := range s.probeList {
			lk := p.Link
			if s.epoch[lk] == s.curEpoch {
				p.demand = s.demand[lk]
			}
			p.cap = s.Top.Link(lk).CapBps
			if !s.Top.LinkUsable(lk) {
				p.cap = 0
			}
		}
	}
	if s.inband != nil {
		s.inbandRefresh()
	}

	s.scheduleCompletion()
}

// touch initializes the scratch accounting for a link in this epoch.
func (s *Sim) touch(lk topo.LinkID) {
	if s.epoch[lk] == s.curEpoch {
		return
	}
	s.epoch[lk] = s.curEpoch
	cap := s.Top.Link(lk).CapBps
	if !s.Top.LinkUsable(lk) {
		cap = 0
	}
	s.capRem[lk] = cap
	s.nShare[lk] = 0
	s.demand[lk] = 0
	s.touched = append(s.touched, lk)
}

// scheduleCompletion (re)arms the next completion event.
func (s *Sim) scheduleCompletion() {
	if s.completionEv != nil {
		s.Eng.Cancel(s.completionEv)
		s.completionEv = nil
	}
	best := -1.0
	for _, f := range s.active {
		if f.Rate <= 0 {
			continue
		}
		t := f.Remaining / f.Rate
		if best < 0 || t < best {
			best = t
		}
	}
	if best < 0 {
		return
	}
	delay := sim.Time(best * float64(sim.Second))
	s.completionEv = s.Eng.Schedule(delay, s.completionEvent)
}

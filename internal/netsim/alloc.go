package netsim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hpn/internal/sim"
	"hpn/internal/topo"
)

// This file is the max-min fair (progressive filling) allocator, rewritten
// around link-centric accounting:
//
//   - Gathering runnable flows builds, per touched link, a flow-incidence
//     list alongside the remaining-capacity / share-count scratch. The
//     incidence lists replace the original "rescan every flow x hop per
//     filling round" inner loop: each filling round pops the most
//     constrained link from a min-heap and freezes exactly the flows
//     crossing it, so total fill work is O(F*P + L_touched*log L) instead
//     of O(rounds * F * P).
//   - The active flow set is decomposed into connected components of the
//     flow-link contention graph (union-find over path links). Components
//     share no links, so their fills are independent; they run serially or,
//     past a size threshold, in parallel across goroutines gated by
//     GOMAXPROCS. Each component touches only its own flows and links, and
//     the only cross-component result — the earliest projected completion —
//     is merged after the workers join, in component order (components are
//     created in deterministic active-flow order, keyed by their
//     smallest-indexed flow). The merge is an exact float min, so the
//     allocation and every artifact derived from it are byte-identical
//     whether filling ran on one goroutine or eight.
//   - The next-completion scan is gone: the minimum Remaining/Rate is
//     tracked incrementally while flows freeze, and the single completion
//     Event is re-armed in place (Engine.Reschedule) instead of
//     cancel+reallocate.
//
// The original flows-x-hops implementation is preserved verbatim (with its
// defensive branch fixed) in alloc_reference.go and pinned against this one
// by the differential property tests.

// allocComp is one connected component of the flow-link contention graph:
// the indices (into the unfrozen scratch) of its flows, the touched links
// they cross, and the component's earliest projected completion in seconds
// (-1 when none of its flows received a positive rate).
type allocComp struct {
	flows []int32
	links []topo.LinkID
	minT  float64
}

// heapEnt is one candidate bottleneck: a link and the fair share it offered
// when keyed. Entries go stale as flows freeze (shares only grow); a stale
// minimum is detected by recomputing the share and re-keyed in place at its
// current value, so each link holds exactly one live entry until it drains.
type heapEnt struct {
	share float64
	link  topo.LinkID
}

// linkHeap is a binary min-heap of (share, link), ordered by share then
// link ID so equal-share pops are deterministic. It is seeded by bulk
// heapify and updated in place (replace-top) on stale entries, so each
// entry costs one sift rather than a pop/push pair.
type linkHeap []heapEnt

func entLess(a, b heapEnt) bool {
	if a.share < b.share {
		return true
	}
	if a.share > b.share {
		return false
	}
	return a.link < b.link
}

// heapify establishes the heap invariant over arbitrary contents in O(n).
func (h linkHeap) heapify() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h linkHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && entLess(h[l], h[m]) {
			m = l
		}
		if r < n && entLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popDiscard removes the minimum entry (the caller has already read it).
func (h *linkHeap) popDiscard() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.siftDown(0)
}

// defaultParallelMinFlows is the runnable-flow count below which component
// filling always stays on the calling goroutine: under it, spawn cost
// exceeds the fill work.
const defaultParallelMinFlows = 192

// recompute performs the max-min fair bandwidth allocation over all running
// flows, refreshes probe accumulators, and (re-)arms the next completion
// event. See the file comment for the algorithm.
func (s *Sim) recompute() {
	rtk := s.phRecompute.Begin()
	s.curEpoch++
	s.touched = s.touched[:0]
	s.ctrRecomputes.Inc()
	if s.Trace != nil {
		// One counter sample per allocation round: the active-flow track
		// lines up recomputation churn against spans in the trace viewer.
		s.Trace.Counter(int64(s.Eng.Now()), "active_flows", float64(len(s.active)))
	}

	// Gather running flows; initialize link accounting and incidence lists.
	unfrozen := s.unfrozen[:0]
	for _, f := range s.active {
		if f.Stalled || len(f.Path) == 0 {
			f.Rate = 0
			continue
		}
		idx := int32(len(unfrozen))
		unfrozen = append(unfrozen, f)
		for i, lk := range f.Path {
			s.touch(lk)
			s.nShare[lk]++
			s.inc[lk] = append(s.inc[lk], idx)
			if i > 0 {
				s.union(f.Path[0], lk)
			}
		}
	}
	s.unfrozen = unfrozen

	// Offered-demand model for the queue proxy: a flow wishes for its fair
	// share at its first (access) link.
	for _, f := range unfrozen {
		first := f.Path[0]
		wish := s.capRem[first] / float64(s.nShare[first])
		for _, lk := range f.Path {
			s.demand[lk] += wish
		}
	}

	// Component decomposition: components are created in active-flow order
	// (the first — smallest-indexed — flow of each component names it), so
	// the component list and everything derived from it is deterministic.
	dtk := s.phDecompose.Begin()
	s.comps = s.comps[:0]
	if cap(s.frozen) < len(unfrozen) {
		s.frozen = make([]bool, len(unfrozen))
	}
	s.frozen = s.frozen[:len(unfrozen)]
	for i := range s.frozen {
		s.frozen[i] = false
	}
	for i, f := range unfrozen {
		root := s.find(int32(f.Path[0]))
		ci := s.compOf[root]
		if ci < 0 {
			ci = int32(s.addComp())
			s.compOf[root] = ci
		}
		c := &s.comps[ci]
		c.flows = append(c.flows, int32(i))
	}
	for _, lk := range s.touched {
		c := &s.comps[s.compOf[s.find(int32(lk))]]
		c.links = append(c.links, lk)
	}
	s.phDecompose.End(dtk)

	// Fill each component independently — in parallel when the flow set is
	// big enough and more than one worker is available.
	ftk := s.phFill.Begin()
	if workers := s.fillWorkers(); workers > 1 {
		s.ensureHeaps(workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			h := &s.heaps[w]
			shard := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(s.comps) {
						return
					}
					s.comps[i].minT = s.fillComponent(&s.comps[i], h, shard)
				}
			}()
		}
		wtk := s.phMergeWait.Begin()
		wg.Wait()
		s.phMergeWait.End(wtk)
	} else {
		s.ensureHeaps(1)
		for i := range s.comps {
			s.comps[i].minT = s.fillComponent(&s.comps[i], &s.heaps[0], 0)
		}
	}
	s.phFill.End(ftk)
	// Deterministic merge: exact float min over components in creation
	// order. The result does not depend on which worker filled what.
	best := -1.0
	for i := range s.comps {
		if t := s.comps[i].minT; t >= 0 && (best < 0 || t < best) {
			best = t
		}
	}

	// Refresh probe accumulators from the new allocation. Iteration goes
	// through the registration-ordered probeList, never a map, so
	// accumulator refresh order (and anything it may ever feed) stays
	// deterministic. Utilization comes from the link's incidence list —
	// summed in gather (= active) order, exactly as the previous
	// all-flows-x-hops scan accumulated it.
	for _, p := range s.probeList {
		p.util, p.demand = 0, 0
		lk := p.Link
		p.cap = s.Top.Link(lk).CapBps
		if !s.Top.LinkUsable(lk) {
			p.cap = 0
		}
		if s.epoch[lk] == s.curEpoch {
			p.demand = s.demand[lk]
			for _, fi := range s.inc[lk] {
				p.util += unfrozen[fi].Rate
			}
		}
	}
	if s.inband != nil {
		s.inbandRefresh()
	}

	s.scheduleCompletion(best)
	s.phRecompute.End(rtk)
}

// fillWorkers decides the fill parallelism for this recompute: 1 unless
// there are at least two components and enough runnable flows to amortize
// goroutine startup. ParallelFill pins the worker count (1 forces serial);
// 0 defers to GOMAXPROCS.
func (s *Sim) fillWorkers() int {
	if len(s.comps) < 2 {
		return 1
	}
	minFlows := s.ParallelFillMinFlows
	if minFlows <= 0 {
		minFlows = defaultParallelMinFlows
	}
	if len(s.unfrozen) < minFlows {
		return 1
	}
	w := s.ParallelFill
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.comps) {
		w = len(s.comps)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensureHeaps grows the per-worker heap scratch to n entries.
func (s *Sim) ensureHeaps(n int) {
	for len(s.heaps) < n {
		s.heaps = append(s.heaps, nil)
	}
}

// fillComponent runs progressive filling over one component and returns its
// earliest projected completion in seconds (-1 if none). It reads and
// writes only the component's own flows and links (plus the worker-private
// heap), which is what makes parallel component fills race-free and
// schedule-independent. shard is the caller's worker index: heap operations
// are tallied locally and flushed once into that profiler shard, so the hot
// loop costs nothing extra and concurrent workers never share a counter
// cache line.
//
// Invariant behind the lazy heap: freezing a flow at the current bottleneck
// share can only raise the share of every link it crosses, so a popped
// entry whose recorded share is below the link's current share is stale and
// is re-pushed at its current value; a fresh pop is the exact component-wide
// minimum (every other link's current share is at least its heap key). The
// tie tolerance matches the reference implementation's freeze threshold.
func (s *Sim) fillComponent(c *allocComp, h *linkHeap, shard int) float64 {
	heapOps := int64(0)
	hs := (*h)[:0]
	for _, lk := range c.links {
		if n := s.nShare[lk]; n > 0 {
			hs = append(hs, heapEnt{share: s.capRem[lk] / float64(n), link: lk})
		}
	}
	hs.heapify()
	*h = hs
	minT := -1.0
	// live counts the component's still-unfrozen flows: once it hits zero
	// the remaining heap entries can only be drained or stale links, so the
	// loop stops instead of sifting through them (the dominant waste on
	// symmetric workloads where one plateau freezes everything).
	live := len(c.flows)
	for live > 0 && len(*h) > 0 {
		e := (*h)[0]
		n := s.nShare[e.link]
		if n == 0 {
			heapOps++
			h.popDiscard() // fully drained by earlier freezes
			continue
		}
		cur := s.capRem[e.link] / float64(n)
		if cur > e.share*(1+1e-9)+1e-9 {
			// Stale: the share grew since the entry was keyed. Re-key it in
			// place and restore the invariant with a single sift.
			heapOps++
			(*h)[0].share = cur
			(*h).siftDown(0)
			continue
		}
		heapOps++
		h.popDiscard()
		for _, fi := range s.inc[e.link] {
			if s.frozen[fi] {
				continue
			}
			s.frozen[fi] = true
			live--
			f := s.unfrozen[fi]
			f.Rate = cur
			if cur > 0 {
				if t := f.Remaining / cur; minT < 0 || t < minT {
					minT = t
				}
			}
			for _, l2 := range f.Path {
				rem := s.capRem[l2] - cur
				if rem < 0 {
					rem = 0 // float guard; exact arithmetic keeps this >= 0
				}
				s.capRem[l2] = rem
				s.nShare[l2]--
			}
		}
	}
	// Defensive: a flow every one of whose links drained without freezing
	// it cannot occur (its own membership keeps nShare >= 1 on each of its
	// links, and each such link holds a heap entry until processed), but if
	// the invariant ever broke we must not leave stale rates or corrupt the
	// share accounting — park the flow at zero rate and retire its path
	// shares consistently.
	for _, fi := range c.flows {
		if s.frozen[fi] {
			continue
		}
		s.frozen[fi] = true
		f := s.unfrozen[fi]
		f.Rate = 0
		for _, l2 := range f.Path {
			s.nShare[l2]--
		}
	}
	s.phHeapOps.AddShard(heapOps, shard)
	return minT
}

// touch initializes the scratch accounting for a link in this epoch.
func (s *Sim) touch(lk topo.LinkID) {
	if s.epoch[lk] == s.curEpoch {
		return
	}
	s.epoch[lk] = s.curEpoch
	cap := s.Top.Link(lk).CapBps
	if !s.Top.LinkUsable(lk) {
		cap = 0
	}
	s.capRem[lk] = cap
	s.nShare[lk] = 0
	s.demand[lk] = 0
	s.inc[lk] = s.inc[lk][:0]
	s.ufParent[lk] = int32(lk)
	s.compOf[lk] = -1
	s.touched = append(s.touched, lk)
}

// find returns the union-find root of a touched link, with path halving.
// Roots are canonical: union always parents the larger root under the
// smaller, so a component's root is its smallest link ID regardless of
// union order.
func (s *Sim) find(l int32) int32 {
	p := s.ufParent
	for p[l] != l {
		p[l] = p[p[l]]
		l = p[l]
	}
	return l
}

// union merges the components of two touched links.
func (s *Sim) union(a, b topo.LinkID) {
	ra, rb := s.find(int32(a)), s.find(int32(b))
	if ra == rb {
		return
	}
	if ra < rb {
		s.ufParent[rb] = ra
	} else {
		s.ufParent[ra] = rb
	}
}

// addComp appends a reset component to the scratch list and returns its
// index, reusing the flow/link slices of earlier recomputes.
func (s *Sim) addComp() int {
	n := len(s.comps)
	if n < cap(s.comps) {
		s.comps = s.comps[:n+1]
	} else {
		s.comps = append(s.comps, allocComp{})
	}
	c := &s.comps[n]
	c.flows = c.flows[:0]
	c.links = c.links[:0]
	c.minT = -1
	return n
}

// scheduleCompletion (re)arms the completion event for the earliest
// projected completion, tracked incrementally during the fill (best < 0
// means no flow is moving). The persistent Event is moved in place when
// still pending, so the hot path allocates nothing.
func (s *Sim) scheduleCompletion(best float64) {
	if best < 0 {
		if s.completionEv != nil {
			s.Eng.Cancel(s.completionEv)
			s.completionEv = nil
		}
		return
	}
	at := s.Eng.Now() + sim.Time(best*float64(sim.Second))
	if s.Eng.Reschedule(s.completionEv, at) {
		return
	}
	// Pinned: the handle is retained across firings for the Reschedule fast
	// path above, so the engine must never recycle it into its free list.
	s.completionEv = s.Eng.ScheduleAt(at, s.completionEvent).Pin()
}

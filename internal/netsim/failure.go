package netsim

import (
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// FailCable takes both directions of a cable down. Flows traversing it
// stall immediately (packets stop moving); routing re-converges around it
// after the router's convergence delay, at which point stalled flows are
// re-pathed.
func (s *Sim) FailCable(l topo.LinkID) {
	s.beginMutate()
	defer s.endMutate()
	now := s.Eng.Now()
	s.Top.SetCableState(l, false)
	s.R.NoteLinkFailed(l, now)
	s.ctrLinkEvents.Inc()
	s.instant("link_down", telemetry.Arg{K: "link", V: int(l)})
	if s.obs != nil {
		s.obs.LinkEvent(now, l, false)
	}
	if s.Flight != nil {
		s.Flight.Note(int64(now), "link_down", s.flightLinkSubject(l), int64(l), 0)
	}
	rev := s.Top.Link(l).Reverse
	for _, f := range s.active {
		if pathHasLink(f.Path, l) || pathHasLink(f.Path, rev) {
			f.Stalled = true
			f.Rate = 0
		}
	}
	s.scheduleReroute(s.R.ConvergenceDelay)
}

// RecoverCable restores a cable. Stalled flows are re-pathed after a short
// re-advertisement delay; healthy flows are left untouched (real ECMP does
// remap some flows when a member returns, but moving working flows never
// changes aggregate fluid rates on a symmetric fabric).
func (s *Sim) RecoverCable(l topo.LinkID) {
	s.beginMutate()
	defer s.endMutate()
	s.Top.SetCableState(l, true)
	s.R.NoteLinkRecovered(l)
	s.ctrLinkEvents.Inc()
	s.instant("link_up", telemetry.Arg{K: "link", V: int(l)})
	if s.obs != nil {
		s.obs.LinkEvent(s.Eng.Now(), l, true)
	}
	if s.Flight != nil {
		s.Flight.Note(int64(s.Eng.Now()), "link_up", s.flightLinkSubject(l), int64(l), 0)
	}
	s.scheduleReroute(200 * sim.Millisecond)
}

// FailNode crashes a switch: every flow transiting it stalls.
func (s *Sim) FailNode(n topo.NodeID) {
	s.beginMutate()
	defer s.endMutate()
	now := s.Eng.Now()
	s.Top.SetNodeState(n, false)
	s.R.NoteNodeFailed(n, now)
	s.ctrLinkEvents.Inc()
	s.instant("node_down", telemetry.Arg{K: "node", V: int(n)},
		telemetry.Arg{K: "name", V: s.Top.Node(n).Name})
	if s.obs != nil {
		s.obs.NodeEvent(now, n, false)
	}
	if s.Flight != nil {
		s.Flight.Note(int64(now), "node_down", s.Top.Node(n).Name, int64(n), 0)
	}
	for _, f := range s.active {
		for _, lk := range f.Path {
			link := s.Top.Link(lk)
			if link.From == n || link.To == n {
				f.Stalled = true
				f.Rate = 0
				break
			}
		}
	}
	s.scheduleReroute(s.R.ConvergenceDelay)
}

// RecoverNode restores a crashed switch.
func (s *Sim) RecoverNode(n topo.NodeID) {
	s.beginMutate()
	defer s.endMutate()
	s.Top.SetNodeState(n, true)
	s.R.NoteNodeRecovered(n)
	s.ctrLinkEvents.Inc()
	s.instant("node_up", telemetry.Arg{K: "node", V: int(n)},
		telemetry.Arg{K: "name", V: s.Top.Node(n).Name})
	if s.obs != nil {
		s.obs.NodeEvent(s.Eng.Now(), n, true)
	}
	if s.Flight != nil {
		s.Flight.Note(int64(s.Eng.Now()), "node_up", s.Top.Node(n).Name, int64(n), 0)
	}
	s.scheduleReroute(200 * sim.Millisecond)
}

func pathHasLink(path []topo.LinkID, l topo.LinkID) bool {
	for _, p := range path {
		if p == l {
			return true
		}
	}
	return false
}

// scheduleReroute arms a single pending reroute pass after delay (the BGP /
// host-route convergence time). Multiple triggers collapse into the
// earliest pass; flows still stalled afterwards wait for the next topology
// transition.
func (s *Sim) scheduleReroute(delay sim.Time) {
	if s.rerouteScheduled {
		return
	}
	s.rerouteScheduled = true
	s.Eng.Schedule(delay, func() {
		s.rerouteScheduled = false
		s.reroutePass()
	})
}

// reroutePass re-paths every stalled flow with the now-converged view.
func (s *Sim) reroutePass() {
	s.beginMutate()
	defer s.endMutate()
	moved, still := s.repathStalled()
	s.ctrReroutes.Inc()
	s.instant("reroute",
		telemetry.Arg{K: "repathed", V: moved},
		telemetry.Arg{K: "still_stalled", V: still > 0})
	if s.obs != nil {
		s.obs.RerouteDone(s.Eng.Now(), moved, still)
	}
	if s.Flight != nil {
		s.Flight.Note(int64(s.Eng.Now()), "reroute", "", int64(moved), int64(still))
	}
	// If flows are still stuck and the fabric is still reconverging (e.g. a
	// second failure landed during the pass), try once more afterwards.
	if still > 0 {
		s.retryReroute()
	}
}

// repathStalled re-routes every stalled flow, returning how many moved and
// how many remain stalled.
func (s *Sim) repathStalled() (moved, still int) {
	for _, f := range s.active {
		if !f.Stalled {
			continue
		}
		f.Stalled = false
		if err := s.routeFlow(f); err != nil {
			f.Stalled = true
		}
		if f.Stalled {
			still++
		} else {
			moved++
		}
	}
	return moved, still
}

// retryReroute schedules one more pass a convergence-delay out, without
// self-perpetuating: if that pass leaves flows stalled too, they wait for
// the next explicit topology transition.
func (s *Sim) retryReroute() {
	if s.rerouteScheduled {
		return
	}
	s.rerouteScheduled = true
	s.Eng.Schedule(s.R.ConvergenceDelay, func() {
		s.rerouteScheduled = false
		s.beginMutate()
		defer s.endMutate()
		moved, still := s.repathStalled()
		if s.obs != nil {
			s.obs.RerouteDone(s.Eng.Now(), moved, still)
		}
		if s.Flight != nil {
			s.Flight.Note(int64(s.Eng.Now()), "reroute_retry", "", int64(moved), int64(still))
		}
	})
}

// flightLinkSubject names a cable for flight-recorder rows. Only called
// from guarded emission sites on (rare) topology transitions, so the
// string concatenation never touches a hot path.
func (s *Sim) flightLinkSubject(l topo.LinkID) string {
	lk := s.Top.Link(l)
	return s.Top.Node(lk.From).Name + "->" + s.Top.Node(lk.To).Name
}

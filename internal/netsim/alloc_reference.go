package netsim

import (
	"hpn/internal/topo"
)

// referenceMaxMin is the original progressive-filling allocator, kept as
// the executable specification of max-min fairness: repeatedly find the
// most constrained link (smallest headroom per unfrozen flow), freeze its
// flows at that fair share, subtract their rates everywhere, and continue
// until every flow is frozen. All links tied at the bottleneck share are
// frozen together. It rescans every flow x hop on every round — O(rounds *
// F * P) — which is exactly the cost profile the link-centric allocator in
// alloc.go replaces; the differential property tests pin the two against
// each other.
//
// Flows that are stalled or pathless are ignored (the live allocator gives
// them rate 0). The input flows are not mutated; rates are returned
// parallel to flows, -1 for ignored entries.
func referenceMaxMin(top *topo.Topology, flows []*Flow) []float64 {
	rates := make([]float64, len(flows))
	capRem := map[topo.LinkID]float64{}
	nShare := map[topo.LinkID]int32{}
	idx := map[*Flow]int{}

	unfrozen := make([]*Flow, 0, len(flows))
	for i, f := range flows {
		rates[i] = -1
		if f.Stalled || len(f.Path) == 0 {
			continue
		}
		idx[f] = i
		unfrozen = append(unfrozen, f)
		for _, lk := range f.Path {
			if _, ok := capRem[lk]; !ok {
				cap := top.Link(lk).CapBps
				if !top.LinkUsable(lk) {
					cap = 0
				}
				capRem[lk] = cap
			}
			nShare[lk]++
		}
	}

	const eps = 1e-9
	for len(unfrozen) > 0 {
		// Find the bottleneck share.
		min := -1.0
		for _, f := range unfrozen {
			for _, lk := range f.Path {
				if nShare[lk] == 0 {
					continue
				}
				share := capRem[lk] / float64(nShare[lk])
				if min < 0 || share < min {
					min = share
				}
			}
		}
		if min < 0 {
			break
		}
		// Freeze every flow crossing a link at (or below) the bottleneck
		// share.
		kept := unfrozen[:0]
		for _, f := range unfrozen {
			freeze := false
			for _, lk := range f.Path {
				if nShare[lk] == 0 {
					continue
				}
				share := capRem[lk] / float64(nShare[lk])
				if share <= min*(1+1e-9)+eps {
					freeze = true
					break
				}
			}
			if freeze {
				rates[idx[f]] = min
				for _, lk := range f.Path {
					capRem[lk] -= min
					if capRem[lk] < 0 {
						capRem[lk] = 0
					}
					nShare[lk]--
				}
			} else {
				kept = append(kept, f)
			}
		}
		if len(kept) == len(unfrozen) {
			// Defensive: unreachable when the accounting is coherent (the
			// flow whose link attains min always passes the freeze test),
			// but never spin. Historically this branch froze flows at min
			// WITHOUT retiring their shares, which would have corrupted the
			// remaining capacity and the probe util/demand accounting had
			// it ever fired; it now freezes with the same consistent
			// bookkeeping as the normal path.
			for _, f := range kept {
				rates[idx[f]] = min
				for _, lk := range f.Path {
					capRem[lk] -= min
					if capRem[lk] < 0 {
						capRem[lk] = 0
					}
					nShare[lk]--
				}
			}
			kept = kept[:0]
		}
		unfrozen = kept
	}
	return rates
}

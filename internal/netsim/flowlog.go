package netsim

import (
	"fmt"
	"io"
	"strings"

	"hpn/internal/sim"
	"hpn/internal/topo"
)

// FlowRecord is the completed-flow log entry: what a production flow
// telemetry pipeline (or an INT collector) would export per flow.
type FlowRecord struct {
	ID         int64
	SrcHost    int
	SrcNIC     int
	DstHost    int
	DstNIC     int
	Port       int // source NIC port (plane) at completion
	Bytes      float64
	Start, End sim.Time
	Hops       int
	CrossedAgg bool
	CrossedCor bool
}

// Duration returns the flow completion time.
func (r FlowRecord) Duration() sim.Time { return r.End - r.Start }

// Gbps returns the flow's average goodput.
func (r FlowRecord) Gbps() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return r.Bytes * 8 / d / 1e9
}

// EnableFlowLog starts recording completed flows, bounded to cap entries;
// cap = 0 means unbounded. Call before injecting traffic. If telemetry is
// attached, the log is also exposed as the "flowlog.tsv" artifact exporter.
func (s *Sim) EnableFlowLog(cap int) {
	pre := 1024
	if cap > 0 && cap < pre {
		pre = cap
	}
	s.flowLog = make([]FlowRecord, 0, pre)
	s.flowLogCap = cap
	s.registerFlowLogExporter()
}

// FlowLog returns the recorded completions.
func (s *Sim) FlowLog() []FlowRecord { return s.flowLog }

// logFlow appends a completion record if logging is on.
func (s *Sim) logFlow(f *Flow) {
	if s.flowLog == nil {
		return
	}
	if s.flowLogCap > 0 && len(s.flowLog) >= s.flowLogCap {
		return
	}
	rec := FlowRecord{
		ID:      f.ID,
		SrcHost: f.Src.Host, SrcNIC: f.Src.NIC,
		DstHost: f.Dst.Host, DstNIC: f.Dst.NIC,
		Port:  f.Port,
		Bytes: f.Bits / 8,
		Start: f.StartedAt, End: f.DoneAt,
		Hops: len(f.Path),
	}
	for _, lk := range f.Path {
		switch s.Top.Node(s.Top.Link(lk).To).Kind {
		case topo.KindAgg:
			rec.CrossedAgg = true
		case topo.KindCore:
			rec.CrossedCor = true
		}
	}
	s.flowLog = append(s.flowLog, rec)
}

// WriteFlowLog dumps the log as a TSV for offline analysis.
func (s *Sim) WriteFlowLog(w io.Writer) error {
	var b strings.Builder
	b.WriteString("id\tsrc\tdst\tport\tbytes\tstart_s\tend_s\tgbps\thops\tagg\tcore\n")
	for _, r := range s.flowLog {
		fmt.Fprintf(&b, "%d\t%d:%d\t%d:%d\t%d\t%.0f\t%.6f\t%.6f\t%.2f\t%d\t%v\t%v\n",
			r.ID, r.SrcHost, r.SrcNIC, r.DstHost, r.DstNIC, r.Port, r.Bytes,
			r.Start.Seconds(), r.End.Seconds(), r.Gbps(), r.Hops, r.CrossedAgg, r.CrossedCor)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

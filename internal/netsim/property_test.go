package netsim

import (
	"testing"
	"testing/quick"

	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// Property: for arbitrary flow sets on a healthy fabric, the allocation is
// a valid max-min fair point — no link over capacity, every flow strictly
// positive and bottlenecked at some saturated link where it holds a
// maximal rate — and all flows eventually drain.
func TestMaxMinProperty(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(2, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	f := func(pairs []uint32) bool {
		if len(pairs) == 0 {
			return true
		}
		if len(pairs) > 60 {
			pairs = pairs[:60]
		}
		eng := sim.New()
		s := New(eng, top)
		started := 0
		for _, p := range pairs {
			srcHost := int(p % 16)
			dstHost := int((p >> 8) % 16)
			if srcHost == dstHost {
				continue
			}
			nic := int((p >> 16) % 8)
			size := float64(1+(p>>24)%16) * (1 << 20)
			if _, err := s.StartFlow(
				route.Endpoint{Host: srcHost, NIC: nic},
				route.Endpoint{Host: dstHost, NIC: nic},
				size, FlowOpts{SrcPort: -1}); err != nil {
				return false
			}
			started++
		}
		// Validate the instantaneous allocation.
		used := map[topo.LinkID]float64{}
		maxOn := map[topo.LinkID]float64{}
		for _, fl := range s.active {
			if fl.Stalled || fl.Rate <= 0 {
				return false
			}
			for _, lk := range fl.Path {
				used[lk] += fl.Rate
				if fl.Rate > maxOn[lk] {
					maxOn[lk] = fl.Rate
				}
			}
		}
		for lk, u := range used {
			if u > top.Link(lk).CapBps*(1+1e-6) {
				return false
			}
		}
		for _, fl := range s.active {
			ok := false
			for _, lk := range fl.Path {
				if used[lk] >= top.Link(lk).CapBps*(1-1e-6) && fl.Rate >= maxOn[lk]*(1-1e-6) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		eng.Run()
		return int(s.CompletedFlows) == started && s.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — completed bits equal the sum of injected sizes,
// regardless of a mid-run failure and recovery.
func TestConservationUnderFailure(t *testing.T) {
	f := func(seed uint8) bool {
		top, err := topo.BuildHPN(topo.SmallHPN(2, 4, 4))
		if err != nil {
			return false
		}
		eng := sim.New()
		s := New(eng, top)
		total := 0.0
		for i := 0; i < 12; i++ {
			src := route.Endpoint{Host: i % 4, NIC: (i + int(seed)) % 8}
			dst := route.Endpoint{Host: 4 + (i+1)%4, NIC: (i + int(seed)) % 8}
			size := float64(8 << 20)
			total += size * 8
			if _, err := s.StartFlow(src, dst, size, FlowOpts{SrcPort: -1}); err != nil {
				return false
			}
		}
		victim := top.AccessLink(int(seed)%4, int(seed)%8, 0)
		eng.Schedule(sim.Millisecond/4, func() { s.FailCable(victim) })
		eng.Schedule(3*sim.Second, func() { s.RecoverCable(victim) })
		eng.Run()
		return s.CompletedBits == total && s.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package collective

import (
	"testing"

	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func railOnlyNet(t *testing.T) *netsim.Sim {
	t.Helper()
	cfg := topo.SmallHPN(2, 4, 2)
	cfg.RailOnlyTier2 = true
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	return netsim.New(sim.New(), top)
}

func TestAllToAllAnyToAny(t *testing.T) {
	net := newNet(t, 2, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllToAll(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsUnreachable != 0 {
		t.Fatalf("unreachable = %d on an any-to-any fabric", res.FlowsUnreachable)
	}
	// 8 hosts x 8 rails x 7 destinations.
	if res.FlowsSent != 8*8*7 {
		t.Fatalf("sent = %d, want 448", res.FlowsSent)
	}
	if res.Elapsed <= 0 || res.BusBW <= 0 {
		t.Fatal("no timing reported")
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("%d flows leaked", net.ActiveFlows())
	}
}

func TestAllToAllRailOnlyUnreachable(t *testing.T) {
	net := railOnlyNet(t)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllToAll(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsUnreachable == 0 {
		t.Fatal("rail-only tier2 delivered cross-rail shards")
	}
	// Same-rail shards (1 destination rail of 8 per host pair) still work:
	// cross-segment pairs have exactly one matched-rail target each.
	if res.FlowsSent == 0 {
		t.Fatal("even same-rail shards failed")
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("%d stalled flows leaked after abort", net.ActiveFlows())
	}
}

// Rail-aligned collectives still run on rail-only tier2.
func TestRailOnlyAllReduceWorks(t *testing.T) {
	net := railOnlyNet(t)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.BusBW <= 0 {
		t.Fatal("rail-aligned AllReduce failed on rail-only tier2")
	}
}

func TestAllToAllRejectsBadInput(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.StartAllToAll(0, nil); err == nil {
		t.Fatal("zero-size all-to-all accepted")
	}
}

package collective

import (
	"fmt"

	"hpn/internal/netsim"
	"hpn/internal/rdma"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
)

// StartAllReduce begins a hierarchical AllReduce of `bytes` across the
// group: NVLS intra-host reduce-scatter, per-rail inter-host ring AllReduce
// of the 1/8 shard, NVLS intra-host allgather. onDone fires when complete.
func (g *Group) StartAllReduce(bytes float64, onDone func(sim.Time, Result)) (*Op, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive size")
	}
	h := float64(len(g.Hosts))
	intra := g.intraDelay(bytes, g.Cfg.NVLinkReduceGBps)
	op := &Op{
		g: g, name: "allreduce", bytes: bytes,
		chunk: bytes / float64(g.Rails) / h,
		steps: 2 * (len(g.Hosts) - 1),
		rails: allRails(g.Rails),
		pre:   intra, post: intra,
		onDone: onDone,
	}
	op.start()
	return op, nil
}

// StartAllGather begins a hierarchical AllGather: per-rail inter-host ring
// gathering every host's shard, then an NVSwitch-bound intra-host exchange.
func (g *Group) StartAllGather(bytes float64, onDone func(sim.Time, Result)) (*Op, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive size")
	}
	n := float64(g.GPUs())
	op := &Op{
		g: g, name: "allgather", bytes: bytes,
		chunk: bytes / n,
		steps: len(g.Hosts) - 1,
		rails: allRails(g.Rails),
		pre:   0, post: g.intraDelay(bytes, g.Cfg.NVLinkGatherGBps),
		postOverlapsInter: true, // NCCL pipelines NVSwitch with the rings
		onDone:            onDone,
	}
	op.start()
	return op, nil
}

// StartMultiAllReduce begins the Megatron TP=8 gradient-sync pattern: GPUs
// with the same index run independent full-size ring AllReduces in
// parallel, all data crossing the inter-host network (no NVLink stage).
func (g *Group) StartMultiAllReduce(bytes float64, onDone func(sim.Time, Result)) (*Op, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive size")
	}
	h := float64(len(g.Hosts))
	op := &Op{
		g: g, name: "multiallreduce", bytes: bytes,
		chunk:  bytes / h,
		steps:  2 * (len(g.Hosts) - 1),
		rails:  allRails(g.Rails),
		onDone: onDone,
	}
	op.start()
	return op, nil
}

// StartSend begins a PP-style point-to-point transfer between two hosts on
// one rail, using that pair's ring connection set if present or a fresh
// flow otherwise.
func (g *Group) StartSend(srcHost, dstHost, rail int, bytes float64, onDone func(sim.Time, Result)) error {
	start := g.Net.Eng.Now()
	done := func(now sim.Time) {
		g.ctrOps.Inc()
		if g.Net.Trace != nil {
			g.Net.Trace.Complete(int64(start), int64(now-start),
				"collective", "send", g.tid,
				telemetry.Arg{K: "bytes", V: bytes},
				telemetry.Arg{K: "rail", V: rail})
		}
		if onDone != nil {
			el := now - start
			r := Result{Op: "send", Bytes: bytes, Elapsed: el}
			if el > 0 {
				r.AlgBW = bytes / el.Seconds()
				r.BusBW = r.AlgBW
			}
			onDone(now, r)
		}
	}
	if cs := g.connFor(srcHost, dstHost, rail); cs != nil {
		_, err := cs.Send(bytes, done)
		return err
	}
	src := route.Endpoint{Host: srcHost, NIC: rail}
	dst := route.Endpoint{Host: dstHost, NIC: rail}
	_, err := g.Net.StartFlow(src, dst, bytes, netsim.FlowOpts{
		SrcPort:    -1,
		OnComplete: func(now sim.Time, _ *netsim.Flow) { done(now) },
	})
	return err
}

func (g *Group) connFor(srcHost, dstHost, rail int) *rdma.ConnSet {
	for i, h := range g.Hosts {
		if h == srcHost && g.Hosts[(i+1)%len(g.Hosts)] == dstHost {
			return g.conns[rail][i]
		}
	}
	return nil
}

// intraDelay is the analytic NVLink stage duration: each GPU moves 7/8 of
// the buffer across the NVSwitch at the given effective bandwidth.
func (g *Group) intraDelay(bytes, gbps float64) sim.Time {
	if g.Rails <= 1 || gbps <= 0 {
		return 0
	}
	frac := float64(g.Rails-1) / float64(g.Rails)
	return sim.Time(bytes * frac / (gbps * 1e9) * float64(sim.Second))
}

func allRails(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// start schedules the op's first stage.
func (o *Op) start() {
	o.started = o.g.Net.Eng.Now()
	o.doneFn = o.flowDone
	if o.pre > 0 {
		o.g.Net.Eng.Schedule(o.pre, o.runStep)
		return
	}
	o.runStep()
}

// runStep launches one synchronous ring round: every host sends its chunk
// to its ring successor on every participating rail, split into
// ChunksPerMessage pieces dispatched per Algorithm 2 (or pinned round-robin
// under the single/blind baselines).
func (o *Op) runStep() {
	g := o.g
	now := g.Net.Eng.Now()
	if o.step > 0 {
		// A round just drained: its span is only known now, so it is
		// emitted retroactively with the recorded start.
		g.ctrRounds.Inc()
		if g.Net.Trace != nil {
			g.Net.Trace.Complete(int64(o.roundStart), int64(now-o.roundStart),
				"collective", "round", g.tid,
				telemetry.Arg{K: "op", V: o.name},
				telemetry.Arg{K: "step", V: o.step})
		}
	}
	if o.step >= o.steps {
		o.finish()
		return
	}
	o.step++
	o.roundStart = now
	nChunks := g.Cfg.ChunksPerMessage
	sub := o.chunk / float64(nChunks)
	// All of a round's flows start at the same instant, so batch the sends
	// into one rate recomputation instead of one per flow.
	g.Net.Batch(func() {
		for _, r := range o.rails {
			for i := range g.Hosts {
				cs := g.conns[r][i]
				for c := 0; c < nChunks; c++ {
					o.pending++
					var err error
					if g.Cfg.Policy == PolicyDisjoint || g.Cfg.Policy == PolicyBlind {
						_, err = cs.Send(sub, o.doneFn)
					} else {
						_, err = cs.SendOn(c, sub, o.doneFn)
					}
					if err != nil {
						// A fully unreachable peer stalls the collective, like
						// a real ring would; account the chunk as never
						// completing.
						o.pending--
					}
				}
			}
		}
	})
	if o.pending == 0 {
		// Nothing could be sent at all; finish defensively to avoid hangs.
		o.finish()
	}
}

func (o *Op) flowDone(now sim.Time) {
	o.pending--
	if o.pending == 0 {
		o.runStep()
	}
}

func (o *Op) finish() {
	g := o.g
	fire := func() {
		now := g.Net.Eng.Now()
		el := now - o.started
		g.ctrOps.Inc()
		if g.Net.Trace != nil {
			g.Net.Trace.Complete(int64(o.started), int64(el),
				"collective", o.name, g.tid,
				telemetry.Arg{K: "bytes", V: o.bytes},
				telemetry.Arg{K: "steps", V: o.steps})
		}
		res := Result{Op: o.name, Bytes: o.bytes, Elapsed: el}
		if el > 0 {
			res.AlgBW = o.bytes / el.Seconds()
			res.BusBW = res.AlgBW * o.busFactor()
		}
		if o.onDone != nil {
			o.onDone(now, res)
		}
	}
	if o.postOverlapsInter {
		// The intra-host stage ran concurrently with the rings; wait only
		// for whatever tail remains.
		end := o.started + o.post
		if now := g.Net.Eng.Now(); end > now {
			g.Net.Eng.Schedule(end-now, fire)
			return
		}
		fire()
		return
	}
	if o.post > 0 {
		g.Net.Eng.Schedule(o.post, fire)
		return
	}
	fire()
}

// AllReduce runs a blocking AllReduce: it drives the engine until the op
// completes and returns the result. Only valid when the caller owns the
// engine (no other pending work that must continue afterwards is lost —
// the engine keeps unrelated events queued).
func (g *Group) AllReduce(bytes float64) (Result, error) {
	return g.blocking(func(cb func(sim.Time, Result)) (*Op, error) {
		return g.StartAllReduce(bytes, cb)
	})
}

// AllGather runs a blocking AllGather.
func (g *Group) AllGather(bytes float64) (Result, error) {
	return g.blocking(func(cb func(sim.Time, Result)) (*Op, error) {
		return g.StartAllGather(bytes, cb)
	})
}

// MultiAllReduce runs a blocking Multi-AllReduce.
func (g *Group) MultiAllReduce(bytes float64) (Result, error) {
	return g.blocking(func(cb func(sim.Time, Result)) (*Op, error) {
		return g.StartMultiAllReduce(bytes, cb)
	})
}

func (g *Group) blocking(start func(func(sim.Time, Result)) (*Op, error)) (Result, error) {
	var (
		res  Result
		done bool
	)
	if _, err := start(func(_ sim.Time, r Result) { res, done = r, true }); err != nil {
		return Result{}, err
	}
	g.Net.Eng.RunWhile(func() bool { return !done })
	if !done {
		return Result{}, fmt.Errorf("collective: op stalled with no pending events (unrecovered failure?)")
	}
	return res, nil
}

package collective

import (
	"fmt"

	"hpn/internal/sim"
)

// StartReduceScatter begins a rail-aligned ReduceScatter of `bytes`: an
// NVLS intra-host reduce-scatter, then a per-rail inter-host
// reduce-scatter ring (H-1 steps) leaving each GPU with its reduced shard.
func (g *Group) StartReduceScatter(bytes float64, onDone func(sim.Time, Result)) (*Op, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive size")
	}
	h := float64(len(g.Hosts))
	op := &Op{
		g: g, name: "reducescatter", bytes: bytes,
		chunk:  bytes / float64(g.Rails) / h,
		steps:  len(g.Hosts) - 1,
		rails:  allRails(g.Rails),
		pre:    g.intraDelay(bytes, g.Cfg.NVLinkReduceGBps),
		onDone: onDone,
	}
	op.start()
	return op, nil
}

// StartBroadcast begins a broadcast of `bytes` from the first host of the
// group: a per-rail pipeline ring forwards the buffer hop by hop (H-1
// steps of the full 1/8 rail shard), then NVLink fans it out inside each
// host.
func (g *Group) StartBroadcast(bytes float64, onDone func(sim.Time, Result)) (*Op, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive size")
	}
	op := &Op{
		g: g, name: "broadcast", bytes: bytes,
		chunk:             bytes / float64(g.Rails),
		steps:             len(g.Hosts) - 1,
		rails:             allRails(g.Rails),
		post:              g.intraDelay(bytes, g.Cfg.NVLinkGatherGBps),
		postOverlapsInter: true,
		onDone:            onDone,
	}
	op.start()
	return op, nil
}

// ReduceScatter runs a blocking ReduceScatter.
func (g *Group) ReduceScatter(bytes float64) (Result, error) {
	return g.blocking(func(cb func(sim.Time, Result)) (*Op, error) {
		return g.StartReduceScatter(bytes, cb)
	})
}

// Broadcast runs a blocking Broadcast.
func (g *Group) Broadcast(bytes float64) (Result, error) {
	return g.blocking(func(cb func(sim.Time, Result)) (*Op, error) {
		return g.StartBroadcast(bytes, cb)
	})
}

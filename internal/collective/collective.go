// Package collective implements the communication library layer of the
// paper: rail-aligned hierarchical collectives (AllReduce with NVLS,
// AllGather, Multi-AllReduce, PP Send/Recv) executed as real flows over the
// simulated fabric, dispatched over disjoint-path RDMA connections with the
// least-WQE balancing of Appendix B.
//
// Inter-host stages run as synchronous ring rounds of simulated flows, so
// congestion, ECMP collisions, hash polarization and failures all shape the
// timing. Intra-host stages (NVLink/NVSwitch) are analytic delays with
// calibrated effective bandwidths; they are identical across fabrics and
// therefore never affect which architecture wins, only absolute levels
// (DESIGN.md, "Key modeling decisions").
package collective

import (
	"fmt"
	"math"

	"hpn/internal/memo"
	"hpn/internal/netsim"
	"hpn/internal/rdma"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
)

// PathPolicy selects how per-pair connections are established.
type PathPolicy uint8

// Path policies, from HPN's scheme down to the baselines.
const (
	// PolicyDisjoint is HPN's: RePaC-predicted pairwise disjoint paths +
	// least-WQE dispatch (Algorithms 1 and 2).
	PolicyDisjoint PathPolicy = iota
	// PolicyBlind opens the same number of connections without predicting
	// paths (they may overlap), still balancing by WQE counters — the
	// "blindly select multiple paths" host-based baseline.
	PolicyBlind
	// PolicySingle uses one connection per pair (classic single-QP rings).
	PolicySingle
)

// Config tunes the library.
type Config struct {
	// ConnsPerPair is the number of RDMA connections per ring neighbor.
	ConnsPerPair int
	// ChunksPerMessage splits each ring-step message for dispatch across
	// connections (Algorithm 2 picks per chunk).
	ChunksPerMessage int
	Policy           PathPolicy

	// NVLS enables NVSwitch in-network reduction for AllReduce intra-host
	// stages.
	NVLS bool
	// NVLinkReduceGBps is the effective per-GPU NVLink bandwidth for
	// NVLS-accelerated reduce/allgather stages of AllReduce (GB/s).
	NVLinkReduceGBps float64
	// NVLinkGatherGBps is the effective per-GPU NVSwitch bandwidth for the
	// AllGather intra-host stage (GB/s); this is the bound that makes
	// Figure 17b insensitive to the fabric.
	NVLinkGatherGBps float64

	// SportBase, when non-zero, seeds the source-port sweep used during
	// connection establishment; varying it re-rolls every ECMP placement
	// (useful for multi-trial experiments).
	SportBase uint16
}

// DefaultConfig returns production-shaped settings (H800-class hosts,
// NCCL 2.18-like behaviour).
func DefaultConfig() Config {
	return Config{
		ConnsPerPair:     2,
		ChunksPerMessage: 2,
		Policy:           PolicyDisjoint,
		NVLS:             true,
		NVLinkReduceGBps: 400,
		NVLinkGatherGBps: 100,
	}
}

// Group is a set of hosts (all 8 rails of each) that perform collectives
// together, with the ring connections pre-established.
type Group struct {
	Net   *netsim.Sim
	Cfg   Config
	Hosts []int
	Rails int

	// conns[rail][i] connects Hosts[i] -> Hosts[(i+1)%len] on that rail.
	conns [][]*rdma.ConnSet

	// tid is the group's trace track; groups are keyed by their first host
	// so concurrent groups render on separate rows.
	tid       int
	ctrOps    *telemetry.Counter
	ctrRounds *telemetry.Counter
}

// NewGroup establishes ring connections among hosts over all rails.
func NewGroup(net *netsim.Sim, cfg Config, hosts []int, rails int) (*Group, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("collective: need at least 2 hosts, got %d", len(hosts))
	}
	if cfg.ConnsPerPair <= 0 {
		cfg.ConnsPerPair = 1
	}
	if cfg.ChunksPerMessage <= 0 {
		cfg.ChunksPerMessage = 1
	}
	g := &Group{Net: net, Cfg: cfg, Hosts: hosts, Rails: rails}
	g.tid = telemetry.TidCollectiveBase + hosts[0]
	g.ctrOps = net.Reg.Counter(net.MetricsPrefix+"collective_ops_total", "completed collective operations")
	g.ctrRounds = net.Reg.Counter(net.MetricsPrefix+"collective_rounds_total", "completed inter-host ring rounds")
	if net.Trace != nil {
		net.Trace.NameThread(g.tid, fmt.Sprintf("collective group@%d", hosts[0]))
	}
	opts := rdma.EstablishOpts{Conns: cfg.ConnsPerPair, MaxSweep: 512, SportBase: 20000}
	if cfg.SportBase != 0 {
		opts.SportBase = cfg.SportBase
	}
	if cfg.Policy == PolicySingle {
		opts.Conns = 1
	}
	g.conns = make([][]*rdma.ConnSet, rails)
	for r := 0; r < rails; r++ {
		g.conns[r] = make([]*rdma.ConnSet, len(hosts))
		for i := range hosts {
			src := route.Endpoint{Host: hosts[i], NIC: r}
			dst := route.Endpoint{Host: hosts[(i+1)%len(hosts)], NIC: r}
			var (
				cs  *rdma.ConnSet
				err error
			)
			switch cfg.Policy {
			case PolicyBlind:
				cs, err = establishBlind(net, src, dst, opts)
			default:
				cs, err = rdma.EstablishConns(net, src, dst, opts)
			}
			if err != nil {
				return nil, fmt.Errorf("collective: ring %d->%d rail %d: %w", hosts[i], dst.Host, r, err)
			}
			g.conns[r][i] = cs
		}
	}
	return g, nil
}

// establishBlind opens conns on consecutive source ports without path
// prediction: whatever ECMP gives, possibly overlapping.
func establishBlind(net *netsim.Sim, src, dst route.Endpoint, opt rdma.EstablishOpts) (*rdma.ConnSet, error) {
	cs := &rdma.ConnSet{Net: net}
	planes := len(net.Top.Hosts[src.Host].NICs[src.NIC].Ports)
	sport := opt.SportBase
	for i := 0; i < opt.Conns; i++ {
		sport++
		cs.Conns = append(cs.Conns, &rdma.Conn{
			Src: src, Dst: dst, Sport: sport, Plane: i % planes,
		})
	}
	return cs, nil
}

// Probes reports the total candidate paths examined during establishment —
// the measured counterpart of Table 1's search space.
func (g *Group) Probes() int {
	total := 0
	for _, rail := range g.conns {
		for _, cs := range rail {
			total += cs.Probes
		}
	}
	return total
}

// GPUs returns the number of GPUs in the group.
func (g *Group) GPUs() int { return len(g.Hosts) * g.Rails }

// ScheduleFingerprint folds the group's static traffic shape into an
// iteration-memoization fingerprint: membership, ring layout, the config
// knobs that change chunking or timing, and every established connection's
// pinned source port and plane. Two iterations launched through groups
// with equal fingerprints (over equal fabric state) produce identical
// flow schedules. Dynamic per-connection counters (WQE bytes, sent-byte
// totals) are excluded: WQEs are always drained at iteration boundaries,
// and sent-byte totals don't influence dispatch.
func (g *Group) ScheduleFingerprint(h *memo.Hasher) {
	h.Mix(uint64(len(g.Hosts)))
	for _, host := range g.Hosts {
		h.Mix(uint64(host))
	}
	h.Mix(uint64(g.Rails))
	h.Mix(uint64(g.Cfg.ConnsPerPair))
	h.Mix(uint64(g.Cfg.ChunksPerMessage))
	h.Mix(uint64(g.Cfg.Policy))
	nvls := uint64(0)
	if g.Cfg.NVLS {
		nvls = 1
	}
	h.Mix(nvls)
	h.Mix(math.Float64bits(g.Cfg.NVLinkReduceGBps))
	h.Mix(math.Float64bits(g.Cfg.NVLinkGatherGBps))
	for _, rail := range g.conns {
		for _, cs := range rail {
			if cs == nil {
				continue
			}
			h.Mix(uint64(len(cs.Conns)))
			for _, cn := range cs.Conns {
				h.Mix(uint64(cn.Sport)<<8 | uint64(cn.Plane))
			}
		}
	}
}

// Result reports one collective's outcome.
type Result struct {
	Op      string
	Bytes   float64
	Elapsed sim.Time
	// AlgBW = Bytes / Elapsed; BusBW follows the NCCL convention for the
	// operation.
	AlgBW float64
	BusBW float64
}

// Op is an in-flight collective; Done fires its callback.
type Op struct {
	g       *Group
	name    string
	bytes   float64
	chunk   float64 // per pair per step
	steps   int
	rails   []int
	pre     sim.Time
	post    sim.Time
	started sim.Time

	// postOverlapsInter marks ops (AllGather) whose NVSwitch stage is
	// pipelined with the inter-host rings: the op finishes at
	// max(inter completion, start + post) instead of inter + post.
	postOverlapsInter bool

	step       int
	pending    int
	roundStart sim.Time
	onDone     func(now sim.Time, r Result)

	// doneFn is o.flowDone bound once at start: evaluating the method value
	// inside the send loop allocated a closure per chunk, hundreds per ring
	// round.
	doneFn func(now sim.Time)
}

// busFactor returns the BusBW multiplier for the op (NCCL conventions).
func (o *Op) busFactor() float64 {
	n := float64(o.g.GPUs())
	switch o.name {
	case "allreduce":
		return 2 * (n - 1) / n
	case "allgather":
		return (n - 1) / n
	case "multiallreduce":
		h := float64(len(o.g.Hosts))
		return 2 * (h - 1) / h
	default:
		return 1
	}
}

package collective

import (
	"math"
	"testing"

	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func newNet(t *testing.T, segments, hosts, aggs int) *netsim.Sim {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(segments, hosts, aggs))
	if err != nil {
		t.Fatal(err)
	}
	return netsim.New(sim.New(), top)
}

func hostsRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewGroupEstablishesRings(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.GPUs() != 64 {
		t.Fatalf("GPUs = %d, want 64", g.GPUs())
	}
	if g.Probes() == 0 {
		t.Fatal("no establishment probes recorded")
	}
	for r := 0; r < 8; r++ {
		for i := range g.Hosts {
			if len(g.conns[r][i].Conns) == 0 {
				t.Fatalf("missing conns rail %d pair %d", r, i)
			}
		}
	}
}

func TestGroupRejectsTooFewHosts(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	if _, err := NewGroup(net, DefaultConfig(), []int{0}, 8); err == nil {
		t.Fatal("1-host group accepted")
	}
}

// AllReduce within one segment: the inter-host stage is ToR-local on each
// rail, so its duration must closely match the analytic ring time
// 2(H-1)/H * S/8 / 400Gbps plus the two NVLink stages.
func TestAllReduceMatchesAnalyticBound(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	cfg := DefaultConfig()
	g, err := NewGroup(net, cfg, hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 256 << 20
	res, err := g.AllReduce(S)
	if err != nil {
		t.Fatal(err)
	}
	h := 8.0
	inter := 2 * (h - 1) / h * (S / 8.0) / 50e9 // 400Gbps NIC = 50 GB/s
	intra := 2 * S * (7.0 / 8) / (cfg.NVLinkReduceGBps * 1e9)
	want := inter + intra
	got := res.Elapsed.Seconds()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("AllReduce elapsed %v s, want ~%v s", got, want)
	}
	if res.BusBW <= 0 || res.AlgBW <= 0 {
		t.Fatal("bandwidths not reported")
	}
	// BusBW = 2(n-1)/n * algbw.
	n := 64.0
	if math.Abs(res.BusBW-res.AlgBW*2*(n-1)/n) > 1e-6*res.BusBW {
		t.Fatal("BusBW convention violated")
	}
}

// AllGather must be insensitive to message path quality when the NVSwitch
// stage dominates (Figure 17b's story).
func TestAllGatherNVSwitchBound(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	cfg := DefaultConfig()
	g, err := NewGroup(net, cfg, hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 1 << 30
	res, err := g.AllGather(S)
	if err != nil {
		t.Fatal(err)
	}
	intra := S * (7.0 / 8) / (cfg.NVLinkGatherGBps * 1e9)
	if res.Elapsed.Seconds() < intra*0.999 {
		t.Fatalf("AllGather %v s faster than its NVSwitch stage %v s", res.Elapsed.Seconds(), intra)
	}
	// The NVSwitch stage must be the dominant term (>60% of total).
	if intra/res.Elapsed.Seconds() < 0.6 {
		t.Fatalf("NVSwitch stage only %.0f%% of AllGather; model should be NVSwitch-bound",
			100*intra/res.Elapsed.Seconds())
	}
}

// Multi-AllReduce pushes all data through the network: its elapsed time
// must be >= the pure network ring bound and have no NVLink component.
func TestMultiAllReduce(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 256 << 20
	res, err := g.MultiAllReduce(S)
	if err != nil {
		t.Fatal(err)
	}
	h := 8.0
	bound := 2 * (h - 1) / h * S / 50e9
	got := res.Elapsed.Seconds()
	if got < bound*0.99 {
		t.Fatalf("Multi-AllReduce %v s beats the ring bound %v s", got, bound)
	}
	if got > bound*1.5 {
		t.Fatalf("Multi-AllReduce %v s far above bound %v s on an uncontended segment", got, bound)
	}
}

// Larger messages must take proportionally longer (fluid model sanity).
func TestScalingWithSize(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	small, err := g.AllReduce(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	big, err := g.AllReduce(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Elapsed.Seconds() / small.Elapsed.Seconds()
	if ratio < 7 || ratio > 9 {
		t.Fatalf("8x size scaled time by %.2f, want ~8", ratio)
	}
}

// Busbw convention for AllGather.
func TestAllGatherBusBW(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.AllGather(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	n := 32.0
	if math.Abs(res.BusBW-res.AlgBW*(n-1)/n) > 1e-6*res.BusBW {
		t.Fatal("AllGather BusBW convention violated")
	}
}

// PP Send/Recv between two hosts.
func TestSend(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	if err := g.StartSend(0, 1, 0, 6<<20, func(_ sim.Time, r Result) { res, done = r, true }); err != nil {
		t.Fatal(err)
	}
	net.Eng.Run()
	if !done {
		t.Fatal("send never completed")
	}
	// 6MB over 200G port (single conn uses one plane): >= 0.24ms.
	if res.Elapsed.Seconds() < 6e6*8/400e9*0.9 {
		t.Fatalf("send too fast: %v", res.Elapsed)
	}
}

// The disjoint policy must not be slower than the single-connection policy
// on a contended cross-segment workload, and concurrent AllReduces should
// see a measurable benefit (the §6.1 optimization).
func TestDisjointBeatsSingleUnderContention(t *testing.T) {
	mk := func(policy PathPolicy) float64 {
		top, err := topo.BuildHPN(topo.SmallHPN(2, 8, 4))
		if err != nil {
			t.Fatal(err)
		}
		net := netsim.New(sim.New(), top)
		cfg := DefaultConfig()
		cfg.Policy = policy
		if policy == PolicySingle {
			cfg.ConnsPerPair = 1
			cfg.ChunksPerMessage = 1
		}
		// Group spanning both segments: cross-segment ring traffic.
		g, err := NewGroup(net, cfg, hostsRange(16), 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.AllReduce(256 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.BusBW
	}
	disjoint := mk(PolicyDisjoint)
	single := mk(PolicySingle)
	if disjoint < single*0.98 {
		t.Fatalf("disjoint busbw %v < single %v", disjoint, single)
	}
}

func TestOpRejectsBadSize(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.StartAllReduce(0, nil); err == nil {
		t.Fatal("zero-size allreduce accepted")
	}
	if _, err := g.StartAllGather(-1, nil); err == nil {
		t.Fatal("negative allgather accepted")
	}
	if _, err := g.StartMultiAllReduce(0, nil); err == nil {
		t.Fatal("zero multiallreduce accepted")
	}
}

func TestReduceScatter(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 256 << 20
	res, err := g.ReduceScatter(S)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := g.AllReduce(S)
	if err != nil {
		t.Fatal(err)
	}
	// ReduceScatter is roughly half an AllReduce (one ring pass, one
	// NVLink stage).
	ratio := res.Elapsed.Seconds() / ar.Elapsed.Seconds()
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("reduce-scatter/allreduce ratio %v, want ~0.5", ratio)
	}
}

func TestBroadcast(t *testing.T) {
	net := newNet(t, 1, 8, 8)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const S = 256 << 20
	res, err := g.Broadcast(S)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline ring: (H-1) x (S/8 per rail conn pair at 2x200G); lower
	// bound at one hop of the full rail shard.
	hop := float64(S) / 8 / 50e9
	if res.Elapsed.Seconds() < hop {
		t.Fatalf("broadcast %v s beats single-hop bound %v s", res.Elapsed.Seconds(), hop)
	}
	if res.BusBW <= 0 {
		t.Fatal("no busbw")
	}
}

func TestPrimitivesRejectBadSize(t *testing.T) {
	net := newNet(t, 1, 4, 4)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.StartReduceScatter(0, nil); err == nil {
		t.Fatal("zero reduce-scatter accepted")
	}
	if _, err := g.StartBroadcast(-3, nil); err == nil {
		t.Fatal("negative broadcast accepted")
	}
}

// A collective survives a mid-operation access-link failure on a dual-ToR
// fabric: the op stalls through convergence and then completes.
func TestAllReduceSurvivesMidOpFailure(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.New(eng, top)
	g, err := NewGroup(net, DefaultConfig(), hostsRange(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	if _, err := g.StartAllReduce(2<<30, func(_ sim.Time, r Result) { res, done = r, true }); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(2*sim.Millisecond, func() {
		net.FailCable(top.AccessLink(0, 0, 0))
	})
	eng.Run()
	if !done {
		t.Fatal("collective never completed after failover")
	}
	// It must have absorbed at least the convergence delay.
	if res.Elapsed < sim.Second {
		t.Fatalf("elapsed %v suspiciously fast given a 1s convergence stall", res.Elapsed)
	}
}

package collective

import (
	"fmt"

	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
)

// AllToAllResult extends Result with reachability accounting: on rail-only
// fabrics cross-rail shards have no path at all, which is exactly the
// limitation that made the paper reject a rail-only tier2 (§10).
type AllToAllResult struct {
	Result
	// FlowsSent / FlowsUnreachable partition the shard transfers.
	FlowsSent        int
	FlowsUnreachable int
}

// StartAllToAll begins an MoE-style all-to-all of `bytes` per GPU: every
// GPU scatters equal shards to every GPU of every other host, source and
// destination rails mixed (experts live on arbitrary ranks). Shard flows
// that have no fabric path (rail-only tier2) are counted unreachable and
// excluded from the completion barrier rather than deadlocking it.
func (g *Group) StartAllToAll(bytes float64, onDone func(sim.Time, AllToAllResult)) error {
	if bytes <= 0 {
		return fmt.Errorf("collective: non-positive size")
	}
	h := len(g.Hosts)
	if h < 2 {
		return fmt.Errorf("collective: all-to-all needs >=2 hosts")
	}
	started := g.Net.Eng.Now()
	res := &AllToAllResult{}
	res.Op = "alltoall"
	res.Bytes = bytes

	// Each source GPU (host, rail) owns `bytes`, split into n-1 remote
	// shards; shards to co-hosted GPUs ride NVLink and are not fabric
	// traffic. Destination NICs rotate over all rails.
	shard := bytes / float64(g.GPUs()-1)
	pending := 0
	finish := func(now sim.Time) {
		el := now - started
		res.Elapsed = el
		if el > 0 {
			res.AlgBW = bytes / el.Seconds()
			res.BusBW = res.AlgBW
		}
		if onDone != nil {
			onDone(now, *res)
		}
	}
	flowDone := func(now sim.Time, _ *netsim.Flow) {
		pending--
		if pending == 0 {
			finish(now)
		}
	}
	for si, srcHost := range g.Hosts {
		for sr := 0; sr < g.Rails; sr++ {
			for di, dstHost := range g.Hosts {
				if si == di {
					continue
				}
				// One aggregated flow per destination NIC; rotate the
				// destination rail so cross-rail pairs are exercised.
				dr := (sr + di) % g.Rails
				src := route.Endpoint{Host: srcHost, NIC: sr}
				dst := route.Endpoint{Host: dstHost, NIC: dr}
				f, err := g.Net.StartFlow(src, dst, shard*float64(g.Rails), netsim.FlowOpts{
					SrcPort:    -1,
					OnComplete: flowDone,
				})
				if err != nil || f.Stalled {
					res.FlowsUnreachable++
					if f != nil && f.Stalled {
						// A shard with no fabric path would never complete;
						// drop it rather than deadlock the barrier.
						g.Net.AbortFlow(f)
					}
					continue
				}
				res.FlowsSent++
				pending++
			}
		}
	}
	if pending == 0 {
		finish(g.Net.Eng.Now())
		return nil
	}
	return nil
}

// AllToAll runs a blocking all-to-all and reports the result.
func (g *Group) AllToAll(bytes float64) (AllToAllResult, error) {
	var (
		out  AllToAllResult
		done bool
	)
	if err := g.StartAllToAll(bytes, func(_ sim.Time, r AllToAllResult) { out, done = r, true }); err != nil {
		return AllToAllResult{}, err
	}
	g.Net.Eng.RunWhile(func() bool { return !done })
	if !done {
		return AllToAllResult{}, fmt.Errorf("collective: all-to-all stalled")
	}
	return out, nil
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double-cancel must be a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := New()
	var ev2 *Event
	fired := false
	e.Schedule(1, func() { e.Cancel(ev2) })
	ev2 = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12 after RunUntil", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestEngineScheduleInsideEvent(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(10, tick)
		}
	}
	e.Schedule(10, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestNextAt(t *testing.T) {
	e := New()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	ev := e.Schedule(7, func() {})
	if at, ok := e.NextAt(); !ok || at != 7 {
		t.Fatalf("NextAt = %v,%v want 7,true", at, ok)
	}
	e.Cancel(ev)
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt returned canceled event")
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (2 * Second).String(); got != "2s" {
		t.Fatalf("String = %q, want 2s", got)
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
}

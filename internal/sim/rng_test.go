package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const mean, n = 3.5, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	const mean, sd, n = 10.0, 2.0, 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05 || math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Normal moments: mean=%v sd=%v", m, math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate %v", p)
	}
}

package sim

import "testing"

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(10, tick) // self-perpetuating
	}
	e.ScheduleDaemon(10, tick)
	e.Schedule(35, func() {}) // foreground work ends at t=35
	e.Run()
	if e.Now() != 35 {
		t.Errorf("Run stopped at %v, want 35", e.Now())
	}
	// Daemons at t=10,20,30 fire while the foreground event is pending.
	if ticks != 3 {
		t.Errorf("daemon fired %d times, want 3", ticks)
	}
	if e.PendingWork() != 0 {
		t.Errorf("PendingWork = %d after Run", e.PendingWork())
	}
	if e.Pending() == 0 {
		t.Error("the next daemon tick should remain queued")
	}
}

func TestRunWithOnlyDaemonsReturnsImmediately(t *testing.T) {
	e := New()
	fired := false
	e.ScheduleDaemon(5, func() { fired = true })
	e.Run()
	if fired {
		t.Error("daemon fired with no foreground work")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved to %v", e.Now())
	}
}

func TestRunUntilFiresDaemonsWhileForegroundPending(t *testing.T) {
	e := New()
	daemonAt := Time(-1)
	e.ScheduleDaemon(10, func() { daemonAt = e.Now() })
	e.Schedule(100, func() {})
	e.RunUntil(50)
	if daemonAt != 10 {
		t.Errorf("daemon fired at %v, want 10", daemonAt)
	}
	if e.Now() != 50 {
		t.Errorf("clock = %v, want 50", e.Now())
	}
	if e.PendingWork() != 1 {
		t.Errorf("PendingWork = %d, want 1 (t=100 event)", e.PendingWork())
	}
}

func TestCancelForegroundReleasesRun(t *testing.T) {
	e := New()
	ev := e.Schedule(100, func() {})
	e.ScheduleDaemon(10, func() {})
	e.Cancel(ev)
	if e.PendingWork() != 0 {
		t.Fatalf("PendingWork = %d after cancel, want 0", e.PendingWork())
	}
	e.Run() // must return immediately, not fire the daemon
	if e.Now() != 0 {
		t.Errorf("clock = %v, want 0", e.Now())
	}
}

func TestCancelDaemonKeepsForegroundCount(t *testing.T) {
	e := New()
	d := e.ScheduleDaemon(10, func() {})
	e.Schedule(20, func() {})
	e.Cancel(d)
	e.Cancel(d) // double-cancel must not corrupt the count
	if e.PendingWork() != 1 {
		t.Fatalf("PendingWork = %d, want 1", e.PendingWork())
	}
	e.Run()
	if e.Now() != 20 {
		t.Errorf("clock = %v, want 20", e.Now())
	}
}

func TestDaemonChainAcrossForegroundGaps(t *testing.T) {
	// Sampler-style scenario: work arrives in bursts; daemon samples must
	// fire in every burst but never extend the run past the last burst.
	e := New()
	var samples []Time
	var tick func()
	tick = func() {
		samples = append(samples, e.Now())
		e.ScheduleDaemon(25, tick)
	}
	e.ScheduleDaemon(25, tick)
	e.Schedule(40, func() {})
	e.Schedule(110, func() {})
	e.Run()
	if e.Now() != 110 {
		t.Errorf("Run ended at %v, want 110", e.Now())
	}
	want := []Time{25, 50, 75, 100}
	if len(samples) != len(want) {
		t.Fatalf("samples at %v, want %v", samples, want)
	}
	for i, w := range want {
		if samples[i] != w {
			t.Errorf("sample %d at %v, want %v", i, samples[i], w)
		}
	}
}

package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestShardedHubSpoke drives a 2-shard ensemble through a full round trip:
// shard work, posts into the global domain, global work, resumes posted
// back. Events must fire at their nominal times and in the conservative
// order (global never runs concurrently with a shard, ties go global).
func TestShardedHubSpoke(t *testing.T) {
	g := New()
	a, b := New(), New()
	s := NewSharded(g, []*Engine{a, b})
	var log []string
	note := func(who string, e *Engine) func() {
		return func() { log = append(log, fmt.Sprintf("%s@%v", who, e.Now())) }
	}

	// Each shard computes until t=10/t=20, then posts "done" to the hub;
	// when both arrived the hub runs at t=20 and posts resumes back.
	arrived := 0
	resume := func(dom int, e *Engine) func() {
		return func() {
			note(fmt.Sprintf("resume%d", dom), e)()
		}
	}
	done := func(dom int, e *Engine) func() {
		return func() {
			note(fmt.Sprintf("done%d", dom), g)()
			arrived++
			if arrived == 2 {
				s.Post(GlobalDomain, 5, 1, resume(1, a))
				s.Post(GlobalDomain, 5, 2, resume(2, b))
			}
		}
	}
	a.ScheduleAt(10, func() {
		note("work1", a)()
		s.Post(1, 0, GlobalDomain, done(1, a))
	})
	b.ScheduleAt(20, func() {
		note("work2", b)()
		s.Post(2, 0, GlobalDomain, done(2, b))
	})
	s.Run()

	want := []string{"work1@10ns", "work2@20ns", "done1@10ns", "done2@20ns", "resume1@25ns", "resume2@25ns"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	if s.Exchanged != 4 {
		t.Errorf("Exchanged = %d, want 4", s.Exchanged)
	}
}

// TestShardedDeterministicMerge is the exact-merge property: a run with
// workers=1 and runs with several worker counts must produce identical
// per-domain event logs, including the global log that interleaves every
// shard's posts. Shards deliberately finish in an order that differs from
// their domain order so a schedule-dependent merge would be caught.
func TestShardedDeterministicMerge(t *testing.T) {
	run := func(workers int) (global []string, local [][]string) {
		g := New()
		const K = 5
		shards := make([]*Engine, K)
		for i := range shards {
			shards[i] = New()
		}
		s := NewSharded(g, shards)
		s.SetWorkers(workers)
		local = make([][]string, K)
		for i := 0; i < K; i++ {
			i := i
			e := shards[i]
			// Later shards finish earlier; several collide at t=40.
			finish := Time(10 * (K - i))
			if i%2 == 1 {
				finish = 40
			}
			var tick func()
			ticks := 0
			tick = func() {
				ticks++
				local[i] = append(local[i], fmt.Sprintf("tick%d@%v", ticks, e.Now()))
				if e.Now() < finish {
					e.Schedule(5, tick)
					return
				}
				s.Post(i+1, 0, GlobalDomain, func() {
					global = append(global, fmt.Sprintf("done%d@%v", i, g.Now()))
				})
			}
			e.Schedule(5, tick)
		}
		// Global work at t=25 splits the shard progress into two windows.
		g.ScheduleAt(25, func() { global = append(global, fmt.Sprintf("hub@%v", g.Now())) })
		s.Run()
		return global, local
	}

	refG, refL := run(1)
	if len(refG) != 6 {
		t.Fatalf("reference global log has %d entries, want 6: %v", len(refG), refG)
	}
	for _, w := range []int{2, 4, 8} {
		gLog, lLog := run(w)
		if !reflect.DeepEqual(gLog, refG) {
			t.Errorf("workers=%d global log diverges:\n  got  %v\n  want %v", w, gLog, refG)
		}
		if !reflect.DeepEqual(lLog, refL) {
			t.Errorf("workers=%d shard logs diverge:\n  got  %v\n  want %v", w, lLog, refL)
		}
	}
}

// TestShardedDirectPostLookahead checks the lookahead contract: direct
// shard-to-shard posts are forbidden at lookahead 0 and below the declared
// lookahead, admitted at or above it.
func TestShardedDirectPostLookahead(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	g := New()
	a, b := New(), New()
	s := NewSharded(g, []*Engine{a, b})
	mustPanic("zero-lookahead direct post", func() { s.Post(1, 10, 2, func() {}) })

	s.SetLookahead(5)
	mustPanic("below-lookahead direct post", func() { s.Post(1, 4, 2, func() {}) })

	fired := false
	a.ScheduleAt(10, func() { s.Post(1, 5, 2, func() { fired = true }) })
	s.Run()
	if !fired {
		t.Error("at-lookahead direct post never delivered")
	}
	if b.Now() != 15 {
		t.Errorf("delivery at %v, want 15ns", b.Now())
	}
}

// TestShardedClampedDelivery pins the barrier-delivery clamp: a global post
// nominally timed inside a shard's already-executed window is delivered at
// the shard's clock, not in its past.
func TestShardedClampedDelivery(t *testing.T) {
	g := New()
	a, b := New(), New()
	s := NewSharded(g, []*Engine{a, b})
	// Shard 1 runs to t=30 in the first window (global's next event is at
	// 40); the global event then posts to shard 1 with nominal time 40+0,
	// fine — so instead post from shard 2's t=35 done-handler running on the
	// hub at 35, targeting shard 1 whose clock is already 30 < 35: no clamp.
	// The clamp case needs the nominal time below the receiver's clock:
	// global at t=5 posts to shard 1, which has work at t=3 and t=30 — its
	// first window (edge 5) executes t=3 only, so delivery lands at 5 > 3.
	var at Time
	a.ScheduleAt(3, func() {})
	a.ScheduleAt(30, func() {})
	g.ScheduleAt(5, func() {
		s.Post(GlobalDomain, 0, 1, func() { at = a.Now() })
	})
	s.Run()
	if at != 5 {
		t.Errorf("clamped delivery at %v, want 5ns", at)
	}

	// And the true clamp: the receiver executed past the nominal time
	// within the same window. Global's only event is at 100; shard 2 runs
	// to 50 in the first window; the global handler posts with delay 0 at
	// t=100 — nominal 100, receiver at 50: delivered at 100. Receiver
	// progress beyond the nominal time cannot happen for global posts
	// (shards pause while the hub runs), so clamping only ever moves
	// deliveries forward to the receiver's clock when the receiver idled
	// past that instant — covered above.
	_ = b
}

// TestShardedWindowCounts checks the coordinator's window/exchange counters
// are pure functions of the event schedule (identical across worker counts).
func TestShardedWindowCounts(t *testing.T) {
	build := func(workers int) *Sharded {
		g := New()
		shards := []*Engine{New(), New(), New()}
		s := NewSharded(g, shards)
		s.SetWorkers(workers)
		for i, e := range shards {
			i := i
			e.ScheduleAt(Time(10+i), func() {
				s.Post(i+1, 0, GlobalDomain, func() {})
			})
		}
		g.ScheduleAt(11, func() {})
		s.Run()
		return s
	}
	ref := build(1)
	if ref.Windows == 0 || ref.Exchanged != 3 {
		t.Fatalf("reference run: Windows=%d Exchanged=%d, want >0 and 3", ref.Windows, ref.Exchanged)
	}
	for _, w := range []int{2, 8} {
		s := build(w)
		if s.Windows != ref.Windows || s.Exchanged != ref.Exchanged {
			t.Errorf("workers=%d: Windows=%d Exchanged=%d, want %d and %d",
				w, s.Windows, s.Exchanged, ref.Windows, ref.Exchanged)
		}
	}
}

package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64-based). Every stochastic component of the simulator draws from
// an RNG stream derived from the experiment seed, so runs are reproducible
// bit-for-bit. We deliberately avoid math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed zero is remapped so the
// zero value still produces a usable stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Fork derives an independent stream labeled by id. Streams with distinct
// labels from the same parent are statistically independent.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(mix64(r.state ^ mix64(id+0x632be59bd9b4e019)))
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	//hpnlint:allow floateq -- exact zero guard: math.Log(0) is -Inf, any positive value is fine
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed sample (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	//hpnlint:allow floateq -- exact zero guard: math.Log(0) is -Inf, any positive value is fine
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

package sim

import "testing"

// TestEventPoolRecycles checks that a fired, unpinned event's storage is
// reused by a later Schedule — the free list that keeps hot dispatch paths
// allocation-free.
func TestEventPoolRecycles(t *testing.T) {
	e := New()
	ev1 := e.Schedule(1, func() {})
	e.Run()
	ev2 := e.Schedule(1, func() {})
	if ev1 != ev2 {
		t.Error("fired event was not recycled into the next Schedule")
	}
	e.Run()
}

// TestEventPoolSkipsPinned checks Pin excludes an event from recycling, so
// retained handles (netsim's completion timer) stay valid after firing.
func TestEventPoolSkipsPinned(t *testing.T) {
	e := New()
	ev1 := e.Schedule(1, func() {}).Pin()
	e.Run()
	ev2 := e.Schedule(1, func() {})
	if ev1 == ev2 {
		t.Error("pinned event was recycled; its handle would alias a live event")
	}
	if ev1.Canceled() {
		t.Error("pinned handle corrupted after firing")
	}
}

// TestEventPoolSkipsCanceled checks both cancellation shapes stay out of
// the pool: canceled before firing (the heap entry is removed, the caller
// holds the handle) and canceled during its own dispatch (netsim's
// completion event cancels itself before rescheduling).
func TestEventPoolSkipsCanceled(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Cancel(ev)
	e.Schedule(2, func() {})
	e.Run()
	if got := e.Schedule(3, func() {}); got == ev {
		t.Error("pre-fire-canceled event was recycled")
	}
	e.Run()

	e2 := New()
	var self *Event
	self = e2.Schedule(1, func() { e2.Cancel(self) })
	e2.Run()
	if got := e2.Schedule(2, func() {}); got == self {
		t.Error("self-canceled event was recycled; the canceler still holds the handle")
	}
	e2.Run()
}

// TestEventPoolScheduleInDispatch checks the common self-rescheduling
// pattern: an event that schedules its successor from inside its own fn
// must not receive its own storage (it is recycled only after fn returns).
func TestEventPoolScheduleInDispatch(t *testing.T) {
	e := New()
	var first, next *Event
	first = e.Schedule(1, func() {
		next = e.Schedule(1, func() {})
	})
	e.Run()
	if first == next {
		t.Error("event recycled into a successor scheduled during its own dispatch")
	}
}

// BenchmarkScheduleSteadyState measures the allocation rate of the
// schedule/fire cycle the pool exists to flatten.
func BenchmarkScheduleSteadyState(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func() {})
		e.Run()
	}
}

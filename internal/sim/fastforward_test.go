package sim

import "testing"

func TestFastForwardAdvancesClockAndCredits(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	seq0, proc0 := e.Seq(), e.Processed

	e.FastForward(100, 7, 3)
	if e.Now() != 100 {
		t.Fatalf("Now = %v after fast-forward, want 100", e.Now())
	}
	if e.Seq() != seq0+7 {
		t.Fatalf("Seq = %d, want %d", e.Seq(), seq0+7)
	}
	if e.Processed != proc0+3 {
		t.Fatalf("Processed = %d, want %d", e.Processed, proc0+3)
	}

	// Events scheduled after the jump run at the shifted instant.
	var at Time
	e.Schedule(5, func() { at = e.Now() })
	e.Run()
	if at != 105 {
		t.Fatalf("post-jump event ran at %v, want 105", at)
	}
}

func TestFastForwardToNowIsAllowed(t *testing.T) {
	e := New()
	e.FastForward(0, 1, 1)
	if e.Seq() != 1 || e.Processed != 1 {
		t.Fatalf("seq=%d processed=%d, want 1,1", e.Seq(), e.Processed)
	}
}

func TestFastForwardRefusesPendingJump(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("fast-forward over a pending event did not panic")
		}
	}()
	e.FastForward(20, 0, 0)
}

func TestFastForwardRefusesPast(t *testing.T) {
	e := New()
	e.Schedule(50, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("fast-forward into the past did not panic")
		}
	}()
	e.FastForward(10, 0, 0)
}

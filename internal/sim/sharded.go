// Sharded event loop: conservative time-window parallel simulation.
//
// The fabric model has no per-link propagation delay, so the classic
// conservative-PDES lookahead — "no shard can affect another sooner than
// the minimum cross-shard link latency" — degenerates to zero for
// arbitrary cross-shard traffic. What HPN's topology does guarantee is
// structural: pods only interact through the core tier (the plane-crossing
// points), so the simulation is partitioned hub-and-spoke. Each pod is a
// shard with its own Engine (heap + virtual clock); everything that spans
// pods — core links, cross-pod flows, the cross-pod phase of a collective
// — lives in one global domain whose engine only runs while every shard is
// quiescent. Windows are then derived, not configured:
//
//	W = min( next global event, min shard next event + Lookahead )
//
// With Lookahead 0 (the fabric's true cross-shard latency) the second term
// is disabled and shards simply run in parallel up to the next global
// event; with a positive Lookahead (a future fabric that models
// propagation delay) direct shard-to-shard posts are admitted as long as
// each declares a delay >= Lookahead, which provably keeps every delivery
// inside the receiver's future.
//
// Cross-domain interaction goes through per-sender mailboxes drained at
// window barriers in (sender domain ID, send sequence) order — the same
// exact-merge discipline netsim's ParallelFill established: worker count
// changes the goroutine schedule, never the merged order, so artifacts
// stay byte-identical between workers=1 and workers=N.
package sim

import (
	"fmt"
	"sync"

	"hpn/internal/prof"
)

// GlobalDomain is the domain ID of the hub: the engine that owns all
// cross-shard state and runs exclusively while shards are paused.
const GlobalDomain = 0

// post is one cross-domain message: run fn on the target domain's engine
// at virtual time at (clamped to the receiver's progress if the receiver's
// window already passed at — see Post).
type post struct {
	to int
	at Time
	fn func()
}

// Sharded coordinates one global engine plus K shard engines over
// conservative time windows. Construct with NewSharded; drive with Run.
type Sharded struct {
	engines []*Engine // index 0 = global domain, 1..K = shards
	workers int
	// lookahead is the minimum declared latency of direct shard-to-shard
	// posts; 0 means such posts are forbidden (hub-and-spoke only).
	lookahead Time

	// outbox[d] collects domain d's outgoing posts during a window. Each
	// slice has exactly one writer — the goroutine executing domain d — and
	// is drained only at barriers, so no lock is needed and the merge order
	// is deterministic by construction (sender ID, then append order, which
	// is the sender's own event order).
	outbox [][]post

	// runnable is scratch for the per-window active-shard set.
	runnable []*Engine

	phWindow   *prof.Phase // sim/window_sync: one Begin/End per parallel window
	phExchange *prof.Phase // sim/mailbox_exchange: one Begin/End per barrier drain

	// Windows counts parallel shard windows executed; Exchanged counts
	// cross-domain posts delivered. Both are pure functions of the
	// simulated run (window edges depend only on event times), so they are
	// deterministic across worker counts.
	Windows   int
	Exchanged int
}

// NewSharded builds a coordinator over the given global engine and shard
// engines. Domain IDs are GlobalDomain (0) for global and 1..len(shards)
// for the shards, in slice order.
func NewSharded(global *Engine, shards []*Engine) *Sharded {
	if global == nil {
		panic("sim: sharded coordinator needs a global engine")
	}
	engines := make([]*Engine, 0, len(shards)+1)
	engines = append(engines, global)
	engines = append(engines, shards...)
	return &Sharded{
		engines: engines,
		workers: 1,
		outbox:  make([][]post, len(engines)),
	}
}

// Shards returns the number of shard domains (excluding the global one).
func (s *Sharded) Shards() int { return len(s.engines) - 1 }

// Engine returns the engine of domain id (GlobalDomain or 1..Shards()).
func (s *Sharded) Engine(id int) *Engine { return s.engines[id] }

// SetWorkers sets how many goroutines execute shard windows; n <= 1 runs
// shards serially in domain order, which is the determinism baseline the
// golden tests compare against. Artifacts are byte-identical for every n.
func (s *Sharded) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured worker count.
func (s *Sharded) Workers() int { return s.workers }

// SetLookahead declares the minimum cross-shard interaction latency,
// admitting direct shard-to-shard posts whose delay is at least la. Zero
// (the default, and the truth for latency-free fabrics) forbids them:
// cross-shard interaction must be routed through the global domain.
func (s *Sharded) SetLookahead(la Time) {
	if la < 0 {
		la = 0
	}
	s.lookahead = la
}

// SetProfiler registers the coordinator's phases. Nil-safe.
func (s *Sharded) SetProfiler(p *prof.Profiler) {
	s.phWindow = p.Phase("sim/window_sync", "parallel shard windows executed (wall covers run+join of each window)")
	s.phExchange = p.Phase("sim/mailbox_exchange", "window-barrier mailbox drains (count via Add: posts delivered)")
}

// Post sends fn to domain `to`, to run at the sender's current time plus
// delay. It must be called from code executing on domain `from` (the
// sender's engine), which makes the append single-writer. Direct
// shard-to-shard posts require delay >= Lookahead; posts to or from the
// global domain carry no such bound because the global engine never runs
// concurrently with a shard — but their delivery still waits for the next
// barrier, so a delivery time inside the receiver's already-executed
// window is clamped forward to the receiver's clock (deterministically:
// window edges and shard progress do not depend on the worker count).
func (s *Sharded) Post(from int, delay Time, to int, fn func()) {
	if to < 0 || to >= len(s.engines) || from < 0 || from >= len(s.engines) {
		panic(fmt.Sprintf("sim: post from domain %d to domain %d out of range", from, to))
	}
	if delay < 0 {
		delay = 0
	}
	if from != GlobalDomain && to != GlobalDomain && from != to {
		if s.lookahead <= 0 {
			panic(fmt.Sprintf(
				"sim: direct shard %d->%d post is forbidden at lookahead 0; route it through the global domain", from, to))
		}
		if delay < s.lookahead {
			panic(fmt.Sprintf(
				"sim: direct shard %d->%d post with delay %v below lookahead %v; route it through the global domain",
				from, to, delay, s.lookahead))
		}
	}
	s.outbox[from] = append(s.outbox[from], post{to: to, at: s.engines[from].Now() + delay, fn: fn})
}

// exchange drains every outbox in (sender domain ID, send order) order,
// scheduling each post on its target engine as a foreground event. The
// delivery time is clamped to the receiver's clock: the receiver may have
// executed past the nominal time inside the same window, and scheduling in
// its past would reorder causality. Returns the number of posts delivered.
func (s *Sharded) exchange() int {
	delivered := 0
	tk := s.phExchange.Begin()
	for from := range s.outbox {
		box := s.outbox[from]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			p := box[i]
			target := s.engines[p.to]
			at := p.at
			if now := target.Now(); at < now {
				at = now
			}
			target.ScheduleAt(at, p.fn)
			box[i] = post{}
		}
		s.outbox[from] = box[:0]
		delivered += len(box)
	}
	s.phExchange.End(tk)
	s.phExchange.Add(int64(delivered))
	s.Exchanged += delivered
	return delivered
}

// nextFire returns the time of the next event that will actually fire on
// e: with no foreground work an engine fires nothing (daemons alone never
// run), so only engines with PendingWork contribute to window edges.
func nextFire(e *Engine) (Time, bool) {
	if e.PendingWork() == 0 {
		return 0, false
	}
	return e.NextAt()
}

// Run advances all domains in lockstep until no domain has foreground
// work and no posts are in flight. Each round either (a) runs the global
// domain exclusively up to the earliest shard event — shards are quiescent,
// so cross-shard state is owned by exactly one goroutine — or (b) runs
// every shard with work in parallel through the window ending at the next
// global event (extended by Lookahead bookkeeping when configured). Ties
// go to the global domain. The artifact streams produced are identical
// for every worker count: window edges depend only on event times, and
// mailbox merges are ordered by (sender, send seq), never by goroutine
// scheduling.
func (s *Sharded) Run() {
	for {
		s.exchange()
		gNext, gHas := nextFire(s.engines[GlobalDomain])
		minShard, sHas := MaxTime, false
		for _, sh := range s.engines[1:] {
			if t, ok := nextFire(sh); ok && t < minShard {
				minShard, sHas = t, true
			}
		}
		switch {
		case !gHas && !sHas:
			return
		case gHas && (!sHas || gNext <= minShard):
			cap := minShard
			if !sHas {
				cap = MaxTime
			}
			s.engines[GlobalDomain].RunCapped(cap)
		default:
			w := gNext
			if !gHas {
				w = MaxTime
			}
			if s.lookahead > 0 {
				if la := minShard + s.lookahead; la < w {
					w = la
				}
			}
			s.window(w)
		}
	}
}

// window executes one conservative window: every shard with a fireable
// event at or before w runs RunCapped(w), serially in domain order under
// workers=1 or fanned out over the worker pool otherwise. Shards touch
// disjoint engines and (by the hub-and-spoke contract) disjoint simulator
// state, so the only synchronization is the join; results are not merged
// here at all — cross-domain effects travel exclusively through the
// mailboxes drained by exchange.
func (s *Sharded) window(w Time) {
	tk := s.phWindow.Begin()
	runnable := s.runnable[:0]
	for _, sh := range s.engines[1:] {
		if t, ok := nextFire(sh); ok && t <= w {
			runnable = append(runnable, sh)
		}
	}
	s.runnable = runnable[:0] // keep the backing array
	if s.workers <= 1 || len(runnable) <= 1 {
		for _, sh := range runnable {
			sh.RunCapped(w)
		}
	} else {
		n := s.workers
		if n > len(runnable) {
			n = len(runnable)
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for j := 0; j < n; j++ {
			go func(j int) {
				defer wg.Done()
				for k := j; k < len(runnable); k += n {
					runnable[k].RunCapped(w)
				}
			}(j)
		}
		wg.Wait()
	}
	s.Windows++
	s.phWindow.End(tk)
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a monotonic virtual clock in nanoseconds and a binary-heap
// scheduler of timed callbacks. All time in the simulator is virtual; nothing
// here touches wall-clock time, which keeps every experiment reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"hpn/internal/prof"
	"hpn/internal/telemetry"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations expressed as virtual time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration for human-readable output.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. The zero Event is inert.
//
// Lifetime contract: once an event has fired, the engine may recycle its
// storage for a future Schedule (the free-list that keeps hot dispatch
// paths allocation-free). A caller that retains the *Event across its
// firing — to Cancel, Reschedule or inspect it later — must Pin it, or the
// handle may silently address an unrelated, recycled event. Events that
// are canceled before firing are never recycled (the canceling caller
// still holds the handle).
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index; -1 once popped or canceled
	cancel bool
	// daemon events (telemetry samplers, watchers) fire like any other
	// event while foreground work remains, but do not keep Run alive.
	daemon bool
	// pinned excludes the event from free-list recycling after it fires.
	pinned bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e != nil && e.cancel }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Pin marks the event as retained: the engine will never recycle it into
// the free list, so the handle stays valid (for Cancel / Reschedule /
// Canceled) after the event fires. Returns the event for chaining at the
// Schedule call site. Nil-safe.
func (e *Event) Pin() *Event {
	if e != nil {
		e.pinned = true
	}
	return e
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fg     int // pending non-daemon events
	tracer *telemetry.Tracer
	// Profiler phases: phRun times whole Run/RunUntil/RunWhile invocations
	// (never per-event — a time.Now pair per dispatch would dwarf the
	// dispatch itself); phDispatch is count-only, fed from the Processed
	// delta at loop exit.
	phRun      *prof.Phase
	phDispatch *prof.Phase
	// phDispatchAlloc tracks heap objects allocated inside serial run
	// loops (Run/RunUntil/RunWhile). Allocation deltas are process-global,
	// so RunCapped — which sharded windows execute concurrently — feeds
	// phRun only.
	phDispatchAlloc *prof.Phase
	// Processed counts events executed so far; useful for runaway detection.
	Processed uint64

	// free is the event free list: fired, unpinned, uncanceled events are
	// recycled here so steady-state scheduling allocates nothing.
	free []*Event
}

// eventPoolCap bounds the per-engine free list. Beyond this the garbage
// collector is cheaper than the cache pollution of a huge idle pool.
const eventPoolCap = 4096

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (not yet fired) events.
func (e *Engine) Pending() int { return len(e.events) }

// PendingWork returns the number of pending non-daemon events — the count
// that keeps Run alive.
func (e *Engine) PendingWork() int { return e.fg }

// SetTracer attaches a telemetry tracer; every dispatched event then emits
// a zero-duration span on the engine track. Pass nil to disable.
func (e *Engine) SetTracer(t *telemetry.Tracer) { e.tracer = t }

// SetProfiler attaches the engine's phases to a profiler. Pass nil to
// disable (the phases come back nil and every hook degrades to one nil
// check). The dispatch count includes events credited by FastForward — it
// mirrors Processed, so memo-on and memo-off runs report the same count.
func (e *Engine) SetProfiler(p *prof.Profiler) {
	e.phRun = p.Phase("sim/run", "event-loop invocations (Run/RunUntil/RunWhile/RunCapped); wall covers whole loops")
	e.phDispatch = p.Phase("sim/dispatch", "events dispatched (count-only; includes fast-forward credits)")
	e.phDispatchAlloc = p.PhaseAlloc("sim/dispatch_allocs", "serial run-loop invocations with heap-allocation tracking (free-list effectiveness)")
}

// Schedule runs fn after delay. A negative delay is treated as zero (fn runs
// at the current instant, after already-queued events for this instant).
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleDaemon runs fn after delay as a daemon event: it fires like any
// other event while foreground work remains, but does not keep Run (or
// RunUntil/RunWhile) alive on its own. Telemetry samplers use this so a
// self-rescheduling tick never deadlocks the simulation's exit condition.
func (e *Engine) ScheduleDaemon(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, fn, true)
}

// ScheduleAt runs fn at the absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	return e.schedule(at, fn, false)
}

func (e *Engine) schedule(at Time, fn func(), daemon bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	}
	heap.Push(&e.events, ev)
	if !daemon {
		e.fg++
	}
	return ev
}

// Reschedule moves a still-pending event to the absolute virtual time at
// and reports whether it did. A nil, fired or canceled event returns false
// (the caller schedules a fresh one). The event keeps its callback but is
// re-sequenced, so FIFO ordering among same-instant events matches a
// Cancel+Schedule pair exactly — reusing the Event only saves the
// allocation. Hot reschedulers (the flow-completion timer re-armed on every
// rate recomputation) depend on this.
func (e *Engine) Reschedule(ev *Event, at Time) bool {
	if ev == nil || ev.cancel || ev.index < 0 {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	ev.at = at
	e.seq++
	ev.seq = e.seq
	heap.Fix(&e.events, ev.index)
	return true
}

// Cancel removes a scheduled event. Canceling a fired or already-canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.events, ev.index)
	ev.index = -1
	if !ev.daemon {
		e.fg--
	}
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		if !ev.daemon {
			e.fg--
		}
		e.now = ev.at
		e.Processed++
		if e.tracer != nil {
			e.tracer.Complete(int64(ev.at), 0, "sim", "dispatch", telemetry.TidSim,
				telemetry.Arg{K: "seq", V: ev.seq})
		}
		ev.fn()
		// Recycle the fired event unless a caller retained it (Pin) or
		// canceled it during its own dispatch (the canceler holds the
		// handle). fn is dropped so the closure's captures are collectable
		// while the shell waits in the pool.
		if !ev.pinned && !ev.cancel && len(e.free) < eventPoolCap {
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		return true
	}
	return false
}

// Run fires events until no foreground work remains. Daemon events
// interleave while foreground events exist; once only daemons are left
// they stay queued and Run returns.
func (e *Engine) Run() {
	tk, n0 := e.phRun.Begin(), e.Processed
	atk := e.phDispatchAlloc.Begin()
	for e.fg > 0 && e.Step() {
	}
	e.phDispatchAlloc.End(atk)
	e.endRun(tk, n0)
}

// RunCapped fires events with timestamps <= deadline while foreground work
// remains, leaving the clock at the last fired event (unlike RunUntil it
// never advances the clock to the deadline itself). The sharded window
// scheduler uses it to advance one shard through a conservative time
// window: the shard's clock must reflect only what actually executed, so
// cross-shard deliveries clamp against real progress, not the window edge.
func (e *Engine) RunCapped(deadline Time) {
	tk, n0 := e.phRun.Begin(), e.Processed
	for e.fg > 0 {
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	e.endRun(tk, n0)
}

// RunUntil fires events with timestamps <= deadline while foreground work
// remains, then advances the clock to the deadline. Events scheduled
// beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	tk, n0 := e.phRun.Begin(), e.Processed
	atk := e.phDispatchAlloc.Begin()
	defer e.phDispatchAlloc.End(atk)
	for e.fg > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.endRun(tk, n0)
}

// RunWhile fires events while cond() remains true and foreground work
// remains.
func (e *Engine) RunWhile(cond func() bool) {
	tk, n0 := e.phRun.Begin(), e.Processed
	for cond() && e.fg > 0 && e.Step() {
	}
	e.endRun(tk, n0)
}

// endRun closes one loop invocation: the elapsed wall into sim/run, the
// Processed delta into sim/dispatch.
func (e *Engine) endRun(tk prof.Token, n0 uint64) {
	e.phDispatch.Add(int64(e.Processed - n0))
	e.phRun.End(tk)
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].cancel {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}

// NextAt returns the time of the next pending event and ok=false if none.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Seq returns the sequence cursor: the number of events sequenced so far.
// schedule and Reschedule stamp this into every event as the same-instant
// tie-breaker, so the delta between two readings is exactly how many
// sequence numbers a window of simulation consumed. Iteration memoization
// records that delta and credits it back through FastForward, keeping
// post-replay event ordering identical to a re-simulated run.
func (e *Engine) Seq() uint64 { return e.seq }

// FastForward advances the clock to at without dispatching anything,
// crediting seqDelta sequence numbers and processedDelta dispatched events
// as if the skipped window had actually run. It refuses to jump over
// pending work — an event scheduled before at would be silently reordered
// — and over the past. Iteration memoization calls this after applying a
// recorded window's effects; nothing else should.
func (e *Engine) FastForward(at Time, seqDelta, processedDelta uint64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: fast-forward to %v before now %v", at, e.now))
	}
	if ev := e.peek(); ev != nil && ev.at < at {
		panic(fmt.Sprintf("sim: fast-forward to %v over pending event at %v", at, ev.at))
	}
	e.now = at
	e.seq += seqDelta
	e.Processed += processedDelta
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a monotonic virtual clock in nanoseconds and a binary-heap
// scheduler of timed callbacks. All time in the simulator is virtual; nothing
// here touches wall-clock time, which keeps every experiment reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations expressed as virtual time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration for human-readable output.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index; -1 once popped or canceled
	cancel bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e != nil && e.cancel }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Processed counts events executed so far; useful for runaway detection.
	Processed uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (not yet fired) events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay. A negative delay is treated as zero (fn runs
// at the current instant, after already-queued events for this instant).
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Cancel removes a scheduled event. Canceling a fired or already-canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile fires events while cond() remains true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].cancel {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}

// NextAt returns the time of the next pending event and ok=false if none.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

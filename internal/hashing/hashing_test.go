package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func someFlows(n int) []FiveTuple {
	flows := make([]FiveTuple, n)
	for i := range flows {
		flows[i] = FiveTuple{
			SrcAddr: uint32(i/100 + 1),
			DstAddr: uint32(i%100 + 1000),
			SrcPort: uint16(49152 + i),
			DstPort: 4791, // RoCEv2
			Proto:   17,
		}
	}
	return flows
}

func TestHashDeterminism(t *testing.T) {
	h := Hasher{Seed: 42}
	f := FiveTuple{1, 2, 3, 4, 5}
	if h.Hash(f) != h.Hash(f) {
		t.Fatal("hash not deterministic")
	}
	if (Hasher{Seed: 42}).Hash(f) != h.Hash(f) {
		t.Fatal("hash depends on hasher identity, not seed")
	}
	if (Hasher{Seed: 43}).Hash(f) == h.Hash(f) {
		t.Fatal("different seeds produced identical hash (astronomically unlikely)")
	}
}

func TestSelectRange(t *testing.T) {
	f := func(seed uint64, src, dst uint32, sp, dp uint16, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		got := Hasher{Seed: seed}.Select(FiveTuple{src, dst, sp, dp, 17}, n)
		return got >= 0 && got < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPanicsOnEmptyGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Select over empty group did not panic")
		}
	}()
	Hasher{}.Select(FiveTuple{}, 0)
}

func TestUniformity(t *testing.T) {
	h := Hasher{Seed: 7}
	const n = 16
	counts := make([]int, n)
	flows := someFlows(16000)
	for _, f := range flows {
		counts[h.Select(f, n)]++
	}
	want := float64(len(flows)) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Fatalf("bucket %d = %d, want ~%v (>15%% off)", i, c, want)
		}
	}
}

// The core polarization result: with the SAME hash function at two cascaded
// tiers and equal group widths, every first-stage bucket maps to exactly one
// second-stage bucket — the downstream ECMP degenerates completely.
func TestHashPolarizationSameFunction(t *testing.T) {
	flows := someFlows(4000)
	same := Hasher{Seed: 99}
	grid := PolarizationExperiment(flows, same, same, 8, 8)
	for b1, row := range grid {
		nonEmpty := 0
		for _, c := range row {
			if c > 0 {
				nonEmpty++
			}
		}
		if nonEmpty > 1 {
			t.Fatalf("bucket %d spread over %d downstream buckets; same-function cascade must polarize", b1, nonEmpty)
		}
	}
}

// With independent seeds per tier the second stage re-balances.
func TestNoPolarizationIndependentSeeds(t *testing.T) {
	flows := someFlows(8000)
	grid := PolarizationExperiment(flows, Hasher{Seed: 1}, Hasher{Seed: 2}, 8, 8)
	for b1, row := range grid {
		if Imbalance(row) > 1.5 {
			t.Fatalf("bucket %d imbalance %v with independent seeds", b1, Imbalance(row))
		}
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int{10, 10}); got != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
	if got := Imbalance([]int{30, 10}); got != 1.5 {
		t.Fatalf("imbalance = %v, want 1.5", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]int{0, 0}) != 0 {
		t.Fatal("degenerate imbalance must be 0")
	}
}

func TestRatioImbalance(t *testing.T) {
	if got := RatioImbalance([]float64{5, 5}, 10); got != 1 {
		t.Fatalf("even ratio = %v, want 1", got)
	}
	if got := RatioImbalance([]float64{30, 10}, 10); got != 3 {
		t.Fatalf("3:1 ratio = %v, want 3", got)
	}
	// The fig13 clamp: a starved port is reported as the cap, not infinity,
	// and any finite ratio above the cap saturates there too.
	if got := RatioImbalance([]float64{7, 0}, 10); got != 10 {
		t.Fatalf("starved port ratio = %v, want the cap 10", got)
	}
	if got := RatioImbalance([]float64{5000, 1}, 10); got != 10 {
		t.Fatalf("over-cap ratio = %v, want clamped 10", got)
	}
	// No traffic anywhere is balanced by convention, as is nothing at all.
	if RatioImbalance([]float64{0, 0}, 10) != 1 || RatioImbalance(nil, 10) != 1 {
		t.Fatal("no-traffic ratio must be 1")
	}
	// cap <= 0 disables the clamp entirely.
	if got := RatioImbalance([]float64{5000, 1}, 0); got != 5000 {
		t.Fatalf("unclamped ratio = %v, want 5000", got)
	}
	if got := RatioImbalance([]float64{7, 0}, 0); !math.IsInf(got, 1) {
		t.Fatalf("unclamped starved ratio = %v, want +Inf", got)
	}
}

func TestPortHasherIgnoresTuple(t *testing.T) {
	p := PortHasher{Seed: 5}
	// Same (port, pod) must always map to the same egress, for any flow.
	want := p.Select(3, 7, 16)
	for i := 0; i < 100; i++ {
		if p.Select(3, 7, 16) != want {
			t.Fatal("per-port hash not deterministic")
		}
	}
	// Different ingress ports should spread across egresses.
	counts := make([]int, 16)
	for port := 0; port < 160; port++ {
		counts[p.Select(port, 7, 16)]++
	}
	if Imbalance(counts) > 2.0 {
		t.Fatalf("per-port hash badly imbalanced: %v", counts)
	}
}

func TestPortHasherFallback(t *testing.T) {
	p := PortHasher{Seed: 5}
	f := FiveTuple{1, 2, 3, 4, 17}
	if got := p.FallbackSelect(f, 16); got != (Hasher{Seed: 5}).Select(f, 16) {
		t.Fatal("fallback must be the default 5-tuple hash")
	}
}

// RePaC property: the host-side prediction matches what the switch does,
// for every flow and group size.
func TestPredictorExact(t *testing.T) {
	f := func(seed uint64, src, dst uint32, sp uint16, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		h := Hasher{Seed: seed}
		tuple := FiveTuple{src, dst, sp, 4791, 17}
		return Predictor{}.Member(h, tuple, n) == h.Select(tuple, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Changing only the source port must move the hash (otherwise disjoint-path
// search by sport sweep could not work).
func TestSrcPortSensitivity(t *testing.T) {
	h := Hasher{Seed: 11}
	base := FiveTuple{10, 20, 1000, 4791, 17}
	moved := 0
	for sp := uint16(1001); sp < 1101; sp++ {
		f := base
		f.SrcPort = sp
		if h.Select(f, 60) != h.Select(base, 60) {
			moved++
		}
	}
	if moved < 90 {
		t.Fatalf("only %d/100 sport changes moved the bucket", moved)
	}
}

func BenchmarkHash(b *testing.B) {
	h := Hasher{Seed: 1}
	f := FiveTuple{1, 2, 3, 4, 17}
	for i := 0; i < b.N; i++ {
		f.SrcPort = uint16(i)
		_ = h.Select(f, 60)
	}
}

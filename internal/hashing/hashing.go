// Package hashing models the ECMP hash machinery of data-center switches.
//
// It provides:
//
//   - FiveTuple: the flow key hashed by every switch on the path.
//   - Hasher: a deterministic per-switch hash over a FiveTuple. Switches can
//     be configured with the same function everywhere ("legacy" mode, which
//     exhibits hash polarization exactly as §2.2 of the paper describes) or
//     with per-switch seeds.
//   - Per-port hashing (§7): a Core-switch mode where the egress choice is a
//     function of (ingress port, destination pod) alone, 5-tuple irrelevant.
//   - RePaC-style hash prediction: because the hash is deterministic and its
//     parameters are known to the host, a sender can compute — not guess —
//     which member of each ECMP group a given source port will select. This
//     is the property HPN's path selection (§6.1, Appendix B) relies on.
package hashing

import "math"

// FiveTuple identifies a flow the way switch ASICs see it. Addresses are
// abstract endpoint IDs (the simulator does not need real IPs; any stable
// integer identity hashes the same way).
type FiveTuple struct {
	SrcAddr uint32
	DstAddr uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Word packs the tuple into a single 64-bit word mixing all fields; the
// packing is what the hash functions consume.
func (t FiveTuple) Word() uint64 {
	w := uint64(t.SrcAddr)<<32 | uint64(t.DstAddr)
	w ^= uint64(t.SrcPort)<<48 | uint64(t.DstPort)<<16 | uint64(t.Proto)
	return w
}

// Hasher is a seeded deterministic flow hash, standing in for the CRC-based
// field hash of a switching chip. Distinct seeds give statistically
// independent functions; a shared seed reproduces the "same hash function at
// every tier" deployment that causes polarization.
type Hasher struct {
	Seed uint64
}

// Hash returns the raw 64-bit hash of the tuple.
func (h Hasher) Hash(t FiveTuple) uint64 {
	return mix(t.Word() ^ mix(h.Seed))
}

// Select picks an ECMP member index in [0, n). It panics if n <= 0 — an
// empty ECMP group is a routing bug that must not be masked here.
func (h Hasher) Select(t FiveTuple, n int) int {
	if n <= 0 {
		panic("hashing: Select over empty ECMP group")
	}
	return int(h.Hash(t) % uint64(n))
}

// mix is the SplitMix64 finalizer: full-avalanche, invertible, fast.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PortHasher implements the §7 Core-layer "per-port hash": traffic toward
// pod i arriving on physical port j deterministically leaves on uplink
// k = f(i, j), independent of the 5-tuple. On uplink failure the switch
// falls back to the default 5-tuple hash (FallbackSelect).
type PortHasher struct {
	Seed uint64
}

// Select returns the egress index in [0, n) for traffic to dstPod arriving
// on ingressPort. The mapping is an engineered per-pod rotation — injective
// in the ingress port — so no two ingress links can pile onto one egress
// link, which is precisely how the prior per-port hash eliminates
// polarization at tier3 (§7).
func (p PortHasher) Select(ingressPort, dstPod, n int) int {
	if n <= 0 {
		panic("hashing: PortHasher.Select over empty group")
	}
	offset := int(mix(uint64(dstPod)^mix(p.Seed)) % uint64(n))
	return ((ingressPort % n) + offset) % n
}

// FallbackSelect is the failure-case 5-tuple hash (§7: "traffic would fall
// back to execute the default 5-tuple-based hash").
func (p PortHasher) FallbackSelect(t FiveTuple, n int) int {
	return Hasher{Seed: p.Seed}.Select(t, n)
}

// Predictor gives hosts RePaC-style visibility into switch hashing: with
// the switch hash parameters known, a host can compute the exact ECMP member
// each (tuple, switch) pair selects, and therefore search source ports that
// yield disjoint paths.
type Predictor struct{}

// Member returns the ECMP member a switch with the given hasher selects.
// It is exact, not probabilistic — that is RePaC's "reprint the exact hash
// results in each switch".
func (Predictor) Member(h Hasher, t FiveTuple, n int) int { return h.Select(t, n) }

// Imbalance quantifies load imbalance of a bucket-count vector as
// max/mean. A perfectly balanced split gives 1.0; the paper's Figure 13a
// shows ~3x between two ToR ports.
func Imbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	maxC, sum := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxC) / mean
}

// RatioImbalance quantifies imbalance of a load vector as max/min — the
// per-NIC port-ratio metric of Figure 13, where 1.0 is perfectly even and
// the paper reports ~3x between the two ports of a dual-ToR NIC. A vector
// carrying no traffic at all reports 1 (nothing is imbalanced); a starved
// member (zero load while others carry traffic) makes the ratio infinite
// and is clamped to cap, as is any finite ratio above it. cap <= 0 disables
// the clamp (starvation then reports +Inf). This is the single definition
// shared by the fig13 experiment and the in-band forensics, so the two
// can never drift apart.
func RatioImbalance(loads []float64, cap float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	hi, lo := loads[0], loads[0]
	for _, v := range loads[1:] {
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	if hi <= 0 {
		return 1
	}
	r := math.Inf(1)
	if lo > 0 {
		r = hi / lo
	}
	if cap > 0 && r > cap {
		return cap
	}
	return r
}

// PolarizationExperiment sends the given flows through two cascaded hashing
// stages of fanout n1 then n2 and returns, for each first-stage bucket, the
// distribution across second-stage buckets. With identical hashers the
// second stage degenerates (polarizes): flows that agreed at stage one agree
// again at stage two.
func PolarizationExperiment(flows []FiveTuple, stage1, stage2 Hasher, n1, n2 int) [][]int {
	out := make([][]int, n1)
	for i := range out {
		out[i] = make([]int, n2)
	}
	for _, f := range flows {
		b1 := stage1.Select(f, n1)
		b2 := stage2.Select(f, n2)
		out[b1][b2]++
	}
	return out
}

package hashing

// This file implements the mechanism RePaC ("Hashing Linearity Enables
// Relative Path Control", ATC'21) actually exploits: switch ASICs hash with
// CRC variants, and CRC is linear over GF(2):
//
//	crc(a XOR b) = crc(a) XOR crc(b)
//
// for equal-length inputs (with zero init/xorout). A host that knows the
// polynomial can therefore precompute, once per destination, the effect of
// every source-port bit on the hash, then evaluate any candidate source
// port with a handful of XORs — no per-candidate rehash — and even solve
// directly for source ports that land in a desired ECMP bucket. That is
// what makes HPN's disjoint-path search (Algorithm 1) cheap in practice.

// CRC16 computes a bitwise CRC-16 with the given polynomial over data,
// with zero initial value and no final XOR, so it is strictly linear.
type CRC16 struct {
	// Poly is the truncated polynomial (e.g. 0x1021 for CCITT).
	Poly uint16
}

// CCITTPoly is the classic CRC-16/CCITT polynomial used by many switching
// ASIC hash stages.
const CCITTPoly = 0x1021

// Sum returns the CRC of data.
func (c CRC16) Sum(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ c.Poly
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// tupleBytes serializes a FiveTuple the way a switch parser would feed the
// hash stage (fixed field order, big-endian).
func tupleBytes(t FiveTuple) [13]byte {
	var b [13]byte
	b[0] = byte(t.SrcAddr >> 24)
	b[1] = byte(t.SrcAddr >> 16)
	b[2] = byte(t.SrcAddr >> 8)
	b[3] = byte(t.SrcAddr)
	b[4] = byte(t.DstAddr >> 24)
	b[5] = byte(t.DstAddr >> 16)
	b[6] = byte(t.DstAddr >> 8)
	b[7] = byte(t.DstAddr)
	b[8] = byte(t.SrcPort >> 8)
	b[9] = byte(t.SrcPort)
	b[10] = byte(t.DstPort >> 8)
	b[11] = byte(t.DstPort)
	b[12] = t.Proto
	return b
}

// HashTuple returns the CRC-16 of the serialized tuple.
func (c CRC16) HashTuple(t FiveTuple) uint16 {
	b := tupleBytes(t)
	return c.Sum(b[:])
}

// Select picks an ECMP member like a CRC-hashing ASIC would.
func (c CRC16) Select(t FiveTuple, n int) int {
	if n <= 0 {
		panic("hashing: CRC16.Select over empty ECMP group")
	}
	return int(c.HashTuple(t)) % n
}

// SportBasis precomputes the linear decomposition of the hash with respect
// to the source port: for the tuple with SrcPort=0 it returns the base
// hash, plus the XOR-contribution of each of the 16 source-port bits.
// Any source port's hash is then base XOR (contributions of its set bits).
func (c CRC16) SportBasis(t FiveTuple) (base uint16, basis [16]uint16) {
	z := t
	z.SrcPort = 0
	base = c.HashTuple(z)
	for bit := 0; bit < 16; bit++ {
		o := t
		o.SrcPort = 1 << bit
		// Linearity: contribution = crc(tuple with only this bit) XOR base.
		basis[bit] = c.HashTuple(o) ^ base
	}
	return base, basis
}

// EvalSport returns the hash of the tuple with the given source port using
// only the precomputed basis — 16 conditional XORs instead of a full CRC.
func EvalSport(base uint16, basis [16]uint16, sport uint16) uint16 {
	h := base
	for bit := 0; bit < 16 && sport != 0; bit++ {
		if sport&(1<<bit) != 0 {
			h ^= basis[bit]
		}
		sport &^= 1 << bit // branch-free enough; clarity first
	}
	return h
}

// SportsForBucket returns up to limit source ports >= from whose hash
// falls into the given ECMP bucket (hash % n == bucket), evaluated via the
// linear basis. This is the RePaC-style "reprint the exact hash results"
// primitive behind Algorithm 1.
func SportsForBucket(base uint16, basis [16]uint16, n, bucket int, from uint16, limit int) []uint16 {
	if n <= 0 || bucket < 0 || bucket >= n || limit <= 0 {
		return nil
	}
	out := make([]uint16, 0, limit)
	for s := uint32(from); s <= 0xffff; s++ {
		if int(EvalSport(base, basis, uint16(s)))%n == bucket {
			out = append(out, uint16(s))
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

package hashing

import (
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/XMODEM (poly 0x1021, init 0, no xorout) of "123456789" is
	// 0x31C3 — the standard check value.
	c := CRC16{Poly: CCITTPoly}
	if got := c.Sum([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("CRC16 check value = %#x, want 0x31c3", got)
	}
}

// The property everything rests on: strict linearity over GF(2).
func TestCRCLinearityProperty(t *testing.T) {
	c := CRC16{Poly: CCITTPoly}
	f := func(a, b [13]byte) bool {
		var x [13]byte
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return c.Sum(x[:]) == c.Sum(a[:])^c.Sum(b[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The basis evaluation must exactly reproduce the full CRC for every
// source port — the host predicts, it does not guess.
func TestSportBasisExactProperty(t *testing.T) {
	c := CRC16{Poly: CCITTPoly}
	f := func(src, dst uint32, sport, dport uint16) bool {
		tuple := FiveTuple{SrcAddr: src, DstAddr: dst, SrcPort: sport, DstPort: dport, Proto: 17}
		base, basis := c.SportBasis(tuple)
		return EvalSport(base, basis, sport) == c.HashTuple(tuple)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Solving for a bucket yields source ports the switch actually maps there.
func TestSportsForBucket(t *testing.T) {
	c := CRC16{Poly: CCITTPoly}
	tuple := FiveTuple{SrcAddr: 0x0a000001, DstAddr: 0x0a000002, DstPort: 4791, Proto: 17}
	base, basis := c.SportBasis(tuple)
	const n = 60 // an HPN ToR's ECMP fan-out
	for bucket := 0; bucket < n; bucket += 7 {
		sports := SportsForBucket(base, basis, n, bucket, 10000, 4)
		if len(sports) == 0 {
			t.Fatalf("no sport found for bucket %d", bucket)
		}
		for _, s := range sports {
			tu := tuple
			tu.SrcPort = s
			if got := c.Select(tu, n); got != bucket {
				t.Fatalf("sport %d lands in bucket %d, want %d", s, got, bucket)
			}
			if s < 10000 {
				t.Fatalf("sport %d below requested floor", s)
			}
		}
	}
}

func TestSportsForBucketDegenerate(t *testing.T) {
	if SportsForBucket(0, [16]uint16{}, 0, 0, 0, 4) != nil {
		t.Fatal("n=0 should yield nil")
	}
	if SportsForBucket(0, [16]uint16{}, 4, 9, 0, 4) != nil {
		t.Fatal("out-of-range bucket should yield nil")
	}
}

func TestCRCSelectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Select over empty group did not panic")
		}
	}()
	CRC16{Poly: CCITTPoly}.Select(FiveTuple{}, 0)
}

// Distinct tuples spread across buckets reasonably (the CRC stage is a
// usable ECMP hash, not just a checksum).
func TestCRCUniformity(t *testing.T) {
	c := CRC16{Poly: CCITTPoly}
	counts := make([]int, 16)
	for i := 0; i < 8000; i++ {
		tu := FiveTuple{SrcAddr: uint32(i), DstAddr: 0x0a000002, SrcPort: uint16(30000 + i), DstPort: 4791, Proto: 17}
		counts[c.Select(tu, 16)]++
	}
	if imb := Imbalance(counts); imb > 1.25 {
		t.Fatalf("CRC bucket imbalance %v", imb)
	}
}

func BenchmarkCRCFullHash(b *testing.B) {
	c := CRC16{Poly: CCITTPoly}
	tu := FiveTuple{SrcAddr: 1, DstAddr: 2, DstPort: 4791, Proto: 17}
	for i := 0; i < b.N; i++ {
		tu.SrcPort = uint16(i)
		_ = c.HashTuple(tu)
	}
}

// The point of linearity: evaluating a candidate source port via the basis
// is far cheaper than a full CRC.
func BenchmarkCRCBasisEval(b *testing.B) {
	c := CRC16{Poly: CCITTPoly}
	tu := FiveTuple{SrcAddr: 1, DstAddr: 2, DstPort: 4791, Proto: 17}
	base, basis := c.SportBasis(tu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EvalSport(base, basis, uint16(i))
	}
}

package health

import (
	"fmt"
	"strconv"
	"strings"

	"hpn/internal/sim"
	"hpn/internal/workload"
)

// IterationReport is one training iteration correlated against the fabric
// incident timeline: what the iteration's gradient sync cost, how that
// compares to the healthy baseline, and which incidents overlapped it.
type IterationReport struct {
	Iter  int
	Start sim.Time // end of the previous iteration (or watch start)
	End   sim.Time
	CommS float64 // this iteration's gradient-sync seconds

	// BaselineS is the healthy-iteration mean comm time at judgment
	// (0 until BaselineIters healthy iterations completed).
	BaselineS float64
	// DeltaFrac is (CommS-BaselineS)/BaselineS, 0 without a baseline.
	DeltaFrac float64
	Regressed bool

	// Reroutes counts reroute passes that fired during the iteration.
	Reroutes int
	// Causes lists the IDs of incidents whose lifetime overlapped the
	// iteration window, ascending.
	Causes []int
}

// WatchTrainer hooks the trainer's per-iteration callback so every
// completed iteration is judged against the healthy baseline and
// correlated with overlapping incidents. An existing OnIteration callback
// is chained after the monitor's. One trainer per monitor: the attribution
// window assumes sequential iterations.
func (m *Monitor) WatchTrainer(tr *workload.Trainer) {
	m.lastIterEnd = m.Net.Eng.Now()
	m.lastIterRR = m.reroutes
	prev := tr.OnIteration
	tr.OnIteration = func(iter int, now sim.Time) {
		m.noteIteration(tr, iter, now)
		if prev != nil {
			prev(iter, now)
		}
	}
}

func (m *Monitor) noteIteration(tr *workload.Trainer, iter int, now sim.Time) {
	start := m.lastIterEnd
	m.lastIterEnd = now
	rr := m.reroutes - m.lastIterRR
	m.lastIterRR = m.reroutes
	comm := 0.0
	if n := tr.CommSeconds.Len(); n > 0 {
		comm = tr.CommSeconds.Points[n-1].V
	}
	rep := IterationReport{Iter: iter, Start: start, End: now, CommS: comm, Reroutes: rr}
	for i := range m.incidents {
		inc := &m.incidents[i]
		if inc.Start <= now && (inc.Open || inc.End >= start) {
			rep.Causes = append(rep.Causes, inc.ID)
		}
	}
	if m.healthyN >= m.Cfg.BaselineIters {
		rep.BaselineS = m.healthySum / float64(m.healthyN)
		if rep.BaselineS > 0 {
			rep.DeltaFrac = (comm - rep.BaselineS) / rep.BaselineS
			rep.Regressed = rep.DeltaFrac > m.Cfg.CommRegressFraction
		}
	}
	// Only incident-free, non-regressed iterations feed the baseline, so a
	// long incident cannot drag the baseline up and mask itself.
	if len(rep.Causes) == 0 && !rep.Regressed {
		m.healthySum += comm
		m.healthyN++
	}
	m.iters = append(m.iters, rep)
}

// Verdict renders one iteration's causal line, e.g.
// "iteration 47: +31% comm time (1.31s vs 1.00s) <- flap-storm on
// tor3<->agg2 (#2), 2 reroutes". incs is the monitor's incident list.
func (r *IterationReport) Verdict(incs []Incident) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iteration %d: ", r.Iter)
	if r.BaselineS > 0 {
		fmt.Fprintf(&b, "%s comm time (%.3gs vs %.3gs baseline)", fmtPct(r.DeltaFrac), r.CommS, r.BaselineS)
	} else {
		fmt.Fprintf(&b, "%.3gs comm time (no baseline yet)", r.CommS)
	}
	if len(r.Causes) > 0 {
		b.WriteString(" <- ")
		for i, id := range r.Causes {
			if i > 0 {
				b.WriteString(" + ")
			}
			if id >= 1 && id <= len(incs) {
				inc := &incs[id-1]
				fmt.Fprintf(&b, "%s on %s (#%d)", inc.Kind, inc.Subject, id)
			} else {
				fmt.Fprintf(&b, "#%d", id)
			}
		}
	}
	if r.Reroutes > 0 {
		fmt.Fprintf(&b, ", %d reroute", r.Reroutes)
		if r.Reroutes > 1 {
			b.WriteByte('s')
		}
	}
	return b.String()
}

// causesString joins cause IDs as "1+3" ("-" when empty) for the TSV.
func causesString(causes []int) string {
	if len(causes) == 0 {
		return "-"
	}
	parts := make([]string, len(causes))
	for i, id := range causes {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, "+")
}

// parseCauses inverts causesString.
func parseCauses(s string) ([]int, error) {
	if s == "-" || s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "+")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("health: bad cause list %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}

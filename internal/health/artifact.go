package health

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hpn/internal/sim"
)

// The merged timeline TSV: incidents and iteration reports share one
// chronologically sorted table, distinguished by the row column. Unused
// fields carry "-" (strings), -1 (ints) or 0 (floats).
const tsvHeader = "row\tid\tkind\tsubject\tstart_ns\tend_ns\topen\tevents\tpeak\tdetail\titer\tcomm_s\tbaseline_s\tdelta_frac\tregressed\treroutes\tcauses"

// timelineRows merges incidents and iterations into presentation order:
// by start time, incidents before iterations at the same instant, then by
// ID / iteration number.
type timelineRow struct {
	start sim.Time
	inc   *Incident // exactly one of inc/iter is set
	iter  *IterationReport
}

func (m *Monitor) timeline() []timelineRow {
	return mergeTimeline(m.incidents, m.iters)
}

func mergeTimeline(incs []Incident, iters []IterationReport) []timelineRow {
	rows := make([]timelineRow, 0, len(incs)+len(iters))
	for i := range incs {
		rows = append(rows, timelineRow{start: incs[i].Start, inc: &incs[i]})
	}
	for i := range iters {
		rows = append(rows, timelineRow{start: iters[i].Start, iter: &iters[i]})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].start != rows[j].start {
			return rows[i].start < rows[j].start
		}
		ri, rj := rows[i], rows[j]
		if (ri.inc != nil) != (rj.inc != nil) {
			return ri.inc != nil
		}
		if ri.inc != nil {
			return ri.inc.ID < rj.inc.ID
		}
		return ri.iter.Iter < rj.iter.Iter
	})
	return rows
}

// WriteTSV renders the merged incident + iteration timeline. Deterministic:
// same-seed runs produce byte-identical output.
func (m *Monitor) WriteTSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(tsvHeader)
	b.WriteByte('\n')
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range m.timeline() {
		if inc := row.inc; inc != nil {
			end := int64(inc.End)
			if inc.Open {
				end = -1
			}
			fmt.Fprintf(&b, "incident\t%d\t%s\t%s\t%d\t%d\t%t\t%d\t%s\t%s\t-1\t0\t0\t0\tfalse\t-1\t-\n",
				inc.ID, inc.Kind, inc.Subject, int64(inc.Start), end, inc.Open,
				inc.Events, g(inc.Peak), inc.Detail)
			continue
		}
		it := row.iter
		fmt.Fprintf(&b, "iteration\t-1\t-\t-\t%d\t%d\tfalse\t-1\t0\t-\t%d\t%s\t%s\t%s\t%t\t%d\t%s\n",
			int64(it.Start), int64(it.End), it.Iter, g(it.CommS), g(it.BaselineS),
			g(it.DeltaFrac), it.Regressed, it.Reroutes, causesString(it.Causes))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseTSV reads a timeline written by WriteTSV back into incidents (by ID
// order) and iteration reports (by iteration order) — the hpndoctor input
// path.
func ParseTSV(r io.Reader) ([]Incident, []IterationReport, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var incs []Incident
	var iters []IterationReport
	first := true
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if first {
			first = false
			if line != tsvHeader {
				return nil, nil, fmt.Errorf("health: unrecognized timeline header %q", line)
			}
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 17 {
			return nil, nil, fmt.Errorf("health: timeline row has %d fields, want 17", len(f))
		}
		switch f[0] {
		case "incident":
			var inc Incident
			var start, end int64
			var err error
			if inc.ID, err = strconv.Atoi(f[1]); err != nil {
				return nil, nil, fmt.Errorf("health: bad incident id %q", f[1])
			}
			inc.Kind, inc.Subject, inc.Detail = f[2], f[3], f[9]
			if start, err = strconv.ParseInt(f[4], 10, 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad start %q", f[4])
			}
			if end, err = strconv.ParseInt(f[5], 10, 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad end %q", f[5])
			}
			inc.Start, inc.End = sim.Time(start), sim.Time(end)
			inc.Open = f[6] == "true"
			if inc.Open {
				inc.End = 0
			}
			if inc.Events, err = strconv.Atoi(f[7]); err != nil {
				return nil, nil, fmt.Errorf("health: bad events %q", f[7])
			}
			if inc.Peak, err = strconv.ParseFloat(f[8], 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad peak %q", f[8])
			}
			incs = append(incs, inc)
		case "iteration":
			var it IterationReport
			var start, end int64
			var err error
			if start, err = strconv.ParseInt(f[4], 10, 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad start %q", f[4])
			}
			if end, err = strconv.ParseInt(f[5], 10, 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad end %q", f[5])
			}
			it.Start, it.End = sim.Time(start), sim.Time(end)
			if it.Iter, err = strconv.Atoi(f[10]); err != nil {
				return nil, nil, fmt.Errorf("health: bad iter %q", f[10])
			}
			if it.CommS, err = strconv.ParseFloat(f[11], 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad comm_s %q", f[11])
			}
			if it.BaselineS, err = strconv.ParseFloat(f[12], 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad baseline_s %q", f[12])
			}
			if it.DeltaFrac, err = strconv.ParseFloat(f[13], 64); err != nil {
				return nil, nil, fmt.Errorf("health: bad delta_frac %q", f[13])
			}
			it.Regressed = f[14] == "true"
			if it.Reroutes, err = strconv.Atoi(f[15]); err != nil {
				return nil, nil, fmt.Errorf("health: bad reroutes %q", f[15])
			}
			if it.Causes, err = parseCauses(f[16]); err != nil {
				return nil, nil, err
			}
			iters = append(iters, it)
		default:
			return nil, nil, fmt.Errorf("health: unknown timeline row kind %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	sort.SliceStable(incs, func(i, j int) bool { return incs[i].ID < incs[j].ID })
	sort.SliceStable(iters, func(i, j int) bool { return iters[i].Iter < iters[j].Iter })
	return incs, iters, nil
}

// WriteJSON renders the same data as one hand-built (deterministic,
// stdlib-marshal-free) JSON document with incidents, iterations and a
// summary block.
func (m *Monitor) WriteJSON(w io.Writer) error {
	return writeJSON(w, m.incidents, m.iters)
}

func writeJSON(w io.Writer, incs []Incident, iters []IterationReport) error {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b.WriteString("{\n\"incidents\": [")
	for i := range incs {
		inc := &incs[i]
		if i > 0 {
			b.WriteByte(',')
		}
		end := int64(inc.End)
		if inc.Open {
			end = -1
		}
		fmt.Fprintf(&b, "\n{\"id\": %d, \"kind\": %s, \"subject\": %s, \"start_ns\": %d, \"end_ns\": %d, \"open\": %t, \"events\": %d, \"peak\": %s, \"detail\": %s}",
			inc.ID, jsonString(inc.Kind), jsonString(inc.Subject), int64(inc.Start), end,
			inc.Open, inc.Events, g(inc.Peak), jsonString(inc.Detail))
	}
	b.WriteString("\n],\n\"iterations\": [")
	for i := range iters {
		it := &iters[i]
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"iter\": %d, \"start_ns\": %d, \"end_ns\": %d, \"comm_s\": %s, \"baseline_s\": %s, \"delta_frac\": %s, \"regressed\": %t, \"reroutes\": %d, \"causes\": [",
			it.Iter, int64(it.Start), int64(it.End), g(it.CommS), g(it.BaselineS),
			g(it.DeltaFrac), it.Regressed, it.Reroutes)
		for j, id := range it.Causes {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Itoa(id))
		}
		b.WriteString("]}")
	}
	s := Summarize(incs, iters)
	fmt.Fprintf(&b, "\n],\n\"summary\": {\"incidents\": %d, \"open\": %d, \"flap_storm\": %d, \"stall\": %d, \"polarization\": %d, \"degraded_throughput\": %d, \"iterations\": %d, \"regressed\": %d, \"attributed\": %d}\n}\n",
		s.Incidents, s.Open, s.Flap, s.Stall, s.Polarization, s.Throughput,
		s.Iterations, s.Regressed, s.Attributed)
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonString quotes s as a JSON string (ASCII-safe escaping).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Summary aggregates a timeline into the verdict hpndoctor prints and
// tests assert on.
type Summary struct {
	Incidents, Open                       int
	Flap, Stall, Polarization, Throughput int
	Iterations, Regressed                 int
	// Attributed counts regressed iterations with at least one overlapping
	// incident.
	Attributed int
}

// Summarize folds incidents and iteration reports into a Summary.
func Summarize(incs []Incident, iters []IterationReport) Summary {
	var s Summary
	s.Incidents = len(incs)
	for i := range incs {
		if incs[i].Open {
			s.Open++
		}
		switch incs[i].Kind {
		case KindFlap:
			s.Flap++
		case KindStall:
			s.Stall++
		case KindPolarization:
			s.Polarization++
		case KindThroughput:
			s.Throughput++
		}
	}
	s.Iterations = len(iters)
	for i := range iters {
		if iters[i].Regressed {
			s.Regressed++
			if len(iters[i].Causes) > 0 {
				s.Attributed++
			}
		}
	}
	return s
}

// Summary exit codes, following the hpnview convention (0 ok, 1 I/O,
// 2 usage, 3 verdict).
const (
	ExitHealthy = 0
	// ExitIncidents: fabric incidents were detected (whether or not the
	// workload regressed).
	ExitIncidents = 3
	// ExitRegression: iterations regressed with no fabric incident to
	// blame — the fabric looks clean, look at the workload.
	ExitRegression = 4
)

// ExitCode maps the summary onto the hpndoctor process exit code.
func (s Summary) ExitCode() int {
	switch {
	case s.Incidents > 0:
		return ExitIncidents
	case s.Regressed > 0:
		return ExitRegression
	default:
		return ExitHealthy
	}
}

// Verdict renders the one-line summary verdict.
func (s Summary) Verdict() string {
	if s.ExitCode() == ExitHealthy {
		return fmt.Sprintf("healthy: no incidents over %d iterations", s.Iterations)
	}
	var parts []string
	if s.Flap > 0 {
		parts = append(parts, fmt.Sprintf("%d flap-storm", s.Flap))
	}
	if s.Stall > 0 {
		parts = append(parts, fmt.Sprintf("%d stall", s.Stall))
	}
	if s.Polarization > 0 {
		parts = append(parts, fmt.Sprintf("%d polarization", s.Polarization))
	}
	if s.Throughput > 0 {
		parts = append(parts, fmt.Sprintf("%d degraded-throughput", s.Throughput))
	}
	head := "unhealthy"
	if s.Incidents == 0 {
		head = "regressed"
		parts = append(parts, "no fabric incident to attribute")
	}
	return fmt.Sprintf("%s: %d incidents (%s), %d open; %d/%d iterations regressed (%d attributed)",
		head, s.Incidents, strings.Join(parts, ", "), s.Open, s.Regressed, s.Iterations, s.Attributed)
}

// Summary returns the monitor's current summary.
func (m *Monitor) Summary() Summary { return Summarize(m.incidents, m.iters) }

package health

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// newMonitor attaches a monitor to a fresh small fabric. dualToR=false
// builds the single-ToR ablation where an access failure blackholes flows.
func newMonitor(t *testing.T, dualToR bool) (*sim.Engine, *netsim.Sim, *Monitor) {
	t.Helper()
	cfg := topo.SmallHPN(2, 4, 4)
	if !dualToR {
		cfg.DualToR = false
		cfg.DualPlane = false
	}
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.New(eng, top)
	return eng, net, Attach(net, Config{})
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if !reflect.DeepEqual(c, DefaultConfig()) {
		t.Fatalf("zero config filled to %+v, want %+v", c, DefaultConfig())
	}
}

// Four transitions inside the window open a storm anchored at the first
// transition; a quiet window closes it; a later storm is a new incident.
func TestFlapDetectorLifecycle(t *testing.T) {
	_, _, m := newMonitor(t, true)
	for i := sim.Time(0); i < 4; i++ {
		m.noteTransition(i*sim.Second, "torX<->aggY", i%2 == 0)
	}
	incs := m.Incidents()
	if len(incs) != 1 || incs[0].Kind != KindFlap || !incs[0].Open {
		t.Fatalf("4 transitions in window: incidents %+v, want one open flap-storm", incs)
	}
	if incs[0].Start != 0 || incs[0].Peak != 4 || incs[0].Events != 4 {
		t.Fatalf("incident %+v, want Start=0 Peak=4 Events=4", incs[0])
	}

	// Two more transitions extend the same incident, no second one opens.
	m.noteTransition(4*sim.Second, "torX<->aggY", true)
	m.noteTransition(5*sim.Second, "torX<->aggY", false)
	if len(m.Incidents()) != 1 || m.Incidents()[0].Events != 6 {
		t.Fatalf("storm continuation: %+v, want 1 incident with 6 events", m.Incidents())
	}

	// Quiet for a full window: the sweep closes it.
	m.sweepFlap(16 * sim.Second)
	if inc := m.Incidents()[0]; inc.Open || inc.End != 16*sim.Second {
		t.Fatalf("quiet window did not close the storm: %+v", inc)
	}

	// A fresh storm on the same subject is a distinct incident.
	for i := sim.Time(0); i < 4; i++ {
		m.noteTransition(30*sim.Second+i*sim.Second, "torX<->aggY", i%2 == 0)
	}
	incs = m.Incidents()
	if len(incs) != 2 || !incs[1].Open || incs[1].ID != 2 || incs[1].Events != 4 {
		t.Fatalf("second storm: %+v, want a second open incident with Events=4", incs)
	}
}

// Transitions spread wider than the window never accumulate to a storm.
func TestFlapDetectorSpreadStaysQuiet(t *testing.T) {
	_, _, m := newMonitor(t, true)
	for i := sim.Time(0); i < 8; i++ {
		m.noteTransition(i*6*sim.Second, "torX<->aggY", i%2 == 0)
	}
	if len(m.Incidents()) != 0 {
		t.Fatalf("spread transitions opened %+v", m.Incidents())
	}
}

// An access failure on the single-ToR ablation blackholes the flow; the
// stall incident opens after StallAfter (backdated to the stall's start)
// and closes once the recovery reroute unsticks it.
func TestStallDetectorLifecycle(t *testing.T) {
	eng, net, m := newMonitor(t, false)
	f, err := net.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0},
		1<<40, netsim.FlowOpts{SrcPort: 0})
	if err != nil {
		t.Fatal(err)
	}
	access := f.Path[0] // the path empties while the flow is stalled
	eng.ScheduleAt(1*sim.Second, func() { net.FailCable(access) })
	eng.ScheduleAt(6*sim.Second, func() { net.RecoverCable(access) })
	eng.RunUntil(9 * sim.Second)

	incs := m.Incidents()
	if len(incs) != 1 || incs[0].Kind != KindStall {
		t.Fatalf("incidents %+v, want exactly one stall", incs)
	}
	inc := incs[0]
	if inc.Open {
		t.Fatalf("stall incident still open after recovery: %+v", inc)
	}
	if inc.Start < sim.Second || inc.Start > 4*sim.Second {
		t.Fatalf("stall Start %v, want within a few ticks of the 1s failure", inc.Start)
	}
	if inc.End <= 6*sim.Second || inc.End > 8*sim.Second {
		t.Fatalf("stall End %v, want the first quiet sweep after the 6s recovery", inc.End)
	}
	if inc.Events < 1 || inc.Peak < 1 {
		t.Fatalf("stall incident carries no observations: %+v", inc)
	}
}

// torUplink returns some ToR node and its first uplink for synthetic hash
// decisions.
func torUplink(t *testing.T, top *topo.Topology) (topo.NodeID, topo.LinkID) {
	t.Helper()
	for id, nd := range top.Nodes {
		if nd.Kind == topo.KindToR && len(nd.Uplinks) > 0 {
			return topo.NodeID(id), nd.Uplinks[0]
		}
	}
	t.Fatal("no ToR with uplinks in topology")
	return 0, 0
}

// The polarization detector withholds judgment until the distinct-tuple
// mass clears the coupon-collector floor, then opens on a starved group
// and closes once the loads even out.
func TestPolarizationDetector(t *testing.T) {
	_, net, m := newMonitor(t, true)
	tor, up := torUplink(t, net.Top)
	feed := func(n, bucket int, base uint16) {
		for i := 0; i < n; i++ {
			f := &netsim.Flow{Tuple: hashing.FiveTuple{SrcPort: base + uint16(i), DstPort: uint16(bucket)}}
			m.notePath(0, f, []route.HopDecision{
				{Link: up, Node: tor, Hashed: true, Group: 4, Bucket: bucket},
			})
		}
	}

	// 20 tuples all on bucket 0: under the 6*4=24 mass floor, no judgment.
	feed(20, 0, 0)
	m.sweepPolarization(sim.Second)
	if len(m.Incidents()) != 0 {
		t.Fatalf("judged below the mass floor: %+v", m.Incidents())
	}

	// Ten more clears the floor with every flow on one bucket: polarized.
	feed(10, 0, 1000)
	m.sweepPolarization(2 * sim.Second)
	incs := m.Incidents()
	if len(incs) != 1 || incs[0].Kind != KindPolarization || !incs[0].Open {
		t.Fatalf("starved group not flagged: %+v", incs)
	}
	if !strings.HasSuffix(incs[0].Subject, "/up4") {
		t.Fatalf("subject %q, want <node>/up4", incs[0].Subject)
	}

	// A duplicate tuple adds no mass (reroutes re-hash identically).
	before := m.groupList[0].mass
	feed(1, 0, 0) // SrcPort 0 / DstPort 0 was already counted
	if got := m.groupList[0].mass; got != before {
		t.Fatalf("duplicate tuple changed mass %d -> %d", before, got)
	}

	// Even out the load: the next sweep closes the incident.
	for b := 1; b < 4; b++ {
		feed(30, b, uint16(2000*b))
	}
	m.sweepPolarization(3 * sim.Second)
	if inc := m.Incidents()[0]; inc.Open {
		t.Fatalf("balanced group left incident open: %+v", inc)
	}
}

// Non-hashed, per-port, fallback and trivial-group hops carry no
// polarization signal and must be ignored.
func TestPolarizationIgnoresNonSignalHops(t *testing.T) {
	_, net, m := newMonitor(t, true)
	tor, up := torUplink(t, net.Top)
	f := &netsim.Flow{Tuple: hashing.FiveTuple{SrcPort: 7}}
	m.notePath(0, f, []route.HopDecision{
		{Link: up, Node: tor, Hashed: false, Group: 4, Bucket: 0},
		{Link: up, Node: tor, Hashed: true, PerPort: true, Group: 4, Bucket: 0},
		{Link: up, Node: tor, Hashed: true, Fallback: true, Group: 4, Bucket: 0},
		{Link: up, Node: tor, Hashed: true, Group: 1, Bucket: 0},
	})
	if len(m.groupList) != 0 {
		t.Fatalf("non-signal hops created group state: %+v", m.groupList)
	}
}

// The throughput detector learns a per-size-class baseline, opens once a
// burst of flows completes far below it, and closes after a quiet window.
func TestThroughputDetectorLifecycle(t *testing.T) {
	_, _, m := newMonitor(t, true)
	done := func(now sim.Time, bits float64, d sim.Time) {
		m.noteCompletion(now, &netsim.Flow{Bits: bits, StartedAt: now - d, DoneAt: now})
	}
	// Baseline: 32 flows of 1e6 bits at 1 Gbit/s.
	for i := 0; i < 32; i++ {
		done(sim.Time(i)*sim.Millisecond, 1e6, sim.Millisecond)
	}
	if len(m.Incidents()) != 0 {
		t.Fatalf("baseline flows opened %+v", m.Incidents())
	}
	// Burst of 8 at a quarter of the baseline rate inside the 5s window.
	burstStart := 100 * sim.Millisecond
	for i := 0; i < 8; i++ {
		done(burstStart+sim.Time(i)*100*sim.Millisecond, 1e6, 4*sim.Millisecond)
	}
	incs := m.Incidents()
	if len(incs) != 1 || incs[0].Kind != KindThroughput || !incs[0].Open {
		t.Fatalf("degraded burst not flagged: %+v", incs)
	}
	if incs[0].Start != burstStart {
		t.Fatalf("incident Start %v, want first degraded completion at %v", incs[0].Start, burstStart)
	}
	if incs[0].Peak < 3.9 || incs[0].Peak > 4.1 {
		t.Fatalf("Peak slowdown %v, want ~4x", incs[0].Peak)
	}
	// Healthy completions keep the class fed; a quiet window closes it.
	m.sweepThroughput(incs[0].Start + 800*sim.Millisecond + 5*sim.Second)
	if inc := m.Incidents()[0]; inc.Open {
		t.Fatalf("quiet window left throughput incident open: %+v", inc)
	}
}

func TestClassLabel(t *testing.T) {
	cases := map[int]string{
		2:  "<1B",  // 4 bits
		3:  "1B",   // 8 bits
		13: "1KiB", // 2^13 bits = 2^10 bytes
		23: "1MiB", //
		36: "8GiB", // 2^36 bits = 2^33 bytes
		43: "1TiB", //
		11: "256B", //
		20: "128KiB",
	}
	for exp, want := range cases {
		if got := classLabel(exp); got != want {
			t.Errorf("classLabel(%d) = %q, want %q", exp, got, want)
		}
	}
}

// The TSV artifact round-trips edge cases exactly: open incidents, details
// with spaces, multi-cause and cause-free iterations.
func TestArtifactTSVRoundTrip(t *testing.T) {
	incs := []Incident{
		{ID: 1, Kind: KindFlap, Subject: "tor0<->agg1", Start: 5 * sim.Second, End: 20 * sim.Second,
			Events: 6, Peak: 5, Detail: "6 transitions within 10s"},
		{ID: 2, Kind: KindStall, Subject: "fabric", Start: 7 * sim.Second, Open: true,
			Events: 3, Peak: 14, Detail: "flows blackholed awaiting reconvergence"},
	}
	iters := []IterationReport{
		{Iter: 1, Start: 0, End: 4 * sim.Second, CommS: 0.5},
		{Iter: 2, Start: 4 * sim.Second, End: 9 * sim.Second, CommS: 0.9,
			BaselineS: 0.5, DeltaFrac: 0.8, Regressed: true, Reroutes: 2, Causes: []int{1, 2}},
	}
	var buf bytes.Buffer
	m := &Monitor{incidents: incs, iters: iters}
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	gotIncs, gotIters, err := ParseTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIncs, incs) {
		t.Fatalf("incidents round-trip:\nwrote:  %+v\nparsed: %+v", incs, gotIncs)
	}
	if !reflect.DeepEqual(gotIters, iters) {
		t.Fatalf("iterations round-trip:\nwrote:  %+v\nparsed: %+v", iters, gotIters)
	}
}

// ParseTSV rejects foreign headers rather than misreading columns.
func TestParseTSVRejectsBadHeader(t *testing.T) {
	if _, _, err := ParseTSV(strings.NewReader("nope\tnope\n")); err == nil {
		t.Fatal("foreign header accepted")
	}
}

// The JSON artifact must be well-formed JSON with the summary the Summary
// type computes.
func TestArtifactJSONWellFormed(t *testing.T) {
	m := &Monitor{
		incidents: []Incident{{ID: 1, Kind: KindFlap, Subject: `to"r<->agg`, Start: 1, Open: true,
			Events: 4, Peak: 4, Detail: "detail with \"quotes\" and\ttab"}},
		iters: []IterationReport{{Iter: 1, End: 2, CommS: 0.5, Regressed: true, Causes: []int{1}}},
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Incidents  []map[string]any `json:"incidents"`
		Iterations []map[string]any `json:"iterations"`
		Summary    map[string]any   `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("incidents.json is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Incidents) != 1 || len(doc.Iterations) != 1 {
		t.Fatalf("json carries %d incidents / %d iterations, want 1/1", len(doc.Incidents), len(doc.Iterations))
	}
	if got := doc.Summary["attributed"]; got != float64(1) {
		t.Fatalf("summary.attributed = %v, want 1", got)
	}
	if got := doc.Incidents[0]["end_ns"]; got != float64(-1) {
		t.Fatalf("open incident end_ns = %v, want -1", got)
	}
}

func TestSummaryExitCodesAndVerdict(t *testing.T) {
	healthy := Summarize(nil, []IterationReport{{Iter: 1}})
	if healthy.ExitCode() != ExitHealthy || !strings.HasPrefix(healthy.Verdict(), "healthy") {
		t.Fatalf("healthy summary: exit %d verdict %q", healthy.ExitCode(), healthy.Verdict())
	}
	withInc := Summarize([]Incident{{ID: 1, Kind: KindFlap, Open: true}}, nil)
	if withInc.ExitCode() != ExitIncidents || !strings.HasPrefix(withInc.Verdict(), "unhealthy") {
		t.Fatalf("incident summary: exit %d verdict %q", withInc.ExitCode(), withInc.Verdict())
	}
	regressOnly := Summarize(nil, []IterationReport{{Iter: 1, Regressed: true}})
	if regressOnly.ExitCode() != ExitRegression || !strings.HasPrefix(regressOnly.Verdict(), "regressed") {
		t.Fatalf("regression summary: exit %d verdict %q", regressOnly.ExitCode(), regressOnly.Verdict())
	}
}

// The merged timeline is ordered by start time with incidents leading at
// equal instants — the chronology hpndoctor prints.
func TestTimelineMergeOrder(t *testing.T) {
	incs := []Incident{
		{ID: 1, Start: 10},
		{ID: 2, Start: 3},
	}
	iters := []IterationReport{
		{Iter: 1, Start: 0},
		{Iter: 2, Start: 3},
	}
	rows := mergeTimeline(incs, iters)
	order := make([]string, len(rows))
	for i, r := range rows {
		if r.inc != nil {
			order[i] = "inc" + causesString([]int{r.inc.ID})
		} else {
			order[i] = "iter" + causesString([]int{r.iter.Iter})
		}
	}
	want := []string{"iter1", "inc2", "iter2", "inc1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("timeline order %v, want %v", order, want)
	}
}

// Verdict strings name incidents by kind and subject.
func TestIterationVerdictRendering(t *testing.T) {
	incs := []Incident{{ID: 1, Kind: KindFlap, Subject: "tor0<->agg2"}}
	r := IterationReport{Iter: 47, CommS: 1.31, BaselineS: 1.0, DeltaFrac: 0.31,
		Regressed: true, Reroutes: 2, Causes: []int{1}}
	got := r.Verdict(incs)
	for _, frag := range []string{"iteration 47", "+31%", "flap-storm on tor0<->agg2 (#1)", "2 reroutes"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("verdict %q missing %q", got, frag)
		}
	}
}

// Package health is an online fabric health monitor: it subscribes to the
// simulator's streaming fabric events (netsim.Observer) and runs a set of
// incremental detectors while the run executes, with no artifact dump or
// post-run parsing required. The detectors mirror HPN's operational pain
// points — link flap storms (Fig. 18), stuck flows, ECMP hash polarization
// and degraded per-flow throughput — and an attribution engine correlates
// per-iteration communication-time regressions of a training job with the
// fabric incidents that overlapped the iteration, producing a causal
// timeline ("iteration 47 +31% comm time <- flap storm on tor3<->agg2").
//
// Everything here runs inside the deterministic event loop: detector state
// iterates in first-seen order (never Go map order), timestamps are virtual
// time, and the incidents.tsv / incidents.json artifacts are byte-identical
// across same-seed runs. With the monitor not attached, the simulator pays
// one nil check per emission point (see netsim.Observer).
package health

import (
	"fmt"

	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Incident kinds.
const (
	KindFlap         = "flap-storm"
	KindStall        = "stall"
	KindPolarization = "polarization"
	KindThroughput   = "degraded-throughput"
)

// Config tunes the detectors. Zero fields take the DefaultConfig value.
type Config struct {
	// Tick is the detector sweep period (stall polling, quiet-window
	// closing). Default 1s, matching the failure watchdog's poll.
	Tick sim.Time

	// FlapWindow / FlapThreshold open a flap-storm incident when a cable
	// (or switch) sees >= FlapThreshold up/down transitions within
	// FlapWindow. Defaults 10s / 4: one clean fail+recover pair stays an
	// event, a Fig. 18 flap train becomes an incident.
	FlapWindow    sim.Time
	FlapThreshold int

	// StallAfter opens a stall incident once flows have been continuously
	// blackholed for this long — far below the ~90s NCCL-timeout watchdog,
	// which this detector complements rather than replaces. Default 2s.
	StallAfter sim.Time

	// PolarizationMinFlows is the minimum distinct-tuple mass before an
	// ECMP group is judged (also scaled by group size internally, so small
	// samples over wide groups never alias as polarization). Default 16.
	PolarizationMinFlows int
	// PolarizationRatio is the max/min bucket-load ratio at which a group
	// counts as polarized (streaming hashing.RatioImbalance). Default 3.
	PolarizationRatio float64
	// PolarizationCap clamps the ratio when some bucket is starved
	// entirely. Default 64.
	PolarizationCap float64

	// DegradedFraction flags a completed flow whose effective throughput
	// fell below this fraction of its size class's healthy mean; an
	// incident opens when DegradedMinFlows such flows land within
	// DegradedWindow. Defaults 0.5 / 8 / 5s.
	DegradedFraction float64
	DegradedMinFlows int
	DegradedWindow   sim.Time
	// BaselineFlows is the per-size-class observation count before
	// degradation is judged. Default 32.
	BaselineFlows int

	// CommRegressFraction marks a training iteration regressed when its
	// gradient-sync time exceeds the healthy-iteration mean by this
	// fraction; BaselineIters healthy iterations must complete first.
	// Defaults 0.15 / 2.
	CommRegressFraction float64
	BaselineIters       int
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Tick:                 sim.Second,
		FlapWindow:           10 * sim.Second,
		FlapThreshold:        4,
		StallAfter:           2 * sim.Second,
		PolarizationMinFlows: 16,
		PolarizationRatio:    3,
		PolarizationCap:      64,
		DegradedFraction:     0.5,
		DegradedMinFlows:     8,
		DegradedWindow:       5 * sim.Second,
		BaselineFlows:        32,
		CommRegressFraction:  0.15,
		BaselineIters:        2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Tick <= 0 {
		c.Tick = d.Tick
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = d.FlapWindow
	}
	if c.FlapThreshold <= 0 {
		c.FlapThreshold = d.FlapThreshold
	}
	if c.StallAfter <= 0 {
		c.StallAfter = d.StallAfter
	}
	if c.PolarizationMinFlows <= 0 {
		c.PolarizationMinFlows = d.PolarizationMinFlows
	}
	if c.PolarizationRatio <= 0 {
		c.PolarizationRatio = d.PolarizationRatio
	}
	if c.PolarizationCap <= 0 {
		c.PolarizationCap = d.PolarizationCap
	}
	if c.DegradedFraction <= 0 {
		c.DegradedFraction = d.DegradedFraction
	}
	if c.DegradedMinFlows <= 0 {
		c.DegradedMinFlows = d.DegradedMinFlows
	}
	if c.DegradedWindow <= 0 {
		c.DegradedWindow = d.DegradedWindow
	}
	if c.BaselineFlows <= 0 {
		c.BaselineFlows = d.BaselineFlows
	}
	if c.CommRegressFraction <= 0 {
		c.CommRegressFraction = d.CommRegressFraction
	}
	if c.BaselineIters <= 0 {
		c.BaselineIters = d.BaselineIters
	}
}

// Incident is one detected fabric anomaly with a lifetime.
type Incident struct {
	ID      int    // 1-based, in detection order
	Kind    string // Kind* constant
	Subject string // the link/node/group/size-class concerned
	Start   sim.Time
	End     sim.Time // valid once !Open
	Open    bool
	Events  int     // kind-specific event count folded into the incident
	Peak    float64 // kind-specific worst magnitude (transitions in window, stalled flows, load ratio, 1/throughput-fraction)
	Detail  string  // human-readable one-liner (no tabs)
}

// incKey identifies the at-most-one open incident per (kind, subject).
type incKey struct{ kind, subject string }

// Monitor implements netsim.Observer: it consumes the event stream, keeps
// per-detector state, and accumulates the incident + iteration timeline.
type Monitor struct {
	Net *netsim.Sim
	Cfg Config

	incidents []Incident
	openIdx   map[incKey]int // index into incidents of the open one

	// Detector state. All iteration walks the *List slices (first-seen
	// order); the maps only serve O(1) lookup, so artifacts never depend
	// on Go map iteration order.
	flapIdx  map[string]int
	flapList []*flapState

	stalling   bool
	stallSince sim.Time

	groupIdx  map[groupKey]int
	groupList []*groupState

	classIdx  map[int]int
	classList []*classState

	// reroutes counts reroute passes seen, for per-iteration attribution.
	reroutes int

	// tickArmed tracks whether a sweep tick is scheduled. Ticks are armed
	// on demand (fabric events, stalled or degraded flows, open incidents)
	// and disarm once every detector is quiet, so a healthy steady-state
	// run schedules no events at all — which is what lets iteration
	// memoization fast-forward over it (see internal/memo).
	tickArmed bool

	// Attribution state (see attribution.go).
	iters       []IterationReport
	lastIterEnd sim.Time
	lastIterRR  int
	healthySum  float64
	healthyN    int

	ctrIncidents *telemetry.Counter
}

// Attach builds a monitor over the simulator, installs it as the fabric
// observer, and (when the simulator carries a registry) registers the
// "incidents.tsv"/"incidents.json" artifact exporters plus health metrics
// under the simulator's prefix. The periodic sweep is demand-armed: the
// first fabric event (transition, reroute, stalled or degraded flow)
// schedules it, and it disarms again once every detector is quiet.
func Attach(net *netsim.Sim, cfg Config) *Monitor {
	cfg.fillDefaults()
	m := &Monitor{
		Net:      net,
		Cfg:      cfg,
		openIdx:  map[incKey]int{},
		flapIdx:  map[string]int{},
		groupIdx: map[groupKey]int{},
		classIdx: map[int]int{},
	}
	net.SetObserver(m)
	if net.Reg != nil {
		p := net.MetricsPrefix
		m.ctrIncidents = net.Reg.Counter(p+"health_incidents_total", "fabric incidents opened by the health monitor")
		net.Reg.Gauge(p+"health_open_incidents", "fabric incidents currently open",
			func() float64 { return float64(m.OpenIncidents()) })
		net.Reg.RegisterExporter(p+"incidents.tsv", m.WriteTSV)
		net.Reg.RegisterExporter(p+"incidents.json", m.WriteJSON)
	}
	return m
}

// armTick schedules the next detector sweep unless one is already pending.
func (m *Monitor) armTick() {
	if m.tickArmed {
		return
	}
	m.tickArmed = true
	m.Net.Eng.ScheduleDaemon(m.Cfg.Tick, m.tick)
}

// tick runs one sweep and re-arms while any detector still has state to
// advance or an incident to close.
func (m *Monitor) tick() {
	m.tickArmed = false
	m.sweep(m.Net.Eng.Now())
	if m.needsTick() {
		m.armTick()
	}
}

// needsTick reports whether any detector still needs periodic sweeps:
// open incidents await their quiet-window close, stall tracking polls the
// fabric, and windowed transition/degradation histories must drain before
// the monitor can go fully idle.
func (m *Monitor) needsTick() bool {
	if m.OpenIncidents() > 0 || m.stalling || m.Net.StalledFlows() > 0 {
		return true
	}
	for _, fs := range m.flapList {
		if len(fs.times) > 0 {
			return true
		}
	}
	for _, cs := range m.classList {
		if len(cs.times) > 0 {
			return true
		}
	}
	return false
}

// MonitorOf returns the monitor attached to the simulator, or nil if the
// fabric observer is absent or something else. Wrapping observers (the
// memo recorder) are unwrapped through their Inner chain.
func MonitorOf(net *netsim.Sim) *Monitor {
	o := net.Observer()
	for o != nil {
		if m, ok := o.(*Monitor); ok {
			return m
		}
		u, ok := o.(interface{ Inner() netsim.Observer })
		if !ok {
			return nil
		}
		o = u.Inner()
	}
	return nil
}

// Incidents returns the incident list in detection order (shared slice;
// callers must not mutate).
func (m *Monitor) Incidents() []Incident { return m.incidents }

// Iterations returns the per-iteration attribution reports (shared slice).
func (m *Monitor) Iterations() []IterationReport { return m.iters }

// OpenIncidents counts currently open incidents.
func (m *Monitor) OpenIncidents() int {
	n := 0
	for i := range m.incidents {
		if m.incidents[i].Open {
			n++
		}
	}
	return n
}

// openIncident returns the open incident for (kind, subject), creating it
// (started at start) if none is open.
func (m *Monitor) openIncident(kind, subject string, start sim.Time, detail string) *Incident {
	k := incKey{kind, subject}
	if i, ok := m.openIdx[k]; ok {
		return &m.incidents[i]
	}
	m.incidents = append(m.incidents, Incident{
		ID: len(m.incidents) + 1, Kind: kind, Subject: subject,
		Start: start, Open: true, Detail: detail,
	})
	m.openIdx[k] = len(m.incidents) - 1
	m.ctrIncidents.Inc()
	if m.Net.Flight != nil {
		// Freeze the flight recorder's evidence window at the instant the
		// detector fired: flight.tsv then carries the raw event context
		// behind each incident, not just this detector summary.
		m.Net.Flight.Mark(int64(start), kind+":"+subject)
	}
	return &m.incidents[len(m.incidents)-1]
}

// closeIncident ends the open incident for (kind, subject), if any.
func (m *Monitor) closeIncident(kind, subject string, end sim.Time) {
	k := incKey{kind, subject}
	i, ok := m.openIdx[k]
	if !ok {
		return
	}
	delete(m.openIdx, k)
	m.incidents[i].Open = false
	m.incidents[i].End = end
}

// sweep is the periodic detector pass: it polls stall state and closes
// quiet incidents.
func (m *Monitor) sweep(now sim.Time) {
	m.sweepStall(now)
	m.sweepFlap(now)
	m.sweepPolarization(now)
	m.sweepThroughput(now)
}

// linkSubject names a cable for incident subjects, e.g.
// "pod0/seg1/tor0<->pod0/agg2".
func (m *Monitor) linkSubject(l topo.LinkID) string {
	lk := m.Net.Top.Link(l)
	return m.Net.Top.Node(lk.From).Name + "<->" + m.Net.Top.Node(lk.To).Name
}

// netsim.Observer implementation. Each callback runs inside event dispatch
// and must stay cheap and deterministic.

// LinkEvent feeds the flap detector.
func (m *Monitor) LinkEvent(now sim.Time, l topo.LinkID, up bool) {
	m.noteTransition(now, m.linkSubject(l), up)
	m.armTick()
}

// NodeEvent feeds node transitions into the same flap detector, keyed by
// switch name.
func (m *Monitor) NodeEvent(now sim.Time, n topo.NodeID, up bool) {
	m.noteTransition(now, m.Net.Top.Node(n).Name, up)
	m.armTick()
}

// RerouteDone counts passes for attribution; stall recovery itself is
// observed by the sweep (armed here, since a reroute either resolves a
// stall or leaves one to keep watching).
func (m *Monitor) RerouteDone(now sim.Time, repathed, stillStalled int) {
	m.reroutes++
	m.armTick()
}

// FlowRouted feeds the polarization detector with the path's hash
// decisions. A flow routed into a blackhole arms the sweep so the stall
// detector starts its clock even when no transition was observed.
func (m *Monitor) FlowRouted(now sim.Time, f *netsim.Flow, hops []route.HopDecision) {
	m.notePath(now, f, hops)
	if f.Stalled {
		m.armTick()
	}
}

// FlowDone feeds the degraded-throughput detector.
func (m *Monitor) FlowDone(now sim.Time, f *netsim.Flow) {
	m.noteCompletion(now, f)
}

var _ netsim.Observer = (*Monitor)(nil)

// LiveMetricNames names the registry counters this observer increments
// from inside its callbacks. The memo recorder excludes them from a
// recorded window's metrics delta: replay re-feeds the callbacks, so the
// increments happen live and would otherwise be double-counted.
func (m *Monitor) LiveMetricNames() []string {
	if m.Net.Reg == nil {
		return nil
	}
	return []string{m.Net.MetricsPrefix + "health_incidents_total"}
}

// fmtPct renders a fraction as "+31%" / "-5%".
func fmtPct(frac float64) string {
	return fmt.Sprintf("%+.0f%%", frac*100)
}

package health

import (
	"fmt"
	"math"

	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// --- Link-flap detector (paper Fig. 18) -------------------------------
//
// A transition is one up/down edge of a cable or switch. The paper's
// operational experience is 5K-60K flap events per day fleet-wide; a
// single transition is routine, a train of them on one subject inside
// FlapWindow is a flap storm that keeps re-triggering convergence.

type flapState struct {
	subject string
	times   []sim.Time // transitions inside the window, ascending
	total   int        // transitions since the open incident started (reset on close)
}

func (m *Monitor) noteTransition(now sim.Time, subject string, up bool) {
	i, ok := m.flapIdx[subject]
	if !ok {
		i = len(m.flapList)
		m.flapIdx[subject] = i
		m.flapList = append(m.flapList, &flapState{subject: subject})
	}
	fs := m.flapList[i]
	fs.times = append(fs.times, now)
	fs.prune(now, m.Cfg.FlapWindow)
	fs.total++
	if len(fs.times) < m.Cfg.FlapThreshold {
		return
	}
	inc := m.openIncident(KindFlap, subject, fs.times[0],
		fmt.Sprintf("%d transitions within %v", len(fs.times), m.Cfg.FlapWindow))
	inc.Events = fs.total
	if r := float64(len(fs.times)); r > inc.Peak {
		inc.Peak = r
	}
}

func (fs *flapState) prune(now sim.Time, window sim.Time) {
	cut := 0
	for cut < len(fs.times) && fs.times[cut] <= now-window {
		cut++
	}
	if cut > 0 {
		fs.times = append(fs.times[:0], fs.times[cut:]...)
	}
}

// sweepFlap closes storm incidents once their subject has been quiet for a
// full window.
func (m *Monitor) sweepFlap(now sim.Time) {
	for _, fs := range m.flapList {
		fs.prune(now, m.Cfg.FlapWindow)
		if len(fs.times) == 0 {
			if _, open := m.openIdx[incKey{KindFlap, fs.subject}]; open {
				m.closeIncident(KindFlap, fs.subject, now)
				fs.total = 0
			}
		}
	}
}

// --- Stuck/stalled-flow detector --------------------------------------
//
// Complements the failure watchdog: the watchdog emulates the ~90s NCCL
// timeout that kills the job, this detector reports blackholed flows
// within seconds so the timeline shows the exposure window that reroutes
// (or the watchdog) eventually resolve.

func (m *Monitor) sweepStall(now sim.Time) {
	const subject = "fabric"
	n := m.Net.StalledFlows()
	if n == 0 {
		if m.stalling {
			m.stalling = false
			m.closeIncident(KindStall, subject, now)
		}
		return
	}
	if !m.stalling {
		m.stalling = true
		m.stallSince = now
	}
	_, open := m.openIdx[incKey{KindStall, subject}]
	if !open && now-m.stallSince < m.Cfg.StallAfter {
		return
	}
	inc := m.openIncident(KindStall, subject, m.stallSince, "flows blackholed awaiting reconvergence")
	inc.Events++ // one per tick observed stalled
	if f := float64(n); f > inc.Peak {
		inc.Peak = f
	}
}

// --- Live ECMP polarization detector ----------------------------------
//
// Streams the hash decisions of every routed path into per-(switch, group)
// bucket loads and judges them with hashing.RatioImbalance — the same
// metric the offline hpnview analysis applies to dumped in-band records,
// evaluated online instead. Distinct 5-tuples are counted once per group
// (a reroute or retransmit of the same tuple lands in the same bucket by
// construction and carries no new information).

type groupKey struct {
	node  topo.NodeID
	size  int
	down  bool
	plane int
}

type groupState struct {
	key     groupKey
	subject string
	counts  []float64
	seen    map[uint64]struct{} // tuple words already counted
	mass    int
}

// notePath streams one routed path's hash decisions into the per-group
// bucket loads, judging any group whose distinct-tuple mass crosses the
// floor. now is the caller-observed routing time: during memo replay the
// engine clock is not yet advanced, so the passed time — not Eng.Now() —
// must stamp any incident opened here.
func (m *Monitor) notePath(now sim.Time, f *netsim.Flow, hops []route.HopDecision) {
	for i := range hops {
		h := &hops[i]
		// Per-port Core hashing is deliberately tuple-independent; its
		// fallback mode and non-hashed hops carry no polarization signal.
		if !h.Hashed || h.PerPort || h.Fallback || h.Group < 2 {
			continue
		}
		k := groupKey{node: h.Node, size: h.Group, down: h.Down, plane: m.Net.Top.Link(h.Link).Plane}
		gi, ok := m.groupIdx[k]
		if !ok {
			gi = len(m.groupList)
			m.groupIdx[k] = gi
			dir := "up"
			if h.Down {
				dir = "down"
			}
			m.groupList = append(m.groupList, &groupState{
				key:     k,
				subject: fmt.Sprintf("%s/%s%d", m.Net.Top.Node(h.Node).Name, dir, h.Group),
				counts:  make([]float64, h.Group),
				seen:    map[uint64]struct{}{},
			})
		}
		gs := m.groupList[gi]
		w := f.Tuple.Word()
		if _, dup := gs.seen[w]; dup {
			continue
		}
		gs.seen[w] = struct{}{}
		if h.Bucket >= 0 && h.Bucket < len(gs.counts) {
			gs.counts[h.Bucket]++
			gs.mass++
			m.judgePolarization(now, gs)
		}
	}
}

// judgePolarization judges one group if it has enough distinct-tuple mass.
// The mass floor scales with group size (coupon-collector: a fair hash
// needs ~k ln k tuples to touch every one of k buckets, so judging early
// would read sampling noise as starvation).
func (m *Monitor) judgePolarization(now sim.Time, gs *groupState) {
	need := m.Cfg.PolarizationMinFlows
	if scaled := 6 * gs.key.size; scaled > need {
		need = scaled
	}
	if gs.mass < need {
		return
	}
	ratio := hashing.RatioImbalance(gs.counts, m.Cfg.PolarizationCap)
	if ratio >= m.Cfg.PolarizationRatio {
		inc := m.openIncident(KindPolarization, gs.subject, now,
			fmt.Sprintf("ECMP bucket loads skewed over %d members", gs.key.size))
		inc.Events = gs.mass
		if ratio > inc.Peak {
			inc.Peak = ratio
		}
		m.armTick()
	} else {
		m.closeIncident(KindPolarization, gs.subject, now)
	}
}

// sweepPolarization re-judges every group; the streaming path already
// judges on each new tuple, this keeps open incidents re-evaluated (and
// closable) on the periodic tick.
func (m *Monitor) sweepPolarization(now sim.Time) {
	for _, gs := range m.groupList {
		m.judgePolarization(now, gs)
	}
}

// --- Degraded-throughput detector -------------------------------------
//
// Tracks the effective throughput (bits / completion time) of completed
// flows per power-of-two size class against the class's healthy running
// mean — the observed-vs-expected max-min rate check. A burst of flows
// finishing far below their class mean (stall survivors, polarization
// victims) opens an incident on the class.

type classState struct {
	subject string
	sum     float64 // healthy-flow throughput sum
	n       int
	times   []sim.Time // recent degraded completions
	last    sim.Time
}

func (m *Monitor) noteCompletion(now sim.Time, f *netsim.Flow) {
	d := (f.DoneAt - f.StartedAt).Seconds()
	if d <= 0 || f.Bits <= 0 {
		return
	}
	rate := f.Bits / d
	k := math.Ilogb(f.Bits)
	ci, ok := m.classIdx[k]
	if !ok {
		ci = len(m.classList)
		m.classIdx[k] = ci
		m.classList = append(m.classList, &classState{subject: "flows-" + classLabel(k)})
	}
	cs := m.classList[ci]
	if cs.n < m.Cfg.BaselineFlows {
		cs.sum += rate
		cs.n++
		return
	}
	mean := cs.sum / float64(cs.n)
	frac := rate / mean
	if frac >= m.Cfg.DegradedFraction {
		cs.sum += rate
		cs.n++
		return
	}
	cs.times = append(cs.times, now)
	cs.last = now
	cs.pruneDegraded(now, m.Cfg.DegradedWindow)
	// A degraded completion starts windowed state that must drain (and
	// possibly an incident that must close): keep the sweep running.
	m.armTick()
	if len(cs.times) < m.Cfg.DegradedMinFlows {
		return
	}
	inc := m.openIncident(KindThroughput, cs.subject, cs.times[0],
		fmt.Sprintf("flows completing below %.0f%% of class-mean throughput", m.Cfg.DegradedFraction*100))
	inc.Events++
	// Peak records the worst slowdown factor seen (mean/observed).
	if slow := 1 / frac; slow > inc.Peak {
		inc.Peak = slow
	}
}

func (cs *classState) pruneDegraded(now sim.Time, window sim.Time) {
	cut := 0
	for cut < len(cs.times) && cs.times[cut] <= now-window {
		cut++
	}
	if cut > 0 {
		cs.times = append(cs.times[:0], cs.times[cut:]...)
	}
}

// sweepThroughput closes class incidents once degraded completions stop
// arriving for a full window. Expired degraded timestamps are pruned even
// without an open incident, so a sub-threshold burst drains and lets the
// demand-armed tick disarm.
func (m *Monitor) sweepThroughput(now sim.Time) {
	for _, cs := range m.classList {
		cs.pruneDegraded(now, m.Cfg.DegradedWindow)
		if _, open := m.openIdx[incKey{KindThroughput, cs.subject}]; open && now-cs.last >= m.Cfg.DegradedWindow {
			m.closeIncident(KindThroughput, cs.subject, now)
			cs.times = cs.times[:0]
		}
	}
}

// classLabel names a power-of-two flow size class by its byte magnitude.
func classLabel(bitsExp int) string {
	k := bitsExp - 3 // bits -> bytes exponent
	switch {
	case k < 0:
		return "<1B"
	case k < 10:
		return fmt.Sprintf("%dB", 1<<k)
	case k < 20:
		return fmt.Sprintf("%dKiB", 1<<(k-10))
	case k < 30:
		return fmt.Sprintf("%dMiB", 1<<(k-20))
	case k < 40:
		return fmt.Sprintf("%dGiB", 1<<(k-30))
	default:
		return fmt.Sprintf("%dTiB", uint64(1)<<(k-40))
	}
}

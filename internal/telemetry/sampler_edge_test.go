package telemetry

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSamplerRingWraparound drives a bounded sampler far past its ring
// capacity: the retained window must be exactly the most recent RingCap
// samples, oldest first, with everything earlier evicted.
func TestSamplerRingWraparound(t *testing.T) {
	s := NewSampler(1, 4)
	tick := 0.0
	p := s.Track("v", func() float64 { tick++; return tick })
	for i := 0; i < 10; i++ {
		s.Sample(int64(i) * 1_000_000_000)
	}
	if p.Ring.Len() != 4 {
		t.Fatalf("ring holds %d samples, want 4", p.Ring.Len())
	}
	for i := 0; i < 4; i++ {
		pt := p.Ring.At(i)
		if want := float64(7 + i); pt.V != want {
			t.Fatalf("retained sample %d = %v, want %v (oldest-first window)", i, pt.V, want)
		}
		if want := float64(6 + i); pt.T != want {
			t.Fatalf("retained sample %d at t=%v, want %v", i, pt.T, want)
		}
	}

	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 retained samples:\n%s", len(lines), b.String())
	}
	if lines[1] != "v,6,7" || lines[4] != "v,9,10" {
		t.Fatalf("CSV window wrong:\n%s", b.String())
	}
}

// TestSamplerWriteCSVEmpty covers the zero-probe and zero-sample artifact:
// both must still be a valid CSV (header only), never an error.
func TestSamplerWriteCSVEmpty(t *testing.T) {
	const header = "series,t_seconds,value\n"

	noProbes := NewSampler(1, 4)
	var b bytes.Buffer
	if err := noProbes.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != header {
		t.Fatalf("zero-probe CSV = %q, want header only", b.String())
	}

	noSamples := NewSampler(1, 4)
	noSamples.Track("v", func() float64 { return 1 })
	b.Reset()
	if err := noSamples.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != header {
		t.Fatalf("zero-sample CSV = %q, want header only", b.String())
	}
}

// TestHubWriteArtifacts checks the run-directory dump: every registered
// exporter lands as one file, in registration order, with path separators
// flattened out of artifact names.
func TestHubWriteArtifacts(t *testing.T) {
	h := NewHub(Options{})
	h.Registry.RegisterExporter("b.tsv", func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	})
	h.Registry.RegisterExporter("a/nested.csv", func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	})
	dir := t.TempDir()
	paths, err := h.WriteArtifacts(filepath.Join(dir, "run"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "run", "b.tsv"),
		filepath.Join(dir, "run", "a_nested.csv"),
	}
	if len(paths) != 2 || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i, content := range []string{"second", "first"} {
		got, err := os.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("%s holds %q, want %q", paths[i], got, content)
		}
	}
}

// Package telemetry is the fabric-wide observability substrate every layer
// emits into: a span/instant-event Tracer whose output is Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto), a periodic
// Sampler that snapshots fabric state into bounded ring-buffer series, and
// a counter/gauge Registry with Prometheus-text and JSON exporters.
//
// The package depends only on the standard library (plus the sibling
// metrics package for series types). All timestamps are virtual-clock
// nanoseconds, never wall time, so every artifact is deterministic for a
// fixed seed and diffable across runs.
//
// Every Tracer method is safe on a nil receiver: a disabled tracer costs
// exactly one nil check at each emission point.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Thread IDs partition trace events by emitting layer. Collective groups
// allocate their own IDs starting at TidCollectiveBase so concurrent
// groups render on separate tracks.
const (
	TidSim            = 1
	TidNetsim         = 2
	TidRoute          = 3
	TidWorkload       = 4
	TidFailure        = 5
	TidInband         = 6
	TidMemo           = 7
	TidCollectiveBase = 16
)

// Arg is one key/value attachment on a trace event. Values may be string,
// bool, int, int64, uint64 or float64; anything else is rendered with %v.
type Arg struct {
	K string
	V any
}

// traceCore is the buffer shared by every per-process Tracer view.
type traceCore struct {
	mu      sync.Mutex
	buf     []byte
	events  int
	max     int // 0 = unbounded
	dropped int
	nextPid int
}

// Tracer records trace events for one process (pid) of the trace. Views
// for additional processes — e.g. one per cluster in a multi-cluster
// sweep — share the same buffer via Process.
type Tracer struct {
	core *traceCore
	pid  int
	// hook, when set, observes every event emitted through this view
	// before it reaches the shared buffer (and before the event cap is
	// applied, so capture sees exactly what the emitter sent). Replay via
	// Emit bypasses the hook, so a recorder never captures its own
	// re-emissions.
	hook func(ph byte, tsNS, durNS int64, cat, name string, tid int, args []Arg)
}

// NewTracer returns a tracer for pid 1 with the given event cap
// (0 = unbounded). Once the cap is reached further events are counted as
// dropped rather than recorded.
func NewTracer(maxEvents int) *Tracer {
	return &Tracer{core: &traceCore{max: maxEvents, nextPid: 1}, pid: 1}
}

// Process allocates the next pid, names it, and returns a tracer view for
// it sharing this tracer's buffer. Nil-safe.
func (t *Tracer) Process(name string) *Tracer {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	t.core.nextPid++
	pid := t.core.nextPid - 1
	t.core.mu.Unlock()
	v := &Tracer{core: t.core, pid: pid}
	v.NameProcess(name)
	return v
}

// Pid returns the tracer view's process ID (0 on nil).
func (t *Tracer) Pid() int {
	if t == nil {
		return 0
	}
	return t.pid
}

// Complete records a complete ("X") span: [tsNS, tsNS+durNS) on the given
// thread track. Nil-safe.
func (t *Tracer) Complete(tsNS, durNS int64, cat, name string, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.emit('X', tsNS, durNS, cat, name, tid, args)
}

// Instant records an instant ("i") event at tsNS. Nil-safe.
func (t *Tracer) Instant(tsNS int64, cat, name string, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.emit('i', tsNS, -1, cat, name, tid, args)
}

// Counter records a counter ("C") sample, rendered as a value track.
// Nil-safe.
func (t *Tracer) Counter(tsNS int64, name string, v float64) {
	if t == nil {
		return
	}
	t.emit('C', tsNS, -1, "", name, 0, []Arg{{K: "value", V: v}})
}

// NameProcess emits the process_name metadata record for this view's pid.
// Nil-safe.
func (t *Tracer) NameProcess(name string) {
	if t == nil {
		return
	}
	t.meta("process_name", -1, name)
}

// NameThread emits the thread_name metadata record for tid. Nil-safe.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.meta("thread_name", tid, name)
}

// Events returns the number of recorded events (0 on nil).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.events
}

// Dropped returns the number of events discarded past the cap.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.dropped
}

// WriteTo serializes the whole trace as a Chrome trace-event JSON object.
// On a nil tracer it writes an empty (still valid) trace.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var body []byte
	if t != nil {
		t.core.mu.Lock()
		body = append([]byte(nil), t.core.buf...)
		t.core.mu.Unlock()
	}
	var total int64
	for _, chunk := range [][]byte{
		[]byte(`{"displayTimeUnit":"ns","traceEvents":[` + "\n"),
		body,
		[]byte("\n]}\n"),
	} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SetHook installs (or, with nil, removes) the capture hook for this view.
// The hook runs synchronously on the emitting goroutine; it must not call
// back into the tracer except through Emit. Nil-safe.
func (t *Tracer) SetHook(fn func(ph byte, tsNS, durNS int64, cat, name string, tid int, args []Arg)) {
	if t == nil {
		return
	}
	t.hook = fn
}

// Emit appends one raw event, bypassing the capture hook. It applies the
// same event cap as live emission, so a replayed stream drops (or keeps)
// exactly the events the original run would have. Nil-safe.
func (t *Tracer) Emit(ph byte, tsNS, durNS int64, cat, name string, tid int, args []Arg) {
	if t == nil {
		return
	}
	t.record(ph, tsNS, durNS, cat, name, tid, args)
}

// meta emits a metadata ("M") record; tid < 0 omits the tid field.
func (t *Tracer) meta(kind string, tid int, name string) {
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	b := t.sep()
	b = append(b, `{"name":"`+kind+`","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(t.pid), 10)
	if tid >= 0 {
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
	}
	b = append(b, `,"args":{"name":`...)
	b = appendQuoted(b, name)
	b = append(b, "}}"...)
	t.core.buf = b
	t.core.events++
}

// emit routes one live event through the capture hook (if any) and into
// the buffer.
func (t *Tracer) emit(ph byte, tsNS, durNS int64, cat, name string, tid int, args []Arg) {
	if t.hook != nil {
		t.hook(ph, tsNS, durNS, cat, name, tid, args)
	}
	t.record(ph, tsNS, durNS, cat, name, tid, args)
}

// record appends one event record under the core lock. durNS < 0 omits the
// "dur" field (instants, counters).
func (t *Tracer) record(ph byte, tsNS, durNS int64, cat, name string, tid int, args []Arg) {
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && c.events >= c.max {
		c.dropped++
		return
	}
	b := t.sep()
	b = append(b, `{"name":`...)
	b = appendQuoted(b, name)
	if cat != "" {
		b = append(b, `,"cat":`...)
		b = appendQuoted(b, cat)
	}
	b = append(b, `,"ph":"`...)
	b = append(b, ph, '"')
	b = append(b, `,"ts":`...)
	b = appendMicros(b, tsNS)
	if durNS >= 0 {
		b = append(b, `,"dur":`...)
		b = appendMicros(b, durNS)
	}
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(t.pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	if ph == 'i' {
		b = append(b, `,"s":"t"`...) // thread-scoped instant
	}
	if len(args) > 0 {
		b = append(b, `,"args":{`...)
		for i, a := range args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendQuoted(b, a.K)
			b = append(b, ':')
			b = appendValue(b, a.V)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	c.buf = b
	c.events++
}

// sep returns the buffer with a record separator appended if needed.
// Callers must hold the core lock.
func (t *Tracer) sep() []byte {
	b := t.core.buf
	if len(b) > 0 {
		b = append(b, ',', '\n')
	}
	return b
}

// appendMicros renders virtual nanoseconds as the trace format's
// microsecond timestamps, keeping full ns precision (e.g. 1234 -> 1.234).
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// appendValue renders an Arg value as deterministic JSON.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendQuoted(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	default:
		return appendQuoted(b, fmt.Sprintf("%v", x))
	}
}

// appendQuoted writes s as a JSON string. Event names and args in this
// codebase are ASCII; anything below 0x20 or quoting-sensitive is escaped.
func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, []byte(fmt.Sprintf(`\u%04x`, c))...)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

package telemetry

import "sort"

// This file is the metrics side of iteration memoization (internal/memo):
// a recorder snapshots the registry at the edges of a recorded window and
// replays the counter/histogram movement as a delta, so memoized runs keep
// the same cumulative metrics as re-simulated ones. Gauges are excluded —
// they read live simulator state, which the replay restores directly.

// MetricsSnapshot is a point-in-time copy of every counter and histogram
// in a registry.
type MetricsSnapshot struct {
	counters map[string]float64
	hists    map[string]histState
}

type histState struct {
	counts []uint64
	sum    float64
	n      uint64
}

// SnapshotMetrics copies the current value of every registered counter and
// histogram. Nil-safe (returns an empty snapshot).
func (r *Registry) SnapshotMetrics() *MetricsSnapshot {
	s := &MetricsSnapshot{counters: map[string]float64{}, hists: map[string]histState{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		cs[n] = c
	}
	hs := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hs[n] = h
	}
	r.mu.Unlock()
	// Values are read outside the registry lock: Counter/Histogram carry
	// their own locks, and map fill order is irrelevant here.
	for n, c := range cs {
		s.counters[n] = c.Value()
	}
	for n, h := range hs {
		_, counts, sum, cnt := h.snapshot()
		s.hists[n] = histState{counts: counts, sum: sum, n: cnt}
	}
	return s
}

// MetricsDelta is the movement between two snapshots, held in sorted name
// order so applying it is deterministic.
type MetricsDelta struct {
	counters []counterDelta
	hists    []histDelta
}

type counterDelta struct {
	name string
	d    float64
}

type histDelta struct {
	name   string
	counts []uint64
	sum    float64
	n      uint64
}

// sortedKeys returns a map's keys in sorted order — deltas are built and
// applied name-ordered so memoized metric replay is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DeltaSince returns the movement from base to s (s minus base). Metrics
// absent from base count from zero; zero-movement metrics are elided.
func (s *MetricsSnapshot) DeltaSince(base *MetricsSnapshot) *MetricsDelta {
	d := &MetricsDelta{}
	for _, name := range sortedKeys(s.counters) {
		// Exact comparison on purpose: "moved at all" is the question, and
		// a replayed window must re-apply the bit-exact recorded movement.
		if dv := s.counters[name] - base.counters[name]; dv != 0 { //hpnlint:allow floateq -- zero-movement elision must be exact
			d.counters = append(d.counters, counterDelta{name: name, d: dv})
		}
	}
	for _, name := range sortedKeys(s.hists) {
		h := s.hists[name]
		b := base.hists[name]
		if h.n == b.n && h.sum == b.sum { //hpnlint:allow floateq -- zero-movement elision must be exact
			continue
		}
		hd := histDelta{name: name, sum: h.sum - b.sum, n: h.n - b.n,
			counts: make([]uint64, len(h.counts))}
		for i := range h.counts {
			var bv uint64
			if i < len(b.counts) {
				bv = b.counts[i]
			}
			hd.counts[i] = h.counts[i] - bv
		}
		d.hists = append(d.hists, hd)
	}
	return d
}

// MergeDeltas sums any number of deltas into one (union by name).
func MergeDeltas(deltas ...*MetricsDelta) *MetricsDelta {
	cs := map[string]float64{}
	hs := map[string]histDelta{}
	for _, d := range deltas {
		if d == nil {
			continue
		}
		for _, c := range d.counters {
			cs[c.name] += c.d
		}
		for _, h := range d.hists {
			cur, ok := hs[h.name]
			if !ok {
				cur = histDelta{name: h.name, counts: make([]uint64, len(h.counts))}
			}
			for i, v := range h.counts {
				if i < len(cur.counts) {
					cur.counts[i] += v
				} else {
					cur.counts = append(cur.counts, v)
				}
			}
			cur.sum += h.sum
			cur.n += h.n
			hs[h.name] = cur
		}
	}
	out := &MetricsDelta{}
	for _, name := range sortedKeys(cs) {
		out.counters = append(out.counters, counterDelta{name: name, d: cs[name]})
	}
	for _, name := range sortedKeys(hs) {
		out.hists = append(out.hists, hs[name])
	}
	return out
}

// Exclude drops the named counters from the delta in place. The memo
// recorder uses it for metrics an observer owns and re-increments while
// its callbacks are replayed (see memo's LiveMetricsOwner): leaving them
// in the delta would double-count every replayed window.
func (d *MetricsDelta) Exclude(names []string) {
	if d == nil || len(names) == 0 {
		return
	}
	kept := d.counters[:0]
	for _, c := range d.counters {
		drop := false
		for _, n := range names {
			if c.name == n {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, c)
		}
	}
	d.counters = kept
}

// Empty reports whether the delta moves nothing.
func (d *MetricsDelta) Empty() bool {
	return d == nil || (len(d.counters) == 0 && len(d.hists) == 0)
}

// ApplyMetricsDelta adds the delta into the registry's counters and
// histograms, in sorted name order. Metrics that no longer exist are
// skipped (a recorded window only ever references metrics the same run
// registered, so this is a belt-and-braces guard). Nil-safe.
func (r *Registry) ApplyMetricsDelta(d *MetricsDelta) {
	if r == nil || d == nil {
		return
	}
	for _, c := range d.counters {
		r.mu.Lock()
		ctr := r.counters[c.name]
		r.mu.Unlock()
		ctr.Add(c.d)
	}
	for _, h := range d.hists {
		r.mu.Lock()
		hist := r.histograms[h.name]
		r.mu.Unlock()
		hist.addDelta(h.counts, h.sum, h.n)
	}
}

// Absorb folds every counter and histogram of src into r, creating
// metrics that don't exist yet (same name, help and bucket bounds). The
// sharded runner calls it once per shard registry after the engines drain,
// in shard order on one goroutine, so suffix-summing readers (MetricSum,
// the Prometheus/JSON exports) see the whole ensemble through the base
// registry. Gauges are not absorbed: they are live views of per-shard
// state and remain readable through each shard hub's own artifacts.
func (r *Registry) Absorb(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	cs := make(map[string]*Counter, len(src.counters))
	for n, c := range src.counters {
		cs[n] = c
	}
	hs := make(map[string]*Histogram, len(src.histograms))
	for n, h := range src.histograms {
		hs[n] = h
	}
	src.mu.Unlock()
	for _, name := range sortedKeys(cs) {
		c := cs[name]
		if v := c.Value(); v != 0 { //hpnlint:allow floateq -- zero-valued counters are elided exactly, like DeltaSince
			r.Counter(name, c.help).Add(v)
		}
	}
	for _, name := range sortedKeys(hs) {
		h := hs[name]
		bounds, counts, sum, n := h.snapshot()
		if n == 0 {
			continue
		}
		r.Histogram(name, h.help, bounds).addDelta(counts, sum, n)
	}
}

// addDelta folds a recorded movement into the histogram. Nil-safe.
func (h *Histogram) addDelta(counts []uint64, sum float64, n uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for i, v := range counts {
		if i < len(h.counts) {
			h.counts[i] += v
		}
	}
	h.sum += sum
	h.n += n
	h.mu.Unlock()
}

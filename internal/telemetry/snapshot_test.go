package telemetry

import "testing"

func TestMetricsDeltaRoundTrip(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "")
	b := r.Counter("b_total", "")
	h := r.Histogram("lat", "", []float64{1, 10, 100})

	a.Add(3)
	base := r.SnapshotMetrics()

	a.Add(2)
	b.Inc()
	h.Observe(5)
	h.Observe(500)
	d := r.SnapshotMetrics().DeltaSince(base)
	if d.Empty() {
		t.Fatal("delta of a moved registry is empty")
	}

	// Applying the delta once more must move everything by the same amount.
	r.ApplyMetricsDelta(d)
	if got := a.Value(); got != 7 {
		t.Errorf("a = %v after re-apply, want 7", got)
	}
	if got := b.Value(); got != 2 {
		t.Errorf("b = %v after re-apply, want 2", got)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("hist count = %d after re-apply, want 4", got)
	}
	if got := h.Sum(); got != 1010 {
		t.Errorf("hist sum = %v after re-apply, want 1010", got)
	}
}

func TestMetricsDeltaElidesUnmoved(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "")
	r.Counter("quiet_total", "").Add(9)
	r.Histogram("quiet_lat", "", []float64{1}).Observe(0.5)

	base := r.SnapshotMetrics()
	a.Inc()
	d := r.SnapshotMetrics().DeltaSince(base)
	if len(d.counters) != 1 || d.counters[0].name != "a_total" {
		t.Fatalf("counters = %+v, want only a_total", d.counters)
	}
	if len(d.hists) != 0 {
		t.Fatalf("hists = %+v, want none", d.hists)
	}
}

func TestMergeDeltasAndExclude(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "")
	b := r.Counter("b_total", "")

	s0 := r.SnapshotMetrics()
	a.Add(1)
	s1 := r.SnapshotMetrics()
	a.Add(2)
	b.Add(4)
	s2 := r.SnapshotMetrics()

	m := MergeDeltas(s1.DeltaSince(s0), s2.DeltaSince(s1), nil)
	if len(m.counters) != 2 {
		t.Fatalf("merged counters = %+v, want 2 entries", m.counters)
	}
	if m.counters[0].name != "a_total" || m.counters[0].d != 3 {
		t.Errorf("merged a = %+v, want 3", m.counters[0])
	}

	m.Exclude([]string{"a_total"})
	if len(m.counters) != 1 || m.counters[0].name != "b_total" {
		t.Fatalf("after Exclude, counters = %+v, want only b_total", m.counters)
	}
	m.Exclude(nil)
	var nilDelta *MetricsDelta
	nilDelta.Exclude([]string{"a_total"}) // must not panic
	if !nilDelta.Empty() {
		t.Fatal("nil delta is not empty")
	}
}

package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"hpn/internal/metrics"
)

// SamplerProbe is one registered gauge the sampler snapshots each tick.
type SamplerProbe struct {
	Name string
	Fn   func() float64
	Ring *metrics.Ring
}

// Sampler periodically snapshots a set of probes — per-port utilization,
// queue pressure, per-tier traffic, flow counts — into bounded ring-buffer
// series. It is driven by the owning simulation engine (virtual time), so
// sample timestamps are deterministic.
type Sampler struct {
	// Interval is the virtual time between snapshots, in nanoseconds.
	Interval int64
	// RingCap bounds each probe's retained series (0 = unbounded).
	RingCap int

	mu     sync.Mutex
	probes []*SamplerProbe
	tracer *Tracer
}

// NewSampler returns a sampler with the given period and per-series bound.
func NewSampler(intervalNS int64, ringCap int) *Sampler {
	return &Sampler{Interval: intervalNS, RingCap: ringCap}
}

// AttachTracer mirrors every snapshot into the trace as counter tracks, so
// the sampled series render alongside spans in Perfetto.
func (s *Sampler) AttachTracer(t *Tracer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// Track registers a probe; its value is recorded on every Sample call.
// Nil-safe (returns nil when the sampler is disabled).
func (s *Sampler) Track(name string, fn func() float64) *SamplerProbe {
	if s == nil || fn == nil {
		return nil
	}
	ring := metrics.NewRing(s.RingCap)
	ring.Name = name
	p := &SamplerProbe{Name: name, Fn: fn, Ring: ring}
	s.mu.Lock()
	s.probes = append(s.probes, p)
	s.mu.Unlock()
	return p
}

// Sample takes one snapshot of every probe at the given virtual time.
// Nil-safe.
func (s *Sampler) Sample(nowNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	probes := s.probes
	tr := s.tracer
	s.mu.Unlock()
	t := float64(nowNS) / 1e9
	for _, p := range probes {
		v := p.Fn()
		p.Ring.Add(t, v)
		tr.Counter(nowNS, p.Name, v)
	}
}

// Probes returns the registered probes in registration order.
func (s *Sampler) Probes() []*SamplerProbe {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*SamplerProbe(nil), s.probes...)
}

// Series unrolls every probe ring into plain series, in registration
// order.
func (s *Sampler) Series() []*metrics.Series {
	probes := s.Probes()
	out := make([]*metrics.Series, 0, len(probes))
	for _, p := range probes {
		out = append(out, p.Ring.Series())
	}
	return out
}

// WriteCSV dumps every retained sample in long form (series,t,value), the
// format the repo's CSV tooling already consumes.
func (s *Sampler) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("series,t_seconds,value\n")
	for _, p := range s.Probes() {
		for i := 0; i < p.Ring.Len(); i++ {
			pt := p.Ring.At(i)
			fmt.Fprintf(&b, "%s,%s,%s\n", p.Name,
				strconv.FormatFloat(pt.T, 'g', -1, 64),
				strconv.FormatFloat(pt.V, 'g', -1, 64))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"hpn/internal/prof"
)

// Options configures a Hub.
type Options struct {
	// Trace enables span/instant-event recording (Chrome trace JSON).
	Trace bool
	// MaxTraceEvents bounds the trace buffer (0 = unbounded); events past
	// the cap are counted as dropped.
	MaxTraceEvents int
	// SampleInterval is the sampler period in virtual nanoseconds
	// (0 disables periodic sampling).
	SampleInterval int64
	// RingCap bounds each sampled series to its most recent RingCap
	// samples (0 = unbounded).
	RingCap int
	// SamplePorts caps how many ToR uplink ports a cluster auto-tracks
	// for per-port utilization/queue sampling.
	SamplePorts int
	// Inband enables in-band path telemetry on attached clusters: per-flow
	// per-hop records (bandwidth attribution, queue residency, ECMP hash
	// decisions) exported as the "inband.tsv"/"inband.json" artifacts.
	Inband bool
	// InbandMax bounds the retained per-hop records per cluster
	// (0 = unbounded); records past the cap are counted as dropped.
	InbandMax int
	// Health attaches the online fabric health monitor to each cluster:
	// streaming flap/stall/polarization/throughput detectors plus
	// per-iteration attribution, exported as the "incidents.tsv" and
	// "incidents.json" artifacts (rendered by hpndoctor).
	Health bool
	// Memo attaches the iteration-memoization recorder to each cluster:
	// repeated training iterations are fingerprinted and fast-forwarded
	// from a recorded window instead of re-simulated (see internal/memo).
	// Incompatible with periodic sampling — the sampler's tick would land
	// inside every window; runners force SampleInterval to 0 under -memo.
	Memo bool
	// Prof enables engine self-profiling (internal/prof): per-phase
	// wall/alloc/count accumulators across sim, netsim, memo and the
	// artifact writers, a bounded flight recorder of recent fabric events,
	// and the "prof.tsv"/"prof.json"/"flight.tsv" artifacts. Phase counts
	// and flight contents are deterministic; wall/alloc fields are host
	// measurements, published only through these artifacts and registry
	// gauges (never counters), so golden artifacts and memo replay stay
	// byte-identical with profiling on.
	Prof bool
}

// DefaultOptions enables tracing and a 10ms-virtual-time sampler keeping
// the last 4096 samples of 16 auto-tracked ports.
func DefaultOptions() Options {
	return Options{
		Trace:          true,
		SampleInterval: 10_000_000, // 10ms of virtual time
		RingCap:        4096,
		SamplePorts:    16,
	}
}

// Hub bundles one run's telemetry surfaces: a shared Tracer (one process
// per attached cluster), a shared Registry, and one Sampler per cluster.
type Hub struct {
	Opt      Options
	Tracer   *Tracer // nil when tracing is disabled
	Registry *Registry
	// Prof and Flight are shared across every attached cluster (like the
	// Tracer): phases accumulate process-wide, the flight ring interleaves
	// all clusters' fabric events. Both nil when profiling is disabled.
	Prof   *prof.Profiler
	Flight *prof.Flight

	mu       sync.Mutex
	samplers []*Sampler
	clusters int

	// parent, on a hub derived with ShardHub, is the root hub that owns
	// cluster-prefix allocation. Everything byte-producing (Tracer,
	// Registry, Flight) is private per shard hub so concurrent shard
	// windows never interleave writes; the profiler is shared (its
	// accumulators are atomic and its counts order-independent).
	parent *Hub
}

// NewHub builds a hub from opt.
func NewHub(opt Options) *Hub {
	h := &Hub{Opt: opt, Registry: NewRegistry()}
	if opt.Trace {
		h.Tracer = NewTracer(opt.MaxTraceEvents)
	}
	if opt.Prof {
		h.Prof = prof.New()
		h.Flight = prof.NewFlight(0)
		h.Prof.BindMetrics(h.Registry, "prof_")
		h.Registry.RegisterExporter("prof.tsv", h.Prof.WriteTSV)
		h.Registry.RegisterExporter("prof.json", h.Prof.WriteJSON)
		h.Registry.RegisterExporter("flight.tsv", h.Flight.WriteTSV)
	}
	return h
}

// JoinCluster allocates the metric-name prefix and sampler for the next
// cluster attached to this hub. The first cluster is unprefixed so
// single-cluster runs keep clean metric names; later clusters get "c2_",
// "c3_", ... On a shard hub the prefix comes from the root hub's counter,
// so prefixes stay globally unique across the whole sharded ensemble and
// the shard's private artifacts (trace, flight ring) register under it.
// The sampler is nil when sampling is disabled.
func (h *Hub) JoinCluster() (prefix string, smp *Sampler) {
	if h.parent != nil {
		prefix = h.parent.allocPrefix()
		if h.Tracer != nil {
			h.Registry.RegisterExporter(prefix+"trace.json", func(w io.Writer) error {
				_, err := h.Tracer.WriteTo(w)
				return err
			})
		}
		if h.Flight != nil {
			h.Registry.RegisterExporter(prefix+"flight.tsv", h.Flight.WriteTSV)
		}
	} else {
		prefix = h.allocPrefix()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.Opt.SampleInterval > 0 {
		smp = NewSampler(h.Opt.SampleInterval, h.Opt.RingCap)
		smp.AttachTracer(h.Tracer)
		h.samplers = append(h.samplers, smp)
	}
	return prefix, smp
}

// allocPrefix hands out the next cluster prefix ("", "c2_", "c3_", ...).
func (h *Hub) allocPrefix() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clusters++
	if h.clusters > 1 {
		return fmt.Sprintf("c%d_", h.clusters)
	}
	return ""
}

// ShardHub derives a hub for one shard domain of a sharded run. The shard
// hub shares the root's Options and Profiler (atomic accumulators;
// deterministic counts) but owns a fresh Tracer, Registry and Flight
// recorder: all three serialize records into byte streams under the
// assumption of a single writer, so concurrent shard windows must each
// write their own. Cluster prefixes are still allocated by the root
// (JoinCluster delegates), keeping metric names and artifact names unique
// across the ensemble; fold shard counters back with Registry.Absorb once
// the run is done and the engines are quiescent.
func (h *Hub) ShardHub() *Hub {
	root := h
	if h.parent != nil {
		root = h.parent
	}
	sh := &Hub{Opt: root.Opt, Registry: NewRegistry(), parent: root, Prof: root.Prof}
	if root.Opt.Trace {
		sh.Tracer = NewTracer(root.Opt.MaxTraceEvents)
	}
	if root.Prof != nil {
		sh.Flight = prof.NewFlight(0)
	}
	return sh
}

// Samplers returns every per-cluster sampler created so far.
func (h *Hub) Samplers() []*Sampler {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Sampler(nil), h.samplers...)
}

// WriteArtifacts runs every registered artifact exporter, writing each to
// dir/<name> (path separators in names are flattened to '_'). It returns
// the paths written, in exporter registration order.
func (h *Hub) WriteArtifacts(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, name := range h.Registry.ExporterNames() {
		base := strings.Map(func(r rune) rune {
			if r == '/' || r == os.PathSeparator {
				return '_'
			}
			return r
		}, name)
		path := filepath.Join(dir, base)
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		// Artifact writers get their own alloc-tracked phase each: flush
		// cost per artifact is exactly what the prof report needs to weigh
		// observability overhead against simulation time. The profiler's
		// own artifacts participate too (their phases show up in the next
		// run's report, or at zero count in their own — zero-count phases
		// are omitted from output).
		ph := h.Prof.PhaseAlloc("artifact/"+name, "exporting the "+name+" artifact")
		tk := ph.Begin()
		err = h.Registry.Export(name, f)
		ph.End(tk)
		if err != nil {
			f.Close()
			return paths, fmt.Errorf("telemetry: exporting %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

package telemetry

import (
	"sort"
	"strconv"
	"sync"
)

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds are
// set at registration (log-spaced via LogBuckets, typically) and never
// change, so observation is O(log buckets) and export is deterministic.
// Like Counter, all methods are safe on a nil receiver: layers hold nil
// histograms while telemetry is disabled and pay one nil check per
// observation.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; implicit +Inf overflow

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is the overflow
	sum    float64
	n      uint64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	// First bound >= v: Prometheus `le` semantics (upper-inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns the bounds plus a consistent copy of the counts/sum.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.sum, h.n
}

// LogBuckets returns n log-spaced bucket upper bounds: lo, lo*factor,
// lo*factor^2, ... It panics on a non-positive lo, a factor <= 1 or n < 1
// — bucket shapes are compile-time decisions, not runtime input.
func LogBuckets(lo, factor float64, n int) []float64 {
	if lo <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: LogBuckets needs lo > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := lo
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given bucket bounds (the first registration's help
// and bounds win). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// histSnapshot returns every registered histogram sorted by name.
func (r *Registry) histSnapshot() []*Histogram {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return hs
}

// histRows flattens every histogram into metric rows with cumulative
// bucket counts, for the flat JSON export (the Prometheus export renders
// histograms natively instead).
func (r *Registry) histRows() []metricRow {
	var rows []metricRow
	for _, h := range r.histSnapshot() {
		bounds, counts, sum, n := h.snapshot()
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			rows = append(rows, metricRow{
				name: h.name + "_bucket_le_" + strconv.FormatFloat(b, 'g', -1, 64),
				v:    float64(cum),
			})
		}
		rows = append(rows,
			metricRow{name: h.name + "_sum", v: sum},
			metricRow{name: h.name + "_count", v: float64(n)})
	}
	return rows
}

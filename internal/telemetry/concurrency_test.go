package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrentUse pins the registry's concurrency contract under
// the race detector: counters, a gauge-backing value and a histogram are
// hammered from writer goroutines while exporters snapshot concurrently
// (Prometheus text, JSON, and the counter/histogram metrics snapshot).
// The profiler publishes its phases as gauges through this same surface
// from parallel fill workers, so this contract must hold before prof adds
// more writers.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("hammer_total", "concurrent counter")
	hist := r.Histogram("hammer_seconds", "concurrent histogram", LogBuckets(1e-6, 10, 6))
	// Gauge callbacks run outside the registry lock at snapshot time, so
	// the backing value must be safe to read concurrently — atomics here,
	// exactly what prof's shard accumulators do.
	var gaugeVal atomic.Int64
	r.Gauge("hammer_gauge", "concurrent gauge", func() float64 {
		return float64(gaugeVal.Load())
	})

	const writers = 4
	const iters = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				ctr.Inc()
				hist.Observe(float64(i%10) * 1e-5)
				gaugeVal.Add(1)
			}
		}(w)
	}
	for e := 0; e < 3; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				switch e {
				case 0:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				case 1:
					if err := r.WriteJSON(io.Discard); err != nil {
						t.Errorf("WriteJSON: %v", err)
						return
					}
				default:
					r.SnapshotMetrics()
				}
			}
		}(e)
	}
	close(start)
	wg.Wait()

	if got := ctr.Value(); got != writers*iters {
		t.Fatalf("counter = %v, want %d", got, writers*iters)
	}
	if got := hist.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	if got := gaugeVal.Load(); got != writers*iters {
		t.Fatalf("gauge backing value = %d, want %d", got, writers*iters)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counter is a named monotonic counter registered in a Registry. All
// methods are safe on a nil receiver, so layers hold nil counters while
// telemetry is disabled and pay one nil check per increment.
type Counter struct {
	name, help string

	mu sync.Mutex
	v  float64
}

// Inc adds 1. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. Nil-safe.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// gauge is a read-on-export metric backed by a callback.
type gauge struct {
	help string
	fn   func() float64
}

// Registry holds counters, gauges and named artifact exporters. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*gauge
	histograms    map[string]*Histogram
	exporters     map[string]func(io.Writer) error
	exporterOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*gauge{},
		histograms: map[string]*Histogram{},
		exporters:  map[string]func(io.Writer) error{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use (the help string of the first registration wins). A nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge registers a callback-backed gauge; re-registering a name replaces
// the callback. Nil-safe.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = &gauge{help: help, fn: fn}
	r.mu.Unlock()
}

// RegisterExporter registers a named artifact writer (a flow log, a
// sampler dump, ...). Re-registering a name replaces the writer but keeps
// its original position. Nil-safe.
func (r *Registry) RegisterExporter(name string, fn func(io.Writer) error) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.exporters[name]; !ok {
		r.exporterOrder = append(r.exporterOrder, name)
	}
	r.exporters[name] = fn
	r.mu.Unlock()
}

// ExporterNames lists registered exporters in registration order.
func (r *Registry) ExporterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.exporterOrder...)
}

// Export runs the named exporter against w.
func (r *Registry) Export(name string, w io.Writer) error {
	if r == nil {
		return fmt.Errorf("telemetry: no registry")
	}
	r.mu.Lock()
	fn := r.exporters[name]
	r.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("telemetry: unknown exporter %q (have %v)", name, r.ExporterNames())
	}
	return fn(w)
}

// metricRow is one resolved metric at export time.
type metricRow struct {
	name, help, typ string
	v               float64
}

// snapshot resolves every counter and gauge to a sorted row list.
func (r *Registry) snapshot() []metricRow {
	r.mu.Lock()
	rows := make([]metricRow, 0, len(r.counters)+len(r.gauges))
	gauges := make(map[string]*gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	for n, c := range r.counters {
		rows = append(rows, metricRow{name: n, help: c.help, typ: "counter", v: c.Value()})
	}
	r.mu.Unlock()
	// Gauge callbacks run outside the registry lock: they read simulator
	// state and must not deadlock against registration.
	for n, g := range gauges {
		rows = append(rows, metricRow{name: n, help: g.help, typ: "gauge", v: g.fn()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// WritePrometheus renders every counter, gauge and histogram in the
// Prometheus text exposition format, sorted by name for deterministic
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, row := range r.snapshot() {
		name := SanitizeMetricName(row.name)
		if row.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, row.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, row.typ)
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(row.v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	for _, h := range r.histSnapshot() {
		bounds, counts, sum, n := h.snapshot()
		name := SanitizeMetricName(h.name)
		if h.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h.help)
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range bounds {
			cum += counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name,
				strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, n)
		fmt.Fprintf(&b, "%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count %d\n", name, n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every counter, gauge and (flattened) histogram as one
// sorted JSON object keyed by metric name. Histograms flatten to
// `name_bucket_le_<bound>` cumulative counts plus `name_sum`/`name_count`
// so the object stays a flat name->number map (consumers like hpnbench's
// -compare rely on that shape).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("{\n")
	rows := append(r.snapshot(), r.histRows()...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for i, row := range rows {
		b.Write(appendQuoted(nil, row.name))
		b.WriteString(": ")
		b.WriteString(strconv.FormatFloat(row.v, 'g', -1, 64))
		if i+1 < len(rows) {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SanitizeMetricName maps an internal metric name onto the Prometheus
// charset [a-zA-Z0-9_:]; everything else becomes '_'.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// traceDoc mirrors the Chrome trace-event JSON container for validation.
type traceDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

func parseTrace(t *testing.T, tr *Tracer) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestTracerEmitsValidChromeTraceJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.NameProcess("cluster")
	tr.NameThread(TidNetsim, "netsim")
	tr.Complete(1234, 5678, "netsim", "flow", TidNetsim,
		Arg{K: "id", V: int64(7)}, Arg{K: "bytes", V: 1.5e9},
		Arg{K: "src", V: `host "0"`}, Arg{K: "ok", V: true})
	tr.Instant(2000, "netsim", "link_down", TidNetsim, Arg{K: "link", V: 3})
	tr.Counter(3000, "active_flows", 42)

	doc := parseTrace(t, tr)
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["cat"] != "netsim" || span["name"] != "flow" {
		t.Errorf("span fields wrong: %v", span)
	}
	// 1234ns renders as 1.234 microseconds.
	if span["ts"] != 1.234 {
		t.Errorf("ts = %v, want 1.234", span["ts"])
	}
	if span["dur"] != 5.678 {
		t.Errorf("dur = %v, want 5.678", span["dur"])
	}
	args := span["args"].(map[string]any)
	if args["src"] != `host "0"` {
		t.Errorf("quoted arg survived as %q", args["src"])
	}
	inst := doc.TraceEvents[3]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Errorf("instant fields wrong: %v", inst)
	}
	ctr := doc.TraceEvents[4]
	if ctr["ph"] != "C" || ctr["args"].(map[string]any)["value"] != 42.0 {
		t.Errorf("counter fields wrong: %v", ctr)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Complete(0, 1, "c", "n", 1)
	tr.Instant(0, "c", "n", 1)
	tr.Counter(0, "n", 1)
	tr.NameProcess("p")
	tr.NameThread(1, "t")
	if tr.Process("x") != nil {
		t.Error("nil.Process should stay nil")
	}
	if tr.Events() != 0 || tr.Dropped() != 0 || tr.Pid() != 0 {
		t.Error("nil tracer should report zeros")
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("nil WriteTo: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil trace has %d events", len(doc.TraceEvents))
	}
}

func TestTracerDeterministicOutput(t *testing.T) {
	build := func() []byte {
		tr := NewTracer(0)
		p2 := tr.Process("c2")
		tr.Complete(10, 20, "a", "one", 1, Arg{K: "v", V: 0.1})
		p2.Instant(30, "b", "two", 2)
		tr.Counter(40, "c", 3.14159)
		var buf bytes.Buffer
		tr.WriteTo(&buf)
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical emission sequences produced different bytes")
	}
}

func TestTracerMaxEventsDrops(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Instant(int64(i), "c", "e", 1)
	}
	if tr.Events() != 3 {
		t.Errorf("events = %d, want 3", tr.Events())
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", tr.Dropped())
	}
	if n := len(parseTrace(t, tr).TraceEvents); n != 3 {
		t.Errorf("serialized %d events, want 3", n)
	}
}

func TestTracerProcessViewsShareBuffer(t *testing.T) {
	tr := NewTracer(0)
	a := tr.Process("alpha")
	b := tr.Process("beta")
	a.Instant(1, "c", "ea", 1)
	b.Instant(2, "c", "eb", 1)
	if a.Pid() == b.Pid() {
		t.Fatalf("views share pid %d", a.Pid())
	}
	doc := parseTrace(t, tr)
	pids := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) < 2 {
		t.Errorf("expected >=2 pids in trace, got %v", pids)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flows_total", "completed flows")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %v, want 3", c.Value())
	}
	if r.Counter("flows_total", "other help") != c {
		t.Error("re-registering a counter should return the original")
	}
	r.Gauge("active", "live flows", func() float64 { return 5 })

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"# HELP flows_total completed flows",
		"# TYPE flows_total counter",
		"flows_total 3",
		"# TYPE active gauge",
		"active 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// "active" sorts before "flows_total".
	if strings.Index(out, "active 5") > strings.Index(out, "flows_total 3") {
		t.Error("metrics not sorted by name")
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(js.String()), &m); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, js.String())
	}
	if m["flows_total"] != 3 || m["active"] != 5 {
		t.Errorf("metrics JSON = %v", m)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc() // nil counter
	if c.Value() != 0 {
		t.Error("nil counter should stay 0")
	}
	r.Gauge("g", "", func() float64 { return 1 })
	r.RegisterExporter("e", func(io.Writer) error { return nil })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if names := r.ExporterNames(); names != nil {
		t.Errorf("nil registry exporters = %v", names)
	}
}

func TestRegistryExporters(t *testing.T) {
	r := NewRegistry()
	r.RegisterExporter("b.tsv", func(w io.Writer) error {
		_, err := w.Write([]byte("bee"))
		return err
	})
	r.RegisterExporter("a.csv", func(w io.Writer) error {
		_, err := w.Write([]byte("ay"))
		return err
	})
	if got := r.ExporterNames(); len(got) != 2 || got[0] != "b.tsv" || got[1] != "a.csv" {
		t.Errorf("exporter order = %v, want registration order", got)
	}
	var buf bytes.Buffer
	if err := r.Export("b.tsv", &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "bee" {
		t.Errorf("exported %q", buf.String())
	}
	if err := r.Export("missing", &buf); err == nil {
		t.Error("unknown exporter should error")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"tor-1/up0/util_bps": "tor_1_up0_util_bps",
		"9lives":             "_lives",
		"ok_name:sub":        "ok_name:sub",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSamplerSnapshotsAndBounds(t *testing.T) {
	s := NewSampler(1000, 3)
	v := 0.0
	p := s.Track("val", func() float64 { v++; return v })
	for i := 0; i < 10; i++ {
		s.Sample(int64(i) * 1000)
	}
	if p.Ring.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", p.Ring.Len())
	}
	// Most recent window: samples 8, 9, 10.
	for i := 0; i < 3; i++ {
		if got := p.Ring.At(i).V; got != float64(8+i) {
			t.Errorf("At(%d).V = %v, want %v", i, got, float64(8+i))
		}
	}
	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "series,t_seconds,value\n") {
		t.Errorf("csv header wrong: %q", csv.String())
	}
	if !strings.Contains(csv.String(), "val,") {
		t.Errorf("csv missing series rows: %q", csv.String())
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.AttachTracer(nil)
	if s.Track("x", func() float64 { return 0 }) != nil {
		t.Error("nil sampler Track should return nil")
	}
	s.Sample(0)
	if s.Probes() != nil {
		t.Error("nil sampler should have no probes")
	}
}

func TestSamplerMirrorsIntoTrace(t *testing.T) {
	tr := NewTracer(0)
	s := NewSampler(1000, 0)
	s.AttachTracer(tr)
	s.Track("util", func() float64 { return 7 })
	s.Sample(5000)
	doc := parseTrace(t, tr)
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d trace events, want 1 counter", len(doc.TraceEvents))
	}
	e := doc.TraceEvents[0]
	if e["ph"] != "C" || e["name"] != "util" {
		t.Errorf("mirrored event wrong: %v", e)
	}
}

func TestHubJoinClusterPrefixes(t *testing.T) {
	h := NewHub(DefaultOptions())
	p1, s1 := h.JoinCluster()
	p2, s2 := h.JoinCluster()
	if p1 != "" {
		t.Errorf("first cluster prefix = %q, want empty", p1)
	}
	if p2 != "c2_" {
		t.Errorf("second cluster prefix = %q, want c2_", p2)
	}
	if s1 == nil || s2 == nil || s1 == s2 {
		t.Error("each cluster should get its own sampler")
	}
	if len(h.Samplers()) != 2 {
		t.Errorf("hub tracks %d samplers, want 2", len(h.Samplers()))
	}
	if h.Tracer == nil {
		t.Error("default options should enable tracing")
	}
}

func TestHubDisabledSurfaces(t *testing.T) {
	h := NewHub(Options{}) // everything off
	if h.Tracer != nil {
		t.Error("tracing disabled but Tracer non-nil")
	}
	if _, smp := h.JoinCluster(); smp != nil {
		t.Error("sampling disabled but sampler non-nil")
	}
}

// Package workload models the training side of the paper: LLM
// specifications, the traffic each parallelism strategy generates (Table 3),
// the production job mix (Figure 6), checkpointing economics (Figure 4,
// §2.3), per-host connection counts (Figure 3), the general cloud-computing
// traffic baseline (Figure 1), and an event-driven training-iteration
// simulator that produces the bursty NIC pattern of Figure 2 and the
// end-to-end performance numbers of Figures 15, 16 and 18.
package workload

import "fmt"

// ModelSpec describes an LLM and the calibration constants that place its
// absolute throughput in the paper's ranges. The architecture comparisons
// never depend on these constants: both fabrics share them.
type ModelSpec struct {
	Name   string
	Params float64 // parameter count
	Layers int
	Hidden int
	SeqLen int
	// DTypeBytes is the gradient/activation element size (2 = fp16/bf16).
	DTypeBytes float64

	// EffectiveTFLOPs is the realized per-GPU compute throughput
	// (hardware peak x MFU), calibrated per model size.
	EffectiveTFLOPs float64
	// BatchPerGPU is the sequences each GPU processes per iteration (the
	// global batch scales with the job, keeping per-GPU compute constant
	// across scales, as production jobs do).
	BatchPerGPU float64
	// Overlap is the fraction of compute time available to hide
	// communication (gradient sync overlapping backward).
	Overlap float64
}

// The paper's representative models (§9.1).
var (
	LLaMa7B = ModelSpec{
		Name: "LLaMa-7B", Params: 7e9, Layers: 32, Hidden: 4096, SeqLen: 2048,
		DTypeBytes: 2, EffectiveTFLOPs: 150, BatchPerGPU: 1, Overlap: 0.25,
	}
	LLaMa13B = ModelSpec{
		Name: "LLaMa-13B", Params: 13e9, Layers: 40, Hidden: 5120, SeqLen: 2048,
		DTypeBytes: 2, EffectiveTFLOPs: 180, BatchPerGPU: 1, Overlap: 0.05,
	}
	GPT175B = ModelSpec{
		Name: "GPT-175B", Params: 175e9, Layers: 96, Hidden: 12288, SeqLen: 2048,
		DTypeBytes: 2, EffectiveTFLOPs: 90, BatchPerGPU: 0.143, Overlap: 0.05,
	}
)

// Parallelism is a TP/PP/DP decomposition.
type Parallelism struct {
	TP, PP, DP int
}

// GPUs returns the total GPU count of the decomposition.
func (p Parallelism) GPUs() int { return p.TP * p.PP * p.DP }

// Validate rejects degenerate decompositions.
func (p Parallelism) Validate() error {
	if p.TP <= 0 || p.PP <= 0 || p.DP <= 0 {
		return fmt.Errorf("workload: non-positive parallelism %+v", p)
	}
	return nil
}

// Traffic is one row of Table 3: the per-operation communication volume a
// parallel strategy generates.
type Traffic struct {
	Strategy  string
	Bytes     float64
	Operation string
}

// microTokensPerPPSend is the pipeline chunk: activations of a 256-token
// slice cross the stage boundary per send.
const microTokensPerPPSend = 256

// tpSyncTokens is the aggregate token count per TP synchronization,
// calibrated so GPT-3 175B reproduces Table 3's 560MB (the TP AllReduce
// batches several microbatches' activations).
const tpSyncTokens = 22800

// DPVolume is the data-parallel AllReduce message: each GPU's gradient
// shard, params/(TP*PP) elements. For GPT-3 175B with TP=8, PP=8 this is
// 175e9/64 * 2B = 5.5GB — Table 3's headline number, derived, not assumed.
func DPVolume(m ModelSpec, p Parallelism) float64 {
	return m.Params / float64(p.TP*p.PP) * m.DTypeBytes
}

// PPVolume is the per-send pipeline activation message:
// microTokens x hidden x dtype (~6MB for GPT-3 175B).
func PPVolume(m ModelSpec) float64 {
	return microTokensPerPPSend * float64(m.Hidden) * m.DTypeBytes
}

// TPVolume is the per-sync tensor-parallel AllReduce volume
// (~560MB for GPT-3 175B).
func TPVolume(m ModelSpec) float64 {
	return tpSyncTokens * float64(m.Hidden) * m.DTypeBytes
}

// Table3 reproduces "Table 3: Traffic patterns of different parallelisms"
// for the paper's example (GPT-3 175B, TP=8, PP=8, DP=512).
func Table3() []Traffic {
	m := GPT175B
	p := Parallelism{TP: 8, PP: 8, DP: 512}
	return []Traffic{
		{Strategy: "DP", Bytes: DPVolume(m, p), Operation: "AllReduce"},
		{Strategy: "PP", Bytes: PPVolume(m), Operation: "Send/Recv"},
		{Strategy: "TP", Bytes: TPVolume(m), Operation: "AllReduce/AllGather"},
	}
}

// ComputeSeconds returns one iteration's compute time: the standard
// ~6 FLOPs per parameter per token for forward+backward, at BatchPerGPU
// sequences per GPU, divided by realized throughput. It is independent of
// nGPUs because the global batch scales with the job.
func ComputeSeconds(m ModelSpec, nGPUs int) float64 {
	flopsPerSample := 6 * m.Params * float64(m.SeqLen)
	return m.BatchPerGPU * flopsPerSample / (m.EffectiveTFLOPs * 1e12)
}

// IterationSeconds combines compute with measured communication time:
// gradient sync overlaps the backward pass up to Overlap x compute; the
// remainder is exposed.
func IterationSeconds(m ModelSpec, nGPUs int, commSeconds float64) float64 {
	c := ComputeSeconds(m, nGPUs)
	exposed := commSeconds - m.Overlap*c
	if exposed < 0 {
		exposed = 0
	}
	return c + exposed
}

// SamplesPerSecond converts an iteration time to the paper's throughput
// metric (global batch = BatchPerGPU x nGPUs).
func SamplesPerSecond(m ModelSpec, nGPUs int, iterSeconds float64) float64 {
	if iterSeconds <= 0 {
		return 0
	}
	return m.BatchPerGPU * float64(nGPUs) / iterSeconds
}

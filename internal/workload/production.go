package workload

import (
	"math"

	"hpn/internal/metrics"
	"hpn/internal/sim"
)

// This file reproduces the production-statistics figures of §2: the job-size
// distribution (Figure 6), checkpointing intervals (Figure 4), per-host
// connection counts (Figure 3), and the general cloud traffic baseline
// (Figure 1).

// JobSizeDist synthesizes the production job-size distribution of Figure 6:
// 96.3% of jobs need at most 1K GPUs and none exceeds ~3K (jobs are almost
// all powers-of-two-ish allocations).
func JobSizeDist(jobs int, seed uint64) *metrics.Dist {
	rng := sim.NewRNG(seed)
	d := &metrics.Dist{Name: "gpus-per-job"}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	bigSizes := []int{1280, 1536, 2048, 2304, 2816}
	for i := 0; i < jobs; i++ {
		if rng.Float64() < 0.963 {
			// Small jobs skew toward the lower sizes.
			idx := int(rng.Float64() * rng.Float64() * float64(len(sizes)))
			if idx >= len(sizes) {
				idx = len(sizes) - 1
			}
			d.Add(float64(sizes[idx]))
		} else {
			d.Add(float64(bigSizes[rng.Intn(len(bigSizes))]))
		}
	}
	return d
}

// CheckpointModel captures §2.3's checkpointing economics.
type CheckpointModel struct {
	// BytesPerGPU is the checkpoint size per GPU (~30GB).
	BytesPerGPU float64
	// SaveSeconds is the pause to write one checkpoint (~100s).
	SaveSeconds float64
	// TargetOverhead is the tolerated steady-state throughput loss (~5%).
	TargetOverhead float64
}

// DefaultCheckpointModel returns the paper's production values.
func DefaultCheckpointModel() CheckpointModel {
	return CheckpointModel{BytesPerGPU: 30e9, SaveSeconds: 100, TargetOverhead: 0.05}
}

// IntervalSeconds returns the checkpoint interval that keeps overhead at
// the target: interval = saveTime/overhead (100s / 5% = 2000s floor), which
// customers round up to hours — the 2-4h of Figure 4.
func (c CheckpointModel) IntervalSeconds() float64 {
	if c.TargetOverhead <= 0 {
		return 0
	}
	return c.SaveSeconds / c.TargetOverhead
}

// Figure4Intervals returns the checkpoint intervals (hours) of four
// representative jobs: teams run at a few multiples of the minimum
// economic interval.
func Figure4Intervals() []float64 {
	base := DefaultCheckpointModel().IntervalSeconds() / 3600 // ~0.56h
	multipliers := []float64{4, 5.4, 6.3, 7.2}                // 2.2h..4h
	out := make([]float64, len(multipliers))
	for i, m := range multipliers {
		out[i] = base * m
	}
	return out
}

// RollbackCostDollars estimates the §2.3 failure cost: a crash loses on
// average half a checkpoint interval of work across the whole job.
// The paper's example: $20K/hour for 3K GPUs, ~1.5h lost => ~$30K.
func RollbackCostDollars(intervalHours, dollarsPerHour float64) float64 {
	return intervalHours / 2 * dollarsPerHour
}

// ConnectionsPerHost reproduces Figure 3: an LLM host runs few dozen to a
// few hundred connections — ring neighbors x rails x disjoint conns x a
// small service overhead — versus hundreds of thousands for cloud hosts.
func ConnectionsPerHost(jobs int, seed uint64) *metrics.Dist {
	rng := sim.NewRNG(seed)
	d := &metrics.Dist{Name: "conns-per-host"}
	for i := 0; i < jobs; i++ {
		rails := 8
		connsPerPair := 2 + rng.Intn(3)    // 2-4 disjoint conns
		neighbors := 2 * (1 + rng.Intn(2)) // ring (2) or tree-ish (4)
		service := 10 + rng.Intn(30)       // management/storage sessions
		d.Add(float64(rails*connsPerPair*neighbors + service))
	}
	return d
}

// CloudTrafficPoint is one sample of the Figure 1 baseline.
type CloudTrafficPoint struct {
	Hour        float64
	InGbps      float64
	OutGbps     float64
	Connections float64
}

// CloudTraffic synthesizes 24h of general cloud-computing traffic:
// hundreds of thousands of connections, utilization well under 20% of NIC
// capacity, changing slowly on the hourly scale (a diurnal wave plus
// noise).
func CloudTraffic(seed uint64) []CloudTrafficPoint {
	rng := sim.NewRNG(seed)
	out := make([]CloudTrafficPoint, 0, 24*12)
	for i := 0; i < 24*12; i++ { // 5-minute samples
		h := float64(i) / 12
		diurnal := 0.5 + 0.45*wave(h)
		in := 1.2*diurnal + 0.08*rng.Normal(0, 1)
		outv := 0.9*diurnal + 0.06*rng.Normal(0, 1)
		conns := 120e3*diurnal + 8e3*rng.Normal(0, 1)
		if in < 0 {
			in = 0
		}
		if outv < 0 {
			outv = 0
		}
		out = append(out, CloudTrafficPoint{Hour: h, InGbps: in, OutGbps: outv, Connections: conns})
	}
	return out
}

// wave is a smooth diurnal curve peaking mid-day.
func wave(hour float64) float64 {
	return 0.5 * (1 + math.Cos((hour-14)/24*2*math.Pi))
}

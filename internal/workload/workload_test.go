package workload

import (
	"math"
	"testing"

	"hpn/internal/collective"
	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func TestTable3Volumes(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// DP: 175e9/64*2 = 5.47GB (paper: 5.5GB) — derived, so check tightly.
	if math.Abs(rows[0].Bytes-5.5e9)/5.5e9 > 0.02 {
		t.Errorf("DP volume = %.3g, want ~5.5GB", rows[0].Bytes)
	}
	// PP: ~6MB.
	if math.Abs(rows[1].Bytes-6e6)/6e6 > 0.1 {
		t.Errorf("PP volume = %.3g, want ~6MB", rows[1].Bytes)
	}
	// TP: ~560MB.
	if math.Abs(rows[2].Bytes-560e6)/560e6 > 0.02 {
		t.Errorf("TP volume = %.3g, want ~560MB", rows[2].Bytes)
	}
	if rows[0].Operation != "AllReduce" || rows[1].Operation != "Send/Recv" {
		t.Error("operations mislabeled")
	}
	// Ordering: PP << TP << DP (the §7 argument for cross-pod PP).
	if !(rows[1].Bytes < rows[2].Bytes && rows[2].Bytes < rows[0].Bytes) {
		t.Error("volume ordering violated")
	}
}

func TestJobSizeDist(t *testing.T) {
	d := JobSizeDist(10000, 1)
	if got := d.CDFAt(1024); got < 0.94 || got > 0.99 {
		t.Errorf("CDF(1024) = %v, want ~0.963", got)
	}
	if d.Percentile(100) >= 3000 {
		t.Errorf("max job size %v, want < 3K", d.Percentile(100))
	}
	if d.Percentile(100) <= 1024 {
		t.Errorf("no large jobs generated")
	}
}

func TestCheckpointEconomics(t *testing.T) {
	c := DefaultCheckpointModel()
	if iv := c.IntervalSeconds(); iv != 2000 {
		t.Fatalf("min interval = %v, want 2000s", iv)
	}
	hours := Figure4Intervals()
	if len(hours) != 4 {
		t.Fatal("want 4 representative jobs")
	}
	for _, h := range hours {
		if h < 2 || h > 4.2 {
			t.Errorf("interval %vh outside the 2-4h band", h)
		}
	}
	// $20K/hour, ~3h interval -> ~$30K per crash.
	cost := RollbackCostDollars(3, 20000)
	if cost != 30000 {
		t.Errorf("rollback cost = %v, want 30000", cost)
	}
}

func TestConnectionsPerHost(t *testing.T) {
	d := ConnectionsPerHost(5000, 2)
	if lo := d.Percentile(1); lo < 10 || lo > 200 {
		t.Errorf("P1 conns = %v, want few dozen", lo)
	}
	if hi := d.Percentile(99); hi > 1000 {
		t.Errorf("P99 conns = %v, want hundreds at most", hi)
	}
}

func TestCloudTraffic(t *testing.T) {
	pts := CloudTraffic(3)
	if len(pts) != 288 {
		t.Fatalf("samples = %d", len(pts))
	}
	maxIn, maxConn := 0.0, 0.0
	for _, p := range pts {
		if p.InGbps > maxIn {
			maxIn = p.InGbps
		}
		if p.Connections > maxConn {
			maxConn = p.Connections
		}
	}
	// Utilization stays far below NIC capacity; connections ~100K+.
	if maxIn > 3 {
		t.Errorf("cloud in-traffic peaks at %v Gbps, want ~2", maxIn)
	}
	if maxConn < 100e3 {
		t.Errorf("connections peak %v, want >100K", maxConn)
	}
}

func TestComputeSecondsScaleInvariant(t *testing.T) {
	// The global batch scales with the job (BatchPerGPU is fixed), so
	// per-iteration compute time is the same at any GPU count, while
	// absolute throughput doubles with 2x GPUs.
	a := ComputeSeconds(GPT175B, 448)
	b := ComputeSeconds(GPT175B, 896)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("compute time must be scale-invariant: %v vs %v", a, b)
	}
	s1 := SamplesPerSecond(GPT175B, 448, a)
	s2 := SamplesPerSecond(GPT175B, 896, b)
	if math.Abs(s2/s1-2) > 1e-9 {
		t.Fatalf("samples/s must double with 2x GPUs: %v vs %v", s1, s2)
	}
}

func TestIterationOverlap(t *testing.T) {
	m := LLaMa7B
	c := ComputeSeconds(m, 64)
	// Fully hidden comm: iteration = compute.
	if got := IterationSeconds(m, 64, m.Overlap*c*0.5); got != c {
		t.Fatalf("hidden comm should cost nothing: %v vs %v", got, c)
	}
	// Exposed comm adds beyond the overlap budget.
	if got := IterationSeconds(m, 64, m.Overlap*c+1); math.Abs(got-(c+1)) > 1e-9 {
		t.Fatalf("exposed comm accounting wrong: %v", got)
	}
}

func TestJobShapes(t *testing.T) {
	hosts := make([]int, 8)
	for i := range hosts {
		hosts[i] = i
	}
	// TP=8, PP=2, DP=4: 64 GPUs over 8 hosts.
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 2, DP: 4}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	groups := job.DPGroups()
	if len(groups) != 2 {
		t.Fatalf("DP groups = %d, want 2 (one per stage)", len(groups))
	}
	for _, g := range groups {
		if len(g) != 4 {
			t.Fatalf("group size = %d, want DP=4", len(g))
		}
	}
	pairs := job.PPPairs()
	if len(pairs) != 4 { // (PP-1) x DP
		t.Fatalf("PP pairs = %d, want 4", len(pairs))
	}
	if _, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 2, DP: 4}, hosts[:4]); err == nil {
		t.Fatal("host-count mismatch accepted")
	}
	if _, err := NewJob(LLaMa13B, Parallelism{TP: 0, PP: 1, DP: 1}, nil); err == nil {
		t.Fatal("degenerate parallelism accepted")
	}
}

func TestTrainerRunsIterations(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(sim.New(), top)
	hosts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 8}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, job, collective.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(3); err != nil {
		t.Fatal(err)
	}
	net.Eng.Run()
	if tr.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", tr.Iterations)
	}
	if tr.Perf.Len() != 3 || tr.MeanSamplesPerSecond() <= 0 {
		t.Fatal("performance series missing")
	}
	if tr.CommSeconds.Mean() <= 0 {
		t.Fatal("no communication time measured")
	}
	if tr.Running() {
		t.Fatal("trainer still running after completion")
	}
}

// The NIC burst pattern of Figure 2: during training, access-link
// utilization alternates between ~0 (compute) and full port speed (sync).
func TestTrainingBurstPattern(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(sim.New(), top)
	probe := net.TrackLink(top.AccessLink(0, 0, 0), "nic0-port0")
	hosts := []int{0, 1, 2, 3}
	job, err := NewJob(LLaMa13B, Parallelism{TP: 8, PP: 1, DP: 4}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, job, collective.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	net.Eng.Run()
	if probe.Util.Max() < 150e9 {
		t.Fatalf("burst peak = %v, want near port speed", probe.Util.Max())
	}
	if probe.Util.Min() > 1e9 {
		t.Fatalf("quiet phase = %v, want near zero", probe.Util.Min())
	}
}

// PP traffic crosses stage boundaries each iteration and is included in the
// sync barrier.
func TestTrainerPPTraffic(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(sim.New(), top)
	hosts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	job, err := NewJob(GPT175B, Parallelism{TP: 8, PP: 2, DP: 4}, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, job, collective.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(2); err != nil {
		t.Fatal(err)
	}
	net.Eng.Run()
	if tr.Iterations != 2 {
		t.Fatalf("iterations = %d", tr.Iterations)
	}
	// 4 PP pairs x 8 rails x 2 directions x 2 iterations x PPVolume.
	wantPP := 4.0 * 8 * 2 * 2 * PPVolume(GPT175B) * 8 // bits
	wantGrad := 2.0 * 2 * DPVolume(GPT175B, job.Par)  // per-group per-iter... sanity only
	_ = wantGrad
	if net.CompletedBits < wantPP {
		t.Fatalf("completed bits %v below PP volume %v", net.CompletedBits, wantPP)
	}
	// Disabling PP traffic removes those flows.
	net2 := netsim.New(sim.New(), top)
	tr2, err := NewTrainer(net2, job, collective.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr2.MicrobatchesPerIteration = 0
	if err := tr2.Start(2); err != nil {
		t.Fatal(err)
	}
	net2.Eng.Run()
	if net2.CompletedBits >= net.CompletedBits {
		t.Fatal("PP traffic did not add bits")
	}
}

func TestInferenceLoad(t *testing.T) {
	fe, err := topo.BuildFrontend(topo.FrontendConfig{
		Segments: 1, HostsPerSegment: 8, StorageHosts: 0,
		AccessGbps: 200, FabricGbps: 400, AggsPerPod: 2, Cores: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(sim.New(), fe)
	load, err := NewInferenceLoad(net, DefaultInference(), []int{0, 1, 2, 3}, []int{4, 5, 6, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	load.Run(2 * sim.Second)
	net.Eng.Run()
	// ~200 QPS for 2s => ~400 exchanges, Poisson-distributed.
	if load.Completed < 250 || load.Completed > 600 {
		t.Fatalf("completed = %d, want ~400", load.Completed)
	}
	// A 2MB response on an idle 200G port takes ~80us; P99 should stay
	// well under a millisecond on an unloaded frontend.
	if p99 := load.Latency.Percentile(99); p99 > 1e-3 {
		t.Fatalf("P99 latency = %v s, want sub-millisecond", p99)
	}
	if net.ActiveFlows() != 0 {
		t.Fatal("inference flows leaked")
	}
}

func TestInferenceLoadRejectsEmpty(t *testing.T) {
	fe, err := topo.BuildFrontend(topo.DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(sim.New(), fe)
	if _, err := NewInferenceLoad(net, DefaultInference(), nil, []int{1}, 1); err == nil {
		t.Fatal("empty client set accepted")
	}
}

package workload

import (
	"fmt"
	"math"

	"hpn/internal/collective"
	"hpn/internal/memo"
	"hpn/internal/metrics"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
)

// Job is a training job: a model plus its parallelism and the hosts it
// occupies. The canonical Megatron-style placement is assumed: TP groups
// fill a host's 8 GPUs (NVLink domain), PP stages are consecutive host
// blocks, DP replicas repeat the block.
type Job struct {
	Model ModelSpec
	Par   Parallelism
	// Hosts is the ordered host list; length must equal GPUs()/8.
	Hosts []int
}

// NewJob checks shape consistency and returns the job.
func NewJob(m ModelSpec, p Parallelism, hosts []int) (*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gpus := p.GPUs()
	if gpus%8 != 0 {
		return nil, fmt.Errorf("workload: %d GPUs not host-aligned", gpus)
	}
	if len(hosts) != gpus/8 {
		return nil, fmt.Errorf("workload: %d hosts provided, need %d", len(hosts), gpus/8)
	}
	return &Job{Model: m, Par: p, Hosts: hosts}, nil
}

// DPGroups returns the host groups that synchronize gradients together.
// With TP=8 (one host per TP group), each PP stage's replicas form one DP
// group; with TP=1, hostsPerReplica = PP and gradient sync spans replicas
// stage-wise all the same.
func (j *Job) DPGroups() [][]int {
	hostsPerReplica := len(j.Hosts) / j.Par.DP
	if hostsPerReplica == 0 {
		// Replicas are sub-host (e.g. TP=1, DP=nGPUs): every host holds
		// GPUs of several replicas and all hosts synchronize together in
		// one hierarchical AllReduce.
		return [][]int{append([]int(nil), j.Hosts...)}
	}
	groups := make([][]int, 0, hostsPerReplica)
	for s := 0; s < hostsPerReplica; s++ {
		g := make([]int, 0, j.Par.DP)
		for d := 0; d < j.Par.DP; d++ {
			g = append(g, j.Hosts[d*hostsPerReplica+s])
		}
		groups = append(groups, g)
	}
	return groups
}

// PPPairs returns consecutive-stage host pairs within each replica (the
// Send/Recv endpoints).
func (j *Job) PPPairs() [][2]int {
	hostsPerReplica := len(j.Hosts) / j.Par.DP
	hostsPerStage := hostsPerReplica / j.Par.PP
	if hostsPerStage == 0 {
		return nil
	}
	var pairs [][2]int
	for d := 0; d < j.Par.DP; d++ {
		base := d * hostsPerReplica
		for s := 0; s+1 < j.Par.PP; s++ {
			a := j.Hosts[base+s*hostsPerStage]
			b := j.Hosts[base+(s+1)*hostsPerStage]
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

// GradientSyncBytes is the per-GPU gradient message of one iteration.
func (j *Job) GradientSyncBytes() float64 { return DPVolume(j.Model, j.Par) }

// Trainer runs the job's iterations over a simulated fabric.
type Trainer struct {
	Net *netsim.Sim
	Job *Job
	Cfg collective.Config

	// groups are the per-DP-group collective groups.
	groups []*collective.Group
	// ppGroup serves pipeline sends (one group spanning all hosts is not
	// needed; sends go host-to-host directly).

	// Iterations is the completed-iteration count.
	Iterations int
	// Perf records (time, samples/s) per completed iteration.
	Perf metrics.Series
	// CommSeconds records measured gradient-sync time per iteration.
	CommSeconds metrics.Series

	// OnIteration, if set, fires after each iteration.
	OnIteration func(iter int, now sim.Time)

	// IterGate, if set, pauses the trainer between iterations: after each
	// iteration's completion bookkeeping (live or replayed) the trainer
	// calls IterGate(completedIterations, resume) instead of scheduling the
	// next compute phase, and the next iteration begins only when resume
	// runs (on this trainer's engine). The sharded multi-pod driver uses
	// this as the natural barrier of ISSUE cross-pod collectives: each pod
	// trainer posts "done" to the global domain through the gate, the
	// cross-pod gradient sync runs there while every pod is quiescent, and
	// resume is posted back. The gate is also a memoization window edge —
	// see completeIteration.
	IterGate func(iter int, resume func())

	// MicrobatchesPerIteration scales the pipeline-parallel activation
	// traffic each iteration exchanges across stage boundaries (§7). Zero
	// disables PP traffic (PP=1 jobs have none anyway).
	MicrobatchesPerIteration int

	// FirstErr records the first collective/flow launch error of the run.
	// Launch errors don't abort the iteration (the remaining groups still
	// synchronize, matching a job limping on without one ring), but they
	// must not vanish either: every one counts into
	// workload_sync_errors_total and the first is kept for the caller to
	// surface after the run.
	FirstErr error

	stopAfter   int
	running     bool
	phaseStart  sim.Time
	ctrIters    *telemetry.Counter
	ctrSyncErrs *telemetry.Counter
	histComm    *telemetry.Histogram

	// memo, when set, memoizes iteration windows: syncPhase fast-forwards
	// over cache hits and records misses (see internal/memo).
	memo       *memo.Recorder
	scheduleFP uint64
	fpCached   bool
}

// NewTrainer builds collective groups for the job over the fabric.
func NewTrainer(net *netsim.Sim, job *Job, cfg collective.Config) (*Trainer, error) {
	t := &Trainer{Net: net, Job: job, Cfg: cfg, MicrobatchesPerIteration: 8}
	t.ctrIters = net.Reg.Counter(net.MetricsPrefix+"workload_iterations_total", "completed training iterations")
	t.ctrSyncErrs = net.Reg.Counter(net.MetricsPrefix+"workload_sync_errors_total",
		"collective/flow launch errors during gradient sync")
	t.memo = memo.RecorderOf(net)
	// 1ms .. 65s in octaves: healthy gradient syncs cluster low, incidents
	// push iterations into the top buckets.
	t.histComm = net.Reg.Histogram(net.MetricsPrefix+"workload_comm_seconds",
		"per-iteration gradient-sync time distribution (s)", telemetry.LogBuckets(1e-3, 2, 17))
	for _, hosts := range job.DPGroups() {
		if len(hosts) < 2 {
			continue // DP=1: no gradient traffic
		}
		g, err := collective.NewGroup(net, cfg, hosts, 8)
		if err != nil {
			return nil, err
		}
		t.groups = append(t.groups, g)
	}
	return t, nil
}

// Start schedules `iterations` training iterations; the caller then drives
// the engine. Each iteration is [compute delay] -> [gradient sync comm] ->
// next, which produces Figure 2's periodic bursts on NIC probes. The
// recorded samples/s applies the overlap model of IterationSeconds.
func (t *Trainer) Start(iterations int) error {
	if t.running {
		return fmt.Errorf("workload: trainer already running")
	}
	if len(t.groups) == 0 {
		return fmt.Errorf("workload: job has no gradient traffic to simulate (DP=1)")
	}
	t.running = true
	t.stopAfter = t.Iterations + iterations
	t.beginIteration()
	return nil
}

func (t *Trainer) beginIteration() {
	if t.Iterations >= t.stopAfter {
		t.running = false
		return
	}
	m := t.Job.Model
	compute := ComputeSeconds(m, t.Job.Par.GPUs())
	t.phaseStart = t.Net.Eng.Now()
	t.Net.Eng.Schedule(sim.Time(compute*float64(sim.Second)), t.syncPhase)
}

// syncPhase launches gradient synchronization on every DP group
// concurrently: Multi-AllReduce when TP fills the host (all traffic
// inter-host), hierarchical AllReduce otherwise.
//
// With a memo recorder attached, each syncPhase entry is a memoization
// window boundary. The entry first finalizes the window begun by the
// previous iteration, then — as long as cached windows keep matching the
// current fabric state — fast-forwards whole iterations via replay. The
// loop stops on a cache miss (that iteration simulates live and records a
// fresh window) or when only the final iteration remains: the last one is
// always simulated so the run ends on a live, fully-settled engine.
func (t *Trainer) syncPhase() {
	start := t.Net.Eng.Now()
	t.memo.FinalizeRecord()
	record := false
	var fp uint64
	for {
		if t.Net.Trace != nil {
			t.Net.Trace.Complete(int64(t.phaseStart), int64(start-t.phaseStart),
				"workload", "compute", telemetry.TidWorkload,
				telemetry.Arg{K: "iter", V: t.Iterations + 1})
		}
		t.phaseStart = start
		if t.memo == nil || t.stopAfter-t.Iterations < 2 {
			break
		}
		fp = t.iterFingerprint()
		w := t.memo.Lookup(fp)
		if w == nil {
			record = true
			break
		}
		t.memo.Replay(w, t.completeIterationReplay)
		if t.IterGate != nil {
			// Gated windows end at the gate (see completeIteration), so the
			// replay just landed exactly there: hand off and let resume
			// re-enter via beginIteration -> syncPhase for the next one.
			t.IterGate(t.Iterations, t.beginIteration)
			return
		}
		start = t.Net.Eng.Now()
	}
	if record {
		t.memo.BeginRecord(fp)
	}

	pending := len(t.groups)
	bytes := t.Job.GradientSyncBytes()
	done := func(now sim.Time, _ collective.Result) {
		pending--
		if pending > 0 {
			return
		}
		t.completeIteration(now - t.phaseStart)
	}
	for _, g := range t.groups {
		var err error
		if t.Job.Par.TP >= 8 {
			_, err = g.StartMultiAllReduce(bytes, done)
		} else {
			_, err = g.StartAllReduce(bytes, done)
		}
		if err != nil {
			pending--
			t.noteSyncErr(err)
		}
	}

	// Pipeline-parallel Send/Recv across stage boundaries: small volumes
	// (Table 3: ~6MB per send), exchanged in both directions (activations
	// forward, gradients backward). These are the only flows that may
	// cross pods under the §7 placement policy. Source ports are pinned per
	// (pair, rail, direction) — modeling the persistent QPs a real job
	// keeps — so every iteration hashes onto the same paths; letting the
	// fabric auto-assign would drift the sport cursor and make iterations
	// aperiodic, defeating memoization.
	if t.Job.Par.PP > 1 && t.MicrobatchesPerIteration > 0 {
		ppBytes := PPVolume(t.Job.Model) * float64(t.MicrobatchesPerIteration)
		ppDone := func(now sim.Time, _ *netsim.Flow) { done(now, collective.Result{}) }
		for pi, pair := range t.Job.PPPairs() {
			for r := 0; r < 8; r++ {
				for dir := 0; dir < 2; dir++ {
					a, b := pair[0], pair[1]
					if dir == 1 {
						a, b = b, a
					}
					pending++
					_, err := t.Net.StartFlow(
						route.Endpoint{Host: a, NIC: r},
						route.Endpoint{Host: b, NIC: r},
						ppBytes,
						netsim.FlowOpts{SrcPort: -1, Sport: ppSport(pi, r, dir), OnComplete: ppDone},
					)
					if err != nil {
						pending--
						t.noteSyncErr(err)
					}
				}
			}
		}
	}
	if pending == 0 {
		t.completeIteration(0)
	}
}

// ppSport pins the transport source port of a pipeline-parallel send,
// keyed by the deterministic PPPairs order. The 28000+ range sits above
// the collective library's establishment sweep (20000+) and below
// netsim's auto-assign cursor (49152+), so pinned PP flows collide with
// neither.
func ppSport(pairIdx, rail, dir int) uint16 {
	return uint16(28000 + (pairIdx*16+rail*2+dir)%20000)
}

// noteSyncErr records a launch error without aborting the iteration.
func (t *Trainer) noteSyncErr(err error) {
	if t.FirstErr == nil {
		t.FirstErr = err
	}
	t.ctrSyncErrs.Inc()
}

// iterFingerprint keys the upcoming iteration's window: the cached static
// schedule fingerprint (collective membership/connections, PP pairing,
// volumes) mixed with the fabric's live state hash.
func (t *Trainer) iterFingerprint() uint64 {
	if !t.fpCached {
		h := memo.NewHasher()
		h.Mix(uint64(len(t.groups)))
		for _, g := range t.groups {
			g.ScheduleFingerprint(h)
		}
		h.Mix(uint64(t.Job.Par.TP))
		h.Mix(uint64(t.Job.Par.PP))
		h.Mix(uint64(t.MicrobatchesPerIteration))
		h.Mix(math.Float64bits(t.Job.GradientSyncBytes()))
		h.Mix(math.Float64bits(PPVolume(t.Job.Model)))
		for pi, pair := range t.Job.PPPairs() {
			h.Mix(uint64(pi))
			h.Mix(uint64(pair[0]))
			h.Mix(uint64(pair[1]))
		}
		t.scheduleFP = h.Sum()
		t.fpCached = true
	}
	h := memo.NewHasher()
	h.Mix(t.scheduleFP)
	h.Mix(t.Net.StateHash64())
	return h.Sum()
}

// AttachMemo installs (or, with nil, removes) the memo recorder driving
// syncPhase's record/replay. NewTrainer picks up a recorder already
// attached to the fabric automatically; this override exists for tests
// and for recorders attached after the trainer was built.
func (t *Trainer) AttachMemo(r *memo.Recorder) { t.memo = r }

func (t *Trainer) completeIteration(comm sim.Time) {
	now := t.Net.Eng.Now()
	// The bookkeeping below is the window's "live section": its output
	// (iteration numbers, cumulative series) differs every iteration, so
	// replay re-executes it rather than replaying it from the cache.
	t.memo.BeginLive(now, comm.Seconds())
	t.finishIteration(now, comm.Seconds())
	t.memo.EndLive()
	if t.IterGate != nil {
		// Gate mode moves the window edge from the next syncPhase entry to
		// the gate: between the gate and resume the global domain runs
		// (cross-pod sync, resume deliveries land as engine events), none of
		// which a shard-local window could replay. The gate is a zero-delay
		// event rather than a direct call so the window closes only after
		// the completion dispatch — including the telemetry netsim emits
		// after this callback returns — has fully landed in the record;
		// replay credits the gate event's sequence number from the window.
		t.Net.Eng.Schedule(0, t.gateEvent)
		return
	}
	t.beginIteration()
}

// gateEvent is the deferred window edge of gated iterations: it finalizes
// the memo record begun at syncPhase and hands control to the coordinator.
// On replay the trainer calls IterGate directly instead — the recorded
// window already credits this event's schedule and dispatch.
func (t *Trainer) gateEvent() {
	t.memo.FinalizeRecord()
	t.IterGate(t.Iterations, t.beginIteration)
}

// completeIterationReplay is the live section of a replayed window: the
// same per-iteration bookkeeping, at the recorded completion instant, but
// no compute scheduling — the replay loop in syncPhase continues directly
// at the window's end.
func (t *Trainer) completeIterationReplay(now sim.Time, commS float64) {
	t.finishIteration(now, commS)
	t.phaseStart = now
}

// finishIteration is one iteration's completion bookkeeping, shared by
// live and replayed iterations. now is the gradient-sync completion
// instant — during replay the engine clock still reads the window start,
// so it must never consult Eng.Now().
func (t *Trainer) finishIteration(now sim.Time, commS float64) {
	t.Iterations++
	t.ctrIters.Inc()
	m := t.Job.Model
	iter := IterationSeconds(m, t.Job.Par.GPUs(), commS)
	sps := SamplesPerSecond(m, t.Job.Par.GPUs(), iter)
	t.Perf.Add(now.Seconds(), sps)
	t.CommSeconds.Add(now.Seconds(), commS)
	t.histComm.Observe(commS)
	if t.Net.Trace != nil {
		t.Net.Trace.Complete(int64(t.phaseStart), int64(now-t.phaseStart),
			"workload", "grad_sync", telemetry.TidWorkload,
			telemetry.Arg{K: "iter", V: t.Iterations},
			telemetry.Arg{K: "comm_s", V: commS})
		t.Net.Trace.Instant(int64(now), "workload", "iteration", telemetry.TidWorkload,
			telemetry.Arg{K: "iter", V: t.Iterations},
			telemetry.Arg{K: "samples_per_s", V: sps})
	}
	if t.OnIteration != nil {
		t.OnIteration(t.Iterations, now)
	}
}

// Running reports whether iterations remain scheduled.
func (t *Trainer) Running() bool { return t.running }

// MeanSamplesPerSecond summarizes completed iterations, skipping the first
// (cold start).
func (t *Trainer) MeanSamplesPerSecond() float64 {
	if t.Perf.Len() <= 1 {
		return t.Perf.Mean()
	}
	sum := 0.0
	for _, p := range t.Perf.Points[1:] {
		sum += p.V
	}
	return sum / float64(t.Perf.Len()-1)
}

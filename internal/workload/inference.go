package workload

import (
	"fmt"

	"hpn/internal/metrics"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
)

// InferenceSpec models the §8 mixed-deployment traffic: model-serving
// requests and responses carried by the frontend network alongside
// management and storage flows.
type InferenceSpec struct {
	// RequestBytes / ResponseBytes per call (prompts are small, generated
	// outputs with KV-cache streaming are larger).
	RequestBytes  float64
	ResponseBytes float64
	// QPS is the aggregate query rate across the serving hosts.
	QPS float64
}

// DefaultInference returns an LLM-serving-shaped spec.
func DefaultInference() InferenceSpec {
	return InferenceSpec{RequestBytes: 16 << 10, ResponseBytes: 2 << 20, QPS: 200}
}

// InferenceLoad drives request/response flows between client hosts and
// serving hosts on a fabric for the given duration and records response
// completion latencies.
type InferenceLoad struct {
	Net     *netsim.Sim
	Spec    InferenceSpec
	Clients []int
	Servers []int

	// Latency collects response flow-completion times (seconds).
	Latency metrics.Dist
	// Completed counts finished request/response exchanges.
	Completed int

	rng *sim.RNG
}

// NewInferenceLoad returns a generator over the given host sets.
func NewInferenceLoad(net *netsim.Sim, spec InferenceSpec, clients, servers []int, seed uint64) (*InferenceLoad, error) {
	if len(clients) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("workload: inference needs clients and servers")
	}
	return &InferenceLoad{Net: net, Spec: spec, Clients: clients, Servers: servers, rng: sim.NewRNG(seed)}, nil
}

// Run schedules Poisson arrivals until the horizon; the caller drives the
// engine.
func (l *InferenceLoad) Run(until sim.Time) {
	var arrive func()
	arrive = func() {
		now := l.Net.Eng.Now()
		if now >= until {
			return
		}
		client := l.Clients[l.rng.Intn(len(l.Clients))]
		server := l.Servers[l.rng.Intn(len(l.Servers))]
		reqStart := now
		// Request up, response back; latency = full exchange.
		_, err := l.Net.StartFlow(
			route.Endpoint{Host: client, NIC: 0},
			route.Endpoint{Host: server, NIC: 0},
			l.Spec.RequestBytes,
			netsim.FlowOpts{SrcPort: -1, OnComplete: func(_ sim.Time, _ *netsim.Flow) {
				_, err := l.Net.StartFlow(
					route.Endpoint{Host: server, NIC: 0},
					route.Endpoint{Host: client, NIC: 0},
					l.Spec.ResponseBytes,
					netsim.FlowOpts{SrcPort: -1, OnComplete: func(end sim.Time, _ *netsim.Flow) {
						l.Completed++
						l.Latency.Add((end - reqStart).Seconds())
					}},
				)
				if err != nil {
					return
				}
			}},
		)
		if err == nil {
			// Only count arrivals that could be injected.
			_ = err
		}
		gap := l.rng.Exp(1 / l.Spec.QPS)
		l.Net.Eng.Schedule(sim.Time(gap*float64(sim.Second)), arrive)
	}
	arrive()
}

package core

import (
	"testing"

	"hpn/internal/collective"
	"hpn/internal/topo"
)

func TestNewHPNArchTagging(t *testing.T) {
	c, err := NewHPN(topo.SmallHPN(1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Arch != ArchHPN {
		t.Fatalf("arch = %v", c.Arch)
	}
	cfg := topo.SmallHPN(1, 4, 4)
	cfg.DualPlane = false
	c2, _ := NewHPN(cfg)
	if c2.Arch != ArchHPNSinglePlane {
		t.Fatalf("arch = %v", c2.Arch)
	}
	cfg.DualToR = false
	c3, _ := NewHPN(cfg)
	if c3.Arch != ArchHPNSingleToR {
		t.Fatalf("arch = %v", c3.Arch)
	}
}

func TestCollectivePolicyByArch(t *testing.T) {
	hpn, err := NewHPN(topo.SmallHPN(1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if hpn.CollectiveConfig().Policy != collective.PolicyDisjoint {
		t.Fatal("HPN must ship the disjoint-path policy")
	}
	dcn, err := NewDCN(topo.SmallDCN(1))
	if err != nil {
		t.Fatal(err)
	}
	if dcn.CollectiveConfig().Policy != collective.PolicyBlind {
		t.Fatal("DCN+ baseline must use the blind policy")
	}
}

func TestPlaceJobSegmentFirst(t *testing.T) {
	c, err := NewHPN(topo.SmallHPN(3, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := c.PlaceJob(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SegmentsSpanned(hosts); got != 1 {
		t.Fatalf("8-host job spans %d segments, want 1", got)
	}
	hosts, err = c.PlaceJob(12)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SegmentsSpanned(hosts); got != 2 {
		t.Fatalf("12-host job spans %d segments, want 2", got)
	}
	if _, err := c.PlaceJob(1000); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestPlaceJobSkipsBackupHosts(t *testing.T) {
	cfg := topo.SmallHPN(1, 4, 4)
	cfg.BackupHostsPerSegment = 2
	c, err := NewHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := c.PlaceJob(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if c.Topo.Hosts[h].Backup {
			t.Fatal("backup host placed in a job")
		}
	}
	if _, err := c.PlaceJob(5); err == nil {
		t.Fatal("placement must not use backup hosts")
	}
}

func TestVerifyPlaneIsolation(t *testing.T) {
	c, err := NewHPN(topo.SmallHPN(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyPlaneIsolation(200, 1); err != nil {
		t.Fatal(err)
	}
	// Single-plane clusters must be rejected outright.
	cfg := topo.SmallHPN(1, 4, 4)
	cfg.DualPlane = false
	c2, _ := NewHPN(cfg)
	if err := c2.VerifyPlaneIsolation(10, 1); err == nil {
		t.Fatal("single-plane cluster passed plane-isolation check")
	}
}

// Table 1's structural claim, measured: HPN's search space is 1-2 orders
// of magnitude below the 3-tier baseline's.
func TestPathSearchSpaceMeasured(t *testing.T) {
	hpnCfg := topo.DefaultHPN()
	hpnCfg.SegmentsPerPod = 2 // keep the build small; fan-out is per-ToR
	hpn, err := NewHPN(hpnCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := hpn.PathSearchSpace(0, 0); got != 60 {
		t.Fatalf("HPN search space = %d, want 60", got)
	}
	dcn, err := NewDCN(topo.SmallDCN(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dcn.PathSearchSpace(0, 0)) / 60.0
	if ratio < 10 {
		t.Fatalf("DCN+ search space only %.0fx HPN's, want >=10x", ratio)
	}
}

// Package core assembles the paper's primary contribution: the HPN
// architecture as a deployable unit — topology (dual-ToR access,
// rail-optimized tier1, dual-plane tier2, 15:1-oversubscribed tier3),
// routing policy, collective-library path policy, and the job placement
// rules (segment-first; PP across pods).
//
// The same type also instantiates the baselines (DCN+ and the HPN
// ablations), so every experiment compares like with like: only the
// architecture differs.
package core

import (
	"fmt"
	"sort"

	"hpn/internal/collective"
	"hpn/internal/hashing"
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

// Arch names an architecture variant.
type Arch string

// The architectures the evaluation compares.
const (
	ArchHPN            Arch = "hpn"
	ArchHPNSinglePlane Arch = "hpn-single-plane" // typical Clos tier2 (Fig 12a)
	ArchHPNSingleToR   Arch = "hpn-single-tor"   // reliability baseline
	ArchDCN            Arch = "dcn+"             // previous generation (App. C)
)

// Cluster is a built fabric with its simulator.
type Cluster struct {
	Arch Arch
	Topo *topo.Topology
	Eng  *sim.Engine
	Net  *netsim.Sim

	// Pod, when >= 0, scopes this cluster view to one pod of a sharded
	// fabric: placement and port sampling stay inside the pod (the Net is
	// then also RestrictShard-scoped). -1 — every cluster built outside
	// the sharded assembly — means the whole fabric.
	Pod int
}

// NewHPN builds an HPN cluster.
func NewHPN(cfg topo.HPNConfig) (*Cluster, error) {
	t, err := topo.BuildHPN(cfg)
	if err != nil {
		return nil, err
	}
	arch := ArchHPN
	if !cfg.DualToR {
		arch = ArchHPNSingleToR
	} else if !cfg.DualPlane {
		arch = ArchHPNSinglePlane
	}
	return wrap(arch, t), nil
}

// NewDCN builds a DCN+ baseline cluster.
func NewDCN(cfg topo.DCNConfig) (*Cluster, error) {
	t, err := topo.BuildDCN(cfg)
	if err != nil {
		return nil, err
	}
	return wrap(ArchDCN, t), nil
}

// NewFrontend builds the §8 frontend network (management, storage,
// inference) as its own simulated fabric.
func NewFrontend(cfg topo.FrontendConfig) (*Cluster, error) {
	t, err := topo.BuildFrontend(cfg)
	if err != nil {
		return nil, err
	}
	return wrap(Arch("frontend"), t), nil
}

func wrap(arch Arch, t *topo.Topology) *Cluster {
	eng := sim.New()
	c := &Cluster{Arch: arch, Topo: t, Eng: eng, Net: netsim.New(eng, t), Pod: -1}
	c.EnableTelemetry(defaultHub)
	return c
}

// CollectiveConfig returns the communication-library configuration the
// architecture ships with: HPN uses RePaC-backed disjoint paths with
// least-WQE dispatch; DCN+ uses the blind multi-path baseline.
func (c *Cluster) CollectiveConfig() collective.Config {
	cfg := collective.DefaultConfig()
	if c.Arch == ArchDCN {
		cfg.Policy = collective.PolicyBlind
	}
	return cfg
}

// PlaceJob returns `hosts` host IDs following the production scheduler's
// policy: fill segments completely before spilling into the next, so jobs
// under a segment's capacity enjoy pure tier1 networking (§3: 96.3% of
// jobs fit in one HPN segment). Backup hosts are skipped.
func (c *Cluster) PlaceJob(hosts int) ([]int, error) {
	type seg struct {
		pod, seg int
	}
	bySeg := map[seg][]int{}
	for id, h := range c.Topo.Hosts {
		if h.Backup {
			continue
		}
		if c.Pod >= 0 && h.Pod != c.Pod {
			continue
		}
		k := seg{h.Pod, h.Segment}
		bySeg[k] = append(bySeg[k], id)
	}
	keys := make([]seg, 0, len(bySeg))
	for k := range bySeg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pod != keys[j].pod {
			return keys[i].pod < keys[j].pod
		}
		return keys[i].seg < keys[j].seg
	})
	var out []int
	for _, k := range keys {
		ids := bySeg[k]
		sort.Ints(ids)
		for _, id := range ids {
			out = append(out, id)
			if len(out) == hosts {
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("core: need %d hosts, cluster has %d active", hosts, len(out))
}

// SegmentsSpanned counts distinct segments among the hosts — the paper's
// "the training job spans 19 segments (DCN+) vs 3 (HPN)" metric.
func (c *Cluster) SegmentsSpanned(hosts []int) int {
	type seg struct{ pod, s int }
	set := map[seg]bool{}
	for _, h := range hosts {
		hh := c.Topo.Hosts[h]
		set[seg{hh.Pod, hh.Segment}] = true
	}
	return len(set)
}

// VerifyPlaneIsolation samples flows between random endpoint pairs and
// asserts the dual-plane invariant: a flow entering on port p traverses
// only plane-p links and is delivered to port p. It returns an error on
// the first violation.
func (c *Cluster) VerifyPlaneIsolation(samples int, seed uint64) error {
	if c.Topo.Planes < 2 {
		return fmt.Errorf("core: %s is not dual-plane", c.Arch)
	}
	rng := sim.NewRNG(seed)
	r := c.Net.R
	n := len(c.Topo.Hosts)
	for i := 0; i < samples; i++ {
		src := route.Endpoint{Host: rng.Intn(n), NIC: rng.Intn(8)}
		dst := route.Endpoint{Host: rng.Intn(n), NIC: src.NIC}
		if src.Host == dst.Host {
			continue
		}
		port := rng.Intn(2)
		tuple := hashing.FiveTuple{
			SrcAddr: src.Addr(), DstAddr: dst.Addr(),
			SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 4791, Proto: 17,
		}
		path, bh, err := r.Path(src, dst, port, tuple, c.Eng.Now())
		if err != nil || bh {
			return fmt.Errorf("core: sample %d unroutable: %v", i, err)
		}
		for _, lk := range path {
			if c.Topo.Link(lk).Plane != port {
				return fmt.Errorf("core: flow on port %d crossed plane %d", port, c.Topo.Link(lk).Plane)
			}
		}
		if hp, ok := c.Topo.HostPortOf(path[len(path)-1]); !ok || hp.Port != port {
			return fmt.Errorf("core: flow on port %d delivered to port %d", port, hp.Port)
		}
	}
	return nil
}

// PathSearchSpace returns the number of candidate links a host must
// consider to enumerate all equal-cost paths to a peer — Table 1's
// quantity, measured on the built fabric rather than assumed. For a 2-tier
// dual-plane fabric this is the ToR fan-out; for 3-tier fabrics the
// per-tier fan-outs multiply.
func (c *Cluster) PathSearchSpace(host, nic int) int {
	r := c.Net.R
	space := r.GroupSizeAtToR(host, nic, 0)
	if c.Arch == ArchHPN || c.Arch == ArchHPNSinglePlane {
		return space // tier2 path is determined once the uplink is chosen
	}
	// 3-tier legacy fabric: ToR choice x Agg down-links toward the
	// destination ToR pair (parallel bundles) — and cores across pods.
	h := c.Topo.Hosts[host]
	aggs := c.Topo.Aggs(h.Pod, 0)
	if len(aggs) == 0 {
		return space
	}
	agg := c.Topo.Node(aggs[0])
	perToR := len(agg.Downlinks) / maxInt(1, countToRsInPod(c.Topo, h.Pod))
	return space * maxInt(1, perToR*2)
}

func countToRsInPod(t *topo.Topology, pod int) int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Kind == topo.KindToR && nd.Pod == pod {
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"fmt"

	"hpn/internal/health"
	"hpn/internal/memo"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// defaultHub, when set, is attached to every cluster built afterwards.
// Runners (hpnsim, hpnbench) set it once from their flags so experiment
// code that constructs clusters internally needs no plumbing changes.
var defaultHub *telemetry.Hub

// SetDefaultTelemetry installs (or clears, with nil) the hub that newly
// built clusters auto-attach to.
func SetDefaultTelemetry(h *telemetry.Hub) { defaultHub = h }

// EnableTelemetry attaches the cluster to a telemetry hub: the engine,
// network, and router start emitting trace events under a dedicated trace
// process; netsim counters/gauges register under the cluster's metric
// prefix; and a periodic sampler starts snapshotting fabric gauges and the
// first Opt.SamplePorts ToR uplink ports. Safe to call with a nil hub
// (no-op); calling it twice attaches the cluster as two trace processes,
// so don't.
func (c *Cluster) EnableTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	prefix, smp := h.JoinCluster()
	tr := h.Tracer.Process(string(c.Arch))
	tr.NameThread(telemetry.TidSim, "engine")
	tr.NameThread(telemetry.TidNetsim, "netsim")
	tr.NameThread(telemetry.TidRoute, "route")
	tr.NameThread(telemetry.TidWorkload, "workload")
	tr.NameThread(telemetry.TidFailure, "failure")
	c.Eng.SetTracer(tr)
	c.Net.AttachTelemetry(tr, h.Registry, prefix)
	c.Net.R.Tracer = tr
	// Profiler before memo.Attach: the recorder reads Sim.Prof for its own
	// phases when it attaches.
	if h.Prof != nil {
		c.Eng.SetProfiler(h.Prof)
		c.Net.AttachProfiler(h.Prof, h.Flight)
	}
	if h.Opt.Inband {
		c.Net.EnableInband(h.Opt.InbandMax)
	}
	if h.Opt.Health {
		health.Attach(c.Net, health.DefaultConfig())
	}
	// The recorder must attach after every other observer so it wraps the
	// chain outermost: it has to see invalidating fabric events first and
	// capture exactly the callbacks replay must re-feed.
	if h.Opt.Memo {
		memo.Attach(c.Net)
	}
	if smp == nil {
		return
	}
	// Counter tracks must carry this cluster's pid, not the hub root's.
	smp.AttachTracer(tr)
	smp.Track(prefix+"active_flows", func() float64 { return float64(c.Net.ActiveFlows()) })
	smp.Track(prefix+"stalled_flows", func() float64 { return float64(c.Net.StalledFlows()) })
	smp.Track(prefix+"agg_gbits", func() float64 { return c.Net.AggBits / 1e9 })
	smp.Track(prefix+"core_gbits", func() float64 { return c.Net.CoreBits / 1e9 })
	c.trackPorts(smp, prefix, h.Opt.SamplePorts)
	h.Registry.RegisterExporter(prefix+"samples.csv", smp.WriteCSV)
	c.startSampler(smp)
}

// trackPorts probes the first n ToR uplink ports (in node order) for
// utilization and queue pressure — the per-port series the paper's
// Figures 14/15 plot. n <= 0 tracks nothing.
func (c *Cluster) trackPorts(smp *telemetry.Sampler, prefix string, n int) {
	tracked := 0
	for _, nd := range c.Topo.Nodes {
		if nd.Kind != topo.KindToR {
			continue
		}
		if c.Pod >= 0 && nd.Pod != c.Pod {
			continue
		}
		for i, lk := range nd.Uplinks {
			if tracked >= n {
				return
			}
			name := fmt.Sprintf("%s%s/up%d", prefix, nd.Name, i)
			p := c.Net.TrackLink(lk, name)
			smp.Track(name+"/util_bps", p.UtilBps)
			smp.Track(name+"/queue_bytes", p.QueueBytes)
			tracked++
		}
	}
}

// startSampler drives the sampler off the cluster's engine as a daemon
// tick: samples land at exact interval multiples of virtual time and never
// keep the engine running once foreground work drains.
func (c *Cluster) startSampler(smp *telemetry.Sampler) {
	interval := sim.Time(smp.Interval)
	if interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		// Bring flow progress and probe accumulators up to the tick instant
		// so gauges read current, not allocation-time, values.
		c.Net.SyncTime()
		smp.Sample(int64(c.Eng.Now()))
		c.Eng.ScheduleDaemon(interval, tick)
	}
	c.Eng.ScheduleDaemon(interval, tick)
}

package core

import (
	"fmt"

	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// ShardedCluster is one HPN fabric simulated by a coordinated ensemble of
// engines: a global domain (cores, agg-core links, every cross-pod flow)
// plus one shard per pod (the pod's hosts, ToRs, Aggs and the links between
// them). The shards advance in conservative time windows under sim.Sharded;
// each owns a private netsim.Sim scoped to its pod's links, so pod-local
// traffic — the common case under segment-first placement — simulates in
// parallel with no shared mutable state.
//
// Escalation rule: any flow whose endpoints live in different pods must be
// started on Global.Net, and the coordinator runs the global domain only
// while every shard is quiescent. Pod Sims reject cross-pod endpoints at
// StartFlow, so the rule is checked, not just documented.
type ShardedCluster struct {
	Arch     Arch
	Topo     *topo.Topology
	Sharding *topo.Sharding
	// Coord is the windowed scheduler; Run the ensemble through it, never
	// through the individual engines.
	Coord *sim.Sharded
	// Global simulates domain 0. Pods[i] simulates pod i (domain i+1).
	Global *Cluster
	Pods   []*Cluster
	// Hub is the root telemetry hub (nil when telemetry is disabled); the
	// pod clusters write through private shard hubs derived from it.
	Hub     *telemetry.Hub
	podHubs []*telemetry.Hub

	folded bool
}

// NewShardedHPN builds an HPN fabric and the per-pod engine ensemble over
// it. The hub may be nil (falls back to the process default hub, which may
// itself be nil). The fabric must have at least two pods — a single-pod
// build has nothing to shard; build a plain Cluster instead.
func NewShardedHPN(cfg topo.HPNConfig, h *telemetry.Hub) (*ShardedCluster, error) {
	t, err := topo.BuildHPN(cfg)
	if err != nil {
		return nil, err
	}
	arch := ArchHPN
	if !cfg.DualToR {
		arch = ArchHPNSingleToR
	} else if !cfg.DualPlane {
		arch = ArchHPNSinglePlane
	}
	return shardTopology(arch, t, h)
}

func shardTopology(arch Arch, t *topo.Topology, h *telemetry.Hub) (*ShardedCluster, error) {
	sh, err := topo.ShardByPod(t)
	if err != nil {
		return nil, err
	}
	if h == nil {
		h = defaultHub
	}
	geng := sim.New()
	sc := &ShardedCluster{
		Arch:     arch,
		Topo:     t,
		Sharding: sh,
		Global:   &Cluster{Arch: arch, Topo: t, Eng: geng, Net: netsim.New(geng, t), Pod: -1},
		Hub:      h,
	}
	// The global cluster joins the root hub first, taking the unprefixed
	// slot: cross-pod metrics and the merged trace keep the names
	// single-engine runs produce. Pod clusters then join in pod order, so
	// prefixes (c2_, c3_, ...) map to pods deterministically.
	sc.Global.EnableTelemetry(h)
	engines := make([]*sim.Engine, sh.N)
	for i := 0; i < sh.N; i++ {
		eng := sim.New()
		net := netsim.New(eng, t)
		net.RestrictShard(sh, i+1)
		// Disjoint flow-ID ranges per domain: IDs appear in traces and
		// flow logs, and merged artifacts must never collide. 2^40 flows
		// per domain is far beyond any run's reach.
		net.SetFlowIDBase(int64(i+1) << 40)
		pc := &Cluster{Arch: arch, Topo: t, Eng: eng, Net: net, Pod: i}
		if h != nil {
			ph := h.ShardHub()
			pc.EnableTelemetry(ph)
			sc.podHubs = append(sc.podHubs, ph)
		}
		sc.Pods = append(sc.Pods, pc)
		engines[i] = eng
	}
	sc.Coord = sim.NewSharded(geng, engines)
	if h != nil && h.Prof != nil {
		sc.Coord.SetProfiler(h.Prof)
	}
	return sc, nil
}

// SetWorkers sets how many OS goroutines execute shard windows (1 = serial).
// Results are identical for every worker count; only wall-clock changes.
func (sc *ShardedCluster) SetWorkers(n int) { sc.Coord.SetWorkers(n) }

// Pod returns the cluster view simulating the given pod.
func (sc *ShardedCluster) Pod(pod int) *Cluster { return sc.Pods[pod] }

// PodHubs returns the per-pod shard telemetry hubs, in pod order (empty
// when the ensemble was built without a hub).
func (sc *ShardedCluster) PodHubs() []*telemetry.Hub { return sc.podHubs }

// DomainFor returns the cluster that owns a link: the pod shard for
// intra-pod links, the global cluster for agg-core links. Failure
// injection must target the owning cluster's Net/engine.
func (sc *ShardedCluster) DomainFor(l topo.LinkID) *Cluster {
	if d := sc.Sharding.ShardOfLink(l); d > 0 {
		return sc.Pods[d-1]
	}
	return sc.Global
}

// Run drives the whole ensemble to quiescence through the windowed
// coordinator, then folds per-shard metrics into the root registry so
// suffix-summing readers (MetricSum, the JSON/Prometheus exports) see the
// ensemble total.
func (sc *ShardedCluster) Run() {
	sc.Coord.Run()
	sc.foldMetrics()
}

// foldMetrics absorbs every pod registry into the base registry, once, in
// pod order on the calling goroutine. Safe only while the engines are
// quiescent.
func (sc *ShardedCluster) foldMetrics() {
	if sc.Hub == nil || sc.folded {
		return
	}
	sc.folded = true
	for _, ph := range sc.podHubs {
		sc.Hub.Registry.Absorb(ph.Registry)
	}
}

// WriteArtifacts writes the root hub's artifacts and then each pod hub's
// (prefixed) artifacts into dir, returning all paths written.
func (sc *ShardedCluster) WriteArtifacts(dir string) ([]string, error) {
	if sc.Hub == nil {
		return nil, fmt.Errorf("core: sharded cluster has no telemetry hub")
	}
	paths, err := sc.Hub.WriteArtifacts(dir)
	if err != nil {
		return paths, err
	}
	for _, ph := range sc.podHubs {
		p, err := ph.WriteArtifacts(dir)
		paths = append(paths, p...)
		if err != nil {
			return paths, err
		}
	}
	return paths, nil
}

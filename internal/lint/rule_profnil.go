package lint

import (
	"go/ast"
	"go/types"
)

// profnilRule enforces the self-profiler's flight-recorder cost contract,
// the same bargain tracenil strikes for tracers: every emission call on a
// *prof.Flight (Note, Mark) sits behind an explicit nil-recorder guard, so
// a run without profiling enabled costs exactly one branch per emission
// point — not the construction of subject strings and value arguments for
// a recorder nobody holds. The methods are nil-safe, so nothing crashes
// without the guard; what the rule protects is the "prof off means
// near-zero overhead" guarantee on hot paths (flow completion, failure
// injection, reroute passes).
//
// Recognized guard shapes match guardedNotNil (rule_tracenil.go):
//
//	if X != nil { ... X.Note(...) ... }      // enclosing-if form
//	if X == nil { return }; ...; X.Mark(...) // early-return form
//
// Package prof itself is exempt: it owns the nil-safety. Phase and
// Profiler methods (Begin/End/Add/Phase...) carry no guard obligation —
// they take no constructed arguments, so the nil check inside the callee
// is already the whole cost.
//
// Like tracenil, the rule is interprocedural: a helper that emits on a
// flight parameter without guarding it exports the obligation to its
// callers, so passing a possibly-nil recorder to such a helper unguarded
// is reported at the call site with the chain down to the emission.
type profnilRule struct{}

func (profnilRule) Name() string { return "profnil" }
func (profnilRule) Doc() string {
	return "flight-recorder emission calls (Note/Mark) must sit behind a nil-recorder guard, including through helpers emitting on a flight parameter"
}

// flightEmitMethods are the per-event emission entry points; Windows and
// WriteTSV run once per export and are exempt.
var flightEmitMethods = map[string]bool{
	"Note": true,
	"Mark": true,
}

func (profnilRule) Check(p *Pass) {
	if p.Pkg.ImportPath == profPath {
		return
	}
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				checkParamEmitCall(p, call, stack, "profnil", "flight recorder")
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isFlightEmitMethod(fn) {
				checkParamEmitCall(p, call, stack, "profnil", "flight recorder")
				return true
			}
			recv := types.ExprString(sel.X)
			if guardedNotNil(stack, call, recv) {
				return true
			}
			p.Reportf(call.Pos(), "profnil",
				"%s.%s() is not behind a nil-recorder guard; wrap it in `if %s != nil { ... }` (or early-return on nil) so a run without profiling costs one branch",
				recv, fn.Name(), recv)
			return true
		})
	}
}

// isFlightEmitMethod reports whether fn is a Note/Mark method declared on
// prof.Flight.
func isFlightEmitMethod(fn *types.Func) bool {
	if funcPkgPath(fn) != profPath || !flightEmitMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Flight"
}

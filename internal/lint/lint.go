// Package lint implements hpnlint, the repo's determinism and invariant
// static-analysis suite.
//
// The simulator's core correctness contract is bit-for-bit reproducibility:
// every artifact (flow logs, traces, metrics) must be byte-identical across
// same-seed runs. That contract is easy to break silently — one stray
// time.Now, a global math/rand draw, or Go map iteration order leaking into
// an ordered output — so it is enforced by machine rather than by review
// vigilance. hpnlint walks every package with go/parser + go/types (standard
// library only, preserving the repo's no-dependency rule) and reports
// file:line diagnostics for five rules:
//
//   - wallclock:  no time.Now/time.Since etc. in simulator code; virtual
//     time comes from sim.Engine.Now.
//   - globalrand: no math/rand package-level functions; RNG streams must
//     flow from hpn/internal/sim.NewRNG / RNG.Fork.
//   - maporder:   no map iteration whose body schedules simulator events,
//     appends to a slice that outlives the loop (unless sorted afterwards),
//     or emits telemetry — the ways map order reaches ordered output.
//   - floateq:    no ==/!= between floating-point operands; the fluid
//     solver compares with epsilons.
//   - tracenil:   telemetry emission sites must sit behind a nil-tracer
//     guard so disabled telemetry costs one branch, not argument
//     construction.
//   - obsnil:     netsim.Observer callback sites must sit behind a
//     nil-observer guard — a nil interface call panics, and the
//     observer-less simulation must cost one branch per emission point.
//
// Intentional exceptions carry a `//hpnlint:allow <rule>` directive (see
// collectAllows in allow.go for the exact syntax).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module-internal import paths the rules key on.
const (
	telemetryPath = "hpn/internal/telemetry"
	simPath       = "hpn/internal/sim"
	netsimPath    = "hpn/internal/netsim"
)

// Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one invariant checker run over every loaded package.
type Rule interface {
	// Name is the identifier used in diagnostics and allow directives.
	Name() string
	// Doc is a one-line description for -rules output and docs.
	Doc() string
	// Check inspects one package and reports findings through the pass.
	Check(p *Pass)
}

// AllRules returns the full rule set in stable order.
func AllRules() []Rule {
	return []Rule{
		wallclockRule{},
		globalrandRule{},
		maporderRule{},
		floateqRule{},
		tracenilRule{},
		obsnilRule{},
	}
}

// RuleByName resolves a rule name, or nil.
func RuleByName(name string) Rule {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// Pass carries one package through one rule.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Info *types.Info

	report func(pos token.Pos, rule, msg string)
}

// Reportf files a diagnostic unless an allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...))
}

// Run applies rules to pkgs and returns the surviving diagnostics sorted by
// position.
func Run(fset *token.FileSet, info *types.Info, pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(fset, pkg)
		pass := &Pass{
			Fset: fset,
			Pkg:  pkg,
			Info: info,
			report: func(pos token.Pos, rule, msg string) {
				position := fset.Position(pos)
				if allows.allowed(position.Filename, position.Line, rule) {
					return
				}
				diags = append(diags, Diagnostic{Pos: position, Rule: rule, Msg: msg})
			},
		}
		for _, r := range rules {
			r.Check(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// inspectWithStack walks the tree rooted at root, calling fn for each node
// with the stack of its ancestors (outermost first, root's ancestors
// excluded). Returning false prunes the subtree, mirroring ast.Inspect.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the function or method a call expression invokes, or
// nil for builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// Package lint implements hpnlint, the repo's determinism and invariant
// static-analysis suite.
//
// The simulator's core correctness contract is bit-for-bit reproducibility:
// every artifact (flow logs, traces, metrics) must be byte-identical across
// same-seed runs. That contract is easy to break silently — one stray
// time.Now, a global math/rand draw, or Go map iteration order leaking into
// an ordered output — so it is enforced by machine rather than by review
// vigilance. hpnlint parses every package with go/parser + go/types
// (standard library only, preserving the repo's no-dependency rule), builds
// a module-wide call graph, computes per-function dataflow summaries
// ("derives wall-clock time", "has ordered side effects", "returns
// map-iteration-ordered data", "parameter reaches an ordered sink") to a
// fixpoint, and reports file:line diagnostics — with the interprocedural
// taint chain attached — for these rules:
//
//   - wallclock:  no time.Now/time.Since etc. in simulator code, directly
//     or through any call chain; virtual time comes from sim.Engine.Now.
//   - globalrand: no math/rand package-level functions, directly or
//     transitively; RNG streams must flow from hpn/internal/sim.NewRNG /
//     RNG.Fork.
//   - maporder:   no map iteration whose order reaches ordered output —
//     scheduling events, emitting telemetry, building surviving slices, or
//     calling functions that (transitively) do any of those; also no
//     ranging over or sinking of data a callee built in map order.
//   - floateq:    no ==/!= between floating-point operands; the fluid
//     solver compares with epsilons.
//   - tracenil:   telemetry emission sites must sit behind a nil-tracer
//     guard — including call sites that pass a possibly-nil tracer to a
//     helper that emits on it unguarded.
//   - obsnil:     netsim.Observer callback sites must sit behind a
//     nil-observer guard, with the same interprocedural obligation.
//   - profnil:    prof.Flight recorder emission sites (Note/Mark) must sit
//     behind a nil-recorder guard, with the same interprocedural
//     obligation.
//   - goorder:    goroutine results must be merged index-addressed or
//     sorted, never by channel-receive order or shared-slice append.
//   - floatacc:   no float accumulation whose reduction order depends on
//     map iteration, goroutine scheduling, or channel-receive order.
//   - seqsource:  artifact records are stamped from engine clock/sequence
//     cursors, never from function-local counters (memo replay re-stamps
//     by engine deltas; local counters silently diverge).
//   - allowstale: every //hpnlint:allow directive must still suppress a
//     finding; a stale allow is itself a finding.
//
// Intentional exceptions carry a `//hpnlint:allow <rule>` directive (see
// collectAllows in allow.go for the exact syntax). An allow at a taint
// seed also stops the summary propagation, so a justified exception does
// not cascade findings onto its callers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module-internal import paths the rules key on.
const (
	telemetryPath = "hpn/internal/telemetry"
	simPath       = "hpn/internal/sim"
	netsimPath    = "hpn/internal/netsim"
	profPath      = "hpn/internal/prof"
)

// ChainFrame is one link of an interprocedural taint chain, from the
// reported sink back to the seed.
type ChainFrame struct {
	Pos  token.Position
	Note string
}

// Diagnostic is one finding at a resolved source position, with the
// summary chain that explains an interprocedural path (empty for direct
// findings).
type Diagnostic struct {
	Pos   token.Position
	Rule  string
	Msg   string
	Chain []ChainFrame
}

// String renders the diagnostic in the conventional file:line:col form,
// without the chain (see Render for the chained form).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Render renders the diagnostic with its taint chain, one indented line
// per frame.
func (d Diagnostic) Render() string {
	out := d.String()
	for _, f := range d.Chain {
		out += fmt.Sprintf("\n\t%s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Note)
	}
	return out
}

// Rule is one invariant checker run over every loaded package.
type Rule interface {
	// Name is the identifier used in diagnostics and allow directives.
	Name() string
	// Doc is a one-line description for -rules output and docs.
	Doc() string
	// Check inspects one package and reports findings through the pass.
	Check(p *Pass)
}

// AllRules returns the full rule set in stable order.
func AllRules() []Rule {
	return []Rule{
		wallclockRule{},
		globalrandRule{},
		maporderRule{},
		floateqRule{},
		tracenilRule{},
		obsnilRule{},
		profnilRule{},
		goorderRule{},
		floataccRule{},
		seqsourceRule{},
		allowstaleRule{},
	}
}

// RuleByName resolves a rule name, or nil.
func RuleByName(name string) Rule {
	for _, r := range AllRules() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// knownRuleNames is the universe of valid rule names for allow directives.
func knownRuleNames() map[string]bool {
	known := map[string]bool{}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	return known
}

// Pass carries one package through one rule.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Info *types.Info
	// Prog is the module-wide program: call graph, allow sets and
	// converged summaries. Rules consult it for interprocedural facts.
	Prog *Program

	report func(pos token.Pos, rule, msg string, chain []ChainFrame)
}

// Reportf files a diagnostic unless an allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...), nil)
}

// ReportChain files a diagnostic carrying an interprocedural taint chain.
func (p *Pass) ReportChain(pos token.Pos, rule, msg string, chain []ChainFrame) {
	p.report(pos, rule, msg, chain)
}

// Analysis is the result of one analyzer run: the diagnostics plus the
// program state tools (the stale-allow fixer) inspect afterwards.
type Analysis struct {
	Prog  *Program
	Diags []Diagnostic
}

// Run applies rules to pkgs and returns the surviving diagnostics sorted
// by position. Summaries are computed over pkgs only; use Analyze to lint
// a subset against a wider context.
func Run(fset *token.FileSet, info *types.Info, pkgs []*Package, rules []Rule) []Diagnostic {
	return Analyze(fset, info, pkgs, pkgs, rules).Diags
}

// Analyze builds the module-wide program over context (a superset of
// pkgs), runs every rule over pkgs, then reports stale allow directives if
// the allowstale rule is enabled.
func Analyze(fset *token.FileSet, info *types.Info, pkgs, context []*Package, rules []Rule) *Analysis {
	prog := BuildProgram(fset, info, pkgs, context)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := prog.allows[pkg]
		pass := &Pass{
			Fset: fset,
			Pkg:  pkg,
			Info: info,
			Prog: prog,
			report: func(pos token.Pos, rule, msg string, chain []ChainFrame) {
				position := fset.Position(pos)
				if allows.allowed(position.Filename, position.Line, rule) {
					return
				}
				diags = append(diags, Diagnostic{Pos: position, Rule: rule, Msg: msg, Chain: chain})
			},
		}
		for _, r := range rules {
			r.Check(pass)
		}
	}
	// allowstale runs after every other rule has had its chance to mark
	// directives used; see rule_allowstale.go.
	for _, r := range rules {
		if as, ok := r.(allowstaleRule); ok {
			diags = append(diags, as.findings(prog)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return &Analysis{Prog: prog, Diags: diags}
}

// inspectWithStack walks the tree rooted at root, calling fn for each node
// with the stack of its ancestors (outermost first, root's ancestors
// excluded). Returning false prunes the subtree, mirroring ast.Inspect.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the function or method a call expression invokes, or
// nil for builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

package lint

import (
	"go/ast"
	"go/types"
)

// globalrandRule flags math/rand (and math/rand/v2) package-level
// functions. The global source is seeded per process, so any draw from it
// breaks same-seed reproducibility; even explicitly seeded rand.Rand values
// are off-contract here because every stochastic component must derive its
// stream from the experiment seed via hpn/internal/sim.NewRNG / RNG.Fork.
//
// Interprocedurally, a call to a module function whose summary says it
// (transitively) draws from the global source is reported at the call site
// with the taint chain.
type globalrandRule struct{}

func (globalrandRule) Name() string { return "globalrand" }
func (globalrandRule) Doc() string {
	return "no math/rand top-level functions, directly or via any call chain; RNG streams must flow from hpn/internal/sim (NewRNG/Fork)"
}

func (globalrandRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := p.Info.Uses[n.Sel].(*types.Func)
				if !ok {
					return true
				}
				switch funcPkgPath(fn) {
				case "math/rand", "math/rand/v2":
				default:
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on rand.Rand values are the caller's seed problem
				}
				p.Reportf(n.Pos(), "globalrand",
					"rand.%s draws outside the experiment's seeded stream; derive an RNG with hpn/internal/sim.NewRNG(seed) or RNG.Fork",
					fn.Name())
			case *ast.CallExpr:
				fi := p.Prog.FuncOf(calleeFunc(p.Info, n))
				if fi == nil || fi.sum.Rand == nil {
					return true
				}
				p.ReportChain(n.Pos(), "globalrand",
					"call to "+fi.Name()+" draws from the global math/rand source (interprocedural); thread a sim.RNG stream through instead",
					p.Prog.chain(fi.sum.Rand, factRand))
			}
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// wallclockRule flags reads of the wall clock. Simulator state must evolve
// on virtual time (sim.Engine.Now) only: a single time.Now in a hot path
// makes artifacts differ between same-seed runs. Legitimate uses — CLI
// wall-time reporting around a whole run — carry an allow directive.
type wallclockRule struct{}

func (wallclockRule) Name() string { return "wallclock" }
func (wallclockRule) Doc() string {
	return "no time.Now/time.Since/timers in simulator code; virtual time comes from sim.Engine.Now"
}

// wallclockFuncs are the package time entry points that read or depend on
// the wall clock. Pure types and constants (time.Duration, time.Second) are
// deterministic and stay legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (wallclockRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || funcPkgPath(fn) != "time" || !wallclockFuncs[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "wallclock",
				"time.%s reads the wall clock; simulator code must use virtual time (sim.Engine.Now). CLI-level run timing may carry //hpnlint:allow wallclock",
				fn.Name())
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// wallclockRule flags reads of the wall clock. Simulator state must evolve
// on virtual time (sim.Engine.Now) only: a single time.Now in a hot path
// makes artifacts differ between same-seed runs. Legitimate uses — CLI
// wall-time reporting around a whole run — carry an allow directive.
//
// The rule is interprocedural: calling a module function whose summary
// says "derives wall-clock time" (directly or through any call chain whose
// seed is not allow-suppressed) is the same defect one hop removed, and is
// reported at the call site with the taint chain attached.
type wallclockRule struct{}

func (wallclockRule) Name() string { return "wallclock" }
func (wallclockRule) Doc() string {
	return "no time.Now/time.Since/timers in simulator code, directly or via any call chain; virtual time comes from sim.Engine.Now"
}

// wallclockFuncs are the package time entry points that read or depend on
// the wall clock. Pure types and constants (time.Duration, time.Second) are
// deterministic and stay legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (wallclockRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := p.Info.Uses[n.Sel].(*types.Func)
				if !ok || funcPkgPath(fn) != "time" || !wallclockFuncs[fn.Name()] {
					return true
				}
				p.Reportf(n.Pos(), "wallclock",
					"time.%s reads the wall clock; simulator code must use virtual time (sim.Engine.Now). CLI-level run timing may carry //hpnlint:allow wallclock",
					fn.Name())
			case *ast.CallExpr:
				fi := p.Prog.FuncOf(calleeFunc(p.Info, n))
				if fi == nil || fi.sum.Wall == nil {
					return true
				}
				p.ReportChain(n.Pos(), "wallclock",
					"call to "+fi.Name()+" derives wall-clock time outside sim.Engine (interprocedural); use virtual time or justify the seed with //hpnlint:allow wallclock",
					p.Prog.chain(fi.sum.Wall, factWall))
			}
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqRule flags ==/!= between floating-point operands. The fluid
// solver's progressive filling accumulates rounding error by design, so
// exact comparison is either a latent bug (never-equal shares) or a
// portability hazard (FMA/ordering differences across architectures);
// comparisons must use an epsilon. Intentional exact guards — e.g.
// rejecting exactly 0 before math.Log — carry an allow directive with a
// justification.
type floateqRule struct{}

func (floateqRule) Name() string { return "floateq" }
func (floateqRule) Doc() string {
	return "no ==/!= between floating-point operands; compare with an epsilon"
}

func (floateqRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(bin.X)) || !isFloat(p.Info.TypeOf(bin.Y)) {
				return true
			}
			p.Reportf(bin.OpPos, "floateq",
				"exact floating-point %s comparison between %s and %s; compare with an epsilon (math.Abs(a-b) <= eps) or justify with //hpnlint:allow floateq",
				bin.Op, types.ExprString(bin.X), types.ExprString(bin.Y))
			return true
		})
	}
}

// isFloat reports whether t is (or is based on) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

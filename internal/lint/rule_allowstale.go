package lint

// allowstaleRule turns suppression debt into findings: every
// `//hpnlint:allow <rule>` directive must still suppress at least one
// diagnostic (or stop at least one taint seed). A directive that no longer
// fires is dead configuration — the hazard it excused was fixed or moved,
// and the stale allow now silently licenses a future regression at that
// line. Directives naming rules that do not exist are always stale.
//
// The rule cannot run per-package like the others: staleness is only known
// after every other enabled rule has had its chance to mark directives
// used. Check is therefore a no-op and the findings are produced by
// Analyze as a post-phase (see findings below), still gated on the rule
// being in the enabled set. `make lint-fix` (hpnlint -fix-allows) deletes
// the stale tokens mechanically.
type allowstaleRule struct{}

func (allowstaleRule) Name() string { return "allowstale" }
func (allowstaleRule) Doc() string {
	return "every //hpnlint:allow directive must still suppress a finding; stale allows are findings"
}

// Check is intentionally empty — see the type comment. Staleness is a
// whole-program post-condition, not a per-package property.
func (allowstaleRule) Check(p *Pass) {}

// findings reports the stale directives after all other rules ran.
func (allowstaleRule) findings(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, sa := range prog.staleAllows(knownRuleNames()) {
		msg := "//hpnlint:allow " + sa.Rule + " no longer suppresses any finding; delete it (make lint-fix) or re-justify it"
		if sa.Unknown {
			msg = "//hpnlint:allow names unknown rule " + sa.Rule + "; delete it (make lint-fix) or fix the rule name"
		}
		diags = append(diags, Diagnostic{Pos: sa.Pos, Rule: "allowstale", Msg: msg})
	}
	return diags
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// seqsourceRule flags artifact records stamped from function-local
// counters instead of the engine's cursors. The memoization layer
// (internal/memo) replays skipped iterations by re-stamping records from
// engine deltas — virtual time from sim.Engine.Now, sequence numbers from
// sim.Engine.Seq — so a record whose Seq/Time field comes from a `i := 0;
// i++` counter is correct on a cold run and silently diverges on a
// fast-forwarded one: the local counter restarts at its literal while the
// engine cursor carries the replayed history. The rule fires on a
// stamp-named field (Seq, ID, Time, ...) assigned from a local counter,
// whether in a composite literal or a field assignment.
//
// The sim package itself is exempt: it owns the cursors and may build
// them from whatever arithmetic it likes.
type seqsourceRule struct{}

func (seqsourceRule) Name() string { return "seqsource" }
func (seqsourceRule) Doc() string {
	return "artifact records must be stamped from engine clock/seq cursors, not function-local counters"
}

// stampFields are the record fields that carry ordering or identity into
// artifacts; a local counter landing in one of these is a replay hazard.
var stampFields = map[string]bool{
	"Seq":       true,
	"SeqNo":     true,
	"ID":        true,
	"Time":      true,
	"TS":        true,
	"Timestamp": true,
	"At":        true,
	"Stamp":     true,
}

func (seqsourceRule) Check(p *Pass) {
	if p.Pkg.ImportPath == simPath {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			counters := localCounters(p.Info, fd)
			if len(counters) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok || !stampFields[key.Name] {
							continue
						}
						if c := counterIn(p.Info, kv.Value, counters); c != "" {
							p.Reportf(kv.Value.Pos(), "seqsource",
								"record field %s stamped from local counter %s; memo replay re-stamps records from engine cursors (sim.Engine.Now / Seq), so a local counter diverges after fast-forward — thread the engine cursor instead",
								key.Name, c)
						}
					}
				case *ast.AssignStmt:
					if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok || !stampFields[sel.Sel.Name] {
							continue
						}
						if c := counterIn(p.Info, n.Rhs[i], counters); c != "" {
							p.Reportf(n.Rhs[i].Pos(), "seqsource",
								"record field %s stamped from local counter %s; memo replay re-stamps records from engine cursors (sim.Engine.Now / Seq), so a local counter diverges after fast-forward — thread the engine cursor instead",
								sel.Sel.Name, c)
						}
					}
				}
				return true
			})
		}
	}
}

// counterIn reports (by name) the first local counter referenced by e,
// looking through conversions and arithmetic; "" when e uses none. A value
// merely offset from a counter (i + base) is still counter-derived.
func counterIn(info *types.Info, e ast.Expr, counters map[types.Object]token.Pos) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isCounter := counters[info.ObjectOf(id)]; isCounter {
			name = id.Name
		}
		return name == ""
	})
	return name
}

package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The source importer behind a Loader costs a few seconds of stdlib
// parsing, so all tests share one Loader rooted at the repo's module.
var sharedLoader struct {
	once   sync.Once
	loader *Loader
	err    error
}

func testLoader(t *testing.T) *Loader {
	t.Helper()
	sharedLoader.once.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			sharedLoader.err = err
			return
		}
		root, module, err := FindModuleRoot(wd)
		if err != nil {
			sharedLoader.err = err
			return
		}
		sharedLoader.loader = NewLoader(root, module)
	})
	if sharedLoader.err != nil {
		t.Fatalf("locating module root: %v", sharedLoader.err)
	}
	return sharedLoader.loader
}

// want is one expected diagnostic, declared in a fixture as
//
//	// want:<rule> "substring of the message"
//
// on the line the diagnostic must point at.
type want struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile(`// want:([a-z]+) "([^"]*)"`)

func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &want{file: path, line: line, rule: m[1], substr: m[2]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		f.Close()
	}
	return wants
}

// checkFixture lints testdata/src/<name> with the given rules and demands
// an exact bidirectional match between diagnostics and want comments:
// every diagnostic must be expected, and every expectation must fire.
// Running with a rule removed therefore fails on that rule's wants.
func checkFixture(t *testing.T, name string, rules []Rule) {
	t.Helper()
	ld := testLoader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := ld.LoadDir(dir, "hpnlint.fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", name, terr)
	}
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no want comments", name)
	}
	diags := Run(ld.Fset, ld.Info, []*Package{pkg}, rules)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.line != d.Pos.Line || w.rule != d.Rule {
				continue
			}
			if sameFile(w.file, d.Pos.Filename) && strings.Contains(d.Msg, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s diagnostic containing %q, got none",
				w.file, w.line, w.rule, w.substr)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}

func TestFixtureWallclock(t *testing.T)  { checkFixture(t, "wallclock", AllRules()) }
func TestFixtureGlobalrand(t *testing.T) { checkFixture(t, "globalrand", AllRules()) }
func TestFixtureMaporder(t *testing.T)   { checkFixture(t, "maporder", AllRules()) }
func TestFixtureFloateq(t *testing.T)    { checkFixture(t, "floateq", AllRules()) }
func TestFixtureTracenil(t *testing.T)   { checkFixture(t, "tracenil", AllRules()) }
func TestFixtureObsnil(t *testing.T)     { checkFixture(t, "obsnil", AllRules()) }
func TestFixtureProfnil(t *testing.T)    { checkFixture(t, "profnil", AllRules()) }
func TestFixtureGoorder(t *testing.T)    { checkFixture(t, "goorder", AllRules()) }
func TestFixtureFloatacc(t *testing.T)   { checkFixture(t, "floatacc", AllRules()) }
func TestFixtureSeqsource(t *testing.T)  { checkFixture(t, "seqsource", AllRules()) }
func TestFixtureAllowstale(t *testing.T) { checkFixture(t, "allowstale", AllRules()) }

// TestFixtureInterproc covers the summary-based core: map-iteration order
// crossing call boundaries (counter-indexed builder → RMO summary →
// caller leak / parameter sink) that the old single-function rule could
// not see.
func TestFixtureInterproc(t *testing.T) { checkFixture(t, "interproc", AllRules()) }

// TestInterprocChains pins the explainability contract: every
// interprocedural diagnostic carries a taint chain, and Render shows it
// as indented file:line frames.
func TestInterprocChains(t *testing.T) {
	ld := testLoader(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", "src", "interproc"), "hpnlint.fixture/interproc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(ld.Fset, ld.Info, []*Package{pkg}, AllRules())
	if len(diags) == 0 {
		t.Fatal("interproc fixture produced no diagnostics")
	}
	for _, d := range diags {
		if len(d.Chain) == 0 {
			t.Errorf("interprocedural diagnostic has no taint chain: %s", d)
			continue
		}
		rendered := d.Render()
		if !strings.Contains(rendered, "\n\t") {
			t.Errorf("Render() does not show the chain:\n%s", rendered)
		}
		for _, f := range d.Chain {
			if f.Pos.Line == 0 || f.Note == "" {
				t.Errorf("chain frame missing position or note in: %s", rendered)
			}
		}
	}
}

// TestFixturesFailWithRuleDisabled is the inverse guard: dropping any
// single rule from the set must leave that fixture's wants unmatched.
// It re-implements the matching loop in miniature so a silently
// weakened rule cannot pass by accident.
func TestFixturesFailWithRuleDisabled(t *testing.T) {
	ld := testLoader(t)
	for _, r := range AllRules() {
		name := r.Name()
		var kept []Rule
		for _, other := range AllRules() {
			if other.Name() != name {
				kept = append(kept, other)
			}
		}
		dir := filepath.Join("testdata", "src", name)
		pkg, err := ld.LoadDir(dir, "hpnlint.fixture/"+name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		diags := Run(ld.Fset, ld.Info, []*Package{pkg}, kept)
		for _, d := range diags {
			if d.Rule == name {
				t.Errorf("rule %s disabled but still reported: %s", name, d)
			}
		}
		// The fixture must carry wants for its own rule, and with the
		// rule disabled none of them can be satisfied.
		sawWant := false
		for _, w := range collectWants(t, dir) {
			if w.rule == name {
				sawWant = true
			}
		}
		if !sawWant {
			t.Errorf("fixture %s has no wants for its own rule", name)
		}
	}
}

// TestRepoIsClean is the acceptance gate: hpnlint over the whole module
// must produce zero diagnostics, and every package must type-check.
func TestRepoIsClean(t *testing.T) {
	ld := testLoader(t)
	pkgs, err := ld.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
		}
	}
	diags := Run(ld.Fset, ld.Info, pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestDiagnosticsSorted pins the deterministic output order the CLI
// relies on: file, then line, then column, then rule.
func TestDiagnosticsSorted(t *testing.T) {
	ld := testLoader(t)
	var all []Diagnostic
	for _, name := range []string{"floateq", "wallclock"} {
		pkg, err := ld.LoadDir(filepath.Join("testdata", "src", name), "hpnlint.fixture/"+name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		all = append(all, Run(ld.Fset, ld.Info, []*Package{pkg}, AllRules())...)
	}
	// Run sorts within one call; a combined stream sorted the same way
	// must agree with per-call order concatenated per package.
	sorted := sort.SliceIsSorted(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	// The two fixture files sort by path (floateq < wallclock), so the
	// concatenation should already be globally sorted.
	if !sorted {
		var lines []string
		for _, d := range all {
			lines = append(lines, d.String())
		}
		t.Fatalf("diagnostics not in deterministic order:\n%s", strings.Join(lines, "\n"))
	}
}

// TestStaleAllowsReported pins what the allowstale post-phase sees on the
// allowstale fixture: exactly the directives that suppress nothing, with
// unknown rule names always stale.
func TestStaleAllowsReported(t *testing.T) {
	ld := testLoader(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", "src", "allowstale"), "hpnlint.fixture/allowstale")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	a := Analyze(ld.Fset, ld.Info, []*Package{pkg}, []*Package{pkg}, AllRules())
	stale := a.Prog.StaleAllows()
	var got []string
	for _, sa := range stale {
		tag := sa.Rule
		if sa.Unknown {
			tag += "(unknown)"
		}
		got = append(got, tag)
	}
	want := []string{"maporder", "globalrand", "nosuchrule(unknown)"}
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("stale allows = %v, want %v", got, want)
	}
}

// TestWriteJSON pins the machine-readable output shape CI consumes.
func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{{
		Pos:  token.Position{Filename: "a.go", Line: 3, Column: 7},
		Rule: "maporder",
		Msg:  "order leak",
		Chain: []ChainFrame{
			{Pos: token.Position{Filename: "b.go", Line: 9, Column: 2}, Note: "returns map-iteration-ordered data"},
		},
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []struct {
		Rule, File, Msg string
		Line, Col       int
		Chain           []struct {
			File, Note string
			Line, Col  int
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Rule != "maporder" || got[0].File != "a.go" ||
		got[0].Line != 3 || got[0].Col != 7 || got[0].Msg != "order leak" {
		t.Errorf("unexpected diagnostic encoding: %s", buf.String())
	}
	if len(got[0].Chain) != 1 || got[0].Chain[0].File != "b.go" || got[0].Chain[0].Line != 9 ||
		got[0].Chain[0].Note != "returns map-iteration-ordered data" {
		t.Errorf("unexpected chain encoding: %s", buf.String())
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty run should encode as [], got %q", buf.String())
	}
}

// TestFixAllows covers the mechanical stale-directive removal: single
// stale token drops the comment, mixed directives keep the live tokens
// and the justification, comment-only lines disappear entirely.
func TestFixAllows(t *testing.T) {
	dir := t.TempDir()
	src := `package p

var a = 1 //hpnlint:allow maporder -- stale
var b = 2 //hpnlint:allow floateq,maporder -- half stale
//hpnlint:allow wallclock -- standalone stale
var c = 3
`
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := []StaleAllow{
		{Pos: token.Position{Filename: path, Line: 3}, Rule: "maporder"},
		{Pos: token.Position{Filename: path, Line: 4}, Rule: "maporder"},
		{Pos: token.Position{Filename: path, Line: 5}, Rule: "wallclock"},
	}
	fixed, err := FixAllows(stale)
	if err != nil {
		t.Fatalf("FixAllows: %v", err)
	}
	if len(fixed) != 1 || fixed[0] != path {
		t.Errorf("fixed = %v, want [%s]", fixed, path)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `package p

var a = 1
var b = 2 //hpnlint:allow floateq -- half stale
var c = 3
`
	if string(got) != want {
		t.Errorf("rewritten file:\n%s\nwant:\n%s", got, want)
	}
}

// TestParseAllowDirective covers the directive grammar documented at
// collectAllows: comma-separated rule list, optional "-- justification".
func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		in    string
		rules []string
		ok    bool
	}{
		{"//hpnlint:allow wallclock", []string{"wallclock"}, true},
		{"//hpnlint:allow wallclock -- CLI timing", []string{"wallclock"}, true},
		{"//hpnlint:allow floateq,maporder", []string{"floateq", "maporder"}, true},
		{"//hpnlint:allow floateq, maporder -- both fine", []string{"floateq", "maporder"}, true},
		{"//hpnlint:allow", nil, false},
		{"// hpnlint:allow wallclock", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		rules, ok := parseAllowDirective(c.in)
		if ok != c.ok {
			t.Errorf("parseAllowDirective(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if fmt.Sprint(rules) != fmt.Sprint(c.rules) && c.ok {
			t.Errorf("parseAllowDirective(%q) = %v, want %v", c.in, rules, c.rules)
		}
	}
}

package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// FixAllows mechanically deletes stale allow directives from their source
// files: each StaleAllow's rule token is removed from its directive, the
// whole comment is removed when no rule token survives, and a line that
// held nothing but the comment is deleted outright. Justifications follow
// their directive — trimmed with the last rule token, kept while any rule
// remains. Returns the files rewritten, in sorted order.
//
// The rewrite is textual by design: directives are line-anchored comments,
// so a line-level edit is exact and keeps gofmt happy without reprinting
// the AST (which would churn unrelated formatting).
func FixAllows(stale []StaleAllow) ([]string, error) {
	byFile := map[string]map[int]map[string]bool{}
	for _, sa := range stale {
		lines := byFile[sa.Pos.Filename]
		if lines == nil {
			lines = map[int]map[string]bool{}
			byFile[sa.Pos.Filename] = lines
		}
		rules := lines[sa.Pos.Line]
		if rules == nil {
			rules = map[string]bool{}
			lines[sa.Pos.Line] = rules
		}
		rules[sa.Rule] = true
	}

	var fixed []string
	for file, staleLines := range byFile {
		data, err := os.ReadFile(file)
		if err != nil {
			return fixed, fmt.Errorf("lint: fix-allows: %w", err)
		}
		lines := strings.Split(string(data), "\n")
		var out []string
		changed := false
		for i, line := range lines {
			staleRules := staleLines[i+1]
			if staleRules == nil {
				out = append(out, line)
				continue
			}
			rewritten, drop := rewriteAllowLine(line, staleRules)
			changed = true
			if !drop {
				out = append(out, rewritten)
			}
		}
		if !changed {
			continue
		}
		if err := os.WriteFile(file, []byte(strings.Join(out, "\n")), 0o644); err != nil {
			return fixed, fmt.Errorf("lint: fix-allows: %w", err)
		}
		fixed = append(fixed, file)
	}
	sort.Strings(fixed)
	return fixed, nil
}

// rewriteAllowLine removes the stale rule tokens from the allow directive
// on one source line. drop reports that the whole line should be deleted
// (the line held only the now-empty directive).
func rewriteAllowLine(line string, staleRules map[string]bool) (rewritten string, drop bool) {
	const prefix = "//hpnlint:allow"
	idx := strings.Index(line, prefix)
	if idx < 0 {
		return line, false // defensive: position no longer matches the text
	}
	directive := line[idx:]
	rules, ok := parseAllowDirective(directive)
	if !ok {
		return line, false
	}
	var keep []string
	for _, r := range rules {
		if !staleRules[r] {
			keep = append(keep, r)
		}
	}
	code := strings.TrimRight(line[:idx], " \t")
	if len(keep) == 0 {
		// Whole directive (and its justification) goes.
		return code, code == ""
	}
	justification := ""
	if j := strings.Index(directive, "--"); j >= 0 {
		justification = " -- " + strings.TrimSpace(directive[j+2:])
	}
	rebuilt := prefix + " " + strings.Join(keep, ",") + justification
	if code == "" {
		// Standalone comment line: preserve its indentation.
		indent := line[:len(line)-len(strings.TrimLeft(line, " \t"))]
		return indent + rebuilt, false
	}
	return code + " " + rebuilt, false
}

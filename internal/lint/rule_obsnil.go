package lint

import (
	"go/ast"
	"go/types"
)

// obsnilRule enforces the fabric-observer cost contract, the same bargain
// tracenil strikes for tracers: every callback invocation on a
// netsim.Observer interface value sits behind an explicit nil guard, so a
// simulation without a health monitor attached pays exactly one branch per
// emission point — not argument evaluation for a callback nobody receives.
// Unlike the nil-safe telemetry methods, calling a method on a nil
// interface value panics, so an unguarded site here is a latent crash on
// the default (observer-less) path, not just an overhead leak.
//
// Recognized guard shapes match guardedNotNil (rule_tracenil.go):
//
//	if X != nil { ... X.LinkEvent(...) ... }      // enclosing-if form
//	if X == nil { return }; ...; X.FlowDone(...)  // early-return form
//
// Like tracenil, the rule follows the obligation through helpers: passing
// a possibly-nil observer into a parameter that is emitted on unguarded is
// reported at the call site — there it is a latent panic two frames away.
type obsnilRule struct{}

func (obsnilRule) Name() string { return "obsnil" }
func (obsnilRule) Doc() string {
	return "netsim.Observer callback calls must sit behind a nil-observer guard"
}

func (obsnilRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				checkParamEmitCall(p, call, stack, "obsnil", "observer")
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isObserverMethod(fn) {
				checkParamEmitCall(p, call, stack, "obsnil", "observer")
				return true
			}
			recv := types.ExprString(sel.X)
			if guardedNotNil(stack, call, recv) {
				return true
			}
			p.Reportf(call.Pos(), "obsnil",
				"%s.%s() is not behind a nil-observer guard; wrap it in `if %s != nil { ... }` (or early-return on nil) — a nil interface call panics and the disabled path must cost one branch",
				recv, fn.Name(), recv)
			return true
		})
	}
}

// isObserverMethod reports whether fn is a method declared on the
// netsim.Observer interface itself — the dynamic-dispatch call sites the
// contract covers. Concrete implementations (health.Monitor and fixture
// doubles) call their own methods with a known-non-nil receiver and are
// exempt.
func isObserverMethod(fn *types.Func) bool {
	if funcPkgPath(fn) != netsimPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Observer" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

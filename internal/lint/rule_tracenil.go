package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracenilRule enforces the repo's telemetry cost contract: every
// emission-method call on a *telemetry.Tracer sits behind an explicit
// nil-tracer guard, so a disabled tracer costs exactly one branch — not the
// construction of a telemetry.Arg slice and its values. The methods are
// nil-safe, so nothing crashes without the guard; what the rule protects is
// the "telemetry off means near-zero overhead" guarantee on hot paths.
//
// Recognized guard shapes (receiver expression X rendered textually):
//
//	if X != nil { ... X.Instant(...) ... }     // enclosing-if form
//	if X == nil { return }; ...; X.Instant(...) // early-return form
//
// The telemetry package itself is exempt: it owns the nil-safety.
//
// The rule is also interprocedural: a helper that emits on a tracer
// parameter without guarding it exports the guard obligation to its
// callers, so passing a possibly-nil tracer to such a helper unguarded is
// reported at the call site with the chain down to the emission.
type tracenilRule struct{}

func (tracenilRule) Name() string { return "tracenil" }
func (tracenilRule) Doc() string {
	return "Tracer emission calls (Complete/Instant/Counter) must sit behind a nil-tracer guard, including through helpers emitting on a tracer parameter"
}

// tracerEmitMethods are the per-event emission entry points; metadata and
// export methods (NameThread, WriteTo, ...) run once per run and are
// exempt.
var tracerEmitMethods = map[string]bool{
	"Complete": true,
	"Instant":  true,
	"Counter":  true,
}

func (tracenilRule) Check(p *Pass) {
	if p.Pkg.ImportPath == telemetryPath {
		return
	}
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				checkParamEmitCall(p, call, stack, "tracenil", "tracer")
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || funcPkgPath(fn) != telemetryPath || !tracerEmitMethods[fn.Name()] {
				checkParamEmitCall(p, call, stack, "tracenil", "tracer")
				return true
			}
			if !isTracerMethod(fn) {
				return true // e.g. Registry.Counter, a constructor not an emitter
			}
			recv := types.ExprString(sel.X)
			if guardedNotNil(stack, call, recv) {
				return true
			}
			p.Reportf(call.Pos(), "tracenil",
				"%s.%s() is not behind a nil-tracer guard; wrap it in `if %s != nil { ... }` (or early-return on nil) so disabled telemetry costs one branch",
				recv, fn.Name(), recv)
			return true
		})
	}
}

// checkParamEmitCall is the interprocedural half shared by tracenil and
// obsnil: a call passing a possibly-nil tracer/observer expression into a
// parameter whose summary says it is emitted on unguarded. Known-non-nil
// arguments (calls, composite literals, addresses) are exempt.
func checkParamEmitCall(p *Pass, call *ast.CallExpr, stack []ast.Node, rule, what string) {
	fi := p.Prog.FuncOf(calleeFunc(p.Info, call))
	if fi == nil || len(fi.sum.ParamEmit) == 0 {
		return
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	for ai, arg := range call.Args {
		target := ai
		if sig.Variadic() && target >= sig.Params().Len()-1 {
			target = sig.Params().Len() - 1
		}
		emit := fi.sum.ParamEmit[target]
		if emit == nil || emit.rule != rule {
			continue
		}
		switch ast.Unparen(arg).(type) {
		case *ast.CallExpr, *ast.CompositeLit, *ast.UnaryExpr:
			continue // freshly constructed, cannot be nil
		}
		expr := types.ExprString(ast.Unparen(arg))
		if expr == "nil" || guardedNotNil(stack, call, expr) {
			continue
		}
		p.ReportChain(arg.Pos(), rule,
			"passes possibly-nil "+what+" "+expr+" to "+fi.Name()+", which emits on it without a nil guard (interprocedural); guard the call or the emission",
			p.Prog.chain(emit, factParamEmit))
	}
}

// isTracerMethod reports whether fn is a method whose receiver is
// (*telemetry.)Tracer.
func isTracerMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tracer"
}

// guardedNotNil reports whether the call node is dominated by a nil check
// on the receiver expression recv: either inside an if whose condition
// requires recv != nil, or preceded in an enclosing block by an
// `if recv == nil { return }` statement.
func guardedNotNil(stack []ast.Node, call ast.Node, recv string) bool {
	child := call
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if anc.Body == child && condRequiresNotNil(anc.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			for idx, st := range anc.List {
				if st != child {
					continue
				}
				for _, prev := range anc.List[:idx] {
					if isNilEarlyReturn(prev, recv) {
						return true
					}
				}
				break
			}
		}
		child = stack[i]
	}
	return false
}

// condRequiresNotNil reports whether cond can only be true when
// `recv != nil` holds, looking through && conjunctions.
func condRequiresNotNil(cond ast.Expr, recv string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condRequiresNotNil(e.X, recv) || condRequiresNotNil(e.Y, recv)
		case token.NEQ:
			return isNilComparison(e, recv)
		}
	}
	return false
}

// isNilEarlyReturn matches `if recv == nil { return ... }`.
func isNilEarlyReturn(st ast.Stmt, recv string) bool {
	ifst, ok := st.(*ast.IfStmt)
	if !ok || ifst.Init != nil || len(ifst.Body.List) == 0 {
		return false
	}
	bin, ok := ast.Unparen(ifst.Cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL || !isNilComparison(bin, recv) {
		return false
	}
	_, ok = ifst.Body.List[len(ifst.Body.List)-1].(*ast.ReturnStmt)
	return ok
}

// isNilComparison reports whether bin compares the receiver expression
// against the nil identifier (in either operand order).
func isNilComparison(bin *ast.BinaryExpr, recv string) bool {
	matches := func(x, y ast.Expr) bool {
		id, ok := ast.Unparen(y).(*ast.Ident)
		return ok && id.Name == "nil" && types.ExprString(ast.Unparen(x)) == recv
	}
	return matches(bin.X, bin.Y) || matches(bin.Y, bin.X)
}

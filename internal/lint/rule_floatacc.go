package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floataccRule flags floating-point accumulation whose reduction order is
// not deterministic: float addition is not associative, so the same values
// reduced in a different order give a different bit pattern — the exact
// class of bug that breaks byte-identical artifacts when an engine goes
// parallel. Three order-unstable contexts are checked:
//
//   - map iteration:    sum += v inside `for ... range m`
//   - goroutine bodies: accumulating into state declared outside a
//     go-launched function literal (scheduling order, even under a mutex)
//   - channel merges:   accumulating received results in a receive loop
//
// The rule is interprocedural: calling a function whose summary says it
// accumulates float state it does not own, from any of those contexts, is
// the same defect one call boundary away and is reported with the chain.
// Deterministic-order reductions (plain slice loops) and integer
// accumulation (associative) stay clean; a deliberately order-independent
// parallel reduction (disjoint partitions, exact merges) carries a
// justified //hpnlint:allow floatacc.
type floataccRule struct{}

func (floataccRule) Name() string { return "floatacc" }
func (floataccRule) Doc() string {
	return "no float accumulation whose reduction order depends on map iteration, goroutine scheduling, or channel-receive order"
}

func (floataccRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				p.checkFloatAccum(n, stack)
			case *ast.CallExpr:
				p.checkFloatAccumCall(n, stack)
			}
			return true
		})
	}
}

// floatAccumOps are the compound assignments whose result depends on
// operand order (float + and * are not associative; - and / inherit it).
func isFloatAccumOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// checkFloatAccum flags a compound float assignment inside an
// order-unstable context when the accumulator outlives that context.
func (p *Pass) checkFloatAccum(as *ast.AssignStmt, stack []ast.Node) {
	if len(as.Lhs) != 1 || !isFloatAccumOp(as.Tok) || !isFloat(p.Info.TypeOf(as.Lhs[0])) {
		return
	}
	lhs := ast.Unparen(as.Lhs[0])
	if ctx, ok := p.orderUnstableContext(stack, lhs); ok {
		p.Reportf(as.Pos(), "floatacc",
			"float accumulation into %s reduces in %s; accumulate per-partition and merge in a fixed order, or iterate a sorted snapshot",
			types.ExprString(lhs), ctx)
	}
}

// checkFloatAccumCall flags calls, from an order-unstable context, to
// functions whose summary says they accumulate float state they do not
// own.
func (p *Pass) checkFloatAccumCall(call *ast.CallExpr, stack []ast.Node) {
	fi := p.Prog.FuncOf(calleeFunc(p.Info, call))
	if fi == nil || fi.sum.FloatAcc == nil {
		return
	}
	if ctx, ok := p.orderUnstableContext(stack, nil); ok {
		p.ReportChain(call.Pos(), "floatacc",
			"call to "+fi.Name()+" accumulates float state in "+ctx+" (interprocedural); the reduction order is nondeterministic — partition the state or fix the call order",
			p.Prog.chain(fi.sum.FloatAcc, factFloatAcc))
	}
}

// orderUnstableContext scans the ancestor stack for the innermost context
// whose execution order differs run to run: a map range, a go-launched
// function literal, or a channel-receive loop. When acc is non-nil, the
// context only counts if the accumulator is declared outside it (an
// accumulator scoped inside the context is reduced deterministically
// within one iteration).
func (p *Pass) orderUnstableContext(stack []ast.Node, acc ast.Expr) (string, bool) {
	outlives := func(node ast.Node) bool {
		if acc == nil {
			return true
		}
		id, ok := acc.(*ast.Ident)
		if !ok {
			return true // selector/index/deref: survives by construction
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		return obj.Pos() < node.Pos() || obj.Pos() > node.End()
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.RangeStmt:
			t := p.Info.TypeOf(anc.X)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if outlives(anc) {
					return "map iteration order", true
				}
			case *types.Chan:
				if outlives(anc) {
					return "channel-receive order", true
				}
			}
		case *ast.ForStmt:
			if containsChanReceive(p.Info, anc.Body) && outlives(anc) {
				return "channel-receive order", true
			}
		case *ast.FuncLit:
			// A go-launched literal sits under GoStmt → CallExpr → FuncLit.
			if i >= 2 {
				call, isCall := stack[i-1].(*ast.CallExpr)
				if isCall && call.Fun == anc {
					if gs, isGo := stack[i-2].(*ast.GoStmt); isGo && gs.Call == call && outlives(anc) {
						return "goroutine scheduling order", true
					}
				}
			}
		}
	}
	return "", false
}

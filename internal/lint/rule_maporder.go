package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporderRule flags `range` over a map whose body lets Go's randomized
// iteration order reach ordered output: scheduling simulator events,
// appending to a slice that outlives the loop, or emitting telemetry. Any
// of those turns map order into event order, artifact order, or trace
// order — the exact class of bug that makes same-seed runs diverge.
//
// The canonical fix — collect keys, sort, iterate the sorted slice — is
// recognized and not flagged: an append whose target is later passed to a
// sort.* / slices.Sort* call in the same function is considered ordered.
type maporderRule struct{}

func (maporderRule) Name() string { return "maporder" }
func (maporderRule) Doc() string {
	return "no map iteration that schedules events, builds surviving slices (unsorted), or emits telemetry"
}

// simSchedulingFuncs are the engine entry points that enqueue events; map
// order reaching the event heap reorders same-timestamp dispatches.
var simSchedulingFuncs = map[string]bool{
	"Schedule":       true,
	"ScheduleAt":     true,
	"ScheduleDaemon": true,
	"Cancel":         true,
}

func (maporderRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if reason := p.maporderTrigger(rs, enclosingFuncBody(stack)); reason != "" {
				p.Reportf(rs.Pos(), "maporder",
					"iteration over map %s leaks Go's randomized order into %s; iterate a sorted key slice or a parallel ordered slice",
					types.ExprString(rs.X), reason)
			}
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost enclosing function,
// used to look for a sort call after the range statement.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// maporderTrigger scans the range body for the first order-leaking
// operation and describes it, or returns "" when the body is
// order-independent.
func (p *Pass) maporderTrigger(rs *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				target := call.Args[0]
				if p.escapesRange(target, rs) && !p.sortedAfter(target, rs, fnBody) {
					reason = "the surviving slice " + types.ExprString(target)
				}
				return true
			}
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case telemetryPath:
			if p.Pkg.ImportPath != telemetryPath {
				reason = "telemetry emission order (" + fn.Name() + ")"
			}
		case simPath:
			if simSchedulingFuncs[fn.Name()] {
				reason = "simulator event order (sim." + fn.Name() + ")"
			}
		}
		return true
	})
	return reason
}

// escapesRange reports whether the append target is declared outside the
// range statement, i.e. whether the built slice outlives the loop.
func (p *Pass) escapesRange(target ast.Expr, rs *ast.RangeStmt) bool {
	switch e := ast.Unparen(target).(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return true // unresolved: assume the worst
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	default:
		// Selector, index, call results, ...: writes through state the loop
		// does not own.
		return true
	}
}

// sortedAfter reports whether target is passed to a sort call after the
// range statement within the same function — the collect-then-sort idiom.
func (p *Pass) sortedAfter(target ast.Expr, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok || fnBody == nil {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(p.Info, call)
		switch funcPkgPath(fn) {
		case "sort":
		case "slices":
			if !strings.HasPrefix(fn.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.ObjectOf(aid) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

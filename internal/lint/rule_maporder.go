package lint

import (
	"go/ast"
	"go/types"
)

// maporderRule flags code paths that let Go's randomized map iteration
// order reach ordered output. Intraprocedurally that is a `range` over a
// map whose body schedules simulator events, appends to a slice that
// outlives the loop, or emits telemetry. Interprocedurally — using the
// module-wide summaries — it also flags:
//
//   - a map-range body calling a function that (transitively) has ordered
//     side effects: schedules, emits, feeds a fingerprint hasher, or
//     appends to surviving state. The call order is map order, so the
//     callee's ordered output inherits it.
//   - ranging over data a callee built in map-iteration order (a
//     "returns map-ordered" summary), when the loop body leaks order.
//   - passing map-iteration-ordered data into a parameter that reaches an
//     ordered artifact writer or fingerprint hasher.
//
// The canonical fix — collect keys, sort, iterate the sorted slice — is
// recognized and not flagged: an append whose target is later passed to a
// sort.* / slices.Sort* call in the same function is considered ordered.
type maporderRule struct{}

func (maporderRule) Name() string { return "maporder" }
func (maporderRule) Doc() string {
	return "no map iteration order reaching ordered output — events, telemetry, surviving slices, hashers — directly or through calls"
}

// simSchedulingFuncs are the engine entry points that enqueue events; map
// order reaching the event heap reorders same-timestamp dispatches.
var simSchedulingFuncs = map[string]bool{
	"Schedule":       true,
	"ScheduleAt":     true,
	"ScheduleDaemon": true,
	"Cancel":         true,
}

func (maporderRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					if reason, chain := p.maporderTrigger(n, enclosingFuncBody(stack)); reason != "" {
						p.ReportChain(n.Pos(), "maporder",
							"iteration over map "+types.ExprString(n.X)+" leaks Go's randomized order into "+reason+"; iterate a sorted key slice or a parallel ordered slice",
							chain)
					}
					return true
				}
				// Ranging over a value a callee built in map order: same
				// defect one call boundary away.
				if src := p.mapOrderedSource(n.X, stack); src != nil {
					if reason, chain := p.maporderTrigger(n, enclosingFuncBody(stack)); reason != "" {
						full := append(p.Prog.chain(src, factRMO), chain...)
						p.ReportChain(n.Pos(), "maporder",
							"iteration over "+types.ExprString(n.X)+" follows map-iteration order from a callee (interprocedural) and leaks it into "+reason+"; sort before iterating",
							full)
					}
				}
			case *ast.CallExpr:
				p.checkMapOrderedArgs(n, stack)
			}
			return true
		})
	}
}

// checkMapOrderedArgs flags map-iteration-ordered values passed into
// parameters whose summary says they reach an ordered sink.
func (p *Pass) checkMapOrderedArgs(call *ast.CallExpr, stack []ast.Node) {
	fi := p.Prog.FuncOf(calleeFunc(p.Info, call))
	if fi == nil || len(fi.sum.ParamSink) == 0 {
		return
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	for ai, arg := range call.Args {
		target := ai
		if sig.Variadic() && target >= sig.Params().Len()-1 {
			target = sig.Params().Len() - 1
		}
		sink := fi.sum.ParamSink[target]
		if sink == nil {
			continue
		}
		src := p.mapOrderedSource(arg, stack)
		if src == nil {
			continue
		}
		chain := append(p.Prog.chain(src, factRMO), p.Prog.chain(sink, factParamSink)...)
		p.ReportChain(arg.Pos(), "maporder",
			"map-iteration-ordered value "+types.ExprString(arg)+" flows into parameter "+paramName(fi, target)+" of "+fi.Name()+", which reaches an ordered sink (interprocedural); sort it first",
			chain)
	}
}

// mapOrderedSource resolves whether an expression carries map-iteration
// order: a local the enclosing function built (or received) in map order,
// or a direct call to a returns-map-ordered function.
func (p *Pass) mapOrderedSource(e ast.Expr, stack []ast.Node) *prov {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fi := p.enclosingFuncInfo(stack)
		if fi == nil {
			return nil
		}
		return fi.moLocals[p.Info.ObjectOf(e)]
	case *ast.CallExpr:
		callee := p.Prog.FuncOf(calleeFunc(p.Info, e))
		if callee != nil && callee.sum.RMO != nil {
			return &prov{pos: e.Pos(), desc: "call to " + callee.Name() + ", which returns map-iteration-ordered data", next: callee}
		}
	}
	return nil
}

// enclosingFuncInfo resolves the FuncInfo of the declaration the walk is
// currently inside, via the ancestor stack.
func (p *Pass) enclosingFuncInfo(stack []ast.Node) *FuncInfo {
	for i := 0; i < len(stack); i++ {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				return p.Prog.FuncOf(obj)
			}
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost enclosing function,
// used to look for a sort call after the range statement.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// maporderTrigger scans the range body for the first order-leaking
// operation and describes it (with an interprocedural chain when the leak
// goes through a callee), or returns "" when the body is
// order-independent.
func (p *Pass) maporderTrigger(rs *ast.RangeStmt, fnBody *ast.BlockStmt) (string, []ChainFrame) {
	var reason string
	var chain []ChainFrame
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				target := call.Args[0]
				if p.escapesRange(target, rs) && !p.sortedAfter(target, rs, fnBody) {
					reason = "the surviving slice " + types.ExprString(target)
				}
				return true
			}
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case telemetryPath:
			if p.Pkg.ImportPath != telemetryPath {
				reason = "telemetry emission order (" + fn.Name() + ")"
				return true
			}
		case simPath:
			if simSchedulingFuncs[fn.Name()] {
				reason = "simulator event order (sim." + fn.Name() + ")"
				return true
			}
		}
		// Interprocedural: the body calls a function that (transitively)
		// has ordered side effects — the call order is map order.
		if fi := p.Prog.FuncOf(fn); fi != nil && fi.sum.Ordered != nil {
			reason = "the ordered side effects of " + fi.Name() + " (interprocedural)"
			chain = p.Prog.chain(fi.sum.Ordered, factOrdered)
		}
		return true
	})
	return reason, chain
}

// escapesRange reports whether the append target is declared outside the
// range statement, i.e. whether the built slice outlives the loop.
func (p *Pass) escapesRange(target ast.Expr, rs *ast.RangeStmt) bool {
	switch e := ast.Unparen(target).(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return true // unresolved: assume the worst
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	default:
		// Selector, index, call results, ...: writes through state the loop
		// does not own.
		return true
	}
}

// sortedAfter reports whether target is passed to a sort call after the
// range statement within the same function — the collect-then-sort idiom.
func (p *Pass) sortedAfter(target ast.Expr, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok || fnBody == nil {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || !isSortCall(fn) {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.ObjectOf(aid) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

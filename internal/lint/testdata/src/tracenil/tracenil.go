// Package tracenil is an hpnlint fixture: the tracenil rule must flag
// Tracer emission calls without a nil guard, accept both guard shapes
// (enclosing if and early return), and ignore non-emission methods and
// Registry.Counter.
package tracenil

import "hpn/internal/telemetry"

type layer struct {
	tr  *telemetry.Tracer
	reg *telemetry.Registry
}

func (l *layer) unguarded(ts int64) {
	l.tr.Instant(ts, "cat", "evt", 1) // want:tracenil "nil-tracer guard"
}

func (l *layer) unguardedCounter(ts int64) {
	l.tr.Counter(ts, "track", 1) // want:tracenil "nil-tracer guard"
}

func (l *layer) enclosingIf(ts int64) {
	if l.tr != nil {
		l.tr.Complete(ts, 10, "cat", "span", 1)
	}
}

func (l *layer) enclosingIfConjunction(ts int64, on bool) {
	if on && l.tr != nil {
		l.tr.Instant(ts, "cat", "evt", 1)
	}
}

func (l *layer) earlyReturn(ts int64) {
	if l.tr == nil {
		return
	}
	l.tr.Counter(ts, "track", 1)
}

func (l *layer) earlyReturnOuterBlock(ts int64) {
	if l.tr == nil {
		return
	}
	for i := 0; i < 3; i++ {
		l.tr.Counter(ts+int64(i), "track", 1)
	}
}

// wrongGuard guards a different expression: still a finding.
func (l *layer) wrongGuard(other *telemetry.Tracer, ts int64) {
	if other != nil {
		l.tr.Instant(ts, "cat", "evt", 1) // want:tracenil "nil-tracer guard"
	}
}

// registryCounterIsClean: Registry.Counter is a constructor, not an
// emission, and the Registry is nil-safe by contract.
func (l *layer) registryCounterIsClean() *telemetry.Counter {
	return l.reg.Counter("name", "help")
}

// metadataIsClean: NameThread is setup-time metadata, not hot-path
// emission.
func (l *layer) metadataIsClean() {
	l.tr.NameThread(1, "engine")
}

func (l *layer) allowed(ts int64) {
	l.tr.Instant(ts, "cat", "evt", 1) //hpnlint:allow tracenil -- fixture: caller guarantees a live tracer
}

// flushLoopUnguarded is the in-band flush shape gone wrong: one instant per
// drained flow generation, emitted inside the drain loop with no guard. A
// collector wired without a tracer must not panic on flush.
func (l *layer) flushLoopUnguarded(ts int64, flows []int64) {
	for i := range flows {
		l.tr.Instant(ts+int64(i), "inband", "path_flush", 6) // want:tracenil "nil-tracer guard"
	}
}

// flushLoopGuarded is the correct in-band flush: the guard hoisted above
// the drain loop covers every emission in the body.
func (l *layer) flushLoopGuarded(ts int64, flows []int64) {
	if l.tr == nil {
		return
	}
	for i := range flows {
		l.tr.Instant(ts+int64(i), "inband", "path_flush", 6)
	}
}

// flushPerRecordGuarded guards at the emission site itself — the shape the
// collector uses when only some records warrant a trace event.
func (l *layer) flushPerRecordGuarded(ts int64, flows []int64) {
	for i := range flows {
		if l.tr != nil {
			l.tr.Counter(ts+int64(i), "inband_records", float64(i))
		}
	}
}

// Package profnil is an hpnlint fixture: the profnil rule must flag
// flight-recorder emission calls (Note/Mark) without a nil guard, accept
// both guard shapes (enclosing if and early return), follow the
// obligation through helpers that emit on a flight parameter, and leave
// the nil-safe Phase/Profiler methods alone.
package profnil

import "hpn/internal/prof"

type engine struct {
	fl *prof.Flight
	p  *prof.Profiler
}

func (e *engine) unguardedNote(now int64) {
	e.fl.Note(now, "flows_done", "", 7, 0) // want:profnil "nil-recorder guard"
}

func (e *engine) unguardedMark(now int64) {
	e.fl.Mark(now, "stall:seg01") // want:profnil "nil-recorder guard"
}

func (e *engine) enclosingIf(now int64) {
	if e.fl != nil {
		e.fl.Note(now, "link_down", "t0->a1", 3, 0)
	}
}

func (e *engine) enclosingIfConjunction(now int64, on bool) {
	if on && e.fl != nil {
		e.fl.Mark(now, "incident")
	}
}

func (e *engine) earlyReturn(now int64) {
	if e.fl == nil {
		return
	}
	e.fl.Note(now, "reroute", "", 5, 1)
}

// earlyReturnOuterBlock: the guard hoisted above the loop covers every
// emission in the body.
func (e *engine) earlyReturnOuterBlock(now int64, ids []int64) {
	if e.fl == nil {
		return
	}
	for _, id := range ids {
		e.fl.Note(now, "flows_done", "", id, 0)
	}
}

// wrongGuard guards a different expression: still a finding.
func (e *engine) wrongGuard(other *prof.Flight, now int64) {
	if other != nil {
		e.fl.Note(now, "flows_done", "", 1, 0) // want:profnil "nil-recorder guard"
	}
}

// phaseCallsAreClean: Phase and Profiler methods are nil-safe AND take no
// call-site-constructed payloads, so unguarded use is the intended shape —
// not the rule's business.
func (e *engine) phaseCallsAreClean() {
	ph := e.p.Phase("fixture/phase", "a no-op phase")
	tk := ph.Begin()
	ph.Add(3)
	ph.End(tk)
}

// noteVia emits on a flight parameter unguarded: the emission itself is a
// finding, and the guard obligation escapes to callers.
func noteVia(fl *prof.Flight, now int64) {
	fl.Note(now, "flows_done", "", 1, 0) // want:profnil "nil-recorder guard"
}

func (e *engine) callsHelperUnguarded(now int64) {
	noteVia(e.fl, now) // want:profnil "possibly-nil flight recorder"
}

func (e *engine) callsHelperGuarded(now int64) {
	if e.fl != nil {
		noteVia(e.fl, now)
	}
}

// freshRecorderIsClean: a freshly constructed recorder cannot be nil, so
// passing it to an emitting helper needs no guard.
func freshRecorderIsClean(now int64) {
	noteVia(prof.NewFlight(8), now)
}

func (e *engine) allowed(now int64) {
	e.fl.Mark(now, "drill") //hpnlint:allow profnil -- fixture: caller guarantees a live recorder
}

// Package obsnil is an hpnlint fixture: the obsnil rule must flag
// netsim.Observer callback calls without a nil guard, accept both guard
// shapes (enclosing if and early return), and ignore calls on concrete
// implementations and on unrelated interfaces with identical method names.
package obsnil

import (
	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

type layer struct {
	obs netsim.Observer
}

func (l *layer) unguardedLink(now sim.Time, lk topo.LinkID) {
	l.obs.LinkEvent(now, lk, false) // want:obsnil "nil-observer guard"
}

func (l *layer) unguardedDone(now sim.Time, f *netsim.Flow) {
	l.obs.FlowDone(now, f) // want:obsnil "nil-observer guard"
}

func (l *layer) enclosingIf(now sim.Time, n topo.NodeID) {
	if l.obs != nil {
		l.obs.NodeEvent(now, n, true)
	}
}

func (l *layer) enclosingIfConjunction(now sim.Time, moved int, on bool) {
	if on && l.obs != nil {
		l.obs.RerouteDone(now, moved, 0)
	}
}

func (l *layer) earlyReturn(now sim.Time, f *netsim.Flow, hops []route.HopDecision) {
	if l.obs == nil {
		return
	}
	l.obs.FlowRouted(now, f, hops)
}

// earlyReturnOuterBlock: the guard hoisted above the loop covers every
// emission in the body.
func (l *layer) earlyReturnOuterBlock(now sim.Time, links []topo.LinkID) {
	if l.obs == nil {
		return
	}
	for _, lk := range links {
		l.obs.LinkEvent(now, lk, true)
	}
}

// wrongGuard guards a different expression: still a finding.
func (l *layer) wrongGuard(other netsim.Observer, now sim.Time, lk topo.LinkID) {
	if other != nil {
		l.obs.LinkEvent(now, lk, false) // want:obsnil "nil-observer guard"
	}
}

// concreteImpl is a concrete Observer; calling its methods directly (the
// way health.Monitor's own tests drive detectors) is not dynamic dispatch
// through a possibly-nil interface and stays clean.
type concreteImpl struct{}

func (concreteImpl) LinkEvent(now sim.Time, l topo.LinkID, up bool)                 {}
func (concreteImpl) NodeEvent(now sim.Time, n topo.NodeID, up bool)                 {}
func (concreteImpl) RerouteDone(now sim.Time, repathed, stillStalled int)           {}
func (concreteImpl) FlowRouted(now sim.Time, f *netsim.Flow, h []route.HopDecision) {}
func (concreteImpl) FlowDone(now sim.Time, f *netsim.Flow)                          {}

func callConcrete(now sim.Time, lk topo.LinkID) {
	var c concreteImpl
	c.LinkEvent(now, lk, true)
}

// otherIface shares a method name with netsim.Observer but is a different
// interface: not the rule's business.
type otherIface interface {
	LinkEvent(now sim.Time, l topo.LinkID, up bool)
}

func callOther(o otherIface, now sim.Time, lk topo.LinkID) {
	o.LinkEvent(now, lk, false)
}

func allowed(l *layer, now sim.Time, f *netsim.Flow) {
	l.obs.FlowDone(now, f) //hpnlint:allow obsnil -- fixture: caller guarantees a live observer
}

// Package floatacc exercises the floatacc rule: float accumulation whose
// reduction order depends on map iteration, goroutine scheduling, or
// channel-receive order. Float addition is not associative, so each of
// these drifts bitwise between same-seed runs.
package floatacc

import (
	"sort"
	"sync"
)

type stats struct{ sum float64 }

// add accumulates float state it does not own; callers in order-unstable
// contexts inherit the hazard (see mapAddCalls).
func (s *stats) add(v float64) {
	s.sum += v
}

// Map-order reduction: the classic nondeterministic float sum.
func mapSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want:floatacc "map iteration order"
	}
	return total
}

// Goroutine-order reduction: the mutex serializes, it does not order.
func goroutineSum(vals []float64) float64 {
	var total float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += v // want:floatacc "goroutine scheduling order"
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Channel-receive-order reduction.
func chanSum(ch chan float64, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		total += <-ch // want:floatacc "channel-receive order"
	}
	return total
}

// Interprocedural: the accumulation hides one call boundary away.
func mapAddCalls(s *stats, m map[string]float64) {
	for _, v := range m {
		s.add(v) // want:floatacc "accumulates float state"
	}
}

// Integer accumulation is associative: clean.
func mapCount(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Slice loops reduce in a deterministic order: clean.
func sliceSum(vals []float64) float64 {
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}

// Sorted-snapshot reduction is the canonical fix: clean.
func sortedMapSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Per-partition accumulators merged by index are the blessed parallel
// shape (ParallelFill): clean.
func partitioned(vals []float64) float64 {
	parts := make([]float64, 2)
	var wg sync.WaitGroup
	half := len(vals) / 2
	for p := 0; p < 2; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local float64
			lo, hi := p*half, (p+1)*half
			for _, v := range vals[lo:hi] {
				local += v
			}
			parts[p] = local
		}()
	}
	wg.Wait()
	return parts[0] + parts[1]
}

// Package goorder exercises the goorder rule: goroutine results must be
// merged index-addressed or sorted, never by scheduling order.
package goorder

import (
	"sort"
	"sync"
)

// Shared-slice append from a go-launched literal: element order is
// goroutine scheduling order even under the mutex.
func sharedAppend(items []int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() { // want:goorder "shared slice out"
			defer wg.Done()
			mu.Lock()
			out = append(out, it*2)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// Channel-receive merge in a counted loop: receive order is
// send-completion order.
func receiveMerge(ch chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ { // want:goorder "channel-receive order"
		v := <-ch
		out = append(out, v)
	}
	return out
}

// Range-over-channel merge: same defect, range form.
func rangeMerge(ch chan string) []string {
	var got []string
	for v := range ch { // want:goorder "merged into got"
		got = append(got, v)
	}
	return got
}

// Index-addressed slots are the blessed ParallelFill discipline: clean.
func indexed(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		i, it := i, it
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2
		}()
	}
	wg.Wait()
	return out
}

// Collect-then-sort launders the receive order: clean.
func sortedMerge(ch chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	sort.Ints(out)
	return out
}

// A goroutine appending to its own local slice owns the order: clean.
func localAppend(ch chan []int) {
	go func() {
		var local []int
		local = append(local, 1, 2, 3)
		ch <- local
	}()
}

// post models a cross-shard message handed over at a window barrier.
type post struct {
	from int
	at   int64
}

// Draining a window barrier's mailbox by channel-receive order: whichever
// shard worker closes its window first lands first, so the merged delivery
// order is scheduling order, not the (sender, seq) contract.
func mailboxReceiveMerge(done chan post, shards int) []post {
	var mailbox []post
	for i := 0; i < shards; i++ { // want:goorder "channel-receive order"
		mailbox = append(mailbox, <-done)
	}
	return mailbox
}

// Shard workers posting straight into a shared mailbox: even under the
// lock, the mailbox order is whichever window finished first.
func mailboxSharedAppend(posts [][]post, shards int) []post {
	var mailbox []post
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() { // want:goorder "shared slice mailbox"
			defer wg.Done()
			mu.Lock()
			mailbox = append(mailbox, posts[s]...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return mailbox
}

// The sharded exchange discipline: each worker fills a local outbox, parks
// it in its own index-addressed slot, and the barrier drains the slots in
// sender order — the merge order is the domain order, independent of
// goroutine scheduling. Clean.
func mailboxExchange(posts [][]post, shards int) []post {
	outbox := make([][]post, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []post
			local = append(local, posts[s]...)
			outbox[s] = local
		}()
	}
	wg.Wait()
	var merged []post
	for from := 0; from < shards; from++ {
		merged = append(merged, outbox[from]...)
	}
	return merged
}

// Package floateq is an hpnlint fixture: the floateq rule must flag exact
// ==/!= between floating-point operands and leave integer comparisons,
// ordered float comparisons and epsilon patterns alone.
package floateq

type bps float64

func equal(a, b float64) bool {
	return a == b // want:floateq "exact floating-point =="
}

func notEqual(a, b float32) bool {
	return a != b // want:floateq "exact floating-point !="
}

func named(a, b bps) bool {
	return a == b // want:floateq "exact floating-point =="
}

func constOperand(u float64) bool {
	return u == 0 // want:floateq "exact floating-point =="
}

// epsilonIsClean: the sanctioned comparison shape.
func epsilonIsClean(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}

// orderedIsClean: <, <=, >, >= are fine — only equality is brittle.
func orderedIsClean(a, b float64) bool {
	return a <= b
}

// intsAreClean: integer equality is exact by nature.
func intsAreClean(a, b int) bool {
	return a == b
}

func allowed(u float64) bool {
	return u == 0 //hpnlint:allow floateq -- fixture: exact zero sentinel
}

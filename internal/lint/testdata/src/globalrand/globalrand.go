// Package globalrand is an hpnlint fixture: the globalrand rule must flag
// math/rand package-level functions (global-source draws and constructors
// alike) while leaving methods on rand.Rand values and the repo's own
// seeded RNG alone.
package globalrand

import (
	"math/rand"

	"hpn/internal/sim"
)

func roll() int {
	return rand.Intn(6) // want:globalrand "rand.Intn"
}

func uniform() float64 {
	return rand.Float64() // want:globalrand "rand.Float64"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want:globalrand "rand.Shuffle"
}

func seeded() *rand.Rand {
	src := rand.NewSource(1) // want:globalrand "rand.NewSource"
	_ = src
	return nil
}

// methodsOK is clean: drawing from an explicit rand.Rand value is the
// caller's seeding problem, not a global-state draw.
func methodsOK(r *rand.Rand) int {
	return r.Intn(6)
}

// simRNG is clean: this is the sanctioned stream.
func simRNG(seed uint64) float64 {
	return sim.NewRNG(seed).Float64()
}

func allowed() int {
	return rand.Int() //hpnlint:allow globalrand -- fixture: directive honored
}

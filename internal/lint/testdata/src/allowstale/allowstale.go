// Package allowstale exercises the allowstale rule: every
// //hpnlint:allow directive must still suppress a finding. The want
// comments ride inside the directives' justification text, which the
// directive parser strips at the first "--".
package allowstale

import "time"

// A load-bearing allow: it suppresses a real wallclock finding, so it is
// used and NOT stale.
var started = time.Now() //hpnlint:allow wallclock -- fixture timing, deliberately allowed

// A stale allow: nothing on this line ever triggers maporder.
var one = 1 //hpnlint:allow maporder -- stale by construction // want:allowstale "no longer suppresses"

// A stale standalone-form allow above an innocuous line.
//
//hpnlint:allow globalrand -- stale standalone // want:allowstale "no longer suppresses"
var two = 2

// An allow naming a rule that does not exist is always stale.
var three = 3 //hpnlint:allow nosuchrule -- typo never matches // want:allowstale "unknown rule"

// Package wallclock is an hpnlint fixture: the wallclock rule must flag
// wall-clock reads and timer constructors, honor allow directives, and
// leave deterministic time.Duration arithmetic alone.
package wallclock

import "time"

func elapsed() float64 {
	start := time.Now() // want:wallclock "time.Now"
	work()
	return time.Since(start).Seconds() // want:wallclock "time.Since"
}

func timers() {
	time.Sleep(time.Millisecond)    // want:wallclock "time.Sleep"
	_ = time.After(time.Second)     // want:wallclock "time.After"
	_ = time.NewTicker(time.Second) // want:wallclock "time.NewTicker"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want:wallclock "time.Until"
}

func allowedTrailing() time.Time {
	return time.Now() //hpnlint:allow wallclock -- fixture: sanctioned CLI timing
}

func allowedStandalone() time.Time {
	//hpnlint:allow wallclock -- fixture: directive on the preceding line
	return time.Now()
}

// virtual is clean: durations and constants are deterministic.
func virtual() time.Duration {
	return 3 * time.Second
}

func work() {}

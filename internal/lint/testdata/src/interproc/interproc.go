// Package interproc exercises the summary-based interprocedural analysis:
// map-iteration order crossing a call boundary before it leaks. The old
// intraprocedural maporder rule inspected one function at a time, so
// keysOf below — a counter-indexed fill with no append at all — was
// invisible to it, and so was every caller that leaked its result.
package interproc

import "sort"

// keysOf builds the key list by counter-indexed fill. No append, no sink
// in sight: intraprocedurally this function is clean. The summary records
// "returns map-iteration-ordered data".
func keysOf(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k
		i++
	}
	return out
}

// forward launders nothing: returning a map-ordered value verbatim
// forwards the RMO summary.
func forward(m map[string]int) []string {
	return keysOf(m)
}

type sink struct{ rows []string }

// emit appends its argument to surviving state, so its parameter reaches
// an ordered sink.
func (s *sink) emit(rows []string) {
	s.rows = append(s.rows, rows...)
}

// Ranging over a callee's map-ordered result and leaking the order into a
// surviving slice: one call boundary between the map range and the leak.
func leak(s *sink, m map[string]int) {
	for _, k := range keysOf(m) { // want:maporder "follows map-iteration order from a callee"
		s.rows = append(s.rows, k)
	}
}

// Same leak through two boundaries: forward() forwards keysOf's summary.
func leakForwarded(s *sink, m map[string]int) {
	for _, k := range forward(m) { // want:maporder "follows map-iteration order from a callee"
		s.rows = append(s.rows, k)
	}
}

// Passing map-ordered data into a parameter that reaches an ordered sink.
func leakParam(s *sink, m map[string]int) {
	s.emit(keysOf(m)) // want:maporder "reaches an ordered sink"
}

// Sorting the callee's result before use launders the order: clean.
func sortedUse(s *sink, m map[string]int) {
	ks := keysOf(m)
	sort.Strings(ks)
	s.emit(ks)
}

// Order-independent consumption of a map-ordered result: clean.
func countUse(m map[string]int) int {
	n := 0
	for range keysOf(m) {
		n++
	}
	return n
}

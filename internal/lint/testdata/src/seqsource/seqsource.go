// Package seqsource exercises the seqsource rule: artifact records must be
// stamped from engine clock/sequence cursors, never from function-local
// counters. Memo replay re-stamps records from engine deltas, so a local
// counter restarts at its literal while the engine cursor carries the
// replayed history.
package seqsource

type record struct {
	Seq  uint64
	Time int64
	Note string
}

// engine stands in for sim.Engine's cursor surface.
type engine struct {
	seq uint64
	now int64
}

func (e *engine) Seq() uint64 { return e.seq }
func (e *engine) Now() int64  { return e.now }

// Stamping from a local counter in a composite literal: the counter
// restarts from zero on every call; the engine cursor does not.
func buildLocal(n int) []record {
	var out []record
	var seq uint64
	for i := 0; i < n; i++ {
		out = append(out, record{
			Seq:  seq, // want:seqsource "local counter seq"
			Note: "flow",
		})
		seq++
	}
	return out
}

// Stamping from the loop induction variable through a conversion and an
// offset is still counter-derived.
func stampAssign(n int) []record {
	out := make([]record, n)
	for i := 0; i < n; i++ {
		out[i].Time = int64(i)*10 + 5 // want:seqsource "local counter i"
		out[i].Note = "iter"
	}
	return out
}

// Stamping from the engine cursors is the contract: clean.
func buildEngine(e *engine, n int) []record {
	var out []record
	for i := 0; i < n; i++ {
		out = append(out, record{Seq: e.Seq(), Time: e.Now()})
	}
	return out
}

// Counters landing in non-stamp fields are fine: clean.
func buildNotes(n int) []record {
	var out []record
	for i := 0; i < n; i++ {
		out = append(out, record{Note: "n", Seq: 0})
	}
	return out
}

// A cursor threaded in as a parameter is not a local counter: clean.
func buildFromCursor(seq uint64, n int) []record {
	var out []record
	for i := 0; i < n; i++ {
		out = append(out, record{Seq: seq})
		seq++
	}
	return out
}

// Stamping window-barrier deliveries from a window-local counter: after a
// memo fast-forward the engine cursor carries the replayed history while
// the local counter restarts at zero, so merged mailboxes diverge.
func stampWindow(e *engine, n int) []record {
	var out []record
	var windowSeq uint64
	for i := 0; i < n; i++ {
		out = append(out, record{
			Seq:  windowSeq, // want:seqsource "local counter windowSeq"
			Time: e.Now(),
		})
		windowSeq++
	}
	return out
}

// Window barriers stamp deliveries from the receiving engine's cursors;
// the cursor survives fast-forward, so the stamps do too. Clean.
func stampBarrier(e *engine, n int) []record {
	out := make([]record, n)
	for i := 0; i < n; i++ {
		out[i].Seq = e.Seq()
		out[i].Time = e.Now()
		out[i].Note = "barrier"
	}
	return out
}

// Package maporder is an hpnlint fixture: the maporder rule must flag map
// iteration whose body schedules simulator events, appends to a slice that
// outlives the loop, or emits telemetry — and must recognize the
// collect-keys-then-sort idiom and order-independent reductions as clean.
package maporder

import (
	"sort"

	"hpn/internal/sim"
	"hpn/internal/telemetry"
)

func escapingAppend(m map[int]string) []string {
	var out []string
	for _, v := range m { // want:maporder "surviving slice out"
		out = append(out, v)
	}
	return out
}

func schedules(eng *sim.Engine, m map[int]sim.Time) {
	for _, at := range m { // want:maporder "sim.ScheduleAt"
		eng.ScheduleAt(at, func() {})
	}
}

func emits(tr *telemetry.Tracer, m map[string]float64) {
	for name, v := range m { // want:maporder "telemetry emission"
		if tr != nil {
			tr.Counter(0, name, v)
		}
	}
}

// sortedAfterIsClean: the canonical fix — collect, sort, iterate sorted.
func sortedAfterIsClean(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// reductionIsClean: order-independent aggregation. Integer addition is
// associative, so map order cannot change the result (a float reduction
// here would be the floatacc rule's business).
func reductionIsClean(m map[int]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// localAppendIsClean: the built slice dies inside the loop body.
func localAppendIsClean(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

func allowed(m map[int]string) []string {
	var out []string
	//hpnlint:allow maporder -- fixture: consumer treats out as an unordered set
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// hopRecord mimics an in-band per-hop telemetry record: the flush path
// that drains per-flow accumulators into a serialized artifact stream.
type hopRecord struct{ flow, seq int }

// flushByMap is the emission bug the in-band collector must never have:
// per-flow hop state drained straight out of a map into the record stream,
// making artifact byte order follow Go map order.
func flushByMap(m map[int][]hopRecord) []hopRecord {
	var stream []hopRecord
	for _, hops := range m { // want:maporder "surviving slice stream"
		stream = append(stream, hops...)
	}
	return stream
}

// flushSortedIsClean is the deterministic flush: collect the flow IDs,
// sort, then emit generations in flow order.
func flushSortedIsClean(m map[int][]hopRecord) []hopRecord {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var stream []hopRecord
	for _, id := range ids {
		stream = append(stream, m[id]...)
	}
	return stream
}

// fingerprintInputs mimics building an iteration-memoization fingerprint
// from per-connection state held in a map: feeding the hash words in map
// order makes the fingerprint differ between identical runs, so every
// memo lookup misses and nothing ever fast-forwards.
func fingerprintInputs(conns map[string]uint64) []uint64 {
	var words []uint64
	for _, w := range conns { // want:maporder "surviving slice words"
		words = append(words, w)
	}
	return words
}

// fingerprintSortedIsClean folds connection state into the hash in sorted
// key order: the same state always yields the same fingerprint.
func fingerprintSortedIsClean(conns map[string]uint64) uint64 {
	names := make([]string, 0, len(conns))
	for n := range conns {
		names = append(names, n)
	}
	sort.Strings(names)
	h := uint64(14695981039346656037)
	for _, n := range names {
		h = (h ^ conns[n]) * 1099511628211
	}
	return h
}

// histogramReductionIsClean is the analyzer side of the in-band pipeline:
// folding records grouped by flow into bucket histograms is an
// order-independent reduction, however the map is walked.
func histogramReductionIsClean(byFlow map[int64][]hopRecord) []int {
	counts := make([]int, 8)
	for _, hops := range byFlow {
		for _, h := range hops {
			counts[h.seq%len(counts)]++
		}
	}
	return counts
}

// Package maporder is an hpnlint fixture: the maporder rule must flag map
// iteration whose body schedules simulator events, appends to a slice that
// outlives the loop, or emits telemetry — and must recognize the
// collect-keys-then-sort idiom and order-independent reductions as clean.
package maporder

import (
	"sort"

	"hpn/internal/sim"
	"hpn/internal/telemetry"
)

func escapingAppend(m map[int]string) []string {
	var out []string
	for _, v := range m { // want:maporder "surviving slice out"
		out = append(out, v)
	}
	return out
}

func schedules(eng *sim.Engine, m map[int]sim.Time) {
	for _, at := range m { // want:maporder "sim.ScheduleAt"
		eng.ScheduleAt(at, func() {})
	}
}

func emits(tr *telemetry.Tracer, m map[string]float64) {
	for name, v := range m { // want:maporder "telemetry emission"
		if tr != nil {
			tr.Counter(0, name, v)
		}
	}
}

// sortedAfterIsClean: the canonical fix — collect, sort, iterate sorted.
func sortedAfterIsClean(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// reductionIsClean: order-independent aggregation.
func reductionIsClean(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// localAppendIsClean: the built slice dies inside the loop body.
func localAppendIsClean(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

func allowed(m map[int]string) []string {
	var out []string
	//hpnlint:allow maporder -- fixture: consumer treats out as an unordered set
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

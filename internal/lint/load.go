package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	// TypeErrors collects soft type-checking errors. A package that builds
	// under `go build` should have none; anything here means the loader
	// lacked information and rule results for the package may be partial.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-internal imports resolve against the module
// directory tree, everything else (the standard library) resolves through
// go/importer's source importer.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod, e.g. "hpn"
	Root   string // absolute module root directory
	Info   *types.Info

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		Module: module,
		Root:   root,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// FindModuleRoot walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll walks the module tree and loads every package outside testdata,
// hidden and vendor directories, in deterministic (lexical) order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Loaded returns every module-internal package the loader has parsed so
// far — the packages requested explicitly plus everything pulled in
// through imports — in deterministic (import path) order. It is the
// natural summary context for Analyze when linting a subset of the
// module: facts still propagate through callees the subset imports.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, l.pkgs[path])
	}
	return out
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the single package in dir, registering it
// under importPath. Results are memoized per import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)

	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name

	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// The returned first-error is redundant with TypeErrors; type-checking
	// is best-effort so partially broken trees still get linted.
	pkg.Types, _ = conf.Check(importPath, l.Fset, pkg.Files, l.Info)
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, "unsafe" maps to types.Unsafe, and everything else falls
// through to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

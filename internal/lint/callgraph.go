package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide function index and static call graph the
// interprocedural rules run on. Every function or method declared in the
// analyzed package set gets a FuncInfo carrying the dataflow facts one AST
// walk can extract (seeds, call edges, parameter flows); summary.go then
// propagates those facts over the call graph to a fixpoint.

// FuncInfo is one declared function or method of the analyzed module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	facts   fnFacts
	sum     Summary
	callers []*FuncInfo // reverse edges, deduped, discovery order

	// moLocals maps local variables holding map-iteration-ordered data to
	// their provenance; filled after the summary fixpoint converges.
	moLocals map[types.Object]*prov
}

// Name renders the function for diagnostics: pkgpath.Func or
// pkgpath.(Recv).Method.
func (fi *FuncInfo) Name() string {
	if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fi.Obj.Name()
		}
	}
	return fi.Obj.Name()
}

// seed is one taint source with its position and a human-readable note.
type seed struct {
	pos  token.Pos
	desc string
}

// callRec is one static call edge out of a function.
type callRec struct {
	pos    token.Pos
	callee *types.Func
}

// paramFlow records "parameter p is passed verbatim as argument arg of a
// call to callee", the edge parameter taint propagates along.
type paramFlow struct {
	param   int
	pos     token.Pos
	callee  *types.Func
	arg     int
	guarded bool // call site sits behind a nil guard on the parameter
}

// objSeed ties a taint seed to the local variable it contaminates.
type objSeed struct {
	obj  types.Object
	pos  token.Pos
	desc string
}

// assignFromCall records `x := g(...)` / `x = g(...)`: x inherits whatever
// ordering property g's return value carries.
type assignFromCall struct {
	obj    types.Object
	callee *types.Func
	pos    token.Pos
}

// fnFacts are the per-function dataflow facts extracted in one AST walk.
// Everything interprocedural is derived from these by the fixpoint in
// summary.go; the walk itself never looks outside the function.
type fnFacts struct {
	wall    []seed // reads the wall clock (allow-suppressed sites excluded)
	rand    []seed // draws from the global math/rand source
	ordered []seed // ordered side effects: schedules, emits, appends to
	// surviving state, feeds a fingerprint hasher
	floatAcc []seed // float accumulation into state the function does not own

	calls      []callRec
	paramSink  map[int][]seed // parameter reaches an ordered sink directly
	paramFlows []paramFlow
	paramEmit  map[int]seed   // unguarded emission with the parameter as receiver
	paramRule  map[int]string // "tracenil" or "obsnil" for paramEmit

	builders        []objSeed // local slices/strings built in map-iteration order
	assignsFromCall []assignFromCall
	sorted          map[types.Object]bool
	retObjs         []objSeed
	retCalls        []callRec
}

// Program is the module-wide analysis state: the function index, call
// graph, per-package allow sets and converged summaries.
type Program struct {
	Fset    *token.FileSet
	Info    *types.Info
	Pkgs    []*Package // packages diagnostics are reported for
	Context []*Package // superset of Pkgs contributing summaries

	funcs  map[*types.Func]*FuncInfo
	order  []*FuncInfo
	allows map[*Package]*allowSet
}

// BuildProgram indexes every function declared in context, extracts
// per-function facts and runs the summary fixpoint. pkgs is the subset
// diagnostics will be reported for.
func BuildProgram(fset *token.FileSet, info *types.Info, pkgs, context []*Package) *Program {
	prog := &Program{
		Fset:    fset,
		Info:    info,
		Pkgs:    pkgs,
		Context: context,
		funcs:   map[*types.Func]*FuncInfo{},
		allows:  map[*Package]*allowSet{},
	}
	for _, pkg := range context {
		prog.allows[pkg] = collectAllows(fset, pkg)
	}
	// Pass 1: index declarations so call edges can resolve forward refs.
	for _, pkg := range context {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				prog.funcs[obj] = fi
				prog.order = append(prog.order, fi)
			}
		}
	}
	// Pass 2: facts + reverse edges.
	for _, fi := range prog.order {
		prog.collectFacts(fi)
		seen := map[*FuncInfo]bool{}
		for _, c := range fi.facts.calls {
			if callee := prog.funcs[c.callee]; callee != nil && !seen[callee] {
				seen[callee] = true
				callee.callers = append(callee.callers, fi)
			}
		}
	}
	prog.solve()
	return prog
}

// FuncOf resolves the FuncInfo for a declared module function, or nil for
// externals, interface methods and function values.
func (prog *Program) FuncOf(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return prog.funcs[fn]
}

// allowedAt reports (and records) whether rule is allow-suppressed at pos
// in pkg's allow set.
func (prog *Program) allowedAt(pkg *Package, pos token.Pos, rule string) bool {
	position := prog.Fset.Position(pos)
	return prog.allows[pkg].allowed(position.Filename, position.Line, rule)
}

// enclosingDecl returns the FuncInfo whose declaration encloses a node
// position within pkg, or nil.
func (prog *Program) enclosingDecl(pkg *Package, pos token.Pos) *FuncInfo {
	for _, fi := range prog.order {
		if fi.Pkg == pkg && fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return fi
		}
	}
	return nil
}

// paramObjs returns the parameter (and named receiver) objects of a
// declaration, with the parameter tuple index for each plain parameter.
func paramObjs(info *types.Info, fd *ast.FuncDecl) (params map[types.Object]int, recvAndParams map[types.Object]bool) {
	params = map[types.Object]int{}
	recvAndParams = map[types.Object]bool{}
	add := func(fields *ast.FieldList, indexed bool) {
		if fields == nil {
			return
		}
		i := 0
		for _, field := range fields.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					recvAndParams[obj] = true
					if indexed {
						params[obj] = i
					}
				}
				i++
			}
		}
	}
	add(fd.Recv, false)
	add(fd.Type.Params, true)
	return params, recvAndParams
}

package lint

import (
	"encoding/json"
	"io"
)

// jsonFrame mirrors ChainFrame with a flat, stable wire shape.
type jsonFrame struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note"`
}

// jsonDiag is the machine-readable form of one Diagnostic. The chain field
// is present (possibly empty) so consumers can rely on the key.
type jsonDiag struct {
	Rule  string      `json:"rule"`
	File  string      `json:"file"`
	Line  int         `json:"line"`
	Col   int         `json:"col"`
	Msg   string      `json:"msg"`
	Chain []jsonFrame `json:"chain"`
}

// WriteJSON renders diagnostics as an indented JSON array (always an
// array — an empty run writes `[]`), one object per finding with the
// interprocedural summary chain inlined. This is the -json output of
// cmd/hpnlint, consumed by CI tooling.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiag{
			Rule:  d.Rule,
			File:  d.Pos.Filename,
			Line:  d.Pos.Line,
			Col:   d.Pos.Column,
			Msg:   d.Msg,
			Chain: make([]jsonFrame, 0, len(d.Chain)),
		}
		for _, f := range d.Chain {
			jd.Chain = append(jd.Chain, jsonFrame{
				File: f.Pos.Filename,
				Line: f.Pos.Line,
				Col:  f.Pos.Column,
				Note: f.Note,
			})
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file extracts per-function dataflow facts (the seeds of the
// interprocedural summaries) and provides the shared classification
// helpers: what counts as an ordered sink, what counts as external state,
// what a local counter looks like, and how a converged taint chain renders
// into diagnostic ChainFrames.

// collectFacts walks one function body once and fills fi.facts. Allow
// directives at seed sites stop the taint at the source: a justified
// `//hpnlint:allow wallclock` on a time.Now line keeps the function's
// summary clean so callers are not re-flagged for a deliberate exception.
func (prog *Program) collectFacts(fi *FuncInfo) {
	info := prog.Info
	fc := &fi.facts
	fc.paramSink = map[int][]seed{}
	fc.paramEmit = map[int]seed{}
	fc.paramRule = map[int]string{}
	fc.sorted = map[types.Object]bool{}

	params, _ := paramObjs(info, fi.Decl)
	counters := localCounters(info, fi.Decl)

	inspectWithStack(fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := info.Uses[n.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				if wallclockFuncs[fn.Name()] && !prog.allowedAt(fi.Pkg, n.Pos(), "wallclock") {
					fc.wall = append(fc.wall, seed{n.Pos(), "time." + fn.Name() + " reads the wall clock here"})
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
					!prog.allowedAt(fi.Pkg, n.Pos(), "globalrand") {
					fc.rand = append(fc.rand, seed{n.Pos(), "rand." + fn.Name() + " draws from the global source here"})
				}
			}
		case *ast.CallExpr:
			prog.collectCallFacts(fi, n, stack, params)
		case *ast.AssignStmt:
			prog.collectAssignFacts(fi, n, stack, counters)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch e := ast.Unparen(res).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(e); obj != nil {
						fc.retObjs = append(fc.retObjs, objSeed{obj, e.Pos(), ""})
					}
				case *ast.CallExpr:
					if callee := calleeFunc(info, e); callee != nil {
						fc.retCalls = append(fc.retCalls, callRec{e.Pos(), callee})
					}
				}
			}
		}
		return true
	})
}

// collectCallFacts classifies one call expression: call-graph edge, ordered
// sink, parameter flow, parameter-receiver emission, builder append.
func (prog *Program) collectCallFacts(fi *FuncInfo, call *ast.CallExpr, stack []ast.Node, params map[types.Object]int) {
	info := prog.Info
	fc := &fi.facts

	// append: builder inside a map range, or an append onto state the
	// function does not own (= an ordered artifact under construction).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				prog.collectAppendFacts(fi, call, stack, params)
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	fc.calls = append(fc.calls, callRec{call.Pos(), fn})

	// Ordered sinks by callee identity.
	if desc := prog.orderedSinkDesc(fi.Pkg, fn); desc != "" {
		if !prog.allowedAt(fi.Pkg, call.Pos(), "maporder") {
			fc.ordered = append(fc.ordered, seed{call.Pos(), desc + " here"})
			// Any parameter feeding a sink argument reaches ordered output.
			for _, arg := range call.Args {
				for _, pe := range sortedParams(params) {
					if exprUsesObj(info, arg, pe.obj) {
						fc.paramSink[pe.idx] = append(fc.paramSink[pe.idx],
							seed{call.Pos(), "parameter " + pe.obj.Name() + " " + desc + " here"})
					}
				}
			}
		}
	}

	// Unguarded emission with a parameter as receiver: the cost/panic
	// contract escapes to the callers (tracenil/obsnil interprocedural).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recvID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if idx, isParam := params[info.ObjectOf(recvID)]; isParam {
				rule := ""
				if isTracerMethod(fn) && tracerEmitMethods[fn.Name()] && funcPkgPath(fn) == telemetryPath && fi.Pkg.ImportPath != telemetryPath {
					rule = "tracenil"
				} else if isObserverMethod(fn) {
					rule = "obsnil"
				} else if isFlightEmitMethod(fn) && fi.Pkg.ImportPath != profPath {
					rule = "profnil"
				}
				if rule != "" && !guardedNotNil(stack, call, recvID.Name) &&
					!prog.allowedAt(fi.Pkg, call.Pos(), rule) {
					if _, dup := fc.paramEmit[idx]; !dup {
						fc.paramEmit[idx] = seed{call.Pos(), "emits on parameter " + recvID.Name + " without a nil guard here"}
						fc.paramRule[idx] = rule
					}
				}
			}
		}
	}

	// sort calls launder ordering for their slice arguments.
	if isSortCall(fn) {
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.ObjectOf(aid); obj != nil {
					fc.sorted[obj] = true
				}
			}
		}
	}

	// Parameter flows: a parameter passed verbatim as an argument.
	sig, _ := fn.Type().(*types.Signature)
	for ai, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(id)
		idx, isParam := params[obj]
		if !isParam || sig == nil {
			continue
		}
		target := ai
		if sig.Variadic() && target >= sig.Params().Len()-1 {
			target = sig.Params().Len() - 1
		}
		if target >= sig.Params().Len() {
			continue
		}
		fc.paramFlows = append(fc.paramFlows, paramFlow{
			param:   idx,
			pos:     call.Pos(),
			callee:  fn,
			arg:     target,
			guarded: guardedNotNil(stack, call, id.Name),
		})
	}

	// Local variables assigned straight from a call inherit the callee's
	// return-ordering property.
	if len(stack) > 0 {
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok &&
			len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == call {
			for _, lhs := range as.Lhs {
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.ObjectOf(lid); obj != nil {
						fc.assignsFromCall = append(fc.assignsFromCall, assignFromCall{obj, fn, call.Pos()})
					}
				}
			}
		}
	}
}

// collectAppendFacts handles one append(...) call: map-range builders and
// appends onto surviving external state.
func (prog *Program) collectAppendFacts(fi *FuncInfo, call *ast.CallExpr, stack []ast.Node, params map[types.Object]int) {
	info := prog.Info
	fc := &fi.facts
	target := ast.Unparen(call.Args[0])

	if isExternalTarget(info, target) {
		if !prog.allowedAt(fi.Pkg, call.Pos(), "maporder") {
			desc := "appends to surviving state " + types.ExprString(target)
			fc.ordered = append(fc.ordered, seed{call.Pos(), desc + " here"})
			for _, arg := range call.Args[1:] {
				for _, pe := range sortedParams(params) {
					if exprUsesObj(info, arg, pe.obj) {
						fc.paramSink[pe.idx] = append(fc.paramSink[pe.idx],
							seed{call.Pos(), "parameter " + pe.obj.Name() + " is appended to surviving state " + types.ExprString(target) + " here"})
					}
				}
			}
		}
		return
	}
	// Local target built inside a map range: a map-ordered builder.
	if id, ok := target.(*ast.Ident); ok {
		if rs := enclosingMapRange(prog.Info, stack); rs != nil {
			if obj := info.ObjectOf(id); obj != nil {
				fc.builders = append(fc.builders, objSeed{obj, call.Pos(),
					"built by appending inside `range " + types.ExprString(rs.X) + "` (map iteration order) here"})
			}
		}
	}
}

// collectAssignFacts handles one assignment: float accumulation into
// external state, and counter-indexed / string-concat map-range builders.
func (prog *Program) collectAssignFacts(fi *FuncInfo, as *ast.AssignStmt, stack []ast.Node, counters map[types.Object]token.Pos) {
	info := prog.Info
	fc := &fi.facts
	if len(as.Lhs) != 1 {
		return
	}
	lhs := ast.Unparen(as.Lhs[0])

	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isFloat(info.TypeOf(lhs)) && isExternalTarget(info, lhs) &&
			!prog.allowedAt(fi.Pkg, as.Pos(), "floatacc") {
			fc.floatAcc = append(fc.floatAcc, seed{as.Pos(),
				"accumulates float state " + types.ExprString(lhs) + " (" + as.Tok.String() + ") here"})
		}
		// String concatenation inside a map range builds a map-ordered
		// string.
		if as.Tok == token.ADD_ASSIGN && isString(info.TypeOf(lhs)) {
			if id, ok := lhs.(*ast.Ident); ok && !isExternalTarget(info, lhs) {
				if rs := enclosingMapRange(info, stack); rs != nil {
					if obj := info.ObjectOf(id); obj != nil {
						fc.builders = append(fc.builders, objSeed{obj, as.Pos(),
							"built by string concatenation inside `range " + types.ExprString(rs.X) + "` (map iteration order) here"})
					}
				}
			}
		}
	case token.ASSIGN:
		// Counter-indexed slice fill inside a map range: out[i] = v; i++
		// builds positional map order without any append for the old
		// intraprocedural rule to see.
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			return
		}
		base, ok := ast.Unparen(ix.X).(*ast.Ident)
		if !ok || isExternalTarget(info, ix.X) {
			return
		}
		idxID, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok {
			return
		}
		if _, isCounter := counters[info.ObjectOf(idxID)]; !isCounter {
			return
		}
		if rs := enclosingMapRange(info, stack); rs != nil {
			if obj := info.ObjectOf(base); obj != nil {
				fc.builders = append(fc.builders, objSeed{obj, as.Pos(),
					"built by counter-indexed assignment inside `range " + types.ExprString(rs.X) + "` (map iteration order) here"})
			}
		}
	}
}

// orderedSinkDesc classifies a callee as an ordered sink: simulator event
// scheduling, telemetry emission (for packages outside telemetry) or a
// fingerprint hasher. Returns "" for everything else.
func (prog *Program) orderedSinkDesc(pkg *Package, fn *types.Func) string {
	switch funcPkgPath(fn) {
	case simPath:
		if simSchedulingFuncs[fn.Name()] {
			return "reaches simulator event order (sim." + fn.Name() + ")"
		}
	case telemetryPath:
		if pkg.ImportPath != telemetryPath {
			return "reaches telemetry emission order (" + fn.Name() + ")"
		}
	}
	if isHasherMixMethod(fn) {
		return "feeds a fingerprint hasher (Hasher." + fn.Name() + ")"
	}
	return ""
}

// isHasherMixMethod reports whether fn is a Mix* method on a module type
// named Hasher — the fingerprint accumulators whose input order is part of
// the artifact contract.
func isHasherMixMethod(fn *types.Func) bool {
	if !strings.HasPrefix(fn.Name(), "Mix") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Hasher"
}

// isSortCall reports whether fn is a sort.* or slices.Sort* entry point.
func isSortCall(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// isExternalTarget reports whether an assignable expression denotes state
// the enclosing function does not own: a field, an element of something
// reached through a selector, a pointer dereference, or a package-level
// variable. Appending to or accumulating into such state survives the
// function, so its order matters.
func isExternalTarget(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return true // unresolved: assume the worst
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		// Package-level variables are external; locals (and parameters)
		// are owned by the function.
		return v.Parent() != nil && v.Parent().Parent() == types.Universe
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return isExternalTarget(info, e.X)
	case *ast.StarExpr:
		return true
	case *ast.CallExpr:
		// append(make([]T, ...), ...) and append([]T(nil), src...) build
		// fresh backing arrays the function owns; other call results may
		// alias external state.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return false
			}
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if arg, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && arg.Name == "nil" {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// isString reports whether t is (or is based on) a string type.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// enclosingMapRange returns the innermost enclosing RangeStmt over a map
// whose body contains the current node, or nil.
func enclosingMapRange(info *types.Info, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		if t := info.TypeOf(rs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return rs
			}
		}
	}
	return nil
}

// paramEntry pairs a parameter object with its index for deterministic
// iteration — ranging the params map directly would leak map order into
// seed (and therefore diagnostic) order, which the maporder rule itself
// forbids.
type paramEntry struct {
	obj types.Object
	idx int
}

// sortedParams returns the parameter set ordered by parameter index.
func sortedParams(params map[types.Object]int) []paramEntry {
	out := make([]paramEntry, 0, len(params))
	for obj, idx := range params {
		out = append(out, paramEntry{obj, idx})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// exprUsesObj reports whether e references obj anywhere.
func exprUsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// localCounters finds function-local integer counters: variables declared
// from a literal (or zero value) and stepped with ++ or += <literal>.
// Counter-stamped artifact records are the seqsource rule's subject, and
// counter-indexed map-range fills are map-ordered builders.
func localCounters(info *types.Info, fd *ast.FuncDecl) map[types.Object]token.Pos {
	_, paramSet := paramObjs(info, fd)
	literalInit := map[types.Object]bool{}
	stepped := map[types.Object]token.Pos{}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if n.Tok != token.INC {
				return true
			}
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && !paramSet[obj] {
					if _, seen := stepped[obj]; !seen {
						stepped[obj] = n.Pos()
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN:
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if _, isLit := ast.Unparen(n.Rhs[0]).(*ast.BasicLit); isLit {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
							if obj := info.ObjectOf(id); obj != nil && !paramSet[obj] {
								if _, seen := stepped[obj]; !seen {
									stepped[obj] = n.Pos()
								}
							}
						}
					}
				}
			case token.DEFINE:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil || i >= len(n.Rhs) {
						continue
					}
					if _, isLit := ast.Unparen(n.Rhs[i]).(*ast.BasicLit); isLit {
						literalInit[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if len(n.Values) == 0 {
					literalInit[obj] = true // zero value
				} else if i < len(n.Values) {
					if _, isLit := ast.Unparen(n.Values[i]).(*ast.BasicLit); isLit {
						literalInit[obj] = true
					}
				}
			}
		}
		return true
	})
	out := map[types.Object]token.Pos{}
	for obj, pos := range stepped {
		if literalInit[obj] {
			// Only variables local to this function body count; package
			// state and cursors seeded from engine calls are exempt.
			if v, ok := obj.(*types.Var); ok && v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
				out[obj] = pos
			}
		}
	}
	return out
}

package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// This file propagates the per-function facts from taint.go over the call
// graph to a fixpoint, producing one Summary per function. Facts are
// booleans with provenance, so the lattice is finite and propagation is
// monotone: the round-robin loop terminates in at most O(call-graph depth)
// sweeps.

// prov is one link of a taint chain: where the fact enters this function
// (a seed site or a call site) and, for call sites, which callee —
// and for parameter facts which of its parameters — continues the chain.
type prov struct {
	pos       token.Pos
	desc      string
	next      *FuncInfo // nil at a seed
	nextParam int       // parameter index in next, for parameter facts
	rule      string    // owning rule for paramEmit ("tracenil"/"obsnil")
}

// Summary is the interprocedural fact set of one function, each fact
// carrying the provenance of one witness path.
type Summary struct {
	// Wall: the function (transitively) reads the wall clock outside an
	// allow-suppressed site — it derives time outside sim.Engine.
	Wall *prov
	// Rand: the function (transitively) draws from the global math/rand
	// source.
	Rand *prov
	// Ordered: the function has ordered side effects — it schedules
	// simulator events, emits telemetry, feeds a fingerprint hasher, or
	// appends to state that outlives it. Calling it from a map iteration
	// turns Go's randomized order into artifact order.
	Ordered *prov
	// FloatAcc: the function accumulates floating-point state it does not
	// own; calling it from an order-unstable context (map range, goroutine,
	// channel merge) makes the reduction order nondeterministic.
	FloatAcc *prov
	// RMO ("returns map-ordered"): the function returns data whose order
	// derives from map iteration.
	RMO *prov
	// ParamSink: parameter i reaches an ordered artifact sink (telemetry,
	// event scheduling, fingerprint hasher, surviving append).
	ParamSink map[int]*prov
	// ParamEmit: parameter i is used as the receiver of an unguarded
	// telemetry/observer emission, so the nil-guard obligation escapes to
	// callers. prov.rule names the owning rule.
	ParamEmit map[int]*prov
}

// shape encodes which facts are present, for fixpoint change detection.
func (s *Summary) shape() string {
	b := make([]byte, 0, 16)
	for _, p := range []*prov{s.Wall, s.Rand, s.Ordered, s.FloatAcc, s.RMO} {
		if p != nil {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	b = append(b, byte('a'+len(s.ParamSink)))
	b = append(b, byte('a'+len(s.ParamEmit)))
	return string(b)
}

// solve runs the summary fixpoint over the whole program, then freezes the
// per-function map-ordered local sets the maporder rule reads.
func (prog *Program) solve() {
	for _, fi := range prog.order {
		fi.sum.ParamSink = map[int]*prov{}
		fi.sum.ParamEmit = map[int]*prov{}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.order {
			before := fi.sum.shape()
			prog.transfer(fi)
			if fi.sum.shape() != before {
				changed = true
			}
		}
	}
	for _, fi := range prog.order {
		fi.moLocals = prog.mapOrderedLocals(fi)
	}
}

// transfer recomputes one function's summary from its facts and the
// current summaries of its callees.
func (prog *Program) transfer(fi *FuncInfo) {
	fc := &fi.facts
	sum := &fi.sum

	seedOr := func(cur *prov, seeds []seed, rule, via string, calleeFact func(*Summary) *prov) *prov {
		if cur != nil {
			return cur
		}
		if len(seeds) > 0 {
			return &prov{pos: seeds[0].pos, desc: seeds[0].desc}
		}
		for _, c := range fc.calls {
			callee := prog.funcs[c.callee]
			if callee == nil || calleeFact(&callee.sum) == nil {
				continue
			}
			if prog.allowedAt(fi.Pkg, c.pos, rule) {
				continue
			}
			return &prov{pos: c.pos, desc: "calls " + callee.Name() + ", which " + via, next: callee}
		}
		return nil
	}

	sum.Wall = seedOr(sum.Wall, fc.wall, "wallclock", "derives wall-clock time",
		func(s *Summary) *prov { return s.Wall })
	sum.Rand = seedOr(sum.Rand, fc.rand, "globalrand", "draws from the global math/rand source",
		func(s *Summary) *prov { return s.Rand })
	sum.Ordered = seedOr(sum.Ordered, fc.ordered, "maporder", "has ordered side effects",
		func(s *Summary) *prov { return s.Ordered })
	sum.FloatAcc = seedOr(sum.FloatAcc, fc.floatAcc, "floatacc", "accumulates float state order-sensitively",
		func(s *Summary) *prov { return s.FloatAcc })

	// Returns-map-ordered: a returned local is map-ordered, or the return
	// forwards a map-ordered-returning call.
	if sum.RMO == nil {
		mo := prog.mapOrderedLocals(fi)
		for _, r := range fc.retObjs {
			if p, ok := mo[r.obj]; ok {
				sum.RMO = &prov{pos: p.pos, desc: "returns " + r.obj.Name() + ", " + p.desc, next: p.next}
				break
			}
		}
		if sum.RMO == nil {
			for _, rc := range fc.retCalls {
				callee := prog.funcs[rc.callee]
				if callee == nil || callee.sum.RMO == nil {
					continue
				}
				if prog.allowedAt(fi.Pkg, rc.pos, "maporder") {
					continue
				}
				sum.RMO = &prov{pos: rc.pos, desc: "returns " + callee.Name() + "() verbatim, which returns map-iteration-ordered data", next: callee}
				break
			}
		}
	}

	// Parameter facts.
	for idx, seeds := range fc.paramSink {
		if sum.ParamSink[idx] == nil && len(seeds) > 0 {
			sum.ParamSink[idx] = &prov{pos: seeds[0].pos, desc: seeds[0].desc}
		}
	}
	for idx, s := range fc.paramEmit {
		if sum.ParamEmit[idx] == nil {
			sum.ParamEmit[idx] = &prov{pos: s.pos, desc: s.desc, rule: fc.paramRule[idx]}
		}
	}
	for _, pf := range fc.paramFlows {
		callee := prog.funcs[pf.callee]
		if callee == nil {
			continue
		}
		if sum.ParamSink[pf.param] == nil {
			if p := callee.sum.ParamSink[pf.arg]; p != nil && !prog.allowedAt(fi.Pkg, pf.pos, "maporder") {
				sum.ParamSink[pf.param] = &prov{pos: pf.pos,
					desc: fmt.Sprintf("passes parameter %s to %s, whose parameter %s reaches an ordered sink",
						paramName(fi, pf.param), callee.Name(), paramName(callee, pf.arg)),
					next: callee, nextParam: pf.arg}
			}
		}
		if sum.ParamEmit[pf.param] == nil && !pf.guarded {
			if p := callee.sum.ParamEmit[pf.arg]; p != nil && !prog.allowedAt(fi.Pkg, pf.pos, p.rule) {
				sum.ParamEmit[pf.param] = &prov{pos: pf.pos,
					desc: fmt.Sprintf("passes parameter %s unguarded to %s, which emits on its parameter %s",
						paramName(fi, pf.param), callee.Name(), paramName(callee, pf.arg)),
					next: callee, nextParam: pf.arg, rule: p.rule}
			}
		}
	}
}

// mapOrderedLocals computes, for one function under the current summaries,
// the local variables holding map-iteration-ordered data: builders from
// taint.go plus locals assigned from returns-map-ordered calls, minus
// anything the function sorts.
func (prog *Program) mapOrderedLocals(fi *FuncInfo) map[types.Object]*prov {
	fc := &fi.facts
	mo := map[types.Object]*prov{}
	for _, b := range fc.builders {
		if !fc.sorted[b.obj] {
			mo[b.obj] = &prov{pos: b.pos, desc: b.desc}
		}
	}
	for _, a := range fc.assignsFromCall {
		if fc.sorted[a.obj] || mo[a.obj] != nil {
			continue
		}
		callee := prog.funcs[a.callee]
		if callee == nil || callee.sum.RMO == nil {
			continue
		}
		if prog.allowedAt(fi.Pkg, a.pos, "maporder") {
			continue
		}
		mo[a.obj] = &prov{pos: a.pos,
			desc: "assigned from " + callee.Name() + "(), which returns map-iteration-ordered data", next: callee}
	}
	return mo
}

// paramName renders a parameter for chain messages.
func paramName(fi *FuncInfo, idx int) string {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return fmt.Sprintf("#%d", idx)
	}
	if name := sig.Params().At(idx).Name(); name != "" {
		return name
	}
	return fmt.Sprintf("#%d", idx)
}

// factKind selects which Summary fact a chain walk follows.
type factKind int

const (
	factWall factKind = iota
	factRand
	factOrdered
	factFloatAcc
	factRMO
	factParamSink
	factParamEmit
)

// chain renders the witness path of a fact into diagnostic ChainFrames,
// starting from the given provenance link. Cycles (recursion) are cut by
// the depth cap.
func (prog *Program) chain(p *prov, kind factKind) []ChainFrame {
	var frames []ChainFrame
	for depth := 0; p != nil && depth < 16; depth++ {
		frames = append(frames, ChainFrame{Pos: prog.Fset.Position(p.pos), Note: p.desc})
		if p.next == nil {
			break
		}
		next := p.next
		idx := p.nextParam
		switch kind {
		case factWall:
			p = next.sum.Wall
		case factRand:
			p = next.sum.Rand
		case factOrdered:
			p = next.sum.Ordered
		case factFloatAcc:
			p = next.sum.FloatAcc
		case factRMO:
			p = next.sum.RMO
		case factParamSink:
			p = next.sum.ParamSink[idx]
		case factParamEmit:
			p = next.sum.ParamEmit[idx]
		default:
			p = nil
		}
	}
	return frames
}

// StaleAllow is one allow directive (one rule token) that suppressed
// nothing during a full analysis.
type StaleAllow struct {
	Pos     token.Position
	Rule    string
	Unknown bool // the rule name does not exist
}

// StaleAllows returns the stale directives of the report packages after
// an analysis has run every rule. It is the input to FixAllows.
func (prog *Program) StaleAllows() []StaleAllow {
	return prog.staleAllows(knownRuleNames())
}

// staleAllows returns, for the report packages, every directive that never
// fired, in deterministic order. Directives naming unknown rules are
// always stale.
func (prog *Program) staleAllows(known map[string]bool) []StaleAllow {
	var out []StaleAllow
	for _, pkg := range prog.Pkgs {
		allows := prog.allows[pkg]
		if allows == nil {
			continue
		}
		for _, d := range allows.directives {
			if d.used && known[d.rule] {
				continue
			}
			out = append(out, StaleAllow{Pos: d.pos, Rule: d.rule, Unknown: !known[d.rule]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

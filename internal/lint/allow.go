package lint

import (
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one rule token of one `//hpnlint:allow` comment. A
// directive naming several rules expands to one allowDirective per rule, so
// staleness is tracked per rule token: `//hpnlint:allow floateq,maporder`
// where only floateq still fires reports the maporder token as stale.
type allowDirective struct {
	pos  token.Position // position of the comment's `//`
	rule string
	// used flips when the directive suppresses a diagnostic or stops a
	// taint seed from entering a summary; a directive that never flips is
	// stale and reported by the allowstale rule.
	used bool
}

// allowSet indexes a package's allow directives by file and line.
type allowSet struct {
	byLine     map[string]map[int]map[string]*allowDirective
	directives []*allowDirective
}

// allowed reports whether rule is suppressed at file:line, marking the
// backing directive as load-bearing.
func (a *allowSet) allowed(file string, line int, rule string) bool {
	if a == nil {
		return false
	}
	d := a.byLine[file][line][rule]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// stale returns the directives that never suppressed anything, in file/line
// order.
func (a *allowSet) stale(rule string) []*allowDirective {
	var out []*allowDirective
	for _, d := range a.directives {
		if !d.used && d.rule == rule {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		if out[i].pos.Line != out[j].pos.Line {
			return out[i].pos.Line < out[j].pos.Line
		}
		return out[i].rule < out[j].rule
	})
	return out
}

// collectAllows scans every comment in the package for allow directives.
//
// Directive syntax (the one escape hatch from hpnlint findings):
//
//	//hpnlint:allow <rule>[,<rule>...] [-- <justification>]
//
// The directive is written with no space after "//" so gofmt treats it as a
// machine directive and leaves it untouched. It suppresses diagnostics of
// the named rule(s) on the line the comment appears on (trailing-comment
// form) and on the immediately following line (standalone-comment form):
//
//	start := time.Now() //hpnlint:allow wallclock -- CLI timing, not sim state
//
//	//hpnlint:allow floateq -- exact zero guard before math.Log
//	for u == 0 {
//
// Everything after " -- " is a free-form justification; writing one is
// expected — an allow without a why is a review comment waiting to happen.
// An allow also stops interprocedural taint: a wallclock allow on a
// time.Now site keeps the enclosing function's summary clean, so callers
// are not re-flagged for a deliberate exception.
func collectAllows(fset *token.FileSet, pkg *Package) *allowSet {
	allows := &allowSet{byLine: map[string]map[int]map[string]*allowDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := allows.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]*allowDirective{}
					allows.byLine[pos.Filename] = lines
				}
				for _, r := range rules {
					d := &allowDirective{pos: pos, rule: r}
					allows.directives = append(allows.directives, d)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = map[string]*allowDirective{}
							lines[line] = set
						}
						// Both lines share one directive so either hit
						// marks it used.
						set[r] = d
					}
				}
			}
		}
	}
	return allows
}

// parseAllowDirective extracts the rule list from one comment's text, or
// returns ok=false when the comment is not an allow directive.
func parseAllowDirective(text string) (rules []string, ok bool) {
	const prefix = "//hpnlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	// Strip the justification, if any.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, false
	}
	// The rule list is the first field; tolerate spaces after commas.
	fields := strings.Fields(rest)
	for _, f := range fields {
		for _, r := range strings.Split(f, ",") {
			if r != "" {
				rules = append(rules, r)
			}
		}
	}
	return rules, len(rules) > 0
}

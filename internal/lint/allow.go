package lint

import (
	"go/token"
	"strings"
)

// allowSet records, per file and line, which rules an allow directive
// suppresses.
type allowSet map[string]map[int]map[string]bool

// allowed reports whether rule is suppressed at file:line.
func (a allowSet) allowed(file string, line int, rule string) bool {
	return a[file][line][rule]
}

// collectAllows scans every comment in the package for allow directives.
//
// Directive syntax (the one escape hatch from hpnlint findings):
//
//	//hpnlint:allow <rule>[,<rule>...] [-- <justification>]
//
// The directive is written with no space after "//" so gofmt treats it as a
// machine directive and leaves it untouched. It suppresses diagnostics of
// the named rule(s) on the line the comment appears on (trailing-comment
// form) and on the immediately following line (standalone-comment form):
//
//	start := time.Now() //hpnlint:allow wallclock -- CLI timing, not sim state
//
//	//hpnlint:allow floateq -- exact zero guard before math.Log
//	for u == 0 {
//
// Everything after " -- " is a free-form justification; writing one is
// expected — an allow without a why is a review comment waiting to happen.
func collectAllows(fset *token.FileSet, pkg *Package) allowSet {
	allows := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := allows[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					allows[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					for _, r := range rules {
						set[r] = true
					}
				}
			}
		}
	}
	return allows
}

// parseAllowDirective extracts the rule list from one comment's text, or
// returns ok=false when the comment is not an allow directive.
func parseAllowDirective(text string) (rules []string, ok bool) {
	const prefix = "//hpnlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	// Strip the justification, if any.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, false
	}
	// The rule list is the first field; tolerate spaces after commas.
	fields := strings.Fields(rest)
	for _, f := range fields {
		for _, r := range strings.Split(f, ",") {
			if r != "" {
				rules = append(rules, r)
			}
		}
	}
	return rules, len(rules) > 0
}

package lint

import (
	"go/ast"
	"go/types"
)

// goorderRule enforces the parallel exact-merge discipline ParallelFill
// proved out: goroutine results must land in index-addressed slots (or be
// sorted before use), never merged by whichever goroutine got there first.
// Two shapes break that discipline and are flagged:
//
//   - shared-slice append: a go-launched function literal appending to a
//     slice declared outside it. Even under a mutex the element order is
//     scheduling order, which differs run to run.
//   - channel-receive merge: a loop receiving results from a channel and
//     appending them to a surviving slice without sorting afterwards. The
//     receive order is send-completion order, i.e. scheduling order.
//
// Index-addressed writes (results[i] = ...) and collect-then-sort merges
// are the blessed patterns and stay clean.
type goorderRule struct{}

func (goorderRule) Name() string { return "goorder" }
func (goorderRule) Doc() string {
	return "goroutine results must merge index-addressed or sorted, not by channel-receive order or shared-slice append"
}

func (goorderRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					p.checkGoroutineAppends(n, lit)
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.checkReceiveMerge(n, n.Body, enclosingFuncBody(stack))
					}
				}
			case *ast.ForStmt:
				if containsChanReceive(p.Info, n.Body) {
					p.checkReceiveMerge(n, n.Body, enclosingFuncBody(stack))
				}
			}
			return true
		})
	}
}

// checkGoroutineAppends flags appends inside a go-launched function
// literal whose target is declared outside the literal — the shared-slice
// merge whose element order is goroutine scheduling order.
func (p *Pass) checkGoroutineAppends(gs *ast.GoStmt, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" || len(call.Args) == 0 {
			return true
		}
		target := ast.Unparen(call.Args[0])
		if !escapesFuncLit(p.Info, target, lit) {
			return true
		}
		p.Reportf(gs.Pos(), "goorder",
			"goroutine appends to shared slice %s; element order is goroutine scheduling order — write to index-addressed slots (results[i] = ...) or merge sorted after Wait",
			types.ExprString(target))
		return true
	})
}

// checkReceiveMerge flags appends of channel-received results to surviving
// slices inside a receive loop, unless the target is sorted afterwards.
func (p *Pass) checkReceiveMerge(loop ast.Stmt, body *ast.BlockStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" || len(call.Args) == 0 {
			return true
		}
		target := ast.Unparen(call.Args[0])
		if !stmtEscapes(p.Info, target, loop) || sortedAfterStmt(p, target, loop, fnBody) {
			return true
		}
		p.Reportf(loop.Pos(), "goorder",
			"results merged into %s by channel-receive order; receive order is goroutine scheduling order — carry an index and write results[i], or sort after the loop",
			types.ExprString(target))
		return false // one finding per loop is enough
	})
}

// containsChanReceive reports whether body receives from a channel
// (outside nested function literals).
func containsChanReceive(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		}
		return !found
	})
	return found
}

// escapesFuncLit reports whether target denotes state declared outside the
// function literal (or external state altogether).
func escapesFuncLit(info *types.Info, target ast.Expr, lit *ast.FuncLit) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return true // selector/index/deref: shared by construction
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// stmtEscapes reports whether target is declared outside stmt.
func stmtEscapes(info *types.Info, target ast.Expr, stmt ast.Stmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return true
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < stmt.Pos() || obj.Pos() > stmt.End()
}

// sortedAfterStmt reports whether target is passed to a sort call after
// stmt within the same function body.
func sortedAfterStmt(p *Pass, target ast.Expr, stmt ast.Stmt, fnBody *ast.BlockStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok || fnBody == nil {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < stmt.End() {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || !isSortCall(fn) {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.ObjectOf(aid) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

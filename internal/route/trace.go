package route

import (
	"fmt"
	"strings"

	"hpn/internal/hashing"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Hop is one per-switch record of a traced path, mirroring what the
// paper's INT-based probes report (switchID and portID per hop, §10) to
// check deployments against the blueprint.
type Hop struct {
	Node        topo.NodeID
	Name        string
	Kind        topo.Kind
	Plane       int
	IngressPort int // -1 at the source host
	EgressPort  int
	Egress      topo.LinkID
}

// Trace computes the path a flow takes and returns per-hop records
// including the physical port numbers — the software analogue of sending
// an INT probe.
func (r *Router) Trace(src, dst Endpoint, srcPort int, tuple hashing.FiveTuple, now sim.Time) ([]Hop, error) {
	path, blackholed, err := r.Path(src, dst, srcPort, tuple, now)
	if err != nil {
		return nil, err
	}
	if blackholed {
		return nil, fmt.Errorf("route: path blackholes at hop %d", len(path))
	}
	hops := make([]Hop, 0, len(path))
	ingress := -1
	for _, lk := range path {
		l := r.T.Link(lk)
		from := r.T.Node(l.From)
		hops = append(hops, Hop{
			Node: from.ID, Name: from.Name, Kind: from.Kind, Plane: l.Plane,
			IngressPort: ingress, EgressPort: l.FromPort, Egress: lk,
		})
		ingress = l.ToPort
	}
	// Terminal record: the destination host's receiving port.
	last := r.T.Link(path[len(path)-1])
	dstNode := r.T.Node(last.To)
	hops = append(hops, Hop{
		Node: dstNode.ID, Name: dstNode.Name, Kind: dstNode.Kind, Plane: last.Plane,
		IngressPort: last.ToPort, EgressPort: -1, Egress: topo.None,
	})
	if r.Tracer != nil {
		r.Tracer.Instant(int64(now), "route", "int_probe", telemetry.TidRoute,
			telemetry.Arg{K: "src", V: fmt.Sprintf("%d:%d", src.Host, src.NIC)},
			telemetry.Arg{K: "dst", V: fmt.Sprintf("%d:%d", dst.Host, dst.NIC)},
			telemetry.Arg{K: "hops", V: len(hops)})
	}
	return hops, nil
}

// FormatTrace renders hops as one line per hop, hpntopo-style.
func FormatTrace(hops []Hop) string {
	var b strings.Builder
	for i, h := range hops {
		in, out := fmt.Sprint(h.IngressPort), fmt.Sprint(h.EgressPort)
		if h.IngressPort < 0 {
			in = "-"
		}
		if h.EgressPort < 0 {
			out = "-"
		}
		fmt.Fprintf(&b, "%2d  %-24s plane=%d in=%s out=%s\n", i, h.Name, h.Plane, in, out)
	}
	return b.String()
}

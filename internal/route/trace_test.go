package route

import (
	"strings"
	"testing"

	"hpn/internal/topo"
)

func TestTraceCrossSegment(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 4)
	src, dst := Endpoint{0, 2}, Endpoint{4, 2}
	tu := tupleFor(src, dst, 1000)
	hops, err := r.Trace(src, dst, 1, tu, 0)
	if err != nil {
		t.Fatal(err)
	}
	// host -> ToR -> Agg -> ToR -> host: 5 hop records.
	if len(hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(hops))
	}
	wantKinds := []topo.Kind{topo.KindHost, topo.KindToR, topo.KindAgg, topo.KindToR, topo.KindHost}
	for i, h := range hops {
		if h.Kind != wantKinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, h.Kind, wantKinds[i])
		}
		if h.Plane != 1 {
			t.Fatalf("hop %d plane %d, want 1 (entered on port 1)", i, h.Plane)
		}
	}
	if hops[0].IngressPort != -1 || hops[len(hops)-1].EgressPort != -1 {
		t.Fatal("terminal port markers wrong")
	}
	// Adjacent hops' ports must correspond to real links.
	for i := 0; i < len(hops)-1; i++ {
		l := top.Link(hops[i].Egress)
		if l.From != hops[i].Node || l.To != hops[i+1].Node {
			t.Fatalf("hop %d egress link does not connect to hop %d", i, i+1)
		}
		if l.ToPort != hops[i+1].IngressPort {
			t.Fatalf("hop %d ingress port mismatch", i+1)
		}
	}
	out := FormatTrace(hops)
	if !strings.Contains(out, "tor-") || !strings.Contains(out, "agg-") {
		t.Fatalf("formatted trace missing hops:\n%s", out)
	}
}

func TestTraceBlackholeReported(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 4)
	src, dst := Endpoint{0, 0}, Endpoint{4, 0}
	dead := top.AccessLink(dst.Host, dst.NIC, 0)
	top.SetCableState(dead, false)
	r.NoteLinkFailed(dead, 0)
	// Pre-convergence, plane-0 traces blackhole.
	if _, err := r.Trace(src, dst, 0, tupleFor(src, dst, 7), 1); err == nil {
		t.Fatal("blackholed trace reported success")
	}
}

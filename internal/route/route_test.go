package route

import (
	"testing"
	"testing/quick"

	"hpn/internal/hashing"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func buildSmall(t *testing.T, segments, hosts, aggs int) (*topo.Topology, *Router) {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(segments, hosts, aggs))
	if err != nil {
		t.Fatal(err)
	}
	return top, New(top)
}

func tupleFor(src, dst Endpoint, sport uint16) hashing.FiveTuple {
	return hashing.FiveTuple{
		SrcAddr: src.Addr(), DstAddr: dst.Addr(),
		SrcPort: sport, DstPort: 4791, Proto: 17,
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(h uint16, n uint8) bool {
		e := Endpoint{Host: int(h), NIC: int(n)}
		return EndpointOfAddr(e.Addr()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Intra-segment, same rail: exactly host -> ToR -> host (2 links).
func TestPathSameRailSameSegment(t *testing.T) {
	top, r := buildSmall(t, 1, 4, 4)
	src, dst := Endpoint{0, 3}, Endpoint{1, 3}
	tu := tupleFor(src, dst, 1000)
	p, bh, err := r.Path(src, dst, 0, tu, 0)
	if err != nil || bh {
		t.Fatalf("path err=%v blackholed=%v", err, bh)
	}
	if len(p) != 2 {
		t.Fatalf("path length = %d, want 2 (ToR-local)", len(p))
	}
	tor := top.Node(top.Link(p[0]).To)
	if tor.Kind != topo.KindToR || tor.Rail != 3 || tor.Plane != 0 {
		t.Fatalf("unexpected transit node %+v", tor)
	}
}

// Cross-segment same rail: host -> ToR -> Agg -> ToR -> host (4 links),
// never leaving the source plane.
func TestPathCrossSegmentPlaneConfinement(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 4)
	src := Endpoint{0, 5}
	dst := Endpoint{4, 5} // second segment (4 hosts/segment)
	for port := 0; port < 2; port++ {
		for sport := uint16(1000); sport < 1040; sport++ {
			p, bh, err := r.Path(src, dst, port, tupleFor(src, dst, sport), 0)
			if err != nil || bh {
				t.Fatalf("path err=%v blackholed=%v", err, bh)
			}
			if len(p) != 4 {
				t.Fatalf("path length = %d, want 4", len(p))
			}
			for _, lk := range p {
				if pl := top.Link(lk).Plane; pl != port {
					t.Fatalf("port-%d flow crossed into plane %d", port, pl)
				}
			}
			// Delivered to the same-numbered destination port.
			hp, ok := top.HostPortOf(p[len(p)-1])
			if !ok || hp.Host != dst.Host || hp.NIC != dst.NIC || hp.Port != port {
				t.Fatalf("delivered to %+v, want port %d of %v", hp, port, dst)
			}
		}
	}
}

// Cross-rail traffic transits the Aggregation layer even within a segment.
func TestPathCrossRail(t *testing.T) {
	top, r := buildSmall(t, 1, 4, 4)
	src, dst := Endpoint{0, 1}, Endpoint{2, 6}
	p, bh, err := r.Path(src, dst, 0, tupleFor(src, dst, 1000), 0)
	if err != nil || bh {
		t.Fatalf("path err=%v blackholed=%v", err, bh)
	}
	if len(p) != 4 {
		t.Fatalf("cross-rail path length = %d, want 4 (via Agg)", len(p))
	}
	agg := top.Node(top.Link(p[1]).To)
	if agg.Kind != topo.KindAgg {
		t.Fatalf("second hop is %v, want agg", agg.Kind)
	}
}

// Deterministic: same tuple, same path.
func TestPathDeterministic(t *testing.T) {
	_, r := buildSmall(t, 2, 4, 4)
	src, dst := Endpoint{0, 0}, Endpoint{4, 0}
	tu := tupleFor(src, dst, 1234)
	p1, _, err1 := r.Path(src, dst, 0, tu, 0)
	p2, _, err2 := r.Path(src, dst, 0, tu, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic path")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic path")
		}
	}
}

// Different source ports spread across aggs (the ECMP diversity that path
// selection exploits).
func TestPathSportDiversity(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 8)
	src, dst := Endpoint{0, 0}, Endpoint{4, 0}
	aggsSeen := map[topo.NodeID]bool{}
	for sport := uint16(1000); sport < 1200; sport++ {
		p, _, err := r.Path(src, dst, 0, tupleFor(src, dst, sport), 0)
		if err != nil {
			t.Fatal(err)
		}
		aggsSeen[top.Link(p[1]).To] = true
	}
	if len(aggsSeen) < 6 {
		t.Fatalf("200 sports hit only %d/8 aggs", len(aggsSeen))
	}
}

func TestPickAccessPortBalance(t *testing.T) {
	_, r := buildSmall(t, 1, 4, 4)
	src, dst := Endpoint{0, 0}, Endpoint{1, 0}
	counts := [2]int{}
	for sport := uint16(0); sport < 400; sport++ {
		p, err := r.PickAccessPort(src, dst, tupleFor(src, dst, sport), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	if counts[0] < 120 || counts[1] < 120 {
		t.Fatalf("bond port split %v too skewed", counts)
	}
}

// Access failure: before convergence flows blackhole on the dead plane;
// after convergence both the bond and the fabric avoid it.
func TestFailureConvergence(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 4)
	src, dst := Endpoint{0, 2}, Endpoint{4, 2}
	dead := top.AccessLink(dst.Host, dst.NIC, 0)

	failAt := sim.Time(10 * sim.Second)
	top.SetCableState(dead, false)
	r.NoteLinkFailed(dead, failAt)

	// Pre-convergence: port 0 still selected sometimes, and its paths
	// blackhole at delivery.
	now := failAt + 100*sim.Millisecond
	sawBlackhole := false
	for sport := uint16(0); sport < 50; sport++ {
		tu := tupleFor(src, dst, sport)
		port, err := r.PickAccessPort(src, dst, tu, now)
		if err != nil {
			t.Fatal(err)
		}
		if port != 0 {
			continue
		}
		_, bh, _ := r.Path(src, dst, 0, tu, now)
		if bh {
			sawBlackhole = true
		}
	}
	if !sawBlackhole {
		t.Fatal("expected blackholes before BGP convergence")
	}

	// Post-convergence: bond avoids port 0 entirely.
	now = failAt + r.ConvergenceDelay + sim.Millisecond
	for sport := uint16(0); sport < 100; sport++ {
		tu := tupleFor(src, dst, sport)
		port, err := r.PickAccessPort(src, dst, tu, now)
		if err != nil {
			t.Fatal(err)
		}
		if port != 0 {
			continue
		}
		t.Fatal("bond still using the dead destination plane after convergence")
	}

	// Recovery restores dual-port operation.
	top.SetCableState(dead, true)
	r.NoteLinkRecovered(dead)
	ports := map[int]bool{}
	for sport := uint16(0); sport < 100; sport++ {
		p, err := r.PickAccessPort(src, dst, tupleFor(src, dst, sport), now+sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		ports[p] = true
	}
	if !ports[0] || !ports[1] {
		t.Fatalf("recovery did not restore both ports: %v", ports)
	}
}

// Local source port failure is excluded by the bond immediately.
func TestLocalFailureInstantFailover(t *testing.T) {
	top, r := buildSmall(t, 1, 4, 4)
	src, dst := Endpoint{0, 0}, Endpoint{1, 0}
	dead := top.AccessLink(src.Host, src.NIC, 1)
	top.SetCableState(dead, false)
	r.NoteLinkFailed(dead, 0)
	// Immediately after (no convergence wait): bond must avoid port 1.
	for sport := uint16(0); sport < 100; sport++ {
		p, err := r.PickAccessPort(src, dst, tupleFor(src, dst, sport), 1)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			t.Fatal("bond used locally-dead port")
		}
	}
}

// Single-ToR fabric: an access failure leaves no alternative.
func TestSingleToRNoFailover(t *testing.T) {
	cfg := topo.SmallHPN(1, 4, 4)
	cfg.DualToR = false
	cfg.DualPlane = false
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := New(top)
	src, dst := Endpoint{0, 0}, Endpoint{1, 0}
	top.SetCableState(top.AccessLink(src.Host, src.NIC, 0), false)
	if _, err := r.PickAccessPort(src, dst, tupleFor(src, dst, 1), 0); err == nil {
		t.Fatal("single-ToR with dead access must have no live port")
	}
}

// In DCN+ (single-plane), a converged remote failure reroutes intra-segment
// traffic up through the Agg to the surviving ToR (§4.2 Figure 8b).
func TestDCNIntraSegmentReroute(t *testing.T) {
	top, err := topo.BuildDCN(topo.SmallDCN(1))
	if err != nil {
		t.Fatal(err)
	}
	r := New(top)
	src, dst := Endpoint{0, 0}, Endpoint{1, 0}
	dead := top.AccessLink(dst.Host, dst.NIC, 0)
	top.SetCableState(dead, false)
	r.NoteLinkFailed(dead, 0)

	now := r.ConvergenceDelay + sim.Millisecond
	// Source port 0 lands on ToR0, which no longer holds dst's /32: the
	// path must climb to an Agg and come back down via ToR1.
	p, bh, err := r.Path(src, dst, 0, tupleFor(src, dst, 7), now)
	if err != nil || bh {
		t.Fatalf("reroute failed: err=%v blackholed=%v path=%v", err, bh, p)
	}
	if len(p) != 4 {
		t.Fatalf("rerouted path length = %d, want 4 (via Agg)", len(p))
	}
	hp, ok := top.HostPortOf(p[len(p)-1])
	if !ok || hp.Port != 1 {
		t.Fatalf("delivered to port %d, want surviving port 1", hp.Port)
	}
}

// ToR crash: after convergence all paths avoid the dead ToR.
func TestToRCrash(t *testing.T) {
	top, r := buildSmall(t, 2, 4, 4)
	src, dst := Endpoint{0, 0}, Endpoint{4, 0}
	tor := top.ToR(0, 0, 0, 0) // src's rail-0 plane-0 ToR
	top.SetNodeState(tor, false)
	r.NoteNodeFailed(tor, 0)
	now := r.ConvergenceDelay + sim.Millisecond
	for sport := uint16(0); sport < 50; sport++ {
		tu := tupleFor(src, dst, sport)
		port, err := r.PickAccessPort(src, dst, tu, now)
		if err != nil {
			t.Fatal(err)
		}
		p, bh, err := r.Path(src, dst, port, tu, now)
		if err != nil || bh {
			t.Fatalf("path after ToR crash: err=%v bh=%v", err, bh)
		}
		for _, lk := range p {
			l := top.Link(lk)
			if l.From == tor || l.To == tor {
				t.Fatal("path still traverses crashed ToR")
			}
		}
	}
}

// Multi-pod HPN: cross-pod paths transit the Core and stay in-plane, and
// the Core's per-port hash ignores the 5-tuple.
func TestCrossPodPerPortHash(t *testing.T) {
	cfg := topo.SmallHPN(1, 4, 4)
	cfg.Pods = 2
	cfg.AggCoreUplinks = 2
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := New(top)
	src, dst := Endpoint{0, 0}, Endpoint{4, 0} // pod 0 -> pod 1
	if top.Hosts[dst.Host].Pod != 1 {
		t.Fatalf("host 4 in pod %d, want 1", top.Hosts[dst.Host].Pod)
	}
	// For a fixed path up to the core, the core egress must not vary with
	// the tuple. Group flows by their core-ingress link and check each
	// group leaves on one egress.
	egressByIngress := map[topo.LinkID]map[topo.LinkID]bool{}
	for sport := uint16(0); sport < 300; sport++ {
		p, bh, err := r.Path(src, dst, 0, tupleFor(src, dst, sport), 0)
		if err != nil || bh {
			t.Fatalf("cross-pod path: err=%v bh=%v", err, bh)
		}
		if len(p) != 6 {
			t.Fatalf("cross-pod path length = %d, want 6", len(p))
		}
		coreIn, coreOut := p[2], p[3]
		if top.Node(top.Link(coreIn).To).Kind != topo.KindCore {
			t.Fatal("third hop not a core")
		}
		m := egressByIngress[coreIn]
		if m == nil {
			m = map[topo.LinkID]bool{}
			egressByIngress[coreIn] = m
		}
		m[coreOut] = true
		for _, lk := range p {
			if top.Link(lk).Plane != 0 {
				t.Fatal("cross-pod flow left its plane")
			}
		}
	}
	for in, outs := range egressByIngress {
		if len(outs) != 1 {
			t.Fatalf("core ingress %d spread over %d egresses; per-port hash must pin one", in, len(outs))
		}
	}
}

func TestGroupSizeAtToR(t *testing.T) {
	_, r := buildSmall(t, 2, 4, 4)
	if got := r.GroupSizeAtToR(0, 0, 0); got != 4 {
		t.Fatalf("ToR group size = %d, want 4 (aggs per plane)", got)
	}
}

// Property: on a healthy fabric, every sampled path is valley-free (tiers
// rise monotonically then fall), minimal for its endpoint relationship,
// loop-free, and plane-consistent.
func TestPathShapeProperty(t *testing.T) {
	top, r := buildSmall(t, 3, 6, 6)
	f := func(a, b uint16, nic uint8, sport uint16, port uint8) bool {
		src := Endpoint{Host: int(a) % 18, NIC: int(nic) % 8}
		dst := Endpoint{Host: int(b) % 18, NIC: int(nic) % 8}
		if src.Host == dst.Host {
			return true
		}
		p, bh, err := r.Path(src, dst, int(port)%2, tupleFor(src, dst, sport), 0)
		if err != nil || bh {
			return false
		}
		// Tier profile: host(0) -> up ... -> down -> host(0), no valleys.
		tier := func(n topo.NodeID) int {
			switch top.Node(n).Kind {
			case topo.KindHost:
				return 0
			case topo.KindToR:
				return 1
			case topo.KindAgg:
				return 2
			default:
				return 3
			}
		}
		rising := true
		seen := map[topo.NodeID]bool{}
		for _, lk := range p {
			l := top.Link(lk)
			if seen[l.From] {
				return false // loop
			}
			seen[l.From] = true
			up := tier(l.To) > tier(l.From)
			if up && !rising {
				return false // valley
			}
			if !up {
				rising = false
			}
		}
		// Minimality: same segment+rail = 2 links, otherwise 4 (one pod).
		sameSeg := top.Hosts[src.Host].Segment == top.Hosts[dst.Host].Segment
		want := 4
		if sameSeg && src.NIC == dst.NIC {
			want = 2
		}
		return len(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

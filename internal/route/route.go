// Package route computes forwarding paths over a topo.Topology the way the
// HPN control plane does: valley-free up/down routing with per-switch ECMP
// hashing, /32 host routes learned from ARP (§4.2), dual-plane confinement
// (§6.1), per-port hashing at the Core tier (§7), and BGP-style convergence
// after failures.
//
// The router distinguishes two views of a failed link:
//
//   - the physical view (topo link state), which determines whether traffic
//     placed on the link actually moves, and
//   - the converged view, which determines whether the link is still inside
//     ECMP groups. Between a failure and BGP convergence the dead link keeps
//     attracting hashed flows — they blackhole, exactly like production.
//
// The source-side bond (LACP mode 4) fails over instantly on LOCAL port
// failure (physical signal), but learns about REMOTE failures only through
// routing convergence.
package route

import (
	"fmt"
	"sort"

	"hpn/internal/hashing"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Endpoint names one NIC of one host; the unit that owns an IP address.
type Endpoint struct {
	Host int
	NIC  int
}

// Addr returns the abstract IP of the endpoint, the value used in
// FiveTuple.{Src,Dst}Addr.
func (e Endpoint) Addr() uint32 { return uint32(e.Host)<<8 | uint32(e.NIC) }

// EndpointOfAddr inverts Addr.
func EndpointOfAddr(a uint32) Endpoint { return Endpoint{Host: int(a >> 8), NIC: int(a & 0xff)} }

// Router answers path queries over one topology.
type Router struct {
	T *topo.Topology
	// ConvergenceDelay is the time between a link/node failure and the
	// withdrawal of its routes from all ECMP groups (BGP + host-route
	// propagation). Recovery uses the same delay.
	ConvergenceDelay sim.Time

	// downAdj[node] lists the node's downlinks grouped by peer, sorted by
	// peer ID. The ordered representation (rather than a map keyed by
	// peer) guarantees that any iteration over the adjacency — today's
	// ECMP group construction and anything added later — is deterministic
	// by construction; Go map order must never reach path selection
	// (hpnlint:maporder).
	downAdj map[topo.NodeID][]peerLinks

	// failedAt records when a link last went down; entries are cleared on
	// recovery. Used to decide whether routing has converged around it.
	// Lookup-only by design: never range over it — aggregate walks must go
	// through sorted keys so failure bookkeeping can't leak map order into
	// reconvergence behaviour (enforced by hpnlint's maporder rule).
	failedAt map[topo.LinkID]sim.Time
	// nodeFailedAt is the same for whole nodes (ToR crash); the same
	// lookup-only rule applies.
	nodeFailedAt map[topo.NodeID]sim.Time

	// Tracer, when set, receives BGP-withdrawal/convergence spans and INT
	// path-trace instants.
	Tracer *telemetry.Tracer
}

// peerLinks groups one node's downlinks toward a single peer.
type peerLinks struct {
	peer  topo.NodeID
	links []topo.LinkID
}

// New builds a router for t. ConvergenceDelay defaults to one second, a
// production-plausible BGP propagation time.
func New(t *topo.Topology) *Router {
	r := &Router{
		T:                t,
		ConvergenceDelay: 1 * sim.Second,
		downAdj:          map[topo.NodeID][]peerLinks{},
		failedAt:         map[topo.LinkID]sim.Time{},
		nodeFailedAt:     map[topo.NodeID]sim.Time{},
	}
	for _, n := range t.Nodes {
		if len(n.Downlinks) == 0 {
			continue
		}
		var adj []peerLinks
		for _, lk := range n.Downlinks {
			peer := t.Link(lk).To
			i := sort.Search(len(adj), func(i int) bool { return adj[i].peer >= peer })
			if i == len(adj) || adj[i].peer != peer {
				adj = append(adj, peerLinks{})
				copy(adj[i+1:], adj[i:])
				adj[i] = peerLinks{peer: peer}
			}
			adj[i].links = append(adj[i].links, lk)
		}
		r.downAdj[n.ID] = adj
	}
	return r
}

// downLinks returns node's downlinks toward peer (nil if not adjacent).
func (r *Router) downLinks(node, peer topo.NodeID) []topo.LinkID {
	adj := r.downAdj[node]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].peer >= peer })
	if i < len(adj) && adj[i].peer == peer {
		return adj[i].links
	}
	return nil
}

// NoteLinkFailed records the failure instant of a cable; the caller is
// responsible for flipping the topo state.
func (r *Router) NoteLinkFailed(l topo.LinkID, at sim.Time) {
	r.failedAt[l] = at
	r.failedAt[r.T.Link(l).Reverse] = at
	// Convergence in this router is lazy (queries consult failedAt), so the
	// withdrawal window is known in full at failure time: emit the span now.
	if r.Tracer != nil {
		r.Tracer.Complete(int64(at), int64(r.ConvergenceDelay),
			"route", "bgp_withdrawal", telemetry.TidRoute,
			telemetry.Arg{K: "link", V: int(l)})
	}
}

// NoteLinkRecovered clears failure bookkeeping; recovered links re-enter
// ECMP groups after ConvergenceDelay (modeled by treating a fresh recovery
// as instantly usable — BGP re-advertisement is fast and adding a path
// early is harmless, unlike removing one late).
func (r *Router) NoteLinkRecovered(l topo.LinkID) {
	delete(r.failedAt, l)
	delete(r.failedAt, r.T.Link(l).Reverse)
}

// NoteNodeFailed / NoteNodeRecovered are the node-level equivalents.
func (r *Router) NoteNodeFailed(n topo.NodeID, at sim.Time) {
	r.nodeFailedAt[n] = at
	if r.Tracer != nil {
		r.Tracer.Complete(int64(at), int64(r.ConvergenceDelay),
			"route", "node_withdrawal", telemetry.TidRoute,
			telemetry.Arg{K: "node", V: int(n)})
	}
}

// NoteNodeRecovered clears a node failure.
func (r *Router) NoteNodeRecovered(n topo.NodeID) { delete(r.nodeFailedAt, n) }

// converged reports whether routing has reacted to the failure of l by now.
func (r *Router) converged(l topo.LinkID, now sim.Time) bool {
	lk := r.T.Link(l)
	if at, ok := r.failedAt[l]; ok && now < at+r.ConvergenceDelay {
		return false
	}
	if at, ok := r.nodeFailedAt[lk.From]; ok && now < at+r.ConvergenceDelay {
		return false
	}
	if at, ok := r.nodeFailedAt[lk.To]; ok && now < at+r.ConvergenceDelay {
		return false
	}
	return true
}

// inGroup reports whether link l is currently a member of ECMP groups:
// usable links always are; failed links remain until convergence.
func (r *Router) inGroup(l topo.LinkID, now sim.Time) bool {
	if r.T.LinkUsable(l) {
		return true
	}
	return !r.converged(l, now)
}

// PickAccessPort chooses the source NIC port (and therefore the plane) for
// a new flow, as the host bond does: hash over the live candidates. A port
// is a candidate when the local access link is physically up (instant local
// knowledge) and the destination's same-plane access is not known-dead
// (converged remote knowledge).
func (r *Router) PickAccessPort(src, dst Endpoint, tuple hashing.FiveTuple, now sim.Time) (int, error) {
	srcNIC := r.T.Hosts[src.Host].NICs[src.NIC]
	dstNIC := r.T.Hosts[dst.Host].NICs[dst.NIC]
	var candidates []int
	for p, lk := range srcNIC.Ports {
		if !r.T.LinkUsable(lk) {
			continue // local failure: bond excludes instantly
		}
		// Under dual-plane, port p can only deliver to the destination's
		// port p; a converged remote withdrawal makes the whole plane
		// unusable for this destination. Single-plane fabrics can reach
		// any surviving destination port from any source port.
		if r.T.Planes > 1 && p < len(dstNIC.Ports) {
			dl := dstNIC.Ports[p]
			if !r.T.LinkUsable(dl) && r.converged(dl, now) {
				continue // remote failure, routing has converged: avoid
			}
		}
		candidates = append(candidates, p)
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("route: no live access port from %v to %v", src, dst)
	}
	h := hashing.Hasher{Seed: 0xb0dd} // bond hash; one function per host is fine
	return candidates[h.Select(tuple, len(candidates))], nil
}

// HopDecision records how one link of a path was chosen — the in-band
// telemetry a production INT deployment would stamp into packet metadata at
// each switch. One decision is emitted per path link, in path order. Links
// that involve no hashing (the source access link, ToR->host delivery)
// carry Hashed=false and zeroed hash fields.
type HopDecision struct {
	// Link is the chosen directed link; it equals the path entry at the
	// same index.
	Link topo.LinkID
	// Node is the switch that made the ECMP choice (None for unhashed hops).
	Node topo.NodeID
	// Hashed marks ECMP stages; unhashed hops are access/delivery links.
	Hashed bool
	// Seed is the deciding switch's hash seed (the polarization fingerprint:
	// shared seeds across tiers are what degenerate conditional bucket
	// distributions trace back to).
	Seed uint64
	// Group is the ECMP group size and Bucket the selected member index.
	Group  int
	Bucket int
	// PerPort marks the §7 per-(ingress-port, dst-pod) Core hash; Fallback
	// marks the dead-member 5-tuple fallback of that mode.
	PerPort  bool
	Fallback bool
	// Down reports whether the group pointed toward the hosts.
	Down bool
}

// Path walks the fabric from src to dst for the given tuple, entering at
// srcPort. It returns the ordered directed links. If a hop hashes onto a
// link that is physically dead but not yet withdrawn, the walk still takes
// it and reports blackholed=true: the flow will stall there until routing
// converges and the path is recomputed.
func (r *Router) Path(src, dst Endpoint, srcPort int, tuple hashing.FiveTuple, now sim.Time) (path []topo.LinkID, blackholed bool, err error) {
	return r.PathObserved(src, dst, srcPort, tuple, now, nil)
}

// PathObserved is Path with in-band visibility: when obs is non-nil it is
// invoked once per appended path link, in order, with the hash decision (or
// lack of one) behind that hop. A nil obs is exactly Path.
func (r *Router) PathObserved(src, dst Endpoint, srcPort int, tuple hashing.FiveTuple, now sim.Time, obs func(HopDecision)) (path []topo.LinkID, blackholed bool, err error) {
	t := r.T
	if src.Host == dst.Host {
		return nil, false, fmt.Errorf("route: intra-host traffic does not use the fabric")
	}
	access := t.Hosts[src.Host].NICs[src.NIC].Ports[srcPort]
	if !t.LinkUsable(access) {
		return nil, false, fmt.Errorf("route: source access port %d down", srcPort)
	}
	// Host->ToR->Agg->Core->Agg->ToR->host is 6 hops; 8 covers every
	// valley-free walk without regrowing mid-path.
	path = make([]topo.LinkID, 0, 8)
	path = append(path, access)
	if obs != nil {
		obs(HopDecision{Link: access, Node: topo.None})
	}
	cur := t.Link(access).To
	arriving := access

	const maxHops = 16
	for hop := 0; hop < maxHops; hop++ {
		node := t.Node(cur)
		// Delivery: is dst attached to this node via a link still in the
		// FIB? Once the /32 is withdrawn (dead + converged) the ToR routes
		// the prefix back up through the fabric toward the surviving ToR —
		// the §4.2 ARP-proxy + host-route behaviour.
		if node.Kind == topo.KindToR {
			if down, ok := r.deliveryLink(cur, dst); ok {
				if t.LinkUsable(down) || !r.converged(down, now) {
					if obs != nil {
						obs(HopDecision{Link: down, Node: topo.None, Down: true})
					}
					return append(path, down), !t.LinkUsable(down), nil
				}
				// Withdrawn: fall through to the ECMP walk.
			}
		}
		group, down := r.ecmpGroup(cur, dst, now)
		if len(group) == 0 {
			return path, true, fmt.Errorf("route: empty ECMP group at %s toward %v", node.Name, dst)
		}
		var chosen topo.LinkID
		bucket, perPort, fallback := 0, false, false
		if node.PerPortHash && down {
			// §7: per-(ingress port, dst pod) hash at the Core, falling
			// back to the 5-tuple hash if the preferred member is dead.
			ph := hashing.PortHasher{Seed: node.HashSeed}
			dstPod := t.Hosts[dst.Host].Pod
			bucket, perPort = ph.Select(t.Link(arriving).ToPort, dstPod, len(group)), true
			chosen = group[bucket]
			if !t.LinkUsable(chosen) && r.converged(chosen, now) {
				fallback = true
				bucket = ph.FallbackSelect(tuple, len(group))
				chosen = group[bucket]
			}
		} else {
			h := hashing.Hasher{Seed: node.HashSeed}
			bucket = h.Select(tuple, len(group))
			chosen = group[bucket]
		}
		path = append(path, chosen)
		if obs != nil {
			obs(HopDecision{
				Link: chosen, Node: cur, Hashed: true, Seed: node.HashSeed,
				Group: len(group), Bucket: bucket, PerPort: perPort,
				Fallback: fallback, Down: down,
			})
		}
		if !t.LinkUsable(chosen) {
			return path, true, nil
		}
		arriving = chosen
		cur = t.Link(chosen).To
	}
	return path, true, fmt.Errorf("route: no delivery within %d hops", maxHops)
}

// deliveryLink returns the ToR->host downlink if dst has an access port on
// tor (whatever its state; the caller handles dead delivery links).
func (r *Router) deliveryLink(tor topo.NodeID, dst Endpoint) (topo.LinkID, bool) {
	for _, up := range r.T.Hosts[dst.Host].NICs[dst.NIC].Ports {
		l := r.T.Link(up)
		if l.To == tor {
			return l.Reverse, true
		}
	}
	return topo.None, false
}

// ecmpGroup returns the ECMP members at node toward dst, and whether the
// group points downward (toward hosts). Members are links still advertised
// (inGroup); physically-dead-but-advertised members are included on purpose.
func (r *Router) ecmpGroup(node topo.NodeID, dst Endpoint, now sim.Time) ([]topo.LinkID, bool) {
	t := r.T
	n := t.Node(node)
	dstHost := t.Hosts[dst.Host]

	switch n.Kind {
	case topo.KindToR:
		// Up toward the Aggs (dst not attached here).
		return r.filterGroup(n.Uplinks, now), false

	case topo.KindAgg:
		if dstHost.Pod == n.Pod {
			// Down to the ToR(s) that advertise dst's /32 in this plane.
			var group []topo.LinkID
			for _, up := range dstHost.NICs[dst.NIC].Ports {
				al := t.Link(up)
				tor := t.Node(al.To)
				if t.Planes > 1 && tor.Plane != n.Plane {
					continue
				}
				// The ToR advertises the /32 only while the access link is
				// alive (or not yet withdrawn).
				if !r.inGroup(up, now) {
					continue
				}
				for _, dl := range r.downLinks(node, al.To) {
					if r.inGroup(dl, now) {
						group = append(group, dl)
					}
				}
			}
			sortLinks(group)
			return group, true
		}
		// Up toward the Cores.
		return r.filterGroup(n.Uplinks, now), false

	case topo.KindCore:
		// Down to the Aggs of dst's pod (this plane, by construction).
		var group []topo.LinkID
		for _, agg := range t.Aggs(dstHost.Pod, n.Plane) {
			for _, dl := range r.downLinks(node, agg) {
				if r.inGroup(dl, now) {
					group = append(group, dl)
				}
			}
		}
		sortLinks(group)
		return group, true
	}
	return nil, false
}

// filterGroup drops withdrawn members. The common case — every member
// still advertised — returns the input slice unallocated; callers only
// index the group, never mutate it, so aliasing the adjacency is safe.
func (r *Router) filterGroup(links []topo.LinkID, now sim.Time) []topo.LinkID {
	for i, l := range links {
		if !r.inGroup(l, now) {
			out := make([]topo.LinkID, i, len(links))
			copy(out, links[:i])
			for _, l := range links[i+1:] {
				if r.inGroup(l, now) {
					out = append(out, l)
				}
			}
			return out
		}
	}
	return links
}

// sortLinks is an insertion sort: groups are small (tens of members at
// most) and sort.Slice's reflection-based swapper allocates on every call
// in the path-walk hot loop.
func sortLinks(ls []topo.LinkID) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// GroupSizeAtToR returns the ECMP fan-out a host faces at its ToR — the
// search space of Table 1 for this fabric.
func (r *Router) GroupSizeAtToR(host, nic, port int) int {
	access := r.T.Hosts[host].NICs[nic].Ports[port]
	tor := r.T.Link(access).To
	return len(r.T.Node(tor).Uplinks)
}

package metrics

import (
	"testing"
	"testing/quick"
)

func TestRingUnbounded(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5000; i++ {
		r.Add(float64(i), float64(i))
	}
	if r.Len() != 5000 {
		t.Fatalf("unbounded ring evicted: len = %d", r.Len())
	}
	if r.Cap() != 0 {
		t.Errorf("Cap = %d, want 0", r.Cap())
	}
	if r.At(0).V != 0 || r.At(4999).V != 4999 {
		t.Error("unbounded ring reordered samples")
	}
}

func TestRingBoundedEviction(t *testing.T) {
	r := NewRing(4)
	r.Name = "q"
	for i := 0; i < 10; i++ {
		r.Add(float64(i), float64(i*10))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	want := []float64{60, 70, 80, 90}
	for i, w := range want {
		if got := r.At(i).V; got != w {
			t.Errorf("At(%d).V = %v, want %v", i, got, w)
		}
	}
	s := r.Series()
	if s.Name != "q" || s.Len() != 4 || s.Points[0].V != 60 {
		t.Errorf("Series() = %+v", s)
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Add(1, 10)
	r.Add(2, 20)
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	pts := r.Points()
	if len(pts) != 2 || pts[0].V != 10 || pts[1].V != 20 {
		t.Errorf("Points() = %v", pts)
	}
}

// TestRingNeverDropsRecentWindow is the bounding property: after any
// sequence of n adds into a ring of capacity c, the ring holds exactly the
// last min(n, c) samples, in order.
func TestRingNeverDropsRecentWindow(t *testing.T) {
	prop := func(capRaw uint8, nRaw uint16) bool {
		c := int(capRaw)%64 + 1 // capacity 1..64
		n := int(nRaw) % 512    // adds 0..511
		r := NewRing(c)
		for i := 0; i < n; i++ {
			r.Add(float64(i), float64(i))
		}
		keep := n
		if keep > c {
			keep = c
		}
		if r.Len() != keep {
			return false
		}
		first := n - keep
		for i := 0; i < keep; i++ {
			if p := r.At(i); p.V != float64(first+i) || p.T != float64(first+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if d.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	if d.CDFAt(1) != 0 {
		t.Error("empty CDFAt should be 0")
	}
	if d.CDF() != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestDistSingleSample(t *testing.T) {
	var d Dist
	d.Add(3.5)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := d.Percentile(p); got != 3.5 {
			t.Errorf("Percentile(%v) = %v, want 3.5", p, got)
		}
	}
	if got := d.CDFAt(3.5); got != 1 {
		t.Errorf("CDFAt(sample) = %v, want 1", got)
	}
	if got := d.CDFAt(3.4); got != 0 {
		t.Errorf("CDFAt(below) = %v, want 0", got)
	}
	cdf := d.CDF()
	if len(cdf) != 1 || cdf[0].T != 3.5 || cdf[0].V != 1 {
		t.Errorf("CDF() = %v", cdf)
	}
}

func TestSeriesMaxMinAllNegative(t *testing.T) {
	var s Series
	for _, v := range []float64{-5, -1, -9} {
		s.Add(0, v)
	}
	if got := s.Max(); got != -1 {
		t.Errorf("Max = %v, want -1", got)
	}
	if got := s.Min(); got != -9 {
		t.Errorf("Min = %v, want -9", got)
	}
}

func TestSeriesMaxMinEmpty(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series Max/Min should be 0")
	}
}

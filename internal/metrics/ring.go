package metrics

// Ring is a bounded time series: it keeps the most recent Cap samples and
// overwrites the oldest once full. It backs periodic telemetry samplers,
// where memory must stay bounded over arbitrarily long runs but the most
// recent window must never be dropped.
type Ring struct {
	Name string

	cap  int // 0 = unbounded
	buf  []Point
	head int // index of the oldest sample once full
	n    int
}

// NewRing returns a ring keeping the last cap samples; cap <= 0 means
// unbounded (the ring degenerates to an append-only series).
func NewRing(cap int) *Ring {
	if cap < 0 {
		cap = 0
	}
	r := &Ring{cap: cap}
	if cap > 0 {
		r.buf = make([]Point, 0, cap)
	}
	return r
}

// Cap returns the bound (0 = unbounded).
func (r *Ring) Cap() int { return r.cap }

// Add appends a sample, evicting the oldest when full.
func (r *Ring) Add(t, v float64) {
	p := Point{T: t, V: v}
	if r.cap == 0 || r.n < r.cap {
		r.buf = append(r.buf, p)
		r.n++
		return
	}
	r.buf[r.head] = p
	r.head = (r.head + 1) % r.n
}

// Len returns the number of retained samples.
func (r *Ring) Len() int { return r.n }

// At returns the i-th retained sample, oldest first.
func (r *Ring) At(i int) Point {
	if r.cap > 0 && r.n == r.cap {
		return r.buf[(r.head+i)%r.n]
	}
	return r.buf[i]
}

// Points returns the retained samples oldest-first as a fresh slice.
func (r *Ring) Points() []Point {
	out := make([]Point, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Series unrolls the ring into an ordinary Series named after the ring.
func (r *Ring) Series() *Series {
	return &Series{Name: r.Name, Points: r.Points()}
}

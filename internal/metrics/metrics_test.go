package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if s.Mean() != 4.5 {
		t.Fatalf("Mean = %v, want 4.5", s.Mean())
	}
	if s.Max() != 9 || s.Min() != 0 {
		t.Fatalf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	if got := s.MeanAfter(5); got != 7 {
		t.Fatalf("MeanAfter(5) = %v, want 7", got)
	}
	if n := len(s.Window(2, 5)); n != 3 {
		t.Fatalf("Window(2,5) has %d points, want 3", n)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.MeanAfter(0) != 0 {
		t.Fatal("empty series stats should all be 0")
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i)*0.1, 2.0) // 10s of samples at 10Hz, constant value
	}
	d := s.Downsample(1.0)
	if d.Len() != 10 {
		t.Fatalf("Downsample bins = %d, want 10", d.Len())
	}
	for _, p := range d.Points {
		if p.V != 2.0 {
			t.Fatalf("bin mean = %v, want 2", p.V)
		}
	}
	// Bin centers must be sorted.
	if !sort.SliceIsSorted(d.Points, func(i, j int) bool { return d.Points[i].T < d.Points[j].T }) {
		t.Fatal("downsampled points not time-ordered")
	}
}

func TestPercentile(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if p := d.Percentile(0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := d.Percentile(100); p != 100 {
		t.Fatalf("P100 = %v", p)
	}
	if p := d.Percentile(50); math.Abs(p-50.5) > 0.01 {
		t.Fatalf("P50 = %v, want 50.5", p)
	}
}

func TestCDF(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 1, 2, 3} {
		d.Add(v)
	}
	if got := d.CDFAt(1); got != 0.5 {
		t.Fatalf("CDFAt(1) = %v, want 0.5", got)
	}
	if got := d.CDFAt(3); got != 1 {
		t.Fatalf("CDFAt(3) = %v, want 1", got)
	}
	if got := d.CDFAt(0); got != 0 {
		t.Fatalf("CDFAt(0) = %v, want 0", got)
	}
	pts := d.CDF()
	if len(pts) != 3 {
		t.Fatalf("CDF points = %d, want 3 distinct", len(pts))
	}
	if pts[len(pts)-1].V != 1 {
		t.Fatal("CDF must end at 1")
	}
}

// Property: percentiles are monotone in p and bounded by the sample range.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var d Dist
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		if d.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return d.Percentile(0) <= d.Percentile(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGbps(t *testing.T) {
	if got := Gbps(4e11, 1); got != 400 {
		t.Fatalf("Gbps = %v, want 400", got)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("Gbps with zero time must be 0")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[float64]string{
		1 << 20:       "1M",
		4 << 20:       "4M",
		1 << 30:       "1G",
		4 << 30:       "4G",
		512:           "512B",
		1536:          "1.5K",
		256 * 1 << 20: "256M",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDistAddN(t *testing.T) {
	var d Dist
	d.AddN(5, 3)
	if d.Len() != 3 || d.Mean() != 5 {
		t.Fatalf("AddN: len=%d mean=%v", d.Len(), d.Mean())
	}
}

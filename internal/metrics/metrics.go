// Package metrics provides the measurement primitives shared by every
// experiment harness: time series, distributions (CDF/percentiles), and
// simple counters. All types are plain in-memory values; formatting for the
// benchmark tables lives with the harness, not here.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Point is one sample of a time series: a value observed at virtual time T
// (seconds since experiment start).
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series. The zero value is ready to use.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the arithmetic mean of the values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum value, or 0 if empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum value, or 0 if empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// MeanAfter returns the mean of values with T >= t0; useful for skipping
// warm-up transients.
func (s *Series) MeanAfter(t0 float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= t0 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Window returns the samples with t0 <= T < t1.
func (s *Series) Window(t0, t1 float64) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.T >= t0 && p.T < t1 {
			out = append(out, p)
		}
	}
	return out
}

// Downsample buckets the series into fixed-width time bins and returns one
// point per bin holding the bin mean. Mirrors the paper's "averaged every
// 10s" plots.
func (s *Series) Downsample(binWidth float64) *Series {
	if binWidth <= 0 || len(s.Points) == 0 {
		return &Series{Name: s.Name}
	}
	type agg struct {
		sum float64
		n   int
	}
	bins := map[int]*agg{}
	for _, p := range s.Points {
		b := int(p.T / binWidth)
		a := bins[b]
		if a == nil {
			a = &agg{}
			bins[b] = a
		}
		a.sum += p.V
		a.n++
	}
	keys := make([]int, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := &Series{Name: s.Name}
	for _, k := range keys {
		a := bins[k]
		out.Add((float64(k)+0.5)*binWidth, a.sum/float64(a.n))
	}
	return out
}

// Dist is a collection of scalar samples supporting percentile and CDF
// queries. The zero value is ready to use.
type Dist struct {
	Name    string
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// AddN appends v n times (for weighted observations).
func (d *Dist) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		d.Add(v)
	}
}

// Len returns the sample count.
func (d *Dist) Len() int { return len(d.samples) }

func (d *Dist) sortSamples() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation, or 0 if empty.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := p / 100 * float64(len(d.samples)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(d.samples) {
		return d.samples[lo]
	}
	return d.samples[lo]*(1-frac) + d.samples[lo+1]*frac
}

// Mean returns the sample mean, or 0 if empty.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// CDFAt returns the empirical CDF evaluated at x: P(sample <= x).
func (d *Dist) CDFAt(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	n := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(d.samples))
}

// CDF returns (x, F(x)) pairs at each distinct sample value, suitable for
// plotting the empirical CDF.
func (d *Dist) CDF() []Point {
	if len(d.samples) == 0 {
		return nil
	}
	d.sortSamples()
	var out []Point
	n := float64(len(d.samples))
	for i, v := range d.samples {
		//hpnlint:allow floateq -- collapsing bit-identical duplicates in sorted samples is exact by intent
		if i+1 < len(d.samples) && d.samples[i+1] == v {
			continue // emit only the last occurrence of each value
		}
		out = append(out, Point{T: v, V: float64(i+1) / n})
	}
	return out
}

// Counter is a named monotonic counter.
type Counter struct {
	Name  string
	Value float64
}

// Add increments the counter.
func (c *Counter) Add(v float64) { c.Value += v }

// Gbps converts bits to Gbps over the given number of seconds.
func Gbps(bits, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bits / seconds / 1e9
}

// HumanBytes formats a byte count the way the paper labels message sizes
// (1M, 64M, 1G, ...).
func HumanBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return trimZero(b/(1<<30)) + "G"
	case b >= 1<<20:
		return trimZero(b/(1<<20)) + "M"
	case b >= 1<<10:
		return trimZero(b/(1<<10)) + "K"
	default:
		return trimZero(b) + "B"
	}
}

func trimZero(v float64) string {
	//hpnlint:allow floateq -- formatting choice: exact integers render without a decimal point
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// Package inband implements in-band path telemetry: the per-flow, per-hop
// record stream an INT-capable fabric would stamp into packet metadata and
// export from the last hop. Where the flow log answers "how did this flow
// do end to end", the in-band stream answers the paper's per-link
// questions: which flows collided on which link, what each ECMP stage
// decided (switch seed, group size, bucket), and how much queue pressure a
// flow sat behind at every hop.
//
// The stream is produced by netsim (one Record per traversed link per path
// generation of every flow) into a Collector, and exported as deterministic
// TSV and JSON artifacts through the telemetry registry. cmd/hpnview
// consumes the TSV offline for fabric forensics: utilization heatmaps,
// contended-link attribution, observed-path ECMP imbalance, and hash
// polarization detection (see analyze.go).
package inband

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpn/internal/route"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Record is one hop of one path generation of one flow: the unit of
// in-band telemetry. A flow that is never rerouted contributes exactly one
// generation (Epoch 0); every reroute closes the current generation and
// opens the next.
type Record struct {
	// Flow is the netsim flow ID; Epoch counts the flow's path generations
	// (0 = the initial route); Seq is the hop index within the path.
	Flow  int64
	Epoch int
	Seq   int

	// Link is the directed link ID; Name is "fromNode>toNode" and Tier is
	// "fromKind-toKind" (e.g. "tor-agg"), so offline analysis needs no
	// topology file.
	Link int
	Name string
	Tier string

	// EnterNS/ExitNS bound the generation's lifetime in virtual time: the
	// span during which the flow occupied this hop.
	EnterNS int64
	ExitNS  int64

	// Bits is the time-weighted bandwidth attribution: the integral of the
	// flow's allocated rate over the generation — the traffic this flow
	// actually pushed through this link.
	Bits float64
	// QueueByteS is the queue-pressure residency: the integral of the
	// link's queue proxy (bytes) over the generation, i.e. byte-seconds of
	// standing queue the flow sat behind at this hop.
	QueueByteS float64

	// ECMP decision stamped by the switch that chose this link. Hashed is
	// false for the access and delivery links, which involve no hashing.
	Hashed   bool
	Node     string
	Seed     uint64
	Group    int
	Bucket   int
	PerPort  bool
	Fallback bool
	Down     bool

	// Tuple is the flow's packed 5-tuple word (hashing.FiveTuple.Word) —
	// the hash input behind every bucket above. Analyses that reason about
	// hash functions (polarization) dedupe on it, because one long-lived
	// connection re-observed many times says nothing new about the hash.
	Tuple uint64
}

// Collector accumulates in-band records for one simulation.
type Collector struct {
	top *topo.Topology

	// max bounds the record buffer (0 = unbounded); records past the cap
	// are counted as dropped rather than kept.
	max     int
	recs    []Record
	dropped int

	// trace, when set, receives one instant event per flushed generation.
	trace *telemetry.Tracer
}

// NewCollector returns a collector over top retaining at most max records
// (0 = unbounded).
func NewCollector(top *topo.Topology, max int) *Collector {
	return &Collector{top: top, max: max, recs: make([]Record, 0, 1024)}
}

// AttachTracer mirrors generation flushes into the trace as instants.
func (c *Collector) AttachTracer(t *telemetry.Tracer) { c.trace = t }

// Records returns the retained records in emission order.
func (c *Collector) Records() []Record { return c.recs }

// Dropped returns how many records were discarded past the cap.
func (c *Collector) Dropped() int { return c.dropped }

// AppendReplayed appends pre-shifted records from a memoized window,
// honoring the retention cap exactly as live flushes do. No trace instant
// is emitted here: the replayed trace stream already carries the original
// path_flush events.
func (c *Collector) AppendReplayed(recs []Record) {
	for i := range recs {
		if c.max > 0 && len(c.recs) >= c.max {
			c.dropped += len(recs) - i
			return
		}
		c.recs = append(c.recs, recs[i])
	}
}

// FlushFlow closes one path generation of a flow: it appends one Record
// per hop, labeling each link from the topology and copying the per-hop
// accumulators. hops, bits and queueBS are parallel to the path walked;
// bits/queueBS may be shorter (e.g. a partial path), in which case missing
// entries read as zero.
func (c *Collector) FlushFlow(flowID int64, epoch int, tuple uint64, enterNS, exitNS int64, hops []route.HopDecision, bits, queueBS []float64) {
	for i, h := range hops {
		if c.max > 0 && len(c.recs) >= c.max {
			c.dropped += len(hops) - i
			break
		}
		l := c.top.Link(h.Link)
		from, to := c.top.Node(l.From), c.top.Node(l.To)
		r := Record{
			Flow: flowID, Epoch: epoch, Seq: i, Tuple: tuple,
			Link:    int(h.Link),
			Name:    from.Name + ">" + to.Name,
			Tier:    from.Kind.String() + "-" + to.Kind.String(),
			EnterNS: enterNS, ExitNS: exitNS,
			Hashed: h.Hashed, Seed: h.Seed,
			Group: h.Group, Bucket: h.Bucket,
			PerPort: h.PerPort, Fallback: h.Fallback, Down: h.Down,
		}
		if h.Hashed {
			r.Node = c.top.Node(h.Node).Name
		}
		if i < len(bits) {
			r.Bits = bits[i]
		}
		if i < len(queueBS) {
			r.QueueByteS = queueBS[i]
		}
		c.recs = append(c.recs, r)
	}
	if c.trace != nil {
		c.trace.Instant(exitNS, "inband", "path_flush", telemetry.TidInband,
			telemetry.Arg{K: "flow", V: flowID},
			telemetry.Arg{K: "epoch", V: epoch},
			telemetry.Arg{K: "hops", V: len(hops)})
	}
}

// tsvHeader is the artifact schema, documented in README.md. Field order
// is part of the determinism contract.
const tsvHeader = "flow\tepoch\tseq\tlink\tname\ttier\tenter_ns\texit_ns\tbits\tqueue_bytesec\thashed\tnode\tseed\tgroup\tbucket\tperport\tfallback\tdown\ttuple\n"

// WriteTSV dumps every retained record as the per-hop TSV artifact.
func (c *Collector) WriteTSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(tsvHeader)
	for i := range c.recs {
		appendTSV(&b, &c.recs[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func appendTSV(b *strings.Builder, r *Record) {
	fmt.Fprintf(b, "%d\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s\t%v\t%s\t%d\t%d\t%d\t%v\t%v\t%v\t%d\n",
		r.Flow, r.Epoch, r.Seq, r.Link, r.Name, r.Tier, r.EnterNS, r.ExitNS,
		strconv.FormatFloat(r.Bits, 'g', -1, 64),
		strconv.FormatFloat(r.QueueByteS, 'g', -1, 64),
		r.Hashed, r.Node, r.Seed, r.Group, r.Bucket, r.PerPort, r.Fallback, r.Down, r.Tuple)
}

// WriteJSON dumps the records as a JSON array, hand-rendered with a fixed
// field order and 'g'-format floats so the bytes are deterministic and
// diffable across same-seed runs.
func (c *Collector) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[\n")
	for i := range c.recs {
		r := &c.recs[i]
		fmt.Fprintf(&b, `{"flow":%d,"epoch":%d,"seq":%d,"link":%d,"name":%q,"tier":%q,`+
			`"enter_ns":%d,"exit_ns":%d,"bits":%s,"queue_bytesec":%s,`+
			`"hashed":%v,"node":%q,"seed":%d,"group":%d,"bucket":%d,"perport":%v,"fallback":%v,"down":%v,"tuple":%d}`,
			r.Flow, r.Epoch, r.Seq, r.Link, r.Name, r.Tier,
			r.EnterNS, r.ExitNS,
			strconv.FormatFloat(r.Bits, 'g', -1, 64),
			strconv.FormatFloat(r.QueueByteS, 'g', -1, 64),
			r.Hashed, r.Node, r.Seed, r.Group, r.Bucket, r.PerPort, r.Fallback, r.Down, r.Tuple)
		if i+1 < len(c.recs) {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseTSV reads records back from the TSV artifact — the ingestion side
// of cmd/hpnview. It accepts exactly the schema WriteTSV produces.
func ParseTSV(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0]+"\n" != tsvHeader {
		return nil, fmt.Errorf("inband: not an in-band TSV artifact (bad header)")
	}
	var out []Record
	for ln, line := range lines[1:] {
		if line == "" {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 19 {
			return nil, fmt.Errorf("inband: line %d: %d fields, want 19", ln+2, len(f))
		}
		var rec Record
		var errs []error
		geti := func(s string) int {
			v, e := strconv.Atoi(s)
			errs = append(errs, e)
			return v
		}
		geti64 := func(s string) int64 {
			v, e := strconv.ParseInt(s, 10, 64)
			errs = append(errs, e)
			return v
		}
		getf := func(s string) float64 {
			v, e := strconv.ParseFloat(s, 64)
			errs = append(errs, e)
			return v
		}
		getb := func(s string) bool {
			v, e := strconv.ParseBool(s)
			errs = append(errs, e)
			return v
		}
		rec.Flow = geti64(f[0])
		rec.Epoch = geti(f[1])
		rec.Seq = geti(f[2])
		rec.Link = geti(f[3])
		rec.Name = f[4]
		rec.Tier = f[5]
		rec.EnterNS = geti64(f[6])
		rec.ExitNS = geti64(f[7])
		rec.Bits = getf(f[8])
		rec.QueueByteS = getf(f[9])
		rec.Hashed = getb(f[10])
		rec.Node = f[11]
		seed, e := strconv.ParseUint(f[12], 10, 64)
		errs = append(errs, e)
		rec.Seed = seed
		rec.Group = geti(f[13])
		rec.Bucket = geti(f[14])
		rec.PerPort = getb(f[15])
		rec.Fallback = getb(f[16])
		rec.Down = getb(f[17])
		tuple, e := strconv.ParseUint(f[18], 10, 64)
		errs = append(errs, e)
		rec.Tuple = tuple
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("inband: line %d: %v", ln+2, e)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

package inband

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hpn/internal/hashing"
	"hpn/internal/route"
	"hpn/internal/topo"
)

// observedPath walks one cross-segment path with in-band observation on and
// returns the topology, decisions, and path length.
func observedPath(t *testing.T, sport uint16) (*topo.Topology, []route.HopDecision) {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	r := route.New(top)
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	tu := hashing.FiveTuple{SrcAddr: src.Addr(), DstAddr: dst.Addr(), SrcPort: sport, DstPort: 4791, Proto: 17}
	var hops []route.HopDecision
	p, bh, err := r.PathObserved(src, dst, 0, tu, 0, func(d route.HopDecision) { hops = append(hops, d) })
	if err != nil || bh {
		t.Fatalf("path err=%v blackholed=%v", err, bh)
	}
	if len(hops) != len(p) {
		t.Fatalf("observed %d decisions for a %d-link path", len(hops), len(p))
	}
	for i, d := range hops {
		if d.Link != p[i] {
			t.Fatalf("decision %d names link %d, path has %d", i, d.Link, p[i])
		}
	}
	return top, hops
}

func TestPathObservedDecisions(t *testing.T) {
	_, hops := observedPath(t, 1000)
	// Cross-segment: access (unhashed), ToR->Agg (hashed up), Agg->ToR
	// (hashed down), ToR->host (unhashed delivery).
	if len(hops) != 4 {
		t.Fatalf("cross-segment path has %d hops, want 4", len(hops))
	}
	if hops[0].Hashed || hops[0].Down {
		t.Errorf("access hop misclassified: %+v", hops[0])
	}
	if !hops[1].Hashed || hops[1].Down || hops[1].Group < 2 {
		t.Errorf("ToR uplink hop misclassified: %+v", hops[1])
	}
	if !hops[2].Hashed || !hops[2].Down {
		t.Errorf("Agg downlink hop misclassified: %+v", hops[2])
	}
	if hops[3].Hashed || !hops[3].Down {
		t.Errorf("delivery hop misclassified: %+v", hops[3])
	}
	for i, d := range hops[1:3] {
		if d.Bucket < 0 || d.Bucket >= d.Group {
			t.Errorf("hashed hop %d bucket %d outside group %d", i+1, d.Bucket, d.Group)
		}
	}
}

func TestCollectorFlushAndTSVRoundTrip(t *testing.T) {
	top, hops := observedPath(t, 1000)
	c := NewCollector(top, 0)
	bits := []float64{1.5e9, 1.5e9, 1.5e9, 1.5e9}
	qbs := []float64{0, 12.25, 0.5, 0}
	c.FlushFlow(7, 1, 0xfeed, 1000, 9000, hops, bits, qbs)

	recs := c.Records()
	if len(recs) != len(hops) {
		t.Fatalf("%d records, want %d", len(recs), len(hops))
	}
	for i, r := range recs {
		if r.Flow != 7 || r.Epoch != 1 || r.Seq != i || r.Tuple != 0xfeed || r.EnterNS != 1000 || r.ExitNS != 9000 {
			t.Fatalf("record %d identity fields wrong: %+v", i, r)
		}
		if r.Bits != bits[i] || r.QueueByteS != qbs[i] {
			t.Fatalf("record %d accumulators wrong: %+v", i, r)
		}
		if r.Name == "" || !strings.Contains(r.Name, ">") || !strings.Contains(r.Tier, "-") {
			t.Fatalf("record %d unlabeled: %+v", i, r)
		}
		if r.Hashed && r.Node == "" {
			t.Fatalf("hashed record %d has no deciding node: %+v", i, r)
		}
	}

	var buf bytes.Buffer
	if err := c.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, recs) {
		t.Fatalf("TSV round trip mutated records:\n got %+v\nwant %+v", parsed, recs)
	}
}

func TestCollectorShortAccumulators(t *testing.T) {
	top, hops := observedPath(t, 1001)
	c := NewCollector(top, 0)
	// bits/queueBS shorter than the path (partial integration): missing
	// entries read as zero rather than panicking.
	c.FlushFlow(1, 0, 1, 0, 10, hops, []float64{5}, nil)
	recs := c.Records()
	if recs[0].Bits != 5 || recs[1].Bits != 0 || recs[0].QueueByteS != 0 {
		t.Fatalf("short accumulators misapplied: %+v", recs[:2])
	}
}

func TestCollectorCapDrops(t *testing.T) {
	top, hops := observedPath(t, 1002)
	c := NewCollector(top, len(hops)+1)
	c.FlushFlow(1, 0, 1, 0, 10, hops, nil, nil)
	c.FlushFlow(2, 0, 2, 0, 10, hops, nil, nil)
	if len(c.Records()) != len(hops)+1 {
		t.Fatalf("cap not enforced: %d records retained", len(c.Records()))
	}
	if c.Dropped() != len(hops)-1 {
		t.Fatalf("dropped = %d, want %d", c.Dropped(), len(hops)-1)
	}
}

func TestWriteTSVEmpty(t *testing.T) {
	top, err := topo.BuildHPN(topo.SmallHPN(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(top, 0)
	var buf bytes.Buffer
	if err := c.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != tsvHeader {
		t.Fatalf("empty TSV = %q, want header only", buf.String())
	}
	recs, err := ParseTSV(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 {
		t.Fatalf("parsing empty artifact: recs=%d err=%v", len(recs), err)
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	top, hops := observedPath(t, 1003)
	c := NewCollector(top, 0)
	c.FlushFlow(3, 0, 3, 0, 10, hops, nil, nil)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if len(parsed) != len(hops) {
		t.Fatalf("JSON holds %d records, want %d", len(parsed), len(hops))
	}
	if parsed[0]["flow"] != float64(3) || parsed[0]["seq"] != float64(0) {
		t.Fatalf("JSON record 0 fields wrong: %v", parsed[0])
	}
}

func TestParseTSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                      // no header
		"flow\tepoch\n1\t2\n",   // wrong header
		tsvHeader + "1\t2\t3\n", // wrong field count
		tsvHeader + strings.Repeat("x\t", 18) + "x\n", // non-numeric fields
	}
	for i, in := range cases {
		if _, err := ParseTSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: ParseTSV accepted malformed input %q", i, in)
		}
	}
}

// rec builds a minimal synthetic record for the analyzers.
func rec(flow int64, seq, link int, tier string, bits, q float64) Record {
	return Record{Flow: flow, Seq: seq, Link: link, Name: "n" + tier, Tier: tier, Bits: bits, QueueByteS: q}
}

func TestLinkUsageTableAndTopContended(t *testing.T) {
	recs := []Record{
		rec(1, 0, 10, "host-tor", 4e9, 0),
		rec(2, 0, 10, "host-tor", 2e9, 3),
		rec(1, 1, 20, "tor-agg", 1e9, 100),
		rec(3, 0, 30, "tor-agg", 9e9, 0), // single flow, no queue: not contended
	}
	usage := LinkUsageTable(recs)
	if len(usage) != 3 {
		t.Fatalf("%d links, want 3", len(usage))
	}
	if usage[0].Link != 10 || usage[0].Bits != 6e9 || usage[0].Queue != 3 {
		t.Fatalf("link 10 aggregation wrong: %+v", usage[0])
	}
	if !reflect.DeepEqual(usage[0].Flows, []int64{1, 2}) {
		t.Fatalf("link 10 flow set = %v, want [1 2]", usage[0].Flows)
	}

	top := TopContended(usage, 10)
	if len(top) != 2 {
		t.Fatalf("%d contended links, want 2 (single uncontended flow skipped)", len(top))
	}
	if top[0].Link != 20 || top[1].Link != 10 {
		t.Fatalf("contention ranking wrong: %+v", top)
	}
	if got := TopContended(usage, 1); len(got) != 1 || got[0].Link != 20 {
		t.Fatalf("top-k truncation wrong: %+v", got)
	}
}

func TestECMPImbalance(t *testing.T) {
	var recs []Record
	// Node "a", group 4: every observation lands in bucket 0 — maximal skew.
	for i := 0; i < 8; i++ {
		recs = append(recs, Record{Flow: int64(i), Hashed: true, Node: "a", Group: 4, Bucket: 0})
	}
	// Node "b", group 2: perfectly even.
	for i := 0; i < 8; i++ {
		recs = append(recs, Record{Flow: int64(i), Hashed: true, Node: "b", Group: 2, Bucket: i % 2})
	}
	// Fallback and unhashed records are excluded.
	recs = append(recs,
		Record{Flow: 99, Hashed: true, Fallback: true, Node: "a", Group: 4, Bucket: 1},
		Record{Flow: 99, Hashed: false, Node: "c", Group: 4, Bucket: 1},
	)
	groups := ECMPImbalance(recs)
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	if groups[0].Node != "a" || groups[0].Total != 8 || groups[0].Ratio != 4 {
		t.Fatalf("skewed group scored wrong: %+v", groups[0])
	}
	if groups[1].Node != "b" || groups[1].Ratio != 1 {
		t.Fatalf("even group scored wrong: %+v", groups[1])
	}
}

// cascade synthesizes flows (each a distinct 5-tuple) through two
// consecutive hashed stages with bucketB computed from bucketA by pick.
func cascade(n, groupA, groupB int, pick func(flow, bucketA int) int) []Record {
	var recs []Record
	for f := 0; f < n; f++ {
		a := f % groupA
		recs = append(recs,
			Record{Flow: int64(f), Seq: 1, Tuple: uint64(f + 1), Hashed: true, Node: "tor", Group: groupA, Bucket: a},
			Record{Flow: int64(f), Seq: 2, Tuple: uint64(f + 1), Hashed: true, Node: "agg", Group: groupB, Bucket: pick(f, a)},
		)
	}
	return recs
}

func TestDetectPolarization(t *testing.T) {
	// Shared-seed degenerate cascade: downstream bucket is a function of
	// the upstream bucket alone (H mod 2 determined by H mod 4).
	pol := cascade(64, 4, 2, func(_, a int) int { return a % 2 })
	pairs := DetectPolarization(pol)
	if len(pairs) != 1 {
		t.Fatalf("%d stage pairs, want 1", len(pairs))
	}
	p := pairs[0]
	if p.NodeA != "tor" || p.NodeB != "agg" || p.Total != 64 {
		t.Fatalf("pair misassembled: %+v", p)
	}
	if !p.Polarized() || !AnyPolarized(pairs) {
		t.Fatalf("degenerate cascade not flagged: score=%.2f conditioned=%d", p.Score, p.Conditioned)
	}

	// Independent cascade: downstream bucket varies within each upstream
	// bucket's row.
	ind := cascade(64, 4, 2, func(f, _ int) int { return (f / 4) % 2 })
	pairs = DetectPolarization(ind)
	if len(pairs) != 1 || pairs[0].Polarized() || AnyPolarized(pairs) {
		t.Fatalf("independent cascade falsely flagged: %+v", pairs)
	}

	// Below the mass floor no verdict is offered.
	few := cascade(4, 4, 2, func(_, a int) int { return a % 2 })
	pairs = DetectPolarization(few)
	if len(pairs) == 1 && pairs[0].Polarized() {
		t.Fatalf("verdict offered on %d conditioned observations", pairs[0].Conditioned)
	}

	// Non-adjacent hashed hops (Seq gap) never pair.
	gap := []Record{
		{Flow: 1, Seq: 1, Hashed: true, Node: "tor", Group: 4, Bucket: 0},
		{Flow: 1, Seq: 3, Hashed: true, Node: "core", Group: 4, Bucket: 1},
	}
	if got := DetectPolarization(gap); len(got) != 0 {
		t.Fatalf("non-adjacent stages paired: %+v", got)
	}

	// Per-port (§7) hops are engineered rotation, not polarization.
	pp := cascade(64, 4, 2, func(_, a int) int { return a % 2 })
	for i := range pp {
		pp[i].PerPort = true
	}
	if got := DetectPolarization(pp); len(got) != 0 {
		t.Fatalf("per-port hops scored for polarization: %+v", got)
	}
}

// TestDetectPolarizationDedupesTuples is the long-lived-connection case: one
// ring connection observed over many sends (distinct flow IDs, same tuple)
// is a single piece of evidence, never a degeneracy verdict.
func TestDetectPolarizationDedupesTuples(t *testing.T) {
	var recs []Record
	for f := 0; f < 64; f++ {
		recs = append(recs,
			Record{Flow: int64(f), Seq: 1, Tuple: 42, Hashed: true, Node: "tor", Group: 4, Bucket: 1},
			Record{Flow: int64(f), Seq: 2, Tuple: 42, Hashed: true, Node: "agg", Group: 2, Bucket: 0},
		)
	}
	pairs := DetectPolarization(recs)
	if len(pairs) != 1 {
		t.Fatalf("%d stage pairs, want 1", len(pairs))
	}
	if pairs[0].Total != 1 {
		t.Fatalf("repeated tuple counted %d times, want 1", pairs[0].Total)
	}
	if pairs[0].Polarized() || AnyPolarized(pairs) {
		t.Fatal("single connection flagged as polarization")
	}
}

func TestWriteHeatmapCSV(t *testing.T) {
	usage := LinkUsageTable([]Record{
		rec(1, 0, 10, "host-tor", 4e9, 0),
		rec(1, 1, 20, "tor-agg", 2e9, 0),
		rec(2, 1, 21, "tor-agg", 1e9, 0),
	})
	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, usage); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "tier,l0,l1\n") {
		t.Fatalf("heatmap header wrong:\n%s", out)
	}
	for _, want := range []string{"host-tor,4,\n", "tor-agg,2,1\n", "legend_tier,slot,link,name\n", "tor-agg,1,21,ntor-agg\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heatmap missing %q:\n%s", want, out)
		}
	}
}

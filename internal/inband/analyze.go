package inband

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hpn/internal/hashing"
)

// This file is the offline half of the in-band telemetry: the fabric
// forensics cmd/hpnview runs over a collected record stream. Everything
// works from []Record alone (typically via ParseTSV) — no topology object
// is needed, because records carry link names, tiers and hash parameters.

// LinkUsage aggregates one link's observed traffic across all flows.
type LinkUsage struct {
	Link  int
	Name  string
	Tier  string
	Bits  float64
	Queue float64 // byte-seconds of queue residency, summed over flows
	Flows []int64 // distinct flows observed on the link, ascending
}

// LinkUsageTable folds records into per-link usage, ordered by link ID.
func LinkUsageTable(recs []Record) []LinkUsage {
	idx := map[int]*LinkUsage{}
	flows := map[int]map[int64]bool{}
	for i := range recs {
		r := &recs[i]
		u := idx[r.Link]
		if u == nil {
			u = &LinkUsage{Link: r.Link, Name: r.Name, Tier: r.Tier}
			idx[r.Link] = u
			flows[r.Link] = map[int64]bool{}
		}
		u.Bits += r.Bits
		u.Queue += r.QueueByteS
		flows[r.Link][r.Flow] = true
	}
	ids := make([]int, 0, len(idx))
	for id := range idx {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]LinkUsage, 0, len(ids))
	for _, id := range ids {
		u := idx[id]
		fs := make([]int64, 0, len(flows[id]))
		for f := range flows[id] {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		u.Flows = fs
		out = append(out, *u)
	}
	return out
}

// WriteHeatmapCSV renders the tier × link utilization matrix: one row per
// tier, one column per link slot (links of the tier in ascending link-ID
// order), cell = gigabits attributed to that link. A legend row block
// below the matrix maps each (tier, slot) back to the link name, so the
// matrix stays numeric and plottable while remaining self-describing.
func WriteHeatmapCSV(w io.Writer, usage []LinkUsage) error {
	tiers := map[string][]LinkUsage{}
	for _, u := range usage {
		tiers[u.Tier] = append(tiers[u.Tier], u)
	}
	names := make([]string, 0, len(tiers))
	width := 0
	for t, links := range tiers {
		names = append(names, t)
		if len(links) > width {
			width = len(links)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("tier")
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, ",l%d", i)
	}
	b.WriteByte('\n')
	for _, t := range names {
		b.WriteString(t)
		links := tiers[t]
		for i := 0; i < width; i++ {
			b.WriteByte(',')
			if i < len(links) {
				b.WriteString(strconv.FormatFloat(links[i].Bits/1e9, 'g', -1, 64))
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nlegend_tier,slot,link,name\n")
	for _, t := range names {
		for i, u := range tiers[t] {
			fmt.Fprintf(&b, "%s,%d,%d,%s\n", t, i, u.Link, u.Name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TopContended returns the k most contended links — ranked by queue
// residency, then attributed bits, then link ID — with the flow sets that
// collided there. Links that never queued and carried a single flow are
// not contended and are skipped.
func TopContended(usage []LinkUsage, k int) []LinkUsage {
	cand := make([]LinkUsage, 0, len(usage))
	for _, u := range usage {
		if u.Queue > 0 || len(u.Flows) > 1 {
			cand = append(cand, u)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		if a.Queue > b.Queue {
			return true
		}
		if a.Queue < b.Queue {
			return false
		}
		if a.Bits > b.Bits {
			return true
		}
		if a.Bits < b.Bits {
			return false
		}
		return a.Link < b.Link
	})
	if k > 0 && len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// GroupImbalance is the observed-path load picture of one ECMP group: how
// the flows that traversed a switch's group of a given size actually
// spread over its buckets.
type GroupImbalance struct {
	Node    string
	Group   int   // group size
	Counts  []int // observations per bucket
	Total   int
	Ratio   float64 // hashing.Imbalance: max/mean (1.0 = perfectly even)
	PerPort bool
	Down    bool // group pointed toward the hosts
}

// ECMPImbalance folds hashed hops into per-(node, group-size) bucket
// histograms and scores each with hashing.Imbalance — the observed-path
// counterpart of the paper's Figure 13 ECMP skew. Fallback picks are
// excluded (they are failure handling, not steady-state hashing). Results
// are ordered by node name, then group size.
func ECMPImbalance(recs []Record) []GroupImbalance {
	type key struct {
		node    string
		group   int
		perPort bool
		down    bool
	}
	hist := map[key][]int{}
	for i := range recs {
		r := &recs[i]
		if !r.Hashed || r.Fallback || r.Group <= 0 || r.Bucket < 0 || r.Bucket >= r.Group {
			continue
		}
		k := key{r.Node, r.Group, r.PerPort, r.Down}
		if hist[k] == nil {
			hist[k] = make([]int, r.Group)
		}
		hist[k][r.Bucket]++
	}
	keys := make([]key, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		if keys[i].down != keys[j].down {
			return !keys[i].down
		}
		return !keys[i].perPort && keys[j].perPort
	})
	out := make([]GroupImbalance, 0, len(keys))
	for _, k := range keys {
		counts := hist[k]
		total := 0
		for _, c := range counts {
			total += c
		}
		out = append(out, GroupImbalance{
			Node: k.node, Group: k.group, Counts: counts, Total: total,
			Ratio: hashing.Imbalance(counts), PerPort: k.perPort, Down: k.down,
		})
	}
	return out
}

// StagePair is the polarization picture of one consecutive pair of ECMP
// stages: the joint distribution of (upstream bucket, downstream bucket)
// over every flow path that traversed switch A then switch B.
type StagePair struct {
	NodeA, NodeB   string
	GroupA, GroupB int
	// Counts[a][b] distinct 5-tuples observed taking upstream bucket a
	// then downstream bucket b (repeat traversals of one connection are
	// deduplicated).
	Counts [][]int
	Total  int
	// Score is the mean conditional bucket coverage: for each upstream
	// bucket with >= 2 observations, the distinct downstream buckets used
	// divided by the most that could have been used (min(GroupB, mass)),
	// weighted by mass. Independent hash functions score near 1; a
	// polarized (shared-seed) cascade collapses each row onto one
	// downstream bucket and scores ~1/GroupB.
	Score float64
	// Conditioned is the observation mass behind Score (rows with >= 2).
	Conditioned int
}

// Polarized applies the detection threshold: a stage pair with enough
// conditioned mass whose downstream choices are degenerate given the
// upstream bucket.
func (p *StagePair) Polarized() bool {
	return p.Conditioned >= polarizationMinMass && p.GroupB >= 2 && p.Score < polarizationThreshold
}

const (
	// polarizationThreshold separates degenerate conditional coverage
	// (shared seeds: exactly 1/min(GroupB, mass) <= 0.5) from independent
	// hashing (expected coverage >= 1 - 1/(2*GroupB) >= 0.75 at mass 2,
	// higher at larger mass).
	polarizationThreshold = 0.6
	// polarizationMinMass is the minimum conditioned observation count
	// before a verdict is offered; below it the coverage estimate is noise.
	polarizationMinMass = 8
)

// DetectPolarization reconstructs consecutive hashed stages from flow
// paths and scores each (switch A, switch B) cascade for hash
// polarization. Per-port hops are excluded: the §7 engineered rotation is
// deliberately non-uniform per tuple and must not count as "degenerate".
// Results are ordered by (NodeA, NodeB, GroupA, GroupB).
func DetectPolarization(recs []Record) []StagePair {
	// Group records by (flow, epoch), ordered by sequence, then walk
	// consecutive hashed hops.
	type fkey struct {
		flow  int64
		epoch int
	}
	bySeq := map[fkey][]*Record{}
	for i := range recs {
		r := &recs[i]
		if !r.Hashed || r.PerPort || r.Fallback || r.Group <= 0 {
			continue
		}
		k := fkey{r.Flow, r.Epoch}
		bySeq[k] = append(bySeq[k], r)
	}
	type pkey struct {
		nodeA, nodeB   string
		groupA, groupB int
	}
	pairs := map[pkey][][]int{}
	// One long-lived connection re-routed or re-observed across many sends
	// always hashes identically; counting it repeatedly would make ANY
	// deployment look degenerate. Each distinct hash input (5-tuple) counts
	// once per cell — the unit of evidence about the hash functions.
	type seenKey struct {
		pk               pkey
		tuple            uint64
		bucketA, bucketB int
	}
	seen := map[seenKey]bool{}
	// Map iteration feeds only the order-independent pair histograms;
	// each path's records were appended in record order and re-sorted by
	// Seq, and the dedup key includes the cell, so counts are a pure
	// reduction whatever order the paths are walked in.
	for _, hops := range bySeq {
		sort.Slice(hops, func(i, j int) bool { return hops[i].Seq < hops[j].Seq })
		for i := 0; i+1 < len(hops); i++ {
			a, b := hops[i], hops[i+1]
			if b.Seq != a.Seq+1 {
				continue // non-adjacent stages (unhashed hop between)
			}
			k := pkey{a.Node, b.Node, a.Group, b.Group}
			sk := seenKey{k, a.Tuple, a.Bucket, b.Bucket}
			if seen[sk] {
				continue
			}
			seen[sk] = true
			m := pairs[k]
			if m == nil {
				m = make([][]int, a.Group)
				for r := range m {
					m[r] = make([]int, b.Group)
				}
				pairs[k] = m
			}
			if a.Bucket < a.Group && b.Bucket < b.Group {
				m[a.Bucket][b.Bucket]++
			}
		}
	}
	keys := make([]pkey, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.nodeA != b.nodeA {
			return a.nodeA < b.nodeA
		}
		if a.nodeB != b.nodeB {
			return a.nodeB < b.nodeB
		}
		if a.groupA != b.groupA {
			return a.groupA < b.groupA
		}
		return a.groupB < b.groupB
	})
	out := make([]StagePair, 0, len(keys))
	for _, k := range keys {
		m := pairs[k]
		sp := StagePair{NodeA: k.nodeA, NodeB: k.nodeB, GroupA: k.groupA, GroupB: k.groupB, Counts: m}
		var weighted float64
		for _, row := range m {
			mass, distinct := 0, 0
			for _, c := range row {
				mass += c
				if c > 0 {
					distinct++
				}
			}
			sp.Total += mass
			if mass < 2 {
				continue // one observation always covers exactly one bucket
			}
			denom := k.groupB
			if mass < denom {
				denom = mass
			}
			weighted += float64(mass) * float64(distinct) / float64(denom)
			sp.Conditioned += mass
		}
		if sp.Conditioned > 0 {
			sp.Score = weighted / float64(sp.Conditioned)
		}
		out = append(out, sp)
	}
	return out
}

// AnyPolarized reports whether any stage pair trips the detector —
// the run-level verdict hpnview prints.
func AnyPolarized(pairs []StagePair) bool {
	for i := range pairs {
		if pairs[i].Polarized() {
			return true
		}
	}
	return false
}

package dualtor

import "hpn/internal/sim"

// Design names an access-layer design under reliability comparison.
type Design uint8

// The three access designs the paper compares.
const (
	SingleToR Design = iota
	StackedDualToR
	NonStackedDualToR
)

func (d Design) String() string {
	switch d {
	case SingleToR:
		return "single-ToR"
	case StackedDualToR:
		return "stacked dual-ToR"
	default:
		return "non-stacked dual-ToR"
	}
}

// ReliabilityParams drives the Monte-Carlo comparison. Rates are per rack
// (dual-ToR set) per month unless noted, taken from the paper's production
// statistics (§2.3, §4.1).
type ReliabilityParams struct {
	Months int
	Racks  int

	// ToRCrashPerMonth: 0.051% of ToR switches hit critical errors monthly.
	ToRCrashPerMonth float64
	// DataPlaneWedgePerMonth: data-plane-only failures (MMU overflow class)
	// with a live control plane; a fraction of critical ToR errors.
	DataPlaneWedgePerMonth float64
	// UpgradesPerMonth is the rolling-upgrade frequency per pair;
	// ISSUIncompatibleShare is the share of upgrades whose version diff
	// exceeds ISSU tolerance (70% per the paper); UpgradeOutageProb is the
	// probability an incompatible upgrade actually wedges the pair (most
	// are caught by canarying before fleet-wide rollout).
	UpgradesPerMonth      float64
	ISSUIncompatibleShare float64
	UpgradeOutageProb     float64
	// SyncLinkFailPerMonth is the inter-ToR stack cable failure rate.
	SyncLinkFailPerMonth float64

	Seed uint64
}

// DefaultReliabilityParams returns production-calibrated rates.
func DefaultReliabilityParams() ReliabilityParams {
	return ReliabilityParams{
		Months:                 36, // the paper's three-year failure window
		Racks:                  1000,
		ToRCrashPerMonth:       0.00051 * 2, // two ToRs per set
		DataPlaneWedgePerMonth: 0.0004,
		UpgradesPerMonth:       1.0 / 6, // a rolling upgrade every ~6 months
		ISSUIncompatibleShare:  0.70,
		UpgradeOutageProb:      0.05,
		SyncLinkFailPerMonth:   0.0002,
		Seed:                   7,
	}
}

// ReliabilityReport tallies rack-months of each outcome plus the cause
// breakdown of total outages.
type ReliabilityReport struct {
	Design             Design
	RackMonths         int
	Outages            int // rack-offline events
	Degraded           int // single-member events (no outage)
	OutagesFromStack   int // outages attributable to stack sync/upgrade logic
	OutagesFromports   int
	CriticalFailures   int // all events that would page an operator
	StackShareOfCrit   float64
	OutagesPerKRackMon float64
}

// SimulateReliability runs the Monte Carlo for one design.
func SimulateReliability(d Design, p ReliabilityParams) ReliabilityReport {
	rng := sim.NewRNG(p.Seed ^ (uint64(d) << 32))
	rep := ReliabilityReport{Design: d, RackMonths: p.Months * p.Racks}

	for rack := 0; rack < p.Racks; rack++ {
		version := 1
		for month := 0; month < p.Months; month++ {
			crash := rng.Bernoulli(p.ToRCrashPerMonth)
			wedge := rng.Bernoulli(p.DataPlaneWedgePerMonth)
			upgrade := rng.Bernoulli(p.UpgradesPerMonth)
			badUpgrade := upgrade && rng.Bernoulli(p.ISSUIncompatibleShare) && rng.Bernoulli(p.UpgradeOutageProb)
			syncFail := rng.Bernoulli(p.SyncLinkFailPerMonth)

			switch d {
			case SingleToR:
				// One ToR, no redundancy: a crash or wedge is an outage.
				// (Half the crash rate: one ToR per rack, not two.)
				if (crash && rng.Bernoulli(0.5)) || wedge {
					rep.Outages++
					rep.CriticalFailures++
				}

			case StackedDualToR:
				pair := NewStackedPair(version)
				if crash {
					i := rng.Intn(2)
					pair.ToRs[i].DataPlaneUp = false
					pair.ToRs[i].ControlPlaneUp = false
				}
				if wedge {
					// Wedge hits the primary's data plane only.
					pair.ToRs[0].DataPlaneUp = false
				}
				if badUpgrade {
					pair.ToRs[0].Version = version + 10 // beyond ISSU tolerance
				} else if upgrade {
					pair.ToRs[0].Version = version // ISSU bridged the diff
				}
				if syncFail {
					pair.SyncLinkUp = false
				}
				switch pair.Evaluate() {
				case RackOffline:
					rep.Outages++
					rep.CriticalFailures++
					if wedge || badUpgrade || syncFail {
						rep.OutagesFromStack++
					}
				case RackDegraded:
					rep.Degraded++
					rep.CriticalFailures++
				}

			case NonStackedDualToR:
				pair := NewNonStackedPair()
				if crash {
					pair.DataPlaneUp[rng.Intn(2)] = false
				}
				if wedge {
					// A wedged data plane stops advertising BGP routes; the
					// peer keeps forwarding independently.
					pair.DataPlaneUp[0] = false
				}
				// Upgrades are per-member and independent: no sync to break.
				switch pair.Evaluate() {
				case RackOffline:
					rep.Outages++
					rep.CriticalFailures++
				case RackDegraded:
					rep.Degraded++
					rep.CriticalFailures++
				}
			}
		}
	}
	if rep.CriticalFailures > 0 {
		rep.StackShareOfCrit = float64(rep.OutagesFromStack) / float64(rep.CriticalFailures)
	}
	rep.OutagesPerKRackMon = float64(rep.Outages) / float64(rep.RackMonths) * 1000
	return rep
}

package dualtor

import (
	"testing"
	"testing/quick"
)

func TestNonStackedNegotiation(t *testing.T) {
	cfgs := NonStackedConfigs()
	b, err := NegotiateNonStacked(cfgs, 17)
	if err != nil {
		t.Fatal(err)
	}
	if b.SysID != ReservedSysMAC {
		t.Fatalf("sysID = %v, want reserved VRRP MAC", b.SysID)
	}
	if len(b.Members) != 2 || b.Members[0] == b.Members[1] {
		t.Fatalf("members = %v, want two distinct portIDs", b.Members)
	}
	if b.Members[0] != 317 || b.Members[1] != 617 {
		t.Fatalf("portIDs = %v, want offsets 300/600 applied", b.Members)
	}
}

// Stock (non-customized) switches answer with their own chassis MACs:
// bonding across two of them must fail — this is exactly why the custom
// LACP module exists.
func TestStockSwitchesCannotBundle(t *testing.T) {
	tor1 := LACPConfig{SystemMAC: MAC{0xaa, 0, 0, 0, 0, 1}, MaxPhysicalPorts: 256}
	tor2 := LACPConfig{SystemMAC: MAC{0xaa, 0, 0, 0, 0, 2}, MaxPhysicalPorts: 256}
	d1, _ := tor1.Respond(5)
	d2, _ := tor2.Respond(5)
	if _, err := FormBond([]LACPDU{d1, d2}); err == nil {
		t.Fatal("bond formed across different sysIDs")
	}
}

// Same MAC but no offset: both ToRs answer the same portID (their wiring is
// symmetric) and aggregation is ambiguous.
func TestSameMACWithoutOffsetCollides(t *testing.T) {
	c := LACPConfig{SystemMAC: ReservedSysMAC, MaxPhysicalPorts: 256}
	d1, _ := c.Respond(5)
	d2, _ := c.Respond(5)
	if _, err := FormBond([]LACPDU{d1, d2}); err == nil {
		t.Fatal("bond formed with duplicate portIDs")
	}
}

// Property: for every valid physical port, the two offset portIDs never
// collide with each other nor with the physical port space.
func TestOffsetNoCollisionProperty(t *testing.T) {
	cfgs := NonStackedConfigs()
	f := func(portRaw uint8) bool {
		port := int(portRaw)
		b, err := NegotiateNonStacked(cfgs, port)
		if err != nil {
			return false
		}
		return b.Members[0] != b.Members[1] &&
			b.Members[0] > cfgs[0].MaxPhysicalPorts &&
			b.Members[1] > cfgs[1].MaxPhysicalPorts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRespondRejectsBadPort(t *testing.T) {
	c := NonStackedConfigs()[0]
	if _, err := c.Respond(-1); err == nil {
		t.Fatal("negative port accepted")
	}
	if _, err := c.Respond(256); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestARPFanout(t *testing.T) {
	if got := ARPFanout(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ARPFanout = %v", got)
	}
}

func TestStackedHealthy(t *testing.T) {
	p := NewStackedPair(1)
	if got := p.Evaluate(); got != RackHealthy {
		t.Fatalf("healthy pair evaluates %v", got)
	}
}

// The paper's headline stack failure: primary data plane wedges (MMU
// overflow), control planes keep agreeing over OOB, secondary self-shuts:
// the rack goes fully offline.
func TestStackedMMUWedgeIsRackOutage(t *testing.T) {
	p := NewStackedPair(1)
	p.ToRs[0].DataPlaneUp = false // primary data plane wedged, control alive
	if got := p.Evaluate(); got != RackOffline {
		t.Fatalf("MMU wedge evaluates %v, want offline", got)
	}
}

// The same wedge with the OOB down: the secondary cannot confirm the
// primary is "fine", detects the peer loss and takes over: degraded only.
func TestStackedWedgeWithOOBDownSurvives(t *testing.T) {
	p := NewStackedPair(1)
	p.ToRs[0].DataPlaneUp = false
	p.OOBUp = false
	if got := p.Evaluate(); got != RackDegraded {
		t.Fatalf("wedge+OOB-down evaluates %v, want degraded", got)
	}
}

// A clean full crash of one member is handled (this is what dual-ToR is
// for): degraded, not offline.
func TestStackedCleanCrashDegrades(t *testing.T) {
	p := NewStackedPair(1)
	p.ToRs[1].DataPlaneUp = false
	p.ToRs[1].ControlPlaneUp = false
	if got := p.Evaluate(); got != RackDegraded {
		t.Fatalf("clean crash evaluates %v, want degraded", got)
	}
}

// Upgrade version skew beyond ISSU: rack offline.
func TestStackedUpgradeIncompatibility(t *testing.T) {
	p := NewStackedPair(1)
	p.ToRs[0].Version = 11
	if got := p.Evaluate(); got != RackOffline {
		t.Fatalf("incompatible upgrade evaluates %v, want offline", got)
	}
	// Within ISSU tolerance: fine.
	p2 := NewStackedPair(1)
	p2.ISSUMaxDiff = 1
	p2.ToRs[0].Version = 2
	if got := p2.Evaluate(); got != RackHealthy {
		t.Fatalf("ISSU-compatible upgrade evaluates %v, want healthy", got)
	}
}

// Sync cable cut with both members healthy: split-brain avoidance costs
// redundancy but not availability.
func TestStackedSyncCableCut(t *testing.T) {
	p := NewStackedPair(1)
	p.SyncLinkUp = false
	if got := p.Evaluate(); got != RackDegraded {
		t.Fatalf("sync cut evaluates %v, want degraded", got)
	}
}

func TestNonStackedIndependence(t *testing.T) {
	p := NewNonStackedPair()
	if p.Evaluate() != RackHealthy {
		t.Fatal("healthy non-stacked pair not healthy")
	}
	p.DataPlaneUp[0] = false
	if got := p.Evaluate(); got != RackDegraded {
		t.Fatalf("one member down evaluates %v, want degraded", got)
	}
	p.DataPlaneUp[1] = false
	if got := p.Evaluate(); got != RackOffline {
		t.Fatalf("both members down evaluates %v, want offline", got)
	}
}

// The §4.1 summary: the stacked design's outage rate is dominated by
// stack-sync failure classes, the non-stacked design eliminates them, and
// single-ToR is strictly worse than both.
func TestReliabilityComparison(t *testing.T) {
	p := DefaultReliabilityParams()
	single := SimulateReliability(SingleToR, p)
	stacked := SimulateReliability(StackedDualToR, p)
	nonstacked := SimulateReliability(NonStackedDualToR, p)

	if nonstacked.Outages != 0 {
		t.Errorf("non-stacked outages = %d, want 0 (independent members)", nonstacked.Outages)
	}
	if stacked.Outages <= nonstacked.Outages {
		t.Errorf("stacked outages (%d) must exceed non-stacked (%d)", stacked.Outages, nonstacked.Outages)
	}
	if single.Outages <= nonstacked.Outages {
		t.Errorf("single-ToR outages (%d) must exceed non-stacked (%d)", single.Outages, nonstacked.Outages)
	}
	// Paper: >40% of critical failures in traditional DCs came from
	// stacked dual-ToR issues.
	if stacked.StackShareOfCrit < 0.40 {
		t.Errorf("stack share of critical failures = %.2f, want > 0.40", stacked.StackShareOfCrit)
	}
	// Degraded (survivable) events still occur in non-stacked.
	if nonstacked.Degraded == 0 {
		t.Error("non-stacked should see degraded events from member crashes")
	}
}

func TestReliabilityDeterminism(t *testing.T) {
	p := DefaultReliabilityParams()
	a := SimulateReliability(StackedDualToR, p)
	b := SimulateReliability(StackedDualToR, p)
	if a != b {
		t.Fatal("Monte Carlo not reproducible with fixed seed")
	}
}

func TestMACString(t *testing.T) {
	if got := ReservedSysMAC.String(); got != "00:00:5e:00:01:01" {
		t.Fatalf("MAC string = %q", got)
	}
}

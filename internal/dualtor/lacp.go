// Package dualtor models the access-layer designs of §4: the stacked
// dual-ToR of commodity vendors (vPC/M-LAG/stacking) with its failure
// modes, and HPN's non-stacked dual-ToR, where two fully independent ToRs
// are disguised as one LACP system through a pre-configured reserved MAC
// and per-switch portID offsets, with BGP host routes handling failover.
package dualtor

import (
	"fmt"
)

// MAC is an Ethernet address.
type MAC [6]byte

// ReservedSysMAC is the RFC-reserved VRRP virtual-router MAC
// 00:00:5E:00:01:01 the paper picks as the pre-configured LACP system MAC:
// identical on both ToRs of a set, guaranteed never owned by a host.
var ReservedSysMAC = MAC{0x00, 0x00, 0x5E, 0x00, 0x01, 0x01}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// LACPConfig is the customized LACP module configuration of one ToR (§4.2).
type LACPConfig struct {
	// SystemMAC seeds the sysID. Stock switches derive it from their own
	// chassis MAC; the non-stacked design pre-configures ReservedSysMAC on
	// both members.
	SystemMAC MAC
	// PortIDOffset is added to the physical port number when answering
	// LACPDUs. Stock value 0; the non-stacked design assigns each member a
	// distinct offset > 256 (e.g. 300 / 600) so the two switches never
	// collide: a ToR has fewer than 256 physical ports.
	PortIDOffset int
	// MaxPhysicalPorts bounds valid port numbers (256 on the 51.2T chip
	// port map).
	MaxPhysicalPorts int
}

// NonStackedConfigs returns the two LACP configurations HPN provisions on a
// dual-ToR set: shared reserved MAC, offsets 300 and 600.
func NonStackedConfigs() [2]LACPConfig {
	return [2]LACPConfig{
		{SystemMAC: ReservedSysMAC, PortIDOffset: 300, MaxPhysicalPorts: 256},
		{SystemMAC: ReservedSysMAC, PortIDOffset: 600, MaxPhysicalPorts: 256},
	}
}

// LACPDU is the subset of the LACP data unit that matters for bundling:
// the responding actor's system identity and port number.
type LACPDU struct {
	SysID  MAC
	PortID int
}

// Respond produces the ToR's answer to a host LACPDU received on the given
// physical port, per the customized module: sysID from the pre-configured
// MAC, portID shifted by the member offset.
func (c LACPConfig) Respond(physicalPort int) (LACPDU, error) {
	if physicalPort < 0 || (c.MaxPhysicalPorts > 0 && physicalPort >= c.MaxPhysicalPorts) {
		return LACPDU{}, fmt.Errorf("dualtor: physical port %d out of range", physicalPort)
	}
	return LACPDU{SysID: c.SystemMAC, PortID: physicalPort + c.PortIDOffset}, nil
}

// Bond is the host-side aggregation state after LACP negotiation.
type Bond struct {
	SysID MAC
	// Members are the negotiated remote portIDs, one per NIC port.
	Members []int
}

// FormBond runs the host side of bonding mode 4 (dynamic link aggregation):
// all responders must present the same sysID (one "virtual device") and
// pairwise-distinct portIDs, or aggregation fails.
func FormBond(responses []LACPDU) (Bond, error) {
	if len(responses) == 0 {
		return Bond{}, fmt.Errorf("dualtor: no LACP responses")
	}
	b := Bond{SysID: responses[0].SysID}
	seen := map[int]bool{}
	for _, r := range responses {
		if r.SysID != b.SysID {
			return Bond{}, fmt.Errorf("dualtor: sysID mismatch %v vs %v: links cannot aggregate", r.SysID, b.SysID)
		}
		if seen[r.PortID] {
			return Bond{}, fmt.Errorf("dualtor: duplicate portID %d: aggregation ambiguous", r.PortID)
		}
		seen[r.PortID] = true
		b.Members = append(b.Members, r.PortID)
	}
	return b, nil
}

// NegotiateNonStacked performs the full non-stacked handshake for one NIC
// wired to physical port `port` on both ToRs, and proves the §4.2
// requirements hold: same MAC, different portIDs, no conflict with the
// physical port space.
func NegotiateNonStacked(cfgs [2]LACPConfig, port int) (Bond, error) {
	var duys []LACPDU
	for i, c := range cfgs {
		du, err := c.Respond(port)
		if err != nil {
			return Bond{}, fmt.Errorf("dualtor: ToR%d: %w", i+1, err)
		}
		if c.PortIDOffset > 0 && c.PortIDOffset <= c.MaxPhysicalPorts {
			return Bond{}, fmt.Errorf("dualtor: ToR%d offset %d collides with physical port space", i+1, c.PortIDOffset)
		}
		duys = append(duys, du)
	}
	return FormBond(duys)
}

// ARPFanout models the host duplicating every ARP message to both NIC
// ports (the ARP Broadcast module of Figure 8b), so both independent ToRs
// learn the binding and convert it to a /32 host route.
func ARPFanout(ports int) []int {
	out := make([]int, ports)
	for i := range out {
		out[i] = i
	}
	return out
}

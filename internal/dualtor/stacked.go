package dualtor

// This file models the stacked dual-ToR design (§4.1, Figure 8a) precisely
// enough to reproduce its two production failure classes:
//
//  1. Stack failure: the primary's data plane wedges (e.g. MMU overflow)
//     while its control plane stays alive. Inband synchronization dies with
//     the data plane, the out-of-band controller channel keeps agreeing
//     that the primary is fine, and the secondary — unable to synchronize
//     forwarding state — shuts itself down to avoid inconsistency. The rack
//     is left behind a wedged data plane: total outage.
//
//  2. Upgrade incompatibility: during rolling upgrades one member runs the
//     new control-plane version. If the RPC schema diff exceeds what ISSU
//     tolerates (70% of upgrades, per the paper), state synchronization
//     fails and members go down: total outage.
//
// The non-stacked design removes inter-ToR synchronization entirely, so
// neither class exists; its Evaluate degrades to half capacity at worst.

// Role distinguishes the stacked pair's control-plane roles.
type Role uint8

// Stacked control-plane roles.
const (
	Primary Role = iota
	Secondary
)

// StackedToR is one member of a stacked pair.
type StackedToR struct {
	Role           Role
	DataPlaneUp    bool
	ControlPlaneUp bool
	// Version is the control-plane software version (for upgrade modeling).
	Version int
}

// StackedPair is a stacked dual-ToR set with its two synchronization
// channels.
type StackedPair struct {
	ToRs [2]StackedToR
	// SyncLinkUp is the direct inter-ToR cable used for data-plane state
	// sync (ARP/MAC). It is carried by the data planes: if either data
	// plane is down, synchronization is down regardless of the cable.
	SyncLinkUp bool
	// OOBUp is the out-of-band network the control planes use to agree on
	// primary election.
	OOBUp bool
	// ISSUMaxDiff is the largest version gap In-Service Software Upgrade
	// can bridge.
	ISSUMaxDiff int
}

// NewStackedPair returns a healthy stacked pair at version v.
func NewStackedPair(v int) *StackedPair {
	return &StackedPair{
		ToRs: [2]StackedToR{
			{Role: Primary, DataPlaneUp: true, ControlPlaneUp: true, Version: v},
			{Role: Secondary, DataPlaneUp: true, ControlPlaneUp: true, Version: v},
		},
		SyncLinkUp:  true,
		OOBUp:       true,
		ISSUMaxDiff: 0,
	}
}

// RackState summarizes what the hosts under the pair experience.
type RackState uint8

// Possible rack states, best to worst.
const (
	RackHealthy  RackState = iota // both members forwarding
	RackDegraded                  // one member forwarding: no redundancy
	RackOffline                   // no member forwarding: total outage
)

func (s RackState) String() string {
	switch s {
	case RackHealthy:
		return "healthy"
	case RackDegraded:
		return "degraded"
	default:
		return "offline"
	}
}

// syncAlive reports whether inband forwarding-state sync works: it needs
// the cable and both data planes.
func (p *StackedPair) syncAlive() bool {
	return p.SyncLinkUp && p.ToRs[0].DataPlaneUp && p.ToRs[1].DataPlaneUp
}

// versionsCompatible reports whether control-plane RPC sync survives the
// current version skew.
func (p *StackedPair) versionsCompatible() bool {
	d := p.ToRs[0].Version - p.ToRs[1].Version
	if d < 0 {
		d = -d
	}
	return d <= p.ISSUMaxDiff
}

// Evaluate runs the stacked pair's distributed logic and returns the
// resulting rack state.
func (p *StackedPair) Evaluate() RackState {
	forwarding := [2]bool{
		p.ToRs[0].DataPlaneUp && p.ToRs[0].ControlPlaneUp,
		p.ToRs[1].DataPlaneUp && p.ToRs[1].ControlPlaneUp,
	}

	// Upgrade incompatibility: members cannot exchange state; the stack
	// protocol wedges both control planes (§4.1 "ToRs can be down if such
	// an incompatibility issue happens").
	if p.ToRs[0].ControlPlaneUp && p.ToRs[1].ControlPlaneUp && !p.versionsCompatible() {
		return RackOffline
	}

	if !p.syncAlive() {
		// Inband sync is gone. If the out-of-band channel still reports
		// both control planes healthy, neither side concludes the other is
		// dead: the primary keeps its role and the secondary shuts itself
		// down to avoid inconsistent forwarding.
		if p.OOBUp && p.ToRs[0].ControlPlaneUp && p.ToRs[1].ControlPlaneUp {
			secondary := 1
			if p.ToRs[0].Role == Secondary {
				secondary = 0
			}
			forwarding[secondary] = false
			// The remaining member forwards only if its data plane
			// actually works — in the MMU-wedge scenario it does not.
		} else {
			// OOB is down or a control plane is dead: the survivor detects
			// the peer failure and takes over alone.
			for i := range forwarding {
				forwarding[i] = forwarding[i] && p.ToRs[i].DataPlaneUp
			}
		}
	}

	n := 0
	for _, f := range forwarding {
		if f {
			n++
		}
	}
	switch n {
	case 2:
		return RackHealthy
	case 1:
		return RackDegraded
	default:
		return RackOffline
	}
}

// NonStackedPair is HPN's design: two independent ToRs; the only coupling
// is BGP route advertisement, so the rack state is a pure function of the
// members' own health.
type NonStackedPair struct {
	DataPlaneUp [2]bool
}

// NewNonStackedPair returns a healthy non-stacked pair.
func NewNonStackedPair() *NonStackedPair {
	return &NonStackedPair{DataPlaneUp: [2]bool{true, true}}
}

// Evaluate returns the rack state: degraded with one member down, offline
// only if both fail independently.
func (p *NonStackedPair) Evaluate() RackState {
	n := 0
	for _, up := range p.DataPlaneUp {
		if up {
			n++
		}
	}
	switch n {
	case 2:
		return RackHealthy
	case 1:
		return RackDegraded
	default:
		return RackOffline
	}
}

package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// PhaseStat is one phase's merged accumulators: the row format of the
// prof.tsv/prof.json artifacts. Count is deterministic (a pure function of
// the simulated run); WallNS and Allocs are host measurements and are
// nondeterministic by nature — which is why these artifacts live outside
// the golden byte-identical set.
type PhaseStat struct {
	Name   string `json:"name"`
	Help   string `json:"help,omitempty"`
	Count  int64  `json:"count"`
	WallNS int64  `json:"wall_ns"`
	Allocs int64  `json:"allocs,omitempty"`
}

// Profile is the prof.json document: one run's phase breakdown plus the
// host parallelism it ran under (ns/op comparisons across different
// GOMAXPROCS are apples to oranges for the parallel phases, so the
// comparator surfaces it).
type Profile struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	Phases     []PhaseStat `json:"phases"`
}

// Profile snapshots the profiler into an exportable document. Nil-safe.
func (p *Profiler) Profile() *Profile {
	return &Profile{GoMaxProcs: runtime.GOMAXPROCS(0), Phases: p.Snapshot()}
}

// WriteTSV writes the phase table, sorted by name, zero-count phases
// omitted. Columns: phase, count, wall_ns, wall_ms, allocs.
func (p *Profiler) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "phase\tcount\twall_ns\twall_ms\tallocs")
	for _, st := range p.Snapshot() {
		fmt.Fprintf(bw, "%s\t%d\t%d\t%.3f\t%d\n",
			st.Name, st.Count, st.WallNS, float64(st.WallNS)/1e6, st.Allocs)
	}
	return bw.Flush()
}

// WriteJSON writes the Profile document (see ParseProfile).
func (p *Profiler) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(p.Profile(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ParseProfile reads a prof.json document written by WriteJSON.
func ParseProfile(r io.Reader) (*Profile, error) {
	var prof Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&prof); err != nil {
		return nil, err
	}
	if len(prof.Phases) == 0 {
		return nil, fmt.Errorf("profile has no phases")
	}
	return &prof, nil
}

package prof

import (
	"strings"
	"testing"
)

func mkProfile(phases ...PhaseStat) *Profile {
	return &Profile{GoMaxProcs: 4, Phases: phases}
}

func TestCompareIdenticalClean(t *testing.T) {
	p := mkProfile(
		PhaseStat{Name: "netsim/recompute", Count: 100, WallNS: 50e6},
		PhaseStat{Name: "sim/run", Count: 1, WallNS: 200e6},
	)
	var sb strings.Builder
	if got := Compare(p, p, DefaultCompareTolerance, DefaultCompareMinWallNS, &sb); got != 0 {
		t.Fatalf("identical profiles: %d regressions, want 0\n%s", got, sb.String())
	}
	if strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("identical profiles marked REGRESSED:\n%s", sb.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	oldP := mkProfile(PhaseStat{Name: "netsim/recompute", Count: 100, WallNS: 50e6})
	newP := mkProfile(PhaseStat{Name: "netsim/recompute", Count: 100, WallNS: 80e6})
	var sb strings.Builder
	if got := Compare(oldP, newP, 0.25, DefaultCompareMinWallNS, &sb); got != 1 {
		t.Fatalf("60%% ns/op growth: %d regressions, want 1\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("regression not flagged in table:\n%s", sb.String())
	}
}

func TestCompareNormalizesByCount(t *testing.T) {
	// Twice the wall at twice the count is the same ns/op — more work, not
	// slower work. Must not regress.
	oldP := mkProfile(PhaseStat{Name: "netsim/recompute", Count: 100, WallNS: 50e6})
	newP := mkProfile(PhaseStat{Name: "netsim/recompute", Count: 200, WallNS: 100e6})
	var sb strings.Builder
	if got := Compare(oldP, newP, 0.25, DefaultCompareMinWallNS, &sb); got != 0 {
		t.Fatalf("same ns/op at double count: %d regressions, want 0\n%s", got, sb.String())
	}
}

func TestCompareMinWallFloor(t *testing.T) {
	// 10x slower but only 50us of old wall: below the floor, noise, not a
	// regression.
	oldP := mkProfile(PhaseStat{Name: "memo/lookup", Count: 10, WallNS: 50e3})
	newP := mkProfile(PhaseStat{Name: "memo/lookup", Count: 10, WallNS: 500e3})
	var sb strings.Builder
	if got := Compare(oldP, newP, 0.25, DefaultCompareMinWallNS, &sb); got != 0 {
		t.Fatalf("sub-floor phase regressed: %d, want 0\n%s", got, sb.String())
	}
}

func TestCompareDisjointPhasesNeverRegress(t *testing.T) {
	oldP := mkProfile(PhaseStat{Name: "netsim/merge_wait", Count: 5, WallNS: 10e6})
	newP := mkProfile(PhaseStat{Name: "memo/replay", Count: 5, WallNS: 10e6})
	var sb strings.Builder
	if got := Compare(oldP, newP, 0.25, DefaultCompareMinWallNS, &sb); got != 0 {
		t.Fatalf("disjoint phases: %d regressions, want 0\n%s", got, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "missing from new profile") || !strings.Contains(out, "new in this profile") {
		t.Fatalf("one-sided phases not listed:\n%s", out)
	}
}

func TestReport(t *testing.T) {
	p := mkProfile(
		PhaseStat{Name: "memo/lookup", Count: 10, WallNS: 1e6},
		PhaseStat{Name: "sim/run", Count: 1, WallNS: 9e6},
	)
	var sb strings.Builder
	Report(p, &sb)
	out := sb.String()
	runIdx := strings.Index(out, "sim/run")
	lookupIdx := strings.Index(out, "memo/lookup")
	if runIdx < 0 || lookupIdx < 0 || runIdx > lookupIdx {
		t.Fatalf("report not wall-descending:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") {
		t.Fatalf("share column wrong:\n%s", out)
	}
}

// Package prof is the engine's self-observability layer: an always-on,
// zero-dependency phase profiler plus a bounded incident flight recorder.
//
// Where the telemetry package observes the simulated *fabric* (flows,
// links, incidents), prof observes the *simulator*: how much host wall
// time and how many heap allocations each engine phase consumed — event
// dispatch, allocator recompute, heap maintenance, component
// decomposition, parallel-fill merge wait, memo lookup/replay, artifact
// flushing. That breakdown is what sharding and fidelity-granularity
// decisions need before any partitioning is defensible.
//
// Determinism contract: phase *counts* are pure functions of the simulated
// run and stay byte-identical across same-seed runs. Wall-time and
// allocation fields are host measurements and are inherently
// nondeterministic; they are segregated into the prof.tsv/prof.json
// artifacts (excluded from the golden determinism set) and into registry
// *gauges* — never counters — so the memo recorder's metrics snapshots
// (counters + histograms only, see telemetry.MetricsSnapshot) can never
// absorb a wall-clock value into a replayed window. This is the
// LiveMetricsOwner-style exclusion for the registry view: gauges read live
// profiler state and are excluded from recorded deltas by construction.
//
// Cost contract: every method is safe on a nil receiver, so the disabled
// path costs one nil check per instrumentation point — the same bargain
// telemetry.Counter strikes. Accumulation is lock-free: each Phase keeps a
// small fixed array of cache-line-padded atomic slots; parallel fill
// workers add into their own shard and the merge at export time is an
// integer sum, which is order-independent and therefore deterministic.
package prof

import (
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// allocMetric is the runtime/metrics key for cumulative heap allocations
// (objects). Reading it is far cheaper than runtime.ReadMemStats, but it
// is still a process-global counter: allocation deltas are only
// attributable for phases that run serially (run loop, replay, artifact
// writers), which is why Phase tracks allocations only when registered
// through PhaseAlloc.
const allocMetric = "/gc/heap/allocs:objects"

// shardCount is the number of independent accumulator slots per phase.
// Parallel fill workers index by worker ID (masked), so concurrent End
// calls almost never contend on one cache line. Power of two.
const shardCount = 8

// slot is one shard's accumulators, padded to a cache line so two workers
// ending phases concurrently do not false-share.
type slot struct {
	count int64
	wall  int64 // nanoseconds
	alloc int64 // heap objects
	_     [40]byte
}

// Phase is one named cost bucket. All methods are nil-safe; a nil Phase
// (profiling disabled) costs one branch per call.
type Phase struct {
	name, help string
	trackAlloc bool
	slots      [shardCount]slot
}

// Token carries one Begin's start measurements to the matching End.
type Token struct {
	t0 time.Time
	a0 uint64
}

// Begin starts one timed occurrence of the phase. Nil-safe: on a nil
// phase it returns the zero Token, which End ignores.
func (ph *Phase) Begin() Token {
	if ph == nil {
		return Token{}
	}
	tk := Token{t0: time.Now()} //hpnlint:allow wallclock -- host-cost profiling; wall values are segregated into prof artifacts and gauges, never simulator state
	if ph.trackAlloc {
		tk.a0 = readAllocs()
	}
	return tk
}

// End closes a Begin, accumulating into shard 0. Nil-safe; a zero Token
// (from a Begin on a then-nil phase) is ignored.
func (ph *Phase) End(tk Token) { ph.EndShard(tk, 0) }

// EndShard closes a Begin into the given shard. Parallel workers pass
// their worker index so concurrent phase ends do not contend.
func (ph *Phase) EndShard(tk Token, shard int) {
	if ph == nil || tk.t0.IsZero() {
		return
	}
	wall := time.Since(tk.t0).Nanoseconds() //hpnlint:allow wallclock -- host-cost profiling; wall values are segregated into prof artifacts and gauges, never simulator state
	var alloc int64
	if ph.trackAlloc {
		alloc = int64(readAllocs() - tk.a0)
	}
	s := &ph.slots[shard&(shardCount-1)]
	atomic.AddInt64(&s.count, 1)
	atomic.AddInt64(&s.wall, wall)
	atomic.AddInt64(&s.alloc, alloc)
}

// Add accumulates n count-only occurrences (bulk dispatch counts, heap
// operations tallied locally in a hot loop) into shard 0. Nil-safe.
func (ph *Phase) Add(n int64) { ph.AddShard(n, 0) }

// AddShard accumulates n count-only occurrences into the given shard.
// Nil-safe.
func (ph *Phase) AddShard(n int64, shard int) {
	if ph == nil || n == 0 {
		return
	}
	atomic.AddInt64(&ph.slots[shard&(shardCount-1)].count, n)
}

// Name returns the phase name ("" on nil).
func (ph *Phase) Name() string {
	if ph == nil {
		return ""
	}
	return ph.name
}

// stat merges the shards. The merge is an integer sum in fixed shard
// order: order-independent, so the counts are deterministic no matter
// which worker filled which shard.
func (ph *Phase) stat() PhaseStat {
	st := PhaseStat{Name: ph.name, Help: ph.help}
	for i := range ph.slots {
		s := &ph.slots[i]
		st.Count += atomic.LoadInt64(&s.count)
		st.WallNS += atomic.LoadInt64(&s.wall)
		st.Allocs += atomic.LoadInt64(&s.alloc)
	}
	return st
}

// readAllocs reads the process-lifetime heap allocation count (objects).
func readAllocs() uint64 {
	var s [1]metrics.Sample
	s[0].Name = allocMetric
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// GaugeRegistry is the slice of telemetry.Registry the profiler publishes
// through, declared here so prof stays dependency-free (telemetry imports
// prof, not the reverse).
type GaugeRegistry interface {
	Gauge(name, help string, fn func() float64)
}

// Profiler is a set of named phases. The zero value is not usable;
// construct with New. All methods are nil-safe, so layers hold a nil
// *Profiler while profiling is disabled and every Phase they register
// comes back nil.
type Profiler struct {
	mu     sync.Mutex
	phases map[string]*Phase
	reg    GaugeRegistry
	prefix string
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{phases: map[string]*Phase{}}
}

// Phase returns the phase registered under name, creating it on first use
// (the help string of the first registration wins). A nil profiler
// returns a nil (no-op) phase.
func (p *Profiler) Phase(name, help string) *Phase {
	return p.phase(name, help, false)
}

// PhaseAlloc is Phase with heap-allocation tracking enabled. Allocation
// deltas are process-global, so only serial phases (run loop, replay,
// artifact writers) should use it; a parallel phase would absorb its
// siblings' allocations.
func (p *Profiler) PhaseAlloc(name, help string) *Phase {
	return p.phase(name, help, true)
}

func (p *Profiler) phase(name, help string, alloc bool) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ph, ok := p.phases[name]; ok {
		return ph
	}
	ph := &Phase{name: name, help: help, trackAlloc: alloc}
	p.phases[name] = ph
	if p.reg != nil {
		p.registerGauges(ph)
	}
	return ph
}

// BindMetrics publishes every phase — current and future — as registry
// gauges named <prefix><phase>_count, _wall_seconds and (alloc-tracked
// phases) _allocs. Gauges, not counters, on purpose: the memo recorder's
// snapshot/delta machinery covers counters and histograms only, so
// wall-clock values can never leak into a replayed window's metrics
// delta. Nil-safe.
func (p *Profiler) BindMetrics(reg GaugeRegistry, prefix string) {
	if p == nil || reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.prefix = prefix
	for _, name := range p.sortedNamesLocked() {
		p.registerGauges(p.phases[name])
	}
}

// registerGauges installs the per-phase gauge views. Callers hold p.mu.
func (p *Profiler) registerGauges(ph *Phase) {
	base := p.prefix + sanitizePhase(ph.name)
	p.reg.Gauge(base+"_count", "profiler: occurrences of phase "+ph.name,
		func() float64 { return float64(ph.stat().Count) })
	p.reg.Gauge(base+"_wall_seconds", "profiler: host wall time in phase "+ph.name+" (nondeterministic)",
		func() float64 { return float64(ph.stat().WallNS) / 1e9 })
	if ph.trackAlloc {
		p.reg.Gauge(base+"_allocs", "profiler: heap objects allocated in phase "+ph.name+" (nondeterministic)",
			func() float64 { return float64(ph.stat().Allocs) })
	}
}

// sanitizePhase maps a phase name onto the metric-name charset.
func sanitizePhase(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c == '/' || c == '-' || c == '.' {
			b[i] = '_'
		}
	}
	return string(b)
}

// Snapshot returns the merged stats of every phase with a nonzero count,
// sorted by name. Zero-count phases are omitted: a registered-but-unhit
// phase (e.g. the parallel-fill merge on a run that never crossed the
// parallel threshold) is configuration, not cost. Nil-safe (returns nil).
func (p *Profiler) Snapshot() []PhaseStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	names := p.sortedNamesLocked()
	phases := make([]*Phase, 0, len(names))
	for _, n := range names {
		phases = append(phases, p.phases[n])
	}
	p.mu.Unlock()
	out := make([]PhaseStat, 0, len(phases))
	for _, ph := range phases {
		if st := ph.stat(); st.Count > 0 {
			out = append(out, st)
		}
	}
	return out
}

// sortedNamesLocked returns the phase names in sorted order. Iteration
// over the phases map never reaches ordered output directly — every
// export path goes through this sort, keeping artifacts deterministic.
// Callers hold p.mu.
func (p *Profiler) sortedNamesLocked() []string {
	names := make([]string, 0, len(p.phases))
	for n := range p.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

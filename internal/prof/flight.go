package prof

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// DefaultFlightCap is the ring capacity when NewFlight is given n <= 0.
// Sized to hold the event context around one incident (a reroute pass on a
// quick-scale segment touches tens of flows), while bounding memory: the
// recorder is always-on, so it must never grow with run length.
const DefaultFlightCap = 1024

// maxFlightWindows bounds how many marked evidence windows one run keeps.
// A pathological run opening hundreds of incidents would otherwise turn
// the "bounded" recorder into an unbounded event log; past the cap, later
// marks are counted but their windows dropped (the first incidents are the
// diagnostic ones — cascades repeat them).
const maxFlightWindows = 16

// Event is one flight-recorder entry. TS is simulated time (ns) and every
// field derives from simulator state, so ring contents are byte-for-byte
// reproducible across same-seed runs — unlike the profiler's wall fields.
type Event struct {
	TS      int64
	Kind    string // e.g. flows_done, link_down, reroute
	Subject string // flow or cable/node designator; "" when the kind needs none
	V1, V2  int64  // kind-specific values (bytes moved, flows rerouted, ...)
}

// window is one marked evidence capture: the ring contents at Mark time.
type window struct {
	ts     int64
	reason string
	seen   uint64 // events recorded up to the mark
	events []Event
}

// Flight is a bounded ring of recent engine/observer events plus up to
// maxFlightWindows marked captures. health marks it when an incident
// opens, freezing the evidence the detector acted on; hpndoctor then gets
// real event context instead of only detector summaries. All methods are
// nil-safe so emission sites stay behind plain `if x != nil` guards (the
// tracenil/obsnil discipline — arguments are constructed at the call site,
// so the guard must be there, not only in here).
type Flight struct {
	mu      sync.Mutex
	ring    []Event
	next    int    // ring insertion cursor
	total   uint64 // events ever recorded
	windows []window
	dropped int // marks past maxFlightWindows
}

// NewFlight returns a recorder with the given ring capacity
// (DefaultFlightCap when n <= 0).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightCap
	}
	return &Flight{ring: make([]Event, 0, n)}
}

// Note records one event, evicting the oldest when the ring is full.
// Nil-safe.
func (f *Flight) Note(tsNS int64, kind, subject string, v1, v2 int64) {
	if f == nil {
		return
	}
	ev := Event{TS: tsNS, Kind: kind, Subject: subject, V1: v1, V2: v2}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
	}
	f.next = (f.next + 1) % cap(f.ring)
	f.total++
	f.mu.Unlock()
}

// Mark freezes the current ring contents as an evidence window (oldest
// event first). Past maxFlightWindows the mark is counted but its window
// dropped. Nil-safe.
func (f *Flight) Mark(tsNS int64, reason string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.windows) >= maxFlightWindows {
		f.dropped++
		f.mu.Unlock()
		return
	}
	f.windows = append(f.windows, window{
		ts:     tsNS,
		reason: reason,
		seen:   f.total,
		events: f.ordered(),
	})
	f.mu.Unlock()
}

// ordered returns the ring contents oldest-first. Callers hold f.mu.
func (f *Flight) ordered() []Event {
	out := make([]Event, 0, len(f.ring))
	if len(f.ring) == cap(f.ring) {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// Windows returns the number of marked evidence windows. Nil-safe.
func (f *Flight) Windows() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.windows)
}

// WriteTSV dumps every marked window followed by the live tail (the ring
// at write time). One flat schema: the window column is w01..w16 or
// "tail"; each window opens with a kind=mark row carrying the incident
// reason and the total events recorded up to the mark. Every value is
// simulated state, so the file is byte-identical across same-seed runs.
// Nil-safe (header only).
func (f *Flight) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "window\tts_ns\tkind\tsubject\tv1\tv2")
	if f == nil {
		return bw.Flush()
	}
	f.mu.Lock()
	windows := f.windows
	tail := f.ordered()
	dropped := f.dropped
	f.mu.Unlock()
	for i, win := range windows {
		id := fmt.Sprintf("w%02d", i+1)
		fmt.Fprintf(bw, "%s\t%d\tmark\t%s\t%d\t%d\n",
			id, win.ts, win.reason, int64(len(win.events)), int64(win.seen))
		for _, ev := range win.events {
			fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%d\t%d\n",
				id, ev.TS, ev.Kind, ev.Subject, ev.V1, ev.V2)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(bw, "tail\t0\tmarks_dropped\t\t%d\t0\n", int64(dropped))
	}
	for _, ev := range tail {
		fmt.Fprintf(bw, "tail\t%d\t%s\t%s\t%d\t%d\n",
			ev.TS, ev.Kind, ev.Subject, ev.V1, ev.V2)
	}
	return bw.Flush()
}

package prof

import (
	"fmt"
	"io"
	"sort"
)

// DefaultCompareTolerance is the fraction a phase's ns/op may grow before
// Compare counts it as regressed. Generous because wall time is noisy at
// quick scales; tighten when comparing like-for-like hardware.
const DefaultCompareTolerance = 0.25

// DefaultCompareMinWallNS is the floor below which a phase is too cheap to
// judge: sub-millisecond phases are dominated by timer and scheduler
// noise, so they are reported but never count as regressions.
const DefaultCompareMinWallNS = int64(1e6)

// Compare diffs two profiles and writes a per-phase delta table: count,
// wall, and ns per occurrence. It returns the number of regressions — a
// phase present in both profiles, with at least minWallNS of old wall
// time, whose ns/op grew by more than tolerance. Phases present on only
// one side are listed but never count as regressions (the workloads
// differ, not the code) — the same contract as hpnbench -compare.
func Compare(oldP, newP *Profile, tolerance float64, minWallNS int64, w io.Writer) int {
	newByName := map[string]PhaseStat{}
	for _, st := range newP.Phases {
		newByName[st.Name] = st
	}
	oldNames := map[string]bool{}

	fmt.Fprintf(w, "prof compare: gomaxprocs %d -> %d, tolerance %.0f%%, min wall %.1fms\n",
		oldP.GoMaxProcs, newP.GoMaxProcs, tolerance*100, float64(minWallNS)/1e6)
	fmt.Fprintf(w, "%-24s %12s %12s %12s %12s %12s %12s %8s\n",
		"phase", "count_old", "count_new",
		"wall_old", "wall_new", "ns/op_old", "ns/op_new", "d_nsop")

	regressions := 0
	for _, o := range oldP.Phases {
		oldNames[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			fmt.Fprintf(w, "%-24s %12d %12s   (phase missing from new profile)\n",
				o.Name, o.Count, "-")
			continue
		}
		oldNS, newNS := nsPerOp(o), nsPerOp(n)
		status := ""
		if o.WallNS >= minWallNS && oldNS > 0 && newNS > oldNS*(1+tolerance) {
			status = "  REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-24s %12d %12d %12s %12s %12.0f %12.0f %7.1f%%%s\n",
			o.Name, o.Count, n.Count,
			fmtWall(o.WallNS), fmtWall(n.WallNS),
			oldNS, newNS, pctDelta(oldNS, newNS), status)
	}
	for _, n := range newP.Phases {
		if oldNames[n.Name] {
			continue
		}
		fmt.Fprintf(w, "%-24s %12s %12d   (phase new in this profile)\n",
			n.Name, "-", n.Count)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d phase(s) regressed beyond %.0f%% ns/op tolerance\n",
			regressions, tolerance*100)
	}
	return regressions
}

// Report writes a single profile as a human-readable table sorted by wall
// time descending, with each phase's share of the total.
func Report(p *Profile, w io.Writer) {
	phases := make([]PhaseStat, len(p.Phases))
	copy(phases, p.Phases)
	// Wall-descending order; ties broken by name so the report is stable.
	sort.Slice(phases, func(i, j int) bool { return less(phases[i], phases[j]) })
	var total int64
	for _, st := range phases {
		total += st.WallNS
	}
	fmt.Fprintf(w, "profile: %d phase(s), %s total attributed wall, gomaxprocs %d\n",
		len(phases), fmtWall(total), p.GoMaxProcs)
	fmt.Fprintf(w, "%-24s %12s %12s %12s %8s %12s\n",
		"phase", "count", "wall", "ns/op", "share", "allocs")
	for _, st := range phases {
		share := 0.0
		if total > 0 {
			share = float64(st.WallNS) / float64(total) * 100
		}
		fmt.Fprintf(w, "%-24s %12d %12s %12.0f %7.1f%% %12d\n",
			st.Name, st.Count, fmtWall(st.WallNS), nsPerOp(st), share, st.Allocs)
	}
}

func less(a, b PhaseStat) bool {
	if a.WallNS != b.WallNS {
		return a.WallNS > b.WallNS
	}
	return a.Name < b.Name
}

// nsPerOp is wall time per occurrence; 0 when the phase never ran.
func nsPerOp(st PhaseStat) float64 {
	if st.Count == 0 {
		return 0
	}
	return float64(st.WallNS) / float64(st.Count)
}

// pctDelta returns the signed percent change from old to cur (0 when old
// is not positive).
func pctDelta(old, cur float64) float64 {
	if old <= 0 {
		return 0
	}
	return (cur - old) / old * 100
}

// fmtWall renders nanoseconds with an adaptive unit.
func fmtWall(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	}
}

package prof

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var p *Profiler
	ph := p.Phase("x", "")
	if ph != nil {
		t.Fatalf("nil profiler returned non-nil phase")
	}
	tk := ph.Begin()
	ph.End(tk)
	ph.Add(5)
	ph.AddShard(5, 3)
	if got := ph.Name(); got != "" {
		t.Fatalf("nil phase Name = %q", got)
	}
	if p.Snapshot() != nil {
		t.Fatalf("nil profiler Snapshot != nil")
	}
	p.BindMetrics(nil, "prof_")

	var f *Flight
	f.Note(1, "k", "s", 0, 0)
	f.Mark(2, "r")
	if f.Windows() != 0 {
		t.Fatalf("nil flight Windows != 0")
	}
	var sb strings.Builder
	if err := f.WriteTSV(&sb); err != nil {
		t.Fatalf("nil flight WriteTSV: %v", err)
	}
	if sb.String() != "window\tts_ns\tkind\tsubject\tv1\tv2\n" {
		t.Fatalf("nil flight TSV = %q", sb.String())
	}
}

func TestPhaseAccumulation(t *testing.T) {
	p := New()
	ph := p.Phase("sim/run", "event loop")
	if p.Phase("sim/run", "other help") != ph {
		t.Fatalf("Phase not idempotent per name")
	}
	tk := ph.Begin()
	time.Sleep(time.Millisecond)
	ph.End(tk)
	ph.Add(41)
	ph.AddShard(0, 2) // zero adds are dropped

	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snap))
	}
	st := snap[0]
	if st.Name != "sim/run" || st.Count != 42 {
		t.Fatalf("stat = %+v, want name sim/run count 42", st)
	}
	if st.WallNS <= 0 {
		t.Fatalf("timed phase recorded no wall time")
	}
}

func TestSnapshotSortedAndZeroSkipped(t *testing.T) {
	p := New()
	p.Phase("zzz/never", "") // registered, never hit: must not appear
	for _, name := range []string{"b/two", "a/one", "c/three"} {
		p.Phase(name, "").Add(1)
	}
	var got []string
	for _, st := range p.Snapshot() {
		got = append(got, st.Name)
	}
	want := []string{"a/one", "b/two", "c/three"}
	if len(got) != len(want) {
		t.Fatalf("snapshot names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot names = %v, want %v", got, want)
		}
	}
}

func TestShardedCountsDeterministic(t *testing.T) {
	p := New()
	ph := p.Phase("netsim/heap_ops", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ph.AddShard(3, w)
			}
		}(w)
	}
	wg.Wait()
	if got := p.Snapshot()[0].Count; got != 12000 {
		t.Fatalf("sharded count = %d, want 12000", got)
	}
}

type fakeRegistry struct {
	mu     sync.Mutex
	gauges map[string]func() float64
}

func (r *fakeRegistry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]func() float64{}
	}
	r.gauges[name] = fn
}

func TestBindMetrics(t *testing.T) {
	p := New()
	p.PhaseAlloc("memo/replay", "").Add(7)
	reg := &fakeRegistry{}
	p.BindMetrics(reg, "prof_")
	// Phases registered after binding get gauges too.
	p.Phase("sim/run", "").Add(3)

	for name, want := range map[string]float64{
		"prof_memo_replay_count": 7,
		"prof_sim_run_count":     3,
	} {
		fn, ok := reg.gauges[name]
		if !ok {
			t.Fatalf("gauge %s not registered (have %d gauges)", name, len(reg.gauges))
		}
		if got := fn(); got != want {
			t.Fatalf("gauge %s = %v, want %v", name, got, want)
		}
	}
	if _, ok := reg.gauges["prof_memo_replay_allocs"]; !ok {
		t.Fatalf("alloc-tracked phase missing _allocs gauge")
	}
	if _, ok := reg.gauges["prof_sim_run_allocs"]; ok {
		t.Fatalf("count-only phase should not register _allocs gauge")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := New()
	p.Phase("sim/run", "event loop").Add(9)
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	prof, err := ParseProfile(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if len(prof.Phases) != 1 || prof.Phases[0].Name != "sim/run" || prof.Phases[0].Count != 9 {
		t.Fatalf("round trip = %+v", prof.Phases)
	}
	if _, err := ParseProfile(strings.NewReader(`{"phases":[]}`)); err == nil {
		t.Fatalf("ParseProfile accepted an empty profile")
	}
}

func TestWriteTSVFormat(t *testing.T) {
	p := New()
	p.Phase("b", "").Add(2)
	p.Phase("a", "").Add(1)
	p.Phase("never", "")
	var sb strings.Builder
	if err := p.WriteTSV(&sb); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV lines = %d (%q), want header + 2 rows", len(lines), sb.String())
	}
	if lines[0] != "phase\tcount\twall_ns\twall_ms\tallocs" {
		t.Fatalf("TSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a\t1\t") || !strings.HasPrefix(lines[2], "b\t2\t") {
		t.Fatalf("TSV rows not sorted by phase: %q", sb.String())
	}
}

func TestFlightRingAndWindows(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ {
		f.Note(int64(i), "ev", "s", int64(i), 0)
	}
	f.Mark(100, "incident:x")
	if f.Windows() != 1 {
		t.Fatalf("Windows = %d, want 1", f.Windows())
	}
	var sb strings.Builder
	if err := f.WriteTSV(&sb); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	out := sb.String()
	// Ring cap 4 after 6 notes: oldest surviving event is ts 2.
	if strings.Contains(out, "w01\t1\tev") || !strings.Contains(out, "w01\t2\tev") {
		t.Fatalf("ring eviction wrong:\n%s", out)
	}
	if !strings.Contains(out, "w01\t100\tmark\tincident:x\t4\t6\n") {
		t.Fatalf("mark row missing or wrong:\n%s", out)
	}
	// Tail repeats the live ring after the windows.
	if !strings.Contains(out, "tail\t5\tev\ts\t5\t0\n") {
		t.Fatalf("tail missing:\n%s", out)
	}

	// Byte-identical across writes (same state, same bytes).
	var sb2 strings.Builder
	if err := f.WriteTSV(&sb2); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	if sb2.String() != out {
		t.Fatalf("WriteTSV not reproducible")
	}
}

func TestFlightWindowCap(t *testing.T) {
	f := NewFlight(2)
	f.Note(1, "ev", "", 0, 0)
	for i := 0; i < maxFlightWindows+3; i++ {
		f.Mark(int64(i), "r")
	}
	if f.Windows() != maxFlightWindows {
		t.Fatalf("Windows = %d, want %d", f.Windows(), maxFlightWindows)
	}
	var sb strings.Builder
	if err := f.WriteTSV(&sb); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	if !strings.Contains(sb.String(), "marks_dropped\t\t3\t") {
		t.Fatalf("dropped-marks row missing:\n%s", sb.String())
	}
}

package topo

import (
	"testing"
	"testing/quick"
)

func TestBuildHPNProductionScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 15K-GPU build")
	}
	top, err := BuildHPN(DefaultHPN())
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()

	c := top.Count()
	if got := top.TotalGPUs(true); got != 15360 {
		t.Errorf("active GPUs = %d, want 15360", got)
	}
	if got := top.TotalGPUs(false); got != 15*136*8 {
		t.Errorf("total GPUs = %d, want %d", got, 15*136*8)
	}
	// 16 ToRs per segment x 15 segments.
	if c.ToRs != 240 {
		t.Errorf("ToRs = %d, want 240", c.ToRs)
	}
	// 60 Aggs per plane x 2 planes.
	if c.Aggs != 120 {
		t.Errorf("Aggs = %d, want 120", c.Aggs)
	}
	if c.Cores != 0 {
		t.Errorf("single-pod HPN should have no cores, got %d", c.Cores)
	}

	// Every ToR: 136 host-facing downlinks, 60 agg-facing uplinks.
	for _, n := range top.Nodes {
		if n.Kind != KindToR {
			continue
		}
		if len(n.Downlinks) != 136 {
			t.Fatalf("ToR %s has %d downlinks, want 136", n.Name, len(n.Downlinks))
		}
		if len(n.Uplinks) != 60 {
			t.Fatalf("ToR %s has %d uplinks, want 60", n.Name, len(n.Uplinks))
		}
	}
	// Every Agg: 120 ToR-facing downlinks (15 segments x 8 ToRs in plane).
	for _, n := range top.Nodes {
		if n.Kind != KindAgg {
			continue
		}
		if len(n.Downlinks) != 120 {
			t.Fatalf("Agg %s has %d downlinks, want 120", n.Name, len(n.Downlinks))
		}
	}
}

func TestHPNOversubscription(t *testing.T) {
	cfg := DefaultHPN()
	got := OversubscriptionToR(cfg)
	if got < 1.0 || got > 1.1 {
		t.Errorf("ToR oversubscription = %v, want ~1.067", got)
	}
	if agg := OversubscriptionAggCore(cfg); agg != 15 {
		t.Errorf("Agg-Core oversubscription = %v, want 15", agg)
	}
}

func TestHPNPlaneDisjoint(t *testing.T) {
	top, err := BuildHPN(SmallHPN(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	if top.Planes != 2 {
		t.Fatalf("planes = %d", top.Planes)
	}
	// NIC port p lands on a plane-p ToR.
	for _, h := range top.Hosts {
		for _, nic := range h.NICs {
			for pi, lk := range nic.Ports {
				tor := top.Node(top.Link(lk).To)
				if tor.Plane != pi {
					t.Fatalf("port %d landed in plane %d", pi, tor.Plane)
				}
			}
		}
	}
}

func TestHPNSingleToR(t *testing.T) {
	cfg := SmallHPN(1, 4, 4)
	cfg.DualToR = false
	cfg.DualPlane = false
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	for _, h := range top.Hosts {
		for _, nic := range h.NICs {
			if len(nic.Ports) != 1 {
				t.Fatalf("single-ToR NIC has %d ports", len(nic.Ports))
			}
			if got := top.Link(nic.Ports[0]).CapBps; got != 400e9 {
				t.Fatalf("single-ToR access speed = %v, want 400G aggregate", got)
			}
		}
	}
}

func TestHPNDualPlaneRequiresDualToR(t *testing.T) {
	cfg := SmallHPN(1, 2, 2)
	cfg.DualToR = false
	cfg.DualPlane = true
	if _, err := BuildHPN(cfg); err == nil {
		t.Fatal("dual-plane without dual-ToR must be rejected")
	}
}

func TestHPNSinglePlaneClos(t *testing.T) {
	cfg := SmallHPN(2, 4, 4)
	cfg.DualPlane = false // typical Clos tier2 (Figure 12a)
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	if top.Planes != 1 {
		t.Fatalf("planes = %d, want 1", top.Planes)
	}
	// Both ToRs of a dual-ToR set connect to the same aggs.
	a := top.ToR(0, 0, 0, 0)
	b := top.ToR(0, 0, 0, 1)
	aggsOf := func(id NodeID) map[NodeID]bool {
		m := map[NodeID]bool{}
		for _, lk := range top.Node(id).Uplinks {
			m[top.Link(lk).To] = true
		}
		return m
	}
	am, bm := aggsOf(a), aggsOf(b)
	if len(am) != len(bm) {
		t.Fatal("asymmetric agg sets")
	}
	for k := range am {
		if !bm[k] {
			t.Fatal("single-plane ToR pair must share the agg set")
		}
	}
}

func TestHPNMultiPodHasCores(t *testing.T) {
	cfg := SmallHPN(1, 2, 4)
	cfg.Pods = 2
	cfg.AggCoreUplinks = 2
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	c := top.Count()
	if c.Cores == 0 {
		t.Fatal("multi-pod HPN must have cores")
	}
	for _, n := range top.Nodes {
		if n.Kind == KindCore && !n.PerPortHash {
			t.Fatal("HPN cores must use per-port hashing (§7)")
		}
	}
	// Aggs have the configured number of uplinks.
	for _, n := range top.Nodes {
		if n.Kind == KindAgg && len(n.Uplinks) != 2 {
			t.Fatalf("agg uplinks = %d, want 2", len(n.Uplinks))
		}
	}
}

func TestBuildDCN(t *testing.T) {
	top, err := BuildDCN(SmallDCN(2))
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	c := top.Count()
	// 2 pods x 4 segments x 16 hosts.
	if c.Hosts != 128 {
		t.Errorf("hosts = %d, want 128", c.Hosts)
	}
	if got := top.TotalGPUs(false); got != 1024 {
		t.Errorf("GPUs = %d, want 1024 (512/pod)", got)
	}
	if c.ToRs != 16 {
		t.Errorf("ToRs = %d, want 16", c.ToRs)
	}
	if c.Aggs != 16 {
		t.Errorf("Aggs = %d, want 16 (8/pod)", c.Aggs)
	}
	// ToR: 128 host downlinks, 64 uplinks (8 links x 8 aggs).
	for _, n := range top.Nodes {
		if n.Kind != KindToR {
			continue
		}
		if len(n.Downlinks) != 128 || len(n.Uplinks) != 64 {
			t.Fatalf("ToR %s: %d down / %d up, want 128/64", n.Name, len(n.Downlinks), len(n.Uplinks))
		}
	}
	// Legacy hash: all switches share a seed.
	var seed uint64
	first := true
	for _, n := range top.Nodes {
		if n.Kind == KindHost {
			continue
		}
		if first {
			seed, first = n.HashSeed, false
		} else if n.HashSeed != seed {
			t.Fatal("DCN+ switches must share the legacy hash seed")
		}
	}
}

func TestDCNFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-GPU build")
	}
	top, err := BuildDCN(DefaultDCN())
	if err != nil {
		t.Fatal(err)
	}
	if got := top.TotalGPUs(false); got != 16384 {
		t.Errorf("DCN+ GPUs = %d, want 16384", got)
	}
}

func TestHPNUniqueSeeds(t *testing.T) {
	top, err := BuildHPN(SmallHPN(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, n := range top.Nodes {
		if n.Kind == KindHost {
			continue
		}
		if seeds[n.HashSeed] {
			t.Fatal("duplicate switch hash seed in HPN")
		}
		seeds[n.HashSeed] = true
	}
}

func TestBuildFrontend(t *testing.T) {
	cfg := DefaultFrontend()
	top, err := BuildFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	wantHosts := cfg.Segments*cfg.HostsPerSegment + cfg.StorageHosts
	if len(top.Hosts) != wantHosts {
		t.Fatalf("frontend hosts = %d, want %d", len(top.Hosts), wantHosts)
	}
	if cfg.StorageHostStart() != cfg.Segments*cfg.HostsPerSegment {
		t.Fatal("storage host start index wrong")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	if rows[0].SearchSpace != 60 {
		t.Errorf("HPN search space = %d, want 60", rows[0].SearchSpace)
	}
	if rows[1].SearchSpace != 4096 {
		t.Errorf("SuperPod = %d, want 4096", rows[1].SearchSpace)
	}
	if rows[2].SearchSpace != 2048 {
		t.Errorf("Jupiter = %d, want 2048", rows[2].SearchSpace)
	}
	if rows[3].SearchSpace != 2304 {
		t.Errorf("fat tree = %d, want 2304", rows[3].SearchSpace)
	}
	if rows[0].GPUs != 15360 {
		t.Errorf("HPN pod GPUs = %d, want 15360", rows[0].GPUs)
	}
	// HPN must be 1-2 orders of magnitude smaller than all 3-tier fabrics.
	for _, r := range rows[1:] {
		ratio := float64(r.SearchSpace) / float64(rows[0].SearchSpace)
		if ratio < 10 || ratio > 100 {
			t.Errorf("%s reduction ratio %v outside 1-2 magnitudes", r.Arch, ratio)
		}
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	want := []struct{ t1, t2 int }{
		{64, 2048}, {128, 4096}, {1024, 4096}, {1024, 8192}, {1024, 15360},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i].Tier1GPUs != w.t1 || rows[i].Tier2GPUs != w.t2 {
			t.Errorf("row %d (%s) = %d/%d, want %d/%d",
				i, rows[i].Mechanism, rows[i].Tier1GPUs, rows[i].Tier2GPUs, w.t1, w.t2)
		}
	}
}

func TestTable4(t *testing.T) {
	rows := Table4()
	if rows[0].GPUsPerPod != 15360 || rows[0].Tier2Planes != 2 {
		t.Errorf("any-to-any: %+v", rows[0])
	}
	if rows[1].GPUsPerPod != 122880 || rows[1].Tier2Planes != 16 {
		t.Errorf("rail-only: %+v", rows[1])
	}
}

func TestLinkAndNodeState(t *testing.T) {
	top, err := BuildHPN(SmallHPN(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	lk := top.AccessLink(0, 0, 0)
	if !top.AccessUp(0, 0, 0) {
		t.Fatal("fresh link should be up")
	}
	top.SetCableState(lk, false)
	if top.AccessUp(0, 0, 0) {
		t.Fatal("downed link should report down")
	}
	if top.Link(top.Link(lk).Reverse).Up {
		t.Fatal("cable state must affect both directions")
	}
	top.SetCableState(lk, true)
	tor := top.Link(lk).To
	top.SetNodeState(tor, false)
	if top.AccessUp(0, 0, 0) {
		t.Fatal("link to crashed ToR should report down")
	}
	if top.LinkUsable(lk) {
		t.Fatal("LinkUsable must consider node state")
	}
}

// Property: for any small HPN shape, the build validates and the GPU count
// equals segments x hosts x rails.
func TestHPNShapeProperty(t *testing.T) {
	f := func(segRaw, hostRaw, aggRaw uint8) bool {
		segs := int(segRaw%3) + 1
		hosts := int(hostRaw%6) + 1
		aggs := int(aggRaw%4) + 1
		top, err := BuildHPN(SmallHPN(segs, hosts, aggs))
		if err != nil {
			return false
		}
		if errs := top.Validate(); len(errs) > 0 {
			return false
		}
		return top.TotalGPUs(false) == segs*hosts*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHostPortOf(t *testing.T) {
	top, err := BuildHPN(SmallHPN(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	up := top.AccessLink(1, 3, 1)
	down := top.Link(up).Reverse
	hp, ok := top.HostPortOf(down)
	if !ok || hp.Host != 1 || hp.NIC != 3 || hp.Port != 1 {
		t.Fatalf("HostPortOf = %+v, %v", hp, ok)
	}
	if _, ok := top.HostPortOf(up); ok {
		t.Fatal("host uplink direction should not resolve")
	}
}

func TestRailOnlyTier2(t *testing.T) {
	cfg := SmallHPN(2, 4, 2)
	cfg.RailOnlyTier2 = true
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.MustValidate()
	if top.Planes != 16 {
		t.Fatalf("planes = %d, want 16 (one pair per rail)", top.Planes)
	}
	// Every ToR's plane encodes (rail, port).
	for _, n := range top.Nodes {
		if n.Kind != KindToR {
			continue
		}
		if n.Plane != n.Rail*2+n.Index {
			t.Fatalf("ToR %s plane %d, want %d", n.Name, n.Plane, n.Rail*2+n.Index)
		}
	}
	// Aggs of different rails never share a ToR.
	for _, n := range top.Nodes {
		if n.Kind != KindAgg {
			continue
		}
		for _, dl := range n.Downlinks {
			tor := top.Node(top.Link(dl).To)
			if tor.Plane != n.Plane {
				t.Fatal("rail-only agg wired across planes")
			}
		}
	}
}

func TestRailOnlyRequiresDualPlane(t *testing.T) {
	cfg := SmallHPN(1, 2, 2)
	cfg.DualPlane = false
	cfg.RailOnlyTier2 = true
	if _, err := BuildHPN(cfg); err == nil {
		t.Fatal("rail-only without dual-plane accepted")
	}
}

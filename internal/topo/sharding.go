package topo

import "fmt"

// Sharding is a partition of a fabric for the sharded event loop: every
// node and link is assigned to exactly one pod shard or to the global
// domain. The assignment is structural — it follows the fabric's pod
// boundaries, the only place HPN lets traffic cross between pods — so it
// is computed once from the built topology and never changes at runtime.
//
// Domain numbering matches sim.Sharded: 0 is the global domain (core
// switches, agg-core links — the crossing points), 1..N are the pods.
type Sharding struct {
	// N is the number of pod shards.
	N int

	shardOfNode []int32 // per NodeID; GlobalDomain (0) for cores
	shardOfLink []int32 // per LinkID; GlobalDomain (0) for crossing links

	// ShardLinks[s-1] lists the links owned by shard s, ascending. A
	// shard-scoped simulator restricts its state fingerprints and routing
	// to exactly this set.
	ShardLinks [][]LinkID
	// CrossLinks lists the plane-crossing links (agg<->core), ascending:
	// the annotation routing and escalation decisions key on.
	CrossLinks []LinkID
}

// ShardByPod partitions the topology one shard per pod. Every node with a
// pod index lands in that pod's shard; cores (Pod == -1) and every link
// with endpoints in different domains land in the global domain. It
// refuses single-pod fabrics: with nothing to cross, sharding is pure
// overhead and callers should run the serial engine.
func ShardByPod(t *Topology) (*Sharding, error) {
	if t.Pods < 2 {
		return nil, fmt.Errorf("topo: sharding needs a multi-pod fabric, got %d pod(s)", t.Pods)
	}
	sh := &Sharding{
		N:           t.Pods,
		shardOfNode: make([]int32, len(t.Nodes)),
		shardOfLink: make([]int32, len(t.Links)),
		ShardLinks:  make([][]LinkID, t.Pods),
	}
	for _, n := range t.Nodes {
		if n.Pod < 0 {
			sh.shardOfNode[n.ID] = 0
			continue
		}
		if n.Pod >= t.Pods {
			return nil, fmt.Errorf("topo: node %s has pod %d outside 0..%d", n.Name, n.Pod, t.Pods-1)
		}
		sh.shardOfNode[n.ID] = int32(n.Pod + 1)
	}
	for _, l := range t.Links {
		a, b := sh.shardOfNode[l.From], sh.shardOfNode[l.To]
		if a == b && a != 0 {
			sh.shardOfLink[l.ID] = a
			sh.ShardLinks[a-1] = append(sh.ShardLinks[a-1], l.ID)
			continue
		}
		sh.shardOfLink[l.ID] = 0
		sh.CrossLinks = append(sh.CrossLinks, l.ID)
	}
	return sh, nil
}

// ShardOfNode returns the domain owning the node (0 = global).
func (s *Sharding) ShardOfNode(n NodeID) int { return int(s.shardOfNode[n]) }

// ShardOfLink returns the domain owning the link (0 = global/crossing).
func (s *Sharding) ShardOfLink(l LinkID) int { return int(s.shardOfLink[l]) }

// ShardOfHost returns the domain owning the host.
func (s *Sharding) ShardOfHost(t *Topology, host int) int {
	return int(s.shardOfNode[t.Hosts[host].Node])
}

// Crossing reports whether the link is a plane-crossing point: owned by
// the global domain, so any flow traversing it must be simulated there.
func (s *Sharding) Crossing(l LinkID) bool { return s.shardOfLink[l] == 0 }

package topo

// This file derives the paper's architecture-comparison tables from first
// principles (port budgets and oversubscription ratios) rather than
// hardcoding conclusions. The constants are the published parameters of each
// architecture.

// PathComplexity is one row of Table 1: the search space a host faces when
// looking for disjoint equal-cost paths.
type PathComplexity struct {
	Arch          string
	GPUs          int
	Tiers         int
	Participating string // switches whose hash participates in load balance
	SearchSpace   int    // number of candidate links to consider
}

// Table1 reproduces "Table 1: Complexity of path selection".
//
// HPN: dual-plane pins the whole downstream path once a ToR uplink is
// chosen, so only the ToR's links participate: O(AggsPerPlane).
// 3-tier fabrics multiply the per-tier fanouts the paper reports.
func Table1() []PathComplexity {
	hpn := DefaultHPN()
	return []PathComplexity{
		{
			Arch:  "Pod in HPN",
			GPUs:  hpn.SegmentsPerPod * hpn.ActiveHostsPerSegment * hpn.Rails,
			Tiers: 2, Participating: "ToR",
			SearchSpace: hpn.AggsPerPlane,
		},
		{
			Arch: "SuperPod", GPUs: 16384, Tiers: 3,
			Participating: "ToR+Aggregation+Core",
			SearchSpace:   32 * 32 * 4,
		},
		{
			Arch: "Jupiter", GPUs: 26000, Tiers: 3,
			Participating: "ToR+Aggregation",
			SearchSpace:   8 * 256,
		},
		{
			Arch: "Fat tree (k=48)", GPUs: 27648, Tiers: 3,
			Participating: "ToR+Aggregation",
			SearchSpace:   48 * 48,
		},
	}
}

// ScaleRow is one row of Table 2: the tier1/tier2 GPU scale unlocked by each
// mechanism, cumulatively.
type ScaleRow struct {
	Mechanism  string
	Tier1GPUs  int
	Tier2GPUs  int
	Tier1Note  string
	Tier2Note  string
	Multiplier float64 // scale factor contributed to the affected tier
}

// chip51 models the 51.2Tbps single-chip switch: 128x400G equivalent port
// budget (§5.1).
const (
	chipPorts400G  = 128
	torAggBundle   = 2 // traditional Clos bundles parallel ToR-Agg links
	railsPerHost   = 8
	aggCoreUplinks = 8 // the 15:1 oversubscription keeps 8 of 64 1:1 uplinks
)

// Table2 reproduces "Table 2: Key mechanisms affecting maximal scale".
//
// Derivations (each from the 128x400G chip port budget):
//
//   - 51.2T Clos: 1:1 ToR splits ports 64 down / 64 up; a 400G GPU per down
//     port gives 64 GPUs in tier1. In tier2 a 1:1 Agg has 64 ToR-facing
//     ports and the traditional fabric bundles 2 parallel links per
//     ToR-Agg pair, supporting 32 ToRs x 64 GPUs = 2K.
//   - Dual-ToR: each NIC's 2x200G is served by two ToRs, so each ToR's down
//     port carries half a GPU's bandwidth: both tiers double.
//   - Rail-optimized: the 8 NICs of a host land on 8 different ToR sets, so
//     a segment spans 8x more GPUs (tier1 x8 -> 1K). Tier2 port math is
//     unchanged.
//   - Dual-plane: each Agg only carries one plane, halving the ToR links it
//     must terminate: tier2 doubles.
//   - 15:1 oversubscription: Aggs keep only 8 core uplinks, freeing 56
//     more ports for segments: x(120/64) = x1.875 -> 15 segments, 15K GPUs.
func Table2() []ScaleRow {
	tor1to1Down := chipPorts400G / 2 // 64
	tier1 := tor1to1Down             // 64 GPUs (one 400G GPU per port)
	tier2 := tor1to1Down / torAggBundle * tier1

	rows := []ScaleRow{{
		Mechanism: "51.2Tbps Clos",
		Tier1GPUs: tier1, Tier2GPUs: tier2,
		Tier1Note: "64 down ports x 400G, 1:1", Tier2Note: "32 ToRs x 64 GPUs",
		Multiplier: 1,
	}}

	// Dual-ToR: x2 both tiers.
	tier1 *= 2
	tier2 *= 2
	rows = append(rows, ScaleRow{
		Mechanism: "Dual-ToR", Tier1GPUs: tier1, Tier2GPUs: tier2,
		Tier1Note: "each NIC served by 2 ToRs", Tier2Note: "x2", Multiplier: 2,
	})

	// Rail-optimized: tier1 x8.
	tier1 *= railsPerHost
	rows = append(rows, ScaleRow{
		Mechanism: "Rail-optimized", Tier1GPUs: tier1, Tier2GPUs: tier2,
		Tier1Note: "8 rails x 128 GPUs = 1K per segment", Tier2Note: "-", Multiplier: 8,
	})

	// Dual-plane: tier2 x2.
	tier2 *= 2
	rows = append(rows, ScaleRow{
		Mechanism: "Dual-plane", Tier1GPUs: tier1, Tier2GPUs: tier2,
		Tier1Note: "-", Tier2Note: "Agg terminates one plane only", Multiplier: 2,
	})

	// 15:1 oversubscription: tier2 x1.875 (120 ToR-facing ports vs 64).
	over := float64(chipPorts400G-aggCoreUplinks) / float64(chipPorts400G/2)
	tier2 = int(float64(tier2) * over)
	rows = append(rows, ScaleRow{
		Mechanism: "Oversubscription of 15:1", Tier1GPUs: tier1, Tier2GPUs: tier2,
		Tier1Note: "-", Tier2Note: "120 of 128 Agg ports face ToRs", Multiplier: over,
	})
	return rows
}

// Tier2Design is one column of Table 4: any-to-any vs rail-only tier2.
type Tier2Design struct {
	Name          string
	Tier2Planes   int
	GPUsPerPod    int
	CommLimits    string
	SegmentsOfPod int
}

// Table4 reproduces "Table 4: Any-to-any tier2 vs. Rail-only tier2".
// Rail-only removes cross-rail Agg connectivity: each of the 8 rails gets
// its own plane pair (16 planes) and each Agg serves 8x more segments.
func Table4() []Tier2Design {
	hpn := DefaultHPN()
	anySegments := hpn.SegmentsPerPod
	segGPUs := hpn.ActiveHostsPerSegment * hpn.Rails
	railOnlySegments := anySegments * hpn.Rails
	return []Tier2Design{
		{
			Name: "Any-to-any tier2", Tier2Planes: 2,
			GPUsPerPod: anySegments * segGPUs, SegmentsOfPod: anySegments,
			CommLimits: "None",
		},
		{
			Name: "Rail-only tier2", Tier2Planes: 2 * hpn.Rails,
			GPUsPerPod: railOnlySegments * segGPUs, SegmentsOfPod: railOnlySegments,
			CommLimits: "Rail-only",
		},
	}
}

// OversubscriptionToR returns the ToR down/up capacity ratio of an HPN
// config (paper: 1.067:1 counting active ports only).
func OversubscriptionToR(cfg HPNConfig) float64 {
	down := float64(cfg.ActiveHostsPerSegment) * cfg.AccessGbps
	up := float64(cfg.AggsPerPlane) * cfg.TorAggGbps
	return down / up
}

// OversubscriptionAggCore returns the Agg down/up ratio (paper: 15:1).
func OversubscriptionAggCore(cfg HPNConfig) float64 {
	down := float64(cfg.SegmentsPerPod*cfg.Rails) * cfg.TorAggGbps // per plane
	up := float64(cfg.AggCoreUplinks) * cfg.CoreGbps
	return down / up
}

package topo

import "fmt"

// FrontendConfig parameterizes the HPN frontend network (§8): a classic
// 3-tier topology with 1:1 convergence at both Aggregation and Core, dual-
// ToR access, carrying management, storage (CPFS/OSS) and inference traffic.
// Storage hosts live here, physically decoupled from the training backend.
type FrontendConfig struct {
	Segments        int
	HostsPerSegment int
	StorageHosts    int // 96-128 in production, appended as their own segment(s)
	AccessGbps      float64
	FabricGbps      float64
	AggsPerPod      int
	Cores           int
	Seed            uint64
}

// DefaultFrontend returns a production-shaped frontend: dual-ToR access,
// 1:1 everywhere, one storage cluster of 96 hosts.
func DefaultFrontend() FrontendConfig {
	return FrontendConfig{
		Segments:        8,
		HostsPerSegment: 64,
		StorageHosts:    96,
		AccessGbps:      200,
		FabricGbps:      400,
		AggsPerPod:      8,
		Cores:           8,
		Seed:            0xf0e,
	}
}

// BuildFrontend constructs the frontend network. Hosts have a single
// frontend NIC (2x200G, dual-ToR). Storage hosts are marked Backup=false
// and placed in trailing segments; callers identify them by index >=
// Segments*HostsPerSegment.
func BuildFrontend(cfg FrontendConfig) (*Topology, error) {
	if cfg.Segments <= 0 || cfg.HostsPerSegment <= 0 {
		return nil, fmt.Errorf("topo: invalid frontend config %+v", cfg)
	}
	t := New("frontend", 1, 1)
	ports := map[NodeID]int{}
	seedOf := func(id NodeID) uint64 { return cfg.Seed + uint64(id)*0x9e3779b97f4a7c15 }

	var cores []NodeID
	for i := 0; i < cfg.Cores; i++ {
		id := t.AddNode(Node{Kind: KindCore, Name: fmt.Sprintf("fe-core-%d", i),
			Pod: -1, Segment: -1, Plane: 0, Rail: -1, Index: i})
		t.Nodes[id].HashSeed = seedOf(id)
		cores = append(cores, id)
		t.coreIndex[0] = append(t.coreIndex[0], id)
	}
	var aggs []NodeID
	for i := 0; i < cfg.AggsPerPod; i++ {
		id := t.AddNode(Node{Kind: KindAgg, Name: fmt.Sprintf("fe-agg-%d", i),
			Pod: 0, Segment: -1, Plane: 0, Rail: -1, Index: i})
		t.Nodes[id].HashSeed = seedOf(id)
		aggs = append(aggs, id)
		t.aggIndex[[2]int{0, 0}] = append(t.aggIndex[[2]int{0, 0}], id)
		for _, c := range cores {
			t.connect(ports, id, c, cfg.FabricGbps*1e9, 0)
		}
	}

	storageSegments := (cfg.StorageHosts + cfg.HostsPerSegment - 1) / cfg.HostsPerSegment
	totalSegments := cfg.Segments + storageSegments
	remainingStorage := cfg.StorageHosts
	for seg := 0; seg < totalSegments; seg++ {
		pair := make([]NodeID, 2)
		for ti := 0; ti < 2; ti++ {
			id := t.AddNode(Node{Kind: KindToR, Name: fmt.Sprintf("fe-tor-seg%d-%d", seg, ti),
				Pod: 0, Segment: seg, Plane: 0, Rail: -1, Index: ti})
			t.Nodes[id].HashSeed = seedOf(id)
			pair[ti] = id
			t.torIndex[[4]int{0, seg, 0, ti}] = id
			for _, a := range aggs {
				t.connect(ports, id, a, cfg.FabricGbps*1e9, 0)
			}
		}
		nHosts := cfg.HostsPerSegment
		if seg >= cfg.Segments { // storage segment
			if remainingStorage < nHosts {
				nHosts = remainingStorage
			}
			remainingStorage -= nHosts
		}
		for hIdx := 0; hIdx < nHosts; hIdx++ {
			hn := t.AddNode(Node{Kind: KindHost, Name: fmt.Sprintf("fe-host-seg%d-%d", seg, hIdx),
				Pod: 0, Segment: seg, Plane: -1, Rail: -1, Index: hIdx})
			h := &Host{Node: hn, Pod: 0, Segment: seg, Index: hIdx}
			nic := NIC{Rail: 0}
			for ti := 0; ti < 2; ti++ {
				up := t.connect(ports, hn, pair[ti], cfg.AccessGbps*1e9, 0)
				nic.Ports = append(nic.Ports, up)
				t.hostOfLink[t.Links[up].Reverse] = HostPort{Host: len(t.Hosts), NIC: 0, Port: ti}
			}
			h.NICs = append(h.NICs, nic)
			t.Hosts = append(t.Hosts, h)
		}
	}
	return t, nil
}

// StorageHostStart returns the index of the first storage host in a
// frontend built with cfg.
func (cfg FrontendConfig) StorageHostStart() int { return cfg.Segments * cfg.HostsPerSegment }

package topo

import "fmt"

// HPNConfig parameterizes the HPN backend builder. DefaultHPN returns the
// paper's production values (§3, Figure 7); tests and experiments shrink the
// counts but keep the structure.
type HPNConfig struct {
	Pods           int
	SegmentsPerPod int
	// ActiveHostsPerSegment and BackupHostsPerSegment: 128 + 8 in production
	// (1024 active + 64 backup GPUs per segment).
	ActiveHostsPerSegment int
	BackupHostsPerSegment int
	// Rails is the number of GPUs (and backend NICs) per host.
	Rails int

	// DualToR connects the two 200G ports of each NIC to two different ToRs
	// (§4). When false, each NIC has a single 400G uplink to one ToR
	// (the traditional single-ToR design, used as the reliability baseline).
	DualToR bool
	// DualPlane splits the ToR/Agg fabric into two disjoint forwarding
	// planes (§6.1). When false the tier2 is a typical Clos: every ToR
	// connects to every Agg and Aggs reach a NIC via either ToR of its
	// dual-ToR set (Figure 12a) — the hash-polarization ablation.
	DualPlane bool
	// RailOnlyTier2 builds the Table 4 counterfactual: each rail gets its
	// own pair of planes (16 planes total), Aggs never interconnect rails,
	// and cross-rail traffic has no fabric path at all. Scales a pod 8x
	// but breaks MoE-style all-to-all and serverless multi-tenant traffic
	// (§10, "Why not employ the rail-optimized idea on tier2").
	RailOnlyTier2 bool

	// AccessGbps is the per-port host->ToR speed (200 under dual-ToR; the
	// builder uses 2x this for the single 400G port under single-ToR).
	AccessGbps float64
	// TorAggGbps is the ToR->Agg link speed (400).
	TorAggGbps float64
	// AggsPerPlane is the number of aggregation switches per plane per pod
	// (60 in production).
	AggsPerPlane int

	// WithCore adds the tier3 Core layer (§7) even for a single pod;
	// multi-pod builds always get it. AggCoreUplinks is the number of 400G
	// uplinks per Agg (8 in production: the 15:1 oversubscription).
	WithCore       bool
	AggCoreUplinks int
	CoreGbps       float64
	CoresPerPlane  int // 0 = derive from port budget

	// SharedHashSeed gives every switch the same ECMP hash function, the
	// legacy deployment that produces hash polarization. HPN production
	// leaves this false; the DCN+ baseline sets it.
	SharedHashSeed bool
	// Seed is the base for all per-switch hash seeds.
	Seed uint64
}

// DefaultHPN returns the production-scale HPN configuration from the paper:
// one pod, 15 segments, 136 hosts (128 active + 8 backup) per segment,
// 8 rails, dual-ToR + dual-plane, 60 Aggs per plane, 15:1 Agg-Core
// oversubscription.
func DefaultHPN() HPNConfig {
	return HPNConfig{
		Pods:                  1,
		SegmentsPerPod:        15,
		ActiveHostsPerSegment: 128,
		BackupHostsPerSegment: 8,
		Rails:                 8,
		DualToR:               true,
		DualPlane:             true,
		AccessGbps:            200,
		TorAggGbps:            400,
		AggsPerPlane:          60,
		AggCoreUplinks:        8,
		CoreGbps:              400,
		Seed:                  0x4a50,
	}
}

// SmallHPN returns a reduced HPN keeping the full structure: useful for
// tests and examples (segments x hostsPerSegment hosts, dual-ToR,
// dual-plane, aggsPerPlane aggs).
func SmallHPN(segments, hostsPerSegment, aggsPerPlane int) HPNConfig {
	c := DefaultHPN()
	c.SegmentsPerPod = segments
	c.ActiveHostsPerSegment = hostsPerSegment
	c.BackupHostsPerSegment = 0
	c.AggsPerPlane = aggsPerPlane
	return c
}

// BuildHPN constructs the HPN backend fabric described by cfg.
func BuildHPN(cfg HPNConfig) (*Topology, error) {
	if cfg.Pods <= 0 || cfg.SegmentsPerPod <= 0 || cfg.ActiveHostsPerSegment <= 0 || cfg.Rails <= 0 {
		return nil, fmt.Errorf("topo: invalid HPN config %+v", cfg)
	}
	planes := 1
	torsPerRail := 1
	if cfg.DualToR {
		torsPerRail = 2
	}
	if cfg.DualPlane {
		if !cfg.DualToR {
			return nil, fmt.Errorf("topo: dual-plane requires dual-ToR")
		}
		planes = 2
	}
	if cfg.RailOnlyTier2 {
		if !cfg.DualPlane {
			return nil, fmt.Errorf("topo: rail-only tier2 requires dual-plane")
		}
		// One plane pair per rail: plane id = rail*2 + port.
		planes = 2 * cfg.Rails
	}
	withCore := cfg.WithCore || cfg.Pods > 1

	t := New("hpn", planes, cfg.Pods)
	ports := map[NodeID]int{}
	seedOf := func(id NodeID) uint64 {
		if cfg.SharedHashSeed {
			return cfg.Seed
		}
		return cfg.Seed*0x9e3779b97f4a7c15 + uint64(id)*0xbf58476d1ce4e5b9 + 1
	}

	hostsPerSegment := cfg.ActiveHostsPerSegment + cfg.BackupHostsPerSegment

	// Core layer (tier3), shared across pods, one set per plane.
	var cores [][]NodeID // [plane][i]
	if withCore {
		coresPerPlane := cfg.CoresPerPlane
		if coresPerPlane <= 0 {
			// Size cores so each has at most 64 downlinks per plane.
			total := cfg.Pods * cfg.AggsPerPlane * cfg.AggCoreUplinks
			coresPerPlane = (total + 63) / 64
			if coresPerPlane == 0 {
				coresPerPlane = 1
			}
		}
		cores = make([][]NodeID, planes)
		for p := 0; p < planes; p++ {
			for i := 0; i < coresPerPlane; i++ {
				id := t.AddNode(Node{
					Kind: KindCore, Name: fmt.Sprintf("core-p%d-%d", p, i),
					Pod: -1, Segment: -1, Plane: p, Rail: -1, Index: i,
					PerPortHash: true,
				})
				t.Nodes[id].HashSeed = seedOf(id)
				cores[p] = append(cores[p], id)
				t.coreIndex[p] = append(t.coreIndex[p], id)
			}
		}
	}

	for pod := 0; pod < cfg.Pods; pod++ {
		// Aggregation switches, per plane.
		aggs := make([][]NodeID, planes)
		for p := 0; p < planes; p++ {
			for i := 0; i < cfg.AggsPerPlane; i++ {
				id := t.AddNode(Node{
					Kind: KindAgg, Name: fmt.Sprintf("agg-pod%d-p%d-%d", pod, p, i),
					Pod: pod, Segment: -1, Plane: p, Rail: -1, Index: i,
				})
				t.Nodes[id].HashSeed = seedOf(id)
				aggs[p] = append(aggs[p], id)
				t.aggIndex[[2]int{pod, p}] = append(t.aggIndex[[2]int{pod, p}], id)
			}
			// Agg -> Core uplinks, round-robin over this plane's cores.
			if withCore {
				cs := cores[p]
				for ai, a := range aggs[p] {
					for u := 0; u < cfg.AggCoreUplinks; u++ {
						core := cs[(ai*cfg.AggCoreUplinks+u)%len(cs)]
						t.connect(ports, a, core, cfg.CoreGbps*1e9, p)
					}
				}
			}
		}

		for seg := 0; seg < cfg.SegmentsPerPod; seg++ {
			// ToRs: one per (rail, tor-index); tor-index == plane when
			// dual-plane, both ToRs in plane 0 otherwise.
			tors := make([][]NodeID, cfg.Rails)
			for r := 0; r < cfg.Rails; r++ {
				tors[r] = make([]NodeID, torsPerRail)
				for ti := 0; ti < torsPerRail; ti++ {
					plane := 0
					if cfg.RailOnlyTier2 {
						plane = r*2 + ti
					} else if cfg.DualPlane {
						plane = ti
					}
					id := t.AddNode(Node{
						Kind: KindToR,
						Name: fmt.Sprintf("tor-pod%d-seg%d-r%d-%d", pod, seg, r, ti),
						Pod:  pod, Segment: seg, Plane: plane, Rail: r, Index: ti,
					})
					t.Nodes[id].HashSeed = seedOf(id)
					tors[r][ti] = id
					t.torIndex[[4]int{pod, seg, r, ti}] = id

					// ToR -> Agg: one link to every Agg of the ToR's plane.
					// Under single-plane (typical Clos) every ToR connects
					// to every Agg of plane 0.
					for _, a := range aggs[plane] {
						t.connect(ports, id, a, cfg.TorAggGbps*1e9, plane)
					}
				}
			}

			// Hosts.
			for hIdx := 0; hIdx < hostsPerSegment; hIdx++ {
				hn := t.AddNode(Node{
					Kind: KindHost,
					Name: fmt.Sprintf("host-pod%d-seg%d-%d", pod, seg, hIdx),
					Pod:  pod, Segment: seg, Plane: -1, Rail: -1, Index: hIdx,
				})
				h := &Host{
					Node: hn, Pod: pod, Segment: seg, Index: hIdx,
					Backup: hIdx >= cfg.ActiveHostsPerSegment,
				}
				for r := 0; r < cfg.Rails; r++ {
					nic := NIC{Rail: r}
					speed := cfg.AccessGbps * 1e9
					if !cfg.DualToR {
						speed *= 2 // single 400G port aggregates the NIC
					}
					for ti := 0; ti < torsPerRail; ti++ {
						up := t.connect(ports, hn, tors[r][ti], speed, t.Nodes[tors[r][ti]].Plane)
						nic.Ports = append(nic.Ports, up)
						t.hostOfLink[t.Links[up].Reverse] = HostPort{Host: len(t.Hosts), NIC: r, Port: ti}
					}
					h.NICs = append(h.NICs, nic)
				}
				t.Hosts = append(t.Hosts, h)
			}
		}
	}
	return t, nil
}

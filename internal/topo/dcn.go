package topo

import "fmt"

// DCNConfig parameterizes the DCN+ baseline builder (Appendix C): Alibaba's
// previous-generation 3-tier Clos training network with dual-ToR but without
// rail optimization, dual-plane or per-port core hashing, and with a shared
// ECMP hash function at every tier (the legacy deployment that exhibits
// hash polarization).
type DCNConfig struct {
	Pods            int
	SegmentsPerPod  int // 4
	HostsPerSegment int // 16 (128 GPUs per segment)
	Rails           int // 8 NICs per host, all on the same dual-ToR set

	AccessGbps float64 // 200 per NIC port
	TorAggGbps float64 // 400
	// AggsPerPod is 8; TorAggParallel is the number of parallel 400G links
	// between each ToR and each Agg (8, giving each ToR 64 uplinks and the
	// pod full bisection bandwidth).
	AggsPerPod     int
	TorAggParallel int

	WithCore        int // number of core switches (128 in production); 0 = no tier3
	AggCoreUplinks  int // 64 per agg
	CoreGbps        float64
	CoreParallelism int // parallel links agg->core pairing granularity (derived if 0)

	Seed uint64
}

// DefaultDCN returns the production DCN+ configuration: 32 pods of 4
// segments x 16 hosts (512 GPUs/pod, 16,384 GPUs total), 8 Aggs per pod,
// 128 cores.
func DefaultDCN() DCNConfig {
	return DCNConfig{
		Pods:            32,
		SegmentsPerPod:  4,
		HostsPerSegment: 16,
		Rails:           8,
		AccessGbps:      200,
		TorAggGbps:      400,
		AggsPerPod:      8,
		TorAggParallel:  8,
		WithCore:        128,
		AggCoreUplinks:  64,
		CoreGbps:        400,
		Seed:            0xdc4e,
	}
}

// SmallDCN returns a reduced DCN+ with the given pod count, keeping the
// 4x16-host pod structure.
func SmallDCN(pods int) DCNConfig {
	c := DefaultDCN()
	c.Pods = pods
	if pods <= 1 {
		c.WithCore = 0
	} else {
		c.WithCore = 4 * pods
	}
	return c
}

// BuildDCN constructs the DCN+ baseline fabric.
func BuildDCN(cfg DCNConfig) (*Topology, error) {
	if cfg.Pods <= 0 || cfg.SegmentsPerPod <= 0 || cfg.HostsPerSegment <= 0 || cfg.Rails <= 0 {
		return nil, fmt.Errorf("topo: invalid DCN+ config %+v", cfg)
	}
	t := New("dcn+", 1, cfg.Pods)
	ports := map[NodeID]int{}
	// Legacy fabric: one shared hash function everywhere — the setup in
	// which cascading hashes polarize (§2.2).
	seed := cfg.Seed

	// Core layer.
	var cores []NodeID
	for i := 0; i < cfg.WithCore; i++ {
		id := t.AddNode(Node{
			Kind: KindCore, Name: fmt.Sprintf("core-%d", i),
			Pod: -1, Segment: -1, Plane: 0, Rail: -1, Index: i,
			HashSeed: seed,
		})
		cores = append(cores, id)
		t.coreIndex[0] = append(t.coreIndex[0], id)
	}

	for pod := 0; pod < cfg.Pods; pod++ {
		var aggs []NodeID
		for i := 0; i < cfg.AggsPerPod; i++ {
			id := t.AddNode(Node{
				Kind: KindAgg, Name: fmt.Sprintf("agg-pod%d-%d", pod, i),
				Pod: pod, Segment: -1, Plane: 0, Rail: -1, Index: i,
				HashSeed: seed,
			})
			aggs = append(aggs, id)
			t.aggIndex[[2]int{pod, 0}] = append(t.aggIndex[[2]int{pod, 0}], id)
			if len(cores) > 0 {
				for u := 0; u < cfg.AggCoreUplinks; u++ {
					core := cores[(i*cfg.AggCoreUplinks+u)%len(cores)]
					t.connect(ports, id, core, cfg.CoreGbps*1e9, 0)
				}
			}
		}

		for seg := 0; seg < cfg.SegmentsPerPod; seg++ {
			// One dual-ToR set per segment; every NIC of every host in the
			// segment lands on this pair (no rail optimization).
			pair := make([]NodeID, 2)
			for ti := 0; ti < 2; ti++ {
				id := t.AddNode(Node{
					Kind: KindToR, Name: fmt.Sprintf("tor-pod%d-seg%d-%d", pod, seg, ti),
					Pod: pod, Segment: seg, Plane: 0, Rail: -1, Index: ti,
					HashSeed: seed,
				})
				pair[ti] = id
				// Rail key is 0: DCN+ is not rail-optimized.
				t.torIndex[[4]int{pod, seg, 0, ti}] = id
				for _, a := range aggs {
					for k := 0; k < cfg.TorAggParallel; k++ {
						t.connect(ports, id, a, cfg.TorAggGbps*1e9, 0)
					}
				}
			}

			for hIdx := 0; hIdx < cfg.HostsPerSegment; hIdx++ {
				hn := t.AddNode(Node{
					Kind: KindHost,
					Name: fmt.Sprintf("host-pod%d-seg%d-%d", pod, seg, hIdx),
					Pod:  pod, Segment: seg, Plane: -1, Rail: -1, Index: hIdx,
				})
				h := &Host{Node: hn, Pod: pod, Segment: seg, Index: hIdx}
				for r := 0; r < cfg.Rails; r++ {
					nic := NIC{Rail: r}
					for ti := 0; ti < 2; ti++ {
						up := t.connect(ports, hn, pair[ti], cfg.AccessGbps*1e9, 0)
						nic.Ports = append(nic.Ports, up)
						t.hostOfLink[t.Links[up].Reverse] = HostPort{Host: len(t.Hosts), NIC: r, Port: ti}
					}
					h.NICs = append(h.NICs, nic)
				}
				t.Hosts = append(t.Hosts, h)
			}
		}
	}
	return t, nil
}

package topo

import "fmt"

// Validate checks the wiring invariants of a topology against its blueprint,
// playing the role of the INT-probe based checks the paper uses to eradicate
// wiring mistakes before end-to-end testing (§10). It returns all
// violations found, or nil when the build matches the blueprint.
func (t *Topology) Validate() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Link symmetry: every link's reverse points back, same capacity.
	for _, l := range t.Links {
		r := t.Links[l.Reverse]
		if r.Reverse != l.ID {
			report("link %d: reverse %d does not point back", l.ID, r.ID)
		}
		if r.From != l.To || r.To != l.From {
			report("link %d: reverse endpoints mismatched", l.ID)
		}
		//hpnlint:allow floateq -- capacities are assigned constants, never computed; asymmetry means a builder bug
		if r.CapBps != l.CapBps {
			report("link %d: asymmetric capacity", l.ID)
		}
		if r.Plane != l.Plane {
			report("link %d: plane mismatch with reverse", l.ID)
		}
	}

	// Port uniqueness per node: no two links may share a physical port.
	type portKey struct {
		n NodeID
		p int
	}
	seen := map[portKey]LinkID{}
	for _, l := range t.Links {
		k := portKey{l.From, l.FromPort}
		if prev, dup := seen[k]; dup && t.Links[prev].Reverse != l.ID {
			report("node %d port %d wired twice (links %d, %d)", l.From, l.FromPort, prev, l.ID)
		}
		seen[k] = l.ID
	}

	// Hosts: every NIC port terminates on a ToR; under rail optimization
	// the ToR's rail matches the NIC's rail; port index matches the ToR's
	// dual-ToR index.
	for hi, h := range t.Hosts {
		for ni, nic := range h.NICs {
			for pi, lk := range nic.Ports {
				l := t.Links[lk]
				tor := t.Nodes[l.To]
				if tor.Kind != KindToR {
					report("host %d nic %d port %d lands on %s, want tor", hi, ni, pi, tor.Kind)
					continue
				}
				if tor.Rail >= 0 && tor.Rail != nic.Rail {
					report("host %d nic %d (rail %d) wired to ToR of rail %d", hi, ni, nic.Rail, tor.Rail)
				}
				if tor.Index != pi {
					report("host %d nic %d port %d wired to ToR index %d", hi, ni, pi, tor.Index)
				}
				if tor.Pod != h.Pod || tor.Segment != h.Segment {
					report("host %d wired outside its segment", hi)
				}
				hp, ok := t.hostOfLink[l.Reverse]
				if !ok || hp.Host != hi || hp.NIC != ni || hp.Port != pi {
					report("host %d nic %d port %d: downlink registry mismatch", hi, ni, pi)
				}
			}
		}
	}

	// Plane discipline: a ToR's uplinks terminate only on Aggs of its
	// plane; an Agg's uplinks terminate only on Cores of its plane. This is
	// the structural invariant behind "traffic from port 0 is received only
	// by port 0 of the destination NIC".
	for _, n := range t.Nodes {
		switch n.Kind {
		case KindToR:
			for _, lk := range n.Uplinks {
				agg := t.Nodes[t.Links[lk].To]
				if agg.Kind != KindAgg {
					report("tor %s uplink to %s", n.Name, agg.Kind)
				}
				if t.Planes > 1 && agg.Plane != n.Plane {
					report("tor %s (plane %d) uplinked to agg %s (plane %d)", n.Name, n.Plane, agg.Name, agg.Plane)
				}
				if agg.Pod != n.Pod {
					report("tor %s uplinked outside its pod", n.Name)
				}
			}
		case KindAgg:
			for _, lk := range n.Uplinks {
				core := t.Nodes[t.Links[lk].To]
				if core.Kind != KindCore {
					report("agg %s uplink to %s", n.Name, core.Kind)
				}
				if t.Planes > 1 && core.Plane != n.Plane {
					report("agg %s (plane %d) uplinked to core plane %d", n.Name, n.Plane, core.Plane)
				}
			}
		}
	}
	return errs
}

// MustValidate panics on the first wiring violation; builders' tests use it.
func (t *Topology) MustValidate() {
	if errs := t.Validate(); len(errs) > 0 {
		panic(fmt.Sprintf("topo: %d wiring violations, first: %v", len(errs), errs[0]))
	}
}

// Package topo models data-center network topologies: the graph of hosts,
// ToR/Aggregation/Core switches and the directed capacity links between
// them, together with the placement metadata HPN's design hinges on
// (segments, pods, planes, rails, dual-ToR sets).
//
// Builders are provided for the architectures the paper discusses:
//
//   - HPN: the paper's 2-tier, dual-plane, dual-ToR, rail-optimized backend
//     (§3, §5, §6), with optional Core tier (§7) and ablation switches
//     (single-plane, single-ToR, no rail optimization).
//   - DCN+: Alibaba's previous-generation 3-tier Clos training network
//     (Appendix C), the paper's evaluation baseline.
//   - Frontend: the classic 3-tier 1:1 frontend network (§8).
//
// Scale calculators reproduce Tables 1, 2 and 4 directly from first
// principles (port counts and oversubscription ratios).
package topo

import (
	"fmt"
)

// NodeID indexes a node within a Topology.
type NodeID int32

// LinkID indexes a directed link within a Topology.
type LinkID int32

// None marks an absent node or link.
const None = -1

// Kind classifies a node by tier.
type Kind uint8

// Node kinds, from the edge toward the core.
const (
	KindHost Kind = iota
	KindToR
	KindAgg
	KindCore
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindToR:
		return "tor"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a host or switch. Location fields are -1 when not applicable.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string

	Pod     int // pod index (hosts, ToRs, Aggs); -1 for cores shared by pods
	Segment int // segment within pod (hosts, ToRs)
	Plane   int // forwarding plane (ToRs, Aggs, Cores); 0 when single-plane
	Rail    int // rail served (ToRs in rail-optimized fabrics)
	Index   int // ordinal within (kind, location)

	// HashSeed parameterizes this switch's ECMP hash. Builders either give
	// every switch the same seed (legacy fabrics; enables hash polarization)
	// or a unique one.
	HashSeed uint64
	// PerPortHash marks Core switches that use the §7 per-(ingress-port,
	// dst-pod) hash instead of the 5-tuple hash.
	PerPortHash bool

	// Up is false while the whole node (e.g. a crashed ToR) is down.
	Up bool

	Uplinks   []LinkID // links toward the core
	Downlinks []LinkID // links toward the hosts
}

// Link is one direction of a cable. Links are created in pairs; Reverse
// names the opposite direction.
type Link struct {
	ID       LinkID
	From, To NodeID
	Reverse  LinkID
	// CapBps is the capacity in bits per second.
	CapBps float64
	// FromPort / ToPort are the physical port indices on each end;
	// Core per-port hashing keys on ToPort (the ingress port).
	FromPort, ToPort int
	// Plane tags fabric links with their forwarding plane.
	Plane int
	// Up is false while the link is failed.
	Up bool
}

// NIC is one backend network card of a host: one rail, one or two ports.
// Ports holds the host->ToR access LinkIDs (len 1 under single-ToR, len 2
// under dual-ToR, index = plane).
type NIC struct {
	Rail  int
	Ports []LinkID
}

// Host is a GPU server: 8 GPUs, one backend NIC per GPU (rail), and its
// location in the fabric.
type Host struct {
	Node    NodeID
	Pod     int
	Segment int
	Index   int // host index within segment
	Backup  bool
	NICs    []NIC
}

// GPUs returns the number of GPUs on the host (one per backend NIC).
func (h *Host) GPUs() int { return len(h.NICs) }

// Topology is a complete fabric. Build one with a builder, never by hand.
type Topology struct {
	Arch   string // "hpn", "dcn+", ...
	Planes int    // number of forwarding planes (1 or 2)
	Pods   int

	Nodes []*Node
	Links []*Link
	Hosts []*Host // index = global host ID

	// torIndex maps (pod, segment, rail, plane) -> ToR node, for rail-
	// optimized fabrics; non-rail fabrics index with rail=0.
	torIndex map[[4]int]NodeID
	// aggIndex maps (pod, plane) -> agg nodes.
	aggIndex map[[2]int][]NodeID
	// coreIndex maps plane -> core nodes.
	coreIndex map[int][]NodeID
	// attachedHost maps ToR -> set of (host, nic) reachable by a downlink.
	hostOfLink map[LinkID]HostPort

	// usable caches LinkUsable per link (link up AND both endpoint nodes
	// up), maintained by connect and the Set*State mutators.
	usable []bool
}

// HostPort names one NIC port of one host.
type HostPort struct {
	Host int
	NIC  int
	Port int // plane / port index within the NIC
}

// New returns an empty topology shell used by builders.
func New(arch string, planes, pods int) *Topology {
	return &Topology{
		Arch:       arch,
		Planes:     planes,
		Pods:       pods,
		torIndex:   map[[4]int]NodeID{},
		aggIndex:   map[[2]int][]NodeID{},
		coreIndex:  map[int][]NodeID{},
		hostOfLink: map[LinkID]HostPort{},
	}
}

// AddNode appends a node and returns its ID.
func (t *Topology) AddNode(n Node) NodeID {
	n.ID = NodeID(len(t.Nodes))
	n.Up = true
	c := n
	t.Nodes = append(t.Nodes, &c)
	return c.ID
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return t.Nodes[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) *Link { return t.Links[id] }

// nextPort allocates the next port number on a node.
func (t *Topology) nextPort(counts map[NodeID]int, n NodeID) int {
	p := counts[n]
	counts[n] = p + 1
	return p
}

// connect creates the two directed links of a cable between lo (closer to
// hosts) and hi (closer to core) and registers them as down/up links.
// It returns the upward link (lo->hi).
func (t *Topology) connect(portCounts map[NodeID]int, lo, hi NodeID, capBps float64, plane int) LinkID {
	loPort := t.nextPort(portCounts, lo)
	hiPort := t.nextPort(portCounts, hi)
	up := &Link{
		ID: LinkID(len(t.Links)), From: lo, To: hi,
		CapBps: capBps, FromPort: loPort, ToPort: hiPort, Plane: plane, Up: true,
	}
	t.Links = append(t.Links, up)
	down := &Link{
		ID: LinkID(len(t.Links)), From: hi, To: lo,
		CapBps: capBps, FromPort: hiPort, ToPort: loPort, Plane: plane, Up: true,
	}
	t.Links = append(t.Links, down)
	t.usable = append(t.usable, true, true)
	up.Reverse = down.ID
	down.Reverse = up.ID

	t.Nodes[lo].Uplinks = append(t.Nodes[lo].Uplinks, up.ID)
	t.Nodes[hi].Downlinks = append(t.Nodes[hi].Downlinks, down.ID)
	return up.ID
}

// ToR returns the ToR node for (pod, segment, rail, plane), or None.
func (t *Topology) ToR(pod, segment, rail, plane int) NodeID {
	if id, ok := t.torIndex[[4]int{pod, segment, rail, plane}]; ok {
		return id
	}
	return None
}

// Aggs returns the aggregation switches of (pod, plane).
func (t *Topology) Aggs(pod, plane int) []NodeID { return t.aggIndex[[2]int{pod, plane}] }

// Cores returns the core switches of a plane.
func (t *Topology) Cores(plane int) []NodeID { return t.coreIndex[plane] }

// HostPortOf resolves a ToR downlink (or host uplink reverse) to the host
// NIC port it serves; ok is false for fabric-internal links.
func (t *Topology) HostPortOf(l LinkID) (HostPort, bool) {
	hp, ok := t.hostOfLink[l]
	return hp, ok
}

// AccessLink returns the host->ToR link for a host's NIC port.
func (t *Topology) AccessLink(host, nic, port int) LinkID {
	return t.Hosts[host].NICs[nic].Ports[port]
}

// AccessUp reports whether the given access link and its ToR are healthy.
func (t *Topology) AccessUp(host, nic, port int) bool {
	l := t.Link(t.AccessLink(host, nic, port))
	return l.Up && t.Node(l.To).Up
}

// TotalGPUs returns the number of GPUs across all hosts (backup included
// unless activeOnly).
func (t *Topology) TotalGPUs(activeOnly bool) int {
	n := 0
	for _, h := range t.Hosts {
		if activeOnly && h.Backup {
			continue
		}
		n += h.GPUs()
	}
	return n
}

// SetLinkState marks one direction of a link (and typically its reverse,
// via SetCableState) up or down.
func (t *Topology) SetLinkState(id LinkID, up bool) {
	t.Links[id].Up = up
	t.refreshUsable(id)
}

// SetCableState sets both directions of a cable.
func (t *Topology) SetCableState(id LinkID, up bool) {
	t.Links[id].Up = up
	t.Links[t.Links[id].Reverse].Up = up
	t.refreshUsable(id)
	t.refreshUsable(t.Links[id].Reverse)
}

// SetNodeState marks a node (and implicitly all its links) up or down.
// Links keep their own state; routing treats a link as usable only when the
// link and both endpoints are up.
func (t *Topology) SetNodeState(id NodeID, up bool) {
	t.Nodes[id].Up = up
	// A node flip changes the usability of every link touching it; node
	// events are rare (failure injection), so a full refresh is fine.
	for _, l := range t.Links {
		t.refreshUsable(l.ID)
	}
}

// LinkUsable reports whether a link can carry traffic: link up, both ends
// up. It is the allocator's and router's innermost predicate, so the
// three-way state is cached per link in a flat array maintained by the
// Set*State mutators; chasing the Link and two Node pointers on every call
// showed up in profiles.
func (t *Topology) LinkUsable(id LinkID) bool {
	if int(id) < len(t.usable) {
		return t.usable[id]
	}
	l := t.Links[id]
	return l.Up && t.Nodes[l.From].Up && t.Nodes[l.To].Up
}

// refreshUsable recomputes the cached usability of one link, growing the
// cache to cover the topology on first use.
func (t *Topology) refreshUsable(id LinkID) {
	for len(t.usable) < len(t.Links) {
		t.usable = append(t.usable, true)
	}
	l := t.Links[id]
	t.usable[id] = l.Up && t.Nodes[l.From].Up && t.Nodes[l.To].Up
}

// Counts summarizes the inventory, for the topology inspector and tests.
type Counts struct {
	Hosts, GPUs, ToRs, Aggs, Cores int
	Cables                         int // bidirectional cables (links/2)
}

// Count tallies the topology inventory.
func (t *Topology) Count() Counts {
	var c Counts
	for _, n := range t.Nodes {
		switch n.Kind {
		case KindHost:
			c.Hosts++
		case KindToR:
			c.ToRs++
		case KindAgg:
			c.Aggs++
		case KindCore:
			c.Cores++
		}
	}
	c.GPUs = t.TotalGPUs(false)
	c.Cables = len(t.Links) / 2
	return c
}

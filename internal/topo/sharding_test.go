package topo

import "testing"

// TestShardByPodPartition builds a 3-pod fabric and checks the partition is
// total and structural: every node and link lands in exactly one domain,
// intra-pod links in their pod's shard, and exactly the agg-core links in
// the global domain.
func TestShardByPodPartition(t *testing.T) {
	cfg := SmallHPN(2, 4, 2)
	cfg.Pods = 3
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ShardByPod(top)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N != 3 {
		t.Fatalf("N = %d, want 3", sh.N)
	}
	for _, n := range top.Nodes {
		d := sh.ShardOfNode(n.ID)
		switch {
		case n.Kind == KindCore && d != 0:
			t.Fatalf("core %s in domain %d, want global", n.Name, d)
		case n.Kind != KindCore && d != n.Pod+1:
			t.Fatalf("%s (pod %d) in domain %d, want %d", n.Name, n.Pod, d, n.Pod+1)
		}
	}
	owned := 0
	for _, l := range top.Links {
		from, to := top.Nodes[l.From], top.Nodes[l.To]
		crossing := from.Kind == KindCore || to.Kind == KindCore
		if got := sh.Crossing(l.ID); got != crossing {
			t.Fatalf("link %d (%s<->%s): Crossing=%v, want %v", l.ID, from.Name, to.Name, got, crossing)
		}
		if !crossing {
			want := from.Pod + 1
			if sh.ShardOfLink(l.ID) != want {
				t.Fatalf("link %d in domain %d, want %d", l.ID, sh.ShardOfLink(l.ID), want)
			}
			owned++
		}
	}
	perShard := 0
	for s, links := range sh.ShardLinks {
		perShard += len(links)
		for i := 1; i < len(links); i++ {
			if links[i] <= links[i-1] {
				t.Fatalf("shard %d link list not ascending at %d", s+1, i)
			}
		}
	}
	if perShard != owned {
		t.Fatalf("ShardLinks holds %d links, the scan found %d shard-owned", perShard, owned)
	}
	if len(sh.CrossLinks)+perShard != len(top.Links) {
		t.Fatalf("partition not total: %d cross + %d shard != %d links",
			len(sh.CrossLinks), perShard, len(top.Links))
	}
}

// TestShardByPodHostLookup checks ShardOfHost follows the host's pod.
func TestShardByPodHostLookup(t *testing.T) {
	cfg := SmallHPN(1, 4, 2)
	cfg.Pods = 2
	top, err := BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ShardByPod(top)
	if err != nil {
		t.Fatal(err)
	}
	for id, h := range top.Hosts {
		if got := sh.ShardOfHost(top, id); got != h.Pod+1 {
			t.Fatalf("host %d (pod %d) in domain %d, want %d", id, h.Pod, got, h.Pod+1)
		}
	}
}

// TestShardByPodRejectsSinglePod pins the refusal: a one-pod fabric has no
// crossing structure to exploit, so sharding must error rather than build a
// degenerate one-shard ensemble.
func TestShardByPodRejectsSinglePod(t *testing.T) {
	top, err := BuildHPN(SmallHPN(1, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShardByPod(top); err == nil {
		t.Fatal("ShardByPod accepted a single-pod fabric")
	}
}

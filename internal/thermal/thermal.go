// Package thermal models §5.1's single-chip power and cooling problem: the
// 51.2Tbps switching chip draws 45% more power than the 25.6T generation
// while keeping the same 105°C junction limit, so neither heat pipes nor
// the vendor's original vapor-chamber heat sink can hold it at full load —
// only the optimized VC (denser wicked pillars over the die center, +15%
// cooling efficiency) keeps the junction below Tjmax in all pressure
// scenarios (Figures 9 and 10).
package thermal

// ChipPowerWatts returns the power draw of a single-chip switch by
// capacity (Tbps), following the vendor generation curve the paper plots in
// Figure 9a (each generation roughly +40-50%, with 51.2T = 1.45 x 25.6T).
func ChipPowerWatts(capacityTbps float64) float64 {
	switch {
	case capacityTbps <= 3.2:
		return 80
	case capacityTbps <= 6.4:
		return 130
	case capacityTbps <= 12.8:
		return 210
	case capacityTbps <= 25.6:
		return 350
	default:
		return 350 * 1.45 // 507.5W: the 45% step of §5.1
	}
}

// TjMaxC is the chip's maximum junction temperature; exceeding it triggers
// over-temperature protection and halts all data transmission.
const TjMaxC = 105.0

// AmbientC is the in-chassis inlet air temperature under the paper's
// high-pressure scenarios.
const AmbientC = 45.0

// Cooling is one heat-sink solution, characterized by its junction-to-air
// thermal resistance (°C per watt).
type Cooling struct {
	Name    string
	ThetaJA float64 // °C/W
}

// The three candidate solutions of Figure 9b. The optimized VC divides the
// original VC's resistance by 1.15 (the +15% cooling-efficiency gain from
// the re-wicked pillar layout of Figure 10).
func Solutions() []Cooling {
	const originalVC = 0.1333
	return []Cooling{
		{Name: "Heat Pipe", ThetaJA: 0.1538},
		{Name: "Original VC", ThetaJA: originalVC},
		{Name: "Optimized VC", ThetaJA: originalVC / 1.15},
	}
}

// JunctionC returns the junction temperature at the given power.
func (c Cooling) JunctionC(powerW float64) float64 {
	return AmbientC + c.ThetaJA*powerW
}

// AllowedPowerW is the largest sustained power that keeps the junction at
// or below TjMax — the "Allowed Operation Power" bars of Figure 9b.
func (c Cooling) AllowedPowerW() float64 {
	return (TjMaxC - AmbientC) / c.ThetaJA
}

// Sustains reports whether the solution can run a chip of the given power
// at full load without tripping over-temperature protection.
func (c Cooling) Sustains(powerW float64) bool {
	return c.JunctionC(powerW) <= TjMaxC
}

// Figure9bRow is one bar of Figure 9b.
type Figure9bRow struct {
	Solution      string
	AllowedPowerW float64
	ChipPowerW    float64
	Sustains      bool
}

// Figure9b evaluates all solutions against the 51.2T chip.
func Figure9b() []Figure9bRow {
	p := ChipPowerWatts(51.2)
	out := make([]Figure9bRow, 0, 3)
	for _, c := range Solutions() {
		out = append(out, Figure9bRow{
			Solution:      c.Name,
			AllowedPowerW: c.AllowedPowerW(),
			ChipPowerW:    p,
			Sustains:      c.Sustains(p),
		})
	}
	return out
}

package thermal

import (
	"math"
	"testing"
)

func TestPowerStep(t *testing.T) {
	p51 := ChipPowerWatts(51.2)
	p25 := ChipPowerWatts(25.6)
	if math.Abs(p51/p25-1.45) > 1e-9 {
		t.Fatalf("51.2T/25.6T power ratio = %v, want 1.45 (the +45%% step)", p51/p25)
	}
	// Monotone in capacity.
	caps := []float64{3.2, 6.4, 12.8, 25.6, 51.2}
	prev := 0.0
	for _, c := range caps {
		p := ChipPowerWatts(c)
		if p <= prev {
			t.Fatalf("power not increasing at %vT", c)
		}
		prev = p
	}
}

func TestOnlyOptimizedVCSustains(t *testing.T) {
	rows := Figure9b()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Figure9bRow{}
	for _, r := range rows {
		byName[r.Solution] = r
	}
	if byName["Heat Pipe"].Sustains {
		t.Error("heat pipe should not sustain the 51.2T chip")
	}
	if byName["Original VC"].Sustains {
		t.Error("original VC should not sustain the 51.2T chip")
	}
	if !byName["Optimized VC"].Sustains {
		t.Error("optimized VC must sustain the 51.2T chip")
	}
}

func TestOptimizedVCGain(t *testing.T) {
	s := Solutions()
	orig, opt := s[1], s[2]
	gain := opt.AllowedPowerW() / orig.AllowedPowerW()
	if math.Abs(gain-1.15) > 1e-9 {
		t.Fatalf("optimized VC gain = %v, want 1.15", gain)
	}
}

func TestJunctionTemperature(t *testing.T) {
	c := Solutions()[2]
	if tj := c.JunctionC(0); tj != AmbientC {
		t.Fatalf("zero-power junction = %v, want ambient", tj)
	}
	p := ChipPowerWatts(51.2)
	if tj := c.JunctionC(p); tj > TjMaxC {
		t.Fatalf("optimized VC junction %v exceeds Tjmax", tj)
	}
}

func TestOverTemperatureTripsLowerSolutions(t *testing.T) {
	p := ChipPowerWatts(51.2)
	for _, c := range Solutions()[:2] {
		if c.JunctionC(p) <= TjMaxC {
			t.Fatalf("%s junction unexpectedly within limit", c.Name)
		}
	}
}

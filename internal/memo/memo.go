// Package memo implements iteration memoization with fast-forward replay:
// the optimization that lets a steady-state training run simulate thousands
// of iterations for the cost of the first few.
//
// LLM training traffic is brutally periodic — the paper's premise: every
// iteration launches the same collectives over the same connections on the
// same fabric. Once one iteration has been simulated from a given fabric
// state, re-simulating the next identical one recomputes exactly the same
// flow allocations, completions and telemetry, just shifted in time. The
// recorder exploits that: it fingerprints the simulator state at each
// iteration boundary, records the full effect of one window of simulation
// (trace events, flow-log and in-band records, observer callbacks, metric
// movement, engine clock/sequence consumption), and on a fingerprint hit
// replays that recorded window — re-stamped to the current time, flow-ID
// and sequence cursors — instead of simulating it, then fast-forwards the
// engine clock past it. A replayed run's artifacts are byte-identical to a
// re-simulated run's.
//
// Safety comes from three layers:
//
//   - The fingerprint (netsim.Sim.StateHash64 mixed with the workload's
//     schedule fingerprint) covers everything the window's outcome depends
//     on: per-link usability, the sport cursor, the active-flow multiset,
//     in-band queue residuals and the integration-gap back to the last
//     fluid advance. Any drift means a different key, which means a miss.
//   - Recording validity guards discard windows in which anything happened
//     that replay could not reproduce: an engine event armed or fired
//     mid-window, the sport cursor moving, flows still active at either
//     boundary.
//   - The recorder sits on the fabric observer chain; any link or node
//     transition or reroute — anything that changes fabric behavior —
//     drops the whole cache and aborts any recording in progress. The
//     next iteration re-simulates and re-warms.
//
// The one part of a window that is never replayed from the cache is the
// trainer's own per-iteration bookkeeping (the "live section", bracketed
// by BeginLive/EndLive): its metrics and trace output vary per iteration
// (iteration numbers, cumulative counters), so replay re-executes it.
package memo

import (
	"hpn/internal/hashing"
	"hpn/internal/inband"
	"hpn/internal/netsim"
	"hpn/internal/prof"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// maxWindows caps the fingerprint cache. Steady-state training needs one
// or two windows; the cap only bounds pathological workloads that never
// repeat (each iteration would otherwise leak a full recording).
const maxWindows = 512

// Hasher is the FNV-1a style mixer every memo fingerprint is built with.
// Callers fold their own state in with Mix and combine sub-fingerprints
// (the workload's schedule hash, netsim's state hash) the same way.
type Hasher struct{ h uint64 }

// NewHasher returns a hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: 14695981039346656037} }

// Mix folds one word into the hash.
func (h *Hasher) Mix(v uint64) {
	h.h ^= v
	h.h *= 1099511628211
}

// MixString folds a string in byte-wise.
func (h *Hasher) MixString(s string) {
	for i := 0; i < len(s); i++ {
		h.Mix(uint64(s[i]))
	}
}

// Sum returns the current hash value.
func (h *Hasher) Sum() uint64 { return h.h }

// LiveMetricsOwner is implemented by observers (health.Monitor) that
// increment registry counters from inside their fabric callbacks. Replay
// re-feeds those callbacks, so the increments happen live; the recorder
// excludes the named counters from the recorded metrics delta to avoid
// double-counting them.
type LiveMetricsOwner interface {
	LiveMetricNames() []string
}

// traceEvent is one captured trace emission, stored with record-time
// absolute values; replay shifts ts by the window's time delta and the
// "seq"/"id"/"flow" args by the sequence and flow-ID deltas.
type traceEvent struct {
	ph        byte
	ts, dur   int64
	cat, name string
	tid       int
	args      []telemetry.Arg
}

// flowSnap is the part of a completed flow's state the observer chain
// reads, captured by value so replay can re-feed callbacks without the
// original *netsim.Flow. Path is not captured (no observer reads it after
// routing; the hop decisions are recorded separately).
type flowSnap struct {
	id       int64
	src, dst route.Endpoint
	tuple    hashing.FiveTuple
	bits     float64
	port     int
	stalled  bool
	started  sim.Time
	done     sim.Time
}

// obsEvent is one captured observer callback (FlowRouted or FlowDone).
type obsEvent struct {
	done bool
	at   sim.Time
	flow flowSnap
	hops []route.HopDecision
}

// Window is one recorded iteration: everything needed to reproduce its
// effects at a later, shifted position in the run.
type Window struct {
	fp      uint64
	baseT   sim.Time
	baseID  int64
	baseSeq uint64

	// dur is the window length; liveAt is the offset of the live section
	// (the trainer's iteration-completion bookkeeping, re-executed on
	// replay with the recorded comm payload).
	dur    sim.Time
	liveAt sim.Time
	comm   float64

	seqDelta, procDelta uint64
	idDelta             int64

	// part1/obs1/flows1/ib1 cover [window start, live section); the *2
	// halves cover (live section, window end]. The live section itself is
	// excluded — replay re-executes it and it re-emits its own output.
	part1, part2   []traceEvent
	obs1, obs2     []obsEvent
	flows1, flows2 []netsim.FlowRecord
	ib1, ib2       []inband.Record

	statFlows                   int64
	statBits, statAgg, statCore float64
	metrics                     *telemetry.MetricsDelta
	residual                    *netsim.InbandResidual
	lastAdvOffset               sim.Time
}

// Dur returns the window's virtual-time length.
func (w *Window) Dur() sim.Time { return w.dur }

// recording is an in-progress window capture.
type recording struct {
	fp       uint64
	baseT    sim.Time
	baseID   int64
	baseSeq  uint64
	baseProc uint64
	sport    uint16

	// Validity guards: the engine's pending-event population must be
	// untouched over the window (nothing armed, nothing external fired).
	beginPending int
	beginNextAt  sim.Time
	beginNextOK  bool

	flowMarkA, flowMarkB1, flowMarkB2 int
	ibMarkA, ibMarkB1, ibMarkB2       int

	statFlows                   int64
	statBits, statAgg, statCore float64

	snapA, snapB1, snapB2 *telemetry.MetricsSnapshot
	d1                    *telemetry.MetricsDelta

	liveSeen bool
	liveAt   sim.Time
	comm     float64

	part1, part2 []traceEvent
	obs1, obs2   []obsEvent
}

// Recorder is the memoization engine: a wrapping fabric observer plus a
// trace-capture hook, attached outermost on a netsim.Sim. The workload
// drives it through BeginRecord/BeginLive/EndLive/FinalizeRecord around
// each iteration and Lookup/Replay at iteration boundaries.
type Recorder struct {
	net   *netsim.Sim
	eng   *sim.Engine
	inner netsim.Observer

	cache map[uint64]*Window

	rec       *recording
	suspended bool

	// DebugTrace emits one memo-track instant per replayed window. Off by
	// default: the instants are diagnostic and would (deliberately) break
	// the byte-identity of memo-on vs memo-off trace artifacts.
	DebugTrace bool

	hits, misses, blocked, invalidations, replayed int64

	ctrHits, ctrMisses, ctrBlocked, ctrInvalidations, ctrReplayed *telemetry.Counter

	// Profiler phases (nil when the simulator has no profiler attached).
	// lookup/replay are timed; fast_forward is count-only — the jump itself
	// is a handful of field writes, not worth a time.Now pair.
	phLookup, phReplay, phFF *prof.Phase
}

// Stats is a point-in-time summary of recorder activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Blocked       int64
	Invalidations int64
	Replayed      int64
	Cached        int
}

// Attach wraps the simulator's current observer with a recorder, installs
// the trace-capture hook, and registers memo counters when the simulator
// carries a registry. Call after every other observer (health monitoring)
// is attached: the recorder must sit outermost to see invalidating events
// first and to capture exactly what replay must re-feed.
func Attach(s *netsim.Sim) *Recorder {
	r := &Recorder{
		net:   s,
		eng:   s.Eng,
		inner: s.Observer(),
		cache: map[uint64]*Window{},
	}
	s.SetObserver(r)
	if s.Trace != nil {
		s.Trace.SetHook(r.capture)
	}
	if s.Reg != nil {
		p := s.MetricsPrefix
		r.ctrHits = s.Reg.Counter(p+"memo_hits_total", "iteration fingerprint cache hits (windows replayed)")
		r.ctrMisses = s.Reg.Counter(p+"memo_misses_total", "iteration fingerprint cache misses (windows simulated)")
		r.ctrBlocked = s.Reg.Counter(p+"memo_blocked_total", "cache hits not replayable (pending events or active flows)")
		r.ctrInvalidations = s.Reg.Counter(p+"memo_invalidations_total", "fabric events that dropped the memo cache")
		r.ctrReplayed = s.Reg.Counter(p+"memo_replayed_iterations_total", "iterations fast-forwarded from the cache")
		s.Reg.Gauge(p+"memo_cached_windows", "recorded iteration windows held in the cache",
			func() float64 { return float64(len(r.cache)) })
		// Stats as gauges alongside the counters: gauges stay out of the
		// recorder's own metrics snapshots (counters/histograms only), so
		// these views are replay-safe and cheap to read from dashboards.
		s.Reg.Gauge(p+"memo_hits", "live view of Stats.Hits (cache hits)",
			func() float64 { return float64(r.Stats().Hits) })
		s.Reg.Gauge(p+"memo_misses", "live view of Stats.Misses (cache misses)",
			func() float64 { return float64(r.Stats().Misses) })
		s.Reg.Gauge(p+"memo_invalidations", "live view of Stats.Invalidations (cache drops)",
			func() float64 { return float64(r.Stats().Invalidations) })
	}
	r.phLookup = s.Prof.Phase("memo/lookup", "fingerprint cache lookups (hit, miss or blocked)")
	r.phReplay = s.Prof.PhaseAlloc("memo/replay", "window replays: observer re-feed, trace re-emit, fast-forward")
	r.phFF = s.Prof.Phase("memo/fast_forward", "engine fast-forward jumps (count-only)")
	return r
}

// RecorderOf returns the recorder installed on the simulator, or nil. The
// recorder is always the outermost observer, so no unwrapping is needed.
func RecorderOf(s *netsim.Sim) *Recorder {
	r, _ := s.Observer().(*Recorder)
	return r
}

// Inner returns the wrapped observer, letting helpers like
// health.MonitorOf unwrap through the recorder.
func (r *Recorder) Inner() netsim.Observer { return r.inner }

// Stats returns the recorder's activity counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Hits: r.hits, Misses: r.misses, Blocked: r.blocked,
		Invalidations: r.invalidations, Replayed: r.replayed,
		Cached: len(r.cache),
	}
}

// --- Observer chain: invalidation + callback capture -------------------

// LinkEvent invalidates the cache (fabric behavior changed) and forwards.
func (r *Recorder) LinkEvent(now sim.Time, l topo.LinkID, up bool) {
	r.invalidate()
	if r.inner != nil {
		r.inner.LinkEvent(now, l, up)
	}
}

// NodeEvent invalidates the cache and forwards.
func (r *Recorder) NodeEvent(now sim.Time, n topo.NodeID, up bool) {
	r.invalidate()
	if r.inner != nil {
		r.inner.NodeEvent(now, n, up)
	}
}

// RerouteDone invalidates the cache (paths moved) and forwards.
func (r *Recorder) RerouteDone(now sim.Time, repathed, stillStalled int) {
	r.invalidate()
	if r.inner != nil {
		r.inner.RerouteDone(now, repathed, stillStalled)
	}
}

// FlowRouted captures the callback while recording, then forwards.
func (r *Recorder) FlowRouted(now sim.Time, f *netsim.Flow, hops []route.HopDecision) {
	if r.rec != nil && !r.suspended {
		r.recObs(obsEvent{at: now, flow: snapFlow(f), hops: append([]route.HopDecision(nil), hops...)})
	}
	if r.inner != nil {
		r.inner.FlowRouted(now, f, hops)
	}
}

// FlowDone captures the callback while recording, then forwards.
func (r *Recorder) FlowDone(now sim.Time, f *netsim.Flow) {
	if r.rec != nil && !r.suspended {
		r.recObs(obsEvent{done: true, at: now, flow: snapFlow(f)})
	}
	if r.inner != nil {
		r.inner.FlowDone(now, f)
	}
}

var _ netsim.Observer = (*Recorder)(nil)

func snapFlow(f *netsim.Flow) flowSnap {
	return flowSnap{
		id: f.ID, src: f.Src, dst: f.Dst, tuple: f.Tuple,
		bits: f.Bits, port: f.Port, stalled: f.Stalled,
		started: f.StartedAt, done: f.DoneAt,
	}
}

func (r *Recorder) recObs(e obsEvent) {
	if r.rec.liveSeen {
		r.rec.obs2 = append(r.rec.obs2, e)
	} else {
		r.rec.obs1 = append(r.rec.obs1, e)
	}
}

// invalidate drops every cached window and aborts any recording: the
// fabric just changed in a way no recorded window accounts for.
func (r *Recorder) invalidate() {
	r.invalidations++
	r.ctrInvalidations.Inc()
	if len(r.cache) > 0 {
		r.cache = map[uint64]*Window{}
	}
	r.rec = nil
	r.suspended = false
}

// capture is the trace hook: every live emission lands in the current
// recording (replayed emissions go through Tracer.Emit, which bypasses
// the hook, so a replay never re-captures itself).
func (r *Recorder) capture(ph byte, tsNS, durNS int64, cat, name string, tid int, args []telemetry.Arg) {
	if r.rec == nil || r.suspended {
		return
	}
	ev := traceEvent{ph: ph, ts: tsNS, dur: durNS, cat: cat, name: name, tid: tid}
	if len(args) > 0 {
		ev.args = append([]telemetry.Arg(nil), args...)
	}
	if r.rec.liveSeen {
		r.rec.part2 = append(r.rec.part2, ev)
	} else {
		r.rec.part1 = append(r.rec.part1, ev)
	}
}

// --- Recording ---------------------------------------------------------

// BeginRecord starts capturing the window keyed by fp. It declines (and
// records nothing) when the fingerprint is already cached, the cache is
// full, or flows are still active — a window must start from a drained
// fabric to be replayable.
func (r *Recorder) BeginRecord(fp uint64) {
	if r == nil {
		return
	}
	r.rec = nil
	r.suspended = false
	if _, ok := r.cache[fp]; ok || len(r.cache) >= maxWindows || r.net.ActiveFlows() != 0 {
		return
	}
	nextAt, nextOK := r.eng.NextAt()
	r.rec = &recording{
		fp:           fp,
		baseT:        r.eng.Now(),
		baseID:       r.net.NextFlowID(),
		baseSeq:      r.eng.Seq(),
		baseProc:     r.eng.Processed,
		sport:        r.net.SportCursor(),
		beginPending: r.eng.Pending(),
		beginNextAt:  nextAt,
		beginNextOK:  nextOK,
		flowMarkA:    r.net.FlowLogSize(),
		ibMarkA:      r.ibSize(),
		statFlows:    r.net.CompletedFlows,
		statBits:     r.net.CompletedBits,
		statAgg:      r.net.AggBits,
		statCore:     r.net.CoreBits,
		snapA:        r.net.Reg.SnapshotMetrics(),
	}
}

// BeginLive marks the start of the live section: the trainer's iteration
// bookkeeping, whose output varies per iteration and is therefore
// re-executed on replay rather than replayed from the recording. comm is
// the payload replay must hand back to the live function.
func (r *Recorder) BeginLive(now sim.Time, comm float64) {
	if r == nil || r.rec == nil {
		return
	}
	r.suspended = true
	r.rec.liveAt = now - r.rec.baseT
	r.rec.comm = comm
	r.rec.flowMarkB1 = r.net.FlowLogSize()
	r.rec.ibMarkB1 = r.ibSize()
	r.rec.snapB1 = r.net.Reg.SnapshotMetrics()
}

// EndLive closes the live section and resumes capture.
func (r *Recorder) EndLive() {
	if r == nil || r.rec == nil || !r.suspended {
		return
	}
	r.suspended = false
	r.rec.liveSeen = true
	r.rec.d1 = r.rec.snapB1.DeltaSince(r.rec.snapA)
	r.rec.snapB2 = r.net.Reg.SnapshotMetrics()
	r.rec.flowMarkB2 = r.net.FlowLogSize()
	r.rec.ibMarkB2 = r.ibSize()
}

// FinalizeRecord closes the window begun by BeginRecord and caches it if
// it is replayable. A window is discarded when no live section was seen
// (the iteration never completed), the sport cursor moved (auto-assigned
// ports are not periodic), flows are still active, or the engine's
// pending-event population changed over the window — the signature of a
// timer armed mid-window or an external (failure-injection) event firing
// inside it, neither of which replay can reproduce.
func (r *Recorder) FinalizeRecord() {
	if r == nil || r.rec == nil {
		return
	}
	rec := r.rec
	r.rec = nil
	r.suspended = false
	now := r.eng.Now()
	if !rec.liveSeen ||
		r.net.SportCursor() != rec.sport ||
		r.net.ActiveFlows() != 0 ||
		r.eng.Pending() != rec.beginPending ||
		(rec.beginNextOK && rec.beginNextAt < now) {
		return
	}
	snapC := r.net.Reg.SnapshotMetrics()
	metrics := telemetry.MergeDeltas(rec.d1, snapC.DeltaSince(rec.snapB2))
	metrics.Exclude(r.liveMetricNames())
	w := &Window{
		fp:            rec.fp,
		baseT:         rec.baseT,
		baseID:        rec.baseID,
		baseSeq:       rec.baseSeq,
		dur:           now - rec.baseT,
		liveAt:        rec.liveAt,
		comm:          rec.comm,
		seqDelta:      r.eng.Seq() - rec.baseSeq,
		procDelta:     r.eng.Processed - rec.baseProc,
		idDelta:       r.net.NextFlowID() - rec.baseID,
		part1:         rec.part1,
		part2:         rec.part2,
		obs1:          rec.obs1,
		obs2:          rec.obs2,
		flows1:        r.net.FlowLogRange(rec.flowMarkA, rec.flowMarkB1),
		flows2:        r.net.FlowLogRange(rec.flowMarkB2, r.net.FlowLogSize()),
		ib1:           r.ibRange(rec.ibMarkA, rec.ibMarkB1),
		ib2:           r.ibRange(rec.ibMarkB2, r.ibSize()),
		statFlows:     r.net.CompletedFlows - rec.statFlows,
		statBits:      r.net.CompletedBits - rec.statBits,
		statAgg:       r.net.AggBits - rec.statAgg,
		statCore:      r.net.CoreBits - rec.statCore,
		metrics:       metrics,
		residual:      r.net.CaptureInbandResidual(),
		lastAdvOffset: r.net.LastAdvance() - rec.baseT,
	}
	r.cache[rec.fp] = w
}

// liveMetricNames collects the observer-owned counter names down the
// wrapped chain (see LiveMetricsOwner).
func (r *Recorder) liveMetricNames() []string {
	var names []string
	o := r.inner
	for o != nil {
		if lm, ok := o.(LiveMetricsOwner); ok {
			names = append(names, lm.LiveMetricNames()...)
		}
		u, ok := o.(interface{ Inner() netsim.Observer })
		if !ok {
			break
		}
		o = u.Inner()
	}
	return names
}

func (r *Recorder) ibSize() int {
	if c := r.net.Inband(); c != nil {
		return len(c.Records())
	}
	return 0
}

func (r *Recorder) ibRange(from, to int) []inband.Record {
	c := r.net.Inband()
	if c == nil || from >= to {
		return nil
	}
	return append([]inband.Record(nil), c.Records()[from:to]...)
}

// --- Replay ------------------------------------------------------------

// Lookup returns the cached window for fp if it is replayable right now:
// no flows may be active, and no pending engine event may land inside (or
// exactly at the end of) the would-be window, since replay cannot
// interleave it. Non-replayable hits count as blocked, not misses.
func (r *Recorder) Lookup(fp uint64) *Window {
	if r == nil {
		return nil
	}
	defer r.phLookup.End(r.phLookup.Begin())
	w := r.cache[fp]
	if w == nil {
		r.misses++
		r.ctrMisses.Inc()
		return nil
	}
	if r.net.ActiveFlows() != 0 {
		r.blocked++
		r.ctrBlocked.Inc()
		return nil
	}
	if at, ok := r.eng.NextAt(); ok && at <= r.eng.Now()+w.dur {
		r.blocked++
		r.ctrBlocked.Inc()
		return nil
	}
	r.hits++
	r.ctrHits.Inc()
	return w
}

// Replay applies the recorded window at the current instant: it re-feeds
// the captured observer callbacks, re-emits the captured trace events and
// appends the flow-log/in-band records — all shifted to the current time,
// flow-ID and sequence cursors — runs liveFn for the live section, then
// fast-forwards the engine past the window and restores the simulator's
// exit-state (stats, metrics, in-band residual, integration cursor). The
// first half of the feed precedes liveFn so observers are current when
// the live section reads them.
func (r *Recorder) Replay(w *Window, liveFn func(now sim.Time, comm float64)) {
	defer r.phReplay.End(r.phReplay.Begin())
	t0 := r.eng.Now()
	dt := t0 - w.baseT
	did := r.net.NextFlowID() - w.baseID
	dseq := r.eng.Seq() - w.baseSeq
	r.replayed++
	r.ctrReplayed.Inc()
	if r.DebugTrace && r.net.Trace != nil {
		r.net.Trace.Instant(int64(t0), "memo", "replay", telemetry.TidMemo,
			telemetry.Arg{K: "fp", V: w.fp},
			telemetry.Arg{K: "dur_ns", V: int64(w.dur)})
	}
	r.feedObs(w.obs1, dt, did)
	r.emitTrace(w.part1, dt, did, dseq)
	r.net.AppendReplayedFlows(shiftFlows(w.flows1, dt, did))
	if c := r.net.Inband(); c != nil {
		c.AppendReplayed(shiftIB(w.ib1, dt, did))
	}
	if liveFn != nil {
		liveFn(t0+w.liveAt, w.comm)
	}
	r.feedObs(w.obs2, dt, did)
	r.emitTrace(w.part2, dt, did, dseq)
	r.net.AppendReplayedFlows(shiftFlows(w.flows2, dt, did))
	if c := r.net.Inband(); c != nil {
		c.AppendReplayed(shiftIB(w.ib2, dt, did))
	}
	r.phFF.Add(1)
	r.eng.FastForward(t0+w.dur, w.seqDelta, w.procDelta)
	r.net.AdvanceFlowIDs(w.idDelta)
	r.net.AddReplayedStats(w.statFlows, w.statBits, w.statAgg, w.statCore)
	r.net.Reg.ApplyMetricsDelta(w.metrics)
	r.net.RestoreInbandResidual(w.residual)
	r.net.RestoreLastAdvance(t0 + w.lastAdvOffset)
}

// feedObs re-feeds captured observer callbacks with shifted timestamps
// and flow snapshots. The recorder itself is not recording during replay,
// so these land directly on the wrapped chain.
func (r *Recorder) feedObs(evs []obsEvent, dt sim.Time, did int64) {
	if r.inner == nil {
		return
	}
	for i := range evs {
		e := &evs[i]
		f := &netsim.Flow{
			ID: e.flow.id + did, Src: e.flow.src, Dst: e.flow.dst, Tuple: e.flow.tuple,
			Bits: e.flow.bits, Port: e.flow.port, Stalled: e.flow.stalled,
			StartedAt: e.flow.started + dt, DoneAt: e.flow.done + dt,
		}
		if e.done {
			r.inner.FlowDone(e.at+dt, f)
		} else {
			r.inner.FlowRouted(e.at+dt, f, e.hops)
		}
	}
}

// emitTrace re-emits captured trace events through the hook-bypassing
// Emit path. Only three argument keys carry run-position state and are
// shifted: "seq" (engine sequence numbers, uint64), and "id"/"flow"
// (flow IDs, int64). Everything else replays verbatim.
func (r *Recorder) emitTrace(evs []traceEvent, dt sim.Time, did int64, dseq uint64) {
	tr := r.net.Trace
	if tr == nil {
		return
	}
	for i := range evs {
		e := &evs[i]
		args := e.args
		if len(args) > 0 {
			args = append([]telemetry.Arg(nil), args...)
			for j := range args {
				switch v := args[j].V.(type) {
				case uint64:
					if args[j].K == "seq" {
						args[j].V = v + dseq
					}
				case int64:
					if args[j].K == "id" || args[j].K == "flow" {
						args[j].V = v + did
					}
				}
			}
		}
		tr.Emit(e.ph, e.ts+int64(dt), e.dur, e.cat, e.name, e.tid, args)
	}
}

func shiftFlows(recs []netsim.FlowRecord, dt sim.Time, did int64) []netsim.FlowRecord {
	if len(recs) == 0 {
		return nil
	}
	out := make([]netsim.FlowRecord, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].ID += did
		out[i].Start += dt
		out[i].End += dt
	}
	return out
}

func shiftIB(recs []inband.Record, dt sim.Time, did int64) []inband.Record {
	if len(recs) == 0 {
		return nil
	}
	out := make([]inband.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Flow += did
		out[i].EnterNS += int64(dt)
		out[i].ExitNS += int64(dt)
	}
	return out
}

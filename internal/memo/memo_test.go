package memo

import (
	"testing"

	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func newNet(t *testing.T) (*sim.Engine, *topo.Topology, *netsim.Sim) {
	t.Helper()
	top, err := topo.BuildHPN(topo.SmallHPN(1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	return eng, top, netsim.New(eng, top)
}

func TestHasher(t *testing.T) {
	a, b := NewHasher(), NewHasher()
	for _, v := range []uint64{1, 2, 3} {
		a.Mix(v)
		b.Mix(v)
	}
	if a.Sum() != b.Sum() {
		t.Fatal("identical mix sequences hash differently")
	}
	c := NewHasher()
	for _, v := range []uint64{3, 2, 1} {
		c.Mix(v)
	}
	if c.Sum() == a.Sum() {
		t.Fatal("hash is order-insensitive; schedule permutations would collide")
	}
	d, e := NewHasher(), NewHasher()
	d.MixString("ab")
	e.MixString("ba")
	if d.Sum() == e.Sum() {
		t.Fatal("MixString is order-insensitive")
	}
}

func TestStateHashReactsToFabric(t *testing.T) {
	_, top, s := newNet(t)
	h0 := s.StateHash64()
	if s.StateHash64() != h0 {
		t.Fatal("state hash is not stable over an untouched simulator")
	}
	lk := top.AccessLink(0, 0, 0)
	s.FailCable(lk)
	hDown := s.StateHash64()
	if hDown == h0 {
		t.Fatal("failing a cable did not change the state hash")
	}
	s.RecoverCable(lk)
	if s.StateHash64() == hDown {
		t.Fatal("recovering the cable did not change the state hash")
	}
}

// record drives one empty but valid window through the recorder.
func record(t *testing.T, eng *sim.Engine, r *Recorder, fp uint64) {
	t.Helper()
	if w := r.Lookup(fp); w != nil {
		t.Fatal("fingerprint already cached")
	}
	r.BeginRecord(fp)
	r.BeginLive(eng.Now(), 0.01)
	r.EndLive()
	r.FinalizeRecord()
}

func TestRecordLookupInvalidate(t *testing.T) {
	eng, top, s := newNet(t)
	r := Attach(s)
	if RecorderOf(s) != r {
		t.Fatal("RecorderOf does not find the attached recorder")
	}

	const fp = 42
	record(t, eng, r, fp)
	if len(r.cache) != 1 {
		t.Fatalf("cache holds %d windows after a valid recording, want 1", len(r.cache))
	}
	if w := r.Lookup(fp); w == nil {
		t.Fatal("valid recorded window does not hit")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// Any fabric transition drops the cache.
	s.FailCable(top.AccessLink(0, 0, 0))
	if len(r.cache) != 0 {
		t.Fatal("link failure did not drop the memo cache")
	}
	if r.Stats().Invalidations == 0 {
		t.Fatal("link failure counted no invalidation")
	}
	if w := r.Lookup(fp); w != nil {
		t.Fatal("stale window survives a fabric transition")
	}
}

func TestBeginRecordDeclinesWithActiveFlows(t *testing.T) {
	eng, _, s := newNet(t)
	r := Attach(s)
	if _, err := s.StartFlow(route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 1, NIC: 0},
		1<<20, netsim.FlowOpts{SrcPort: -1}); err != nil {
		t.Fatal(err)
	}

	const fp = 7
	record(t, eng, r, fp)
	if len(r.cache) != 0 {
		t.Fatal("window recorded while flows were in flight")
	}
	eng.Run() // drain the flow; the window is now clean
	record(t, eng, r, fp)
	if len(r.cache) != 1 {
		t.Fatal("clean window after the flows drained was not recorded")
	}
}

func TestFinalizeDiscardsOnMidWindowSchedule(t *testing.T) {
	eng, _, s := newNet(t)
	r := Attach(s)

	r.BeginRecord(3)
	// An event armed mid-window means replay would skip real work:
	// the recording must be discarded, not cached.
	eng.Schedule(sim.Millisecond, func() {})
	r.BeginLive(eng.Now(), 0.01)
	r.EndLive()
	r.FinalizeRecord()
	if len(r.cache) != 0 {
		t.Fatal("window with a mid-window scheduled event was cached")
	}
}

func TestLookupBlockedByPendingEvent(t *testing.T) {
	eng, _, s := newNet(t)
	r := Attach(s)

	const fp = 11
	record(t, eng, r, fp)
	if len(r.cache) != 1 {
		t.Fatal("setup: window not recorded")
	}
	// A pending event inside (or at the exact end of) the would-be window
	// must block replay: in a live run it would fire first.
	eng.Schedule(0, func() {})
	if w := r.Lookup(fp); w != nil {
		t.Fatal("replay allowed over a pending event")
	}
	if r.Stats().Blocked == 0 {
		t.Fatal("blocked lookup not counted")
	}
}

// Package failure models the fault side of the paper: production failure
// rates (Figure 5), link failure/flapping injection for the Figure 18
// scenarios, the NCCL-style stall watchdog that decides whether a training
// job survives a fault or crashes to its last checkpoint, and the crash
// economics of §2.3.
package failure

import (
	"hpn/internal/metrics"
	"hpn/internal/netsim"
	"hpn/internal/sim"
	"hpn/internal/telemetry"
	"hpn/internal/topo"
)

// Rates are the paper's production failure statistics.
type Rates struct {
	// LinkFailPerMonth: 0.057% of NIC-ToR links fail each month.
	LinkFailPerMonth float64
	// ToRCrashPerMonth: 0.051% of ToR switches hit critical errors monthly.
	ToRCrashPerMonth float64
	// FlapsPerDayLo/Hi: 5K-60K link flapping cases per day fleet-wide.
	FlapsPerDayLo, FlapsPerDayHi float64
}

// ProductionRates returns the §2.3 numbers.
func ProductionRates() Rates {
	return Rates{
		LinkFailPerMonth: 0.00057,
		ToRCrashPerMonth: 0.00051,
		FlapsPerDayLo:    5000,
		FlapsPerDayHi:    60000,
	}
}

// MonthlyLinkFailureRatios reproduces Figure 5: per-month link failure
// ratios fluctuating around the production mean.
func MonthlyLinkFailureRatios(months int, seed uint64) *metrics.Series {
	rng := sim.NewRNG(seed)
	s := &metrics.Series{Name: "link-failure-ratio"}
	mean := ProductionRates().LinkFailPerMonth
	for m := 0; m < months; m++ {
		v := mean * (0.6 + 0.8*rng.Float64())
		s.Add(float64(m), v)
	}
	return s
}

// CrashesPerMonth estimates how many fabric-fault-induced interruptions a
// job of the given size sees monthly under single-point-of-failure access
// (§2.3: "a single LLM training job would encounter 1-2 crashes each
// month"). Every host contributes 8 NIC-ToR links and a share of a ToR.
func CrashesPerMonth(hosts int, r Rates) float64 {
	links := float64(hosts * 8)
	// ~128 GPUs (16 hosts x 8 NICs) share a ToR in a non-rail fabric.
	tors := float64(hosts) / 16 * 2
	return links*r.LinkFailPerMonth + tors*r.ToRCrashPerMonth
}

// Injector schedules topology faults on a running simulation.
type Injector struct {
	Net *netsim.Sim
}

// mark timestamps each injection on the failure trace track, distinct from
// netsim's own link_down/link_up instants: the injector records intent (the
// scheduled fault), netsim records effect.
func (in *Injector) mark(name string, id int) {
	if in.Net.Trace == nil {
		return
	}
	in.Net.Trace.Instant(int64(in.Net.Eng.Now()), "failure", name,
		telemetry.TidFailure, telemetry.Arg{K: "id", V: id})
}

// FailLinkAt takes the cable down at the given virtual time.
func (in *Injector) FailLinkAt(at sim.Time, l topo.LinkID) {
	in.Net.Eng.ScheduleAt(at, func() {
		in.mark("inject_link_fail", int(l))
		in.Net.FailCable(l)
	})
}

// RecoverLinkAt restores the cable at the given virtual time.
func (in *Injector) RecoverLinkAt(at sim.Time, l topo.LinkID) {
	in.Net.Eng.ScheduleAt(at, func() {
		in.mark("inject_link_recover", int(l))
		in.Net.RecoverCable(l)
	})
}

// FailNodeAt / RecoverNodeAt are the switch-level equivalents.
func (in *Injector) FailNodeAt(at sim.Time, n topo.NodeID) {
	in.Net.Eng.ScheduleAt(at, func() {
		in.mark("inject_node_fail", int(n))
		in.Net.FailNode(n)
	})
}

// RecoverNodeAt restores a switch at the given virtual time.
func (in *Injector) RecoverNodeAt(at sim.Time, n topo.NodeID) {
	in.Net.Eng.ScheduleAt(at, func() {
		in.mark("inject_node_recover", int(n))
		in.Net.RecoverNode(n)
	})
}

// FlapLinkAt injects link flapping: `cycles` down/up transitions with the
// given dwell times, starting at `at`.
func (in *Injector) FlapLinkAt(at sim.Time, l topo.LinkID, downFor, upFor sim.Time, cycles int) {
	t := at
	for c := 0; c < cycles; c++ {
		in.FailLinkAt(t, l)
		in.RecoverLinkAt(t+downFor, l)
		t += downFor + upFor
	}
}

// Watchdog implements the collective-communication timeout: if any flow
// stays stalled continuously for longer than Timeout, the job is declared
// crashed (it must restart from checkpoint). This encodes Figure 18a's
// observation: repairs within ~1 minute let training recover; repairs
// beyond ~2 minutes kill it.
type Watchdog struct {
	Net     *netsim.Sim
	Timeout sim.Time

	crashed    bool
	crashedAt  sim.Time
	stallSince sim.Time
	stalling   bool
}

// NewWatchdog returns a watchdog with the NCCL-like default of 90 seconds.
func NewWatchdog(net *netsim.Sim) *Watchdog {
	return &Watchdog{Net: net, Timeout: 90 * sim.Second}
}

// Watch polls stall state once per second of virtual time until the
// horizon (or until a crash is declared).
func (w *Watchdog) Watch(until sim.Time) {
	var tick func()
	tick = func() {
		now := w.Net.Eng.Now()
		if w.crashed || now >= until {
			return
		}
		if w.Net.StalledFlows() > 0 {
			if !w.stalling {
				w.stalling = true
				w.stallSince = now
			} else if now-w.stallSince >= w.Timeout {
				w.crashed = true
				w.crashedAt = now
				if w.Net.Trace != nil {
					w.Net.Trace.Instant(int64(now), "failure", "watchdog_crash",
						telemetry.TidFailure,
						telemetry.Arg{K: "stalled_for_s", V: (now - w.stallSince).Seconds()})
				}
				return
			}
		} else {
			w.stalling = false
		}
		w.Net.Eng.Schedule(sim.Second, tick)
	}
	w.Net.Eng.Schedule(sim.Second, tick)
}

// Crashed reports whether the watchdog fired, and when.
func (w *Watchdog) Crashed() (bool, sim.Time) { return w.crashed, w.crashedAt }

package failure

import (
	"testing"

	"hpn/internal/netsim"
	"hpn/internal/route"
	"hpn/internal/sim"
	"hpn/internal/topo"
)

func newNet(t *testing.T, dualToR bool) (*sim.Engine, *topo.Topology, *netsim.Sim) {
	t.Helper()
	cfg := topo.SmallHPN(2, 4, 4)
	if !dualToR {
		cfg.DualToR = false
		cfg.DualPlane = false
	}
	top, err := topo.BuildHPN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	return eng, top, netsim.New(eng, top)
}

func TestMonthlyRatios(t *testing.T) {
	s := MonthlyLinkFailureRatios(12, 1)
	if s.Len() != 12 {
		t.Fatalf("months = %d", s.Len())
	}
	mean := s.Mean()
	want := ProductionRates().LinkFailPerMonth
	if mean < want*0.5 || mean > want*1.5 {
		t.Fatalf("mean ratio %v far from %v", mean, want)
	}
}

func TestCrashesPerMonth(t *testing.T) {
	// A 3K-GPU job (384 hosts): the paper reports 1-2 fabric-fault
	// interruptions per month.
	got := CrashesPerMonth(384, ProductionRates())
	if got < 1 || got > 3 {
		t.Fatalf("crashes/month = %v, want 1-2", got)
	}
}

func TestInjectorFailAndRecover(t *testing.T) {
	eng, top, net := newNet(t, true)
	in := &Injector{Net: net}
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	done := false
	f, err := net.StartFlow(src, dst, 8<<30, netsim.FlowOpts{SrcPort: 0, OnComplete: func(sim.Time, *netsim.Flow) { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	in.FailLinkAt(10*sim.Millisecond, f.Path[0])
	in.RecoverLinkAt(5*sim.Second, f.Path[0])
	eng.Run()
	if !done {
		t.Fatal("flow did not survive fail+recover")
	}
	_ = top
}

func TestFlapping(t *testing.T) {
	eng, top, net := newNet(t, true)
	in := &Injector{Net: net}
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	done := false
	f, err := net.StartFlow(src, dst, 8<<30, netsim.FlowOpts{SrcPort: 0, OnComplete: func(sim.Time, *netsim.Flow) { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	in.FlapLinkAt(10*sim.Millisecond, f.Path[0], 200*sim.Millisecond, 300*sim.Millisecond, 5)
	eng.Run()
	if !done {
		t.Fatal("flow did not survive flapping under dual-ToR")
	}
	_ = top
}

// Watchdog: a short repair beats the timeout; a long one crashes the job.
func TestWatchdogRecoveryVsCrash(t *testing.T) {
	run := func(repairAfter sim.Time) (bool, sim.Time) {
		eng, _, net := newNet(t, false) // single-ToR: stall is total
		in := &Injector{Net: net}
		src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
		f, err := net.StartFlow(src, dst, 1<<41, netsim.FlowOpts{SrcPort: -1})
		if err != nil {
			t.Fatal(err)
		}
		failAt := 10 * sim.Second
		in.FailLinkAt(failAt, f.Path[0])
		in.RecoverLinkAt(failAt+repairAfter, f.Path[0])
		w := NewWatchdog(net)
		w.Watch(10 * sim.Minute)
		eng.RunUntil(10 * sim.Minute)
		return w.Crashed()
	}
	if crashed, _ := run(50 * sim.Second); crashed {
		t.Fatal("50s repair should beat the 90s timeout")
	}
	crashed, at := run(3 * sim.Minute)
	if !crashed {
		t.Fatal("3min repair must crash the job")
	}
	if at < 10*sim.Second || at > 10*sim.Second+2*sim.Minute {
		t.Fatalf("crash at %v, expected ~timeout after failure", at)
	}
}

// Flapping that resolves via reroute just before the timeout must never
// crash the watchdog's job: each down-dwell ends (recovery + 200ms reroute
// unsticks the flow) with seconds to spare before the 90s NCCL timeout,
// and the stall clock must restart at the next dwell instead of
// accumulating across the up-gaps.
func TestWatchdogFlapResolvesBeforeTimeout(t *testing.T) {
	for _, dualToR := range []bool{false, true} {
		eng, _, net := newNet(t, dualToR)
		in := &Injector{Net: net}
		src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
		f, err := net.StartFlow(src, dst, 1<<41, netsim.FlowOpts{SrcPort: -1})
		if err != nil {
			t.Fatal(err)
		}
		// Two 85s outages separated by a 5s healthy gap: each stall runs to
		// within ~5s of the 90s timeout before the recovery reroute clears
		// it. Under dual-ToR the 1s-convergence reroute resolves the stall
		// via the peer ToR far earlier; both must survive.
		in.FlapLinkAt(10*sim.Second, f.Path[0], 85*sim.Second, 5*sim.Second, 2)
		w := NewWatchdog(net)
		w.Watch(10 * sim.Minute)
		eng.RunUntil(10 * sim.Minute)
		if crashed, at := w.Crashed(); crashed {
			t.Fatalf("dualToR=%v: watchdog crashed at %v on flaps that resolve before the timeout",
				dualToR, at)
		}
	}
}

// Under dual-ToR the same failure never stalls flows long enough to crash.
func TestWatchdogDualToRSurvives(t *testing.T) {
	eng, _, net := newNet(t, true)
	in := &Injector{Net: net}
	src, dst := route.Endpoint{Host: 0, NIC: 0}, route.Endpoint{Host: 4, NIC: 0}
	f, err := net.StartFlow(src, dst, 1<<40, netsim.FlowOpts{SrcPort: 0})
	if err != nil {
		t.Fatal(err)
	}
	in.FailLinkAt(10*sim.Second, f.Path[0]) // never repaired
	w := NewWatchdog(net)
	w.Watch(5 * sim.Minute)
	eng.RunUntil(5 * sim.Minute)
	if crashed, _ := w.Crashed(); crashed {
		t.Fatal("dual-ToR job crashed on a single access failure")
	}
}

package hpn

import (
	"fmt"
	"math"

	"hpn/internal/topo"
)

func init() {
	register("appd", "Data center layout: one pod per building (Appendix D, §10)", runAppD)
}

// runAppD reproduces the Appendix D layout arithmetic from built
// topologies: with each backend pod contained in one 18MW building and the
// frontend (plus storage) in its own building, only frontend access cables
// and Agg-Core uplinks leave a building. Intra-building runs stay under
// 100m and can use multi-mode transceivers at ~30% of single-mode cost.
func runAppD(s Scale) (*Report, error) {
	r := &Report{ID: "appd", Title: "One pod per building: link locality and optics cost"}

	// Count real cables on production-scale builds (the backend pod build
	// is ~47K cables; use the full thing even at quick scale — it is fast).
	backendCfg := DefaultHPN()
	backendCfg.Pods = 2 // two buildings, so Agg-Core cross-building links exist
	backend, err := topo.BuildHPN(backendCfg)
	if err != nil {
		return nil, err
	}
	frontendCfg := topo.DefaultFrontend()
	frontend, err := topo.BuildFrontend(frontendCfg)
	if err != nil {
		return nil, err
	}

	// Classify backend cables: Agg-Core uplinks cross buildings (the Core
	// tier interconnects pod buildings); everything else stays inside the
	// pod's building.
	var backendIntra, backendCross int
	for _, l := range backend.Links {
		if l.ID%2 == 1 {
			continue // count each cable once (even IDs are the "up" twins)
		}
		from, to := backend.Node(l.From).Kind, backend.Node(l.To).Kind
		if from == topo.KindCore || to == topo.KindCore {
			backendCross++
		} else {
			backendIntra++
		}
	}

	// Every backend host also has one frontend NIC (2 ports) reaching the
	// frontend building: all cross-building. The frontend fabric itself is
	// intra-building.
	hostFrontendAccess := len(backend.Hosts) * 2
	frontendIntra := len(frontend.Links) / 2

	cross := backendCross + hostFrontendAccess
	intra := backendIntra + frontendIntra
	total := cross + intra
	crossShare := float64(cross) / float64(total)

	// Optics cost: multi-mode transceivers (usable under 100m) cost ~30%
	// of single-mode. Savings = what the intra-building share avoids.
	const mmCostShare = 0.3
	withLayout := float64(intra)*mmCostShare + float64(cross)
	allSingleMode := float64(total)
	saving := 1 - withLayout/allSingleMode

	r.AddTable(Table{
		Title:  fmt.Sprintf("cable census: %d-pod backend + frontend building", backendCfg.Pods),
		Header: []string{"class", "cables", "placement", "optics"},
		Rows: [][]string{
			{"host-ToR / ToR-Agg (backend)", fmtF(float64(backendIntra)), "intra-building", "multi-mode"},
			{"Agg-Core (tier3)", fmtF(float64(backendCross)), "cross-building", "single-mode"},
			{"host frontend access", fmtF(float64(hostFrontendAccess)), "cross-building", "single-mode"},
			{"frontend fabric", fmtF(float64(frontendIntra)), "intra-building", "multi-mode"},
		},
	})
	r.AddClaim("cross-building links are a small share", "~12.9%", pct(crossShare),
		crossShare > 0.05 && crossShare < 0.20)
	r.AddClaim("multi-mode optics cut per-link cost", "70% cheaper than single-mode",
		pct(1-mmCostShare), math.Abs(mmCostShare-0.3) < 1e-9)
	r.AddClaim("layout cuts total optics cost", "large saving vs all-single-mode",
		pct(saving)+" saved", saving > 0.5)

	// §10's other layout claim: an 18MW building houses one whole pod.
	gpusPerPod := backend.TotalGPUs(true) / backendCfg.Pods
	r.AddClaim("an 18MW building houses one 15K-GPU pod", "~15K GPUs/building",
		fmtF(float64(gpusPerPod)), gpusPerPod == 15360)
	return r, nil
}
